(* Perf-regression sentinel: compare the duration cells of the current
   run's tables against a committed zendoo-bench/1 baseline document.

   Matching is structural: experiment id, table position, row position
   (sanity-checked against the row's first cell — tables are generated
   with fixed row sets, so positions are stable), column name. Only
   cells that parse as pp_seconds durations ("1.23 ms") participate;
   counters, fingerprints and "1.07x" speedup cells are ignored. Only
   slower-than-baseline counts as a regression, and only past both the
   relative tolerance and an absolute floor, so microsecond jitter on
   fast rows never trips the check. *)

open Zen_obs

type entry = {
  exp : string;
  table : int;
  row : string;
  col : string;
  base_s : float;
  cur_s : float;
  ratio : float; (* current / baseline *)
  regressed : bool;
}

let str_cell = function Json.Str s -> s | _ -> ""

(* "1.23 ms"-style cells, exactly as Util.pp_seconds prints them. *)
let parse_duration cell =
  match String.split_on_char ' ' (String.trim cell) with
  | [ num; unit_ ] -> (
    match (float_of_string_opt num, unit_) with
    | Some v, "ns" -> Some (v *. 1e-9)
    | Some v, "us" -> Some (v *. 1e-6)
    | Some v, "ms" -> Some (v *. 1e-3)
    | Some v, "s" -> Some v
    | _ -> None)
  | _ -> None

(* A zendoo-bench/1 document as (id, (columns, rows) list) pairs. *)
let tables_of doc =
  let arr field j =
    match Json.member field j with Some a -> Json.to_list a | None -> []
  in
  List.filter_map
    (fun e ->
      match Json.member "id" e with
      | Some (Json.Str id) ->
        let tables =
          List.map
            (fun tbl ->
              ( List.map str_cell (arr "columns" tbl),
                List.map
                  (fun r -> List.map str_cell (Json.to_list r))
                  (arr "rows" tbl) ))
            (arr "tables" e)
        in
        Some (id, tables)
      | _ -> None)
    (arr "experiments" doc)

let experiment_ids doc = List.map fst (tables_of doc)

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.of_string s with
  | Ok doc -> Ok doc
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let rec zip_index i xs ys =
  match (xs, ys) with
  | x :: xs, y :: ys -> (i, x, y) :: zip_index (i + 1) xs ys
  | _ -> []

let compare_docs ?(abs_floor_s = 0.005) ~tolerance ~baseline ~current () =
  let cur_tables = tables_of current in
  List.concat_map
    (fun (id, btables) ->
      match List.assoc_opt id cur_tables with
      | None -> [] (* experiment not re-run — nothing to compare *)
      | Some ctables ->
        List.concat_map
          (fun (ti, (bcols, brows), (_ccols, crows)) ->
            List.concat_map
              (fun (_, brow, crow) ->
                let key = match brow with k :: _ -> k | [] -> "" in
                if key <> (match crow with k :: _ -> k | [] -> "") then []
                else
                  List.filter_map
                    (fun (ci, bcell, ccell) ->
                      match (parse_duration bcell, parse_duration ccell) with
                      | Some base_s, Some cur_s ->
                        let col =
                          match List.nth_opt bcols ci with
                          | Some c -> c
                          | None -> string_of_int ci
                        in
                        Some
                          {
                            exp = id;
                            table = ti;
                            row = key;
                            col;
                            base_s;
                            cur_s;
                            ratio =
                              (if base_s > 0. then cur_s /. base_s else 1.);
                            regressed =
                              cur_s -. base_s > abs_floor_s
                              && cur_s > base_s *. (1. +. tolerance);
                          }
                      | _ -> None)
                    (zip_index 0 brow crow))
              (zip_index 0 brows crows))
          (zip_index 0 btables ctables))
    (tables_of baseline)

let regressions entries = List.filter (fun e -> e.regressed) entries

let print_delta ~tolerance entries =
  Printf.printf "\n=== baseline delta (tolerance +%.0f%%) ===\n"
    (tolerance *. 100.);
  if entries = [] then
    print_endline "(no comparable duration cells — id/table mismatch?)"
  else begin
    let rows =
      List.map
        (fun e ->
          [
            e.exp;
            string_of_int e.table;
            e.row;
            e.col;
            Util.pp_seconds e.base_s;
            Util.pp_seconds e.cur_s;
            Printf.sprintf "%+.0f%%" ((e.ratio -. 1.) *. 100.);
            (if e.regressed then "REGRESSED" else "ok");
          ])
        entries
    in
    let columns =
      [ "experiment"; "table"; "row"; "column"; "baseline"; "current";
        "delta"; "verdict" ]
    in
    let widths =
      List.mapi
        (fun i c ->
          List.fold_left
            (fun w row -> max w (String.length (List.nth row i)))
            (String.length c) rows)
        columns
    in
    let print_row cells =
      List.iteri
        (fun i cell -> Printf.printf "%-*s  " (List.nth widths i) cell)
        cells;
      print_newline ()
    in
    print_row columns;
    print_row (List.map (fun w -> String.make w '-') widths);
    List.iter print_row rows;
    let bad = List.length (regressions entries) in
    if bad = 0 then
      Printf.printf "\nall %d duration cells within tolerance\n"
        (List.length entries)
    else
      Printf.printf "\n%d of %d duration cells regressed\n" bad
        (List.length entries)
  end

let delta_json ~tolerance entries =
  Json.Obj
    [
      ("schema", Json.Str "zendoo-bench-delta/1");
      ("tolerance", Json.Float tolerance);
      ("compared", Json.Int (List.length entries));
      ("regressions", Json.Int (List.length (regressions entries)));
      ( "entries",
        Json.Arr
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("experiment", Json.Str e.exp);
                   ("table", Json.Int e.table);
                   ("row", Json.Str e.row);
                   ("column", Json.Str e.col);
                   ("baseline_s", Json.Float e.base_s);
                   ("current_s", Json.Float e.cur_s);
                   ("ratio", Json.Float e.ratio);
                   ("regressed", Json.Bool e.regressed);
                 ])
             entries) );
    ]
