(* Benchmark entry point: runs every experiment table (E1–E16,
   EXPERIMENTS.md) and the bechamel micro section.

   Usage:
     dune exec bench/main.exe                    # everything
     dune exec bench/main.exe -- E6 E7           # selected experiments
     dune exec bench/main.exe -- micro           # micro kernels only
     dune exec bench/main.exe -- E1 --json f.json # also dump tables as JSON

   --json FILE writes every experiment table that ran as a
   "zendoo-bench/1" JSON document (schema in EXPERIMENTS.md); the
   bechamel micro section prints through its own reporter and is not
   included. *)

let () =
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  let rec split json acc = function
    | [ "--json" ] ->
      prerr_endline "error: --json requires a FILE argument";
      exit 2
    | "--json" :: path :: rest -> split (Some path) acc rest
    | x :: rest -> split json (x :: acc) rest
    | [] -> (json, List.rev acc)
  in
  let json, requested = split None [] args in
  let want name = requested = [] || List.mem name requested in
  List.iter
    (fun (name, run) ->
      if want name then begin
        Util.begin_experiment name;
        run ();
        Util.end_experiment ()
      end)
    Experiments.all;
  if want "micro" then Micro.run ();
  Option.iter
    (fun path ->
      Util.write_json path;
      Printf.printf "\n(tables written to %s)\n" path)
    json;
  print_newline ();
  print_endline "(benchmarks complete; see EXPERIMENTS.md for interpretation)"
