(* Benchmark entry point: runs every experiment table (E1–E18,
   EXPERIMENTS.md) and the bechamel micro section.

   Usage:
     dune exec bench/main.exe                    # everything
     dune exec bench/main.exe -- E6 E7           # selected experiments
     dune exec bench/main.exe -- micro           # micro kernels only
     dune exec bench/main.exe -- E1 --json f.json # also dump tables as JSON

   --json FILE writes every experiment table that ran as a
   "zendoo-bench/1" JSON document (schema in EXPERIMENTS.md); the
   bechamel micro section prints through its own reporter and is not
   included.

   Perf-regression sentinel:
     dune exec bench/main.exe -- --baseline BENCH_prove.json --check

   --baseline FILE compares this run's duration cells against a
   committed zendoo-bench/1 document and prints a delta table; when no
   experiments are named, exactly the baseline's experiments run.
   --tolerance PCT sets the allowed slowdown (default 50); --check
   exits non-zero if any cell regressed past it; --delta-out FILE
   writes the delta table as "zendoo-bench-delta/1" JSON. *)

let () =
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  let usage_fail fmt =
    Printf.ksprintf
      (fun s ->
        prerr_endline ("error: " ^ s);
        exit 2)
      fmt
  in
  let json = ref None
  and baseline = ref None
  and check = ref false
  and tolerance = ref 0.5
  and delta_out = ref None in
  let rec split acc = function
    | [ "--json" ] -> usage_fail "--json requires a FILE argument"
    | "--json" :: path :: rest ->
      json := Some path;
      split acc rest
    | [ "--baseline" ] -> usage_fail "--baseline requires a FILE argument"
    | "--baseline" :: path :: rest ->
      baseline := Some path;
      split acc rest
    | "--check" :: rest ->
      check := true;
      split acc rest
    | [ "--tolerance" ] -> usage_fail "--tolerance requires a PCT argument"
    | "--tolerance" :: pct :: rest -> (
      match float_of_string_opt pct with
      | Some p when p >= 0. ->
        tolerance := p /. 100.;
        split acc rest
      | _ -> usage_fail "--tolerance wants a non-negative percentage")
    | [ "--delta-out" ] -> usage_fail "--delta-out requires a FILE argument"
    | "--delta-out" :: path :: rest ->
      delta_out := Some path;
      split acc rest
    | x :: rest -> split (x :: acc) rest
    | [] -> List.rev acc
  in
  let requested = split [] args in
  let baseline_doc =
    Option.map
      (fun path ->
        match Baseline.load path with
        | Ok doc -> doc
        | Error e -> usage_fail "cannot load baseline: %s" e)
      !baseline
  in
  (* With a baseline and no explicit selection, run exactly what the
     baseline covers — that is what makes `--baseline F --check` a
     self-contained sentinel invocation. *)
  let requested =
    match (requested, baseline_doc) with
    | [], Some doc -> Baseline.experiment_ids doc
    | r, _ -> r
  in
  let want name = requested = [] || List.mem name requested in
  List.iter
    (fun (name, run) ->
      if want name then begin
        Util.begin_experiment name;
        run ();
        Util.end_experiment ()
      end)
    Experiments.all;
  if want "micro" then Micro.run ();
  Option.iter
    (fun path ->
      Util.write_json path;
      Printf.printf "\n(tables written to %s)\n" path)
    !json;
  let failed =
    match baseline_doc with
    | None -> false
    | Some doc ->
      let entries =
        Baseline.compare_docs ~tolerance:!tolerance ~baseline:doc
          ~current:(Util.document ()) ()
      in
      Baseline.print_delta ~tolerance:!tolerance entries;
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc
            (Zen_obs.Json.to_string
               (Baseline.delta_json ~tolerance:!tolerance entries));
          output_char oc '\n';
          close_out oc;
          Printf.printf "(delta report written to %s)\n" path)
        !delta_out;
      Baseline.regressions entries <> []
  in
  print_newline ();
  print_endline "(benchmarks complete; see EXPERIMENTS.md for interpretation)";
  if failed && !check then exit 1
