(* Timing and table-printing helpers shared by the experiments. *)

let time_of_run f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

(* Repeat [f] until [budget] seconds elapse (at least [min_runs] times)
   and report seconds per run. *)
let time_per_run ?(budget = 0.2) ?(min_runs = 3) f =
  ignore (f ());
  (* warm-up *)
  let t0 = Unix.gettimeofday () in
  let runs = ref 0 in
  while
    !runs < min_runs || Unix.gettimeofday () -. t0 < budget
  do
    ignore (f ());
    incr runs
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int !runs

let pp_seconds s =
  if s < 1e-6 then Printf.sprintf "%.0f ns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%.2f us" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else Printf.sprintf "%.2f s" s

let pp_bytes n =
  if n < 1024 then Printf.sprintf "%d B" n
  else if n < 1024 * 1024 then Printf.sprintf "%.1f KiB" (float_of_int n /. 1024.)
  else Printf.sprintf "%.2f MiB" (float_of_int n /. (1024. *. 1024.))

(* ---- JSON capture (main.exe --json FILE) ----

   The printing helpers below double as recorders: between
   [begin_experiment id] and [end_experiment], every header, table and
   note is also captured, and [write_json] dumps the lot under the
   "zendoo-bench/1" schema (documented in EXPERIMENTS.md). The bechamel
   micro section drives its own printer and is not captured. *)

type captured = {
  id : string;
  mutable title : string;
  mutable description : string;
  mutable tables : (string list * string list list) list; (* newest first *)
  mutable notes : string list; (* newest first *)
}

let current : captured option ref = ref None
let all_captured : captured list ref = ref [] (* newest first *)

let begin_experiment id =
  let c = { id; title = ""; description = ""; tables = []; notes = [] } in
  current := Some c;
  all_captured := c :: !all_captured

let end_experiment () = current := None

let document () =
  let open Zen_obs in
  let strs l = Json.Arr (List.map (fun s -> Json.Str s) l) in
  Json.Obj
      [
        ("schema", Json.Str "zendoo-bench/1");
        ( "experiments",
          Json.Arr
            (List.rev_map
               (fun c ->
                 Json.Obj
                   [
                     ("id", Json.Str c.id);
                     ("title", Json.Str c.title);
                     ("description", Json.Str c.description);
                     ( "tables",
                       Json.Arr
                         (List.rev_map
                            (fun (columns, rows) ->
                              Json.Obj
                                [
                                  ("columns", strs columns);
                                  ( "rows",
                                    Json.Arr (List.map strs rows) );
                                ])
                            c.tables) );
                     ("notes", Json.Arr (List.rev_map (fun s -> Json.Str s) c.notes));
                   ])
               !all_captured) );
    ]

let write_json path =
  let oc = open_out path in
  output_string oc (Zen_obs.Json.to_string (document ()));
  output_char oc '\n';
  close_out oc

(* ---- regression-sentinel handicap ----

   ZENDOO_BENCH_HANDICAP_MS=N inserts an artificial N-millisecond pause
   into each timed section that calls [handicap_pause] — a negative
   control for `--baseline --check`: with the handicap set the check
   MUST fail, proving the sentinel actually bites. Unset (the normal
   case) the pause is a single float compare. *)

let handicap_s =
  match Sys.getenv_opt "ZENDOO_BENCH_HANDICAP_MS" with
  | Some s -> (
    match float_of_string_opt s with
    | Some ms when ms > 0. -> ms /. 1000.
    | _ -> 0.)
  | None -> 0.

let handicap_pause () = if handicap_s > 0. then Unix.sleepf handicap_s

let header title description =
  (match !current with
  | Some c ->
    c.title <- title;
    c.description <- description
  | None -> ());
  Printf.printf "\n=== %s ===\n%s\n" title description

let table ~columns rows =
  (match !current with
  | Some c -> c.tables <- (columns, rows) :: c.tables
  | None -> ());
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length c) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell -> Printf.printf "%-*s  " (List.nth widths i) cell)
      cells;
    print_newline ()
  in
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let note fmt =
  Printf.ksprintf
    (fun s ->
      (match !current with
      | Some c -> c.notes <- String.trim s :: c.notes
      | None -> ());
      print_string s)
    fmt
