(* Timing and table-printing helpers shared by the experiments. *)

let time_of_run f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

(* Repeat [f] until [budget] seconds elapse (at least [min_runs] times)
   and report seconds per run. *)
let time_per_run ?(budget = 0.2) ?(min_runs = 3) f =
  ignore (f ());
  (* warm-up *)
  let t0 = Unix.gettimeofday () in
  let runs = ref 0 in
  while
    !runs < min_runs || Unix.gettimeofday () -. t0 < budget
  do
    ignore (f ());
    incr runs
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int !runs

let pp_seconds s =
  if s < 1e-6 then Printf.sprintf "%.0f ns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%.2f us" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else Printf.sprintf "%.2f s" s

let pp_bytes n =
  if n < 1024 then Printf.sprintf "%d B" n
  else if n < 1024 * 1024 then Printf.sprintf "%.1f KiB" (float_of_int n /. 1024.)
  else Printf.sprintf "%.2f MiB" (float_of_int n /. (1024. *. 1024.))

(* ---- JSON capture (main.exe --json FILE) ----

   The printing helpers below double as recorders: between
   [begin_experiment id] and [end_experiment], every header, table and
   note is also captured, and [write_json] dumps the lot under the
   "zendoo-bench/1" schema (documented in EXPERIMENTS.md). The bechamel
   micro section drives its own printer and is not captured. *)

type captured = {
  id : string;
  mutable title : string;
  mutable description : string;
  mutable tables : (string list * string list list) list; (* newest first *)
  mutable notes : string list; (* newest first *)
}

let current : captured option ref = ref None
let all_captured : captured list ref = ref [] (* newest first *)

let begin_experiment id =
  let c = { id; title = ""; description = ""; tables = []; notes = [] } in
  current := Some c;
  all_captured := c :: !all_captured

let end_experiment () = current := None

let write_json path =
  let open Zen_obs in
  let strs l = Json.Arr (List.map (fun s -> Json.Str s) l) in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "zendoo-bench/1");
        ( "experiments",
          Json.Arr
            (List.rev_map
               (fun c ->
                 Json.Obj
                   [
                     ("id", Json.Str c.id);
                     ("title", Json.Str c.title);
                     ("description", Json.Str c.description);
                     ( "tables",
                       Json.Arr
                         (List.rev_map
                            (fun (columns, rows) ->
                              Json.Obj
                                [
                                  ("columns", strs columns);
                                  ( "rows",
                                    Json.Arr (List.map strs rows) );
                                ])
                            c.tables) );
                     ("notes", Json.Arr (List.rev_map (fun s -> Json.Str s) c.notes));
                   ])
               !all_captured) );
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc

let header title description =
  (match !current with
  | Some c ->
    c.title <- title;
    c.description <- description
  | None -> ());
  Printf.printf "\n=== %s ===\n%s\n" title description

let table ~columns rows =
  (match !current with
  | Some c -> c.tables <- (columns, rows) :: c.tables
  | None -> ());
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length c) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell -> Printf.printf "%-*s  " (List.nth widths i) cell)
      cells;
    print_newline ()
  in
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let note fmt =
  Printf.ksprintf
    (fun s ->
      (match !current with
      | Some c -> c.notes <- String.trim s :: c.notes
      | None -> ());
      print_string s)
    fmt
