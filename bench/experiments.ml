(* Experiment series (DESIGN.md §4, EXPERIMENTS.md): each function
   regenerates one figure/claim of the paper as a printed table. *)

open Zen_crypto
open Zen_latus
open Zendoo

let amount n = Amount.of_int_exn n

(* ---- E1: Merkle hash tree scaling (Fig. 2) ---- *)

let e1_mht_scaling () =
  Util.header "E1 mht-scaling (Fig. 2)"
    "Merkle tree: build O(n); proof size and verification O(log n).";
  let rows =
    List.map
      (fun log_n ->
        let n = 1 lsl log_n in
        let blocks = List.init n (fun i -> Printf.sprintf "data-%d" i) in
        let build_t, tree = Util.time_of_run (fun () -> Merkle.of_data blocks) in
        let proof = Merkle.prove tree (n / 2) in
        let leaf = Hash.of_string (Printf.sprintf "data-%d" (n / 2)) in
        let verify_t =
          Util.time_per_run ~budget:0.05 (fun () ->
              Merkle.verify ~root:(Merkle.root tree) ~leaf proof)
        in
        [
          string_of_int n;
          Util.pp_seconds build_t;
          string_of_int (Merkle.proof_length proof);
          Util.pp_bytes (Merkle.proof_size_bytes proof);
          Util.pp_seconds verify_t;
        ])
      [ 6; 8; 10; 12; 14 ]
  in
  Util.table
    ~columns:[ "leaves"; "build"; "proof len"; "proof size"; "verify" ]
    rows

(* ---- E2: withdrawal epoch schedule and ceasing (Fig. 3, Def. 4.2) ---- *)

let e2_epoch_schedule () =
  Util.header "E2 epoch-schedule (Fig. 3, Def. 4.2)"
    "Withdrawal epochs, submission windows, and the ceasing deadline.";
  let sched = { Epoch.start_block = 100; epoch_len = 10; submit_len = 3 } in
  let rows =
    List.map
      (fun e ->
        let lo, hi = Epoch.submission_window sched ~epoch:e in
        [
          string_of_int e;
          Printf.sprintf "%d..%d" (Epoch.first_height sched ~epoch:e)
            (Epoch.last_height sched ~epoch:e);
          Printf.sprintf "%d..%d" lo hi;
          string_of_int (hi + 1);
        ])
      [ 0; 1; 2; 3 ]
  in
  Util.table
    ~columns:[ "epoch"; "MC heights"; "cert window"; "ceased if none by" ]
    rows;
  (* Live ceasing scenario through the harness. *)
  let h = Zen_sim.Harness.create ~seed:"e2" () in
  Zen_sim.Harness.fund h ~blocks:3;
  let sc =
    Result.get_ok
      (Zen_sim.Harness.add_latus h ~name:"withholder" ~epoch_len:3
         ~submit_len:1 ~activation_delay:1 ())
  in
  sc.Zen_sim.Harness.withhold_certs <- true;
  let first_ceased = ref None in
  for _ = 1 to 10 do
    Zen_sim.Harness.tick h;
    if !first_ceased = None && Zen_sim.Harness.is_ceased h sc then
      first_ceased := Some (Zen_mainchain.Chain.height h.Zen_sim.Harness.chain)
  done;
  Util.note
    "scenario: sidechain withholding certificates ceased at MC height %s \
     (activation %d, epoch_len 3, submit_len 1)\n"
    (match !first_ceased with Some height -> string_of_int height | None -> "never")
    sc.Zen_sim.Harness.config.start_block

(* ---- E3: SCTxsCommitment (Figs. 4 & 12) ---- *)

let e3_sctx_commitment () =
  Util.header "E3 sctx-commitment (Figs. 4 & 12)"
    "Two-level commitment: build vs #sidechains; mproof and\n\
     proofOfNoData stay logarithmic; flat-scan baseline grows linearly.";
  let mk_entry i nfts =
    let ledger_id = Hash.of_string (Printf.sprintf "sc-%d" i) in
    {
      Sc_commitment.ledger_id;
      fts =
        List.init nfts (fun j ->
            Forward_transfer.make ~ledger_id
              ~receiver_metadata:(String.make 64 'x')
              ~amount:(amount (j + 1)));
      btrs = [];
      wcert = None;
    }
  in
  let rows =
    List.map
      (fun n_sc ->
        let nfts = 20 in
        let entries = List.init n_sc (fun i -> mk_entry i nfts) in
        let build_t, t =
          Util.time_of_run (fun () -> Result.get_ok (Sc_commitment.build entries))
        in
        let target = (List.nth entries (n_sc / 2)).Sc_commitment.ledger_id in
        let m = Option.get (Sc_commitment.prove_membership t target) in
        let eh = Sc_commitment.entry_hash (List.nth entries (n_sc / 2)) in
        let verify_t =
          Util.time_per_run ~budget:0.05 (fun () ->
              Sc_commitment.verify_membership ~root:(Sc_commitment.root t)
                ~ledger_id:target ~entry_hash:eh m)
        in
        let absent = Hash.of_string "absent-sc" in
        let a = Option.get (Sc_commitment.prove_absence t absent) in
        (* Baseline: shipping + hashing all sidechains' data. *)
        let flat_t =
          Util.time_per_run ~budget:0.05 (fun () ->
              List.iter (fun e -> ignore (Sc_commitment.entry_hash e)) entries)
        in
        [
          string_of_int n_sc;
          Util.pp_seconds build_t;
          Util.pp_bytes (Sc_commitment.membership_size_bytes m);
          Util.pp_seconds verify_t;
          Util.pp_bytes (Sc_commitment.absence_size_bytes a);
          Util.pp_seconds flat_t;
        ])
      [ 4; 16; 64; 256 ]
  in
  Util.table
    ~columns:
      [ "#sidechains"; "build"; "mproof"; "verify"; "noData proof"; "flat scan" ]
    rows

(* ---- E4: slot-leader fairness (Fig. 8, §5.1) ---- *)

let e4_leader_fairness () =
  Util.header "E4 leader-fairness (Fig. 8, §5.1)"
    "Slot leadership is proportional to stake (10000 slots).";
  let stakes =
    [ ("alice", 500_000); ("bob", 300_000); ("carol", 150_000); ("dave", 50_000) ]
  in
  let d =
    Leader.of_list
      (List.map (fun (n, s) -> (Hash.of_string n, amount s)) stakes)
  in
  let rand = Hash.of_string "e4-epoch-randomness" in
  let slots = 10_000 in
  let tally = Hashtbl.create 8 in
  for slot = 0 to slots - 1 do
    match Leader.select d ~rand ~slot with
    | Some l ->
      Hashtbl.replace tally l (1 + Option.value (Hashtbl.find_opt tally l) ~default:0)
    | None -> ()
  done;
  let total = float_of_int 1_000_000 in
  let rows =
    List.map
      (fun (name, stake) ->
        let won =
          Option.value (Hashtbl.find_opt tally (Hash.of_string name)) ~default:0
        in
        [
          name;
          Printf.sprintf "%.1f%%" (100. *. float_of_int stake /. total);
          Printf.sprintf "%.1f%%" (100. *. float_of_int won /. float_of_int slots);
        ])
      stakes
  in
  Util.table ~columns:[ "stakeholder"; "stake"; "slots won" ] rows

(* ---- E5: MST operations and mst_delta (Figs. 9, 15, 16) ---- *)

(* A naive dense Merkle tree that rehashes everything per update — the
   ablation showing why the sparse tree with cached empty hashes wins. *)
let naive_root depth leaves =
  let n = 1 lsl depth in
  let level =
    Array.init n (fun i ->
        Smt.leaf_hash (Option.bind (Hashtbl.find_opt leaves i) Option.some))
  in
  let rec up level =
    if Array.length level = 1 then level.(0)
    else
      up
        (Array.init
           (Array.length level / 2)
           (fun i -> Poseidon.hash2 level.(2 * i) level.((2 * i) + 1)))
  in
  up level

let e5_mst_ops () =
  Util.header "E5 mst-ops (Figs. 9, 15, 16)"
    "Sparse MST update cost is O(depth); a naive dense rebuild is O(2^depth).";
  let rows =
    List.map
      (fun depth ->
        let params = { Params.default with mst_depth = depth } in
        let m = ref (Mst.create params) in
        (* pre-populate 64 utxos *)
        for i = 0 to 63 do
          let u =
            Utxo.make ~addr:(Hash.of_string "addr") ~amount:(amount (i + 1))
              ~nonce:(Hash.of_string (Printf.sprintf "pre-%d-%d" depth i))
          in
          match Mst.insert !m u with Ok (m', _) -> m := m' | Error _ -> ()
        done;
        let fresh i =
          Utxo.make ~addr:(Hash.of_string "addr") ~amount:(amount 7)
            ~nonce:(Hash.of_string (Printf.sprintf "fresh-%d-%d" depth i))
        in
        let counter = ref 0 in
        let insert_t =
          Util.time_per_run ~budget:0.1 (fun () ->
              incr counter;
              ignore (Mst.insert !m (fresh !counter)))
        in
        let pos = 5 in
        let prove_t =
          Util.time_per_run ~budget:0.05 (fun () -> Mst.prove_slot !m pos)
        in
        let naive_t =
          if depth <= 12 then begin
            let leaves = Hashtbl.create 64 in
            List.iter
              (fun (p, u) -> Hashtbl.replace leaves p (Utxo.commitment u))
              (Mst.all_utxos !m);
            Some (Util.time_per_run ~budget:0.1 ~min_runs:1 (fun () ->
                naive_root depth leaves))
          end
          else None
        in
        let delta = Mst.delta_bits !m in
        [
          string_of_int depth;
          string_of_int (1 lsl depth);
          Util.pp_seconds insert_t;
          Util.pp_seconds prove_t;
          (match naive_t with Some t -> Util.pp_seconds t | None -> "(skipped)");
          Util.pp_bytes (Bytes.length delta);
        ])
      [ 8; 12; 16; 20 ]
  in
  Util.table
    ~columns:
      [ "depth"; "slots"; "sparse insert"; "prove slot"; "naive rebuild"; "mst_delta size" ]
    rows

(* ---- E6: recursive proof composition (Figs. 10 & 11, §5.4) ---- *)

let e6_recursive_proof () =
  Util.header "E6 recursive-proof (Figs. 10 & 11)"
    "Prover work linear in #transitions, merge-tree depth logarithmic,\n\
     final proof constant; sequential-merge ablation shows the degenerate tree.";
  let params = Params.default in
  let family = Circuits.make params in
  let rsys =
    Zen_snark.Recursive.create ~name:"bench" ~base_vks:(Circuits.base_vks family)
  in
  let make_chain n =
    (* n inserts applied to a fresh state. *)
    let state = ref (Sc_state.create params) in
    List.init n (fun i ->
        let u =
          Utxo.make ~addr:(Hash.of_string "bench") ~amount:(amount (i + 1))
            ~nonce:(Hash.of_string (Printf.sprintf "e6-%d" i))
        in
        let step = Sc_tx.Insert u in
        let proof, vk, s_from, s_to =
          Result.get_ok (Circuits.prove_step family !state step)
        in
        state := Result.get_ok (Sc_tx.apply_step !state step);
        Result.get_ok
          (Zen_snark.Recursive.of_base rsys ~vk ~s_from ~s_to ~extra:[||] proof))
  in
  let rows =
    List.map
      (fun n ->
        let base_t, chain = Util.time_of_run (fun () -> make_chain n) in
        let merge_t, top =
          Util.time_of_run (fun () ->
              Result.get_ok (Zen_snark.Recursive.fold_balanced rsys chain))
        in
        let seq_t, seq =
          Util.time_of_run (fun () ->
              Result.get_ok (Zen_snark.Recursive.fold_sequential rsys chain))
        in
        let verify_t =
          Util.time_per_run ~budget:0.05 (fun () ->
              Zen_snark.Recursive.verify rsys top)
        in
        [
          string_of_int n;
          Util.pp_seconds base_t;
          Util.pp_seconds merge_t;
          string_of_int (Zen_snark.Recursive.depth top);
          string_of_int (Zen_snark.Recursive.depth seq);
          Util.pp_seconds seq_t;
          Util.pp_bytes (Zen_snark.Recursive.proof_size_bytes top);
          Util.pp_seconds verify_t;
        ])
      [ 1; 4; 16; 64 ]
  in
  Util.table
    ~columns:
      [
        "#transitions"; "base proofs"; "balanced merge"; "depth";
        "seq depth"; "seq merge"; "final proof"; "verify";
      ]
    rows

(* ---- E7: the headline — certificate verification cost (§4.1.2) ---- *)

let e7_wcert_verification () =
  Util.header "E7 wcert-verification (headline, §4.1.2)"
    "Mainchain cost to validate one epoch's withdrawals:\n\
     Zendoo = one SNARK verification (constant);\n\
     certifier committee [12] = threshold signature checks (linear in m);\n\
     direct validation = replay every SC transaction (linear in activity).";
  let params = Params.default in
  let family = Circuits.make params in
  let ledger_id = Hash.of_string "e7-sc" in
  (* Zendoo: build a certificate binding proof and measure Verify. *)
  let make_cert n_bts =
    let bt_list =
      List.init n_bts (fun i ->
          Backward_transfer.make
            ~receiver_addr:(Hash.of_string (string_of_int i))
            ~amount:(amount (i + 1)))
    in
    let proofdata =
      Proofdata.
        [ Digest (Hash.of_string "sb"); Field Fp.one; Blob (String.make 64 '\000') ]
    in
    let end_prev_epoch = Hash.of_string "prev" in
    let end_epoch = Hash.of_string "cur" in
    let proof =
      Result.get_ok
        (Circuits.prove_wcert_binding family ~quality:42
           ~bt_root:(Backward_transfer.list_root bt_list)
           ~end_prev_epoch ~end_epoch ~proofdata ~s_prev:Fp.one ~s_last:Fp.two)
    in
    ( Withdrawal_certificate.make ~ledger_id ~epoch_id:1 ~quality:42 ~bt_list
        ~proofdata ~proof,
      end_prev_epoch,
      end_epoch )
  in
  (* The certificate (and hence its verification work) is structurally
     independent of epoch activity: the same constant-size proof covers
     any number of sidechain transactions. Fix 8 BTs and vary the
     activity the proof attests to. *)
  let zendoo_rows =
    let cert, prev, cur = make_cert 8 in
    List.map
      (fun n_txs ->
        let t =
          Util.time_per_run ~budget:0.2 (fun () ->
              Verifier.verify_wcert ~vk:(Circuits.wcert_keys family).vk ~cert
                ~end_prev_epoch:prev ~end_epoch:cur)
        in
        [ "Zendoo SNARK"; string_of_int n_txs; "8 BTs"; Util.pp_seconds t ])
      [ 16; 256; 4096 ]
  in
  (* Payout hashing (MH(BTList)) is linear in the number of
     *withdrawals* — outputs the MC must materialize under any scheme —
     not in sidechain activity. *)
  let payout_rows =
    List.map
      (fun n_bts ->
        let cert, prev, cur = make_cert n_bts in
        let t =
          Util.time_per_run ~budget:0.2 (fun () ->
              Verifier.verify_wcert ~vk:(Circuits.wcert_keys family).vk ~cert
                ~end_prev_epoch:prev ~end_epoch:cur)
        in
        [
          "Zendoo (payout hashing)";
          "-";
          string_of_int n_bts ^ " BTs";
          Util.pp_seconds t;
        ])
      [ 128; 1024 ]
  in
  let committee_rows =
    List.map
      (fun m ->
        let c = Zen_baselines.Certifiers.committee_of_seed ~seed:"e7" ~size:m in
        let threshold = (2 * m / 3) + 1 in
        let cert =
          Zen_baselines.Certifiers.make_certificate c
            ~signers:(List.init threshold Fun.id) ~ledger_id ~epoch_id:1
            ~bt_list:[]
        in
        let t =
          Util.time_per_run ~budget:0.2 (fun () ->
              Zen_baselines.Certifiers.verify c ~threshold cert)
        in
        [
          "certifiers [12]";
          "0";
          Printf.sprintf "m=%d t=%d" m threshold;
          Util.pp_seconds t;
        ])
      [ 4; 16; 64 ]
  in
  let direct_rows =
    List.map
      (fun n_txs ->
        (* an epoch of n payments *)
        let w = Sc_wallet.create ~seed:"e7-direct" in
        let addr = Sc_wallet.fresh_address w in
        let st = ref (Sc_state.create params) in
        let coins =
          List.init n_txs (fun i ->
              Utxo.make ~addr ~amount:(amount 10)
                ~nonce:(Hash.of_string (Printf.sprintf "d-%d" i)))
        in
        List.iter
          (fun u ->
            match Mst.insert !st.Sc_state.mst u with
            | Ok (m, _) -> st := Sc_state.with_mst !st m
            | Error _ -> ())
          coins;
        let initial = !st in
        let txs =
          List.filter_map
            (fun u ->
              Result.to_option
                (Sc_wallet.build_backward_transfer w initial ~utxo:u
                   ~mc_receiver:(Hash.of_string "mc")))
            coins
        in
        let t =
          Util.time_per_run ~budget:0.2 ~min_runs:1 (fun () ->
              Zen_baselines.Direct_validation.replay_epoch ~params ~initial ~txs)
        in
        [
          "direct validation";
          string_of_int n_txs;
          Util.pp_bytes (Zen_baselines.Direct_validation.epoch_data_bytes ~txs);
          Util.pp_seconds t;
        ])
      [ 16; 64; 256 ]
  in
  Util.table
    ~columns:[ "scheme"; "#SC txs"; "extra"; "MC verify cost" ]
    (zendoo_rows @ payout_rows @ committee_rows @ direct_rows)

(* ---- E8: BTR/CSW costs and nullifiers (§4.1.2.1) ---- *)

let e8_csw_btr () =
  Util.header "E8 csw-btr (§4.1.2.1, §5.5.3.2)"
    "Ownership proof generation/verification and nullifier throughput.";
  let params = Params.default in
  let family = Circuits.make params in
  let m = ref (Mst.create params) in
  let utxos =
    List.init 100 (fun i ->
        Utxo.make ~addr:(Hash.of_string "owner") ~amount:(amount (i + 1))
          ~nonce:(Hash.of_string (Printf.sprintf "e8-%d" i)))
  in
  List.iter
    (fun u -> match Mst.insert !m u with Ok (m', _) -> m := m' | Error _ -> ())
    utxos;
  let u = List.hd utxos in
  let proofdata = [ Proofdata.Blob (Utxo.encode u) ] in
  let reference_block = Hash.of_string "refb" in
  let receiver = Hash.of_string "recv" in
  let gen_t =
    Util.time_per_run ~budget:0.3 ~min_runs:2 (fun () ->
        Circuits.prove_ownership family ~mst:!m ~utxo:u ~reference_block
          ~receiver ~proofdata)
  in
  let proof =
    Result.get_ok
      (Circuits.prove_ownership family ~mst:!m ~utxo:u ~reference_block
         ~receiver ~proofdata)
  in
  let request =
    Mainchain_withdrawal.make ~kind:Mainchain_withdrawal.Csw
      ~ledger_id:(Hash.of_string "sc") ~receiver ~amount:u.Utxo.amount
      ~nullifier:(Utxo.nullifier u) ~proofdata ~proof
  in
  let verify_t =
    Util.time_per_run ~budget:0.2 (fun () ->
        Verifier.verify_withdrawal ~vk:(Circuits.ownership_keys family).vk
          ~request ~reference_block)
  in
  let nullifier_t =
    let set = ref Hash.Set.empty in
    let i = ref 0 in
    Util.time_per_run ~budget:0.1 (fun () ->
        incr i;
        let nf = Hash.of_string (string_of_int !i) in
        if not (Hash.Set.mem nf !set) then set := Hash.Set.add nf !set)
  in
  Util.table
    ~columns:[ "operation"; "cost" ]
    [
      [ "ownership proof generation (depth 12)"; Util.pp_seconds gen_t ];
      [ "MC verification of BTR/CSW"; Util.pp_seconds verify_t ];
      [ "nullifier check+record"; Util.pp_seconds nullifier_t ];
      [ "proof size"; Util.pp_bytes Zen_snark.Backend.proof_size_bytes ];
    ]

(* ---- E9: safeguard stress (§4.1.2.2) ---- *)

let e9_safeguard_stress () =
  Util.header "E9 safeguard-stress (§4.1.2.2)"
    "Random epochs of FT/payment/BT traffic: the MC-side balance\n\
     invariant (withdrawn <= transferred) holds; counts reported.";
  let h = Zen_sim.Harness.create ~seed:"e9" () in
  Zen_sim.Harness.fund h ~blocks:6;
  let sc =
    Result.get_ok
      (Zen_sim.Harness.add_latus h ~name:"stress" ~epoch_len:4 ~submit_len:2
         ~activation_delay:1 ())
  in
  let rng = Rng.create 909 in
  let users = Array.init 4 (fun i -> Sc_wallet.create ~seed:(Printf.sprintf "e9-u%d" i)) in
  let addrs = Array.map Sc_wallet.fresh_address users in
  let fts = ref 0 and bts = ref 0 and pays = ref 0 in
  for round = 1 to 24 do
    (* random FT *)
    if Rng.int rng 3 = 0 then begin
      let u = Rng.int rng 4 in
      match
        Zen_sim.Harness.forward_transfer h sc ~receiver:addrs.(u)
          ~payback:addrs.(u)
          ~amount:(amount (10_000 + Rng.int rng 100_000))
      with
      | Ok () -> incr fts
      | Error _ -> ()
    end;
    (* random SC payment / BT *)
    let state = Node.next_block_state sc.Zen_sim.Harness.node in
    let u = Rng.int rng 4 in
    (match Sc_wallet.utxos users.(u) state with
    | coin :: _ when round mod 5 = 0 ->
      (match
         Sc_wallet.build_backward_transfer users.(u) state ~utxo:coin
           ~mc_receiver:addrs.(u)
       with
      | Ok tx -> (
        match Node.submit_tx sc.Zen_sim.Harness.node tx with
        | Ok () -> incr bts
        | Error _ -> ())
      | Error _ -> ())
    | coin :: _ -> (
      let target = addrs.(Rng.int rng 4) in
      match
        Sc_wallet.build_payment users.(u) state ~to_:target
          ~amount:coin.Utxo.amount
      with
      | Ok tx -> (
        match Node.submit_tx sc.Zen_sim.Harness.node tx with
        | Ok () -> incr pays
        | Error _ -> ())
      | Error _ -> ())
    | [] -> ());
    Zen_sim.Harness.tick h
  done;
  let balance = Zen_sim.Harness.sc_balance_on_mc h sc in
  let certified = Node.certified_epochs sc.Zen_sim.Harness.node in
  Util.table
    ~columns:[ "metric"; "value" ]
    [
      [ "rounds"; "24" ];
      [ "forward transfers"; string_of_int !fts ];
      [ "payments"; string_of_int !pays ];
      [ "backward transfers"; string_of_int !bts ];
      [ "epochs certified"; string_of_int (List.length certified) ];
      [ "final SC balance on MC"; Amount.to_string balance ];
      [ "balance non-negative"; "yes (typed invariant)" ];
    ]

(* ---- E10: Latus transaction throughput (§5.3) ---- *)

let e10_latus_txs () =
  Util.header "E10 latus-txs (§5.3)"
    "State-transition throughput per transaction type (validation +\n\
     application, no proving).";
  let params = Params.default in
  let w = Sc_wallet.create ~seed:"e10" in
  let addr = Sc_wallet.fresh_address w in
  let base_state =
    let st = Sc_state.create params in
    let mst =
      List.fold_left
        (fun m i ->
          let u =
            Utxo.make ~addr ~amount:(amount 1000)
              ~nonce:(Hash.of_string (Printf.sprintf "e10-%d" i))
          in
          match Mst.insert m u with Ok (m', _) -> m' | Error _ -> m)
        st.Sc_state.mst (List.init 128 Fun.id)
    in
    Sc_state.with_mst st mst
  in
  let coin = List.hd (Sc_wallet.utxos w base_state) in
  let pay =
    Result.get_ok
      (Sc_wallet.build_payment w base_state ~to_:addr ~amount:(amount 500))
  in
  let bt =
    Result.get_ok
      (Sc_wallet.build_backward_transfer w base_state ~utxo:coin
         ~mc_receiver:(Hash.of_string "mc"))
  in
  let ft =
    Sc_tx.Forward_transfers_tx
      {
        mcid = Hash.zero;
        fts =
          [
            Forward_transfer.make ~ledger_id:Hash.zero
              ~receiver_metadata:(Sc_tx.ft_metadata ~receiver:addr ~payback:addr)
              ~amount:(amount 77);
          ];
      }
  in
  let row name tx =
    let t =
      Util.time_per_run ~budget:0.2 (fun () -> Sc_tx.apply base_state tx)
    in
    [ name; Util.pp_seconds t; Printf.sprintf "%.0f" (1.0 /. t) ]
  in
  Util.table
    ~columns:[ "tx type"; "apply"; "tx/s" ]
    [ row "payment (1-in-2-out)" pay; row "backward transfer" bt; row "forward transfers (1 ft)" ft ]

(* ---- E11: SNARK cost profile (Def. 2.3) ---- *)

let e11_snark_costs () =
  Util.header "E11 snark-costs (Def. 2.3)"
    "Prove linear in circuit size; proof size and verification constant.";
  let build_chain_circuit n =
    let ctx = Zen_snark.Gadget.create () in
    let x = Zen_snark.Gadget.input ctx Fp.one in
    let acc = ref x in
    for _ = 1 to n do
      acc := Zen_snark.Gadget.poseidon2 ctx !acc x
    done;
    let out = Zen_snark.Gadget.witness ctx (Zen_snark.Gadget.value !acc) in
    Zen_snark.Gadget.assert_eq ctx !acc out;
    Zen_snark.Gadget.finalize ~name:(Printf.sprintf "chain-%d" n) ctx
  in
  let rows =
    List.map
      (fun n ->
        let circuit, public, witness = build_chain_circuit n in
        let setup_t, (pk, vk) =
          Util.time_of_run (fun () -> Zen_snark.Backend.setup circuit)
        in
        let prove_t =
          Util.time_per_run ~budget:0.2 ~min_runs:2 (fun () ->
              Zen_snark.Backend.prove pk ~public ~witness)
        in
        let proof = Result.get_ok (Zen_snark.Backend.prove pk ~public ~witness) in
        let verify_t =
          Util.time_per_run ~budget:0.1 (fun () ->
              Zen_snark.Backend.verify vk ~public proof)
        in
        [
          string_of_int (Zen_snark.R1cs.num_constraints circuit);
          Util.pp_seconds setup_t;
          Util.pp_seconds prove_t;
          Util.pp_bytes (String.length (Zen_snark.Backend.proof_encode proof));
          Util.pp_seconds verify_t;
        ])
      [ 1; 8; 32; 128 ]
  in
  Util.table
    ~columns:[ "constraints"; "setup"; "prove"; "proof size"; "verify" ]
    rows

(* ---- E12: wire sizes — the light-sync claim (§5.5.1) ---- *)

let e12_wire_sizes () =
  Util.header "E12 wire-sizes (§5.5.1)"
    "What a sidechain node downloads per MC block: the reference (header\n\
     + commitment proof + own slice) vs the full block, exact encodings.";
  let open Zen_mainchain in
  let params = { Chain_state.default_params with pow = Pow.trivial } in
  let rows =
    List.map
      (fun n_transfers ->
        let chain = ref (Chain.create ~params ~time:0 ()) in
        let w = Wallet.create ~seed:(Printf.sprintf "e12-%d" n_transfers) in
        let addr = Wallet.fresh_address w in
        (* One mature coinbase per planned transfer (change outputs are
           not spendable within the same block). *)
        for t = 1 to n_transfers + 3 do
          (match Miner.mine_empty !chain ~time:t ~miner_addr:addr with
          | Ok b -> (
            match Chain.add_block !chain b with
            | Ok (c, _) -> chain := c
            | Error _ -> ())
          | Error _ -> ())
        done;
        (* n plain transfers + one FT to "our" sidechain *)
        let ledger_id = Hash.of_string "e12-sc" in
        let rec build state n acc =
          if n = 0 then List.rev acc
          else begin
            match
              Wallet.build_transfer w state
                ~outputs:[ Tx.Coin { Tx.addr; amount = amount 1000 } ]
                ~fee:Amount.zero
            with
            | Error _ -> List.rev acc
            | Ok tx -> (
              match
                Chain_state.apply_tx state ~height:(state.height + 1)
                  ~block_hash:Hash.zero tx
              with
              | Ok (state', _) -> build state' (n - 1) (tx :: acc)
              | Error _ -> List.rev acc)
          end
        in
        let txs = build (Chain.tip_state !chain) n_transfers [] in
        let ft_tx =
          Tx.Transfer
            {
              inputs = [];
              outputs =
                [
                  Tx.Ft
                    (Forward_transfer.make ~ledger_id
                       ~receiver_metadata:(String.make 64 'x')
                       ~amount:(amount 1));
                ];
            }
        in
        (* assemble without validation: inputs-empty FT tx is for size
           measurement of the commitment path only *)
        let block =
          match
            Block.assemble ~prev:(Chain.tip_hash !chain)
              ~height:(Chain.height !chain + 1)
              ~time:99
              ~txs:(txs @ [ ft_tx ])
              ~pow:Pow.trivial ()
          with
          | Ok b -> b
          | Error e -> failwith e
        in
        let full = Mc_wire.block_size_bytes block in
        let with_data =
          Result.get_ok (Zen_latus.Mc_ref.build ~ledger_id block)
        in
        let without_data =
          Result.get_ok
            (Zen_latus.Mc_ref.build ~ledger_id:(Hash.of_string "other") block)
        in
        [
          string_of_int (List.length block.txs);
          Util.pp_bytes full;
          Util.pp_bytes (Zen_latus.Sc_wire.mc_ref_size_bytes with_data);
          Util.pp_bytes (Zen_latus.Sc_wire.mc_ref_size_bytes without_data);
        ])
      [ 5; 20; 80 ]
  in
  Util.table
    ~columns:
      [ "block txs"; "full MC block"; "mc_ref (with data)"; "mc_ref (no data)" ]
    rows

(* ---- E13: distributed proving (§5.4.1) ---- *)

let e13_prover_pool () =
  Util.header "E13 prover-pool (§5.4.1)"
    "Real multicore epoch proving: an epoch's base proofs are generated\n\
     by a Domain pool and merged level-parallel into the Fig. 11 epoch\n\
     proof. Wall-clock is measured, not simulated; outputs are checked\n\
     byte-identical against the 1-domain run.";
  let params = Params.default in
  let family = Circuits.make params in
  let rsys =
    Zen_snark.Recursive.create ~name:"e13" ~base_vks:(Circuits.base_vks family)
  in
  let st = Sc_state.create params in
  let steps =
    List.init 32 (fun i ->
        Sc_tx.Insert
          (Utxo.make ~addr:(Hash.of_string "e13") ~amount:(amount (i + 1))
             ~nonce:(Hash.of_string (Printf.sprintf "e13-%d" i))))
  in
  let run pool =
    let t0 = Unix.gettimeofday () in
    Util.handicap_pause ();
    let proofs, stats =
      Result.get_ok
        (Prover_pool.prove_epoch ~pool family ~initial:st ~steps
           ~workers:(Zen_crypto.Pool.domains pool) ~seed:77)
    in
    let top = Result.get_ok (Prover_pool.merge_all ~pool family rsys proofs) in
    let total = Unix.gettimeofday () -. t0 in
    let fingerprint =
      Hash.tagged "e13.run"
        (Zen_snark.Backend.proof_encode (Zen_snark.Recursive.final_proof top)
        :: List.map
             (fun tp ->
               Zen_snark.Backend.proof_encode tp.Prover_pool.proof)
             proofs)
    in
    (stats, total, fingerprint)
  in
  let base_stats, base_total, base_fp = run Zen_crypto.Pool.sequential in
  let rows =
    List.map
      (fun domains ->
        let stats, total, fp =
          if domains = 1 then (base_stats, base_total, base_fp)
          else run (Zen_crypto.Pool.get ~domains)
        in
        [
          string_of_int domains;
          Util.pp_seconds stats.Prover_pool.total_work;
          Util.pp_seconds stats.Prover_pool.wall;
          Util.pp_seconds total;
          Printf.sprintf "%.2fx" (base_total /. total);
          (if Hash.equal fp base_fp then "yes" else "NO");
        ])
      [ 1; 2; 4; 8 ]
  in
  Util.table
    ~columns:
      [
        "domains"; "task work"; "prove wall"; "prove+merge wall";
        "speedup"; "identical";
      ]
    rows;
  Util.note
    "32-step epoch; speedup = 1-domain prove+merge wall / this run's.\n\
     Pools come from the process-wide registry (Pool.get): spawned once\n\
     per domain count, reused across rows, spawn cost outside the timed\n\
     sections. Domain.recommended_domain_count on this machine: %d\n\
     (wall-clock speedup is bounded by the cores actually available).\n"
    (Zen_crypto.Pool.recommended_domains ())

(* ---- E14: fault storm (Zen_sim.Faults) ---- *)

let e14_fault_storm () =
  Util.header "E14 fault-storm (Zen_sim.Faults)"
    "The epoch pipeline under seeded fault plans of growing intensity:\n\
     crashed/slow prover workers, dropped/delayed/duplicated certificate\n\
     submissions, adversarial reorgs and clock skew. Liveness (epochs\n\
     certified) degrades gracefully and proof bytes never change.";
  let params = Params.default in
  let family = Circuits.make params in
  let ticks = 24 and epoch_len = 4 and submit_len = 5 in
  let st = Sc_state.create params in
  let steps =
    List.init 8 (fun i ->
        Sc_tx.Insert
          (Utxo.make ~addr:(Hash.of_string "e14") ~amount:(amount (i + 1))
             ~nonce:(Hash.of_string (Printf.sprintf "e14-%d" i))))
  in
  let episode fl =
    Result.get_ok
      (Prover_pool.prove_epoch ~faults:fl family ~initial:st ~steps ~workers:4
         ~seed:42)
  in
  let digest proofs =
    Hash.tagged "e14.run"
      (List.map
         (fun tp -> Zen_snark.Backend.proof_encode tp.Prover_pool.proof)
         proofs)
  in
  let clean_digest = digest (fst (episode [])) in
  let rows =
    List.map
      (fun intensity ->
        let plan =
          Zen_sim.Faults.storm ~seed:42 ~first_tick:8 ~ticks
            ~epochs:(ticks / epoch_len) ~workers:4 ~intensity ()
        in
        let faults = Zen_sim.Faults.create ~seed:42 plan in
        let h = Zen_sim.Harness.create ~faults ~seed:"e14" () in
        Zen_sim.Harness.fund h ~blocks:5;
        let sc =
          Result.get_ok
            (Zen_sim.Harness.add_latus h ~name:"sc" ~family ~epoch_len
               ~submit_len ~activation_delay:1 ())
        in
        Zen_sim.Harness.tick_n h ticks;
        let certified =
          let state = Zen_mainchain.Chain.tip_state h.chain in
          match Zen_mainchain.Sc_ledger.find state.scs sc.ledger_id with
          | None -> 0
          | Some s -> List.length s.Zen_mainchain.Sc_ledger.certs
        in
        let worker_faults =
          List.concat_map
            (fun e -> Zen_sim.Faults.prover_faults faults ~epoch:e)
            (List.init (ticks / epoch_len) Fun.id)
        in
        let proofs, stats = episode worker_faults in
        [
          string_of_int intensity;
          string_of_int (List.length plan);
          string_of_int (Zen_sim.Faults.injected faults);
          string_of_int certified;
          string_of_bool (Zen_sim.Harness.is_ceased h sc);
          string_of_int stats.Prover_pool.retries;
          (if Hash.equal (digest proofs) clean_digest then "yes" else "NO");
        ])
      [ 0; 15; 30; 50 ]
  in
  Util.table
    ~columns:
      [
        "intensity %"; "plan size"; "injected"; "epochs certified"; "ceased";
        "prover retries"; "proof identical";
      ]
    rows;
  Util.note
    "24-tick world, epoch_len %d, submit_len %d (overlapping windows);\n\
     every row is replayable from (seed 42, printed plan size) alone.\n"
    epoch_len submit_len

(* ---- E15: MC verification at scale (verifier cache + batch verify) ---- *)

let e15_mc_scale () =
  Util.header "E15 mc-scale (verifier cache + batch verify + aggregation)"
    "Mainchain block validation with many registered sidechains, each\n\
     submitting an epoch-0 certificate in the same block. Compares the\n\
     no-cache sequential path against the cached path (miner prewarm +\n\
     Verifier.verify_batch on a Domain pool) and against certificate\n\
     aggregation (--aggregate: the miner folds every certificate proof\n\
     into one recursive aggregate, so each validation verifies exactly\n\
     one SNARK regardless of sidechain count). Accept/reject decisions\n\
     must be byte-identical for every configuration.";
  let open Zen_mainchain in
  let family = Circuits.make Params.default in
  let wcert_vk = (Circuits.wcert_keys family).Circuits.vk in
  let epoch_len = 4 and submit_len = 4 in
  (* Heavy proofdata: 256 field elements make MH(proofdata) — recomputed
     on every verification — dominate the wall clock, standing in for a
     production verifier's pairing/MSM cost. *)
  let schema = List.init 256 (fun _ -> Proofdata.Tfield) in
  let proofdata =
    List.init 256 (fun i -> Proofdata.Field (Fp.of_int (i + 1)))
  in
  let miner_addr = Hash.of_string "e15-miner" in
  let snark_verify = Zen_obs.Counter.make "snark.verify" in
  (* One full run: fresh chain, [sidechains] registrations, one cert per
     sidechain (every 4th sidechain also submits a cert whose claimed
     quality contradicts its proof — a reject decision), then the timed
     section: mine the certificate block, add it, and replay it twice
     against the parent state (the mempool-recheck / reorg path). *)
  let run ~sidechains ~cache ~aggregate pool =
    Verifier.Cache.clear ();
    Verifier.Cache.set_enabled cache;
    let mc_params = { Chain_state.default_params with pow = Pow.trivial } in
    let chain = ref (Chain.create ~params:mc_params ~time:0 ()) in
    let time = ref 0 in
    let mine candidates =
      incr time;
      let b, _ =
        Result.get_ok
          (Miner.build_block ~pool ~aggregate !chain ~time:!time ~miner_addr
             ~candidates)
      in
      let c, _ = Result.get_ok (Chain.add_block ~pool !chain b) in
      chain := c;
      b
    in
    for _ = 1 to 5 do
      ignore (mine [])
    done;
    let configs =
      List.init sidechains (fun i ->
          let ledger_id =
            Sidechain_config.derive_ledger_id ~creator:miner_addr ~nonce:(i + 1)
          in
          Result.get_ok
            (Sidechain_config.make ~ledger_id ~start_block:7 ~epoch_len
               ~submit_len ~wcert_vk ~wcert_proofdata:schema ()))
    in
    ignore (mine (List.map (fun c -> Tx.Sc_create c) configs));
    for _ = 1 to 4 do
      ignore (mine [])
    done;
    (* height 10: epoch 0 covers 7..10, its window is 11..14. *)
    let sched = Epoch.of_config (List.hd configs) in
    let st = Chain.tip_state !chain in
    let resolve h =
      if h < 0 then Hash.zero else Option.get (Chain_state.block_hash_at st h)
    in
    let end_prev_epoch = resolve (Epoch.last_height sched ~epoch:(-1)) in
    let end_epoch = resolve (Epoch.last_height sched ~epoch:0) in
    let proof =
      Result.get_ok
        (Circuits.prove_wcert_binding family ~quality:1
           ~bt_root:(Backward_transfer.list_root []) ~end_prev_epoch ~end_epoch
           ~proofdata ~s_prev:Fp.zero ~s_last:Fp.one)
    in
    let cert ~ledger_id ~quality =
      Tx.Certificate
        (Withdrawal_certificate.make ~ledger_id ~epoch_id:0 ~quality ~bt_list:[]
           ~proofdata ~proof)
    in
    let candidates =
      List.concat
        (List.mapi
           (fun i (c : Sidechain_config.t) ->
             let valid = cert ~ledger_id:c.ledger_id ~quality:1 in
             if i mod 4 = 0 then
               (* quality 2 contradicts the proof's statement: rejected. *)
               [ valid; cert ~ledger_id:c.ledger_id ~quality:2 ]
             else [ valid ])
           configs)
    in
    let parent_state = Chain.tip_state !chain in
    (* Producer side (untimed): the miner admits the candidates, which
       verifies every proof at first sight — into the cache when it is
       enabled, exactly as mempool admission would on a validator. *)
    let block = mine candidates in
    let v0 = Zen_obs.Counter.value snark_verify in
    let replays = ref [] in
    let wall =
      Zen_obs.Registry.with_enabled (fun () ->
          let t0 = Unix.gettimeofday () in
          for _ = 1 to 3 do
            Util.handicap_pause ();
            replays :=
              Result.is_ok (Chain_state.apply_block ~pool parent_state block)
              :: !replays
          done;
          Unix.gettimeofday () -. t0)
    in
    let verifies = Zen_obs.Counter.value snark_verify - v0 in
    let stats = Verifier.Cache.stats () in
    (* The digest binds the selected transactions (tx_root), not the
       block hash: an aggregated block legitimately hashes differently
       (its header commits to the aggregate), while the selection and
       the accept/reject decisions must be identical. *)
    let decisions =
      Hash.tagged "e15.decisions"
        (Hash.to_raw block.Block.header.tx_root
        :: List.map string_of_bool (List.rev !replays))
    in
    (wall, verifies, stats.Verifier.Cache.hits, decisions)
  in
  let identical_all = ref true in
  let rows =
    List.concat_map
      (fun sidechains ->
        let base_wall, base_verifies, base_hits, base_decisions =
          run ~sidechains ~cache:false ~aggregate:false
            Zen_crypto.Pool.sequential
        in
        List.map
          (fun (label, cache, domains, aggregate) ->
            let wall, verifies, hits, decisions =
              if (not cache) && domains = 1 && not aggregate then
                (base_wall, base_verifies, base_hits, base_decisions)
              else if domains = 1 then
                run ~sidechains ~cache ~aggregate Zen_crypto.Pool.sequential
              else
                run ~sidechains ~cache ~aggregate
                  (Zen_crypto.Pool.get ~domains)
            in
            let identical = Hash.equal decisions base_decisions in
            if not identical then identical_all := false;
            [
              string_of_int sidechains;
              label;
              string_of_int domains;
              string_of_int verifies;
              string_of_int hits;
              Util.pp_seconds wall;
              Printf.sprintf "%.2fx" (base_wall /. wall);
              (if identical then "yes" else "NO");
            ])
          [
            ("no-cache", false, 1, false);
            ("cache", true, 1, false);
            ("cache", true, 4, false);
            (* aggregated rows run without the cache so the timed
               section's verify count is the structural cost: one
               aggregate proof per validation, flat in [sidechains]. *)
            ("aggregated", false, 1, true);
            ("aggregated", false, 4, true);
          ])
      [ 1; 8; 32; 64 ]
  in
  Verifier.Cache.set_enabled true;
  Verifier.Cache.clear ();
  Util.table
    ~columns:
      [
        "sidechains"; "verifier"; "domains"; "SNARK verifies"; "cache hits";
        "3 validations"; "speedup"; "identical";
      ]
    rows;
  Util.note
    "batch decisions identical across domain counts: %b\n\
     Timed section = three full validations of the sealed certificate\n\
     block against its parent state (first acceptance, mempool re-check,\n\
     reorg replay). Every proof was verified once at first sight during\n\
     (untimed) mempool admission; the no-cache baseline re-verifies all\n\
     of them on every validation pass, the cached path answers each from\n\
     the verification cache, batched on the Domain pool. The aggregated\n\
     rows validate a block carrying one recursive certificate aggregate:\n\
     SNARK verifies stay at one per validation pass for every sidechain\n\
     count (the linear-to-constant flip), with the cache disabled so the\n\
     flat cost is structural, not cached.\n"
    !identical_all

(* ---- E16: compile-once circuit templates ---- *)

let e16_template () =
  Util.header "E16 template-cache (compile-once circuits)"
    "Epoch proving with per-prove circuit re-synthesis (legacy path,\n\
     --no-template-cache) versus compile-once templates: each family's\n\
     circuit is synthesized and SHA-digested once at startup, and every\n\
     prove afterwards only runs the witness generator against the\n\
     compiled CSR matrices. Proof bytes are checked identical across\n\
     every configuration.";
  let params = Params.default in
  let family = Circuits.make params in
  let st = Sc_state.create params in
  let n_steps = 64 in
  (* Slots are nonce-derived; skip the occasional nonce whose slot is
     already taken so the epoch applies cleanly. *)
  let steps =
    let rec gen acc_st acc i n =
      if n = 0 then List.rev acc
      else
        let u =
          Utxo.make ~addr:(Hash.of_string "e16") ~amount:(amount (i + 1))
            ~nonce:(Hash.of_string (Printf.sprintf "e16-%d" i))
        in
        match Sc_tx.apply_step acc_st (Sc_tx.Insert u) with
        | Ok st' -> gen st' (Sc_tx.Insert u :: acc) (i + 1) (n - 1)
        | Error _ -> gen acc_st acc (i + 1) n
    in
    gen st [] 0 n_steps
  in
  let finalizes = Zen_obs.Counter.make "snark.r1cs.finalize" in
  let hits = Zen_obs.Counter.make "latus.template.hits" in
  let misses = Zen_obs.Counter.make "latus.template.misses" in
  (* One timed epoch: [templates] is set before the pool touches it and
     read-only while the workers run. Counter deltas are recorded inside
     Registry.with_enabled so the finalize/hit columns reflect exactly
     this epoch's proves. *)
  let run ~templates pool =
    Circuits.set_use_templates templates;
    Zen_obs.Registry.with_enabled @@ fun () ->
    let snap () =
      ( Zen_obs.Counter.value finalizes,
        Zen_obs.Counter.value hits,
        Zen_obs.Counter.value misses )
    in
    let fin0, hit0, mis0 = snap () in
    let t0 = Unix.gettimeofday () in
    Util.handicap_pause ();
    let proofs, _ =
      match
        Prover_pool.prove_epoch ~pool family ~initial:st ~steps
          ~workers:(Zen_crypto.Pool.domains pool) ~seed:16
      with
      | Ok r -> r
      | Error e -> failwith ("e16 prove_epoch: " ^ e)
    in
    let wall = Unix.gettimeofday () -. t0 in
    let fin1, hit1, mis1 = snap () in
    let fingerprint =
      Hash.tagged "e16.run"
        (List.map
           (fun tp -> Zen_snark.Backend.proof_encode tp.Prover_pool.proof)
           proofs)
    in
    (wall, fin1 - fin0, hit1 - hit0, mis1 - mis0, fingerprint)
  in
  (* Warm-up epoch (untimed): first-touch costs land here, not in the
     baseline row. *)
  ignore (run ~templates:true Zen_crypto.Pool.sequential);
  let base = run ~templates:false Zen_crypto.Pool.sequential in
  let (base_wall, _, _, _, base_fp) = base in
  let identical_all = ref true in
  let rows =
    List.concat_map
      (fun domains ->
        let at pool =
          let off =
            if domains = 1 then base else run ~templates:false pool
          in
          let on_ = run ~templates:true pool in
          (off, on_)
        in
        let (off, on_) =
          if domains = 1 then at Zen_crypto.Pool.sequential
          else at (Zen_crypto.Pool.get ~domains)
        in
        List.map
          (fun (label, (wall, fin, hit, mis, fp)) ->
            let identical = Hash.equal fp base_fp in
            if not identical then identical_all := false;
            [
              string_of_int domains;
              label;
              Util.pp_seconds wall;
              Printf.sprintf "%.0f" (float_of_int n_steps /. wall);
              string_of_int fin;
              string_of_int hit;
              string_of_int mis;
              Printf.sprintf "%.2fx" (base_wall /. wall);
              (if identical then "yes" else "NO");
            ])
          [ ("re-synthesis", off); ("template", on_) ])
      [ 1; 2; 4 ]
  in
  Circuits.set_use_templates true;
  Util.table
    ~columns:
      [
        "domains"; "prover"; "epoch wall"; "steps/s"; "finalizes"; "tpl hits";
        "tpl misses"; "speedup"; "identical";
      ]
    rows;
  Util.note
    "proof bytes identical across all configurations: %b\n\
     64-step epoch; speedup is against re-synthesis at 1 domain.\n\
     finalizes counts R1cs circuit synthesis+digest runs during the\n\
     epoch: one per proved step on the legacy path, zero on the\n\
     template path (templates compile before the timed section).\n\
     Multi-domain rows run on the persistent registry pool (Pool.get,\n\
     spawned once, cost-hinted chunking); recommended_domain_count\n\
     here: %d.\n"
    !identical_all
    (Zen_crypto.Pool.recommended_domains ())

(* ---- E17: million-user soak (workload engine, batched state layer) ---- *)

let e17_soak () =
  Util.header "E17 soak (deterministic workload, batched state updates)"
    "The Zen_sim.Workload engine drives the soak profile — 1M zipfian\n\
     accounts, 110k mixed transactions per simulated epoch over 16\n\
     diurnal phases, deterministic reorgs every 7th phase — against the\n\
     Latus state layer. Batched commits (one merged MST traversal per\n\
     phase) against the per-key path they replace, and O(1)\n\
     copy-on-write rollback snapshots against replay-from-epoch-start.\n\
     Every mode must produce the same digest: only the wall clock may\n\
     move.";
  let profile = Zen_sim.Workload.soak in
  let run ~batched ~snapshots =
    Util.handicap_pause ();
    match Zen_sim.Workload.run ~batched ~snapshots ~seed:17 profile with
    | Ok s -> s
    | Error e -> failwith ("e17: " ^ e)
  in
  let b = run ~batched:true ~snapshots:true in
  let nb = run ~batched:false ~snapshots:true in
  let ns = run ~batched:true ~snapshots:false in
  let row name (s : Zen_sim.Workload.stats) =
    [
      name;
      string_of_int s.applied;
      string_of_int (s.applied / s.profile.epochs);
      Util.pp_seconds s.wall_s;
      Printf.sprintf "%.0f tx/s" (float_of_int s.applied /. s.wall_s);
      string_of_int s.peak_words;
    ]
  in
  Util.table
    ~columns:
      [ "state updates"; "txs applied"; "per epoch"; "wall"; "throughput";
        "peak heap (w)" ]
    [ row "batched" b; row "per-key" nb ];
  Util.note
    "batched %.2fx faster; >=100k txs per epoch sustained: %b; digest \
     identical: %b"
    (nb.wall_s /. b.wall_s)
    (b.applied / b.profile.epochs >= 100_000)
    (Hash.equal b.digest nb.digest);
  Util.table
    ~columns:
      [ "rollback"; "rollbacks"; "txs rolled back"; "phases re-run"; "wall" ]
    [
      [
        "O(1) snapshots";
        string_of_int b.rollbacks;
        string_of_int b.rolled_back_txs;
        string_of_int b.replayed_phases;
        Util.pp_seconds b.wall_s;
      ];
      [
        "replay from epoch start";
        string_of_int ns.rollbacks;
        string_of_int ns.rolled_back_txs;
        string_of_int ns.replayed_phases;
        Util.pp_seconds ns.wall_s;
      ];
    ];
  Util.note "snapshots digest identical: %b" (Hash.equal b.digest ns.digest);
  (* The per-address coin index the soak exposed: coins_of_addr was a
     full-map fold per wallet refresh. *)
  let n_coins = 100_000 and n_addrs = 1_000 in
  let addr i = Hash.tagged "e17.addr" [ string_of_int (i mod n_addrs) ] in
  let changes =
    List.init n_coins (fun i ->
        ( { Zen_mainchain.Tx.txid = Hash.tagged "e17.op" [ string_of_int i ];
            vout = 0 },
          Some
            {
              Zen_mainchain.Utxo_set.addr = addr i;
              amount = amount ((i mod 1000) + 1);
              spendable_after = 0;
            } ))
  in
  let us = Zen_mainchain.Utxo_set.apply_batch Zen_mainchain.Utxo_set.empty changes in
  let target = addr 17 in
  let indexed_t =
    Util.time_per_run ~budget:0.2 (fun () ->
        Zen_mainchain.Utxo_set.coins_of_addr us target)
  in
  let naive_t =
    Util.time_per_run ~budget:0.4 ~min_runs:1 (fun () ->
        Zen_mainchain.Utxo_set.fold us ~init:[] ~f:(fun acc op c ->
            if Hash.equal c.Zen_mainchain.Utxo_set.addr target then
              (op, c) :: acc
            else acc))
  in
  Util.table
    ~columns:[ "coins_of_addr"; "coins"; "addresses"; "per query" ]
    [
      [ "indexed"; string_of_int n_coins; string_of_int n_addrs;
        Util.pp_seconds indexed_t ];
      [ "naive full scan"; string_of_int n_coins; string_of_int n_addrs;
        Util.pp_seconds naive_t ];
    ];
  Util.note "index speedup %.0fx on %d coins / %d addresses"
    (naive_t /. indexed_t) n_coins n_addrs

(* ---- E18: pipelined epoch proving ---- *)

let e18_pipeline () =
  Util.header "E18 pipeline (pipelined epoch proving)"
    "Proof_pipeline takes base-proof generation off the forge path and\n\
     folds completed proofs through the online balanced merge between\n\
     ticks, leaving certify time only the <= ceil(log2 n) binary-counter\n\
     carry merges plus the binding check — against the burst path that\n\
     proves and fold_balances all n leaves at the epoch boundary. The\n\
     run log must be byte-identical pipeline on or off, for every\n\
     domain count; only latency moves.";
  let params = Params.default in
  let family = Circuits.make params in
  let run ~pipeline ~domains =
    let pool = Pool.get ~domains in
    let h = Zen_sim.Harness.create ~pool ~pipeline ~seed:"e18" () in
    Zen_sim.Harness.fund h ~blocks:5;
    let sc =
      match
        Zen_sim.Harness.add_latus h ~name:"sc" ~family ~epoch_len:6
          ~submit_len:5 ~activation_delay:1 ()
      with
      | Ok sc -> sc
      | Error e -> failwith ("e18: " ^ e)
    in
    (match
       Zen_sim.Harness.set_workload h ~profile:Zen_sim.Workload.smoke ~seed:18
     with
    | Ok () -> ()
    | Error e -> failwith ("e18: " ^ e));
    let ticks = ref [] in
    let t_all = Unix.gettimeofday () in
    for i = 1 to 24 do
      let t = Unix.gettimeofday () in
      (* inside the measured window so the sentinel's negative control
         (ZENDOO_BENCH_HANDICAP_MS) shows up in tick max and wall *)
      if i = 1 then Util.handicap_pause ();
      Zen_sim.Harness.tick h;
      ticks := (Unix.gettimeofday () -. t) :: !ticks
    done;
    let wall = Unix.gettimeofday () -. t_all in
    let digest =
      Hash.of_string (String.concat "\n" (Zen_sim.Harness.dump_log h))
    in
    ( Array.of_list (List.rev !ticks),
      wall,
      digest,
      Node.certificate_stats sc.node )
  in
  let pct arr q =
    let a = Array.copy arr in
    Array.sort compare a;
    let n = Array.length a in
    a.(min (n - 1) (int_of_float (q *. float_of_int n)))
  in
  let results =
    List.map
      (fun domains ->
        let on = run ~pipeline:true ~domains in
        let off = run ~pipeline:false ~domains in
        (domains, on, off))
      [ 1; 2; 4 ]
  in
  let row mode domains (ticks, wall, _, _) =
    [
      mode;
      string_of_int domains;
      Util.pp_seconds (pct ticks 0.50);
      Util.pp_seconds (pct ticks 0.99);
      Util.pp_seconds (pct ticks 1.0);
      Util.pp_seconds wall;
    ]
  in
  Util.table
    ~columns:[ "mode"; "domains"; "tick p50"; "tick p99"; "tick max"; "wall" ]
    (List.concat_map
       (fun (domains, on, off) ->
         [ row "pipelined" domains on; row "burst" domains off ])
       results);
  let digest_of (_, _, d, _) = d in
  let _, on1, _ = List.hd results in
  Util.note "log digest identical pipeline on/off: %b; across domains: %b\n"
    (List.for_all
       (fun (_, on, off) -> Hash.equal (digest_of on) (digest_of off))
       results)
    (List.for_all
       (fun (_, on, _) -> Hash.equal (digest_of on) (digest_of on1))
       results);
  (* Certify-path accounting: deterministic in the seed, so identical
     for every row above (taken from the 1-domain pipelined run). *)
  let _, _, _, stats = on1 in
  Util.table
    ~columns:
      [ "epoch"; "leaves"; "certify merges (pipelined)"; "burst merges";
        "bound ceil(log2 n)" ]
    (List.map
       (fun (cs : Proof_pipeline.certificate_stats) ->
         let bound =
           let rec go acc p =
             if p >= cs.cert_leaves then acc else go (acc + 1) (p * 2)
           in
           if cs.cert_leaves <= 1 then 0 else go 0 1
         in
         [
           string_of_int cs.cert_epoch;
           string_of_int cs.cert_leaves;
           string_of_int cs.cert_carry_merges;
           string_of_int (max 0 (cs.cert_leaves - 1));
           string_of_int bound;
         ])
       stats);
  Util.note "all certify-path merge counts within ceil(log2 n) + 1: %b\n"
    (List.for_all
       (fun (cs : Proof_pipeline.certificate_stats) ->
         let rec bound acc p =
           if p >= cs.cert_leaves then acc else bound (acc + 1) (p * 2)
         in
         cs.cert_carry_merges
         <= (if cs.cert_leaves <= 1 then 0 else bound 0 1) + 1)
       stats)

let all =
  [
    ("E1", e1_mht_scaling);
    ("E2", e2_epoch_schedule);
    ("E3", e3_sctx_commitment);
    ("E4", e4_leader_fairness);
    ("E5", e5_mst_ops);
    ("E6", e6_recursive_proof);
    ("E7", e7_wcert_verification);
    ("E8", e8_csw_btr);
    ("E9", e9_safeguard_stress);
    ("E10", e10_latus_txs);
    ("E11", e11_snark_costs);
    ("E12", e12_wire_sizes);
    ("E13", e13_prover_pool);
    ("E14", e14_fault_storm);
    ("E15", e15_mc_scale);
    ("E16", e16_template);
    ("E17", e17_soak);
    ("E18", e18_pipeline);
  ]
