(* Unit and property tests for the arbitrary-precision substrate. *)

open Zen_crypto

let check = Alcotest.(check string)
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let hex = Bignum.to_hex
let h = Bignum.of_hex

let test_of_int_roundtrip () =
  List.iter
    (fun n -> checki "roundtrip" n Bignum.(to_int (of_int n)))
    [ 0; 1; 2; 255; 256; 65535; 1 lsl 26; (1 lsl 52) + 12345; max_int / 2 ]

let test_hex_roundtrip () =
  List.iter
    (fun s -> check ("hex " ^ s) s (hex (h s)))
    [
      "0";
      "1";
      "ff";
      "100";
      "deadbeef";
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f";
    ]

let test_add_sub () =
  let a = h "ffffffffffffffffffffffff" and b = h "1" in
  check "add carry" "1000000000000000000000000" (hex (Bignum.add a b));
  check "sub" "ffffffffffffffffffffffff"
    (hex (Bignum.sub (Bignum.add a b) b));
  Alcotest.check_raises "underflow" (Invalid_argument "Bignum.sub: underflow")
    (fun () -> ignore (Bignum.sub b a))

let test_mul () =
  check "simple" "fffffffffffffffe0000000000000001"
    (hex (Bignum.mul (h "ffffffffffffffff") (h "ffffffffffffffff")));
  check "zero" "0" (hex (Bignum.mul (h "abcdef") Bignum.zero))

let test_divmod () =
  let a = h "123456789abcdef0123456789abcdef" and b = h "fedcba987" in
  let q, r = Bignum.divmod a b in
  checkb "a = q*b + r" true
    (Bignum.equal a (Bignum.add (Bignum.mul q b) r));
  checkb "r < b" true (Bignum.compare r b < 0);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bignum.divmod a Bignum.zero))

let test_shifts () =
  let a = h "123456789" in
  check "left 4" "1234567890" (hex (Bignum.shift_left a 4));
  check "right 8" "1234567" (hex (Bignum.shift_right a 8));
  check "left 100 then right 100" "123456789"
    (hex (Bignum.shift_right (Bignum.shift_left a 100) 100))

let test_bytes_roundtrip () =
  let a = h "0102030405060708090a" in
  let s = Bignum.to_bytes_be ~len:16 a in
  checki "padded length" 16 (String.length s);
  checkb "roundtrip" true (Bignum.equal a (Bignum.of_bytes_be s))

let test_num_bits () =
  checki "zero" 0 (Bignum.num_bits Bignum.zero);
  checki "one" 1 (Bignum.num_bits Bignum.one);
  checki "255" 8 (Bignum.num_bits (Bignum.of_int 255));
  checki "256" 9 (Bignum.num_bits (Bignum.of_int 256))

let test_gcd () =
  let a = Bignum.of_int (12 * 35) and b = Bignum.of_int (12 * 22) in
  checki "gcd" 12 (Bignum.to_int (Bignum.gcd a b))

(* Modring: Barrett reduction must agree with long division. *)
let secp_p =
  h "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"

let test_modring_reduce () =
  let r = Bignum.Modring.create secp_p in
  let x = Bignum.mul (Bignum.sub secp_p Bignum.one) (Bignum.sub secp_p Bignum.two) in
  checkb "barrett = rem" true
    (Bignum.equal (Bignum.Modring.reduce r x) (Bignum.rem x secp_p))

let test_modring_inverse () =
  let r = Bignum.Modring.create secp_p in
  let a = h "123456789abcdef" in
  let inv = Bignum.Modring.inv_prime r a in
  checkb "a * a^-1 = 1" true
    (Bignum.equal (Bignum.Modring.mul r a inv) Bignum.one)

let test_modring_sqrt () =
  let r = Bignum.Modring.create secp_p in
  let a = h "9" in
  (match Bignum.Modring.sqrt_3mod4 r a with
  | None -> Alcotest.fail "9 should have a root"
  | Some root ->
    checkb "root^2 = 9" true (Bignum.equal (Bignum.Modring.sq r root) a));
  (* secp256k1 curve constant 7 is handled inside Ec; pick a known
     non-residue: 5 is a non-residue mod p for secp256k1's p. *)
  match Bignum.Modring.sqrt_3mod4 r (Bignum.of_int 5) with
  | None -> ()
  | Some root ->
    checkb "if a root is returned it must square back" true
      (Bignum.equal (Bignum.Modring.sq r root) (Bignum.of_int 5))

(* Property tests *)

let gen_bignum =
  QCheck2.Gen.(
    map
      (fun (a, b) -> Bignum.add (Bignum.of_int a) (Bignum.shift_left (Bignum.of_int b) 62))
      (pair (int_bound max_int) (int_bound max_int)))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:200 gen f)

let props =
  [
    prop "add commutative" (QCheck2.Gen.pair gen_bignum gen_bignum)
      (fun (a, b) -> Bignum.equal (Bignum.add a b) (Bignum.add b a));
    prop "mul commutative" (QCheck2.Gen.pair gen_bignum gen_bignum)
      (fun (a, b) -> Bignum.equal (Bignum.mul a b) (Bignum.mul b a));
    prop "mul distributes" (QCheck2.Gen.triple gen_bignum gen_bignum gen_bignum)
      (fun (a, b, c) ->
        Bignum.equal
          (Bignum.mul a (Bignum.add b c))
          (Bignum.add (Bignum.mul a b) (Bignum.mul a c)));
    prop "divmod invariant" (QCheck2.Gen.pair gen_bignum gen_bignum)
      (fun (a, b) ->
        let b = Bignum.add b Bignum.one in
        let q, r = Bignum.divmod a b in
        Bignum.equal a (Bignum.add (Bignum.mul q b) r) && Bignum.compare r b < 0);
    prop "hex roundtrip" gen_bignum (fun a ->
        Bignum.equal a (Bignum.of_hex (Bignum.to_hex a)));
    prop "bytes roundtrip" gen_bignum (fun a ->
        Bignum.equal a (Bignum.of_bytes_be (Bignum.to_bytes_be a)));
    prop "shift inverse" (QCheck2.Gen.pair gen_bignum (QCheck2.Gen.int_bound 200))
      (fun (a, n) ->
        Bignum.equal a (Bignum.shift_right (Bignum.shift_left a n) n));
    prop "barrett agrees with rem"
      (QCheck2.Gen.pair gen_bignum gen_bignum)
      (fun (a, _) ->
        let r = Bignum.Modring.create secp_p in
        let x = Bignum.mul a a in
        Bignum.equal (Bignum.Modring.reduce r x) (Bignum.rem x secp_p));
  ]

let suite =
  ( "bignum",
    [
      Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
      Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
      Alcotest.test_case "add/sub" `Quick test_add_sub;
      Alcotest.test_case "mul" `Quick test_mul;
      Alcotest.test_case "divmod" `Quick test_divmod;
      Alcotest.test_case "shifts" `Quick test_shifts;
      Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
      Alcotest.test_case "num_bits" `Quick test_num_bits;
      Alcotest.test_case "gcd" `Quick test_gcd;
      Alcotest.test_case "modring reduce" `Quick test_modring_reduce;
      Alcotest.test_case "modring inverse" `Quick test_modring_inverse;
      Alcotest.test_case "modring sqrt" `Quick test_modring_sqrt;
    ]
    @ props )
