(* Adversarial scenarios: the quality rule with payout claw-back,
   tampered proofs, and the withdrawal safeguard as the last line of
   defence against a fully corrupted sidechain (§4.1.2.2). *)

open Zen_crypto
open Zen_mainchain
open Zen_latus
open Zendoo

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let ok = function Ok v -> v | Error e -> Alcotest.fail e
let amount n = Amount.of_int_exn n

let params = Params.default
let family = Circuits.make params

type world = {
  mutable chain : Chain.t;
  mutable mempool : Mempool.t;
  mc_wallet : Wallet.t;
  miner : Hash.t;
  ledger_id : Hash.t;
  config : Sidechain_config.t;
  mutable time : int;
}

let mine w =
  w.time <- w.time + 1;
  let b, _ =
    ok
      (Miner.build_block w.chain ~time:w.time ~miner_addr:w.miner
         ~candidates:(Mempool.txs w.mempool))
  in
  let c, _ = ok (Chain.add_block w.chain b) in
  w.chain <- c;
  w.mempool <- Mempool.remove_included w.mempool b

let mine_n w n =
  for _ = 1 to n do
    mine w
  done

let submit w tx = w.mempool <- Mempool.add w.mempool tx

(* A world with a registered sidechain but NO honest node attached —
   the adversarial tests drive nodes (or raw certificates) manually. *)
let make_world seed =
  let mc_params = { Chain_state.default_params with pow = Pow.trivial } in
  let chain = Chain.create ~params:mc_params ~time:0 () in
  let mc_wallet = Wallet.create ~seed in
  let miner = Wallet.fresh_address mc_wallet in
  let ledger_id = Sidechain_config.derive_ledger_id ~creator:miner ~nonce:1 in
  let w =
    { chain; mempool = Mempool.empty; mc_wallet; miner;
      ledger_id; config = Obj.magic 0; time = 0 }
  in
  mine_n w 5;
  let config =
    ok (Node.config_for ~ledger_id ~start_block:7 ~epoch_len:4 ~submit_len:2 family)
  in
  submit w (Tx.Sc_create config);
  mine w;
  { w with config }

let make_node w seed =
  let forger = Sc_wallet.create ~seed in
  let (_ : Hash.t) = Sc_wallet.fresh_address forger in
  ok (Node.create ~config:w.config ~params ~family ~forger ())

let do_ft w ~receiver ~amt =
  let tx =
    ok
      (Wallet.build_forward_transfer w.mc_wallet (Chain.tip_state w.chain)
         ~ledger_id:w.ledger_id
         ~receiver_metadata:(Sc_tx.ft_metadata ~receiver ~payback:receiver)
         ~amount:amt ~fee:Amount.zero)
  in
  submit w tx

let sc_on_mc w =
  Option.get (Sc_ledger.find (Chain.tip_state w.chain).scs w.ledger_id)

(* ---- quality competition with payout claw-back ---- *)

(* Two competing sidechain views of the same epoch: LOW syncs the
   whole epoch in one block (completing height 0 → quality 0) and
   certifies an empty BT list; HIGH forges across the epoch in two
   blocks (quality 1) with a backward transfer inside. Submitting LOW
   then HIGH within the window must replace the certificate, claw back
   LOW's payouts and re-apply the safeguard accounting. *)
let test_quality_replacement_claws_back_payouts () =
  let w2 = make_world "claw2" in
  (* A dedicated receiver wallet: the harness wallet's newest key also
     collects transfer change, which would pollute the payout count. *)
  let recv_high = Wallet.fresh_address (Wallet.create ~seed:"claw2.recv") in
  let user2 = Sc_wallet.create ~seed:"claw2.user" in
  let user2_addr = Sc_wallet.fresh_address user2 in
  mine w2;
  do_ft w2 ~receiver:user2_addr ~amt:(amount 600_000);
  mine w2;
  (* MC at height 8: epoch 0 partially mined *)
  let node_high = make_node w2 "claw2.high" in
  let (_ : Sc_block.t option) = ok (Node.forge node_high ~mc:w2.chain ~slot:1 ()) in
  mine_n w2 2;
  (* complete epoch 0 on MC (heights 9,10) *)
  (* BT inside epoch 0's remaining blocks *)
  let state = Node.next_block_state node_high in
  let coin = List.hd (Sc_wallet.utxos user2 state) in
  let bt =
    ok (Sc_wallet.build_backward_transfer user2 state ~utxo:coin ~mc_receiver:recv_high)
  in
  ok (Node.submit_tx node_high bt);
  let (_ : Sc_block.t option) = ok (Node.forge node_high ~mc:w2.chain ~slot:2 ()) in
  let cert_high =
    match ok (Node.build_certificate node_high ~mc:w2.chain) with
    | Some tx -> tx
    | None -> Alcotest.fail "high cert not ready"
  in
  (* Also a LOW competitor in w2: a node that synced everything in one
     block (quality 0, no BTs). *)
  let node_low2 = make_node w2 "claw2.low" in
  let (_ : Sc_block.t option) = ok (Node.forge node_low2 ~mc:w2.chain ~slot:1 ()) in
  let cert_low2 =
    match ok (Node.build_certificate node_low2 ~mc:w2.chain) with
    | Some tx -> tx
    | None -> Alcotest.fail "low2 cert not ready"
  in
  (* Submit LOW first (lands at height 11), then HIGH replaces it at
     height 12 — both inside the window 11..12. *)
  submit w2 cert_low2;
  mine w2;
  let sc = sc_on_mc w2 in
  checki "low accepted" 1 (List.length sc.certs);
  checki "low quality" 0 (List.hd sc.certs).cert.quality;
  checki "balance intact (no BTs in low)" 600_000 (Amount.to_int sc.balance);
  submit w2 cert_high;
  mine w2;
  let sc = sc_on_mc w2 in
  checki "still one cert for epoch 0" 1 (List.length sc.certs);
  checki "high quality won" 1 (List.hd sc.certs).cert.quality;
  checki "balance debited by high's BT" 0 (Amount.to_int sc.balance);
  let payout = Utxo_set.coins_of_addr (Chain.tip_state w2.chain).utxos recv_high in
  checki "high payout present" 1 (List.length payout)

(* ---- tampered certificates ---- *)

let test_tampered_cert_rejected () =
  let w = make_world "tamper" in
  let node = make_node w "tamper.node" in
  let user = Sc_wallet.create ~seed:"tamper.user" in
  let user_addr = Sc_wallet.fresh_address user in
  mine w;
  do_ft w ~receiver:user_addr ~amt:(amount 100_000);
  mine_n w 3;
  let (_ : Sc_block.t option) = ok (Node.forge node ~mc:w.chain ~slot:1 ()) in
  let cert_tx =
    match ok (Node.build_certificate node ~mc:w.chain) with
    | Some tx -> tx
    | None -> Alcotest.fail "no cert"
  in
  let cert = match cert_tx with Tx.Certificate c -> c | _ -> assert false in
  let try_apply tx =
    let st = Chain.tip_state w.chain in
    Chain_state.apply_tx st ~height:(st.height + 1) ~block_hash:Hash.zero tx
  in
  (* 1. extra backward transfer injected after proving *)
  let forged_bts =
    Tx.Certificate
      {
        cert with
        bt_list =
          cert.bt_list
          @ [ Backward_transfer.make ~receiver_addr:user_addr ~amount:(amount 1) ];
      }
  in
  checkb "forged bt list rejected" true (Result.is_error (try_apply forged_bts));
  (* 2. inflated quality *)
  let forged_quality = Tx.Certificate { cert with quality = cert.quality + 10 } in
  checkb "forged quality rejected" true (Result.is_error (try_apply forged_quality));
  (* 3. corrupted proof bytes *)
  let corrupt =
    let b = Bytes.of_string (Zen_snark.Backend.proof_encode cert.proof) in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
    Option.get (Zen_snark.Backend.proof_decode (Bytes.to_string b))
  in
  checkb "corrupted proof rejected" true
    (Result.is_error (try_apply (Tx.Certificate { cert with proof = corrupt })));
  (* 4. wrong epoch id *)
  checkb "wrong epoch rejected" true
    (Result.is_error (try_apply (Tx.Certificate { cert with epoch_id = 5 })));
  (* and the genuine one still passes *)
  checkb "genuine accepted" true (Result.is_ok (try_apply cert_tx))

(* ---- the safeguard against a fully corrupt sidechain ---- *)

let test_safeguard_caps_corrupt_sidechain () =
  let w = make_world "corrupt" in
  let user_addr = Sc_wallet.fresh_address (Sc_wallet.create ~seed:"c.user") in
  mine w;
  do_ft w ~receiver:user_addr ~amt:(amount 50_000);
  mine_n w 3;
  (* A corrupt certifier forges a binding proof directly — in the
     simulation the binding circuit does not tie BTList to any real
     state, modelling a sidechain whose *stakeholders* are fully
     malicious (the paper's §4.1.2.2 threat). The safeguard must cap
     what they can steal at the sidechain balance. *)
  let thief = Hash.of_string "thief" in
  let forge_cert amt =
    let bt_list = [ Backward_transfer.make ~receiver_addr:thief ~amount:amt ] in
    let proofdata =
      Proofdata.
        [ Digest Hash.zero; Field Fp.one; Blob (String.make 512 '\000') ]
    in
    let sched = Epoch.of_config w.config in
    let st = Chain.tip_state w.chain in
    let end_prev =
      Option.get
        (Chain_state.block_hash_at st (Epoch.last_height sched ~epoch:(-1)))
    in
    let end_epoch =
      Option.get (Chain_state.block_hash_at st (Epoch.last_height sched ~epoch:0))
    in
    let proof =
      ok
        (Circuits.prove_wcert_binding family ~quality:3
           ~bt_root:(Backward_transfer.list_root bt_list)
           ~end_prev_epoch:end_prev ~end_epoch ~proofdata ~s_prev:Fp.zero
           ~s_last:Fp.one)
    in
    Tx.Certificate
      (Withdrawal_certificate.make ~ledger_id:w.ledger_id ~epoch_id:0
         ~quality:3 ~bt_list ~proofdata ~proof)
  in
  let st = Chain.tip_state w.chain in
  (* stealing more than the balance: blocked by the safeguard *)
  (match
     Chain_state.apply_tx st ~height:(st.height + 1) ~block_hash:Hash.zero
       (forge_cert (amount 50_001))
   with
  | Error e ->
    checkb "safeguard message" true
      (String.length e > 0 && String.sub e 0 4 = "cert")
  | Ok _ -> Alcotest.fail "over-balance withdrawal accepted");
  (* stealing exactly the balance: the simulation's corrupt prover can
     do it — which is precisely the residual risk the paper accepts:
     a corrupt sidechain can take its own deposits but can never mint
     mainchain coins. *)
  match
    Chain_state.apply_tx st ~height:(st.height + 1) ~block_hash:Hash.zero
      (forge_cert (amount 50_000))
  with
  | Ok (st', _) ->
    checki "balance drained but not negative" 0
      (Amount.to_int (Option.get (Chain_state.sc_balance st' w.ledger_id)))
  | Error e -> Alcotest.fail e

(* ---- withdrawal request forgeries ---- *)

let test_forged_withdrawal_requests () =
  let w = make_world "fw" in
  let node = make_node w "fw.node" in
  let user = Sc_wallet.create ~seed:"fw.user" in
  let user_addr = Sc_wallet.fresh_address user in
  mine w;
  do_ft w ~receiver:user_addr ~amt:(amount 70_000);
  mine_n w 3;
  let (_ : Sc_block.t option) = ok (Node.forge node ~mc:w.chain ~slot:1 ()) in
  let cert_tx =
    match ok (Node.build_certificate node ~mc:w.chain) with
    | Some tx -> tx
    | None -> Alcotest.fail "no cert"
  in
  submit w cert_tx;
  mine w;
  let sc = sc_on_mc w in
  let committed = Option.get (Node.state_at_epoch_end node ~epoch:0) in
  let coin = List.hd (Sc_wallet.utxos user committed) in
  let btr =
    ok
      (Node.create_withdrawal_request node ~kind:Mainchain_withdrawal.Btr
         ~utxo:coin ~receiver:user_addr
         ~reference_block:(Sc_ledger.reference_block_for sc)
         ())
  in
  let st = Chain.tip_state w.chain in
  let check_rejected what request =
    match Sc_ledger.check_withdrawal st.scs ~request ~height:(st.height + 1) with
    | Error _ -> ()
    | Ok () -> Alcotest.fail (what ^ " accepted")
  in
  (* inflate the amount after proving *)
  check_rejected "inflated amount"
    { btr with Mainchain_withdrawal.amount = amount 999_999 };
  (* redirect the receiver *)
  check_rejected "redirected receiver"
    { btr with Mainchain_withdrawal.receiver = Hash.of_string "thief" };
  (* swap the nullifier to dodge double-spend tracking *)
  check_rejected "forged nullifier"
    { btr with Mainchain_withdrawal.nullifier = Hash.of_string "fresh" };
  (* and the genuine one passes *)
  checkb "genuine btr ok" true
    (Result.is_ok
       (Sc_ledger.check_withdrawal st.scs ~request:btr ~height:(st.height + 1)))

let suite =
  ( "adversarial",
    [
      Alcotest.test_case "quality replacement claw-back" `Quick
        test_quality_replacement_claws_back_payouts;
      Alcotest.test_case "tampered certificates" `Quick test_tampered_cert_rejected;
      Alcotest.test_case "safeguard caps corruption" `Quick
        test_safeguard_caps_corrupt_sidechain;
      Alcotest.test_case "forged withdrawal requests" `Quick
        test_forged_withdrawal_requests;
    ] )
