(* The discrete-event simulator and the world harness. *)

open Zen_sim
open Zendoo

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let amount n = Amount.of_int_exn n

let test_des_ordering () =
  let sim = Des.create () in
  let trace = ref [] in
  Des.schedule_at sim ~time:5 (fun _ -> trace := 5 :: !trace);
  Des.schedule_at sim ~time:1 (fun _ -> trace := 1 :: !trace);
  Des.schedule_at sim ~time:3 (fun _ -> trace := 3 :: !trace);
  Des.run sim ~until:10;
  Alcotest.(check (list int)) "time order" [ 1; 3; 5 ] (List.rev !trace)

let test_des_fifo_within_time () =
  let sim = Des.create () in
  let trace = ref [] in
  Des.schedule_at sim ~time:2 (fun _ -> trace := "a" :: !trace);
  Des.schedule_at sim ~time:2 (fun _ -> trace := "b" :: !trace);
  Des.run sim ~until:10;
  Alcotest.(check (list string)) "insertion order" [ "a"; "b" ] (List.rev !trace)

let test_des_cascading () =
  let sim = Des.create () in
  let count = ref 0 in
  let rec step s =
    incr count;
    if !count < 5 then Des.schedule s ~delay:2 step
  in
  Des.schedule sim ~delay:1 step;
  Des.run sim ~until:100;
  checki "cascade" 5 !count;
  checki "final time" 9 (Des.now sim)

let test_des_until_cutoff () =
  let sim = Des.create () in
  let count = ref 0 in
  Des.every sim ~period:10 (fun _ -> incr count);
  Des.run sim ~until:35;
  checki "three firings" 3 !count;
  checkb "pending remains" true (Des.pending sim > 0)

let test_harness_epoch_cycle () =
  let h = Harness.create ~seed:"sim1" () in
  Harness.fund h ~blocks:5;
  let sc =
    Result.get_ok
      (Harness.add_latus h ~name:"alpha" ~epoch_len:4 ~submit_len:2
         ~activation_delay:1 ())
  in
  let user = Zen_latus.Sc_wallet.create ~seed:"sim1.user" in
  let user_addr = Zen_latus.Sc_wallet.fresh_address user in
  let payback = user_addr in
  Result.get_ok
    (Harness.forward_transfer h sc ~receiver:user_addr ~payback
       ~amount:(amount 12345));
  checkb "balance credited" true
    (Amount.equal (Harness.sc_balance_on_mc h sc) (amount 12345));
  (* Enough ticks for several epochs; certificates auto-submit. *)
  Harness.tick_n h 12;
  checkb "not ceased" false (Harness.is_ceased h sc);
  checkb "certified at least one epoch" true
    (Zen_latus.Node.certified_epochs sc.Harness.node <> [])

let test_harness_withholding_ceases () =
  let h = Harness.create ~seed:"sim2" () in
  Harness.fund h ~blocks:3;
  let sc =
    Result.get_ok
      (Harness.add_latus h ~name:"beta" ~epoch_len:3 ~submit_len:1
         ~activation_delay:1 ())
  in
  sc.Harness.withhold_certs <- true;
  Harness.tick_n h 8;
  checkb "ceased without certificates" true (Harness.is_ceased h sc)

let test_harness_two_sidechains_independent () =
  let h = Harness.create ~seed:"sim3" () in
  Harness.fund h ~blocks:3;
  let params = Zen_latus.Params.default in
  let family = Zen_latus.Circuits.make params in
  let a =
    Result.get_ok
      (Harness.add_latus h ~name:"a" ~family ~epoch_len:3 ~submit_len:1
         ~activation_delay:1 ())
  in
  let b =
    Result.get_ok
      (Harness.add_latus h ~name:"b" ~family ~epoch_len:5 ~submit_len:2
         ~activation_delay:1 ())
  in
  a.Harness.withhold_certs <- true;
  Harness.tick_n h 14;
  checkb "a ceased" true (Harness.is_ceased h a);
  checkb "b alive" false (Harness.is_ceased h b)

(* Two miners race over the DES: blocks propagate with latency, forks
   happen, and Nakamoto fork choice converges both views. *)
let test_des_mining_race () =
  let open Zen_mainchain in
  let params = { Chain_state.default_params with pow = Pow.trivial } in
  let shared_genesis_time = 0 in
  let chain_a = ref (Chain.create ~params ~time:shared_genesis_time ()) in
  let chain_b = ref (Chain.create ~params ~time:shared_genesis_time ()) in
  let addr_a = Wallet.fresh_address (Wallet.create ~seed:"race-a") in
  let addr_b = Wallet.fresh_address (Wallet.create ~seed:"race-b") in
  let sim = Des.create () in
  let deliver chain block =
    match Chain.add_block !chain block with
    | Ok (c, _) -> chain := c
    | Error _ -> () (* duplicate or stale: fine *)
  in
  let mine_on chain addr other_chain latency sim_now =
    match
      Miner.build_block !chain ~time:sim_now ~miner_addr:addr ~candidates:[]
    with
    | Error _ -> ()
    | Ok (block, _) ->
      deliver chain block;
      (* the other miner hears about it after [latency] *)
      Des.schedule sim ~delay:latency (fun _ -> deliver other_chain block)
  in
  (* Miner A mines every 3 ticks, B every 4; propagation takes 2, so
     near-simultaneous blocks fork and later resolve. Mining stops at
     t=120; the run to 130 drains in-flight deliveries. *)
  Des.every sim ~period:3 ~until:120 (fun s ->
      mine_on chain_a addr_a chain_b 2 (Des.now s));
  Des.every sim ~period:4 ~until:120 (fun s ->
      mine_on chain_b addr_b chain_a 2 (Des.now s));
  Des.run sim ~until:130;
  checkb "both made progress" true
    (Chain.height !chain_a > 10 && Chain.height !chain_b > 10);
  (* Nakamoto convergence: with first-seen tie-breaking the very tip
     may legitimately differ for one height, but the settled prefix is
     identical. *)
  Alcotest.(check int)
    "same height (same work)" (Chain.height !chain_a) (Chain.height !chain_b);
  let settled = Chain.height !chain_a - 2 in
  let hash_at chain h = Chain_state.block_hash_at (Chain.tip_state chain) h in
  checkb "settled prefix identical" true
    (match (hash_at !chain_a settled, hash_at !chain_b settled) with
    | Some a, Some b -> Zen_crypto.Hash.equal a b
    | _ -> false)

let suite =
  ( "sim",
    [
      Alcotest.test_case "des ordering" `Quick test_des_ordering;
      Alcotest.test_case "des fifo" `Quick test_des_fifo_within_time;
      Alcotest.test_case "des cascading" `Quick test_des_cascading;
      Alcotest.test_case "des cutoff" `Quick test_des_until_cutoff;
      Alcotest.test_case "harness epoch cycle" `Quick test_harness_epoch_cycle;
      Alcotest.test_case "harness withholding" `Quick
        test_harness_withholding_ceases;
      Alcotest.test_case "harness two sidechains" `Quick
        test_harness_two_sidechains_independent;
      Alcotest.test_case "des mining race" `Quick test_des_mining_race;
    ] )
