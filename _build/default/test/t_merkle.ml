(* Merkle hash trees (Fig. 2) and the sparse Merkle tree behind the MST. *)

open Zen_crypto

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let data n = List.init n (fun i -> Printf.sprintf "block-%d" i)

let test_mht_roundtrip () =
  List.iter
    (fun n ->
      let t = Merkle.of_data (data n) in
      List.iteri
        (fun i d ->
          let p = Merkle.prove t i in
          checkb
            (Printf.sprintf "n=%d i=%d" n i)
            true
            (Merkle.verify ~root:(Merkle.root t) ~leaf:(Hash.of_string d) p))
        (data n))
    [ 1; 2; 3; 4; 5; 7; 8; 9; 16; 33 ]

let test_mht_rejects_wrong_leaf () =
  let t = Merkle.of_data (data 8) in
  let p = Merkle.prove t 3 in
  checkb "wrong leaf" false
    (Merkle.verify ~root:(Merkle.root t) ~leaf:(Hash.of_string "evil") p);
  (* proof for index 3 must not verify at another position's leaf *)
  checkb "wrong index leaf" false
    (Merkle.verify ~root:(Merkle.root t) ~leaf:(Hash.of_string "block-4") p)

let test_mht_rejects_wrong_root () =
  let t = Merkle.of_data (data 8) in
  let t2 = Merkle.of_data (data 9) in
  let p = Merkle.prove t 0 in
  checkb "wrong root" false
    (Merkle.verify ~root:(Merkle.root t2) ~leaf:(Hash.of_string "block-0") p)

let test_mht_depth_log () =
  checki "8 leaves" 3 (Merkle.depth (Merkle.of_data (data 8)));
  checki "9 leaves" 4 (Merkle.depth (Merkle.of_data (data 9)));
  checki "1 leaf" 0 (Merkle.depth (Merkle.of_data (data 1)))

let test_mht_empty () =
  let t = Merkle.of_leaves [] in
  checki "no leaves" 0 (Merkle.leaf_count t);
  (* Root of empty tree is well-defined and distinct from any data tree. *)
  checkb "distinct from singleton" false
    (Hash.equal (Merkle.root t) (Merkle.root (Merkle.of_data [ "" ])))

let test_mht_second_preimage_guard () =
  (* A leaf equal to an interior node's raw value must not verify at
     the wrong layer: leaf/node tags differ. *)
  let t = Merkle.of_data (data 4) in
  let p = Merkle.prove t 0 in
  let fake = Merkle.leaf_hash (Hash.of_string "block-0") in
  checkb "tag separation" false
    (Merkle.verify ~root:(Merkle.root t) ~leaf:fake p)

(* ---- SMT ---- *)

let fp = Fp.of_int

let test_smt_set_get_remove () =
  let t = Smt.create ~depth:8 in
  let t = Smt.set t 5 (fp 55) in
  let t = Smt.set t 200 (fp 77) in
  Alcotest.(check (option int))
    "get 5" (Some 55)
    (Option.map Fp.to_int (Smt.get t 5));
  checki "occupied" 2 (Smt.occupied t);
  let t = Smt.remove t 5 in
  Alcotest.(check (option int)) "removed" None (Option.map Fp.to_int (Smt.get t 5));
  checki "occupied after remove" 1 (Smt.occupied t)

let test_smt_empty_root_depth_dependent () =
  checkb "roots differ by depth" false
    (Fp.equal (Smt.root (Smt.create ~depth:4)) (Smt.root (Smt.create ~depth:5)))

let test_smt_remove_restores_root () =
  let t0 = Smt.create ~depth:10 in
  let t1 = Smt.set t0 17 (fp 1) in
  let t2 = Smt.remove t1 17 in
  checkb "root restored" true (Fp.equal (Smt.root t0) (Smt.root t2))

let test_smt_proofs () =
  let t = List.fold_left (fun t i -> Smt.set t i (fp (i * 7))) (Smt.create ~depth:10)
      [ 0; 1; 513; 1023 ] in
  List.iter
    (fun pos ->
      let p = Smt.prove t pos in
      checkb
        (Printf.sprintf "member %d" pos)
        true
        (Smt.verify ~root:(Smt.root t) ~pos ~leaf:(Some (fp (pos * 7))) ~depth:10 p))
    [ 0; 1; 513; 1023 ];
  (* non-membership *)
  let p = Smt.prove t 2 in
  checkb "empty slot" true
    (Smt.verify ~root:(Smt.root t) ~pos:2 ~leaf:None ~depth:10 p);
  checkb "wrong value rejected" false
    (Smt.verify ~root:(Smt.root t) ~pos:2 ~leaf:(Some (fp 9)) ~depth:10 p)

let test_smt_order_independence () =
  let ops = [ (3, 30); (900, 90); (44, 44); (1000, 10) ] in
  let build l =
    List.fold_left (fun t (p, v) -> Smt.set t p (fp v)) (Smt.create ~depth:10) l
  in
  checkb "insertion order irrelevant" true
    (Fp.equal (Smt.root (build ops)) (Smt.root (build (List.rev ops))))

let test_smt_bounds () =
  let t = Smt.create ~depth:4 in
  Alcotest.check_raises "oob" (Invalid_argument "Smt: position out of range")
    (fun () -> ignore (Smt.get t 16))

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:100 gen f)

let gen_ops =
  QCheck2.Gen.(
    list_size (int_bound 40)
      (pair (int_bound 255) (map Fp.of_int (int_bound 1000000))))

let props =
  [
    prop "smt fold = applied ops" gen_ops (fun ops ->
        let t =
          List.fold_left (fun t (p, v) -> Smt.set t p v) (Smt.create ~depth:8) ops
        in
        let expected =
          List.fold_left (fun m (p, v) -> (p, v) :: List.remove_assoc p m) [] ops
        in
        Smt.occupied t = List.length expected
        && List.for_all
             (fun (p, v) ->
               match Smt.get t p with Some v' -> Fp.equal v v' | None -> false)
             expected);
    prop "smt proofs verify for random ops" gen_ops (fun ops ->
        let t =
          List.fold_left (fun t (p, v) -> Smt.set t p v) (Smt.create ~depth:8) ops
        in
        List.for_all
          (fun (p, _) ->
            Smt.verify ~root:(Smt.root t) ~pos:p ~leaf:(Smt.get t p) ~depth:8
              (Smt.prove t p))
          ops);
    prop "mht proofs verify for random sizes" QCheck2.Gen.(int_range 1 64)
      (fun n ->
        let t = Merkle.of_data (data n) in
        List.for_all
          (fun i ->
            Merkle.verify ~root:(Merkle.root t)
              ~leaf:(Hash.of_string (Printf.sprintf "block-%d" i))
              (Merkle.prove t i))
          (List.init n Fun.id));
  ]

let suite =
  ( "merkle",
    [
      Alcotest.test_case "mht roundtrip" `Quick test_mht_roundtrip;
      Alcotest.test_case "mht wrong leaf" `Quick test_mht_rejects_wrong_leaf;
      Alcotest.test_case "mht wrong root" `Quick test_mht_rejects_wrong_root;
      Alcotest.test_case "mht depth" `Quick test_mht_depth_log;
      Alcotest.test_case "mht empty" `Quick test_mht_empty;
      Alcotest.test_case "mht second preimage" `Quick test_mht_second_preimage_guard;
      Alcotest.test_case "smt set/get/remove" `Quick test_smt_set_get_remove;
      Alcotest.test_case "smt empty roots" `Quick test_smt_empty_root_depth_dependent;
      Alcotest.test_case "smt remove restores" `Quick test_smt_remove_restores_root;
      Alcotest.test_case "smt proofs" `Quick test_smt_proofs;
      Alcotest.test_case "smt order independence" `Quick test_smt_order_independence;
      Alcotest.test_case "smt bounds" `Quick test_smt_bounds;
    ]
    @ props )
