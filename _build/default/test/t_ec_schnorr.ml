(* Elliptic-curve group laws over secp256k1 and Schnorr signatures. *)

open Zen_crypto

let checkb = Alcotest.(check bool)

let bn = Bignum.of_int

let test_generator_on_curve () =
  match Ec.to_affine Ec.g with
  | None -> Alcotest.fail "G is infinity?"
  | Some (x, y) -> checkb "on curve" true (Ec.on_curve x y)

let test_group_order () =
  checkb "n*G = O" true (Ec.is_infinity (Ec.mul Ec.n Ec.g));
  checkb "(n+1)*G = G" true
    (Ec.equal (Ec.mul (Bignum.add Ec.n Bignum.one) Ec.g) Ec.g)

let test_add_double_consistency () =
  let g2 = Ec.double Ec.g in
  let g3 = Ec.add g2 Ec.g in
  let g4a = Ec.double g2 in
  let g4b = Ec.add g3 Ec.g in
  checkb "2G+G = 3G" true (Ec.equal g3 (Ec.mul (bn 3) Ec.g));
  checkb "2(2G) = 3G+G" true (Ec.equal g4a g4b)

let test_identity_laws () =
  checkb "O + G = G" true (Ec.equal (Ec.add Ec.infinity Ec.g) Ec.g);
  checkb "G + O = G" true (Ec.equal (Ec.add Ec.g Ec.infinity) Ec.g);
  checkb "G + (-G) = O" true (Ec.is_infinity (Ec.add Ec.g (Ec.neg Ec.g)))

let test_scalar_distributes () =
  let a = bn 123456 and b = bn 654321 in
  let lhs = Ec.mul (Bignum.add a b) Ec.g in
  let rhs = Ec.add (Ec.mul a Ec.g) (Ec.mul b Ec.g) in
  checkb "(a+b)G = aG + bG" true (Ec.equal lhs rhs)

let test_encode_decode () =
  let p = Ec.mul (bn 789) Ec.g in
  (match Ec.decode (Ec.encode p) with
  | Some q -> checkb "roundtrip" true (Ec.equal p q)
  | None -> Alcotest.fail "decode failed");
  (match Ec.decode (Ec.encode Ec.infinity) with
  | Some q -> checkb "infinity roundtrip" true (Ec.is_infinity q)
  | None -> Alcotest.fail "infinity decode failed");
  checkb "garbage rejected" true (Ec.decode "nonsense" = None)

let test_decode_off_curve () =
  let x = Bignum.to_bytes_be ~len:32 (bn 1) in
  let fake = "\004" ^ x ^ x in
  checkb "off-curve rejected" true (Ec.decode fake = None)

let test_schnorr_roundtrip () =
  let sk, pk = Schnorr.of_seed "test-key" in
  let s = Schnorr.sign sk "message" in
  checkb "valid" true (Schnorr.verify pk "message" s);
  checkb "wrong msg" false (Schnorr.verify pk "messagf" s);
  let _, pk2 = Schnorr.of_seed "other-key" in
  checkb "wrong key" false (Schnorr.verify pk2 "message" s)

let test_schnorr_determinism () =
  let sk, _ = Schnorr.of_seed "det" in
  let s1 = Schnorr.sign sk "m" and s2 = Schnorr.sign sk "m" in
  checkb "deterministic nonce" true
    (String.equal (Schnorr.sig_encode s1) (Schnorr.sig_encode s2))

let test_schnorr_sig_encoding () =
  let sk, pk = Schnorr.of_seed "enc" in
  let s = Schnorr.sign sk "m" in
  Alcotest.(check int) "96 bytes" 96 (String.length (Schnorr.sig_encode s));
  (match Schnorr.sig_decode (Schnorr.sig_encode s) with
  | Some s' -> checkb "decoded verifies" true (Schnorr.verify pk "m" s')
  | None -> Alcotest.fail "decode failed");
  checkb "truncated rejected" true (Schnorr.sig_decode "short" = None)

let test_schnorr_tamper () =
  let sk, pk = Schnorr.of_seed "tamper" in
  let s = Schnorr.sign sk "m" in
  let enc = Bytes.of_string (Schnorr.sig_encode s) in
  (* Flip one bit of s-part. *)
  Bytes.set enc 95 (Char.chr (Char.code (Bytes.get enc 95) lxor 1));
  match Schnorr.sig_decode (Bytes.to_string enc) with
  | None -> ()
  | Some s' -> checkb "tampered rejected" false (Schnorr.verify pk "m" s')

let test_pk_hash_injective_spot () =
  let _, pk1 = Schnorr.of_seed "a" and _, pk2 = Schnorr.of_seed "b" in
  checkb "distinct addrs" false
    (Hash.equal (Schnorr.pk_hash pk1) (Schnorr.pk_hash pk2))

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:12 gen f)

let props =
  [
    prop "sign/verify random" QCheck2.Gen.(pair (small_string ~gen:printable) (small_string ~gen:printable))
      (fun (seed, msg) ->
        let sk, pk = Schnorr.of_seed seed in
        Schnorr.verify pk msg (Schnorr.sign sk msg));
    prop "scalar mult additive" QCheck2.Gen.(pair (int_bound 100000) (int_bound 100000))
      (fun (a, b) ->
        Ec.equal
          (Ec.mul (bn (a + b)) Ec.g)
          (Ec.add (Ec.mul (bn a) Ec.g) (Ec.mul (bn b) Ec.g)));
  ]

let suite =
  ( "ec-schnorr",
    [
      Alcotest.test_case "generator on curve" `Quick test_generator_on_curve;
      Alcotest.test_case "group order" `Quick test_group_order;
      Alcotest.test_case "add/double" `Quick test_add_double_consistency;
      Alcotest.test_case "identity" `Quick test_identity_laws;
      Alcotest.test_case "scalar distributes" `Quick test_scalar_distributes;
      Alcotest.test_case "point encoding" `Quick test_encode_decode;
      Alcotest.test_case "off-curve rejected" `Quick test_decode_off_curve;
      Alcotest.test_case "schnorr roundtrip" `Quick test_schnorr_roundtrip;
      Alcotest.test_case "schnorr determinism" `Quick test_schnorr_determinism;
      Alcotest.test_case "schnorr encoding" `Quick test_schnorr_sig_encoding;
      Alcotest.test_case "schnorr tamper" `Quick test_schnorr_tamper;
      Alcotest.test_case "pk hash" `Quick test_pk_hash_injective_spot;
    ]
    @ props )
