(* SHA-256 vectors, tagged hashing, the SNARK field, Poseidon, RNG. *)

open Zen_crypto

let check = Alcotest.(check string)
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* FIPS 180-4 test vectors. *)
let test_sha256_vectors () =
  let cases =
    [
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ]
  in
  List.iter
    (fun (input, expected) ->
      check input expected (Sha256.to_hex (Sha256.digest input)))
    cases

let test_sha256_incremental () =
  (* Feeding in odd-sized chunks must agree with one-shot. *)
  let msg = String.init 1000 (fun i -> Char.chr (i mod 251)) in
  let ctx = Sha256.init () in
  let pos = ref 0 in
  List.iter
    (fun chunk ->
      if !pos < String.length msg then begin
        let n = min chunk (String.length msg - !pos) in
        Sha256.feed ctx (String.sub msg !pos n);
        pos := !pos + n
      end)
    [ 1; 2; 3; 63; 64; 65; 127; 500; 200; 100 ];
  Sha256.feed ctx (String.sub msg !pos (String.length msg - !pos));
  check "incremental = one-shot"
    (Sha256.to_hex (Sha256.digest msg))
    (Sha256.to_hex (Sha256.finalize ctx))

let test_hmac () =
  check "rfc4231-ish"
    "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
    (Sha256.to_hex
       (Sha256.hmac ~key:"key" "The quick brown fox jumps over the lazy dog"))

let test_tagged_framing () =
  (* Length framing must prevent concatenation ambiguity. *)
  checkb "framing distinguishes splits" false
    (Hash.equal (Hash.tagged "t" [ "ab"; "c" ]) (Hash.tagged "t" [ "a"; "bc" ]));
  checkb "tag matters" false
    (Hash.equal (Hash.tagged "t1" [ "x" ]) (Hash.tagged "t2" [ "x" ]))

let test_hash_hex () =
  let h = Hash.of_string "hello" in
  checkb "hex roundtrip" true (Hash.equal h (Hash.of_hex (Hash.to_hex h)));
  checki "size" 32 (String.length (Hash.to_raw h))

let test_fp_axioms () =
  let a = Fp.of_int 987654321987 and b = Fp.of_int 123456789123 in
  checkb "comm add" true (Fp.equal (Fp.add a b) (Fp.add b a));
  checkb "assoc mul" true
    (Fp.equal (Fp.mul (Fp.mul a b) a) (Fp.mul a (Fp.mul b a)));
  checkb "inverse" true (Fp.equal (Fp.mul a (Fp.inv a)) Fp.one);
  checkb "fermat" true (Fp.equal (Fp.pow a (Fp.p - 1)) Fp.one);
  checkb "neg" true (Fp.equal (Fp.add a (Fp.neg a)) Fp.zero);
  Alcotest.check_raises "inv zero" Division_by_zero (fun () ->
      ignore (Fp.inv Fp.zero))

let test_fp_of_int_negative () =
  checkb "negative residue" true
    (Fp.equal (Fp.of_int (-1)) (Fp.of_int (Fp.p - 1)))

let test_fp_edge () =
  (* p reduces to 0; p-1 stays. *)
  checkb "p = 0" true (Fp.equal (Fp.of_int Fp.p) Fp.zero);
  checkb "p-1 + 1 = 0" true (Fp.equal (Fp.add (Fp.of_int (Fp.p - 1)) Fp.one) Fp.zero);
  (* largest products *)
  let m = Fp.of_int (Fp.p - 1) in
  checkb "(p-1)^2 = 1" true (Fp.equal (Fp.mul m m) Fp.one)

let test_poseidon_deterministic () =
  let a = Fp.of_int 17 and b = Fp.of_int 42 in
  checkb "deterministic" true (Fp.equal (Poseidon.hash2 a b) (Poseidon.hash2 a b));
  checkb "order matters" false
    (Fp.equal (Poseidon.hash2 a b) (Poseidon.hash2 b a));
  checkb "length domain separation" false
    (Fp.equal (Poseidon.hash_list [ a ]) (Poseidon.hash_list [ a; Fp.zero ]))

let test_poseidon_permutation_bijective_spot () =
  (* x^17 S-box is a permutation; spot-check the full permutation is
     injective on a few structured inputs. *)
  let outs =
    List.map
      (fun i ->
        let o = Poseidon.permute [| Fp.of_int i; Fp.zero; Fp.zero |] in
        Fp.to_int o.(0))
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  checki "distinct outputs" 8 (List.length (List.sort_uniq compare outs))

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  checkb "same stream" true
    (List.for_all
       (fun _ -> Int64.equal (Rng.next64 a) (Rng.next64 b))
       [ 1; 2; 3; 4; 5 ]);
  let c = Rng.create 43 in
  checkb "different seed, different stream" false
    (Int64.equal (Rng.next64 (Rng.create 42)) (Rng.next64 c))

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.fail "out of bounds"
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create 9 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle r arr;
  checki "same multiset" 190 (Array.fold_left ( + ) 0 arr)

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:300 gen f)

let gen_fp = QCheck2.Gen.map Fp.of_int QCheck2.Gen.(int_bound max_int)

let props =
  [
    prop "fp add assoc" (QCheck2.Gen.triple gen_fp gen_fp gen_fp)
      (fun (a, b, c) -> Fp.equal (Fp.add (Fp.add a b) c) (Fp.add a (Fp.add b c)));
    prop "fp mul distributes" (QCheck2.Gen.triple gen_fp gen_fp gen_fp)
      (fun (a, b, c) ->
        Fp.equal (Fp.mul a (Fp.add b c)) (Fp.add (Fp.mul a b) (Fp.mul a c)));
    prop "fp sub inverse of add" (QCheck2.Gen.pair gen_fp gen_fp)
      (fun (a, b) -> Fp.equal (Fp.sub (Fp.add a b) b) a);
    prop "fp inv" gen_fp (fun a ->
        Fp.is_zero a || Fp.equal (Fp.mul a (Fp.inv a)) Fp.one);
    prop "fp pow homomorphism" (QCheck2.Gen.pair gen_fp (QCheck2.Gen.int_bound 1000))
      (fun (a, e) -> Fp.equal (Fp.mul (Fp.pow a e) a) (Fp.pow a (e + 1)));
  ]

let suite =
  ( "crypto",
    [
      Alcotest.test_case "sha256 vectors" `Quick test_sha256_vectors;
      Alcotest.test_case "sha256 incremental" `Quick test_sha256_incremental;
      Alcotest.test_case "hmac" `Quick test_hmac;
      Alcotest.test_case "tagged framing" `Quick test_tagged_framing;
      Alcotest.test_case "hash hex" `Quick test_hash_hex;
      Alcotest.test_case "fp axioms" `Quick test_fp_axioms;
      Alcotest.test_case "fp negative" `Quick test_fp_of_int_negative;
      Alcotest.test_case "fp edge cases" `Quick test_fp_edge;
      Alcotest.test_case "poseidon deterministic" `Quick test_poseidon_deterministic;
      Alcotest.test_case "poseidon injective spot" `Quick
        test_poseidon_permutation_bijective_spot;
      Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
      Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
      Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutes;
    ]
    @ props )
