test/t_bignum.ml: Alcotest Bignum List QCheck2 QCheck_alcotest String Zen_crypto
