test/t_sim.ml: Alcotest Amount Chain Chain_state Des Harness List Miner Pow Result Wallet Zen_crypto Zen_latus Zen_mainchain Zen_sim Zendoo
