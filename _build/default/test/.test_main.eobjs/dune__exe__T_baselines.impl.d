test/t_baselines.ml: Alcotest Amount Backward_transfer Certifiers Direct_validation Hash List Result Zen_baselines Zen_crypto Zen_latus Zendoo
