test/test_main.ml: Alcotest T_adversarial T_baselines T_bignum T_cctp T_crypto T_ec_schnorr T_latus T_mainchain T_merkle T_node T_props T_sim T_snark T_verifier_extra T_wire
