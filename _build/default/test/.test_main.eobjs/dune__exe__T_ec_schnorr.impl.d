test/t_ec_schnorr.ml: Alcotest Bignum Bytes Char Ec Hash QCheck2 QCheck_alcotest Schnorr String Zen_crypto
