test/t_crypto.ml: Alcotest Array Char Fp Fun Hash Int64 List Poseidon QCheck2 QCheck_alcotest Rng Sha256 String Zen_crypto
