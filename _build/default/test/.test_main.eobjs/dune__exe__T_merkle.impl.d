test/t_merkle.ml: Alcotest Fp Fun Hash List Merkle Option Printf QCheck2 QCheck_alcotest Smt Zen_crypto
