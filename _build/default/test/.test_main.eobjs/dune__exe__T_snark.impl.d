test/t_snark.ml: Alcotest Backend Fp Gadget Hash List Poseidon R1cs Recursive Result Smt String Zen_crypto Zen_snark
