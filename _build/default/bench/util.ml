(* Timing and table-printing helpers shared by the experiments. *)

let time_of_run f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

(* Repeat [f] until [budget] seconds elapse (at least [min_runs] times)
   and report seconds per run. *)
let time_per_run ?(budget = 0.2) ?(min_runs = 3) f =
  ignore (f ());
  (* warm-up *)
  let t0 = Unix.gettimeofday () in
  let runs = ref 0 in
  while
    !runs < min_runs || Unix.gettimeofday () -. t0 < budget
  do
    ignore (f ());
    incr runs
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int !runs

let pp_seconds s =
  if s < 1e-6 then Printf.sprintf "%.0f ns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%.2f us" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else Printf.sprintf "%.2f s" s

let pp_bytes n =
  if n < 1024 then Printf.sprintf "%d B" n
  else if n < 1024 * 1024 then Printf.sprintf "%.1f KiB" (float_of_int n /. 1024.)
  else Printf.sprintf "%.2f MiB" (float_of_int n /. (1024. *. 1024.))

let header title description =
  Printf.printf "\n=== %s ===\n%s\n" title description

let table ~columns rows =
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length c) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell -> Printf.printf "%-*s  " (List.nth widths i) cell)
      cells;
    print_newline ()
  in
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let note fmt = Printf.printf fmt
