(* Bechamel micro-benchmarks of the hot kernels: one Test.make per
   primitive, analyzed with OLS over the monotonic clock. *)

open Bechamel
open Toolkit
open Zen_crypto

let tests () =
  let a = Fp.of_int 123456789 and b = Fp.of_int 987654321 in
  let blob = String.make 1024 'x' in
  let sk, pk = Schnorr.of_seed "bench" in
  let signature = Schnorr.sign sk "msg" in
  let tree = Merkle.of_data (List.init 1024 string_of_int) in
  let proof = Merkle.prove tree 512 in
  let leaf = Hash.of_string "512" in
  let root = Merkle.root tree in
  (* SNARK verification: the constant-cost operation the protocol
     leans on. *)
  let circuit, public, witness =
    let ctx = Zen_snark.Gadget.create () in
    let x = Zen_snark.Gadget.input ctx Fp.one in
    let h = Zen_snark.Gadget.poseidon2 ctx x x in
    let out = Zen_snark.Gadget.witness ctx (Zen_snark.Gadget.value h) in
    Zen_snark.Gadget.assert_eq ctx h out;
    Zen_snark.Gadget.finalize ~name:"micro" ctx
  in
  let bpk, bvk = Zen_snark.Backend.setup circuit in
  let snark_proof = Result.get_ok (Zen_snark.Backend.prove bpk ~public ~witness) in
  Test.make_grouped ~name:"micro"
    [
      Test.make ~name:"fp-mul" (Staged.stage (fun () -> Fp.mul a b));
      Test.make ~name:"poseidon2" (Staged.stage (fun () -> Poseidon.hash2 a b));
      Test.make ~name:"sha256-1k" (Staged.stage (fun () -> Sha256.digest blob));
      Test.make ~name:"schnorr-verify"
        (Staged.stage (fun () -> Schnorr.verify pk "msg" signature));
      Test.make ~name:"mht-verify-1k"
        (Staged.stage (fun () -> Merkle.verify ~root ~leaf proof));
      Test.make ~name:"snark-verify"
        (Staged.stage (fun () ->
             Zen_snark.Backend.verify bvk ~public snark_proof));
    ]

let run () =
  print_newline ();
  print_endline "=== micro (bechamel OLS, ns/run) ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-24s %12.1f ns\n" name est
      | _ -> Printf.printf "%-24s (no estimate)\n" name)
    results
