(* Benchmark entry point: runs every experiment table (E1–E11,
   EXPERIMENTS.md) and the bechamel micro section.

   Usage:
     dune exec bench/main.exe             # everything
     dune exec bench/main.exe -- E6 E7    # selected experiments
     dune exec bench/main.exe -- micro    # micro kernels only *)

let () =
  let requested =
    match Array.to_list Sys.argv with _ :: rest when rest <> [] -> rest | _ -> []
  in
  let want name = requested = [] || List.mem name requested in
  List.iter
    (fun (name, run) -> if want name then run ())
    Experiments.all;
  if want "micro" then Micro.run ();
  print_newline ();
  print_endline "(benchmarks complete; see EXPERIMENTS.md for interpretation)"
