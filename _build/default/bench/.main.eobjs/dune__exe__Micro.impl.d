bench/micro.ml: Analyze Bechamel Benchmark Fp Hash Hashtbl Instance List Measure Merkle Poseidon Printf Result Schnorr Sha256 Staged String Test Time Toolkit Zen_crypto Zen_snark
