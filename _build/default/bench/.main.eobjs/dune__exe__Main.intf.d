bench/main.mli:
