(** Wire format for mainchain transactions and blocks.

    What a mainchain node would gossip to its peers. Decoders validate
    key and signature formats while parsing; consensus-level validation
    (PoW, state transition) still happens in {!Chain_state} — decoding
    only guarantees well-formedness. *)


val write_tx : Zen_crypto.Wire.writer -> Tx.t -> unit
val read_tx : Zen_crypto.Wire.reader -> (Tx.t, string) result

val encode_tx : Tx.t -> string
val decode_tx : string -> (Tx.t, string) result

val write_block : Zen_crypto.Wire.writer -> Block.t -> unit
val read_block : Zen_crypto.Wire.reader -> (Block.t, string) result

val encode_block : Block.t -> string
val decode_block : string -> (Block.t, string) result

val encode_header : Block.header -> string
val decode_header : string -> (Block.header, string) result

val tx_size_bytes : Tx.t -> int
val block_size_bytes : Block.t -> int
