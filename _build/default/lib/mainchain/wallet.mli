(** A mainchain wallet: key management, balance scanning and
    transaction construction (transfers, forward transfers, sidechain
    creation funding). Used by the examples and the workload
    generators. *)

open Zen_crypto
open Zendoo

type t

val create : seed:string -> t
(** Deterministic wallet; [fresh_address] derives key [i] from the
    seed. *)

val fresh_address : t -> Hash.t
(** Derives the next address (mutates the key counter). *)

val addresses : t -> Hash.t list

val owns : t -> Hash.t -> bool

val balance : t -> Chain_state.t -> Amount.t
(** Spendable balance at the chain tip (maturity respected). *)

val build_transfer :
  t ->
  Chain_state.t ->
  outputs:Tx.output list ->
  fee:Amount.t ->
  (Tx.t, string) result
(** Coin selection over the wallet's spendable UTXOs, adds a change
    output back to the wallet, signs every input. *)

val build_forward_transfer :
  t ->
  Chain_state.t ->
  ledger_id:Hash.t ->
  receiver_metadata:string ->
  amount:Amount.t ->
  fee:Amount.t ->
  (Tx.t, string) result

val sign_for : t -> addr:Hash.t -> msg:string -> (Schnorr.public_key * Schnorr.signature) option
(** Signs with the key owning [addr], if this wallet has it. *)
