open Zen_crypto
open Zendoo

type outpoint = { txid : Hash.t; vout : int }
type coin_output = { addr : Hash.t; amount : Amount.t }

type output = Coin of coin_output | Ft of Forward_transfer.t

type input = {
  outpoint : outpoint;
  pk : Schnorr.public_key;
  signature : Schnorr.signature;
}

type t =
  | Coinbase of { height : int; reward : coin_output }
  | Transfer of { inputs : input list; outputs : output list }
  | Sc_create of Sidechain_config.t
  | Certificate of Withdrawal_certificate.t
  | Withdrawal_request of Mainchain_withdrawal.t

let outpoint_encode o = Hash.to_raw o.txid ^ Printf.sprintf "%08x" o.vout

let outpoint_equal a b = a.vout = b.vout && Hash.equal a.txid b.txid

let coin_output_encode (c : coin_output) =
  Hash.to_raw c.addr ^ string_of_int (Amount.to_int c.amount)

let output_encode = function
  | Coin c -> "C" ^ coin_output_encode c
  | Ft ft -> "F" ^ Forward_transfer.encode ft

let txid = function
  | Coinbase { height; reward } ->
    Hash.tagged "mc.tx.coinbase"
      [ string_of_int height; coin_output_encode reward ]
  | Transfer { inputs; outputs } ->
    Hash.tagged "mc.tx.transfer"
      (List.map (fun i -> outpoint_encode i.outpoint ^ Schnorr.pk_encode i.pk)
         inputs
      @ List.map output_encode outputs)
  | Sc_create config ->
    Hash.tagged "mc.tx.sc_create" [ Hash.to_raw (Sidechain_config.hash config) ]
  | Certificate cert ->
    Hash.tagged "mc.tx.cert" [ Hash.to_raw (Withdrawal_certificate.hash cert) ]
  | Withdrawal_request w ->
    Hash.tagged "mc.tx.withdrawal" [ Hash.to_raw (Mainchain_withdrawal.hash w) ]

let sighash ~inputs ~outputs =
  Hash.tagged "mc.sighash"
    (List.map outpoint_encode inputs @ List.map output_encode outputs)

let transfer_value_out outputs =
  Amount.sum
    (List.map
       (function Coin c -> c.amount | Ft (ft : Forward_transfer.t) -> ft.amount)
       outputs)

let forward_transfers = function
  | Transfer { outputs; _ } ->
    List.filter_map (function Ft ft -> Some ft | Coin _ -> None) outputs
  | Coinbase _ | Sc_create _ | Certificate _ | Withdrawal_request _ -> []

let pp fmt t =
  match t with
  | Coinbase { height; reward } ->
    Format.fprintf fmt "Coinbase(h=%d, %a)" height Amount.pp reward.amount
  | Transfer { inputs; outputs } ->
    Format.fprintf fmt "Transfer(%d in, %d out)" (List.length inputs)
      (List.length outputs)
  | Sc_create c -> Format.fprintf fmt "ScCreate(%a)" Hash.pp c.ledger_id
  | Certificate c -> Withdrawal_certificate.pp fmt c
  | Withdrawal_request w -> Mainchain_withdrawal.pp fmt w
