open Zen_crypto

type t = { order : Tx.t list (* newest first *); ids : Hash.Set.t }

let empty = { order = []; ids = Hash.Set.empty }

let add t tx =
  let id = Tx.txid tx in
  if Hash.Set.mem id t.ids then t
  else { order = tx :: t.order; ids = Hash.Set.add id t.ids }

let add_list t txs = List.fold_left add t txs

let remove_included t (b : Block.t) =
  let included = Hash.Set.of_list (List.map Tx.txid b.txs) in
  {
    order =
      List.filter (fun tx -> not (Hash.Set.mem (Tx.txid tx) included)) t.order;
    ids = Hash.Set.diff t.ids included;
  }

let txs t = List.rev t.order
let mem t id = Hash.Set.mem id t.ids
let size t = List.length t.order
