(** Mainchain transactions.

    A UTXO model in the style of Bitcoin (paper Def. 3.1), extended
    with the four sidechain actions of §4.1.3: forward transfers ride
    as unspendable outputs of regular transfers; sidechain creation,
    withdrawal certificates, backward transfer requests and ceased
    sidechain withdrawals are dedicated transaction kinds. *)

open Zen_crypto
open Zendoo

type outpoint = { txid : Hash.t; vout : int }

type coin_output = { addr : Hash.t; amount : Amount.t }

type output =
  | Coin of coin_output
  | Ft of Forward_transfer.t
      (** unspendable: destroys coins on this chain (§4.1.1) *)

type input = {
  outpoint : outpoint;
  pk : Schnorr.public_key;  (** must hash to the spent output's address *)
  signature : Schnorr.signature;
}

type t =
  | Coinbase of { height : int; reward : coin_output }
  | Transfer of { inputs : input list; outputs : output list }
  | Sc_create of Sidechain_config.t
  | Certificate of Withdrawal_certificate.t
  | Withdrawal_request of Mainchain_withdrawal.t
      (** BTR or CSW, distinguished by its [kind] *)

val txid : t -> Hash.t

val sighash : inputs:outpoint list -> outputs:output list -> Hash.t
(** The message a transfer's signatures commit to: all outpoints and
    all outputs (so neither can be altered after signing). *)

val transfer_value_out : output list -> (Amount.t, string) result
(** Total of coin outputs plus forward transfers. *)

val forward_transfers : t -> Forward_transfer.t list

val outpoint_equal : outpoint -> outpoint -> bool
val outpoint_encode : outpoint -> string

val pp : Format.formatter -> t -> unit
