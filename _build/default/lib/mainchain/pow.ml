open Zen_crypto

type params = { difficulty_bits : int }

let default = { difficulty_bits = 8 }
let trivial = { difficulty_bits = 0 }

let meets_target params h =
  let raw = Hash.to_raw h in
  let rec leading_zero_bits i acc =
    if i >= String.length raw then acc
    else begin
      let byte = Char.code raw.[i] in
      if byte = 0 then leading_zero_bits (i + 1) (acc + 8)
      else begin
        let rec bits b n = if b land 0x80 <> 0 then n else bits (b lsl 1) (n + 1) in
        acc + bits byte 0
      end
    end
  in
  leading_zero_bits 0 0 >= params.difficulty_bits

let work_of params = 1 lsl params.difficulty_bits

let mine params hash_of_nonce =
  let rec go nonce =
    if meets_target params (hash_of_nonce ~nonce) then nonce else go (nonce + 1)
  in
  go 0
