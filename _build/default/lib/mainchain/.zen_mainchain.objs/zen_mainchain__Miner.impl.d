lib/mainchain/miner.ml: Amount Block Chain Chain_state Hash List Tx Zen_crypto Zendoo
