lib/mainchain/utxo_set.ml: Amount Hash Map Option String Tx Zen_crypto Zendoo
