lib/mainchain/chain_state.ml: Amount Backward_transfer Block Epoch Hash List Mainchain_withdrawal Option Pow Result Sc_ledger Schnorr Tx Utxo_set Zen_crypto Zendoo
