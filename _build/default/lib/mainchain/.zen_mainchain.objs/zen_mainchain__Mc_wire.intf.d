lib/mainchain/mc_wire.mli: Block Tx Zen_crypto
