lib/mainchain/mc_wire.ml: Block Codec Printf Schnorr String Tx Wire Zen_crypto Zendoo
