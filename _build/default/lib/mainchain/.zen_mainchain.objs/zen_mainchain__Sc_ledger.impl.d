lib/mainchain/sc_ledger.ml: Amount Epoch Forward_transfer Hash List Mainchain_withdrawal Option Result Sidechain_config String Verifier Withdrawal_certificate Zen_crypto Zendoo
