lib/mainchain/block.mli: Format Hash Pow Sc_commitment Tx Zen_crypto Zendoo
