lib/mainchain/mempool.ml: Block Hash List Tx Zen_crypto
