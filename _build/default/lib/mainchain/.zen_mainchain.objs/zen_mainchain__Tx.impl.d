lib/mainchain/tx.ml: Amount Format Forward_transfer Hash List Mainchain_withdrawal Printf Schnorr Sidechain_config Withdrawal_certificate Zen_crypto Zendoo
