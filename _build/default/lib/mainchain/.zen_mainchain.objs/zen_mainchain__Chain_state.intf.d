lib/mainchain/chain_state.mli: Amount Block Hash Pow Sc_ledger Tx Utxo_set Zen_crypto Zendoo
