lib/mainchain/wallet.mli: Amount Chain_state Hash Schnorr Tx Zen_crypto Zendoo
