lib/mainchain/mempool.mli: Block Hash Tx Zen_crypto
