lib/mainchain/block.ml: Format Forward_transfer Hash List Mainchain_withdrawal Merkle Option Pow Result Sc_commitment Tx Withdrawal_certificate Zen_crypto Zendoo
