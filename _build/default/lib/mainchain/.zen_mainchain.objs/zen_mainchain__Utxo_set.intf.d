lib/mainchain/utxo_set.mli: Amount Hash Tx Zen_crypto Zendoo
