lib/mainchain/pow.ml: Char Hash String Zen_crypto
