lib/mainchain/pow.mli: Hash Zen_crypto
