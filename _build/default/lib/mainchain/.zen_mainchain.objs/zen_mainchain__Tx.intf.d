lib/mainchain/tx.mli: Amount Format Forward_transfer Hash Mainchain_withdrawal Schnorr Sidechain_config Withdrawal_certificate Zen_crypto Zendoo
