lib/mainchain/chain.mli: Block Chain_state Hash Zen_crypto
