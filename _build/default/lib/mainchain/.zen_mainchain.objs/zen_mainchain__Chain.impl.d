lib/mainchain/chain.ml: Block Chain_state Hash Option Pow Zen_crypto
