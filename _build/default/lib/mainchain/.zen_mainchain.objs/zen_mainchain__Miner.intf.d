lib/mainchain/miner.mli: Amount Block Chain Hash Tx Zen_crypto Zendoo
