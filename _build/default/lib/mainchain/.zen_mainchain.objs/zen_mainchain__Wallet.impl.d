lib/mainchain/wallet.ml: Amount Chain_state Forward_transfer Hash List Option Printf Result Schnorr Tx Utxo_set Zen_crypto Zendoo
