open Zen_crypto
open Zendoo

type coin = { addr : Hash.t; amount : Amount.t; spendable_after : int }

module M = Map.Make (String)

(* Outpoints are keyed by their canonical encoding; decoding is never
   needed because folds carry the original outpoint alongside. *)
type entry = { outpoint : Tx.outpoint; coin : coin }

type t = { coins : entry M.t }

let empty = { coins = M.empty }
let key = Tx.outpoint_encode

let find t o =
  Option.map (fun e -> e.coin) (M.find_opt (key o) t.coins)

let mem t o = M.mem (key o) t.coins
let add t o coin = { coins = M.add (key o) { outpoint = o; coin } t.coins }
let remove t o = { coins = M.remove (key o) t.coins }
let cardinal t = M.cardinal t.coins

let fold t ~init ~f =
  M.fold (fun _ e acc -> f acc e.outpoint e.coin) t.coins init

let total_value t =
  fold t ~init:Amount.zero ~f:(fun acc _ c ->
      match Amount.add acc c.amount with
      | Ok v -> v
      | Error _ -> acc (* unreachable: supply is capped *))

let coins_of_addr t addr =
  fold t ~init:[] ~f:(fun acc o c ->
      if Hash.equal c.addr addr then (o, c) :: acc else acc)
