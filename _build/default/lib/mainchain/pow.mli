(** Simulated proof-of-work (DESIGN.md §3, substitution 3).

    Difficulty is a fixed leading-zero-bits threshold over the SHA-256
    header hash; mining is a deterministic nonce search, so test chains
    are reproducible. Cumulative work drives Nakamoto fork choice. *)

open Zen_crypto

type params = { difficulty_bits : int }

val default : params
(** 8 leading zero bits — a few hundred hashes per block, fast enough
    for thousand-block test chains while still exercising the search. *)

val trivial : params
(** 0 bits: every header qualifies; used by benchmarks that are not
    about mining. *)

val meets_target : params -> Hash.t -> bool

val work_of : params -> int
(** Expected hashes per block (2^difficulty_bits) — the per-block work
    contribution for fork choice. *)

val mine : params -> (nonce:int -> Hash.t) -> int
(** [mine params hash_of_nonce] returns the first nonce (from 0) whose
    header hash meets the target. *)
