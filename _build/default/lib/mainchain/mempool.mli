(** A minimal mainchain mempool: FIFO of candidate transactions.

    Admission is cheap (structural); full validation happens when the
    miner builds a template and when blocks are applied, so invalid or
    conflicting transactions are dropped at selection time. *)

open Zen_crypto

type t

val empty : t
val add : t -> Tx.t -> t
(** Duplicates (by txid) are ignored. *)

val add_list : t -> Tx.t list -> t
val remove_included : t -> Block.t -> t
(** Drops everything the block included. *)

val txs : t -> Tx.t list
(** FIFO order. *)

val mem : t -> Hash.t -> bool
val size : t -> int
