open Zen_crypto
open Zendoo

type distribution = {
  (* Cumulative upper bounds paired with addresses, sorted by address
     for determinism; binary search picks the winner. *)
  bounds : (int * Hash.t) array;
  total : Amount.t;
}

let of_list entries =
  let entries =
    List.filter (fun (_, a) -> not (Amount.is_zero a)) entries
    |> List.sort (fun (a, _) (b, _) -> Hash.compare a b)
  in
  let total =
    match Amount.sum (List.map snd entries) with
    | Ok t -> t
    | Error _ -> Amount.max_supply
  in
  let _, bounds =
    List.fold_left
      (fun (acc, out) (addr, amount) ->
        let acc = acc + Amount.to_int amount in
        (acc, (acc, addr) :: out))
      (0, []) entries
  in
  { bounds = Array.of_list (List.rev bounds); total }

let of_mst mst =
  let module M = Hash.Map in
  let stakes =
    List.fold_left
      (fun m (_, (u : Utxo.t)) ->
        let prev = Option.value (M.find_opt u.addr m) ~default:Amount.zero in
        let v =
          match Amount.add prev u.amount with Ok v -> v | Error _ -> prev
        in
        M.add u.addr v m)
      M.empty (Mst.all_utxos mst)
  in
  of_list (M.bindings stakes)

let total_stake d = d.total
let is_empty d = Array.length d.bounds = 0

let stakeholders d =
  Array.to_list d.bounds
  |> List.fold_left
       (fun (prev, out) (bound, addr) ->
         (bound, (addr, Amount.of_int_exn (bound - prev)) :: out))
       (0, [])
  |> snd |> List.rev

let select d ~rand ~slot =
  if is_empty d then None
  else begin
    let total = Amount.to_int d.total in
    let draw =
      let h = Hash.tagged "latus.leader" [ Hash.to_raw rand; string_of_int slot ] in
      let rng = Rng.of_hash h in
      Rng.int rng total
    in
    (* First bound strictly greater than the draw. *)
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if fst d.bounds.(mid) <= draw then search (mid + 1) hi
        else search lo mid
      end
    in
    Some (snd d.bounds.(search 0 (Array.length d.bounds - 1)))
  end
