open Zen_crypto

type t = {
  parent : Hash.t;
  height : int;
  slot : int;
  forger_pk : Schnorr.public_key;
  signature : Schnorr.signature;
  mc_refs : Mc_ref.t list;
  txs : Sc_tx.t list;
  state_hash : Fp.t;
}

let genesis_parent = Hash.of_string "latus.genesis"

let body_parts t =
  [
    Hash.to_raw t.parent;
    string_of_int t.height;
    string_of_int t.slot;
    Schnorr.pk_encode t.forger_pk;
    String.concat ""
      (List.map (fun r -> Hash.to_raw (Mc_ref.block_hash r)) t.mc_refs);
    String.concat "" (List.map (fun tx -> Hash.to_raw (Sc_tx.txid tx)) t.txs);
    string_of_int (Fp.to_int t.state_hash);
  ]

let sighash t = Hash.tagged "latus.block.sig" (body_parts t)

let hash t =
  Hash.tagged "latus.block"
    (body_parts t @ [ Sha256.to_hex (Schnorr.sig_encode t.signature) ])

let forger_addr t = Schnorr.pk_hash t.forger_pk

let forge ~parent ~height ~slot ~sk ~mc_refs ~txs ~state_hash =
  let forger_pk = Schnorr.public_of_secret sk in
  let unsigned =
    {
      parent;
      height;
      slot;
      forger_pk;
      signature = Option.get (Schnorr.sig_decode (String.make 96 '\000'));
      mc_refs;
      txs;
      state_hash;
    }
  in
  let signature = Schnorr.sign sk (Hash.to_raw (sighash unsigned)) in
  { unsigned with signature }

let verify_signature t =
  Schnorr.verify t.forger_pk (Hash.to_raw (sighash t)) t.signature

let pp fmt t =
  Format.fprintf fmt "SCBlock(h=%d, slot=%d, %d refs, %d txs)" t.height t.slot
    (List.length t.mc_refs) (List.length t.txs)
