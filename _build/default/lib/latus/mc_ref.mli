(** Mainchain block references (paper §5.5.1).

    A sidechain block carries one reference per acknowledged MC block:
    the MC header plus this sidechain's slice of the block's actions,
    authenticated against the header's [SCTxsCommitment] — either an
    [mproof] (the sidechain has data in the block) or a
    [proofOfNoData] (it provably has none). A sidechain node therefore
    never needs full MC block bodies from its peers. *)

open Zen_crypto
open Zen_mainchain
open Zendoo

type t = {
  header : Block.header;
  mproof : Sc_commitment.membership option;
  proof_of_no_data : Sc_commitment.absence option;
  fts : Forward_transfer.t list;
  btrs : Mainchain_withdrawal.t list;
  wcert : Withdrawal_certificate.t option;
}

val build : ledger_id:Hash.t -> Block.t -> (t, string) result
(** Extracts this sidechain's slice from a full MC block and attaches
    the appropriate commitment proof. *)

val verify : ledger_id:Hash.t -> t -> (unit, string) result
(** Recomputes the per-sidechain entry hash from the carried data and
    checks it (or its absence) against [header.sc_txs_commitment]. *)

val block_hash : t -> Hash.t
val height : t -> int
val has_data : t -> bool

val size_bytes : t -> int
(** Approximate wire size: what the light-sync claim of §5.5.1 is
    measured on (vs shipping the full MC block). *)
