type t = { mst_depth : int; slots_per_epoch : int; slot_duration : int }

let default = { mst_depth = 12; slots_per_epoch = 24; slot_duration = 1 }

let validate t =
  if t.mst_depth < 2 || t.mst_depth > 32 then
    Error "latus params: mst_depth out of [2, 32]"
  else if t.slots_per_epoch < 1 then
    Error "latus params: slots_per_epoch < 1"
  else if t.slot_duration < 1 then Error "latus params: slot_duration < 1"
  else Ok ()
