(** Distributed proof generation (paper §5.4.1 "Performance and
    Incentives").

    Generating a base SNARK per transition and merging them is too
    heavy for a single forger, so the paper sketches a dispatching
    scheme: proving tasks are assigned randomly to interested parties
    who work in parallel and are rewarded per valid submission.

    This module realizes that scheme in-process: the epoch's steps are
    first applied natively to capture each task's state snapshot —
    which is what makes the tasks independent — then dispatched
    uniformly at random across simulated workers. Every proof is
    actually generated (and spot-verified), per-worker CPU time is
    accounted, and the makespan of the slowest worker gives the
    parallel-speedup figures of experiment E13. *)

open Zen_crypto
open Zen_snark

type task_proof = {
  index : int;  (** position of the step within the epoch *)
  worker : int;
  proof : Backend.proof;
  vk : Backend.verification_key;
  s_from : Fp.t;
  s_to : Fp.t;
  cpu_seconds : float;
}

type stats = {
  tasks : int;
  workers : int;
  total_cpu : float;  (** sum of all proving work *)
  makespan : float;  (** slowest worker's serial time *)
  speedup : float;  (** total_cpu / makespan *)
  rewards : (int * int) list;  (** worker id → valid submissions *)
}

val dispatch : rng:Rng.t -> workers:int -> tasks:int -> int array
(** [dispatch.(i)] is the worker assigned to task [i]; uniform random
    assignment as §5.4.1 suggests. *)

val prove_epoch :
  Circuits.family ->
  initial:Sc_state.t ->
  steps:Sc_tx.step list ->
  workers:int ->
  seed:int ->
  (task_proof list * stats, string) result
(** Proves every step of the epoch under a random dispatch. The
    returned proofs are in step order and each has been verified; a
    worker submitting an invalid proof would simply earn no reward
    (and the task would be re-dispatched in a full implementation). *)

val merge_all :
  Circuits.family ->
  Recursive.system ->
  task_proof list ->
  (Recursive.transition_proof, string) result
(** Folds the dispatched proofs into the single epoch proof
    (Fig. 11). *)
