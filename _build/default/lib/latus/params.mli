(** Latus sidechain parameters (paper §5).

    [mst_depth] bounds the UTXO population to 2^depth slots (§5.2);
    [slots_per_epoch] and [slot_duration] shape the Ouroboros-style
    consensus (§5.1). Consensus epochs are independent of withdrawal
    epochs, which come from the {!Zendoo.Sidechain_config}. *)

type t = {
  mst_depth : int;
  slots_per_epoch : int;
  slot_duration : int;  (** in simulation time units *)
}

val default : t
(** mst_depth 12 (4096 UTXO slots — ample for tests, cheap to prove),
    24 slots per consensus epoch, 1 time unit per slot. *)

val validate : t -> (unit, string) result
