(** The Latus system state (paper §5.2.1):
    [state = (MST, backward_transfers)].

    [backward_transfers] is the transient list accumulated over the
    current withdrawal epoch, mirrored by a Poseidon accumulator so the
    state hash — the public input of every transition proof — is a
    single field element: [H(mst_root, bt_acc)]. *)

open Zen_crypto
open Zendoo

type t = {
  mst : Mst.t;
  backward_transfers : Backward_transfer.t list;  (** oldest first *)
  bt_acc : Fp.t;  (** Poseidon accumulator over [backward_transfers] *)
}

val create : Params.t -> t

val hash : t -> Fp.t
(** [s_i] of §5.4: what base and merge proofs bind. *)

val append_bt : t -> Backward_transfer.t -> t

val bt_acc_step : Fp.t -> Backward_transfer.t -> Fp.t
(** One accumulator step — replayed in-circuit by the BT gadgets. *)

val reset_epoch : t -> t
(** New withdrawal epoch: clears the BT list and accumulator and takes
    an MST delta snapshot (Appendix A). *)

val with_mst : t -> Mst.t -> t

val pp : Format.formatter -> t -> unit
