open Zen_crypto
open Zendoo

type t = { addr : Hash.t; amount : Amount.t; nonce : Hash.t }

let make ~addr ~amount ~nonce = { addr; amount; nonce }

let derive_nonce ~source ~index =
  Hash.tagged "latus.nonce" [ Hash.to_raw source; string_of_int index ]

let commitment t =
  Poseidon.hash_list
    [ Hash.to_fp t.addr; Amount.to_fp t.amount; Hash.to_fp t.nonce ]

let position ~mst_depth t =
  let h = Hash.tagged "latus.pos" [ Hash.to_raw t.nonce ] in
  Fp.to_int (Hash.to_fp h) land ((1 lsl mst_depth) - 1)

let hash t =
  Hash.tagged "latus.utxo"
    [
      Hash.to_raw t.addr;
      string_of_int (Amount.to_int t.amount);
      Hash.to_raw t.nonce;
    ]

let nullifier t = Hash.tagged "latus.nullifier" [ Hash.to_raw (hash t) ]
let equal a b = Hash.equal (hash a) (hash b)

let encode t =
  let amt = Bytes.create 8 in
  let a = Amount.to_int t.amount in
  for i = 0 to 7 do
    Bytes.set amt i (Char.chr ((a lsr (8 * (7 - i))) land 0xff))
  done;
  Hash.to_raw t.addr ^ Bytes.to_string amt ^ Hash.to_raw t.nonce

let decode s =
  if String.length s <> 72 then None
  else begin
    let addr = Hash.of_raw (String.sub s 0 32) in
    let a = ref 0 in
    for i = 0 to 7 do
      a := (!a lsl 8) lor Char.code s.[32 + i]
    done;
    let nonce = Hash.of_raw (String.sub s 40 32) in
    match Amount.of_int !a with
    | Error _ -> None
    | Ok amount -> Some { addr; amount; nonce }
  end

let pp fmt t =
  Format.fprintf fmt "utxo(%a, %a, %a)" Hash.pp t.addr Amount.pp t.amount
    Hash.pp t.nonce
