(** Wire format for Latus sidechain objects: transactions, mainchain
    block references (with their commitment proofs) and sidechain
    blocks — everything a Latus node gossips to its peers. *)

open Zen_crypto

val write_utxo : Wire.writer -> Utxo.t -> unit
val read_utxo : Wire.reader -> (Utxo.t, string) result

val write_tx : Wire.writer -> Sc_tx.t -> unit
val read_tx : Wire.reader -> (Sc_tx.t, string) result

val encode_tx : Sc_tx.t -> string
val decode_tx : string -> (Sc_tx.t, string) result

val write_mc_ref : Wire.writer -> Mc_ref.t -> unit
val read_mc_ref : Wire.reader -> (Mc_ref.t, string) result

val encode_mc_ref : Mc_ref.t -> string
val mc_ref_size_bytes : Mc_ref.t -> int
(** Exact wire size — the quantity behind the §5.5.1 light-sync claim
    (experiment E12 compares it against full MC block bytes). *)

val write_block : Wire.writer -> Sc_block.t -> unit
val read_block : Wire.reader -> (Sc_block.t, string) result

val encode_block : Sc_block.t -> string
val decode_block : string -> (Sc_block.t, string) result

val block_size_bytes : Sc_block.t -> int
