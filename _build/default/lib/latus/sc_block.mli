(** Latus sidechain blocks (paper §5.1, Fig. 7).

    A block is forged at a slot by that slot's leader, references zero
    or more consecutive MC blocks (carrying the synchronized FTTx/BTRTx
    data inside the references), carries regular sidechain transactions
    and commits the post-state hash. *)

open Zen_crypto

type t = {
  parent : Hash.t;
  height : int;
  slot : int;
  forger_pk : Schnorr.public_key;
  signature : Schnorr.signature;
  mc_refs : Mc_ref.t list;  (** consecutive, ascending MC heights *)
  txs : Sc_tx.t list;
      (** payments and backward transfers; FTTx/BTRTx are derived from
          [mc_refs] deterministically *)
  state_hash : Fp.t;  (** post-state commitment *)
}

val hash : t -> Hash.t
val forger_addr : t -> Hash.t

val sighash : t -> Hash.t
(** Everything except the signature. *)

val forge :
  parent:Hash.t ->
  height:int ->
  slot:int ->
  sk:Schnorr.secret_key ->
  mc_refs:Mc_ref.t list ->
  txs:Sc_tx.t list ->
  state_hash:Fp.t ->
  t

val verify_signature : t -> bool

val genesis_parent : Hash.t
(** Sentinel parent hash of the first sidechain block. *)

val pp : Format.formatter -> t -> unit
