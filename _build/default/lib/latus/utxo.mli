(** Latus unspent outputs: [(addr, amount, nonce)] (paper §5.2).

    The MST slot of a UTXO is a deterministic, state-independent
    function of its nonce ([MST_Position]); two distinct UTXOs may
    collide on a slot, which surfaces as forward-transfer failure or
    transaction invalidity exactly as §5.3.2 anticipates. *)

open Zen_crypto
open Zendoo

type t = { addr : Hash.t; amount : Amount.t; nonce : Hash.t }

val make : addr:Hash.t -> amount:Amount.t -> nonce:Hash.t -> t

val derive_nonce : source:Hash.t -> index:int -> Hash.t
(** Nonce for the [index]-th output created by the object identified by
    [source] (a transaction id or forward-transfer hash). *)

val commitment : t -> Fp.t
(** The field-element leaf value committed in the MST:
    Poseidon(addr, amount, nonce). *)

val position : mst_depth:int -> t -> int
(** [MST_Position]: slot index derived from the nonce alone. *)

val nullifier : t -> Hash.t
(** The mainchain-facing unique identifier of the coins (Defs. 4.5/4.6). *)

val hash : t -> Hash.t
val equal : t -> t -> bool

val encode : t -> string
(** Fixed 72-byte serialization (addr ‖ amount ‖ nonce) — the form a
    Latus BTR/CSW carries in its proofdata. *)

val decode : string -> t option

val pp : Format.formatter -> t -> unit
