open Zen_crypto
open Zendoo

type key = { sk : Schnorr.secret_key; pk : Schnorr.public_key; addr : Hash.t }

type t = { seed : string; mutable keys : key list; mutable next : int }

let create ~seed = { seed; keys = []; next = 0 }

let fresh_address t =
  let sk, pk = Schnorr.of_seed (Printf.sprintf "latus.%s.%d" t.seed t.next) in
  let key = { sk; pk; addr = Schnorr.pk_hash pk } in
  t.keys <- key :: t.keys;
  t.next <- t.next + 1;
  key.addr

let addresses t = List.rev_map (fun k -> k.addr) t.keys
let key_for t addr = List.find_opt (fun k -> Hash.equal k.addr addr) t.keys
let owns t addr = key_for t addr <> None

let utxos t (state : Sc_state.t) =
  List.concat_map
    (fun k -> List.map snd (Mst.utxos_of state.mst k.addr))
    t.keys
  |> List.sort (fun (a : Utxo.t) (b : Utxo.t) ->
         Amount.compare b.amount a.amount)

let balance t state =
  List.fold_left
    (fun acc (u : Utxo.t) ->
      match Amount.add acc u.amount with Ok v -> v | Error _ -> acc)
    Amount.zero (utxos t state)

let sign_request t ~addr ~msg =
  Option.map (fun k -> (k.pk, Schnorr.sign k.sk msg)) (key_for t addr)

let secret_for t addr = Option.map (fun k -> k.sk) (key_for t addr)

let ( let* ) = Result.bind

(* Pick at most two coins covering the target (largest-first greedy). *)
let select_inputs t state amount =
  match utxos t state with
  | [] -> Error "sc wallet: no funds"
  | (first :: rest) as all ->
    if Amount.( <= ) amount first.amount then Ok [ first ]
    else begin
      (* Try to complete with a second coin. *)
      let missing =
        match Amount.sub amount first.amount with
        | Ok m -> m
        | Error _ -> Amount.zero
      in
      match
        List.find_opt (fun (u : Utxo.t) -> Amount.( <= ) missing u.amount) rest
      with
      | Some second -> Ok [ first; second ]
      | None ->
        ignore all;
        Error "sc wallet: amount not coverable by two inputs"
    end

let build_payment t (state : Sc_state.t) ~to_ ~amount =
  let* inputs = select_inputs t state amount in
  let* total =
    Amount.sum (List.map (fun (u : Utxo.t) -> u.amount) inputs)
  in
  let* change = Amount.sub total amount in
  let seed = Sc_tx.payment_seed inputs in
  let out0 =
    Utxo.make ~addr:to_ ~amount ~nonce:(Sc_tx.output_nonce ~seed ~index:0)
  in
  let outputs =
    if Amount.is_zero change then [ out0 ]
    else begin
      let change_addr =
        match t.keys with k :: _ -> k.addr | [] -> assert false
      in
      [
        out0;
        Utxo.make ~addr:change_addr ~amount:change
          ~nonce:(Sc_tx.output_nonce ~seed ~index:1);
      ]
    end
  in
  let sighash = Sc_tx.payment_sighash ~inputs ~outputs in
  let* witnesses =
    List.fold_left
      (fun acc (u : Utxo.t) ->
        let* ws = acc in
        match sign_request t ~addr:u.addr ~msg:(Hash.to_raw sighash) with
        | None -> Error "sc wallet: missing key"
        | Some w -> Ok (ws @ [ w ]))
      (Ok []) inputs
  in
  Ok (Sc_tx.Payment { inputs; witnesses; outputs })

let build_backward_transfer t (_state : Sc_state.t) ~utxo ~mc_receiver =
  let bt =
    Backward_transfer.make ~receiver_addr:mc_receiver
      ~amount:utxo.Utxo.amount
  in
  let sighash = Sc_tx.bt_sighash ~input:utxo ~bt in
  match sign_request t ~addr:utxo.Utxo.addr ~msg:(Hash.to_raw sighash) with
  | None -> Error "sc wallet: not our utxo"
  | Some w ->
    Ok (Sc_tx.Backward_transfer_tx { bt_input = utxo; bt_witness = w; bt })
