lib/latus/sc_wire.mli: Mc_ref Sc_block Sc_tx Utxo Wire Zen_crypto
