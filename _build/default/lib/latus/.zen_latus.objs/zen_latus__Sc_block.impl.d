lib/latus/sc_block.ml: Format Fp Hash List Mc_ref Option Sc_tx Schnorr Sha256 String Zen_crypto
