lib/latus/sc_tx.mli: Backward_transfer Format Forward_transfer Hash Mainchain_withdrawal Sc_state Schnorr Utxo Zen_crypto Zendoo
