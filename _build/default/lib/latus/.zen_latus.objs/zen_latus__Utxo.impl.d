lib/latus/utxo.ml: Amount Bytes Char Format Fp Hash Poseidon String Zen_crypto Zendoo
