lib/latus/prover_pool.mli: Backend Circuits Fp Recursive Rng Sc_state Sc_tx Zen_crypto Zen_snark
