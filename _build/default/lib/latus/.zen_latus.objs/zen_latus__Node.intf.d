lib/latus/node.mli: Bytes Chain Circuits Hash Leader Mainchain_withdrawal Params Proofdata Sc_block Sc_state Sc_tx Sc_wallet Sidechain_config Tx Utxo Zen_crypto Zen_mainchain Zendoo
