lib/latus/mst.ml: Amount Bytes Char Hash Int Map Option Params Set Smt Utxo Zen_crypto Zendoo
