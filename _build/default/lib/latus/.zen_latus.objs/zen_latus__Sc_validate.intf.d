lib/latus/sc_validate.mli: Chain Hash Params Sc_block Sc_state Sidechain_config Zen_crypto Zen_mainchain Zendoo
