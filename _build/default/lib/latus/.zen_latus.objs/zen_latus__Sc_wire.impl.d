lib/latus/sc_wire.ml: Codec Hash Mc_ref Mc_wire Printf Sc_block Sc_commitment Sc_tx Schnorr String Utxo Wire Zen_crypto Zen_mainchain Zendoo
