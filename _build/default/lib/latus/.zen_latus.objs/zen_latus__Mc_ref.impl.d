lib/latus/mc_ref.ml: Block Forward_transfer Hash List Mainchain_withdrawal Sc_commitment String Tx Withdrawal_certificate Zen_crypto Zen_mainchain Zen_snark Zendoo
