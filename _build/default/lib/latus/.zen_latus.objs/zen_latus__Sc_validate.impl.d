lib/latus/sc_validate.ml: Chain Epoch Fp Hash List Mc_ref Params Result Sc_block Sc_state Sc_tx Sidechain_config Zen_crypto Zen_mainchain Zendoo
