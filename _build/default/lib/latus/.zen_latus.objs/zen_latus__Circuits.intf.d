lib/latus/circuits.mli: Backend Fp Hash Mst Params Proofdata Sc_state Sc_tx Utxo Zen_crypto Zen_snark Zendoo
