lib/latus/mst.mli: Amount Bytes Fp Hash Params Smt Utxo Zen_crypto Zendoo
