lib/latus/sc_tx.ml: Amount Backward_transfer Format Forward_transfer Hash List Mainchain_withdrawal Mst Proofdata Result Sc_state Schnorr String Utxo Zen_crypto Zendoo
