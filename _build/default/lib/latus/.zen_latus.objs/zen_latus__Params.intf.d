lib/latus/params.mli:
