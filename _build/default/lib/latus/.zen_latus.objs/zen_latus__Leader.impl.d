lib/latus/leader.ml: Amount Array Hash List Mst Option Rng Utxo Zen_crypto Zendoo
