lib/latus/sc_state.mli: Backward_transfer Format Fp Mst Params Zen_crypto Zendoo
