lib/latus/prover_pool.ml: Array Backend Circuits Fp List Recursive Result Rng Sc_tx Sys Zen_crypto Zen_snark
