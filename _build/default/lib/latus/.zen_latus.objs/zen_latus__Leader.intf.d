lib/latus/leader.mli: Amount Hash Mst Zen_crypto Zendoo
