lib/latus/sc_state.ml: Backward_transfer Format Fp List Mst Poseidon Zen_crypto Zendoo
