lib/latus/sc_wallet.mli: Amount Hash Sc_state Sc_tx Schnorr Utxo Zen_crypto Zendoo
