lib/latus/sc_wallet.ml: Amount Backward_transfer Hash List Mst Option Printf Result Sc_state Sc_tx Schnorr Utxo Zen_crypto Zendoo
