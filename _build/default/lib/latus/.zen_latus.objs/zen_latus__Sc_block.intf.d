lib/latus/sc_block.mli: Format Fp Hash Mc_ref Sc_tx Schnorr Zen_crypto
