lib/latus/utxo.mli: Amount Format Fp Hash Zen_crypto Zendoo
