lib/latus/params.ml:
