(** Slot-leader selection (paper §5.1).

    [Select(SD, rand)] assigns every slot of a consensus epoch a leader
    drawn from the stake distribution, proportionally to stake. The
    randomness is revealed only after the distribution is fixed
    (here: the hash of an earlier block), and selection is
    deterministic given [(SD, rand, slot)] so every node agrees. *)

open Zen_crypto
open Zendoo

type distribution

val of_mst : Mst.t -> distribution
(** Stake = total MST value per address. *)

val of_list : (Hash.t * Amount.t) list -> distribution

val total_stake : distribution -> Amount.t
val stakeholders : distribution -> (Hash.t * Amount.t) list
val is_empty : distribution -> bool

val select : distribution -> rand:Hash.t -> slot:int -> Hash.t option
(** The leader of [slot], or [None] on an empty distribution. *)
