open Zen_crypto
open Zen_mainchain
open Zendoo

type context = {
  config : Sidechain_config.t;
  params : Params.t;
  prev_state : Sc_state.t;
  prev_hash : Hash.t;
  prev_height : int;
  mc_synced : int;
  expected_leader : Hash.t option;
}

let ( let* ) = Result.bind

let check cond msg = if cond then Ok () else Error msg

let validate_refs ctx ~mc (block : Sc_block.t) =
  let schedule = Epoch.of_config ctx.config in
  (* Contiguity from the sync point, all on the local MC best chain,
     commitment proofs valid, and clipped at the withdrawal-epoch
     boundary. *)
  let* last_height =
    List.fold_left
      (fun acc r ->
        let* expected = acc in
        let* () =
          check
            (Mc_ref.height r = expected)
            "sc block: non-contiguous mainchain references"
        in
        let* () = Mc_ref.verify ~ledger_id:ctx.config.ledger_id r in
        let* () =
          check
            (Chain.on_best_chain mc (Mc_ref.block_hash r))
            "sc block: reference not on the mainchain best chain"
        in
        Ok (expected + 1))
      (Ok (max (ctx.mc_synced + 1) ctx.config.start_block))
      block.mc_refs
    |> Result.map (fun next -> next - 1)
  in
  let* () =
    match block.mc_refs with
    | [] -> Ok ()
    | first :: _ ->
      let epoch =
        Epoch.epoch_of_height schedule ~height:(Mc_ref.height first)
      in
      (match epoch with
      | None -> Error "sc block: reference before sidechain activation"
      | Some e ->
        check
          (last_height <= Epoch.last_height schedule ~epoch:e)
          "sc block: references cross a withdrawal-epoch boundary")
  in
  Ok ()

let validate ctx ~mc (block : Sc_block.t) =
  let* () = check (Sc_block.verify_signature block) "sc block: bad signature" in
  let* () =
    check (Hash.equal block.parent ctx.prev_hash) "sc block: wrong parent"
  in
  let* () =
    check (block.height = ctx.prev_height + 1) "sc block: wrong height"
  in
  let* () =
    match ctx.expected_leader with
    | None -> Ok ()
    | Some leader ->
      check
        (Hash.equal (Sc_block.forger_addr block) leader)
        "sc block: forger is not the slot leader"
  in
  let* () = validate_refs ctx ~mc block in
  (* Replay: synchronized transactions derived from the references,
     then the block's own transactions, must land exactly on the
     committed state hash. *)
  let sync_txs =
    List.concat_map
      (fun (r : Mc_ref.t) ->
        let mcid = Mc_ref.block_hash r in
        (if r.fts <> [] then [ Sc_tx.Forward_transfers_tx { mcid; fts = r.fts } ]
         else [])
        @
        if r.btrs <> [] then
          [ Sc_tx.Backward_transfer_requests_tx { mcid; btrs = r.btrs } ]
        else [])
      block.mc_refs
  in
  let* state =
    List.fold_left
      (fun acc tx ->
        let* st = acc in
        match Sc_tx.apply st tx with
        | Ok st' -> Ok st'
        | Error e -> Error ("sc block: " ^ e))
      (Ok ctx.prev_state)
      (sync_txs @ block.txs)
  in
  let* () =
    check
      (Fp.equal (Sc_state.hash state) block.state_hash)
      "sc block: committed state hash mismatch"
  in
  Ok state
