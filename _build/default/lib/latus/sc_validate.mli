(** Follower-side validation of Latus blocks.

    A sidechain node that did not forge a block must be able to verify
    everything about it before adopting it (§5.1): the forger's
    signature and (optionally) slot leadership, the MC block references
    — contiguity, membership/absence proofs against the referenced
    headers, presence on the local MC view, epoch-boundary clipping —
    the deterministic derivation of FTTx/BTRTx from the references, the
    validity of every carried transaction, and the committed post-state
    hash. *)

open Zen_crypto
open Zen_mainchain
open Zendoo

type context = {
  config : Sidechain_config.t;
  params : Params.t;
  prev_state : Sc_state.t;
      (** state the block builds on (epoch reset already applied) *)
  prev_hash : Hash.t;  (** expected parent block hash *)
  prev_height : int;  (** parent height; -1 for the first block *)
  mc_synced : int;  (** highest MC height referenced so far *)
  expected_leader : Hash.t option;
      (** enforce slot leadership when [Some] *)
}

val validate :
  context -> mc:Chain.t -> Sc_block.t -> (Sc_state.t, string) result
(** Full check; returns the post-state on success (its hash equals the
    block's [state_hash]). *)
