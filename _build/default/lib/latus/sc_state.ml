open Zen_crypto
open Zendoo

type t = {
  mst : Mst.t;
  backward_transfers : Backward_transfer.t list;
  bt_acc : Fp.t;
}

let create params =
  { mst = Mst.create params; backward_transfers = []; bt_acc = Fp.zero }

let hash t = Poseidon.hash2 (Mst.root t.mst) t.bt_acc

let bt_acc_step acc (bt : Backward_transfer.t) =
  let recv, amt = Backward_transfer.to_fp_pair bt in
  Poseidon.hash2 acc (Poseidon.hash2 recv amt)

let append_bt t bt =
  {
    t with
    backward_transfers = t.backward_transfers @ [ bt ];
    bt_acc = bt_acc_step t.bt_acc bt;
  }

let reset_epoch t =
  {
    mst = Mst.snapshot t.mst;
    backward_transfers = [];
    bt_acc = Fp.zero;
  }

let with_mst t mst = { t with mst }

let pp fmt t =
  Format.fprintf fmt "state(mst=%a, %d utxos, %d bts)" Fp.pp (Mst.root t.mst)
    (Mst.occupied t.mst)
    (List.length t.backward_transfers)
