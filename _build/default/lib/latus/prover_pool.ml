open Zen_crypto
open Zen_snark

type task_proof = {
  index : int;
  worker : int;
  proof : Backend.proof;
  vk : Backend.verification_key;
  s_from : Fp.t;
  s_to : Fp.t;
  cpu_seconds : float;
}

type stats = {
  tasks : int;
  workers : int;
  total_cpu : float;
  makespan : float;
  speedup : float;
  rewards : (int * int) list;
}

let dispatch ~rng ~workers ~tasks =
  if workers <= 0 then invalid_arg "Prover_pool.dispatch: no workers";
  Array.init tasks (fun _ -> Rng.int rng workers)

let ( let* ) = Result.bind

(* Capture the state snapshot before each step: after this, every
   proving task is independent of the others. *)
let snapshots initial steps =
  List.fold_left
    (fun acc step ->
      let* state, out = acc in
      let* state' = Sc_tx.apply_step state step in
      Ok (state', (state, step) :: out))
    (Ok (initial, []))
    steps
  |> Result.map (fun (_, out) -> List.rev out)

let prove_epoch family ~initial ~steps ~workers ~seed =
  let rng = Rng.create seed in
  let assignment = dispatch ~rng ~workers ~tasks:(List.length steps) in
  let* snaps = snapshots initial steps in
  let* proofs_rev =
    List.fold_left
      (fun acc (index, (state, step)) ->
        let* out = acc in
        let t0 = Sys.time () in
        let* proof, vk, s_from, s_to = Circuits.prove_step family state step in
        let cpu_seconds = Sys.time () -. t0 in
        (* A dishonest worker's submission would fail here and earn
           nothing; in this in-process pool all workers are honest. *)
        let public = Recursive.base_public ~s_from ~s_to ~extra:[||] in
        if not (Backend.verify vk ~public proof) then
          Error "prover pool: worker submitted an invalid proof"
        else
          Ok
            ({ index; worker = assignment.(index); proof; vk; s_from; s_to; cpu_seconds }
            :: out))
      (Ok [])
      (List.mapi (fun i snap -> (i, snap)) snaps)
  in
  let proofs = List.rev proofs_rev in
  let per_worker = Array.make workers 0.0 in
  let rewards = Array.make workers 0 in
  List.iter
    (fun tp ->
      per_worker.(tp.worker) <- per_worker.(tp.worker) +. tp.cpu_seconds;
      rewards.(tp.worker) <- rewards.(tp.worker) + 1)
    proofs;
  let total_cpu = Array.fold_left ( +. ) 0.0 per_worker in
  let makespan = Array.fold_left max 0.0 per_worker in
  Ok
    ( proofs,
      {
        tasks = List.length proofs;
        workers;
        total_cpu;
        makespan;
        speedup = (if makespan > 0.0 then total_cpu /. makespan else 1.0);
        rewards = Array.to_list rewards |> List.mapi (fun i r -> (i, r));
      } )

let merge_all _family rsys proofs =
  let* transitions =
    List.fold_left
      (fun acc tp ->
        let* out = acc in
        let* t =
          Recursive.of_base rsys ~vk:tp.vk ~s_from:tp.s_from ~s_to:tp.s_to
            ~extra:[||] tp.proof
        in
        Ok (t :: out))
      (Ok []) proofs
  in
  Recursive.fold_balanced rsys (List.rev transitions)
