(** Sidechain wallet: keys, UTXO scanning over the MST, and
    construction of payment / backward-transfer transactions with the
    nonce discipline {!Sc_tx.validate} expects. *)

open Zen_crypto
open Zendoo

type t

val create : seed:string -> t
val fresh_address : t -> Hash.t
val addresses : t -> Hash.t list
val owns : t -> Hash.t -> bool

val balance : t -> Sc_state.t -> Amount.t

val utxos : t -> Sc_state.t -> Utxo.t list
(** This wallet's UTXOs, largest first. *)

val build_payment :
  t ->
  Sc_state.t ->
  to_:Hash.t ->
  amount:Amount.t ->
  (Sc_tx.t, string) result
(** Selects one or two inputs covering [amount], pays change back to
    the wallet. Fails when no 1–2-input combination covers the amount
    (chain several payments in that case). *)

val build_backward_transfer :
  t ->
  Sc_state.t ->
  utxo:Utxo.t ->
  mc_receiver:Hash.t ->
  (Sc_tx.t, string) result
(** Spends exactly [utxo] into a BT for the mainchain (§5.3.3). *)

val sign_request : t -> addr:Hash.t -> msg:string -> (Schnorr.public_key * Schnorr.signature) option

val secret_for : t -> Hash.t -> Schnorr.secret_key option
(** The signing key behind an address — used by the forger to seal
    blocks it leads. *)
