(** The unified SNARK verification interface the mainchain applies to
    every sidechain (paper §4.1.2).

    Each sidechain registers verification keys; the mainchain only ever
    calls [Verify(vk, public_input, proof)] where the public input has
    the fixed 5-element shape [(sysdata…, MH(proofdata))]. Verification
    cost is constant regardless of what happened in the sidechain —
    experiment E7 measures this against the baselines. *)

open Zen_crypto
open Zen_snark

val public_input_arity : int
(** 5: four sysdata elements plus the proofdata root. *)

val verify_wcert :
  vk:Backend.verification_key ->
  cert:Withdrawal_certificate.t ->
  end_prev_epoch:Hash.t ->
  end_epoch:Hash.t ->
  bool
(** Checks the certificate proof against the mainchain-enforced
    [wcert_sysdata] (quality, MH(BTList), epoch boundary block hashes). *)

val verify_withdrawal :
  vk:Backend.verification_key ->
  request:Mainchain_withdrawal.t ->
  reference_block:Hash.t ->
  bool
(** Shared BTR/CSW verification against [btr_sysdata]. *)

val check_wcert_statics :
  config:Sidechain_config.t -> cert:Withdrawal_certificate.t -> (unit, string) result
(** The non-SNARK rules of "WCert Verification" (§4.1.2): ledger id
    match and proofdata schema conformance. Epoch-window and quality
    ordering need chain context and live in the mainchain ledger. *)

val check_withdrawal_statics :
  config:Sidechain_config.t -> request:Mainchain_withdrawal.t -> (unit, string) result
