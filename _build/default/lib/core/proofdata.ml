open Zen_crypto

type elem =
  | Field of Fp.t
  | Digest of Hash.t
  | Uint of int
  | Blob of string

type elem_type = Tfield | Tdigest | Tuint | Tblob

type t = elem list
type schema = elem_type list

let type_of = function
  | Field _ -> Tfield
  | Digest _ -> Tdigest
  | Uint _ -> Tuint
  | Blob _ -> Tblob

let matches schema pd =
  List.length schema = List.length pd
  && List.for_all2 (fun ty e -> type_of e = ty) schema pd

let encode_elem = function
  | Field f -> "F" ^ string_of_int (Fp.to_int f)
  | Digest d -> "D" ^ Hash.to_raw d
  | Uint n -> "U" ^ string_of_int n
  | Blob b -> "B" ^ b

let elem_hash e = Hash.tagged "proofdata.elem" [ encode_elem e ]
let tree pd = Merkle.of_leaves (List.map elem_hash pd)
let root pd = Merkle.root (tree pd)
let root_fp pd = Hash.to_fp (root pd)
let membership_proof pd i = Merkle.prove (tree pd) i

let verify_membership ~root elem proof =
  Merkle.verify ~root ~leaf:(elem_hash elem) proof

let encode pd = String.concat ";" (List.map encode_elem pd)

let pp_elem fmt = function
  | Field f -> Format.fprintf fmt "field:%a" Fp.pp f
  | Digest d -> Format.fprintf fmt "digest:%a" Hash.pp d
  | Uint n -> Format.fprintf fmt "uint:%d" n
  | Blob b -> Format.fprintf fmt "blob[%d]" (String.length b)

let pp fmt pd =
  Format.fprintf fmt "[%a]" (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") pp_elem) pd
