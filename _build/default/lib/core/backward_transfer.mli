(** Backward transfers: sidechain → mainchain (paper Def. 4.3).

    A BT names a mainchain receiver address and an amount; it only
    takes effect when carried to the mainchain inside a withdrawal
    certificate whose SNARK proof vouches for it. *)

open Zen_crypto

type t = { receiver_addr : Hash.t; amount : Amount.t }

val make : receiver_addr:Hash.t -> amount:Amount.t -> t

val hash : t -> Hash.t
val encode : t -> string
val equal : t -> t -> bool

val list_root : t list -> Hash.t
(** [MH(BTList)] — the Merkle root the mainchain enforces as part of
    [wcert_sysdata] (paper §4.1.2). *)

val list_root_fp : t list -> Zen_crypto.Fp.t

val membership_proof : t list -> int -> Merkle.proof

val to_fp_pair : t -> Fp.t * Fp.t
(** (receiver, amount) as field elements, for in-circuit accumulation. *)

val pp : Format.formatter -> t -> unit
