(** Mainchain-managed withdrawals (paper §4.1.2.1): backward transfer
    requests (BTR) and ceased-sidechain withdrawals (CSW).

    The two operations share one structure (Defs. 4.5 and 4.6) — a
    receiver, an amount, a nullifier identifying the claimed coins, and
    a sidechain-defined SNARK proof — but differ in effect: a CSW pays
    out directly on the mainchain, a BTR only requests processing by
    the sidechain. *)

open Zen_crypto
open Zen_snark

type kind = Btr | Csw

type t = {
  kind : kind;
  ledger_id : Hash.t;
  receiver : Hash.t;
  amount : Amount.t;
  nullifier : Hash.t;
  proofdata : Proofdata.t;
  proof : Backend.proof;
}

val make :
  kind:kind ->
  ledger_id:Hash.t ->
  receiver:Hash.t ->
  amount:Amount.t ->
  nullifier:Hash.t ->
  proofdata:Proofdata.t ->
  proof:Backend.proof ->
  t

val hash : t -> Hash.t

val sysdata :
  reference_block:Hash.t ->
  nullifier:Hash.t ->
  receiver:Hash.t ->
  amount:Amount.t ->
  Fp.t array
(** [btr_sysdata = (H(B_w), nullifier, receiver, amount)] as the first
    four public-input elements; [reference_block] is the MC block that
    carried the sidechain's latest withdrawal certificate. *)

val public_input : t -> reference_block:Hash.t -> Fp.t array
(** sysdata ‖ MH(proofdata). *)

val pp : Format.formatter -> t -> unit
