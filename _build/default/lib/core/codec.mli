(** Wire formats for every CCTP object that crosses the network:
    forward/backward transfers, proofdata, withdrawal certificates,
    BTR/CSW requests and sidechain configurations.

    Writers are total; readers validate as they parse (amount bounds,
    schema tags, key formats) and return descriptive errors, so nodes
    can never be crashed by malformed messages. Top-level [encode_*] /
    [decode_*] pairs frame one object per buffer; the [write_*] /
    [read_*] pairs compose into larger messages (blocks). *)

open Zen_crypto

val write_amount : Wire.writer -> Amount.t -> unit
val read_amount : Wire.reader -> (Amount.t, string) result

val write_ft : Wire.writer -> Forward_transfer.t -> unit
val read_ft : Wire.reader -> (Forward_transfer.t, string) result

val write_bt : Wire.writer -> Backward_transfer.t -> unit
val read_bt : Wire.reader -> (Backward_transfer.t, string) result

val write_proofdata : Wire.writer -> Proofdata.t -> unit
val read_proofdata : Wire.reader -> (Proofdata.t, string) result

val write_proof : Wire.writer -> Zen_snark.Backend.proof -> unit
val read_proof : Wire.reader -> (Zen_snark.Backend.proof, string) result

val write_vk : Wire.writer -> Zen_snark.Backend.verification_key -> unit
val read_vk : Wire.reader -> (Zen_snark.Backend.verification_key, string) result

val write_wcert : Wire.writer -> Withdrawal_certificate.t -> unit
val read_wcert : Wire.reader -> (Withdrawal_certificate.t, string) result

val write_withdrawal : Wire.writer -> Mainchain_withdrawal.t -> unit
val read_withdrawal : Wire.reader -> (Mainchain_withdrawal.t, string) result

val write_config : Wire.writer -> Sidechain_config.t -> unit
val read_config : Wire.reader -> (Sidechain_config.t, string) result

val encode_wcert : Withdrawal_certificate.t -> string
val decode_wcert : string -> (Withdrawal_certificate.t, string) result

val encode_withdrawal : Mainchain_withdrawal.t -> string
val decode_withdrawal : string -> (Mainchain_withdrawal.t, string) result

val encode_config : Sidechain_config.t -> string
val decode_config : string -> (Sidechain_config.t, string) result
