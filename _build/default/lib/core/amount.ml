type t = int

let zero = 0
let max_supply = 21_000_000 * 100_000_000
let amount_bits = 51 (* max_supply < 2^51 *)

let of_int n =
  if n < 0 then Error "amount: negative"
  else if n > max_supply then Error "amount: exceeds max supply"
  else Ok n

let of_int_exn n =
  match of_int n with Ok a -> a | Error e -> invalid_arg e

let to_int a = a

let add a b =
  let s = a + b in
  if s > max_supply then Error "amount: overflow" else Ok s

let sub a b = if a < b then Error "amount: underflow" else Ok (a - b)

let sum amounts =
  List.fold_left
    (fun acc a -> match acc with Error _ as e -> e | Ok x -> add x a)
    (Ok zero) amounts

let compare = Stdlib.compare
let equal (a : int) b = a = b
let ( <= ) (a : int) b = a <= b
let ( < ) (a : int) b = a < b
let is_zero a = a = 0
let to_fp a = Zen_crypto.Fp.of_int a
let to_string a = Printf.sprintf "%d.%08d" (a / 100_000_000) (a mod 100_000_000)
let pp fmt a = Format.pp_print_string fmt (to_string a)
