(** Sidechain-defined [proofdata]: typed variables whose semantics the
    mainchain does not know (paper §4.1.2, Def. 4.4).

    The mainchain only fixes the *types* of the elements (declared in
    the sidechain configuration) and folds them into a Merkle root
    [MH(proofdata)] that becomes one public input of the SNARK
    verifier, keeping the public-input vector short. *)

open Zen_crypto

type elem =
  | Field of Fp.t      (** a SNARK-field element *)
  | Digest of Hash.t   (** a 32-byte hash *)
  | Uint of int        (** a non-negative integer *)
  | Blob of string     (** opaque bytes *)

type elem_type = Tfield | Tdigest | Tuint | Tblob

type t = elem list
type schema = elem_type list

val type_of : elem -> elem_type
val matches : schema -> t -> bool
(** Structural check the mainchain performs on submission. *)

val elem_hash : elem -> Hash.t
val root : t -> Hash.t
(** [MH(proofdata)]: Merkle root over the element hashes. *)

val root_fp : t -> Fp.t
(** The root projected into the SNARK field — the form in which it
    enters the public input. *)

val membership_proof : t -> int -> Merkle.proof
(** Merkle proof that the [i]-th element is committed by [root]. *)

val verify_membership : root:Hash.t -> elem -> Merkle.proof -> bool

val encode : t -> string
val pp : Format.formatter -> t -> unit
