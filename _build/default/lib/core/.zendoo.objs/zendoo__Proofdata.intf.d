lib/core/proofdata.mli: Format Fp Hash Merkle Zen_crypto
