lib/core/amount.ml: Format List Printf Stdlib Zen_crypto
