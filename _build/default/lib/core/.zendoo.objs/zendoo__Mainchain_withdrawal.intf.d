lib/core/mainchain_withdrawal.mli: Amount Backend Format Fp Hash Proofdata Zen_crypto Zen_snark
