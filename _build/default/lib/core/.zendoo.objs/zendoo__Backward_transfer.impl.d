lib/core/backward_transfer.ml: Amount Format Hash List Merkle Zen_crypto
