lib/core/forward_transfer.ml: Amount Format Hash Sha256 String Zen_crypto
