lib/core/mainchain_withdrawal.ml: Amount Array Backend Format Hash Proofdata Zen_crypto Zen_snark
