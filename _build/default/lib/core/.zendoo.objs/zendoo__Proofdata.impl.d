lib/core/proofdata.ml: Format Fp Hash List Merkle String Zen_crypto
