lib/core/verifier.mli: Backend Hash Mainchain_withdrawal Sidechain_config Withdrawal_certificate Zen_crypto Zen_snark
