lib/core/sidechain_config.mli: Backend Hash Proofdata Zen_crypto Zen_snark
