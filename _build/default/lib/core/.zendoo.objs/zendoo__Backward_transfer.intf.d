lib/core/backward_transfer.mli: Amount Format Fp Hash Merkle Zen_crypto
