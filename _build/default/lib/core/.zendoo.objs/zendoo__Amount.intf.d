lib/core/amount.mli: Format Zen_crypto
