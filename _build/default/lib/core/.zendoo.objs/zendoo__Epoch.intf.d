lib/core/epoch.mli: Format Sidechain_config
