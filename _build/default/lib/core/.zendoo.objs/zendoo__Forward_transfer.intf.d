lib/core/forward_transfer.mli: Amount Format Hash Zen_crypto
