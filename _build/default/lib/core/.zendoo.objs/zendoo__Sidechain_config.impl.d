lib/core/sidechain_config.ml: Backend Hash Printf Proofdata Result Zen_crypto Zen_snark
