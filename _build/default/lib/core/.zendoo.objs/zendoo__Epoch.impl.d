lib/core/epoch.ml: Format Sidechain_config
