lib/core/withdrawal_certificate.mli: Amount Backend Backward_transfer Format Fp Hash Proofdata Zen_crypto Zen_snark
