lib/core/withdrawal_certificate.ml: Amount Array Backend Backward_transfer Format Fp Hash List Proofdata Zen_crypto Zen_snark
