lib/core/verifier.ml: Amount Backend Hash Mainchain_withdrawal Proofdata Sidechain_config Withdrawal_certificate Zen_crypto Zen_snark
