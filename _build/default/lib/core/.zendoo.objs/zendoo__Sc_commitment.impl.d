lib/core/sc_commitment.ml: Array Forward_transfer Hash List Mainchain_withdrawal Merkle String Wire Withdrawal_certificate Zen_crypto
