type schedule = { start_block : int; epoch_len : int; submit_len : int }

let of_config (c : Sidechain_config.t) =
  {
    start_block = c.start_block;
    epoch_len = c.epoch_len;
    submit_len = c.submit_len;
  }

let is_active_at s ~height = height >= s.start_block

let epoch_of_height s ~height =
  if height < s.start_block then None
  else Some ((height - s.start_block) / s.epoch_len)

let first_height s ~epoch = s.start_block + (epoch * s.epoch_len)
let last_height s ~epoch = first_height s ~epoch:(epoch + 1) - 1

let submission_window s ~epoch =
  let lo = first_height s ~epoch:(epoch + 1) in
  (lo, lo + s.submit_len - 1)

let in_submission_window s ~epoch ~height =
  let lo, hi = submission_window s ~epoch in
  height >= lo && height <= hi

let ceased_at s ~last_certified_epoch ~height =
  (* The earliest epoch still lacking a certificate. *)
  let next_due =
    match last_certified_epoch with None -> 0 | Some e -> e + 1
  in
  let _, window_end = submission_window s ~epoch:next_due in
  height > window_end

let pp fmt s =
  Format.fprintf fmt "epochs(start=%d, len=%d, submit=%d)" s.start_block
    s.epoch_len s.submit_len
