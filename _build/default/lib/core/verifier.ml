open Zen_crypto
open Zen_snark

let public_input_arity = 5

let verify_wcert ~vk ~(cert : Withdrawal_certificate.t) ~end_prev_epoch
    ~end_epoch =
  let public =
    Withdrawal_certificate.public_input cert ~end_prev_epoch ~end_epoch
  in
  Backend.verify vk ~public cert.proof

let verify_withdrawal ~vk ~(request : Mainchain_withdrawal.t) ~reference_block
    =
  let public = Mainchain_withdrawal.public_input request ~reference_block in
  Backend.verify vk ~public request.proof

let check_wcert_statics ~(config : Sidechain_config.t)
    ~(cert : Withdrawal_certificate.t) =
  if not (Hash.equal cert.ledger_id config.ledger_id) then
    Error "wcert: ledger id mismatch"
  else if not (Proofdata.matches config.wcert_proofdata cert.proofdata) then
    Error "wcert: proofdata does not match registered schema"
  else if cert.epoch_id < 0 then Error "wcert: negative epoch"
  else if cert.quality < 0 then Error "wcert: negative quality"
  else Ok ()

let check_withdrawal_statics ~(config : Sidechain_config.t)
    ~(request : Mainchain_withdrawal.t) =
  if not (Hash.equal request.ledger_id config.ledger_id) then
    Error "withdrawal: ledger id mismatch"
  else begin
    let schema =
      match request.kind with
      | Mainchain_withdrawal.Btr -> config.btr_proofdata
      | Mainchain_withdrawal.Csw -> config.csw_proofdata
    in
    if not (Proofdata.matches schema request.proofdata) then
      Error "withdrawal: proofdata does not match registered schema"
    else if Amount.is_zero request.amount then
      Error "withdrawal: zero amount"
    else Ok ()
  end
