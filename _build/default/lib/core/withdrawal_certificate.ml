open Zen_crypto
open Zen_snark

type t = {
  ledger_id : Hash.t;
  epoch_id : int;
  quality : int;
  bt_list : Backward_transfer.t list;
  proofdata : Proofdata.t;
  proof : Backend.proof;
}

let make ~ledger_id ~epoch_id ~quality ~bt_list ~proofdata ~proof =
  { ledger_id; epoch_id; quality; bt_list; proofdata; proof }

let hash t =
  Hash.tagged "cctp.wcert"
    [
      Hash.to_raw t.ledger_id;
      string_of_int t.epoch_id;
      string_of_int t.quality;
      Hash.to_raw (Backward_transfer.list_root t.bt_list);
      Proofdata.encode t.proofdata;
    ]

let total_withdrawn t =
  Amount.sum (List.map (fun (bt : Backward_transfer.t) -> bt.amount) t.bt_list)

let sysdata ~quality ~bt_root ~end_prev_epoch ~end_epoch =
  [|
    Fp.of_int quality;
    Hash.to_fp bt_root;
    Hash.to_fp end_prev_epoch;
    Hash.to_fp end_epoch;
  |]

let public_input t ~end_prev_epoch ~end_epoch =
  Array.append
    (sysdata ~quality:t.quality
       ~bt_root:(Backward_transfer.list_root t.bt_list)
       ~end_prev_epoch ~end_epoch)
    [| Proofdata.root_fp t.proofdata |]

let pp fmt t =
  Format.fprintf fmt "WCert(sc=%a, epoch=%d, quality=%d, bts=%d)" Hash.pp
    t.ledger_id t.epoch_id t.quality (List.length t.bt_list)
