(** Forward transfers: mainchain → sidechain (paper Def. 4.1, §4.1.1).

    On the mainchain an FT is an unspendable transaction output that
    destroys coins and records receiver metadata whose semantics only
    the destination sidechain understands. *)

open Zen_crypto

type t = {
  ledger_id : Hash.t;  (** destination sidechain *)
  receiver_metadata : string;
      (** opaque to the mainchain; Latus encodes
          (receiver address ‖ payback address) here *)
  amount : Amount.t;
}

val make : ledger_id:Hash.t -> receiver_metadata:string -> amount:Amount.t -> t

val hash : t -> Hash.t
val encode : t -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
