(** Withdrawal-epoch arithmetic (paper §4.1.2, Fig. 3).

    A sidechain's withdrawal epoch [i] is the MC-height interval
    [[start + i·len, start + (i+1)·len − 1]]. The certificate for epoch
    [i] must land within the first [submit_len] blocks of epoch [i+1];
    missing the window makes the sidechain *ceased* (Def. 4.2). All
    functions are pure height arithmetic so both chains and the tests
    agree on one schedule. *)

type schedule = { start_block : int; epoch_len : int; submit_len : int }

val of_config : Sidechain_config.t -> schedule

val is_active_at : schedule -> height:int -> bool
(** The sidechain processes transfers from [start_block] onwards. *)

val epoch_of_height : schedule -> height:int -> int option
(** [None] before activation. *)

val first_height : schedule -> epoch:int -> int
val last_height : schedule -> epoch:int -> int

val submission_window : schedule -> epoch:int -> int * int
(** Inclusive MC-height range in which a certificate for [epoch] is
    accepted. *)

val in_submission_window : schedule -> epoch:int -> height:int -> bool

val ceased_at : schedule -> last_certified_epoch:int option -> height:int -> bool
(** Whether a chain tip at [height] that has certificates up to
    [last_certified_epoch] (or none) implies the sidechain has ceased:
    true iff some epoch's submission window has fully elapsed without
    its certificate. *)

val pp : Format.formatter -> schedule -> unit
