open Zen_crypto
open Zen_snark

type kind = Btr | Csw

type t = {
  kind : kind;
  ledger_id : Hash.t;
  receiver : Hash.t;
  amount : Amount.t;
  nullifier : Hash.t;
  proofdata : Proofdata.t;
  proof : Backend.proof;
}

let make ~kind ~ledger_id ~receiver ~amount ~nullifier ~proofdata ~proof =
  { kind; ledger_id; receiver; amount; nullifier; proofdata; proof }

let kind_tag = function Btr -> "btr" | Csw -> "csw"

let hash t =
  Hash.tagged "cctp.mc_withdrawal"
    [
      kind_tag t.kind;
      Hash.to_raw t.ledger_id;
      Hash.to_raw t.receiver;
      string_of_int (Amount.to_int t.amount);
      Hash.to_raw t.nullifier;
      Proofdata.encode t.proofdata;
    ]

let sysdata ~reference_block ~nullifier ~receiver ~amount =
  [|
    Hash.to_fp reference_block;
    Hash.to_fp nullifier;
    Hash.to_fp receiver;
    Amount.to_fp amount;
  |]

let public_input t ~reference_block =
  Array.append
    (sysdata ~reference_block ~nullifier:t.nullifier ~receiver:t.receiver
       ~amount:t.amount)
    [| Proofdata.root_fp t.proofdata |]

let pp fmt t =
  Format.fprintf fmt "%s(sc=%a, to=%a, amount=%a, nf=%a)"
    (match t.kind with Btr -> "BTR" | Csw -> "CSW")
    Hash.pp t.ledger_id Hash.pp t.receiver Amount.pp t.amount Hash.pp
    t.nullifier
