open Zen_crypto

type t = {
  ledger_id : Hash.t;
  receiver_metadata : string;
  amount : Amount.t;
}

let make ~ledger_id ~receiver_metadata ~amount =
  { ledger_id; receiver_metadata; amount }

let encode t =
  String.concat "|"
    [
      Hash.to_hex t.ledger_id;
      Sha256.to_hex (Sha256.digest t.receiver_metadata);
      string_of_int (Amount.to_int t.amount);
    ]

let hash t =
  Hash.tagged "cctp.ft"
    [
      Hash.to_raw t.ledger_id;
      t.receiver_metadata;
      string_of_int (Amount.to_int t.amount);
    ]

let equal a b = Hash.equal (hash a) (hash b)

let pp fmt t =
  Format.fprintf fmt "FT(sc=%a, amount=%a)" Hash.pp t.ledger_id Amount.pp
    t.amount
