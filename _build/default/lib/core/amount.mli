(** Coin amounts in indivisible base units ("zatoshi").

    Arithmetic is checked: amounts are non-negative 62-bit integers and
    every operation that could overflow or underflow returns a result
    type. The withdrawal safeguard (paper §4.1.2.2) depends on these
    invariants holding everywhere. *)

type t = private int

val zero : t
val max_supply : t
(** 21 million coins × 10^8 units, Bitcoin-style. *)

val of_int : int -> (t, string) result
val of_int_exn : int -> t
(** Raises [Invalid_argument] on negative or > max_supply. *)

val to_int : t -> int

val add : t -> t -> (t, string) result
(** Fails above [max_supply]. *)

val sub : t -> t -> (t, string) result
(** Fails below zero — the safeguard's primitive. *)

val sum : t list -> (t, string) result

val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool

val is_zero : t -> bool

val to_fp : t -> Zen_crypto.Fp.t
(** Embedding into the SNARK field (amounts fit in 51 bits). *)

val amount_bits : int
(** Bit width used by in-circuit range checks (51). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
