(** Sidechain registration parameters (paper §4.2 "Bootstrapping
    Sidechains").

    Fixed at creation and immutable for the sidechain's lifetime; in
    particular the verification-key triplet defines forever how the
    mainchain authenticates the sidechain's backward communication. *)

open Zen_crypto
open Zen_snark

type t = {
  ledger_id : Hash.t;
  start_block : int;  (** MC height where withdrawal epoch 0 begins *)
  epoch_len : int;  (** withdrawal-epoch length, in MC blocks *)
  submit_len : int;
      (** certificate submission window at the start of the next epoch *)
  wcert_vk : Backend.verification_key;
  btr_vk : Backend.verification_key option;
      (** [None] disables mainchain-managed backward-transfer requests *)
  csw_vk : Backend.verification_key option;
      (** [None] disables ceased-sidechain withdrawals *)
  wcert_proofdata : Proofdata.schema;
  btr_proofdata : Proofdata.schema;
  csw_proofdata : Proofdata.schema;
}

val make :
  ledger_id:Hash.t ->
  start_block:int ->
  epoch_len:int ->
  submit_len:int ->
  wcert_vk:Backend.verification_key ->
  ?btr_vk:Backend.verification_key ->
  ?csw_vk:Backend.verification_key ->
  ?wcert_proofdata:Proofdata.schema ->
  ?btr_proofdata:Proofdata.schema ->
  ?csw_proofdata:Proofdata.schema ->
  unit ->
  (t, string) result
(** Validates: [epoch_len >= 2], [1 <= submit_len <= epoch_len],
    [start_block >= 0], and that each verification key expects the
    unified 5-element public input (see {!Verifier}). *)

val hash : t -> Hash.t

val derive_ledger_id : creator:Hash.t -> nonce:int -> Hash.t
(** The conventional id derivation for a creation transaction. *)
