open Zen_crypto

type t = { receiver_addr : Hash.t; amount : Amount.t }

let make ~receiver_addr ~amount = { receiver_addr; amount }

let encode t =
  Hash.to_raw t.receiver_addr ^ string_of_int (Amount.to_int t.amount)

let hash t = Hash.tagged "cctp.bt" [ encode t ]
let equal a b = Hash.equal (hash a) (hash b)

let list_tree bts = Merkle.of_leaves (List.map hash bts)
let list_root bts = Merkle.root (list_tree bts)
let list_root_fp bts = Hash.to_fp (list_root bts)
let membership_proof bts i = Merkle.prove (list_tree bts) i

let to_fp_pair t = (Hash.to_fp t.receiver_addr, Amount.to_fp t.amount)

let pp fmt t =
  Format.fprintf fmt "BT(to=%a, amount=%a)" Hash.pp t.receiver_addr Amount.pp
    t.amount
