(** Withdrawal certificates (paper Def. 4.4): the sidechain heartbeat
    and backward-transfer carrier.

    The mainchain-enforced part of the SNARK public input,
    [wcert_sysdata = (quality, MH(BTList), H(B_prev_last), H(B_last))],
    is assembled here so the verifying and proving sides can never
    disagree on its encoding. *)

open Zen_crypto
open Zen_snark

type t = {
  ledger_id : Hash.t;
  epoch_id : int;
  quality : int;
  bt_list : Backward_transfer.t list;
  proofdata : Proofdata.t;
  proof : Backend.proof;
}

val make :
  ledger_id:Hash.t ->
  epoch_id:int ->
  quality:int ->
  bt_list:Backward_transfer.t list ->
  proofdata:Proofdata.t ->
  proof:Backend.proof ->
  t

val hash : t -> Hash.t
(** Certificate identifier (excluding the proof bytes, which are
    recomputable from the statement in this backend). *)

val total_withdrawn : t -> (Amount.t, string) result
(** Sum of the certificate's backward transfers — what the safeguard
    subtracts from the sidechain balance. *)

val sysdata :
  quality:int ->
  bt_root:Hash.t ->
  end_prev_epoch:Hash.t ->
  end_epoch:Hash.t ->
  Fp.t array
(** [wcert_sysdata] as the first four public-input field elements. *)

val public_input :
  t -> end_prev_epoch:Hash.t -> end_epoch:Hash.t -> Fp.t array
(** The full 5-element public input: sysdata ‖ MH(proofdata). *)

val pp : Format.formatter -> t -> unit
