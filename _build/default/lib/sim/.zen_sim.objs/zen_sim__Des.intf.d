lib/sim/des.mli:
