lib/sim/des.ml: Map Stdlib
