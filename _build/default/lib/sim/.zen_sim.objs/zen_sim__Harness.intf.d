lib/sim/harness.mli: Amount Chain Circuits Hash Mempool Node Params Pow Sidechain_config Tx Wallet Zen_crypto Zen_latus Zen_mainchain Zendoo
