(** A minimal discrete-event simulator.

    Events are closures scheduled at virtual times; execution order is
    (time, insertion sequence), so simulations are deterministic.
    Handlers may schedule further events, which is how recurring
    processes (mining rounds, forging slots) are modelled. *)

type t

val create : unit -> t

val now : t -> int
(** Current virtual time (0 before the first event runs). *)

val schedule : t -> delay:int -> (t -> unit) -> unit
(** Schedule an event [delay] units after the current time.
    Raises [Invalid_argument] on negative delay. *)

val schedule_at : t -> time:int -> (t -> unit) -> unit

val every : t -> period:int -> ?until:int -> (t -> unit) -> unit
(** Recurring event starting one period from now. *)

val run : t -> until:int -> unit
(** Executes events in order until the queue empties or virtual time
    would exceed [until]. *)

val pending : t -> int
