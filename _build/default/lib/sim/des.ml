module Key = struct
  type t = { time : int; seq : int }

  let compare a b =
    match Stdlib.compare a.time b.time with
    | 0 -> Stdlib.compare a.seq b.seq
    | c -> c
end

module Q = Map.Make (Key)

type t = {
  mutable queue : (t -> unit) Q.t;
  mutable now : int;
  mutable seq : int;
}

let create () = { queue = Q.empty; now = 0; seq = 0 }
let now t = t.now

let schedule_at t ~time f =
  if time < t.now then invalid_arg "Des.schedule_at: time in the past";
  t.queue <- Q.add { Key.time; seq = t.seq } f t.queue;
  t.seq <- t.seq + 1

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Des.schedule: negative delay";
  schedule_at t ~time:(t.now + delay) f

let every t ~period ?until f =
  if period <= 0 then invalid_arg "Des.every: period <= 0";
  let rec tick sim =
    (match until with
    | Some u when now sim > u -> ()
    | _ ->
      f sim;
      schedule sim ~delay:period tick)
  in
  schedule t ~delay:period tick

let run t ~until =
  let rec go () =
    match Q.min_binding_opt t.queue with
    | None -> ()
    | Some (key, f) ->
      if key.Key.time > until then ()
      else begin
        t.queue <- Q.remove key t.queue;
        t.now <- key.Key.time;
        f t;
        go ()
      end
  in
  go ()

let pending t = Q.cardinal t.queue
