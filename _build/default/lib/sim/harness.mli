(** A one-process world: mainchain + miners + Latus sidechains.

    Drives the round structure the examples and scenario tests share:
    each {!tick} mines one MC block from the shared mempool, lets every
    sidechain node forge against the new tip, and auto-submits any
    certificate that becomes ready. Adversarial knobs (certificate
    withholding, fork injection) exercise the ceasing and reorg paths
    of the protocol. *)

open Zen_crypto
open Zen_mainchain
open Zen_latus
open Zendoo

type sidechain = {
  name : string;
  ledger_id : Hash.t;
  config : Sidechain_config.t;
  node : Node.t;
  mutable withhold_certs : bool;
      (** adversarial: stop submitting certificates (drives ceasing) *)
}

type t = {
  mutable chain : Chain.t;
  mutable mempool : Mempool.t;
  mc_wallet : Wallet.t;
  miner_addr : Hash.t;
  mutable time : int;
  mutable sidechains : sidechain list;
  mutable log : string list;  (** newest first; human-readable event log *)
}

val create : ?pow:Pow.params -> seed:string -> unit -> t

val mine : t -> unit
(** One MC block from the current mempool. *)

val mine_n : t -> int -> unit

val submit : t -> Tx.t -> unit

val fund : t -> blocks:int -> unit
(** Mines empty blocks so the harness wallet has mature coins. *)

val add_latus :
  t ->
  name:string ->
  ?params:Params.t ->
  ?family:Circuits.family ->
  epoch_len:int ->
  submit_len:int ->
  activation_delay:int ->
  unit ->
  (sidechain, string) result
(** Registers a new Latus sidechain (creation tx mined immediately);
    activation at [tip + activation_delay]. *)

val forward_transfer :
  t -> sidechain -> receiver:Hash.t -> payback:Hash.t -> amount:Amount.t ->
  (unit, string) result
(** Builds, submits and mines an FT from the harness wallet. *)

val tick : t -> unit
(** Mine one MC block, forge each sidechain once (slot = time), and
    submit any certificate that is ready (unless withheld). *)

val tick_n : t -> int -> unit

val sc_balance_on_mc : t -> sidechain -> Amount.t
val is_ceased : t -> sidechain -> bool
val find_sidechain : t -> string -> sidechain option

val logf : t -> ('a, unit, string, unit) format4 -> 'a
val dump_log : t -> string list
(** Oldest first. *)
