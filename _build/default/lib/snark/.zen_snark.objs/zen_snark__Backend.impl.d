lib/snark/backend.ml: Array Buffer Fp Hash Printf R1cs Sha256 String Zen_crypto
