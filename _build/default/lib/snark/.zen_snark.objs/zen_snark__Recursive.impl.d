lib/snark/recursive.ml: Array Backend Fp Gadget Hash List R1cs String Zen_crypto
