lib/snark/r1cs.mli: Fp Hash Zen_crypto
