lib/snark/r1cs.ml: Array Buffer Fp Hash List Printf Sha256 Zen_crypto
