lib/snark/recursive.mli: Backend Fp Zen_crypto
