lib/snark/gadget.mli: Fp R1cs Zen_crypto
