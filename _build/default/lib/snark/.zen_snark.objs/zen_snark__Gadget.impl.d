lib/snark/gadget.ml: Array Fp List Poseidon R1cs Zen_crypto
