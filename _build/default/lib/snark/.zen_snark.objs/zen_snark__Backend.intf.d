lib/snark/backend.mli: Fp Hash R1cs Zen_crypto
