open Zen_crypto

type var = int

type lc = (Fp.t * var) list

type constr = { a : lc; b : lc; c : lc; label : string option }

type builder = {
  mutable next_var : int;
  mutable num_public : int;
  mutable witness_started : bool;
  mutable constraints : constr list; (* reversed *)
  mutable num_constraints : int;
}

type circuit = {
  name : string;
  n_public : int;
  n_vars : int;
  cs : constr array;
  digest : Hash.t;
}

let one_var = 0

let create () =
  {
    next_var = 1;
    num_public = 0;
    witness_started = false;
    constraints = [];
    num_constraints = 0;
  }

let alloc_input b =
  if b.witness_started then
    invalid_arg "R1cs.alloc_input: witness allocation already started";
  let v = b.next_var in
  b.next_var <- v + 1;
  b.num_public <- b.num_public + 1;
  v

let alloc_witness b =
  b.witness_started <- true;
  let v = b.next_var in
  b.next_var <- v + 1;
  v

let constrain ?label b a bb c =
  b.constraints <- { a; b = bb; c; label } :: b.constraints;
  b.num_constraints <- b.num_constraints + 1

let lc_bytes lc =
  let buf = Buffer.create 64 in
  List.iter
    (fun (coeff, v) ->
      Buffer.add_string buf (string_of_int (Fp.to_int coeff));
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int v);
      Buffer.add_char buf ';')
    lc;
  Buffer.contents buf

let finalize ~name b =
  let cs = Array.of_list (List.rev b.constraints) in
  let ctx = Sha256.init () in
  Sha256.feed ctx "zendoo.r1cs.v1";
  Sha256.feed ctx name;
  Sha256.feed ctx (string_of_int b.num_public);
  Sha256.feed ctx (string_of_int b.next_var);
  Array.iter
    (fun { a; b = bb; c; _ } ->
      Sha256.feed ctx (lc_bytes a);
      Sha256.feed ctx "*";
      Sha256.feed ctx (lc_bytes bb);
      Sha256.feed ctx "=";
      Sha256.feed ctx (lc_bytes c);
      Sha256.feed ctx "|")
    cs;
  {
    name;
    n_public = b.num_public;
    n_vars = b.next_var;
    cs;
    digest = Hash.of_raw (Sha256.finalize ctx);
  }

let name c = c.name
let num_constraints c = Array.length c.cs
let num_public c = c.n_public
let num_vars c = c.n_vars
let num_witness c = c.n_vars - 1 - c.n_public
let digest c = c.digest

let eval_lc z lc =
  List.fold_left (fun acc (coeff, v) -> Fp.add acc (Fp.mul coeff z.(v))) Fp.zero lc

let check circuit z =
  if Array.length z <> circuit.n_vars then Error "assignment length mismatch"
  else if not (Fp.equal z.(0) Fp.one) then Error "z.(0) must be 1"
  else begin
    let violation = ref None in
    (try
       Array.iteri
         (fun i { a; b; c; label } ->
           let va = eval_lc z a and vb = eval_lc z b and vc = eval_lc z c in
           if not (Fp.equal (Fp.mul va vb) vc) then begin
             let where =
               match label with
               | Some l -> Printf.sprintf "constraint %d (%s)" i l
               | None -> Printf.sprintf "constraint %d" i
             in
             violation := Some where;
             raise Exit
           end)
         circuit.cs
     with Exit -> ());
    match !violation with
    | None -> Ok ()
    | Some where -> Error ("unsatisfied " ^ where)
  end

let satisfied circuit ~public ~witness =
  if Array.length public <> circuit.n_public then
    Error
      (Printf.sprintf "public input length %d, expected %d"
         (Array.length public) circuit.n_public)
  else if Array.length witness <> num_witness circuit then
    Error
      (Printf.sprintf "witness length %d, expected %d" (Array.length witness)
         (num_witness circuit))
  else begin
    let z = Array.make circuit.n_vars Fp.one in
    Array.blit public 0 z 1 (Array.length public);
    Array.blit witness 0 z (1 + circuit.n_public) (Array.length witness);
    check circuit z
  end
