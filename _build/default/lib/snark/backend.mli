(** The SNARK proving system (Setup, Prove, Verify) of paper Def. 2.3.

    This is a *simulated* backend (DESIGN.md §3, substitution 1): Setup
    compiles a real R1CS circuit; Prove evaluates every constraint over
    the field — linear cost in circuit size, like a real prover — and
    refuses without a satisfying assignment; the emitted proof is a
    constant 96 bytes and Verify runs in time O(|public input|),
    independent of circuit size. Knowledge soundness holds within the
    simulation because the proof tag can only be produced through
    [prove], which demands the witness. *)

open Zen_crypto

type proving_key
type verification_key
type proof

val proof_size_bytes : int
(** 96, standing in for (G1, G2, G1) of Groth16. *)

val setup : R1cs.circuit -> proving_key * verification_key
(** Deterministic per-circuit key generation, so independently compiled
    identical circuits agree on keys. *)

val prove :
  proving_key -> public:Fp.t array -> witness:Fp.t array -> (proof, string) result
(** Fails with a description of the first violated constraint when
    [(public, witness)] is not a satisfying assignment. *)

val verify : verification_key -> public:Fp.t array -> proof -> bool

val pk_circuit : proving_key -> R1cs.circuit

val vk_digest : verification_key -> Hash.t
(** Identifier of a verification key — what a sidechain registers in
    the mainchain at creation time. *)

val vk_num_public : verification_key -> int

val vk_encode : verification_key -> string
val vk_decode : string -> verification_key option

val proof_encode : proof -> string
(** Exactly [proof_size_bytes] bytes. *)

val proof_decode : string -> proof option

val proof_equal : proof -> proof -> bool

val dummy_proof : proof
(** An all-zero proof object, guaranteed to fail verification; used by
    adversarial tests and workload generators. *)
