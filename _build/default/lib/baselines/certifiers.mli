(** Certifier-committee certificate validation — the baseline design of
    the authors' previous proposal [Garoffolo & Viglione 2018, ref 12
    in the paper], which Zendoo §4.1.2 explicitly replaces.

    A committee of [m] certifiers is registered in the mainchain; a
    withdrawal certificate is valid when at least [threshold] distinct
    committee members have signed it. Mainchain verification therefore
    costs [O(threshold)] signature checks — against Zendoo's constant
    one SNARK verification — and its safety needs an honest-majority
    assumption among certifiers. Experiment E7 compares both curves. *)

open Zen_crypto
open Zendoo

type committee

val committee_of_seed : seed:string -> size:int -> committee
(** Deterministic committee with per-member Schnorr keys. *)

val size : committee -> int
val member_pks : committee -> Schnorr.public_key list

type endorsement

type certificate = {
  ledger_id : Hash.t;
  epoch_id : int;
  bt_list : Backward_transfer.t list;
  endorsements : endorsement list;
}

val certificate_message : ledger_id:Hash.t -> epoch_id:int -> bt_list:Backward_transfer.t list -> Hash.t

val endorse :
  committee -> member:int -> ledger_id:Hash.t -> epoch_id:int ->
  bt_list:Backward_transfer.t list -> endorsement

val make_certificate :
  committee ->
  signers:int list ->
  ledger_id:Hash.t ->
  epoch_id:int ->
  bt_list:Backward_transfer.t list ->
  certificate

val verify :
  committee -> threshold:int -> certificate -> (unit, string) result
(** Checks distinctness of signers, membership, and [threshold] valid
    signatures — the mainchain-side cost being measured. *)

val certificate_size_bytes : certificate -> int
