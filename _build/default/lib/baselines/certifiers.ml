open Zen_crypto
open Zendoo

type committee = {
  keys : (Schnorr.secret_key * Schnorr.public_key) array;
}

let committee_of_seed ~seed ~size =
  {
    keys =
      Array.init size (fun i ->
          Schnorr.of_seed (Printf.sprintf "certifier.%s.%d" seed i));
  }

let size c = Array.length c.keys
let member_pks c = Array.to_list (Array.map snd c.keys)

type endorsement = { member : int; signature : Schnorr.signature }

type certificate = {
  ledger_id : Hash.t;
  epoch_id : int;
  bt_list : Backward_transfer.t list;
  endorsements : endorsement list;
}

let certificate_message ~ledger_id ~epoch_id ~bt_list =
  Hash.tagged "baseline.cert"
    [
      Hash.to_raw ledger_id;
      string_of_int epoch_id;
      Hash.to_raw (Backward_transfer.list_root bt_list);
    ]

let endorse c ~member ~ledger_id ~epoch_id ~bt_list =
  let sk, _ = c.keys.(member) in
  let msg = certificate_message ~ledger_id ~epoch_id ~bt_list in
  { member; signature = Schnorr.sign sk (Hash.to_raw msg) }

let make_certificate c ~signers ~ledger_id ~epoch_id ~bt_list =
  {
    ledger_id;
    epoch_id;
    bt_list;
    endorsements =
      List.map (fun m -> endorse c ~member:m ~ledger_id ~epoch_id ~bt_list) signers;
  }

let verify c ~threshold cert =
  let msg =
    certificate_message ~ledger_id:cert.ledger_id ~epoch_id:cert.epoch_id
      ~bt_list:cert.bt_list
  in
  let distinct =
    List.sort_uniq compare (List.map (fun e -> e.member) cert.endorsements)
  in
  if List.length distinct <> List.length cert.endorsements then
    Error "baseline cert: duplicate signer"
  else if List.exists (fun m -> m < 0 || m >= size c) distinct then
    Error "baseline cert: unknown committee member"
  else if List.length cert.endorsements < threshold then
    Error "baseline cert: below threshold"
  else begin
    let all_valid =
      List.for_all
        (fun e ->
          let _, pk = c.keys.(e.member) in
          Schnorr.verify pk (Hash.to_raw msg) e.signature)
        cert.endorsements
    in
    if all_valid then Ok () else Error "baseline cert: invalid signature"
  end

let certificate_size_bytes cert =
  Hash.size + 8
  + (List.length cert.bt_list * (Hash.size + 8))
  + (List.length cert.endorsements * (4 + 96))
