(** Direct-validation baseline: the mainchain replays every sidechain
    transaction itself.

    This is the strawman Zendoo's decoupling argument starts from
    (§3.1: tracking sidechains "would impose enormous computational and
    storage burden on the MC"): to accept a withdrawal the MC verifies
    the sidechain's entire epoch — every signature, every MST update.
    Cost grows linearly with sidechain activity; experiment E7 plots it
    against the constant SNARK verification. *)

open Zendoo

val replay_epoch :
  params:Zen_latus.Params.t ->
  initial:Zen_latus.Sc_state.t ->
  txs:Zen_latus.Sc_tx.t list ->
  (Zen_latus.Sc_state.t, string) result
(** Full validation + application of an epoch's transactions, exactly
    what the MC would have to run per sidechain per epoch. *)

val epoch_data_bytes : txs:Zen_latus.Sc_tx.t list -> int
(** Bytes the MC would need to download for the replay. *)

val check_withdrawals :
  final:Zen_latus.Sc_state.t ->
  claimed:Backward_transfer.t list ->
  (unit, string) result
