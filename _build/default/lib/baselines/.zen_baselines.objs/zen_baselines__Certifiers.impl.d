lib/baselines/certifiers.ml: Array Backward_transfer Hash List Printf Schnorr Zen_crypto Zendoo
