lib/baselines/certifiers.mli: Backward_transfer Hash Schnorr Zen_crypto Zendoo
