lib/baselines/direct_validation.mli: Backward_transfer Zen_latus Zendoo
