lib/baselines/direct_validation.ml: Backward_transfer List Result Sc_state Sc_tx Sc_wire String Zen_latus Zendoo
