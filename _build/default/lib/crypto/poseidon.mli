(** Poseidon-style algebraic sponge over {!Fp}.

    The SNARK-friendly hash of the system: Merkle State Tree nodes,
    in-circuit Merkle path checks and state commitments all use this
    permutation, because inside an arithmetic constraint system it costs
    a handful of field multiplications per round instead of thousands of
    boolean gates for SHA-256.

    Instance: width [t = 3] (rate 2, capacity 1), S-box [x^17] (17 is
    coprime to [p − 1] for p = 2^61 − 1, so the S-box is a permutation),
    8 full + 22 partial rounds, round constants and MDS matrix derived
    from SHA-256 of a domain tag. See DESIGN.md §3 for why this
    parameterization is a faithful stand-in. *)

val permute : Fp.t array -> Fp.t array
(** The width-3 permutation. Raises [Invalid_argument] unless the input
    has length 3. The input array is not mutated. *)

val hash2 : Fp.t -> Fp.t -> Fp.t
(** Two-to-one compression — the Merkle-node combiner. *)

val hash_list : Fp.t list -> Fp.t
(** Sponge absorption of an arbitrary-length field-element message. *)

val hash_fields : Fp.t array -> Fp.t

val rounds_full : int
val rounds_partial : int
val width : int

val round_constants : Fp.t array
(** Flat [(rounds_full + rounds_partial) × width] ARC table; exposed so
    the in-circuit Poseidon gadget replays the identical permutation. *)

val mds : Fp.t array array
