(** Arbitrary-precision natural numbers.

    Little-endian limb representation in base [2^26]; every value is
    normalized (no trailing zero limbs). All numbers are non-negative;
    [sub a b] raises [Invalid_argument] when [a < b].

    This module is the arithmetic substrate for the elliptic-curve and
    Schnorr-signature code; see {!Bignum.Modring} for modular arithmetic
    with Barrett reduction. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] converts a non-negative [int]. Raises [Invalid_argument]
    on negative input. *)

val to_int : t -> int
(** Raises [Invalid_argument] if the value does not fit in an [int]. *)

val of_hex : string -> t
(** Parses a big-endian hexadecimal string (case-insensitive, optional
    embedded spaces). Raises [Invalid_argument] on other characters. *)

val to_hex : t -> string
(** Big-endian lowercase hexadecimal, no leading zeros ("0" for zero). *)

val of_bytes_be : string -> t
(** Interprets a byte string as a big-endian natural. *)

val to_bytes_be : ?len:int -> t -> string
(** Big-endian bytes, left-padded with zeros to [len] when given.
    Raises [Invalid_argument] if the value needs more than [len] bytes. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_even : t -> bool

val num_bits : t -> int
(** Position of the highest set bit plus one; [num_bits zero = 0]. *)

val bit : t -> int -> bool
(** [bit x i] is the [i]-th bit (little-endian). *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b = (q, r)] with [a = q*b + r], [0 <= r < b].
    Raises [Division_by_zero] if [b] is zero. *)

val rem : t -> t -> t

val gcd : t -> t -> t

val pp : Format.formatter -> t -> unit

(** Modular arithmetic in the ring Z/mZ with precomputed Barrett
    reduction. Elements are plain {!t} values in [[0, m)]. *)
module Modring : sig
  type ring

  val create : t -> ring
  (** Raises [Invalid_argument] if the modulus is zero or one. *)

  val modulus : ring -> t
  val reduce : ring -> t -> t
  val add : ring -> t -> t -> t
  val sub : ring -> t -> t -> t
  val mul : ring -> t -> t -> t
  val sq : ring -> t -> t
  val pow : ring -> t -> t -> t

  val inv_prime : ring -> t -> t
  (** Multiplicative inverse assuming the modulus is prime (Fermat).
      Raises [Division_by_zero] on zero. *)

  val sqrt_3mod4 : ring -> t -> t option
  (** Square root assuming modulus [m ≡ 3 (mod 4)]; [None] if the
      argument is a non-residue. *)
end
