(** 32-byte digests: the universal identifier type of the system.

    Block hashes, transaction ids, sidechain ids, addresses, nullifiers
    and Merkle roots are all [Hash.t] values. The underlying function is
    {!Sha256} with domain-separation tags so that hashes of different
    object kinds can never collide structurally. *)

type t

val size : int
(** 32. *)

val of_raw : string -> t
(** Wraps an existing 32-byte digest. Raises [Invalid_argument] on any
    other length. *)

val to_raw : t -> string

val zero : t
(** The all-zero digest, used as the "null" sentinel (empty Merkle slot,
    genesis parent). *)

val of_string : string -> t
(** [of_string s] hashes arbitrary bytes. *)

val concat : t list -> t
(** Hash of the concatenation of digests — the Merkle-node combiner. *)

val tagged : string -> string list -> t
(** [tagged tag parts] hashes [tag] and [parts] with length framing, the
    domain-separated constructor used for every protocol object. *)

val of_int : int -> t
(** Digest of an integer's decimal rendering (test helper). *)

val to_hex : t -> string
val short_hex : t -> string
(** First 8 hex characters, for logs. *)

val of_hex : string -> t
(** Raises [Invalid_argument] unless given 64 hex characters. *)

val to_fp : t -> Fp.t
(** Projects a digest into the SNARK field (first 8 bytes, reduced). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
