(* secp256k1: y^2 = x^3 + 7 over F_p. Points are kept in Jacobian
   coordinates (X, Y, Z) with x = X/Z^2, y = Y/Z^3; infinity is Z = 0. *)

let p =
  Bignum.of_hex
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"

let n =
  Bignum.of_hex
    "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141"

let gx =
  Bignum.of_hex
    "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"

let gy =
  Bignum.of_hex
    "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"

let fp = Bignum.Modring.create p
let scalar_ring = Bignum.Modring.create n

module F = struct
  let add = Bignum.Modring.add fp
  let sub = Bignum.Modring.sub fp
  let mul = Bignum.Modring.mul fp
  let sq = Bignum.Modring.sq fp
  let inv = Bignum.Modring.inv_prime fp
  let of_int = Bignum.of_int
end

type point = { x : Bignum.t; y : Bignum.t; z : Bignum.t }

let infinity = { x = Bignum.one; y = Bignum.one; z = Bignum.zero }
let is_infinity pt = Bignum.is_zero pt.z

let seven = Bignum.of_int 7

let on_curve x y =
  Bignum.compare x p < 0
  && Bignum.compare y p < 0
  && Bignum.equal (F.sq y) (F.add (F.mul x (F.sq x)) seven)

let of_affine x y =
  if not (on_curve x y) then invalid_arg "Ec.of_affine: not on curve";
  { x; y; z = Bignum.one }

let to_affine pt =
  if is_infinity pt then None
  else begin
    let zi = F.inv pt.z in
    let zi2 = F.sq zi in
    Some (F.mul pt.x zi2, F.mul pt.y (F.mul zi2 zi))
  end

let g = of_affine gx gy

let double pt =
  if is_infinity pt || Bignum.is_zero pt.y then infinity
  else begin
    (* dbl-2009-l for a = 0: A = X^2, B = Y^2, C = B^2,
       D = 2((X+B)^2 - A - C), E = 3A, F = E^2,
       X' = F - 2D, Y' = E(D - X') - 8C, Z' = 2YZ. *)
    let a = F.sq pt.x in
    let b = F.sq pt.y in
    let c = F.sq b in
    let d =
      F.mul (F.of_int 2) (F.sub (F.sq (F.add pt.x b)) (F.add a c))
    in
    let e = F.mul (F.of_int 3) a in
    let f = F.sq e in
    let x' = F.sub f (F.mul (F.of_int 2) d) in
    let y' = F.sub (F.mul e (F.sub d x')) (F.mul (F.of_int 8) c) in
    let z' = F.mul (F.of_int 2) (F.mul pt.y pt.z) in
    { x = x'; y = y'; z = z' }
  end

let add p1 p2 =
  if is_infinity p1 then p2
  else if is_infinity p2 then p1
  else begin
    (* add-2007-bl. *)
    let z1z1 = F.sq p1.z in
    let z2z2 = F.sq p2.z in
    let u1 = F.mul p1.x z2z2 in
    let u2 = F.mul p2.x z1z1 in
    let s1 = F.mul p1.y (F.mul p2.z z2z2) in
    let s2 = F.mul p2.y (F.mul p1.z z1z1) in
    if Bignum.equal u1 u2 then
      if Bignum.equal s1 s2 then double p1 else infinity
    else begin
      let h = F.sub u2 u1 in
      let i = F.sq (F.mul (F.of_int 2) h) in
      let j = F.mul h i in
      let r = F.mul (F.of_int 2) (F.sub s2 s1) in
      let v = F.mul u1 i in
      let x3 = F.sub (F.sub (F.sq r) j) (F.mul (F.of_int 2) v) in
      let y3 =
        F.sub (F.mul r (F.sub v x3)) (F.mul (F.of_int 2) (F.mul s1 j))
      in
      let z3 = F.mul h (F.mul (F.of_int 2) (F.mul p1.z p2.z)) in
      { x = x3; y = y3; z = z3 }
    end
  end

let neg pt = if is_infinity pt then pt else { pt with y = Bignum.sub p pt.y }

let mul k pt =
  let k = Bignum.Modring.reduce scalar_ring k in
  let nb = Bignum.num_bits k in
  let acc = ref infinity in
  for i = nb - 1 downto 0 do
    acc := double !acc;
    if Bignum.bit k i then acc := add !acc pt
  done;
  !acc

let equal p1 p2 =
  match (to_affine p1, to_affine p2) with
  | None, None -> true
  | Some (x1, y1), Some (x2, y2) -> Bignum.equal x1 x2 && Bignum.equal y1 y2
  | _ -> false

let encode pt =
  match to_affine pt with
  | None -> "\000"
  | Some (x, y) ->
    "\004" ^ Bignum.to_bytes_be ~len:32 x ^ Bignum.to_bytes_be ~len:32 y

let decode s =
  if String.equal s "\000" then Some infinity
  else if String.length s = 65 && s.[0] = '\004' then begin
    let x = Bignum.of_bytes_be (String.sub s 1 32) in
    let y = Bignum.of_bytes_be (String.sub s 33 32) in
    if on_curve x y then Some (of_affine x y) else None
  end
  else None
