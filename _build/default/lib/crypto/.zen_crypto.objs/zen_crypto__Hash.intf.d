lib/crypto/hash.mli: Format Fp Map Set
