lib/crypto/wire.mli: Fp Hash
