lib/crypto/hash.ml: Char Format Fp List Map Printf Set Sha256 String
