lib/crypto/schnorr.ml: Bignum Ec Hash Rng Sha256 String
