lib/crypto/rng.ml: Array Char Hash Int64 String
