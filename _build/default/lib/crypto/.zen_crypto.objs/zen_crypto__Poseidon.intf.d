lib/crypto/poseidon.mli: Fp
