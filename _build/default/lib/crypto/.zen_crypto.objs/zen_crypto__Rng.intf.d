lib/crypto/rng.mli: Hash
