lib/crypto/fp.mli: Format
