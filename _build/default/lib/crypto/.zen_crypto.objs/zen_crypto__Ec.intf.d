lib/crypto/ec.mli: Bignum
