lib/crypto/wire.ml: Buffer Char Fp Hash List Printf Result String
