lib/crypto/fp.ml: Char Format Int64 Stdlib String
