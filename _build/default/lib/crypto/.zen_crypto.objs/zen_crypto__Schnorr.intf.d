lib/crypto/schnorr.mli: Format Hash Rng
