lib/crypto/smt.mli: Fp
