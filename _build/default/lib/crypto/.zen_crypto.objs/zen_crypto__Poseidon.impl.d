lib/crypto/poseidon.ml: Array Fp Printf Sha256
