lib/crypto/smt.ml: Array Fp List Poseidon
