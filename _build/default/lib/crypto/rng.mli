(** Deterministic, seedable PRNG (splitmix64).

    Every randomized component of the reproduction — slot-leader
    election, workload generators, key generation in tests — draws from
    this generator so that experiments are bit-reproducible from a seed. *)

type t

val create : int -> t
(** Seed from an integer. *)

val of_hash : Hash.t -> t
(** Seed from a digest (e.g. epoch randomness). *)

val split : t -> t
(** Derives an independent stream; the parent advances. *)

val next64 : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val int64_nonneg : t -> int64
val bool : t -> bool
val bytes : t -> int -> string
val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
