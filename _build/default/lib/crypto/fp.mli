(** Prime field F_p with p = 2^61 − 1 (the Mersenne prime M61).

    This is the arithmetic field of the simulated SNARK: R1CS constraint
    systems, the Poseidon sponge, and every in-circuit value live here.
    Elements are canonical OCaml [int]s in [[0, p)]; the Mersenne shape
    of the modulus gives branch-light reduction with no bignums. *)

type t = private int

val p : int
(** The modulus, [2^61 - 1]. *)

val zero : t
val one : t
val two : t

val of_int : int -> t
(** Reduces any [int] (negative inputs map to their residue). *)

val to_int : t -> int

val of_bytes_le : string -> t
(** Folds up to the first 8 bytes (little-endian) into a field element. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val is_zero : t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val sq : t -> t
val pow : t -> int -> t
(** [pow a e] for [e >= 0]. *)

val inv : t -> t
(** Multiplicative inverse. Raises [Division_by_zero] on zero. *)

val div : t -> t -> t

val random : (unit -> int64) -> t
(** [random gen] draws a uniform element using [gen] as a 64-bit source. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
