(** The secp256k1 elliptic curve y² = x³ + 7 over F_p, built on
    {!Bignum}.

    Scalar multiplication uses Jacobian coordinates (one field inversion
    per affine conversion instead of one per point addition), which is
    what makes Schnorr signing/verification fast enough for the
    simulation's workloads. *)

type point
(** A point on the curve, including the point at infinity. *)

val infinity : point
val g : point
(** The standard generator. *)

val p : Bignum.t
(** Base field modulus. *)

val n : Bignum.t
(** Group order (prime). *)

val is_infinity : point -> bool
val equal : point -> point -> bool

val of_affine : Bignum.t -> Bignum.t -> point
(** Raises [Invalid_argument] if the coordinates are not on the curve. *)

val to_affine : point -> (Bignum.t * Bignum.t) option
(** [None] for the point at infinity. *)

val add : point -> point -> point
val double : point -> point
val neg : point -> point
val mul : Bignum.t -> point -> point
(** Scalar multiplication; the scalar is reduced mod [n]. *)

val on_curve : Bignum.t -> Bignum.t -> bool

val encode : point -> string
(** 65-byte uncompressed encoding (0x04 ‖ x ‖ y); a single 0x00 byte for
    infinity. *)

val decode : string -> point option

val scalar_ring : Bignum.Modring.ring
(** Arithmetic mod [n], for building signature schemes on top. *)
