let max_depth = 60

type node =
  | Empty (* a fully-empty subtree; hash comes from the per-level table *)
  | Leaf of Fp.t
  | Node of { h : Fp.t; l : node; r : node }

type t = { depth : int; tree : node; occupied : int }

let leaf_hash = function
  | None -> Poseidon.hash2 Fp.zero Fp.zero
  | Some v -> Poseidon.hash2 v Fp.one

let empty_leaf_hash = leaf_hash None

(* empties.(h) = hash of a fully-empty subtree of height h. *)
let empties =
  let a = Array.make (max_depth + 1) empty_leaf_hash in
  for h = 1 to max_depth do
    a.(h) <- Poseidon.hash2 a.(h - 1) a.(h - 1)
  done;
  a

let node_hash_at height = function
  | Empty -> empties.(height)
  | Leaf v -> leaf_hash (Some v)
  | Node { h; _ } -> h

let create ~depth =
  if depth < 1 || depth > max_depth then invalid_arg "Smt.create: depth";
  { depth; tree = Empty; occupied = 0 }

let depth t = t.depth
let capacity t = 1 lsl t.depth
let root t = node_hash_at t.depth t.tree
let occupied t = t.occupied

let check_pos t pos =
  if pos < 0 || pos >= capacity t then invalid_arg "Smt: position out of range"

let get t pos =
  check_pos t pos;
  let rec go node h =
    match node with
    | Empty -> None
    | Leaf v -> Some v
    | Node { l; r; _ } ->
      if (pos lsr (h - 1)) land 1 = 0 then go l (h - 1) else go r (h - 1)
  in
  go t.tree t.depth

let update t pos value =
  check_pos t pos;
  let rec go node h =
    if h = 0 then
      match value with Some v -> Leaf v | None -> Empty
    else begin
      let l, r =
        match node with
        | Empty -> (Empty, Empty)
        | Node { l; r; _ } -> (l, r)
        | Leaf _ -> assert false (* leaves only live at height 0 *)
      in
      let l, r =
        if (pos lsr (h - 1)) land 1 = 0 then (go l (h - 1), r)
        else (l, go r (h - 1))
      in
      match (l, r) with
      | Empty, Empty -> Empty
      | _ ->
        let hl = node_hash_at (h - 1) l and hr = node_hash_at (h - 1) r in
        Node { h = Poseidon.hash2 hl hr; l; r }
    end
  in
  let was = get t pos <> None in
  let is = value <> None in
  let occupied = t.occupied + (if is then 1 else 0) - if was then 1 else 0 in
  { t with tree = go t.tree t.depth; occupied }

let set t pos v = update t pos (Some v)
let remove t pos = update t pos None

type proof = { position : int; siblings : Fp.t list (* leaf-to-root order *) }

let prove t pos =
  check_pos t pos;
  let rec go node h acc =
    if h = 0 then acc
    else begin
      let l, r =
        match node with
        | Empty -> (Empty, Empty)
        | Node { l; r; _ } -> (l, r)
        | Leaf _ -> assert false
      in
      if (pos lsr (h - 1)) land 1 = 0 then
        go l (h - 1) (node_hash_at (h - 1) r :: acc)
      else go r (h - 1) (node_hash_at (h - 1) l :: acc)
    end
  in
  { position = pos; siblings = go t.tree t.depth [] }

let proof_position p = p.position
let proof_siblings p = p.siblings

let verify ~root ~pos ~leaf ~depth proof =
  proof.position = pos
  && List.length proof.siblings = depth
  &&
  let rec go h acc = function
    | [] -> Fp.equal acc root
    | sib :: rest ->
      let acc =
        if (pos lsr h) land 1 = 0 then Poseidon.hash2 acc sib
        else Poseidon.hash2 sib acc
      in
      go (h + 1) acc rest
  in
  go 0 (leaf_hash leaf) proof.siblings

let fold t ~init ~f =
  let rec go node h base acc =
    match node with
    | Empty -> acc
    | Leaf v -> f acc base v
    | Node { l; r; _ } ->
      let acc = go l (h - 1) base acc in
      go r (h - 1) (base + (1 lsl (h - 1))) acc
  in
  go t.tree t.depth 0 init
