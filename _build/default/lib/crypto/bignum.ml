(* Little-endian limbs in base 2^26. Invariant: no trailing zero limbs,
   so [||] is the unique representation of zero. Base 2^26 keeps every
   intermediate product under 2^53 and lets schoolbook multiplication
   accumulate carries in a 63-bit OCaml int without overflow. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let mask = base - 1

type t = int array

let zero : t = [||]

let norm (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignum.of_int: negative";
  let rec limbs n = if n = 0 then [] else (n land mask) :: limbs (n lsr limb_bits) in
  Array.of_list (limbs n)

let one = of_int 1
let two = of_int 2

let is_zero a = Array.length a = 0
let is_even a = Array.length a = 0 || a.(0) land 1 = 0

let to_int a =
  let len = Array.length a in
  (* 63-bit ints hold at most two full limbs plus 11 bits of a third. *)
  if len > 3 || (len = 3 && a.(2) >= 1 lsl (62 - (2 * limb_bits)))
  then invalid_arg "Bignum.to_int: overflow";
  let r = ref 0 in
  for i = len - 1 downto 0 do
    r := (!r lsl limb_bits) lor a.(i)
  done;
  !r

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0

let num_bits a =
  let la = Array.length a in
  if la = 0 then 0
  else
    let top = a.(la - 1) in
    let rec width n = if n = 0 then 0 else 1 + width (n lsr 1) in
    ((la - 1) * limb_bits) + width top

let bit a i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      !carry
      + (if i < la then a.(i) else 0)
      + (if i < lb then b.(i) else 0)
    in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  norm r

let sub (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la < lb then invalid_arg "Bignum.sub: underflow";
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  if !borrow <> 0 then invalid_arg "Bignum.sub: underflow";
  norm r

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let acc = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- acc land mask;
          carry := acc lsr limb_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let acc = r.(!k) + !carry in
          r.(!k) <- acc land mask;
          carry := acc lsr limb_bits;
          incr k
        done
      end
    done;
    norm r
  end

let mul_int a n =
  if n < 0 then invalid_arg "Bignum.mul_int: negative";
  mul a (of_int n)

(* Shift by whole limbs: the building blocks of Barrett reduction. *)
let shift_left_limbs (a : t) n : t =
  if is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + n) 0 in
    Array.blit a 0 r n la;
    r
  end

let shift_right_limbs (a : t) n : t =
  let la = Array.length a in
  if n >= la then zero else Array.sub a n (la - n)

let trunc_limbs (a : t) n : t =
  let la = Array.length a in
  if la <= n then a else norm (Array.sub a 0 n)

let shift_left a n =
  if n < 0 then invalid_arg "Bignum.shift_left: negative";
  let limbs = n / limb_bits and bits = n mod limb_bits in
  let a = shift_left_limbs a limbs in
  if bits = 0 || is_zero a then a
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (a.(i) lsl bits) lor !carry in
      r.(i) <- v land mask;
      carry := v lsr limb_bits
    done;
    r.(la) <- !carry;
    norm r
  end

let shift_right a n =
  if n < 0 then invalid_arg "Bignum.shift_right: negative";
  let limbs = n / limb_bits and bits = n mod limb_bits in
  let a = shift_right_limbs a limbs in
  if bits = 0 || is_zero a then a
  else begin
    let la = Array.length a in
    let r = Array.make la 0 in
    for i = 0 to la - 1 do
      let hi = if i + 1 < la then a.(i + 1) else 0 in
      r.(i) <- ((a.(i) lsr bits) lor (hi lsl (limb_bits - bits))) land mask
    done;
    norm r
  end

(* Binary long division: simple and obviously correct. Only used on cold
   paths (Barrett setup, tests); hot-path reduction goes through Modring. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    let nb = num_bits a in
    let q = Array.make (((nb - 1) / limb_bits) + 1) 0 in
    let r = ref zero in
    for i = nb - 1 downto 0 do
      let r' = shift_left !r 1 in
      let r' = if bit a i then add r' one else r' in
      if compare r' b >= 0 then begin
        r := sub r' b;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end else r := r'
    done;
    (norm q, !r)
  end

let rem a b = snd (divmod a b)

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Bignum.of_hex: bad character"

let of_hex s =
  let r = ref zero in
  String.iter
    (fun c ->
      if c <> ' ' then r := add (shift_left !r 4) (of_int (hex_digit c)))
    s;
  !r

let to_hex a =
  if is_zero a then "0"
  else begin
    let nb = num_bits a in
    let ndigits = ((nb - 1) / 4) + 1 in
    let buf = Buffer.create ndigits in
    for d = ndigits - 1 downto 0 do
      let v =
        (if bit a ((4 * d) + 3) then 8 else 0)
        lor (if bit a ((4 * d) + 2) then 4 else 0)
        lor (if bit a ((4 * d) + 1) then 2 else 0)
        lor if bit a (4 * d) then 1 else 0
      in
      Buffer.add_char buf "0123456789abcdef".[v]
    done;
    Buffer.contents buf
  end

let of_bytes_be s =
  let r = ref zero in
  String.iter (fun c -> r := add (shift_left !r 8) (of_int (Char.code c))) s;
  !r

let to_bytes_be ?len a =
  let nbytes = if is_zero a then 0 else ((num_bits a - 1) / 8) + 1 in
  let out_len =
    match len with
    | None -> max nbytes 1
    | Some l ->
      if nbytes > l then invalid_arg "Bignum.to_bytes_be: too short";
      l
  in
  let b = Bytes.make out_len '\000' in
  for i = 0 to nbytes - 1 do
    let byte =
      (if bit a ((8 * i) + 7) then 128 else 0)
      lor (if bit a ((8 * i) + 6) then 64 else 0)
      lor (if bit a ((8 * i) + 5) then 32 else 0)
      lor (if bit a ((8 * i) + 4) then 16 else 0)
      lor (if bit a ((8 * i) + 3) then 8 else 0)
      lor (if bit a ((8 * i) + 2) then 4 else 0)
      lor (if bit a ((8 * i) + 1) then 2 else 0)
      lor if bit a (8 * i) then 1 else 0
    in
    Bytes.set b (out_len - 1 - i) (Char.chr byte)
  done;
  Bytes.unsafe_to_string b

let pp fmt a = Format.fprintf fmt "0x%s" (to_hex a)

module Modring = struct
  type ring = { m : t; k : int; mu : t }

  let nat_add = add
  let nat_sub = sub

  let create m =
    if compare m two < 0 then invalid_arg "Modring.create: modulus < 2";
    let k = Array.length m in
    (* mu = floor(B^(2k) / m), the Barrett constant. *)
    let mu = fst (divmod (shift_left_limbs one (2 * k)) m) in
    { m; k; mu }

  let modulus r = r.m

  (* Barrett reduction; valid for x < B^(2k). Larger inputs (rare: raw
     hash material) fall back to long division. *)
  let reduce { m; k; mu } x =
    if compare x m < 0 then x
    else if Array.length x > 2 * k then rem x m
    else begin
      let q1 = shift_right_limbs x (k - 1) in
      let q3 = shift_right_limbs (mul q1 mu) (k + 1) in
      let r1 = trunc_limbs x (k + 1) in
      let r2 = trunc_limbs (mul q3 m) (k + 1) in
      let r =
        if compare r1 r2 >= 0 then nat_sub r1 r2
        else nat_sub (nat_add r1 (shift_left_limbs one (k + 1))) r2
      in
      let r = ref r in
      while compare !r m >= 0 do
        r := nat_sub !r m
      done;
      !r
    end

  let add r a b =
    let s = nat_add a b in
    if compare s r.m >= 0 then nat_sub s r.m else s

  let sub r a b =
    if compare a b >= 0 then nat_sub a b else nat_sub (nat_add a r.m) b

  let mul r a b = reduce r (mul a b)
  let sq r a = mul r a a

  let pow r a e =
    let a = reduce r a in
    let nb = num_bits e in
    if nb = 0 then reduce r one
    else begin
      let acc = ref a in
      for i = nb - 2 downto 0 do
        acc := sq r !acc;
        if bit e i then acc := mul r !acc a
      done;
      !acc
    end

  let inv_prime r a =
    let a = reduce r a in
    if is_zero a then raise Division_by_zero;
    pow r a (nat_sub r.m two)

  let sqrt_3mod4 r a =
    let a = reduce r a in
    (* m ≡ 3 (mod 4): candidate root is a^((m+1)/4). *)
    let e = shift_right (nat_add r.m one) 2 in
    let root = pow r a e in
    if equal (sq r root) a then Some root else None
end
