type t = string

let size = 32

let of_raw s =
  if String.length s <> size then invalid_arg "Hash.of_raw: need 32 bytes";
  s

let to_raw t = t
let zero = String.make size '\000'
let of_string s = Sha256.digest s
let concat ts = Sha256.digest_list ts

(* Length-framed, tagged hashing: H(len(tag) | tag | len(p1) | p1 | ...)
   so distinct part lists can never produce the same preimage. *)
let tagged tag parts =
  let frame s = Printf.sprintf "%08x" (String.length s) ^ s in
  Sha256.digest_list (frame tag :: List.map frame parts)

let of_int n = of_string (string_of_int n)
let to_hex = Sha256.to_hex
let short_hex t = String.sub (to_hex t) 0 8

let of_hex s =
  if String.length s <> 2 * size then invalid_arg "Hash.of_hex: need 64 chars";
  let nib c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Hash.of_hex: bad character"
  in
  String.init size (fun i ->
      Char.chr ((nib s.[2 * i] lsl 4) lor nib s.[(2 * i) + 1]))

let to_fp t = Fp.of_bytes_le t
let equal = String.equal
let compare = String.compare
let pp fmt t = Format.pp_print_string fmt (short_hex t)

module Map = Map.Make (String)
module Set = Set.Make (String)
