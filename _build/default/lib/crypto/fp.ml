(* F_p for p = 2^61 - 1. An OCaml int has 63 bits, so a canonical element
   (< 2^61) fits with room to add two of them; products are computed by
   splitting operands into 31/30-bit halves so every partial product stays
   under 2^62, then folded with 2^61 ≡ 1 (mod p). *)

type t = int

let p = (1 lsl 61) - 1
let zero = 0
let one = 1
let two = 2

(* Fold a value < 2^63 into [0, 2^62): x = hi*2^61 + lo ≡ hi + lo. *)
let fold62 x = (x land p) + (x lsr 61)

let reduce x =
  let x = fold62 x in
  let x = fold62 x in
  if x >= p then x - p else x

let of_int n =
  let r = n mod p in
  if r < 0 then r + p else r

let to_int x = x

let of_bytes_le s =
  let n = min 8 (String.length s) in
  let acc = ref 0 in
  for i = n - 1 downto 0 do
    acc := ((!acc lsl 8) lor Char.code s.[i]) land max_int
  done;
  reduce !acc

let equal (a : int) b = a = b
let compare (a : int) b = Stdlib.compare a b
let is_zero a = a = 0

let add a b =
  let s = a + b in
  if s >= p then s - p else s

let sub a b = if a >= b then a - b else a + p - b
let neg a = if a = 0 then 0 else p - a

let mul a b =
  (* a = a1*2^31 + a0, b = b1*2^31 + b0; a1,b1 < 2^30, a0,b0 < 2^31.
     a*b = a1*b1*2^62 + (a1*b0 + a0*b1)*2^31 + a0*b0
         ≡ 2*a1*b1 + mid*2^31 + a0*b0  (mod p), with 2^62 ≡ 2. *)
  let a1 = a lsr 31 and a0 = a land 0x7fffffff in
  let b1 = b lsr 31 and b0 = b land 0x7fffffff in
  let hi = reduce (2 * a1 * b1) in
  let lo = reduce (a0 * b0) in
  let mid = reduce ((a1 * b0) + (a0 * b1)) in
  (* mid < 2^61; mid*2^31 = m1*2^61 + m0*2^31 ≡ m1 + m0*2^31 with
     m1 = mid >> 30 < 2^31 and m0 = mid low 30 bits. *)
  let m1 = mid lsr 30 and m0 = mid land 0x3fffffff in
  reduce (hi + lo + m1 + (m0 lsl 31))

let sq a = mul a a

let pow a e =
  if e < 0 then invalid_arg "Fp.pow: negative exponent";
  let rec go acc a e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc a) (sq a) (e lsr 1)
    else go acc (sq a) (e lsr 1)
  in
  go one a e

let inv a =
  if a = 0 then raise Division_by_zero;
  pow a (p - 2)

let div a b = mul a (inv b)

let random gen =
  (* Rejection-sample 61 bits to stay uniform. *)
  let rec go () =
    let x = Int64.to_int (gen ()) land p in
    if x >= p then go () else x
  in
  go ()

let to_string = string_of_int
let pp fmt a = Format.fprintf fmt "%d" a
