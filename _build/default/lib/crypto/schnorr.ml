type secret_key = Bignum.t
type public_key = Ec.point
type signature = { r : Ec.point; s : Bignum.t }

let ring = Ec.scalar_ring

(* Map 32 hash bytes to a non-zero scalar mod n. *)
let scalar_of_hash_material material =
  let rec go counter =
    let h =
      Sha256.digest_list [ material; string_of_int counter ]
    in
    let k = Bignum.Modring.reduce ring (Bignum.of_bytes_be h) in
    if Bignum.is_zero k then go (counter + 1) else k
  in
  go 0

let public_of_secret sk = Ec.mul sk Ec.g

let of_seed seed =
  let sk = scalar_of_hash_material (Sha256.digest ("zendoo.schnorr.keygen" ^ seed)) in
  (sk, public_of_secret sk)

let generate rng = of_seed (Rng.bytes rng 32)

let pk_encode = Ec.encode
let pk_decode s = Ec.decode s
let pk_equal = Ec.equal
let pk_hash pk = Hash.tagged "schnorr.pk" [ Ec.encode pk ]

let challenge r pk msg =
  scalar_of_hash_material
    (Sha256.digest_list [ "zendoo.schnorr.e"; Ec.encode r; Ec.encode pk; msg ])

let sign sk msg =
  let pk = public_of_secret sk in
  (* Deterministic nonce: HMAC(sk, msg), per-key-and-message. *)
  let k =
    scalar_of_hash_material
      (Sha256.hmac ~key:(Bignum.to_bytes_be ~len:32 sk) msg)
  in
  let r = Ec.mul k Ec.g in
  let e = challenge r pk msg in
  let s = Bignum.Modring.add ring k (Bignum.Modring.mul ring e sk) in
  { r; s }

let verify pk msg { r; s } =
  (not (Ec.is_infinity r))
  && Bignum.compare s Ec.n < 0
  &&
  let e = challenge r pk msg in
  (* s·G = R + e·P *)
  Ec.equal (Ec.mul s Ec.g) (Ec.add r (Ec.mul e pk))

let sig_encode { r; s } =
  match Ec.to_affine r with
  | None -> String.make 96 '\000'
  | Some (x, y) ->
    Bignum.to_bytes_be ~len:32 x
    ^ Bignum.to_bytes_be ~len:32 y
    ^ Bignum.to_bytes_be ~len:32 s

let sig_decode b =
  if String.length b <> 96 then None
  else begin
    let x = Bignum.of_bytes_be (String.sub b 0 32) in
    let y = Bignum.of_bytes_be (String.sub b 32 32) in
    let s = Bignum.of_bytes_be (String.sub b 64 32) in
    if Bignum.is_zero x && Bignum.is_zero y then Some { r = Ec.infinity; s }
    else if Ec.on_curve x y then Some { r = Ec.of_affine x y; s }
    else None
  end

let pp_pk fmt pk = Hash.pp fmt (pk_hash pk)
