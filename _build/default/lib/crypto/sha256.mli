(** SHA-256 (FIPS 180-4), pure OCaml.

    Used for block/transaction identifiers, proof-of-work, addresses and
    key derivation throughout the mainchain and sidechain substrates. *)

type ctx

val init : unit -> ctx
val feed : ctx -> string -> unit
val feed_bytes : ctx -> bytes -> unit

val finalize : ctx -> string
(** Returns the 32-byte digest. The context must not be reused. *)

val digest : string -> string
(** One-shot hash of a string; returns 32 raw bytes. *)

val digest_list : string list -> string
(** Hash of the concatenation of the inputs (without copying them into
    one buffer first). *)

val hmac : key:string -> string -> string
(** HMAC-SHA256. *)

val to_hex : string -> string
(** Hex rendering of a raw digest (or any byte string). *)
