(** Schnorr signatures over secp256k1 (BIP340-flavoured, with the full
    nonce point carried in the signature instead of x-only keys).

    Authorizes UTXO spends on both chains and signs certifier
    endorsements in the baseline protocol. Nonces are derived
    deterministically from the secret key and message (RFC6979-style via
    HMAC), so signing never consumes ambient randomness. *)

type secret_key
type public_key
type signature

val generate : Rng.t -> secret_key * public_key
(** Fresh keypair from the deterministic RNG. *)

val of_seed : string -> secret_key * public_key
(** Keypair derived from a seed string (for reproducible fixtures). *)

val public_of_secret : secret_key -> public_key

val sign : secret_key -> string -> signature
val verify : public_key -> string -> signature -> bool

val pk_encode : public_key -> string
(** 65-byte encoding; injective. *)

val pk_decode : string -> public_key option
val pk_equal : public_key -> public_key -> bool

val pk_hash : public_key -> Hash.t
(** Address derivation: H(encoded pk). *)

val sig_encode : signature -> string
(** 96-byte encoding (R.x ‖ R.y ‖ s). *)

val sig_decode : string -> signature option

val pp_pk : Format.formatter -> public_key -> unit
