(* zendoo-cli: drive the simulation from the command line.

   Subcommands:
     simulate        run a mainchain+sidechain world and print the event log
     schedule        print a withdrawal-epoch schedule (Fig. 3)
     keys            compile the Latus circuit family and show what a
                     sidechain registers with the mainchain *)

open Cmdliner
open Zen_crypto
open Zen_latus
open Zendoo

(* ---- simulate ---- *)

let simulate seed ticks epoch_len submit_len fts withhold =
  let h = Zen_sim.Harness.create ~seed () in
  Zen_sim.Harness.fund h ~blocks:5;
  match
    Zen_sim.Harness.add_latus h ~name:"sc" ~epoch_len ~submit_len
      ~activation_delay:1 ()
  with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok sc ->
    sc.withhold_certs <- withhold;
    let user = Sc_wallet.create ~seed:(seed ^ ".user") in
    let user_addr = Sc_wallet.fresh_address user in
    for i = 1 to fts do
      match
        Zen_sim.Harness.forward_transfer h sc ~receiver:user_addr
          ~payback:user_addr
          ~amount:(Amount.of_int_exn (i * 1_000_000))
      with
      | Ok () -> ()
      | Error e -> Zen_sim.Harness.logf h "ft failed: %s" e
    done;
    Zen_sim.Harness.tick_n h ticks;
    List.iter print_endline (Zen_sim.Harness.dump_log h);
    Printf.printf
      "\nfinal: MC height %d | SC height %d | balance-on-MC %s | ceased %b | \
       certified epochs [%s]\n"
      (Zen_mainchain.Chain.height h.chain)
      (Node.sc_height sc.node)
      (Amount.to_string (Zen_sim.Harness.sc_balance_on_mc h sc))
      (Zen_sim.Harness.is_ceased h sc)
      (String.concat ";"
         (List.map string_of_int (Node.certified_epochs sc.node)));
    0

(* ---- schedule ---- *)

let schedule start epoch_len submit_len epochs =
  let s = { Epoch.start_block = start; epoch_len; submit_len } in
  Printf.printf "%-6s %-16s %-16s %s\n" "epoch" "MC heights" "cert window"
    "ceased if no cert by";
  for e = 0 to epochs - 1 do
    let lo, hi = Epoch.submission_window s ~epoch:e in
    Printf.printf "%-6d %-16s %-16s %d\n" e
      (Printf.sprintf "%d..%d"
         (Epoch.first_height s ~epoch:e)
         (Epoch.last_height s ~epoch:e))
      (Printf.sprintf "%d..%d" lo hi)
      (hi + 1);
  done;
  0

(* ---- keys ---- *)

let keys mst_depth =
  let params = { Params.default with mst_depth } in
  match Params.validate params with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok () ->
    let family = Circuits.make params in
    let show what (k : Circuits.keys) =
      Printf.printf "%-12s vk=%s  %6d constraints\n" what
        (Hash.to_hex (Zen_snark.Backend.vk_digest k.vk))
        k.constraints
    in
    Printf.printf "Latus circuit family (MST depth %d)\n\n" mst_depth;
    Printf.printf "registered with the mainchain at sidechain creation:\n";
    show "wcert_vk" (Circuits.wcert_keys family);
    show "btr/csw_vk" (Circuits.ownership_keys family);
    Printf.printf "\ninternal base circuits (leaves of the recursion):\n";
    List.iter
      (fun vk ->
        Printf.printf "%-12s vk=%s\n" "base"
          (Hash.to_hex (Zen_snark.Backend.vk_digest vk)))
      (Circuits.base_vks family);
    0

(* ---- cmdliner wiring ---- *)

let seed_t =
  Arg.(value & opt string "cli" & info [ "seed" ] ~doc:"Deterministic seed.")

let simulate_cmd =
  let ticks =
    Arg.(value & opt int 16 & info [ "ticks" ] ~doc:"Simulation rounds.")
  in
  let epoch_len =
    Arg.(value & opt int 4 & info [ "epoch-len" ] ~doc:"Withdrawal epoch length.")
  in
  let submit_len =
    Arg.(value & opt int 2 & info [ "submit-len" ] ~doc:"Certificate window.")
  in
  let fts =
    Arg.(value & opt int 2 & info [ "fts" ] ~doc:"Forward transfers to inject.")
  in
  let withhold =
    Arg.(value & flag & info [ "withhold" ] ~doc:"Withhold certificates (drive ceasing).")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a mainchain + Latus sidechain world")
    Term.(const simulate $ seed_t $ ticks $ epoch_len $ submit_len $ fts $ withhold)

let schedule_cmd =
  let start = Arg.(value & opt int 100 & info [ "start" ] ~doc:"Activation height.") in
  let epoch_len = Arg.(value & opt int 10 & info [ "epoch-len" ] ~doc:"Epoch length.") in
  let submit_len = Arg.(value & opt int 3 & info [ "submit-len" ] ~doc:"Window length.") in
  let epochs = Arg.(value & opt int 5 & info [ "epochs" ] ~doc:"Epochs to print.") in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Print a withdrawal-epoch schedule (Fig. 3)")
    Term.(const schedule $ start $ epoch_len $ submit_len $ epochs)

let keys_cmd =
  let depth = Arg.(value & opt int 12 & info [ "mst-depth" ] ~doc:"MST depth.") in
  Cmd.v
    (Cmd.info "keys" ~doc:"Compile the Latus circuits and print registration keys")
    Term.(const keys $ depth)

let () =
  let doc = "Zendoo cross-chain transfer protocol simulator" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "zendoo-cli" ~doc)
          [ simulate_cmd; schedule_cmd; keys_cmd ]))
