(* Quickstart: the full Zendoo lifecycle in one file.

   1. Spin up a mainchain and fund a wallet.
   2. Register a Latus sidechain (SNARK verification keys included).
   3. Forward-transfer coins to the sidechain.
   4. Pay inside the sidechain; request a backward transfer.
   5. Watch the withdrawal certificate carry the coins back, verified
      by the mainchain with one constant-size SNARK proof.

   Run with: dune exec examples/quickstart.exe *)

open Zen_crypto
open Zen_mainchain
open Zen_latus
open Zendoo

let step = ref 0

let say fmt =
  incr step;
  Printf.printf "\n[%d] " !step;
  Printf.printf fmt

let ok = function Ok v -> v | Error e -> failwith e
let coins n = Amount.of_int_exn (n * 100_000_000)

let () =
  (* -- mainchain world -- *)
  let h = Zen_sim.Harness.create ~seed:"quickstart" () in
  Zen_sim.Harness.fund h ~blocks:5;
  say "Mainchain at height %d; miner wallet holds %s coins."
    (Chain.height h.chain)
    (Amount.to_string (Wallet.balance h.mc_wallet (Chain.tip_state h.chain)));

  (* -- sidechain registration -- *)
  let sc =
    ok
      (Zen_sim.Harness.add_latus h ~name:"payments-sc" ~epoch_len:5
         ~submit_len:2 ~activation_delay:1 ())
  in
  say
    "Registered sidechain %s: withdrawal epochs of %d MC blocks, activation \
     at height %d. The mainchain stored only its verification keys."
    (Hash.short_hex sc.ledger_id) sc.config.epoch_len sc.config.start_block;

  (* -- forward transfer -- *)
  let alice = Sc_wallet.create ~seed:"alice" in
  let alice_addr = Sc_wallet.fresh_address alice in
  let payback = Wallet.fresh_address h.mc_wallet in
  ok
    (Zen_sim.Harness.forward_transfer h sc ~receiver:alice_addr ~payback
       ~amount:(coins 7));
  say "Forward transfer: 7 coins destroyed on the mainchain; sidechain \
       balance (safeguard) is now %s."
    (Amount.to_string (Zen_sim.Harness.sc_balance_on_mc h sc));

  (* -- sidechain syncs and Alice pays Bob -- *)
  Zen_sim.Harness.tick_n h 5;
  say "Sidechain synced epoch 0 via MC block references; Alice's balance: %s."
    (Amount.to_string (Sc_wallet.balance alice (Node.tip_state sc.node)));

  let bob = Sc_wallet.create ~seed:"bob" in
  let bob_addr = Sc_wallet.fresh_address bob in
  let pay =
    ok
      (Sc_wallet.build_payment alice (Node.next_block_state sc.node)
         ~to_:bob_addr ~amount:(coins 2))
  in
  ok (Node.submit_tx sc.node pay);
  Zen_sim.Harness.tick h;
  say "Alice paid Bob 2 coins inside the sidechain (Bob: %s, Alice: %s); a \
       base SNARK proof was produced for every MST slot write."
    (Amount.to_string (Sc_wallet.balance bob (Node.tip_state sc.node)))
    (Amount.to_string (Sc_wallet.balance alice (Node.tip_state sc.node)));

  (* -- backward transfer -- *)
  let mc_recv = Wallet.fresh_address h.mc_wallet in
  let bob_coin = List.hd (Sc_wallet.utxos bob (Node.next_block_state sc.node)) in
  let bt =
    ok
      (Sc_wallet.build_backward_transfer bob (Node.next_block_state sc.node)
         ~utxo:bob_coin ~mc_receiver:mc_recv)
  in
  ok (Node.submit_tx sc.node bt);
  say "Bob requested a backward transfer of his 2 coins to mainchain \
       address %s." (Hash.short_hex mc_recv);

  (* -- run epochs until the certificate carrying Bob's BT lands -- *)
  Zen_sim.Harness.tick_n h 12;
  let epochs = Node.certified_epochs sc.node in
  say "Certified withdrawal epochs so far: [%s]. Each certificate carried \
       one recursive proof of the whole epoch's state transition."
    (String.concat "; " (List.map string_of_int epochs));

  let payout =
    Utxo_set.coins_of_addr (Chain.tip_state h.chain).utxos mc_recv
  in
  say "Mainchain created Bob's payout: %d UTXO worth %s (spendable after \
       the certificate's submission window closes)."
    (List.length payout)
    (match payout with
    | (_, c) :: _ -> Amount.to_string c.Utxo_set.amount
    | [] -> "-");

  say "Sidechain balance on the mainchain after the withdrawal: %s.\n\
       \nDone — the mainchain never saw a sidechain transaction, only \
       certificates with constant-size proofs.\n"
    (Amount.to_string (Zen_sim.Harness.sc_balance_on_mc h sc))
