(* Backward Transfer Requests against a censoring sidechain
   (paper §4.1.2.1, §5.3.4, Fig. 14).

   A sidechain that censors a user's in-sidechain backward transfers
   cannot stop the user from withdrawing: the user submits a BTR on
   the *mainchain*, pre-validated by an ownership SNARK. The BTR is
   synchronized into the sidechain with the MC block references —
   whose processing the withdrawal-certificate statement enforces — so
   the next certificate must carry the corresponding backward transfer.

   Run with: dune exec examples/btr_censorship.exe *)

open Zen_crypto
open Zen_mainchain
open Zen_latus
open Zendoo

let say fmt = Printf.printf ("\n-- " ^^ fmt ^^ "\n")
let ok = function Ok v -> v | Error e -> failwith e
let coins n = Amount.of_int_exn (n * 100_000_000)

let () =
  let h = Zen_sim.Harness.create ~seed:"censor" () in
  Zen_sim.Harness.fund h ~blocks:5;
  let sc =
    ok
      (Zen_sim.Harness.add_latus h ~name:"censoring-sc" ~epoch_len:4
         ~submit_len:2 ~activation_delay:1 ())
  in
  let victim = Sc_wallet.create ~seed:"censor.victim" in
  let victim_addr = Sc_wallet.fresh_address victim in
  let payback = Wallet.fresh_address h.mc_wallet in
  ok
    (Zen_sim.Harness.forward_transfer h sc ~receiver:victim_addr ~payback
       ~amount:(coins 4));
  Zen_sim.Harness.tick_n h 6;
  say "Victim holds %s coins in sidechain %s; epoch 0 is certified."
    (Amount.to_string (Sc_wallet.balance victim (Node.tip_state sc.node)))
    (Hash.short_hex sc.ledger_id);

  (* The sidechain's forgers refuse the victim's BTTx. We model the
     censorship by simply never submitting it to the node's mempool —
     the victim's transactions would be dropped anyway. *)
  say "The sidechain censors the victim's in-sidechain backward-transfer \
       transactions. The victim turns to the mainchain instead.";

  (* Build the BTR against the last committed state. *)
  let committed_epoch = List.hd (List.rev (Node.certified_epochs sc.node)) in
  let committed = Option.get (Node.state_at_epoch_end sc.node ~epoch:committed_epoch) in
  let coin = List.hd (Sc_wallet.utxos victim committed) in
  let mc_recv = Wallet.fresh_address h.mc_wallet in
  let mc_sc =
    Option.get (Sc_ledger.find (Chain.tip_state h.chain).scs sc.ledger_id)
  in
  let btr =
    ok
      (Node.create_withdrawal_request sc.node ~kind:Mainchain_withdrawal.Btr
         ~utxo:coin ~receiver:mc_recv
         ~reference_block:(Sc_ledger.reference_block_for mc_sc)
         ())
  in
  Zen_sim.Harness.submit h (Tx.Withdrawal_request btr);
  Zen_sim.Harness.mine h;
  say "BTR submitted on the mainchain (nullifier %s). The MC verified the \
       ownership SNARK as pre-validation; no coins moved yet — the \
       sidechain balance is still %s."
    (Hash.short_hex btr.Mainchain_withdrawal.nullifier)
    (Amount.to_string (Zen_sim.Harness.sc_balance_on_mc h sc));

  (* The BTR rides the MC block references into the sidechain: the
     forger cannot skip it without breaking the SCTxsCommitment check
     of the reference (and with it the certificate statement). *)
  Zen_sim.Harness.tick_n h 6;
  say "The BTR was synchronized into the sidechain with the MC block \
       reference and processed as a backward transfer. Certified epochs: \
       [%s]; sidechain balance on the MC is now %s."
    (String.concat "; "
       (List.map string_of_int (Node.certified_epochs sc.node)))
    (Amount.to_string (Zen_sim.Harness.sc_balance_on_mc h sc));

  let payout = Utxo_set.coins_of_addr (Chain.tip_state h.chain).utxos mc_recv in
  say "Withdrawal complete despite the censorship: %d payout UTXO worth %s \
       for the victim on the mainchain.\n"
    (List.length payout)
    (match payout with
    | (_, c) :: _ -> Amount.to_string c.Utxo_set.amount
    | [] -> "-")
