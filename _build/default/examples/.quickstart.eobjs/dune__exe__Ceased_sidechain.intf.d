examples/ceased_sidechain.mli:
