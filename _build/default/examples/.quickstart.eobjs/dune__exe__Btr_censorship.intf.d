examples/btr_censorship.mli:
