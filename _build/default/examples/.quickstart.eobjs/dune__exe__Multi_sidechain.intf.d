examples/multi_sidechain.mli:
