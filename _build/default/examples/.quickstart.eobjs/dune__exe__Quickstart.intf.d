examples/quickstart.mli:
