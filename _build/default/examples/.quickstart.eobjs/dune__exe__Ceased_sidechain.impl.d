examples/ceased_sidechain.ml: Amount Chain Hash List Mainchain_withdrawal Node Option Printf Sc_ledger Sc_wallet String Tx Utxo Utxo_set Wallet Zen_crypto Zen_latus Zen_mainchain Zen_sim Zendoo
