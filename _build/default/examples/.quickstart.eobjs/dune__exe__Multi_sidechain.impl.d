examples/multi_sidechain.ml: Amount Chain Circuits Hash List Mc_ref Miner Node Params Printf Sc_block Sc_wallet String Wallet Zen_crypto Zen_latus Zen_mainchain Zen_sim Zendoo
