examples/quickstart.ml: Amount Chain Hash List Node Printf Sc_wallet String Utxo_set Wallet Zen_crypto Zen_latus Zen_mainchain Zen_sim Zendoo
