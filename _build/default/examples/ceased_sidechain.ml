(* Ceased-sidechain recovery (paper §4.1.2.1, §5.5.3.3, Appendix A).

   A sidechain goes silent (its maintainers withhold certificates);
   the mainchain declares it ceased once a submission window elapses
   uncertified. Users then recover their coins with Ceased Sidechain
   Withdrawals: direct mainchain payments backed by an ownership proof
   against the last *committed* sidechain state, with the Appendix-A
   mst_delta chain guarding against stale claims.

   Run with: dune exec examples/ceased_sidechain.exe *)

open Zen_crypto
open Zen_mainchain
open Zen_latus
open Zendoo

let say fmt = Printf.printf ("\n-- " ^^ fmt ^^ "\n")
let ok = function Ok v -> v | Error e -> failwith e
let coins n = Amount.of_int_exn (n * 100_000_000)

let () =
  let h = Zen_sim.Harness.create ~seed:"ceased" () in
  Zen_sim.Harness.fund h ~blocks:5;
  let sc =
    ok
      (Zen_sim.Harness.add_latus h ~name:"doomed-sc" ~epoch_len:4 ~submit_len:2
         ~activation_delay:1 ())
  in
  let user = Sc_wallet.create ~seed:"ceased.user" in
  let user_addr = Sc_wallet.fresh_address user in
  let payback = Wallet.fresh_address h.mc_wallet in
  ok
    (Zen_sim.Harness.forward_transfer h sc ~receiver:user_addr ~payback
       ~amount:(coins 9));
  say "User moved 9 coins into sidechain %s." (Hash.short_hex sc.ledger_id);

  (* One healthy epoch, so the sidechain state is committed once. *)
  Zen_sim.Harness.tick_n h 6;
  say "Epoch 0 certified; the certificate committed the MST root and an \
       mst_delta bit vector. Certified epochs: [%s]."
    (String.concat "; "
       (List.map string_of_int (Node.certified_epochs sc.node)));

  (* The maintainers go rogue: no more certificates. *)
  sc.withhold_certs <- true;
  let before = Chain.height h.chain in
  while not (Zen_sim.Harness.is_ceased h sc) do
    Zen_sim.Harness.tick h
  done;
  say "Certificates withheld from MC height %d; the mainchain declared the \
       sidechain CEASED at height %d (Def. 4.2). No further certificates \
       will be accepted." before (Chain.height h.chain);

  (* Forward transfers to a ceased sidechain bounce. *)
  (match
     Zen_sim.Harness.forward_transfer h sc ~receiver:user_addr ~payback
       ~amount:(coins 1)
   with
  | Error e -> say "A new forward transfer is now rejected: %s" e
  | Ok () ->
    (* The harness mines the tx; it is skipped by the miner, so the
       balance is unchanged. *)
    say "Forward transfer skipped by the miner (balance unchanged: %s)."
      (Amount.to_string (Zen_sim.Harness.sc_balance_on_mc h sc)));

  (* Recovery: CSW against the epoch-0 committed state. *)
  let committed = Option.get (Node.state_at_epoch_end sc.node ~epoch:0) in
  let coin = List.hd (Sc_wallet.utxos user committed) in
  let mc_recv = Wallet.fresh_address h.mc_wallet in
  let mc_sc =
    Option.get (Sc_ledger.find (Chain.tip_state h.chain).scs sc.ledger_id)
  in
  let csw =
    ok
      (Node.create_withdrawal_request sc.node ~kind:Mainchain_withdrawal.Csw
         ~utxo:coin ~receiver:mc_recv
         ~reference_block:(Sc_ledger.reference_block_for mc_sc)
         ~as_of_epoch:0 ())
  in
  say "Built a CSW for the user's %s-coin UTXO: ownership proof against the \
       epoch-0 MST root, nullifier %s. The mst_delta chain confirms the \
       slot was untouched since."
    (Amount.to_string coin.Utxo.amount)
    (Hash.short_hex csw.Mainchain_withdrawal.nullifier);

  Zen_sim.Harness.submit h (Tx.Withdrawal_request csw);
  Zen_sim.Harness.mine h;
  let payout = Utxo_set.coins_of_addr (Chain.tip_state h.chain).utxos mc_recv in
  say "The mainchain verified the CSW proof and paid out directly: %d UTXO \
       worth %s. Sidechain balance left: %s."
    (List.length payout)
    (match payout with (_, c) :: _ -> Amount.to_string c.Utxo_set.amount | [] -> "-")
    (Amount.to_string (Zen_sim.Harness.sc_balance_on_mc h sc));

  (* Replay protection. *)
  let st = Chain.tip_state h.chain in
  (match Sc_ledger.check_withdrawal st.scs ~request:csw ~height:(st.height + 1) with
  | Error e -> say "Replaying the same CSW fails: %s" e
  | Ok () -> failwith "replay accepted!");
  print_newline ()
