(* Multiple decoupled sidechains + mainchain fork resolution.

   Two Latus sidechains with *different, unaligned* withdrawal epochs
   run against one mainchain (paper Fig. 1, §4.1.2: "the entire system
   runs asynchronously"). The example then injects a mainchain fork and
   shows the sidechain binding in action: SC blocks referencing orphaned
   MC blocks are rolled back and re-forged on the winning branch
   (§5.1, "Mainchain forks resolution").

   Run with: dune exec examples/multi_sidechain.exe *)

open Zen_crypto
open Zen_mainchain
open Zen_latus
open Zendoo

let say fmt = Printf.printf ("\n-- " ^^ fmt ^^ "\n")
let ok = function Ok v -> v | Error e -> failwith e
let coins n = Amount.of_int_exn (n * 100_000_000)

let () =
  let h = Zen_sim.Harness.create ~seed:"multi" () in
  Zen_sim.Harness.fund h ~blocks:5;
  (* One circuit family shared by both sidechains: same params. *)
  let params = Params.default in
  let family = Circuits.make params in
  let fast =
    ok
      (Zen_sim.Harness.add_latus h ~name:"fast-sc" ~family ~epoch_len:3
         ~submit_len:1 ~activation_delay:1 ())
  in
  let slow =
    ok
      (Zen_sim.Harness.add_latus h ~name:"slow-sc" ~family ~epoch_len:7
         ~submit_len:3 ~activation_delay:1 ())
  in
  say "Two sidechains registered: fast (epoch 3) and slow (epoch 7); their \
       withdrawal epochs are not aligned.";

  let u_fast = Sc_wallet.create ~seed:"multi.fast" in
  let a_fast = Sc_wallet.fresh_address u_fast in
  let u_slow = Sc_wallet.create ~seed:"multi.slow" in
  let a_slow = Sc_wallet.fresh_address u_slow in
  let payback = Wallet.fresh_address h.mc_wallet in
  ok
    (Zen_sim.Harness.forward_transfer h fast ~receiver:a_fast ~payback
       ~amount:(coins 3));
  ok
    (Zen_sim.Harness.forward_transfer h slow ~receiver:a_slow ~payback
       ~amount:(coins 5));
  say "Forward transfers: 3 coins to fast-sc, 5 to slow-sc (balances: %s / %s)."
    (Amount.to_string (Zen_sim.Harness.sc_balance_on_mc h fast))
    (Amount.to_string (Zen_sim.Harness.sc_balance_on_mc h slow));

  Zen_sim.Harness.tick_n h 15;
  say "After 15 MC blocks: fast-sc certified epochs [%s], slow-sc [%s] — \
       asynchronous heartbeats on one mainchain."
    (String.concat "; "
       (List.map string_of_int (Node.certified_epochs fast.node)))
    (String.concat "; "
       (List.map string_of_int (Node.certified_epochs slow.node)));

  (* ---- mainchain fork ---- *)
  let fork_base = h.chain in
  Zen_sim.Harness.tick h;
  let orphaned_tip = Chain.tip_hash h.chain in
  say "Mined MC block %s and the sidechains referenced it (fast-sc synced \
       to MC height %d)."
    (Hash.short_hex orphaned_tip)
    (Node.mc_synced_height fast.node);

  (* A competing branch of length 2 overtakes. *)
  let alt = ref fork_base in
  let alt_miner = Wallet.fresh_address (Wallet.create ~seed:"multi.alt") in
  let b1, _ = ok (Miner.build_block !alt ~time:900 ~miner_addr:alt_miner ~candidates:[]) in
  alt := fst (ok (Chain.add_block !alt b1));
  let b2, _ = ok (Miner.build_block !alt ~time:901 ~miner_addr:alt_miner ~candidates:[]) in
  h.chain <- fst (ok (Chain.add_block h.chain b1));
  let chain, outcome = ok (Chain.add_block h.chain b2) in
  h.chain <- chain;
  (match outcome with
  | Chain.Reorg { depth; _ } ->
    say "A competing miner published a longer branch: REORG of depth %d; \
         block %s is now orphaned." depth (Hash.short_hex orphaned_tip)
  | _ -> failwith "expected a reorg");

  (* The next forging round reconciles. *)
  Zen_sim.Harness.tick_n h 2;
  let consistent sc =
    List.for_all
      (fun (b : Sc_block.t) ->
        List.for_all
          (fun r -> Chain.on_best_chain h.chain (Mc_ref.block_hash r))
          b.mc_refs)
      (Node.blocks sc.Zen_sim.Harness.node)
  in
  say "Sidechain binding resolved the fork: every MC reference in both \
       sidechains now points at the winning branch (fast-sc: %b, slow-sc: \
       %b). Synced heights: fast %d, slow %d."
    (consistent fast) (consistent slow)
    (Node.mc_synced_height fast.node)
    (Node.mc_synced_height slow.node);

  (* Business as usual after the fork. *)
  Zen_sim.Harness.tick_n h 8;
  say "Both sidechains kept certifying after the fork: fast [%s], slow [%s].\n"
    (String.concat "; "
       (List.map string_of_int (Node.certified_epochs fast.node)))
    (String.concat "; "
       (List.map string_of_int (Node.certified_epochs slow.node)))
