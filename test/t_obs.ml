(* Zen_obs: counter accuracy under the Domain pool, span nesting and
   durations under a deterministic clock, exporter validity (both JSON
   documents parse with the library's own strict parser), the Chrome
   trace's per-domain lanes, and the load-bearing guarantee of the
   whole subsystem — observation only: proofs, certificates and
   rewards are byte-identical with instrumentation on, off, or across
   domain counts. *)

open Zen_crypto
open Zen_latus
open Zendoo

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let ok = function Ok v -> v | Error e -> Alcotest.fail e

let params = Params.default
let family = lazy (Circuits.make params)

(* Each test owns the global registry for its duration: start from a
   clean slate, record with the registry enabled, and leave it disabled
   (the suite runs single-threaded, so this is race-free). *)
let with_fresh_obs f =
  Zen_obs.Registry.reset ();
  Fun.protect
    ~finally:(fun () ->
      Zen_obs.Registry.disable ();
      Zen_obs.Registry.reset ())
    (fun () -> Zen_obs.Registry.with_enabled f)

(* ---- counters ---- *)

let test_counter_parallel_accuracy () =
  let c = Zen_obs.Counter.make "t_obs.parallel" in
  List.iter
    (fun domains ->
      with_fresh_obs @@ fun () ->
      Pool.with_pool ~domains @@ fun pool ->
      Pool.parallel_for pool ~chunk:1 ~n:1000 (fun _ ->
          Zen_obs.Counter.incr c);
      checki
        (Printf.sprintf "1000 increments on %d domains" domains)
        1000 (Zen_obs.Counter.value c))
    [ 1; 2; 4; 8 ]

let test_counter_disabled_is_inert () =
  Zen_obs.Registry.reset ();
  Zen_obs.Registry.disable ();
  let c = Zen_obs.Counter.make "t_obs.disabled" in
  Zen_obs.Counter.add c 7;
  checki "disabled counter stays 0" 0 (Zen_obs.Counter.value c)

let test_counter_idempotent_make () =
  with_fresh_obs @@ fun () ->
  let a = Zen_obs.Counter.make "t_obs.same" in
  let b = Zen_obs.Counter.make "t_obs.same" in
  Zen_obs.Counter.incr a;
  Zen_obs.Counter.incr b;
  checki "both handles hit one counter" 2 (Zen_obs.Counter.value a)

(* ---- spans ---- *)

let test_span_nesting_and_durations () =
  with_fresh_obs @@ fun () ->
  Zen_obs.Clock.set (Zen_obs.Clock.deterministic ());
  Fun.protect ~finally:Zen_obs.Clock.reset @@ fun () ->
  Zen_obs.Trace.with_span "outer" (fun () ->
      Zen_obs.Trace.with_span "inner" (fun () -> ());
      Zen_obs.Trace.instant "point");
  let events = Zen_obs.Trace.events () in
  let find n =
    List.find (fun e -> String.equal e.Zen_obs.Trace.name n) events
  in
  let outer = find "outer" and inner = find "inner" and pt = find "point" in
  checki "three events" 3 (List.length events);
  checki "outer depth" 0 outer.depth;
  checki "inner depth" 1 inner.depth;
  checkb "durations non-negative" true
    (List.for_all (fun e -> e.Zen_obs.Trace.dur >= 0.) events);
  (* deterministic clock: outer spans inner's two ticks plus its own *)
  checkb "inner inside outer" true
    (inner.ts >= outer.ts && inner.ts +. inner.dur <= outer.ts +. outer.dur);
  checkb "instant has zero duration" true (pt.dur = 0.);
  checkb "instant is Instant" true (pt.phase = Zen_obs.Trace.Instant)

let test_span_records_on_exception () =
  with_fresh_obs @@ fun () ->
  (try Zen_obs.Trace.with_span "boom" (fun () -> failwith "x")
   with Failure _ -> ());
  checki "span recorded despite raise" 1
    (List.length (Zen_obs.Trace.events ()))

(* ---- exporters ---- *)

let parses s =
  match Zen_obs.Json.of_string s with
  | Ok v -> v
  | Error e -> Alcotest.fail ("exporter output is not valid JSON: " ^ e)

let test_exporters_emit_valid_json () =
  with_fresh_obs @@ fun () ->
  let c = Zen_obs.Counter.make "t_obs.export" in
  Zen_obs.Counter.add c 3;
  let g = Zen_obs.Gauge.make "t_obs.gauge" in
  Zen_obs.Gauge.set g 2.5;
  let h =
    Zen_obs.Histogram.make ~bounds:[ 0.1; 1.0 ] "t_obs.hist"
  in
  Zen_obs.Histogram.observe h 0.5;
  Zen_obs.Trace.with_span "t_obs.span"
    ~args:[ ("weird", "quote\" slash\\ \x01") ]
    (fun () -> ());
  let doc = parses (Zen_obs.Export.json_string ()) in
  checkb "schema tag" true
    (Zen_obs.Json.member "schema" doc = Some (Zen_obs.Json.Str "zen-obs/1"));
  let trace = parses (Zen_obs.Export.chrome_trace ()) in
  let events =
    match Zen_obs.Json.member "traceEvents" trace with
    | Some a -> Zen_obs.Json.to_list a
    | None -> Alcotest.fail "no traceEvents key"
  in
  checkb "trace has events" true (events <> []);
  (* the summary never raises and mentions what we recorded *)
  let s = Zen_obs.Export.summary () in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  checkb "summary mentions counter" true (contains ~sub:"t_obs.export" s)

let tids_of_trace trace =
  List.filter_map
    (fun e ->
      match
        (Zen_obs.Json.member "ph" e, Zen_obs.Json.member "tid" e)
      with
      | Some (Zen_obs.Json.Str "X"), Some (Zen_obs.Json.Int tid) -> Some tid
      | _ -> None)
    (match Zen_obs.Json.member "traceEvents" trace with
    | Some a -> Zen_obs.Json.to_list a
    | None -> [])
  |> List.sort_uniq Int.compare

let workload steps seed =
  List.init steps (fun i ->
      Sc_tx.Insert
        (Utxo.make
           ~addr:(Hash.of_string "t-obs")
           ~amount:(Amount.of_int_exn (i + 1))
           ~nonce:(Hash.of_string (Printf.sprintf "t-obs-%d-%d" seed i))))

let test_chrome_trace_multidomain_lanes () =
  with_fresh_obs @@ fun () ->
  let fam = Lazy.force family in
  Pool.with_pool ~domains:4 @@ fun pool ->
  let _ =
    ok
      (Prover_pool.prove_epoch ~pool fam
         ~initial:(Sc_state.create params)
         ~steps:(workload 32 11) ~workers:3 ~seed:11)
  in
  let trace = parses (Zen_obs.Export.chrome_trace ()) in
  (* 32 heavyweight single-step chunks on 4 domains: the helper domains
     essentially cannot all sit the epoch out. *)
  checkb "at least two distinct tid lanes" true
    (List.length (tids_of_trace trace) >= 2)

(* ---- observation-only: byte-identity with obs on/off/multi-domain ---- *)

let epoch_fingerprint ~obs ~domains ~steps ~seed =
  let fam = Lazy.force family in
  Zen_obs.Registry.reset ();
  if obs then Zen_obs.Registry.enable () else Zen_obs.Registry.disable ();
  Fun.protect
    ~finally:(fun () ->
      Zen_obs.Registry.disable ();
      Zen_obs.Registry.reset ())
  @@ fun () ->
  Pool.with_pool ~domains @@ fun pool ->
  let proofs, stats =
    ok
      (Prover_pool.prove_epoch ~pool fam
         ~initial:(Sc_state.create params)
         ~steps:(workload steps seed) ~workers:3 ~seed)
  in
  let rsys =
    Zen_snark.Recursive.create ~name:"t-obs"
      ~base_vks:(Circuits.base_vks fam)
  in
  let top = ok (Prover_pool.merge_all ~pool fam rsys proofs) in
  let cert =
    Withdrawal_certificate.make ~ledger_id:(Hash.of_string "sc") ~epoch_id:0
      ~quality:1 ~bt_list:[]
      ~proofdata:Proofdata.[ Digest Hash.zero; Field Fp.one; Blob "" ]
      ~proof:(Zen_snark.Recursive.final_proof top)
  in
  ( List.map
      (fun tp -> Zen_snark.Backend.proof_encode tp.Prover_pool.proof)
      proofs,
    stats.Prover_pool.rewards,
    Zen_snark.Backend.proof_encode (Zen_snark.Recursive.final_proof top),
    Withdrawal_certificate.hash cert )

let prop_obs_is_observation_only =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"proofs/certificates byte-identical with obs on/off, any domains"
       ~count:3
       QCheck2.Gen.(pair (int_range 1 6) (int_range 0 1000))
       (fun (steps, seed) ->
         let reference = epoch_fingerprint ~obs:false ~domains:1 ~steps ~seed in
         List.for_all
           (fun (obs, domains) ->
             reference = epoch_fingerprint ~obs ~domains ~steps ~seed)
           [ (true, 1); (true, 2); (true, 4); (false, 4) ]))

(* ---- harness log on Events ---- *)

let test_harness_log_oldest_first () =
  let h = Zen_sim.Harness.create ~seed:"t-obs" () in
  Zen_sim.Harness.logf h "first %d" 1;
  Zen_sim.Harness.logf h "second %d" 2;
  checkb "dump_log oldest first" true
    (Zen_sim.Harness.dump_log h = [ "first 1"; "second 2" ]);
  checkb "events field agrees" true
    (Zen_obs.Events.items h.log = [ "first 1"; "second 2" ])

let suite =
  ( "obs",
    [
      Alcotest.test_case "counter accurate under parallel_for" `Quick
        test_counter_parallel_accuracy;
      Alcotest.test_case "disabled counter is inert" `Quick
        test_counter_disabled_is_inert;
      Alcotest.test_case "counter make is idempotent" `Quick
        test_counter_idempotent_make;
      Alcotest.test_case "span nesting and durations" `Quick
        test_span_nesting_and_durations;
      Alcotest.test_case "span records on exception" `Quick
        test_span_records_on_exception;
      Alcotest.test_case "exporters emit valid JSON" `Quick
        test_exporters_emit_valid_json;
      Alcotest.test_case "chrome trace has per-domain lanes" `Slow
        test_chrome_trace_multidomain_lanes;
      Alcotest.test_case "harness log oldest first" `Quick
        test_harness_log_oldest_first;
      prop_obs_is_observation_only;
    ] )
