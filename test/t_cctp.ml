(* The Zendoo CCTP core: amounts, proofdata, epochs, the commitment
   tree, certificates and the unified verifier. *)

open Zen_crypto
open Zendoo

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let ok = function Ok v -> v | Error e -> Alcotest.fail e
let amount n = Amount.of_int_exn n

(* ---- amounts ---- *)

let test_amount_bounds () =
  checkb "negative" true (Result.is_error (Amount.of_int (-1)));
  checkb "max ok" true (Result.is_ok (Amount.of_int (Amount.to_int Amount.max_supply)));
  checkb "over max" true
    (Result.is_error (Amount.of_int (Amount.to_int Amount.max_supply + 1)));
  checkb "overflow add" true
    (Result.is_error (Amount.add Amount.max_supply (amount 1)));
  checkb "underflow sub" true (Result.is_error (Amount.sub (amount 1) (amount 2)))

let test_amount_sum () =
  checki "sum" 6 (Amount.to_int (ok (Amount.sum [ amount 1; amount 2; amount 3 ])));
  checki "empty" 0 (Amount.to_int (ok (Amount.sum [])))

(* ---- proofdata ---- *)

let test_proofdata_schema () =
  let pd = Proofdata.[ Digest Hash.zero; Field Fp.one; Uint 7 ] in
  checkb "matches" true
    (Proofdata.matches Proofdata.[ Tdigest; Tfield; Tuint ] pd);
  checkb "wrong order" false
    (Proofdata.matches Proofdata.[ Tfield; Tdigest; Tuint ] pd);
  checkb "wrong length" false (Proofdata.matches Proofdata.[ Tdigest ] pd)

let test_proofdata_membership () =
  let pd =
    Proofdata.[ Digest (Hash.of_string "x"); Uint 4; Blob "payload"; Field Fp.two ]
  in
  let root = Proofdata.root pd in
  List.iteri
    (fun i e ->
      let p = Proofdata.membership_proof pd i in
      checkb (Printf.sprintf "elem %d" i) true
        (Proofdata.verify_membership ~root e p))
    pd;
  let p0 = Proofdata.membership_proof pd 0 in
  checkb "wrong elem" false
    (Proofdata.verify_membership ~root (Proofdata.Uint 9) p0)

let test_proofdata_root_sensitivity () =
  let r1 = Proofdata.root [ Proofdata.Uint 1 ] in
  let r2 = Proofdata.root [ Proofdata.Uint 2 ] in
  checkb "value-sensitive" false (Hash.equal r1 r2)

(* ---- epochs ---- *)

let sched = { Epoch.start_block = 100; epoch_len = 10; submit_len = 3 }

let test_epoch_mapping () =
  Alcotest.(check (option int)) "before start" None
    (Epoch.epoch_of_height sched ~height:99);
  Alcotest.(check (option int)) "first" (Some 0)
    (Epoch.epoch_of_height sched ~height:100);
  Alcotest.(check (option int)) "boundary" (Some 0)
    (Epoch.epoch_of_height sched ~height:109);
  Alcotest.(check (option int)) "next" (Some 1)
    (Epoch.epoch_of_height sched ~height:110);
  checki "first height" 110 (Epoch.first_height sched ~epoch:1);
  checki "last height" 119 (Epoch.last_height sched ~epoch:1)

let test_epoch_window () =
  let lo, hi = Epoch.submission_window sched ~epoch:0 in
  checki "window lo" 110 lo;
  checki "window hi" 112 hi;
  checkb "in window" true (Epoch.in_submission_window sched ~epoch:0 ~height:111);
  checkb "after window" false
    (Epoch.in_submission_window sched ~epoch:0 ~height:113)

(* submit_len > epoch_len is legal and makes consecutive submission
   windows overlap — several epochs certifiable at one height. The
   ledger's sequential-certification rule (t_faults) relies on this
   geometry. *)
let test_overlapping_windows () =
  let s = { Epoch.start_block = 1000; epoch_len = 2; submit_len = 5 } in
  let lo0, hi0 = Epoch.submission_window s ~epoch:0 in
  let lo1, hi1 = Epoch.submission_window s ~epoch:1 in
  checki "w0 lo" 1002 lo0;
  checki "w0 hi" 1006 hi0;
  checki "w1 lo" 1004 lo1;
  checki "w1 hi" 1008 hi1;
  checkb "windows overlap" true (lo1 <= hi0);
  checkb "both open at once" true
    (Epoch.in_submission_window s ~epoch:0 ~height:1005
    && Epoch.in_submission_window s ~epoch:1 ~height:1005);
  (* with a certificate due, ceasing still tracks the earliest
     uncertified epoch's window *)
  checkb "alive at w0 end" false
    (Epoch.ceased_at s ~last_certified_epoch:None ~height:1006);
  checkb "ceased past w0 end" true
    (Epoch.ceased_at s ~last_certified_epoch:None ~height:1007);
  checkb "cert for 0 extends to w1" false
    (Epoch.ceased_at s ~last_certified_epoch:(Some 0) ~height:1008)

(* The window boundary is inclusive: height == window_end is the last
   chance to land a certificate; ceasing triggers exactly one block
   later. *)
let test_window_end_edge () =
  let _, hi = Epoch.submission_window sched ~epoch:0 in
  checkb "in window at end" true
    (Epoch.in_submission_window sched ~epoch:0 ~height:hi);
  checkb "out one past end" false
    (Epoch.in_submission_window sched ~epoch:0 ~height:(hi + 1));
  checkb "alive at end" false
    (Epoch.ceased_at sched ~last_certified_epoch:None ~height:hi);
  checkb "ceased at end + 1" true
    (Epoch.ceased_at sched ~last_certified_epoch:None ~height:(hi + 1))

let test_epoch_ceasing () =
  (* No certs: must cease once epoch 0's window has fully passed. *)
  checkb "alive inside window" false
    (Epoch.ceased_at sched ~last_certified_epoch:None ~height:112);
  checkb "ceased after window" true
    (Epoch.ceased_at sched ~last_certified_epoch:None ~height:113);
  (* With epoch 0 certified: next deadline is epoch 1's window. *)
  checkb "alive with cert" false
    (Epoch.ceased_at sched ~last_certified_epoch:(Some 0) ~height:120);
  checkb "ceases again" true
    (Epoch.ceased_at sched ~last_certified_epoch:(Some 0) ~height:123)

(* ---- sc_commitment ---- *)

let mk_ft id n =
  Forward_transfer.make ~ledger_id:id
    ~receiver_metadata:(String.make 64 'r')
    ~amount:(amount (1000 + n))

let entry id nfts =
  {
    Sc_commitment.ledger_id = id;
    fts = List.init nfts (mk_ft id);
    btrs = [];
    wcert = None;
  }

let test_commitment_membership () =
  let ids = List.init 5 (fun i -> Hash.of_string (Printf.sprintf "sc%d" i)) in
  let entries = List.mapi (fun i id -> entry id (i + 1)) ids in
  let t = ok (Sc_commitment.build entries) in
  checki "count" 5 (Sc_commitment.sidechain_count t);
  List.iter
    (fun e ->
      match Sc_commitment.prove_membership t e.Sc_commitment.ledger_id with
      | None -> Alcotest.fail "no membership proof"
      | Some m ->
        checkb "verifies" true
          (Sc_commitment.verify_membership ~root:(Sc_commitment.root t)
             ~ledger_id:e.Sc_commitment.ledger_id
             ~entry_hash:(Sc_commitment.entry_hash e) m);
        checkb "wrong entry rejected" false
          (Sc_commitment.verify_membership ~root:(Sc_commitment.root t)
             ~ledger_id:e.Sc_commitment.ledger_id
             ~entry_hash:(Hash.of_string "forged") m))
    entries

let test_commitment_absence () =
  let ids = List.init 4 (fun i -> Hash.of_string (Printf.sprintf "present%d" i)) in
  let t = ok (Sc_commitment.build (List.map (fun id -> entry id 1) ids)) in
  let absent = Hash.of_string "not-here" in
  (match Sc_commitment.prove_absence t absent with
  | None -> Alcotest.fail "expected absence proof"
  | Some a ->
    checkb "absence verifies" true
      (Sc_commitment.verify_absence ~root:(Sc_commitment.root t)
         ~ledger_id:absent a);
    (* the same proof must not prove absence of a present id *)
    checkb "present id rejected" false
      (Sc_commitment.verify_absence ~root:(Sc_commitment.root t)
         ~ledger_id:(List.hd ids) a));
  (* absence unobtainable for present ids *)
  checkb "no absence for present" true
    (Sc_commitment.prove_absence t (List.hd ids) = None);
  (* membership unobtainable for absent ids *)
  checkb "no membership for absent" true
    (Sc_commitment.prove_membership t absent = None)

let test_commitment_empty_block () =
  let t = ok (Sc_commitment.build []) in
  let any = Hash.of_string "anything" in
  match Sc_commitment.prove_absence t any with
  | None -> Alcotest.fail "empty block must prove absence of everything"
  | Some a ->
    checkb "verifies" true
      (Sc_commitment.verify_absence ~root:(Sc_commitment.root t) ~ledger_id:any a)

let test_commitment_duplicate_rejected () =
  let id = Hash.of_string "dup" in
  checkb "duplicate" true
    (Result.is_error (Sc_commitment.build [ entry id 1; entry id 2 ]))

let test_commitment_entry_hash_reconstructible () =
  (* A sidechain node recomputes SCXHash from its own slice. *)
  let id = Hash.of_string "self" in
  let e = entry id 3 in
  let t = ok (Sc_commitment.build [ e; entry (Hash.of_string "other") 1 ]) in
  let rebuilt =
    Sc_commitment.entry_hash
      { Sc_commitment.ledger_id = id; fts = e.fts; btrs = []; wcert = None }
  in
  match Sc_commitment.prove_membership t id with
  | None -> Alcotest.fail "no proof"
  | Some m ->
    checkb "reconstructed hash verifies" true
      (Sc_commitment.verify_membership ~root:(Sc_commitment.root t)
         ~ledger_id:id ~entry_hash:rebuilt m)

(* Regression (PR 5): build memoizes FT/BTR subtree roots per distinct
   leaf list. The root must be unchanged relative to the direct,
   unmemoized per-entry computation — exercised here with the
   memo-friendly shapes (shared empty lists, repeated identical
   batches) and proven leaf by leaf via the exported entry_hash. *)
let test_commitment_memoized_root_unchanged () =
  let id i = Hash.of_string (Printf.sprintf "memo%d" i) in
  let shared_fts = List.init 3 (mk_ft Hash.zero) in
  let entries =
    List.init 12 (fun i ->
        {
          Sc_commitment.ledger_id = id i;
          (* thirds: empty / one shared batch / individual lists *)
          fts =
            (if i mod 3 = 0 then []
             else if i mod 3 = 1 then shared_fts
             else List.init 2 (mk_ft (id i)));
          btrs = [];
          wcert = None;
        })
  in
  let t = ok (Sc_commitment.build entries) in
  List.iter
    (fun e ->
      match Sc_commitment.prove_membership t e.Sc_commitment.ledger_id with
      | None -> Alcotest.fail "no membership proof"
      | Some m ->
        checkb "memoized leaf = direct entry_hash" true
          (Sc_commitment.verify_membership ~root:(Sc_commitment.root t)
             ~ledger_id:e.Sc_commitment.ledger_id
             ~entry_hash:(Sc_commitment.entry_hash e) m))
    entries;
  (* Parallel build takes the same memoized path chunks; same root. *)
  Zen_crypto.Pool.with_pool ~domains:3 (fun pool ->
      let t_par = ok (Sc_commitment.build ~pool entries) in
      checkb "pooled build, same root" true
        (Hash.equal (Sc_commitment.root t) (Sc_commitment.root t_par)))

(* ---- bt list roots / wcert ---- *)

let test_bt_list_root () =
  let bts =
    List.init 4 (fun i ->
        Backward_transfer.make
          ~receiver_addr:(Hash.of_string (string_of_int i))
          ~amount:(amount (i + 1)))
  in
  let root = Backward_transfer.list_root bts in
  let p = Backward_transfer.membership_proof bts 2 in
  checkb "bt member" true
    (Merkle.verify ~root ~leaf:(Backward_transfer.hash (List.nth bts 2)) p);
  checkb "order-sensitive" false
    (Hash.equal root (Backward_transfer.list_root (List.rev bts)))

let test_wcert_total () =
  let cert =
    Withdrawal_certificate.make ~ledger_id:Hash.zero ~epoch_id:0 ~quality:1
      ~bt_list:
        [
          Backward_transfer.make ~receiver_addr:Hash.zero ~amount:(amount 5);
          Backward_transfer.make ~receiver_addr:Hash.zero ~amount:(amount 7);
        ]
      ~proofdata:[] ~proof:Zen_snark.Backend.dummy_proof
  in
  checki "total" 12 (Amount.to_int (ok (Withdrawal_certificate.total_withdrawn cert)))

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:100 gen f)

let props =
  [
    prop "epoch height mapping consistent" QCheck2.Gen.(int_range 100 10000)
      (fun height ->
        match Epoch.epoch_of_height sched ~height with
        | None -> false
        | Some e ->
          Epoch.first_height sched ~epoch:e <= height
          && height <= Epoch.last_height sched ~epoch:e);
    prop "amount sum never exceeds max"
      QCheck2.Gen.(list_size (int_bound 20) (int_bound 1000000))
      (fun ns ->
        match Amount.sum (List.map amount ns) with
        | Ok total -> Amount.to_int total = List.fold_left ( + ) 0 ns
        | Error _ -> false);
  ]

let suite =
  ( "cctp",
    [
      Alcotest.test_case "amount bounds" `Quick test_amount_bounds;
      Alcotest.test_case "amount sum" `Quick test_amount_sum;
      Alcotest.test_case "proofdata schema" `Quick test_proofdata_schema;
      Alcotest.test_case "proofdata membership" `Quick test_proofdata_membership;
      Alcotest.test_case "proofdata root" `Quick test_proofdata_root_sensitivity;
      Alcotest.test_case "epoch mapping" `Quick test_epoch_mapping;
      Alcotest.test_case "epoch window" `Quick test_epoch_window;
      Alcotest.test_case "overlapping windows" `Quick test_overlapping_windows;
      Alcotest.test_case "window end edge" `Quick test_window_end_edge;
      Alcotest.test_case "epoch ceasing" `Quick test_epoch_ceasing;
      Alcotest.test_case "commitment membership" `Quick test_commitment_membership;
      Alcotest.test_case "commitment absence" `Quick test_commitment_absence;
      Alcotest.test_case "commitment empty" `Quick test_commitment_empty_block;
      Alcotest.test_case "commitment duplicates" `Quick
        test_commitment_duplicate_rejected;
      Alcotest.test_case "commitment reconstruction" `Quick
        test_commitment_entry_hash_reconstructible;
      Alcotest.test_case "commitment memoized root" `Quick
        test_commitment_memoized_root_unchanged;
      Alcotest.test_case "bt list root" `Quick test_bt_list_root;
      Alcotest.test_case "wcert total" `Quick test_wcert_total;
    ]
    @ props )
