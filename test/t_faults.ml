(* Deterministic fault injection (Zen_sim.Faults) and the two bugs it
   shakes out: the certificate gap under overlapping submission windows
   (sequential certification) and the harness losing mempool
   transactions on reorg. Plus prover-pool crash retry and full-run
   replay determinism. *)

open Zen_crypto
open Zen_mainchain
open Zen_latus
open Zen_sim
open Zendoo

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let ok = function Ok v -> v | Error e -> Alcotest.fail e
let err = function Error e -> e | Ok _ -> Alcotest.fail "expected Error"
let amount n = Amount.of_int_exn n

let params = Params.default
let family = Circuits.make params

(* ---- plan codec ---- *)

let test_plan_codec () =
  let plan =
    [
      Faults.Crash_worker { epoch = 2; worker = 1 };
      Faults.Slow_worker { epoch = 3; worker = 0; factor = 7 };
      Faults.Cert_fault { epoch = 0; fault = Faults.Drop };
      Faults.Cert_fault { epoch = 1; fault = Faults.Delay 2 };
      Faults.Cert_fault { epoch = 4; fault = Faults.Duplicate 3 };
      Faults.Cert_fault { epoch = 5; fault = Faults.Withhold };
      Faults.Reorg { tick = 17; depth = 2 };
      Faults.Clock_skew { tick = 5; millis = 120 };
    ]
  in
  let s = Faults.plan_to_string plan in
  checks "codec text"
    "crash@2:w1,slow@3:w0:x7,drop@0,delay@1:+2,dup@4:x3,withhold@5,reorg@17:d2,skew@5:+120ms"
    s;
  checkb "roundtrip" true (ok (Faults.plan_of_string s) = plan);
  checkb "empty to none" true (String.equal (Faults.plan_to_string []) "none");
  checkb "none to empty" true (ok (Faults.plan_of_string "none") = []);
  checkb "garbage rejected" true
    (Result.is_error (Faults.plan_of_string "explode@3"));
  checkb "bad depth rejected" true
    (Result.is_error (Faults.plan_of_string "reorg@4:d0"));
  checkb "trailing junk rejected" true
    (Result.is_error (Faults.plan_of_string "drop@3zzz"))

let test_storm_deterministic () =
  let a = Faults.storm ~seed:7 ~intensity:60 () in
  checkb "same args same plan" true (Faults.storm ~seed:7 ~intensity:60 () = a);
  checkb "nonempty at 60%" true (a <> []);
  checkb "seed changes plan" true (Faults.storm ~seed:8 ~intensity:60 () <> a);
  checkb "zero intensity empty" true (Faults.storm ~seed:7 ~intensity:0 () = []);
  checkb "storm roundtrips" true
    (ok (Faults.plan_of_string (Faults.plan_to_string a)) = a)

(* ---- a bare MC world with a registered (node-less) sidechain ---- *)

type world = {
  mutable chain : Chain.t;
  mutable mempool : Mempool.t;
  mc_wallet : Wallet.t;
  miner : Hash.t;
  ledger_id : Hash.t;
  config : Sidechain_config.t;
  mutable time : int;
}

let mine w =
  w.time <- w.time + 1;
  let b, _ =
    ok
      (Miner.build_block w.chain ~time:w.time ~miner_addr:w.miner
         ~candidates:(Mempool.txs w.mempool))
  in
  let c, _ = ok (Chain.add_block w.chain b) in
  w.chain <- c;
  w.mempool <- Mempool.remove_included w.mempool b

let mine_n w n =
  for _ = 1 to n do
    mine w
  done

let submit w tx = w.mempool <- Mempool.add w.mempool tx

let make_world seed ~epoch_len ~submit_len =
  let mc_params = { Chain_state.default_params with pow = Pow.trivial } in
  let chain = Chain.create ~params:mc_params ~time:0 () in
  let mc_wallet = Wallet.create ~seed in
  let miner = Wallet.fresh_address mc_wallet in
  let ledger_id = Sidechain_config.derive_ledger_id ~creator:miner ~nonce:1 in
  let w =
    { chain; mempool = Mempool.empty; mc_wallet; miner;
      ledger_id; config = Obj.magic 0; time = 0 }
  in
  mine_n w 5;
  let config =
    ok (Node.config_for ~ledger_id ~start_block:7 ~epoch_len ~submit_len family)
  in
  submit w (Tx.Sc_create config);
  mine w;
  { w with config }

let do_ft w ~receiver ~amt =
  let tx =
    ok
      (Wallet.build_forward_transfer w.mc_wallet (Chain.tip_state w.chain)
         ~ledger_id:w.ledger_id
         ~receiver_metadata:(Sc_tx.ft_metadata ~receiver ~payback:receiver)
         ~amount:amt ~fee:Amount.zero)
  in
  submit w tx

let sc_on_mc w =
  Option.get (Sc_ledger.find (Chain.tip_state w.chain).scs w.ledger_id)

(* A certifier whose binding proof is forged directly (the t_adversarial
   idiom): lets the ledger rules be probed epoch by epoch without
   running a node. *)
let forge_cert w ~epoch ~quality ~bt_list =
  let sched = Epoch.of_config w.config in
  let st = Chain.tip_state w.chain in
  let resolve h =
    if h < 0 then Hash.zero else Option.get (Chain_state.block_hash_at st h)
  in
  let end_prev_epoch = resolve (Epoch.last_height sched ~epoch:(epoch - 1)) in
  let end_epoch = resolve (Epoch.last_height sched ~epoch) in
  let proofdata =
    Proofdata.[ Digest Hash.zero; Field Fp.one; Blob (String.make 512 '\000') ]
  in
  let proof =
    ok
      (Circuits.prove_wcert_binding family ~quality
         ~bt_root:(Backward_transfer.list_root bt_list)
         ~end_prev_epoch ~end_epoch ~proofdata ~s_prev:Fp.zero ~s_last:Fp.one)
  in
  Tx.Certificate
    (Withdrawal_certificate.make ~ledger_id:w.ledger_id ~epoch_id:epoch
       ~quality ~bt_list ~proofdata ~proof)

let try_apply w tx =
  let st = Chain.tip_state w.chain in
  Chain_state.apply_tx st ~height:(st.height + 1) ~block_hash:Hash.zero tx

(* ---- the certificate-gap regression ---- *)

(* With epoch_len 2 / submit_len 5 the windows overlap: epoch 0 is
   submittable at heights 9..13, epoch 1 at 11..15. Pre-fix, the
   ledger accepted epoch 1 while epoch 0 was uncertified — after which
   [Epoch.ceased_at] keeps waiting for epoch 1 (= last_certified + 1)
   whose window had closed, stranding the sidechain: never ceased,
   never able to certify the gap. *)
let test_certificate_gap_rejected () =
  let w = make_world "gap" ~epoch_len:2 ~submit_len:5 in
  mine_n w 5 (* height 11: windows for epochs 0 and 1 both open *);
  let cert0 = forge_cert w ~epoch:0 ~quality:1 ~bt_list:[] in
  let cert1 = forge_cert w ~epoch:1 ~quality:1 ~bt_list:[] in
  (* epoch 1 before epoch 0: must be refused as out of order *)
  let e = err (try_apply w cert1) in
  checkb "out-of-order message" true
    (String.length e >= 4 && String.sub e 0 4 = "cert");
  (* in order: both accepted *)
  submit w cert0;
  mine w;
  checki "epoch 0 accepted" 1 (List.length (sc_on_mc w).certs);
  submit w cert1;
  mine w;
  let sc = sc_on_mc w in
  checki "epoch 1 accepted after 0" 2 (List.length sc.certs);
  checkb "not ceased" false
    (Sc_ledger.is_ceased (Chain.tip_state w.chain).scs w.ledger_id
       ~height:(Chain.tip_state w.chain).height)

(* A certificate landing exactly at window_end is accepted; one block
   later the sidechain has ceased and the same certificate is refused. *)
let test_cert_at_window_end () =
  let w = make_world "edge" ~epoch_len:4 ~submit_len:2 in
  (* epoch 0 covers heights 7..10, window 11..12 *)
  mine_n w 5 (* height 11 *);
  let cert0 = forge_cert w ~epoch:0 ~quality:1 ~bt_list:[] in
  (* applying at height 12 == window_end: accepted *)
  checkb "accepted at window end" true (Result.is_ok (try_apply w cert0));
  (* one more block: applying at height 13 — ceased *)
  mine w;
  let e = err (try_apply w cert0) in
  checks "ceased at window end + 1" "cert: sidechain has ceased" e;
  checkb "ledger agrees it ceased" true
    (Sc_ledger.is_ceased (Chain.tip_state w.chain).scs w.ledger_id
       ~height:((Chain.tip_state w.chain).height + 1))

(* Quality replacement must restore the replaced certificate's
   withdrawn amount before debiting the new one (the sc_ledger restore
   path): balance 50k, cert A withdraws 30k -> 20k, higher-quality
   cert B withdraws 10k -> back to 40k, not 20k - 10k. *)
let test_quality_replacement_restores_amount () =
  (* submit_len 3: window 11..13, room for the replacement at 13 *)
  let w = make_world "restore" ~epoch_len:4 ~submit_len:3 in
  let user = Hash.of_string "restore.user" in
  do_ft w ~receiver:user ~amt:(amount 50_000);
  mine_n w 5 (* FT at height 7; height 11: epoch 0 window open *);
  checki "funded" 50_000 (Amount.to_int (sc_on_mc w).balance);
  let bt amt = [ Backward_transfer.make ~receiver_addr:user ~amount:amt ] in
  let cert_a = forge_cert w ~epoch:0 ~quality:1 ~bt_list:(bt (amount 30_000)) in
  let cert_b = forge_cert w ~epoch:0 ~quality:2 ~bt_list:(bt (amount 10_000)) in
  submit w cert_a;
  mine w;
  checki "debited by A" 20_000 (Amount.to_int (sc_on_mc w).balance);
  submit w cert_b;
  mine w;
  let sc = sc_on_mc w in
  checki "one cert for epoch 0" 1 (List.length sc.certs);
  checki "B won" 2 (List.hd sc.certs).cert.quality;
  checki "A's amount restored before B's debit" 40_000
    (Amount.to_int sc.balance)

(* ---- the reorg-mempool regression ---- *)

let test_reorg_reinjects_mempool () =
  let h = Harness.create ~seed:"faults.reorg" () in
  Harness.fund h ~blocks:10;
  let receiver = Hash.of_string "faults.receiver" in
  let tx =
    ok
      (Wallet.build_transfer h.mc_wallet (Chain.tip_state h.chain)
         ~outputs:[ Tx.Coin { Tx.addr = receiver; amount = amount 1234 } ]
         ~fee:(amount 10))
  in
  let id = Tx.txid tx in
  Harness.submit h tx;
  Harness.mine h;
  let paid () =
    List.length
      (Utxo_set.coins_of_addr (Chain.tip_state h.chain).utxos receiver)
  in
  checkb "tx mined" false (Mempool.mem h.mempool id);
  checki "paid" 1 (paid ());
  (* an adversarial branch abandons the block carrying the transfer *)
  Harness.force_reorg h ~depth:1;
  checki "payment reorged away" 0 (paid ());
  checkb "tx back in mempool" true (Mempool.mem h.mempool id);
  (* the next block re-mines it *)
  Harness.mine h;
  checkb "re-mined" false (Mempool.mem h.mempool id);
  checki "paid again" 1 (paid ())

let test_reinject_skips_reincluded () =
  (* transactions the new branch already carries must not reappear *)
  let header =
    { Block.prev = Hash.zero; height = 1; time = 0; nonce = 0;
      tx_root = Hash.zero; sc_txs_commitment = Hash.zero;
      cert_aggregate = Hash.zero }
  in
  let b_with tx = { Block.header; txs = [ tx ]; aggregate = None } in
  let tx =
    Tx.Coinbase { height = 1; reward = { Tx.addr = Hash.zero; amount = amount 1 } }
  in
  (* coinbases never come back *)
  let m =
    Mempool.reinject_disconnected Mempool.empty ~disconnected:[ b_with tx ]
      ~connected:[]
  in
  checki "coinbase not reinjected" 0 (Mempool.size m)

(* ---- prover-pool worker faults ---- *)

let pool_steps n tag =
  List.init n (fun i ->
      Sc_tx.Insert
        (Utxo.make
           ~addr:(Hash.of_string ("t-faults." ^ tag))
           ~amount:(amount (i + 1))
           ~nonce:(Hash.of_string (Printf.sprintf "tf-%s-%d" tag i))))

let test_prover_crash_retry () =
  let st = Sc_state.create params in
  let steps = pool_steps 12 "crash" in
  let clean, cstats =
    ok (Prover_pool.prove_epoch family ~initial:st ~steps ~workers:4 ~seed:9)
  in
  let faulted, fstats =
    ok
      (Prover_pool.prove_epoch
         ~faults:[ (2, Prover_pool.Crash) ]
         family ~initial:st ~steps ~workers:4 ~seed:9)
  in
  checki "clean run no retries" 0 cstats.Prover_pool.retries;
  checkb "crash forces retries" true (fstats.Prover_pool.retries > 0);
  checki "crashed worker earns nothing" 0
    (List.assoc 2 fstats.Prover_pool.rewards);
  checkb "rewards credit survivors only" true
    (List.for_all
       (fun tp -> tp.Prover_pool.worker <> 2)
       faulted);
  (* proof bytes are unaffected by the crash — only scheduling moved *)
  checkb "task proofs byte-identical" true
    (List.for_all2
       (fun a b ->
         String.equal
           (Zen_snark.Backend.proof_encode a.Prover_pool.proof)
           (Zen_snark.Backend.proof_encode b.Prover_pool.proof))
       clean faulted);
  (* ... and so is the folded epoch proof the certificate would carry *)
  let rsys =
    Zen_snark.Recursive.create ~name:"t-faults"
      ~base_vks:(Circuits.base_vks family)
  in
  let final proofs =
    Zen_snark.Backend.proof_encode
      (Zen_snark.Recursive.final_proof
         (ok (Prover_pool.merge_all family rsys proofs)))
  in
  checkb "epoch proof byte-identical" true
    (String.equal (final clean) (final faulted));
  (* replay: the same (seed, faults) reproduces the same schedule *)
  let again, astats =
    ok
      (Prover_pool.prove_epoch
         ~faults:[ (2, Prover_pool.Crash) ]
         family ~initial:st ~steps ~workers:4 ~seed:9)
  in
  checki "same retries on replay" fstats.Prover_pool.retries
    astats.Prover_pool.retries;
  checkb "same workers on replay" true
    (List.for_all2
       (fun a b -> a.Prover_pool.worker = b.Prover_pool.worker)
       faulted again)

let test_prover_crash_exhaustion () =
  let st = Sc_state.create params in
  let steps = pool_steps 4 "dead" in
  checkb "all workers crashed" true
    (Result.is_error
       (Prover_pool.prove_epoch
          ~faults:[ (0, Prover_pool.Crash); (1, Prover_pool.Crash) ]
          family ~initial:st ~steps ~workers:2 ~seed:9));
  (* budget 1 leaves no room to re-dispatch away from a crash *)
  checkb "attempt budget exhausted" true
    (Result.is_error
       (Prover_pool.prove_epoch
          ~faults:[ (0, Prover_pool.Crash) ]
          ~attempt_budget:1 family ~initial:st ~steps ~workers:2 ~seed:9));
  (* a slow worker changes nothing but timing *)
  let slowed, sstats =
    ok
      (Prover_pool.prove_epoch
         ~faults:[ (1, Prover_pool.Slow 9) ]
         family ~initial:st ~steps ~workers:2 ~seed:9)
  in
  let clean, _ =
    ok (Prover_pool.prove_epoch family ~initial:st ~steps ~workers:2 ~seed:9)
  in
  checki "slow run no retries" 0 sstats.Prover_pool.retries;
  checkb "slow proofs identical" true
    (List.for_all2
       (fun a b ->
         String.equal
           (Zen_snark.Backend.proof_encode a.Prover_pool.proof)
           (Zen_snark.Backend.proof_encode b.Prover_pool.proof))
       clean slowed)

(* ---- full-run replay determinism ---- *)

let chaos_run () =
  let plan =
    Faults.storm ~seed:11 ~first_tick:8 ~ticks:12 ~epochs:4 ~workers:4
      ~intensity:40 ()
  in
  let faults = Faults.create ~seed:11 plan in
  let h = Harness.create ~faults ~seed:"faults.chaos" () in
  Harness.fund h ~blocks:5;
  let sc =
    ok
      (Harness.add_latus h ~name:"sc" ~family ~epoch_len:2 ~submit_len:5
         ~activation_delay:1 ())
  in
  Harness.tick_n h 12;
  let certified =
    match Sc_ledger.find (Chain.tip_state h.chain).scs sc.ledger_id with
    | None -> 0
    | Some s -> List.length s.certs
  in
  Zen_obs.Clock.reset ();
  (Harness.dump_log h, certified, Faults.injected faults, Chain.height h.chain)

let test_chaos_replay_identical () =
  let log1, certified1, injected1, height1 = chaos_run () in
  let log2, certified2, injected2, height2 = chaos_run () in
  checkb "fault plan fired" true (injected1 > 0);
  checkb "liveness under faults" true (certified1 > 0);
  checki "same certified" certified1 certified2;
  checki "same injections" injected1 injected2;
  checki "same height" height1 height2;
  checki "same log length" (List.length log1) (List.length log2);
  List.iter2 (fun a b -> checks "log line" a b) log1 log2

let suite =
  ( "faults",
    [
      Alcotest.test_case "plan codec" `Quick test_plan_codec;
      Alcotest.test_case "storm deterministic" `Quick test_storm_deterministic;
      Alcotest.test_case "certificate gap rejected" `Quick
        test_certificate_gap_rejected;
      Alcotest.test_case "cert at window end" `Quick test_cert_at_window_end;
      Alcotest.test_case "quality replacement restores amount" `Quick
        test_quality_replacement_restores_amount;
      Alcotest.test_case "reorg reinjects mempool" `Quick
        test_reorg_reinjects_mempool;
      Alcotest.test_case "reinject skips coinbase" `Quick
        test_reinject_skips_reincluded;
      Alcotest.test_case "prover crash retry" `Quick test_prover_crash_retry;
      Alcotest.test_case "prover crash exhaustion" `Quick
        test_prover_crash_exhaustion;
      Alcotest.test_case "chaos replay identical" `Quick
        test_chaos_replay_identical;
    ] )
