(* Cross-cutting protocol invariants as property tests: value
   conservation, step decomposition, delta consistency, chain supply,
   commitment completeness. *)

open Zen_crypto
open Zen_latus
open Zendoo

let amount n = Amount.of_int_exn n
let params = Params.default

let prop ?(count = 15) ?print name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ?print gen f)

(* Generator: a random but well-formed workload over two wallets,
   described abstractly and interpreted against a state. *)
type action =
  | Do_ft of int * int (* user, amount *)
  | Do_pay of int * int * int (* from, to, amount *)
  | Do_bt of int (* user spends their first coin *)

let gen_action =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun u a -> Do_ft (u, 1 + a)) (int_bound 1) (int_bound 10_000);
        map3
          (fun f t a -> Do_pay (f, t, 1 + a))
          (int_bound 1) (int_bound 1) (int_bound 5_000);
        map (fun u -> Do_bt u) (int_bound 1);
      ])

let gen_workload = QCheck2.Gen.(list_size (int_range 1 12) gen_action)

let show_action = function
  | Do_ft (u, a) -> Printf.sprintf "FT(%d,%d)" u a
  | Do_pay (f, t, a) -> Printf.sprintf "PAY(%d,%d,%d)" f t a
  | Do_bt u -> Printf.sprintf "BT(%d)" u

let show_workload ws = String.concat " " (List.map show_action ws)

type interp = {
  state : Sc_state.t;
  ft_in : int;
      (* total forward-transfer value entering the system — including
         rejected FTs, whose coins were destroyed on the MC and leave
         again through bounce backward transfers *)
  bt_out : int; (* total value moved into backward transfers *)
}

let interpret wallets actions =
  let addrs = Array.map (fun w -> List.hd (Sc_wallet.addresses w)) wallets in
  let counter = ref 0 in
  List.fold_left
    (fun acc action ->
      incr counter;
      match action with
      | Do_ft (u, a) -> (
        let ft =
          Forward_transfer.make ~ledger_id:Hash.zero
            ~receiver_metadata:
              (Sc_tx.ft_metadata ~receiver:addrs.(u) ~payback:addrs.(u))
            ~amount:(amount a)
        in
        let bounced =
          match Sc_tx.ft_outcome acc.state ft with
          | Sc_tx.Ft_accepted _ -> 0
          | Sc_tx.Ft_rejected _ -> a
        in
        match
          Sc_tx.apply acc.state
            (Sc_tx.Forward_transfers_tx { mcid = Hash.zero; fts = [ ft ] })
        with
        | Ok state ->
          { state; ft_in = acc.ft_in + a; bt_out = acc.bt_out + bounced }
        | Error _ -> acc)
      | Do_pay (f, t, a) -> (
        match
          Sc_wallet.build_payment wallets.(f) acc.state ~to_:addrs.(t)
            ~amount:(amount a)
        with
        | Error _ -> acc
        | Ok tx -> (
          match Sc_tx.apply acc.state tx with
          | Ok state -> { acc with state }
          | Error _ -> acc))
      | Do_bt u -> (
        match Sc_wallet.utxos wallets.(u) acc.state with
        | [] -> acc
        | coin :: _ -> (
          match
            Sc_wallet.build_backward_transfer wallets.(u) acc.state ~utxo:coin
              ~mc_receiver:addrs.(u)
          with
          | Error _ -> acc
          | Ok tx -> (
            match Sc_tx.apply acc.state tx with
            | Ok state ->
              { acc with state; bt_out = acc.bt_out + Amount.to_int coin.Utxo.amount }
            | Error _ -> acc))))
    {
      state = Sc_state.create params;
      ft_in = 0;
      bt_out = 0;
    }
    actions

let fresh_wallets seed =
  Array.init 2 (fun i ->
      let w = Sc_wallet.create ~seed:(Printf.sprintf "%s.%d" seed i) in
      let (_ : Hash.t) = Sc_wallet.fresh_address w in
      w)

let seed_counter = ref 0

let props =
  [
    prop "value conservation: mst = ft_in - bt_out" ~print:show_workload
      gen_workload
      (fun actions ->
        incr seed_counter;
        let wallets = fresh_wallets (Printf.sprintf "cons%d" !seed_counter) in
        let r = interpret wallets actions in
        (* The MST holds exactly what came in minus what left as
           backward transfers (bounce-BTs of rejected FTs included),
           and the recorded BT list accounts for every departed coin. *)
        let bt_list_total =
          List.fold_left
            (fun acc (bt : Backward_transfer.t) -> acc + Amount.to_int bt.amount)
            0 (Sc_state.backward_transfers r.state)
        in
        Amount.to_int (Mst.total_value r.state.Sc_state.mst)
        = r.ft_in - r.bt_out
        && bt_list_total = r.bt_out);
    prop "bt accumulator replays the bt list" gen_workload (fun actions ->
        incr seed_counter;
        let wallets = fresh_wallets (Printf.sprintf "acc%d" !seed_counter) in
        let r = interpret wallets actions in
        let replayed =
          List.fold_left Sc_state.bt_acc_step Fp.zero
            (Sc_state.backward_transfers r.state)
        in
        Fp.equal replayed r.state.Sc_state.bt_acc);
    prop "apply equals folding its own steps" gen_workload (fun actions ->
        incr seed_counter;
        let wallets = fresh_wallets (Printf.sprintf "steps%d" !seed_counter) in
        (* Interpret while checking each applied tx both ways. *)
        let addrs = Array.map (fun w -> List.hd (Sc_wallet.addresses w)) wallets in
        let check_tx state tx =
          match Sc_tx.steps state tx with
          | Error _ -> true
          | Ok steps ->
            let via_steps =
              List.fold_left
                (fun acc s -> Result.bind acc (fun st -> Sc_tx.apply_step st s))
                (Ok state) steps
            in
            (match (Sc_tx.apply state tx, via_steps) with
            | Ok a, Ok b -> Fp.equal (Sc_state.hash a) (Sc_state.hash b)
            | Error _, Error _ -> true
            | _ -> false)
        in
        let state = ref (Sc_state.create params) in
        List.for_all
          (fun action ->
            match action with
            | Do_ft (u, a) ->
              let ft =
                Forward_transfer.make ~ledger_id:Hash.zero
                  ~receiver_metadata:
                    (Sc_tx.ft_metadata ~receiver:addrs.(u) ~payback:addrs.(u))
                  ~amount:(amount a)
              in
              let tx = Sc_tx.Forward_transfers_tx { mcid = Hash.zero; fts = [ ft ] } in
              let okay = check_tx !state tx in
              (match Sc_tx.apply !state tx with
              | Ok st -> state := st
              | Error _ -> ());
              okay
            | Do_pay (f, t, a) -> (
              match
                Sc_wallet.build_payment wallets.(f) !state ~to_:addrs.(t)
                  ~amount:(amount a)
              with
              | Error _ -> true
              | Ok tx ->
                let okay = check_tx !state tx in
                (match Sc_tx.apply !state tx with
                | Ok st -> state := st
                | Error _ -> ());
                okay)
            | Do_bt u -> (
              match Sc_wallet.utxos wallets.(u) !state with
              | [] -> true
              | coin :: _ -> (
                match
                  Sc_wallet.build_backward_transfer wallets.(u) !state
                    ~utxo:coin ~mc_receiver:addrs.(u)
                with
                | Error _ -> true
                | Ok tx ->
                  let okay = check_tx !state tx in
                  (match Sc_tx.apply !state tx with
                  | Ok st -> state := st
                  | Error _ -> ());
                  okay)))
          actions);
    prop "mst delta marks exactly the touched slots" gen_workload
      (fun actions ->
        incr seed_counter;
        let wallets = fresh_wallets (Printf.sprintf "delta%d" !seed_counter) in
        let r = interpret wallets actions in
        let delta = Mst.delta_bits r.state.Sc_state.mst in
        let touched = Mst.modified_since_snapshot r.state.Sc_state.mst in
        List.for_all (Mst.delta_bit delta) touched
        &&
        (* and no other bit is set *)
        let set_bits = ref 0 in
        Bytes.iter
          (fun c ->
            let rec popcount n = if n = 0 then 0 else (n land 1) + popcount (n lsr 1) in
            set_bits := !set_bits + popcount (Char.code c))
          delta;
        !set_bits = List.length touched);
    prop "interpretation is deterministic" gen_workload (fun actions ->
        incr seed_counter;
        let seed = Printf.sprintf "det%d" !seed_counter in
        let r1 = interpret (fresh_wallets seed) actions in
        let r2 = interpret (fresh_wallets seed) actions in
        Fp.equal (Sc_state.hash r1.state) (Sc_state.hash r2.state));
  ]

let suite = ("protocol-props", props)
