(* The million-user-soak layer: batched state updates must be
   observationally identical to the per-key paths they replace
   (Smt.update_batch, Mst.apply_ops, Sc_tx.apply_steps,
   Utxo_set.apply_batch and the per-address coin index), checkpoints
   must behave like replay, the workload engine must be a pure function
   of (seed, profile) whatever the batching/snapshot switches, and the
   ported Sc_mempool must fix the O(n²) admission and reorg
   double-queue bugs. *)

open Zen_crypto
open Zen_mainchain
open Zen_latus
open Zendoo

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let ok = function Ok v -> v | Error e -> Alcotest.fail e
let amount n = Amount.of_int_exn n

let prop ?(count = 30) ?print name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ?print gen f)

(* ---- Smt.update_batch ≡ fold of set/remove ---- *)

let smt_depth = 6

let gen_smt_updates =
  QCheck2.Gen.(
    list_size (int_range 0 48)
      (pair (int_bound ((1 lsl smt_depth) - 1))
         (map (Option.map (fun v -> v + 1)) (option (int_bound 1000)))))

let show_smt_updates ups =
  String.concat ";"
    (List.map
       (fun (p, v) ->
         match v with
         | Some v -> Printf.sprintf "%d<-%d" p v
         | None -> Printf.sprintf "%d<-_" p)
       ups)

let smt_batch_equiv =
  prop ~count:60 ~print:show_smt_updates "update_batch ≡ set/remove fold"
    gen_smt_updates (fun ups ->
      (* start from a non-empty tree so removals have targets *)
      let t0 =
        List.fold_left
          (fun t i -> Smt.set t (7 * i mod 64) (Fp.of_int (i + 1)))
          (Smt.create ~depth:smt_depth)
          (List.init 10 Fun.id)
      in
      let ups = List.map (fun (p, v) -> (p, Option.map Fp.of_int v)) ups in
      let seq =
        List.fold_left
          (fun t (p, v) ->
            match v with Some x -> Smt.set t p x | None -> Smt.remove t p)
          t0 ups
      in
      let batch = ok (Smt.update_batch t0 ups) in
      Fp.equal (Smt.root seq) (Smt.root batch)
      && Smt.occupied seq = Smt.occupied batch)

let smt_batch_bounds () =
  let t = Smt.create ~depth:4 in
  (match Smt.update_batch t [ (16, Some Fp.one) ] with
  | Error e -> checks "out of range" "smt: position out of range" e
  | Ok _ -> Alcotest.fail "expected out-of-range error");
  match Smt.update_batch t [ (-1, None) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected out-of-range error"

(* ---- Mst.apply_ops ≡ sequential insert/remove ---- *)

let wl_params =
  let p = { Params.default with mst_depth = 8 } in
  match Params.validate p with Ok () -> p | Error e -> failwith e

let mk_utxo i =
  Utxo.make
    ~addr:(Hash.of_string (Printf.sprintf "wl.addr.%d" (i mod 4)))
    ~amount:(amount ((i mod 9) + 1))
    ~nonce:(Hash.of_string (Printf.sprintf "wl.nonce.%d" i))

let gen_mst_ops =
  (* indices into a small utxo universe: collisions in slots, repeated
     inserts and removes of the same utxo all arise naturally *)
  QCheck2.Gen.(
    list_size (int_range 0 24) (pair bool (int_bound 15)))

let show_mst_ops ops =
  String.concat ";"
    (List.map
       (fun (ins, i) -> Printf.sprintf "%s%d" (if ins then "+" else "-") i)
       ops)

let mst_ops_equiv =
  prop ~count:60 ~print:show_mst_ops "apply_ops ≡ insert/remove fold"
    gen_mst_ops (fun ops ->
      let t0 = Mst.create wl_params in
      let ops =
        List.map
          (fun (ins, i) ->
            let u = mk_utxo i in
            if ins then Mst.Op_insert u else Mst.Op_remove u)
          ops
      in
      let seq =
        List.fold_left
          (fun acc op ->
            Result.bind acc (fun t ->
                match op with
                | Mst.Op_insert u -> Result.map fst (Mst.insert t u)
                | Mst.Op_remove u -> Result.map fst (Mst.remove t u)))
          (Ok t0) ops
      in
      match (seq, Mst.apply_ops t0 ops) with
      | Error a, Error b -> String.equal a b
      | Ok a, Ok b ->
        Fp.equal (Mst.root a) (Mst.root b)
        && Mst.occupied a = Mst.occupied b
        && List.equal
             (fun (i, _) (j, _) -> i = j)
             (Mst.all_utxos a) (Mst.all_utxos b)
      | _ -> false)

(* ---- Sc_tx.apply_steps batched ≡ sequential ---- *)

let gen_steps =
  QCheck2.Gen.(list_size (int_range 0 20) (pair (int_bound 2) (int_bound 15)))

let show_steps steps =
  String.concat ";"
    (List.map (fun (k, i) -> Printf.sprintf "%d:%d" k i) steps)

let apply_steps_equiv =
  prop ~count:60 ~print:show_steps "apply_steps batched ≡ sequential"
    gen_steps (fun steps ->
      let st0 = Sc_state.create wl_params in
      let steps =
        List.map
          (fun (k, i) ->
            match k with
            | 0 -> Sc_tx.Insert (mk_utxo i)
            | 1 -> Sc_tx.Remove (mk_utxo i)
            | _ ->
              Sc_tx.Append_bt
                (Backward_transfer.make
                   ~receiver_addr:(Hash.of_string (string_of_int i))
                   ~amount:(amount (i + 1))))
          steps
      in
      match
        ( Sc_tx.apply_steps ~batched:false st0 steps,
          Sc_tx.apply_steps ~batched:true st0 steps )
      with
      | Error a, Error b -> String.equal a b
      | Ok a, Ok b ->
        Fp.equal (Sc_state.hash a) (Sc_state.hash b)
        && Sc_state.bt_count a = Sc_state.bt_count b
      | _ -> false)

(* ---- Sc_state checkpoints ---- *)

let checkpoint_restores () =
  let st0 = Sc_state.create wl_params in
  let st1 =
    ok
      (Sc_tx.apply_steps st0
         (List.init 6 (fun i -> Sc_tx.Insert (mk_utxo i))))
  in
  let cp = Sc_state.checkpoint st1 in
  let st2 =
    ok
      (Sc_tx.apply_steps st1
         [
           Sc_tx.Remove (mk_utxo 0);
           Sc_tx.Insert (mk_utxo 9);
           Sc_tx.Append_bt
             (Backward_transfer.make ~receiver_addr:Hash.zero
                ~amount:(amount 1));
         ])
  in
  checkb "state moved" false
    (Fp.equal (Sc_state.hash st1) (Sc_state.hash st2));
  let back = Sc_state.restore cp in
  checkb "restored ≡ original" true
    (Fp.equal (Sc_state.hash st1) (Sc_state.hash back));
  checki "bts restored" (Sc_state.bt_count st1) (Sc_state.bt_count back)

(* ---- Utxo_set: per-address index ≡ naive scan ---- *)

let addr_of i = Hash.of_string (Printf.sprintf "us.addr.%d" (i mod 3))
let op_of i = { Tx.txid = Hash.of_string (string_of_int (i mod 8)); vout = 0 }

let gen_us_ops =
  (* (outpoint, Some (addr, amount) | None): a small outpoint space and
     3 addresses force overwrites that move a coin between buckets *)
  QCheck2.Gen.(
    list_size (int_range 0 30)
      (pair (int_bound 7) (option (pair (int_bound 5) (int_bound 100)))))

let show_us_ops ops =
  String.concat ";"
    (List.map
       (fun (o, c) ->
         match c with
         | Some (a, v) -> Printf.sprintf "%d<-a%dv%d" o a v
         | None -> Printf.sprintf "%d<-_" o)
       ops)

let us_index_equiv =
  prop ~count:60 ~print:show_us_ops "coins_of_addr ≡ naive fold scan"
    gen_us_ops (fun ops ->
      let changes =
        List.map
          (fun (o, c) ->
            ( op_of o,
              Option.map
                (fun (a, v) ->
                  {
                    Utxo_set.addr = addr_of a;
                    amount = amount (v + 1);
                    spendable_after = 0;
                  })
                c ))
          ops
      in
      let seq =
        List.fold_left
          (fun t (o, c) ->
            match c with
            | Some coin -> Utxo_set.add t o coin
            | None -> Utxo_set.remove t o)
          Utxo_set.empty changes
      in
      let batch = Utxo_set.apply_batch Utxo_set.empty changes in
      let naive t addr =
        Utxo_set.fold t ~init: []
          ~f:(fun acc op (coin : Utxo_set.coin) ->
            if Hash.equal coin.addr addr then (op, coin) :: acc else acc)
        |> List.rev
        |> List.sort (fun (a, _) (b, _) ->
               String.compare (Tx.outpoint_encode b) (Tx.outpoint_encode a))
      in
      let same_coins t =
        List.for_all
          (fun a ->
            let addr = addr_of a in
            List.equal
              (fun (o1, (c1 : Utxo_set.coin)) (o2, (c2 : Utxo_set.coin)) ->
                Tx.outpoint_equal o1 o2
                && Hash.equal c1.addr c2.addr
                && Amount.to_int c1.amount = Amount.to_int c2.amount)
              (Utxo_set.coins_of_addr t addr)
              (naive t addr))
          [ 0; 1; 2 ]
      in
      Utxo_set.cardinal seq = Utxo_set.cardinal batch
      && same_coins seq && same_coins batch)

(* ---- Sc_mempool: the bugs it fixes ---- *)

(* Distinct txids are all the pool tests need. *)
let mk_bt i =
  Sc_tx.Forward_transfers_tx
    { mcid = Hash.of_string (Printf.sprintf "pool.%d" i); fts = [] }

let mempool_dedups () =
  let tx = mk_bt 1 in
  let m = Sc_mempool.add (Sc_mempool.add Sc_mempool.empty tx) tx in
  checki "duplicate submit pools once" 1 (Sc_mempool.size m);
  checkb "member" true (Sc_mempool.mem m (Sc_tx.txid tx))

let mempool_fifo_and_reinject () =
  let a = mk_bt 1 and b = mk_bt 2 and c = mk_bt 3 in
  let m = List.fold_left Sc_mempool.add Sc_mempool.empty [ a; b; c ] in
  checkb "fifo order" true
    (List.map Sc_tx.txid (Sc_mempool.txs m)
    = List.map Sc_tx.txid [ a; b; c ]);
  let m = Sc_mempool.remove_included m [ a; c ] in
  checki "included removed" 1 (Sc_mempool.size m);
  (* a reorg recovers [a; c; a]: the duplicate a and the still-pooled b
     must not double-queue, and recovered txs go to the front *)
  let m = Sc_mempool.reinject_front m [ a; c; a; b ] in
  checki "no double-queue" 3 (Sc_mempool.size m);
  checkb "recovered re-forge first" true
    (List.map Sc_tx.txid (Sc_mempool.txs m)
    = List.map Sc_tx.txid [ a; c; b ])

(* ---- the workload engine ---- *)

let tiny =
  {
    Zen_sim.Workload.smoke with
    name = "tiny";
    users = 200;
    txs_per_epoch = 120;
    epochs = 2;
    phases = 4;
    mst_depth = 8;
    seed_coins = 30;
    reorg_every = 2;
  }

let run_wl ?batched ?snapshots () =
  let buf = Buffer.create 256 in
  let s =
    ok
      (Zen_sim.Workload.run ?batched ?snapshots
         ~log:(fun l ->
           Buffer.add_string buf l;
           Buffer.add_char buf '\n')
         ~seed:11 tiny)
  in
  (s, Buffer.contents buf)

let workload_deterministic () =
  let a, la = run_wl () in
  let b, lb = run_wl () in
  checkb "replay digest" true (Hash.equal a.Zen_sim.Workload.digest b.digest);
  checks "replay log" la lb;
  checkb "work happened" true (a.applied > 50);
  checkb "reorgs happened" true (a.rollbacks > 0)

let workload_mode_independent () =
  let a, la = run_wl () in
  let nb, lnb = run_wl ~batched:false () in
  let ns, lns = run_wl ~snapshots:false () in
  checks "per-key log identical" la lnb;
  checks "replay-rollback log identical" la lns;
  checkb "per-key digest" true
    (Hash.equal a.Zen_sim.Workload.digest nb.digest);
  checkb "replay-rollback digest" true (Hash.equal a.digest ns.digest);
  checkb "snapshots avoid replay work" true
    (ns.replayed_phases > a.replayed_phases)

let workload_profile_roundtrip () =
  List.iter
    (fun p ->
      let s = Zen_sim.Workload.to_string p in
      let p' = ok (Zen_sim.Workload.of_string s) in
      checks "builtin name survives" p.Zen_sim.Workload.name p'.name;
      checks "builtin string survives" s (Zen_sim.Workload.to_string p'))
    Zen_sim.Workload.builtins;
  (* a non-builtin round-trips through the custom syntax *)
  let s = Zen_sim.Workload.to_string tiny in
  let tiny' = ok (Zen_sim.Workload.of_string s) in
  checks "custom string survives" s (Zen_sim.Workload.to_string tiny');
  checki "custom fields survive" tiny.txs_per_epoch tiny'.txs_per_epoch;
  let custom = ok (Zen_sim.Workload.of_string "u9:z50:t9:e1:p2:b10:m25-25-25-25:d6:s3:r0") in
  checki "custom users" 9 custom.users;
  checki "custom bt share" 25 custom.mix.bt;
  match Zen_sim.Workload.of_string "u9:nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error"

(* ---- the harness driver ---- *)

let harness_log ~seed ~profile ~ticks =
  let pool = Pool.sequential in
  let h = Zen_sim.Harness.create ~pool ~seed () in
  Zen_sim.Harness.fund h ~blocks:5;
  let family = Circuits.make Params.default in
  let (_ : Zen_sim.Harness.sidechain) =
    ok
      (Zen_sim.Harness.add_latus h ~name:"sc" ~family ~epoch_len:4
         ~submit_len:2 ~activation_delay:1 ())
  in
  ok (Zen_sim.Harness.set_workload h ~profile ~seed:5);
  Zen_sim.Harness.tick_n h ticks;
  (String.concat "\n" (Zen_sim.Harness.dump_log h),
   Zen_sim.Harness.workload_injected h)

let harness_driver_deterministic () =
  let la, na = harness_log ~seed:"wl.h" ~profile:tiny ~ticks:8 in
  let lb, nb = harness_log ~seed:"wl.h" ~profile:tiny ~ticks:8 in
  checks "harness workload log replays" la lb;
  checki "same injection count" na nb;
  checkb "traffic injected" true (na > 0)

let suite =
  ( "workload",
    [
      smt_batch_equiv;
      Alcotest.test_case "smt batch bounds" `Quick smt_batch_bounds;
      mst_ops_equiv;
      apply_steps_equiv;
      Alcotest.test_case "checkpoint restore" `Quick checkpoint_restores;
      us_index_equiv;
      Alcotest.test_case "mempool dedups" `Quick mempool_dedups;
      Alcotest.test_case "mempool fifo + reinject" `Quick
        mempool_fifo_and_reinject;
      Alcotest.test_case "engine deterministic" `Quick workload_deterministic;
      Alcotest.test_case "engine mode-independent" `Quick
        workload_mode_independent;
      Alcotest.test_case "profile codec" `Quick workload_profile_roundtrip;
      Alcotest.test_case "harness driver deterministic" `Slow
        harness_driver_deterministic;
    ] )
