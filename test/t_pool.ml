(* The Domain worker pool: scheduling edge cases (empty input, one
   domain, more domains than tasks), exception propagation, and the
   load-bearing guarantee — everything built on the pool is
   bit-identical to the sequential path for every domain count. *)

open Zen_crypto
open Zen_latus
open Zendoo

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let ok = function Ok v -> v | Error e -> Alcotest.fail e

let params = Params.default
let family = lazy (Circuits.make params)

let with_domains domains f = Pool.with_pool ~domains f

(* ---- scheduling edge cases ---- *)

let test_empty_input () =
  with_domains 4 @@ fun pool ->
  checki "init_array 0" 0 (Array.length (Pool.init_array pool 0 (fun _ -> assert false)));
  checkb "map_list []" true (Pool.map_list pool (fun x -> x + 1) [] = []);
  Pool.parallel_for pool ~n:0 (fun _ -> assert false)

let test_one_domain_is_sequential () =
  (* domains=1 must never spawn: tasks run on the caller's domain, in
     order, so effects on non-atomic state are safe. *)
  let pool = Pool.create ~domains:1 in
  checki "domains" 1 (Pool.domains pool);
  let trace = ref [] in
  Pool.parallel_for pool ~n:5 (fun i -> trace := i :: !trace);
  checkb "in order on caller" true (!trace = [ 4; 3; 2; 1; 0 ]);
  Pool.shutdown pool;
  checkb "sequential handle reusable after shutdown" true
    (Pool.map_list Pool.sequential string_of_int [ 1; 2 ] = [ "1"; "2" ])

let test_more_domains_than_tasks () =
  with_domains 8 @@ fun pool ->
  let r = Pool.init_array pool ~chunk:1 3 (fun i -> i * i) in
  checkb "3 tasks on 8 domains" true (r = [| 0; 1; 4 |]);
  (* n=1 runs inline even on a wide pool *)
  let r1 = Pool.init_array pool 1 (fun i -> i + 41) in
  checkb "single task" true (r1 = [| 41 |])

let test_exception_propagates () =
  with_domains 4 @@ fun pool ->
  let raised =
    try
      Pool.parallel_for pool ~chunk:1 ~n:16 (fun i ->
          if i mod 5 = 2 then failwith "boom");
      false
    with Failure msg -> String.equal msg "boom"
  in
  checkb "worker exception re-raised in caller" true raised;
  (* the pool survives a failed operation *)
  let r = Pool.map_array pool ~chunk:1 (fun x -> x * 2) [| 1; 2; 3; 4 |] in
  checkb "pool usable after failure" true (r = [| 2; 4; 6; 8 |]);
  (* even Stack_overflow from a body reaches the caller, not a worker
     wrapper — the wrapper's swallow counter must stay untouched *)
  let swallowed () =
    match
      List.find_opt
        (fun c -> String.equal (Zen_obs.Counter.name c) "pool.worker.swallowed")
        (Zen_obs.Counter.all ())
    with
    | Some c -> Zen_obs.Counter.value c
    | None -> 0
  in
  let before = swallowed () in
  let overflow =
    try
      Pool.parallel_for pool ~chunk:1 ~n:8 (fun i ->
          if i = 3 then raise Stack_overflow);
      false
    with Stack_overflow -> true
  in
  checkb "stack overflow re-raised in caller" true overflow;
  checki "no exception swallowed by worker wrappers" before (swallowed ());
  let r = Pool.map_array pool ~chunk:1 (fun x -> x + 1) [| 1; 2 |] in
  checkb "pool usable after overflow" true (r = [| 2; 3 |])

(* ---- the shared registry ---- *)

let test_shared_pool_reuse () =
  (* One persistent pool per domain count: consecutive gets return the
     same spawned pool, and with_pool borrows it instead of spawning. *)
  let p = Pool.get ~domains:3 in
  checki "domains" 3 (Pool.domains p);
  checkb "get is idempotent" true (p == Pool.get ~domains:3);
  checkb "with_pool borrows the registry pool" true
    (Pool.with_pool ~domains:3 (fun q -> q == p));
  checkb "get ~domains:1 is the sequential handle" true
    (Pool.get ~domains:1 == Pool.sequential);
  (* the same pool serves consecutive operations of different shapes *)
  let a = Pool.init_array p 100 (fun i -> i * 3) in
  let b = Pool.map_array p (fun x -> x + 1) a in
  let c = Pool.map_list p string_of_int [ 7; 8; 9 ] in
  checkb "first op" true (a = Array.init 100 (fun i -> i * 3));
  checkb "second op" true (b = Array.init 100 (fun i -> (i * 3) + 1));
  checkb "third op" true (c = [ "7"; "8"; "9" ])

let test_nested_parallel_shared () =
  (* Nested operations on the *same* shared pool must neither deadlock
     nor change results: the inner operation's caller (a worker or the
     outer caller) can always drain its own chunk counter alone. *)
  let p = Pool.get ~domains:4 in
  let outer = 6 and inner = 40 in
  let expected =
    Array.init outer (fun i ->
        Array.init inner (fun j -> (i * 1000) + (j * j)))
  in
  let got = Array.make outer [||] in
  Pool.parallel_for p ~chunk:1 ~n:outer (fun i ->
      got.(i) <- Pool.init_array p ~chunk:4 inner (fun j -> (i * 1000) + (j * j)));
  checkb "nested parallel on the shared pool is correct" true (got = expected)

let test_shutdown_then_reuse () =
  (* Shutting a registry pool down by hand degrades it to caller-only
     execution (correct, just sequential); the registry replaces it on
     the next get. *)
  let p = Pool.get ~domains:4 in
  Pool.shutdown p;
  let r = Pool.map_array p ~chunk:1 (fun x -> x * x) [| 1; 2; 3 |] in
  checkb "shut-down pool still completes operations" true (r = [| 1; 4; 9 |]);
  let p' = Pool.get ~domains:4 in
  checkb "registry replaces a shut-down pool" true (not (p' == p));
  let r' = Pool.init_array p' 64 (fun i -> i + 1) in
  checkb "replacement pool works" true (r' = Array.init 64 (fun i -> i + 1))

(* Chunk batching is scheduling only: for any (n, domains, granularity)
   — explicit chunk size or cost hint, including hints coarse enough to
   force the inline path — the result is bit-identical to Array.init. *)
let prop_chunking_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"batched = sequential bit-identical" ~count:30
       QCheck2.Gen.(
         tup4 (int_range 0 200) (int_range 1 5)
           (oneof
              [
                map (fun c -> `Chunk c) (int_range 1 64);
                map (fun ms -> `Cost (float_of_int ms /. 100.))
                  (int_range 0 400);
              ])
           (int_range 0 1000))
       (fun (n, domains, gran, salt) ->
         let f i = Hash.to_hex (Hash.of_string (Printf.sprintf "%d-%d" salt i)) in
         let expected = Array.init n f in
         let pool = Pool.get ~domains in
         let got =
           match gran with
           | `Chunk c -> Pool.init_array pool ~chunk:c n f
           | `Cost ms -> Pool.init_array pool ~cost:ms n f
         in
         got = expected))

(* ---- determinism of the parallel builders ---- *)

let test_merkle_parallel_identical () =
  let data = List.init 100 (fun i -> Printf.sprintf "block-%d" i) in
  let seq = Merkle.of_data data in
  with_domains 4 @@ fun pool ->
  let par = Merkle.of_data ~pool data in
  checkb "merkle root identical" true
    (Hash.equal (Merkle.root seq) (Merkle.root par))

let test_smt_batch_identical () =
  let bindings = List.init 200 (fun i -> (i * 7, Fp.of_int (i + 1))) in
  let seq = ok (Smt.of_bindings ~depth:12 bindings) in
  with_domains 4 @@ fun pool ->
  let par = ok (Smt.of_bindings ~pool ~depth:12 bindings) in
  let folded =
    List.fold_left (fun t (k, v) -> Smt.set t k v) (Smt.create ~depth:12)
      bindings
  in
  checkb "smt batch = batch on pool" true (Fp.equal (Smt.root seq) (Smt.root par));
  checkb "smt batch = fold of set" true
    (Fp.equal (Smt.root folded) (Smt.root par));
  checkb "smt duplicate position rejected" true
    (Result.is_error (Smt.of_bindings ~depth:12 [ (1, Fp.one); (1, Fp.one) ]))

let test_mst_batch_identical () =
  let utxos =
    List.init 50 (fun i ->
        Utxo.make
          ~addr:(Hash.of_string "pool-test")
          ~amount:(Amount.of_int_exn (i + 1))
          ~nonce:(Hash.of_string (Printf.sprintf "n%d" i)))
  in
  let incremental =
    List.fold_left
      (fun m u -> fst (ok (Mst.insert m u)))
      (Mst.create params) utxos
  in
  with_domains 4 @@ fun pool ->
  let batch = ok (Mst.of_utxos ~pool params utxos) in
  checkb "mst batch = incremental inserts" true
    (Fp.equal (Mst.root incremental) (Mst.root batch))

(* ---- epoch proofs and certificates across domain counts ---- *)

let workload steps seed =
  List.init steps (fun i ->
      Sc_tx.Insert
        (Utxo.make
           ~addr:(Hash.of_string "t-pool")
           ~amount:(Amount.of_int_exn (i + 1))
           ~nonce:(Hash.of_string (Printf.sprintf "t-pool-%d-%d" seed i))))

(* Everything observable from one epoch proven on [domains] domains:
   per-task proof bytes, dispatch rewards, the merged epoch proof, the
   certificate-facing binding proof, and the certificate hash. *)
let epoch_fingerprint ~domains ~steps ~seed =
  let family = Lazy.force family in
  with_domains domains @@ fun pool ->
  let proofs, stats =
    ok
      (Prover_pool.prove_epoch ~pool family
         ~initial:(Sc_state.create params)
         ~steps:(workload steps seed) ~workers:3 ~seed)
  in
  let rsys =
    Zen_snark.Recursive.create ~name:"t-pool"
      ~base_vks:(Circuits.base_vks family)
  in
  let top = ok (Prover_pool.merge_all ~pool family rsys proofs) in
  let bt_root = Backward_transfer.list_root [] in
  let proofdata = Proofdata.[ Digest Hash.zero; Field Fp.one; Blob "" ] in
  let binding =
    ok
      (Circuits.prove_wcert_binding family ~quality:1 ~bt_root
         ~end_prev_epoch:(Hash.of_string "prev")
         ~end_epoch:(Hash.of_string "cur") ~proofdata
         ~s_prev:(Zen_snark.Recursive.s_from top)
         ~s_last:(Zen_snark.Recursive.s_to top))
  in
  let cert =
    Withdrawal_certificate.make ~ledger_id:(Hash.of_string "sc") ~epoch_id:0
      ~quality:1 ~bt_list:[] ~proofdata ~proof:binding
  in
  ( List.map
      (fun tp -> Zen_snark.Backend.proof_encode tp.Prover_pool.proof)
      proofs,
    stats.Prover_pool.rewards,
    Zen_snark.Backend.proof_encode (Zen_snark.Recursive.final_proof top),
    Zen_snark.Backend.proof_encode binding,
    Withdrawal_certificate.hash cert )

let prop_epoch_identical_across_domains =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"epoch proof/certificate identical on 1/2/4 domains"
       ~count:3
       QCheck2.Gen.(pair (int_range 1 6) (int_range 0 1000))
       (fun (steps, seed) ->
         let base, rew, top, bind, cert =
           epoch_fingerprint ~domains:1 ~steps ~seed
         in
         List.for_all
           (fun domains ->
             let base', rew', top', bind', cert' =
               epoch_fingerprint ~domains ~steps ~seed
             in
             base = base' && rew = rew' && String.equal top top'
             && String.equal bind bind' && Hash.equal cert cert')
           [ 2; 4 ]))

let test_fold_balanced_parallel_identical () =
  let family = Lazy.force family in
  let proofs, _ =
    ok
      (Prover_pool.prove_epoch family ~initial:(Sc_state.create params)
         ~steps:(workload 7 5) ~workers:2 ~seed:5)
  in
  let rsys () =
    Zen_snark.Recursive.create ~name:"t-pool-fold"
      ~base_vks:(Circuits.base_vks family)
  in
  let seq = ok (Prover_pool.merge_all family (rsys ()) proofs) in
  with_domains 2 @@ fun pool ->
  let par = ok (Prover_pool.merge_all ~pool family (rsys ()) proofs) in
  checkb "odd-width merge tree identical" true
    (String.equal
       (Zen_snark.Backend.proof_encode (Zen_snark.Recursive.final_proof seq))
       (Zen_snark.Backend.proof_encode (Zen_snark.Recursive.final_proof par)))

let suite =
  ( "pool",
    [
      Alcotest.test_case "empty input" `Quick test_empty_input;
      Alcotest.test_case "one domain is sequential" `Quick
        test_one_domain_is_sequential;
      Alcotest.test_case "more domains than tasks" `Quick
        test_more_domains_than_tasks;
      Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
      Alcotest.test_case "shared pool reuse" `Quick test_shared_pool_reuse;
      Alcotest.test_case "nested parallel on shared pool" `Quick
        test_nested_parallel_shared;
      Alcotest.test_case "shutdown then reuse degrades" `Quick
        test_shutdown_then_reuse;
      prop_chunking_deterministic;
      Alcotest.test_case "merkle parallel identical" `Quick
        test_merkle_parallel_identical;
      Alcotest.test_case "smt batch identical" `Quick test_smt_batch_identical;
      Alcotest.test_case "mst batch identical" `Quick test_mst_batch_identical;
      Alcotest.test_case "odd-width fold identical" `Slow
        test_fold_balanced_parallel_identical;
      prop_epoch_identical_across_domains;
    ] )
