(* Certificate aggregation: the Zen_snark.Aggregate fold itself
   (build/verify/tamper, positional root), the one-proof-per-block
   validation path through the harness, rejection of every tampered
   aggregate shape, and the headline equivalence — aggregated and
   per-certificate validation reach byte-identical decisions and
   event logs. *)

open Zen_crypto
open Zen_mainchain
open Zen_sim
open Zendoo
module Aggregate = Zen_snark.Aggregate
module Backend = Zen_snark.Backend

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let ok = function Ok v -> v | Error e -> Alcotest.fail e

let err = function
  | Error e -> e
  | Ok _ -> Alcotest.fail "expected rejection, got Ok"

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* ---- the fold in isolation (fake leaves, always-true checks) ---- *)

let leaf i =
  {
    Aggregate.sc_id = Hash.of_string (Printf.sprintf "agg-sc-%d" i);
    epoch = i;
    cert_hash = Hash.of_string (Printf.sprintf "agg-cert-%d" i);
    vk_digest = Hash.of_string "agg-vk";
    proof_bytes = Printf.sprintf "proof-%d" i;
    end_prev_epoch = Hash.of_string (Printf.sprintf "agg-prev-%d" i);
    end_epoch = Hash.of_string (Printf.sprintf "agg-end-%d" i);
  }

let leaves n = List.init n leaf
let passing l = List.map (fun lf -> (lf, fun () -> true)) l

let test_build_verify_roundtrip () =
  let sys = Aggregate.shared () in
  List.iter
    (fun n ->
      let agg = ok (Aggregate.build sys (passing (leaves n))) in
      checkb (Printf.sprintf "n=%d verifies" n) true (Aggregate.verify sys agg);
      checki (Printf.sprintf "n=%d count" n) n (Aggregate.count agg);
      let expected =
        Option.get
          (Aggregate.root_of_digests
             (List.map Aggregate.leaf_digest (leaves n)))
      in
      checkb
        (Printf.sprintf "n=%d root matches recomputation" n)
        true
        (Hash.equal (Aggregate.root agg) expected))
    [ 1; 2; 3; 5; 8 ]

let test_build_parallel_bit_identical () =
  let sys = Aggregate.shared () in
  let seq = ok (Aggregate.build sys (passing (leaves 7))) in
  let par =
    ok (Aggregate.build ~pool:(Pool.get ~domains:4) sys (passing (leaves 7)))
  in
  checkb "same digest for every domain count" true
    (Hash.equal (Aggregate.digest seq) (Aggregate.digest par))

let test_build_refuses_failing_leaf () =
  let sys = Aggregate.shared () in
  let pairs =
    List.mapi (fun i lf -> (lf, fun () -> i <> 2)) (leaves 5)
  in
  let e = err (Aggregate.build sys pairs) in
  checkb "names the rejected proof" true
    (contains ~affix:"rejected" e);
  match Aggregate.build sys [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty aggregate accepted"

let test_tamper_rejected () =
  let sys = Aggregate.shared () in
  let agg = ok (Aggregate.build sys (passing (leaves 4))) in
  let decoy = ok (Aggregate.build sys (passing [ leaf 99 ])) in
  let forged ~root ~count ~proof = Aggregate.of_parts ~root ~count ~proof in
  checkb "wrong root" false
    (Aggregate.verify sys
       (forged ~root:(Hash.of_string "evil") ~count:(Aggregate.count agg)
          ~proof:(Aggregate.proof agg)));
  checkb "wrong count" false
    (Aggregate.verify sys
       (forged ~root:(Aggregate.root agg) ~count:5 ~proof:(Aggregate.proof agg)));
  checkb "proof for another statement" false
    (Aggregate.verify sys
       (forged ~root:(Aggregate.root agg) ~count:(Aggregate.count agg)
          ~proof:(Aggregate.proof decoy)));
  checkb "digest covers the proof bytes" false
    (Hash.equal (Aggregate.digest agg) (Aggregate.digest decoy))

let test_root_positional_pairing () =
  let d i = Aggregate.leaf_digest (leaf i) in
  let n = Aggregate.node_hash in
  checkb "singleton is itself" true
    (Hash.equal (Option.get (Aggregate.root_of_digests [ d 0 ])) (d 0));
  checkb "pair" true
    (Hash.equal
       (Option.get (Aggregate.root_of_digests [ d 0; d 1 ]))
       (n (d 0) (d 1)));
  (* the odd element carries up unchanged, as in fold_balanced *)
  checkb "odd carry" true
    (Hash.equal
       (Option.get (Aggregate.root_of_digests [ d 0; d 1; d 2 ]))
       (n (n (d 0) (d 1)) (d 2)));
  checkb "empty is None" true (Aggregate.root_of_digests [] = None)

(* ---- the validation path, end to end ---- *)

let params = Zen_latus.Params.default
let family = Zen_latus.Circuits.make params

let world ~aggregate ?(plan = []) seed =
  Verifier.Cache.clear ();
  let faults =
    match plan with [] -> None | p -> Some (Faults.create ~seed:7 p)
  in
  let h = Harness.create ~aggregate ?faults ~seed () in
  Harness.fund h ~blocks:3;
  (* two sidechains on the same epoch schedule — the second's creation
     tx lands one block later, so its activation delay is one shorter
     to realign the epochs and make blocks carry several certificates
     (the aggregate then folds across sidechains) *)
  let sca =
    ok
      (Harness.add_latus h ~name:"sca" ~family ~epoch_len:3 ~submit_len:3
         ~activation_delay:2 ())
  in
  let scb =
    ok
      (Harness.add_latus h ~name:"scb" ~family ~epoch_len:3 ~submit_len:3
         ~activation_delay:1 ())
  in
  Harness.tick_n h 14;
  (h, sca, scb)

let certified_epochs h (sc : Harness.sidechain) =
  let st = Chain.tip_state h.Harness.chain in
  match Sc_ledger.find st.scs sc.ledger_id with
  | None -> []
  | Some s ->
    List.map
      (fun (c : Sc_ledger.cert_record) ->
        c.Sc_ledger.cert.Withdrawal_certificate.epoch_id)
      s.Sc_ledger.certs

let aggregated_blocks h =
  Chain.best_chain h.Harness.chain
  |> List.filter (fun (b : Block.t) -> b.aggregate <> None)

let test_one_proof_per_block () =
  Chain_state.Aggregate_stats.reset ();
  let h, sca, scb = world ~aggregate:true "agg-one-proof" in
  let aggd = aggregated_blocks h in
  checkb "some blocks carried an aggregate" true (List.length aggd >= 2);
  checkb "multi-certificate blocks were folded" true
    (List.exists
       (fun (b : Block.t) ->
         match b.aggregate with Some a -> Aggregate.count a >= 2 | None -> false)
       aggd);
  checkb "certificates landed" true
    (certified_epochs h sca <> [] && certified_epochs h scb <> []);
  let s = Chain_state.Aggregate_stats.snapshot () in
  checki "exactly one proof decision per aggregated block"
    s.Chain_state.Aggregate_stats.blocks
    s.Chain_state.Aggregate_stats.proof_checks;
  checkb "stats cover the chain's aggregated blocks" true
    (s.Chain_state.Aggregate_stats.blocks >= List.length aggd);
  checkb "settled at least one cert per aggregated block" true
    (s.Chain_state.Aggregate_stats.certs_settled
    >= s.Chain_state.Aggregate_stats.blocks);
  checki "nothing rejected" 0 s.Chain_state.Aggregate_stats.rejected

let test_wire_roundtrip_with_aggregate () =
  let h, _, _ = world ~aggregate:true "agg-wire" in
  match aggregated_blocks h with
  | [] -> Alcotest.fail "no aggregated block to encode"
  | b :: _ ->
    let decoded = ok (Mc_wire.decode_block (Mc_wire.encode_block b)) in
    checkb "hash stable" true (Hash.equal (Block.hash b) (Block.hash decoded));
    (match (b.aggregate, decoded.aggregate) with
    | Some a, Some a' ->
      checkb "aggregate survives the trip" true
        (Hash.equal (Aggregate.digest a) (Aggregate.digest a'))
    | _ -> Alcotest.fail "aggregate lost in the codec");
    checkb "decoded block still validates" true
      (match Chain.state_of h.Harness.chain b.header.prev with
      | None -> false
      | Some parent -> Result.is_ok (Chain_state.apply_block parent decoded))

(* Every tampered-aggregate shape must REJECT the block — never fall
   back to per-certificate validation. *)
let test_tampered_aggregate_rejects_block () =
  let h, _, _ = world ~aggregate:true "agg-tamper" in
  let b =
    match
      List.find_opt
        (fun (b : Block.t) ->
          match b.aggregate with Some a -> Aggregate.count a >= 2 | None -> false)
        (aggregated_blocks h)
    with
    | Some b -> b
    | None -> List.hd (aggregated_blocks h)
  in
  let agg = Option.get b.aggregate in
  let parent = Option.get (Chain.state_of h.Harness.chain b.header.prev) in
  let pow = (Chain.params h.Harness.chain).pow in
  let reassemble aggregate =
    ok
      (Block.assemble ?aggregate ~prev:b.header.prev ~height:b.header.height
         ~time:b.header.time ~txs:b.txs ~pow ())
  in
  let rejects name expected block =
    let e = err (Chain_state.apply_block parent block) in
    checkb
      (Printf.sprintf "%s: %s" name e)
      true
      (contains ~affix:expected e)
  in
  let sys = Aggregate.shared () in
  let decoy = ok (Aggregate.build sys (passing [ leaf 7 ])) in
  (* proof for another statement, consistently committed in the header *)
  rejects "forged proof" "aggregate proof rejected"
    (reassemble
       (Some
          (Aggregate.of_parts ~root:(Aggregate.root agg)
             ~count:(Aggregate.count agg) ~proof:(Aggregate.proof decoy))));
  (* root over the wrong set *)
  rejects "wrong root" "does not cover"
    (reassemble
       (Some
          (Aggregate.of_parts ~root:(Aggregate.root decoy)
             ~count:(Aggregate.count agg) ~proof:(Aggregate.proof decoy))));
  (* count disagrees with the block's certificates *)
  rejects "wrong count" "count mismatch"
    (reassemble
       (Some
          (Aggregate.of_parts ~root:(Aggregate.root agg)
             ~count:(Aggregate.count agg + 1) ~proof:(Aggregate.proof agg))));
  (* header commits, body omits *)
  rejects "stripped body" "missing aggregate"
    { Block.header = b.header; txs = b.txs; aggregate = None };
  (* body carries, header doesn't commit *)
  rejects "uncommitted aggregate" "commitment mismatch"
    (let plain = reassemble None in
     { plain with aggregate = Some agg });
  (* sanity: the untampered block and the honest per-certificate
     fallback (no aggregate at all) both still apply *)
  checkb "original applies" true
    (Result.is_ok (Chain_state.apply_block parent b));
  checkb "per-certificate fallback applies" true
    (Result.is_ok (Chain_state.apply_block parent (reassemble None)))

(* ---- the headline property: byte-identical decisions ---- *)

let equivalence_prop (seed_n, with_faults) =
  let plan =
    if with_faults then
      [
        Faults.Cert_fault { epoch = 0; fault = Faults.Duplicate 2 };
        Faults.Cert_fault { epoch = 1; fault = Faults.Delay 1 };
      ]
    else []
  in
  let seed = Printf.sprintf "agg-eq-%d" seed_n in
  let h_plain, pa, pb = world ~aggregate:false ~plan seed in
  let h_agg, aa, ab = world ~aggregate:true ~plan seed in
  Harness.dump_log h_plain = Harness.dump_log h_agg
  && certified_epochs h_plain pa = certified_epochs h_agg aa
  && certified_epochs h_plain pb = certified_epochs h_agg ab
  && Harness.sc_balance_on_mc h_plain pa = Harness.sc_balance_on_mc h_agg aa
  && Harness.is_ceased h_plain pa = Harness.is_ceased h_agg aa
  && Chain.height h_plain.Harness.chain = Chain.height h_agg.Harness.chain

let test_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"aggregated = per-cert decisions and logs"
       ~count:4
       ~print:(fun (n, f) -> Printf.sprintf "seed=%d faults=%b" n f)
       QCheck2.Gen.(pair (int_range 0 1000) bool)
       equivalence_prop)

let suite =
  ( "aggregate",
    [
      Alcotest.test_case "build/verify roundtrip" `Quick
        test_build_verify_roundtrip;
      Alcotest.test_case "parallel build bit-identical" `Quick
        test_build_parallel_bit_identical;
      Alcotest.test_case "failing leaf refused" `Quick
        test_build_refuses_failing_leaf;
      Alcotest.test_case "tampered aggregate rejected" `Quick
        test_tamper_rejected;
      Alcotest.test_case "positional root" `Quick test_root_positional_pairing;
      Alcotest.test_case "one proof per block" `Quick test_one_proof_per_block;
      Alcotest.test_case "wire roundtrip" `Quick
        test_wire_roundtrip_with_aggregate;
      Alcotest.test_case "tampered block rejected" `Quick
        test_tampered_aggregate_rejects_block;
      test_equivalence;
    ] )
