(* Additional coverage: the unified verifier interface, sidechain
   configuration validation, wallet edge cases, and Mc_ref sizes. *)

open Zen_crypto
open Zen_snark
open Zendoo

let checkb = Alcotest.(check bool)
let ok = function Ok v -> v | Error e -> Alcotest.fail e
let amount n = Amount.of_int_exn n

(* A vk with the wrong public arity must be rejected at registration,
   never at verification time. *)
let vk_with_arity n =
  let ctx = Gadget.create () in
  let inputs = List.init n (fun _ -> Gadget.input ctx Fp.zero) in
  (match inputs with
  | w :: _ -> Gadget.assert_eq ctx w w
  | [] ->
    let w = Gadget.witness ctx Fp.zero in
    Gadget.assert_eq ctx w w);
  let c, _, _ = Gadget.finalize ~name:(Printf.sprintf "arity%d" n) ctx in
  snd (Backend.setup c)

let test_config_rejects_wrong_arity () =
  let good = vk_with_arity 5 and bad = vk_with_arity 3 in
  checkb "bad wcert vk" true
    (Result.is_error
       (Sidechain_config.make ~ledger_id:(Hash.of_string "x") ~start_block:10
          ~epoch_len:4 ~submit_len:2 ~wcert_vk:bad ()));
  checkb "bad btr vk" true
    (Result.is_error
       (Sidechain_config.make ~ledger_id:(Hash.of_string "x") ~start_block:10
          ~epoch_len:4 ~submit_len:2 ~wcert_vk:good ~btr_vk:bad ()));
  checkb "good accepted" true
    (Result.is_ok
       (Sidechain_config.make ~ledger_id:(Hash.of_string "x") ~start_block:10
          ~epoch_len:4 ~submit_len:2 ~wcert_vk:good ()))

let test_config_parameter_bounds () =
  let vk = vk_with_arity 5 in
  let make ~epoch_len ~submit_len =
    Sidechain_config.make ~ledger_id:(Hash.of_string "x") ~start_block:10
      ~epoch_len ~submit_len ~wcert_vk:vk ()
  in
  checkb "epoch_len 1" true (Result.is_error (make ~epoch_len:1 ~submit_len:1));
  checkb "submit 0" true (Result.is_error (make ~epoch_len:4 ~submit_len:0));
  (* submit_len > epoch_len overlaps consecutive submission windows —
     legal; the ledger enforces sequential certification instead. *)
  checkb "submit > epoch ok" true (Result.is_ok (make ~epoch_len:4 ~submit_len:5));
  checkb "submit = epoch ok" true (Result.is_ok (make ~epoch_len:4 ~submit_len:4))

let test_disabled_withdrawals () =
  (* vkBTR/vkCSW set to NULL (§4.1.2.1): requests must be refused. *)
  let vk = vk_with_arity 5 in
  let config =
    ok
      (Sidechain_config.make ~ledger_id:(Hash.of_string "no-csw")
         ~start_block:10 ~epoch_len:4 ~submit_len:2 ~wcert_vk:vk ())
  in
  let ledger =
    ok (Zen_mainchain.Sc_ledger.register Zen_mainchain.Sc_ledger.empty config
          ~created_at:5)
  in
  let request =
    Mainchain_withdrawal.make ~kind:Mainchain_withdrawal.Btr
      ~ledger_id:config.ledger_id ~receiver:Hash.zero ~amount:(amount 5)
      ~nullifier:(Hash.of_string "nf") ~proofdata:[] ~proof:Backend.dummy_proof
  in
  match
    Zen_mainchain.Sc_ledger.check_withdrawal ledger ~request ~height:12
  with
  | Error e -> checkb "btr disabled" true (String.length e > 0)
  | Ok () -> Alcotest.fail "disabled BTR accepted"

let test_verify_wcert_binds_boundaries () =
  (* A certificate proof is bound to the epoch boundary hashes the MC
     enforces: verification against different boundaries fails. *)
  let params = Zen_latus.Params.default in
  let family = Zen_latus.Circuits.make params in
  let bt_root = Backward_transfer.list_root [] in
  let prev = Hash.of_string "prev" and cur = Hash.of_string "cur" in
  let proofdata = Proofdata.[ Digest Hash.zero; Field Fp.one; Blob "" ] in
  let proof =
    ok
      (Zen_latus.Circuits.prove_wcert_binding family ~quality:1 ~bt_root
         ~end_prev_epoch:prev ~end_epoch:cur ~proofdata ~s_prev:Fp.zero
         ~s_last:Fp.zero)
  in
  let cert =
    Withdrawal_certificate.make ~ledger_id:(Hash.of_string "sc") ~epoch_id:0
      ~quality:1 ~bt_list:[] ~proofdata ~proof
  in
  let vk = (Zen_latus.Circuits.wcert_keys family).vk in
  checkb "right boundaries" true
    (Verifier.verify_wcert ~vk ~cert ~end_prev_epoch:prev ~end_epoch:cur);
  checkb "wrong prev" false
    (Verifier.verify_wcert ~vk ~cert ~end_prev_epoch:cur ~end_epoch:cur);
  checkb "wrong cur" false
    (Verifier.verify_wcert ~vk ~cert ~end_prev_epoch:prev ~end_epoch:prev);
  (* quality is bound too *)
  let cert2 = { cert with quality = 2 } in
  checkb "quality bound" false
    (Verifier.verify_wcert ~vk ~cert:cert2 ~end_prev_epoch:prev ~end_epoch:cur)

let test_mc_wallet_edge_cases () =
  let params =
    { Zen_mainchain.Chain_state.default_params with pow = Zen_mainchain.Pow.trivial }
  in
  let chain = ref (Zen_mainchain.Chain.create ~params ~time:0 ()) in
  let w = Zen_mainchain.Wallet.create ~seed:"edge" in
  let addr = Zen_mainchain.Wallet.fresh_address w in
  for t = 1 to 4 do
    let b =
      ok (Zen_mainchain.Miner.mine_empty !chain ~time:t ~miner_addr:addr)
    in
    chain := fst (ok (Zen_mainchain.Chain.add_block !chain b))
  done;
  let st = Zen_mainchain.Chain.tip_state !chain in
  (* spending more than the balance *)
  checkb "insufficient funds" true
    (Result.is_error
       (Zen_mainchain.Wallet.build_transfer w st
          ~outputs:
            [ Zen_mainchain.Tx.Coin { Zen_mainchain.Tx.addr; amount = Amount.max_supply } ]
          ~fee:Amount.zero));
  (* exact spend with no change: output count stays as requested *)
  let balance = Zen_mainchain.Wallet.balance w st in
  let tx =
    ok
      (Zen_mainchain.Wallet.build_transfer w st
         ~outputs:[ Zen_mainchain.Tx.Coin { Zen_mainchain.Tx.addr; amount = balance } ]
         ~fee:Amount.zero)
  in
  match tx with
  | Zen_mainchain.Tx.Transfer { outputs; _ } ->
    checkb "no change output" true (List.length outputs = 1)
  | _ -> Alcotest.fail "expected transfer"

let test_mc_ref_size_claim () =
  (* §5.5.1: a reference is much smaller than the full MC block. A
     block with 50 transfers but only 1 sidechain-related tx yields a
     reference a fraction of the body size. *)
  let params =
    { Zen_mainchain.Chain_state.default_params with pow = Zen_mainchain.Pow.trivial }
  in
  let chain = ref (Zen_mainchain.Chain.create ~params ~time:0 ()) in
  let w = Zen_mainchain.Wallet.create ~seed:"size" in
  let addr = Zen_mainchain.Wallet.fresh_address w in
  for t = 1 to 8 do
    let b = ok (Zen_mainchain.Miner.mine_empty !chain ~time:t ~miner_addr:addr) in
    chain := fst (ok (Zen_mainchain.Chain.add_block !chain b))
  done;
  (* a block with many plain transfers *)
  let st = Zen_mainchain.Chain.tip_state !chain in
  let rec build_txs state n acc =
    if n = 0 then List.rev acc
    else begin
      match
        Zen_mainchain.Wallet.build_transfer w state
          ~outputs:[ Zen_mainchain.Tx.Coin { Zen_mainchain.Tx.addr; amount = amount 1000 } ]
          ~fee:Amount.zero
      with
      | Error _ -> List.rev acc
      | Ok tx -> (
        match
          Zen_mainchain.Chain_state.apply_tx state ~height:(state.height + 1)
            ~block_hash:Hash.zero tx
        with
        | Ok (state', _) -> build_txs state' (n - 1) (tx :: acc)
        | Error _ -> List.rev acc)
    end
  in
  let txs = build_txs st 10 [] in
  checkb "built several txs" true (List.length txs >= 3);
  let b, _ =
    ok
      (Zen_mainchain.Miner.build_block !chain ~time:99 ~miner_addr:addr
         ~candidates:txs)
  in
  chain := fst (ok (Zen_mainchain.Chain.add_block !chain b));
  let r =
    ok (Zen_latus.Mc_ref.build ~ledger_id:(Hash.of_string "some-sc") b)
  in
  checkb "reference verifies" true
    (Result.is_ok (Zen_latus.Mc_ref.verify ~ledger_id:(Hash.of_string "some-sc") r));
  let body_estimate =
    List.length b.txs * 250 (* ~bytes per transfer: outpoints, keys, sigs *)
  in
  checkb
    (Printf.sprintf "ref (%d B) smaller than body (~%d B)"
       (Zen_latus.Mc_ref.size_bytes r) body_estimate)
    true
    (Zen_latus.Mc_ref.size_bytes r < body_estimate)

let suite =
  ( "verifier-extra",
    [
      Alcotest.test_case "config vk arity" `Quick test_config_rejects_wrong_arity;
      Alcotest.test_case "config bounds" `Quick test_config_parameter_bounds;
      Alcotest.test_case "disabled withdrawals" `Quick test_disabled_withdrawals;
      Alcotest.test_case "wcert binds boundaries" `Quick
        test_verify_wcert_binds_boundaries;
      Alcotest.test_case "mc wallet edges" `Quick test_mc_wallet_edge_cases;
      Alcotest.test_case "mc ref size" `Quick test_mc_ref_size_claim;
    ] )
