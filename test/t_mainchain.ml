(* Mainchain substrate: transactions, UTXO maturity, blocks, PoW, fork
   choice and reorgs, the sidechain ledger rules, mempool and miner. *)

open Zen_crypto
open Zen_mainchain
open Zendoo

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let ok = function Ok v -> v | Error e -> Alcotest.fail e
let amount n = Amount.of_int_exn n

(* Fast-PoW world for deterministic, quick tests. *)
let params = { Chain_state.default_params with pow = Pow.trivial }

let fresh_world seed =
  let chain = Chain.create ~params ~time:0 () in
  let wallet = Wallet.create ~seed in
  let addr = Wallet.fresh_address wallet in
  (ref chain, wallet, addr)

let mine ?(txs = []) chain ~addr =
  let b, _ =
    ok (Miner.build_block !chain ~time:(Chain.height !chain + 1) ~miner_addr:addr ~candidates:txs)
  in
  let c, outcome = ok (Chain.add_block !chain b) in
  chain := c;
  (b, outcome)

let mine_n chain ~addr n =
  for _ = 1 to n do
    ignore (mine chain ~addr)
  done

(* ---- PoW ---- *)

let test_pow_target () =
  let p8 = { Pow.difficulty_bits = 8 } in
  checkb "zero byte ok" true
    (Pow.meets_target p8 (Hash.of_raw ("\000" ^ String.make 31 '\xff')));
  checkb "nonzero first byte" false
    (Pow.meets_target p8 (Hash.of_raw ("\001" ^ String.make 31 '\000')));
  checki "work" 256 (Pow.work_of p8)

let test_pow_mine_finds () =
  let p = { Pow.difficulty_bits = 6 } in
  let hash_of ~nonce = Hash.of_string ("attempt" ^ string_of_int nonce) in
  let nonce = Pow.mine p hash_of in
  checkb "found" true (Pow.meets_target p (hash_of ~nonce))

(* ---- coinbase maturity & transfers ---- *)

let test_coinbase_maturity () =
  let chain, wallet, addr = fresh_world "maturity" in
  mine_n chain ~addr 1;
  (* One coinbase at height 1, maturity 2: not spendable before height 4. *)
  checki "immature" 0
    (Amount.to_int (Wallet.balance wallet (Chain.tip_state !chain)));
  mine_n chain ~addr 2;
  checki "mature now" 5_000_000_000
    (Amount.to_int (Wallet.balance wallet (Chain.tip_state !chain)))

let test_transfer_and_fees () =
  let chain, wallet, addr = fresh_world "fees" in
  mine_n chain ~addr 5;
  let bob = Wallet.create ~seed:"fees-bob" in
  let bob_addr = Wallet.fresh_address bob in
  let tx =
    ok
      (Wallet.build_transfer wallet (Chain.tip_state !chain)
         ~outputs:[ Tx.Coin { Tx.addr = bob_addr; amount = amount 1000 } ]
         ~fee:(amount 50))
  in
  let b, _ = mine chain ~addr ~txs:[ tx ] in
  checki "tx included" 2 (List.length b.txs);
  checki "bob got paid" 1000
    (Amount.to_int (Wallet.balance bob (Chain.tip_state !chain)));
  (* Miner coinbase of that block carries subsidy + fee. *)
  match List.hd b.txs with
  | Tx.Coinbase { reward; _ } ->
    checki "reward includes fee" (5_000_000_000 + 50) (Amount.to_int reward.amount)
  | _ -> Alcotest.fail "first tx not coinbase"

let test_double_spend_rejected () =
  let chain, wallet, addr = fresh_world "double" in
  mine_n chain ~addr 5;
  let st = Chain.tip_state !chain in
  let bob = Wallet.create ~seed:"double-bob" in
  let baddr = Wallet.fresh_address bob in
  let tx1 =
    ok
      (Wallet.build_transfer wallet st
         ~outputs:[ Tx.Coin { Tx.addr = baddr; amount = amount 10 } ]
         ~fee:Amount.zero)
  in
  let b, _ = mine chain ~addr ~txs:[ tx1 ] in
  ignore b;
  (* Same tx again: inputs are gone. *)
  let st2 = Chain.tip_state !chain in
  match Chain_state.apply_tx st2 ~height:(st2.height + 1) ~block_hash:Hash.zero tx1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double spend accepted"

let test_signature_required () =
  let chain, wallet, addr = fresh_world "sig" in
  mine_n chain ~addr 5;
  let st = Chain.tip_state !chain in
  let mallory = Wallet.create ~seed:"mallory" in
  let maddr = Wallet.fresh_address mallory in
  let tx =
    ok
      (Wallet.build_transfer wallet st
         ~outputs:[ Tx.Coin { Tx.addr = maddr; amount = amount 10 } ]
         ~fee:Amount.zero)
  in
  (* Tamper: change output after signing. *)
  match tx with
  | Tx.Transfer { inputs; outputs = _ } ->
    let tampered =
      Tx.Transfer
        { inputs; outputs = [ Tx.Coin { Tx.addr = maddr; amount = amount 999 } ] }
    in
    (match
       Chain_state.apply_tx st ~height:(st.height + 1) ~block_hash:Hash.zero
         tampered
     with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "tampered tx accepted")
  | _ -> Alcotest.fail "expected transfer"

let test_inflation_rejected () =
  let chain, wallet, addr = fresh_world "inflation" in
  mine_n chain ~addr 5;
  let st = Chain.tip_state !chain in
  (* A transfer whose outputs exceed its inputs. *)
  let coins = Utxo_set.coins_of_addr st.utxos addr in
  let outpoint, coin = List.hd coins in
  let outputs =
    [ Tx.Coin { Tx.addr; amount = amount (Amount.to_int coin.amount + 1) } ]
  in
  let sighash = Tx.sighash ~inputs:[ outpoint ] ~outputs in
  let pk, signature =
    Option.get (Wallet.sign_for wallet ~addr ~msg:(Hash.to_raw sighash))
  in
  let tx = Tx.Transfer { inputs = [ { Tx.outpoint; pk; signature } ]; outputs } in
  match Chain_state.apply_tx st ~height:(st.height + 1) ~block_hash:Hash.zero tx with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "inflation accepted"

(* ---- fork choice / reorg ---- *)

let test_fork_choice_and_reorg () =
  let chain, _, addr = fresh_world "fork" in
  mine_n chain ~addr 3;
  let fork_base = !chain in
  (* Extend main by 1. *)
  mine_n chain ~addr 1;
  let tip_a = Chain.tip_hash !chain in
  (* Build a competing 2-block branch from the fork base tip. *)
  let alt = ref fork_base in
  let alt_addr = Wallet.fresh_address (Wallet.create ~seed:"alt-miner") in
  let b1, _ = ok (Miner.build_block !alt ~time:100 ~miner_addr:alt_addr ~candidates:[]) in
  let c1, _ = ok (Chain.add_block !alt b1) in
  alt := c1;
  let b2, _ = ok (Miner.build_block !alt ~time:101 ~miner_addr:alt_addr ~candidates:[]) in
  (* Feed the competing branch into the main chain object. *)
  let c, o1 = ok (Chain.add_block !chain b1) in
  chain := c;
  (match o1 with
  | Chain.Side_branch -> ()
  | _ -> Alcotest.fail "expected side branch");
  let c, o2 = ok (Chain.add_block !chain b2) in
  chain := c;
  (match o2 with
  | Chain.Reorg { old_tip; depth } ->
    checkb "old tip recorded" true (Hash.equal old_tip tip_a);
    checki "reorg depth" 1 depth
  | _ -> Alcotest.fail "expected reorg");
  checki "new height" 5 (Chain.height !chain);
  checkb "old tip off best chain" false (Chain.on_best_chain !chain tip_a)

let test_duplicate_and_orphan_blocks () =
  let chain, _, addr = fresh_world "dup" in
  let b, _ = mine chain ~addr in
  (match Chain.add_block !chain b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate accepted");
  let orphan =
    ok
      (Block.assemble ~prev:(Hash.of_string "nowhere") ~height:7 ~time:9 ~txs:[]
         ~pow:Pow.trivial ())
  in
  match Chain.add_block !chain orphan with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "orphan accepted"

let dummy_config () =
  (* A syntactically valid config for structural tests. *)
  let ctx = Zen_snark.Gadget.create () in
  let _ = List.init 5 (fun _ -> Zen_snark.Gadget.input ctx Fp.zero) in
  let w = Zen_snark.Gadget.witness ctx Fp.zero in
  Zen_snark.Gadget.assert_eq ctx w w;
  let c, _, _ = Zen_snark.Gadget.finalize ~name:"dummy5" ctx in
  let _, vk = Zen_snark.Backend.setup c in
  ok
    (Sidechain_config.make
       ~ledger_id:(Hash.of_string "dummy-sc")
       ~start_block:1000 ~epoch_len:10 ~submit_len:3 ~wcert_vk:vk ())

let test_block_structure_checks () =
  let chain, _, addr = fresh_world "structure" in
  mine_n chain ~addr 1;
  (* A non-coinbase-first block must be rejected at assembly level by
     validate_structure. *)
  let bad =
    ok
      (Block.assemble ~prev:(Chain.tip_hash !chain) ~height:2 ~time:2
         ~txs:[ Tx.Sc_create (dummy_config ()) ] ~pow:Pow.trivial ())
  in
  match Chain.add_block !chain bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "coinbase-less block accepted"

(* ---- sidechain ledger rules (no SNARK semantics needed) ---- *)

let test_sc_registration_rules () =
  let cfg = dummy_config () in
  let l = ok (Sc_ledger.register Sc_ledger.empty cfg ~created_at:5) in
  checkb "registered" true (Sc_ledger.find l cfg.ledger_id <> None);
  (* duplicate *)
  checkb "duplicate rejected" true
    (Result.is_error (Sc_ledger.register l cfg ~created_at:6));
  (* start block in the past *)
  checkb "past start rejected" true
    (Result.is_error (Sc_ledger.register Sc_ledger.empty cfg ~created_at:2000))

let test_ft_rules () =
  let cfg = dummy_config () in
  let l = ok (Sc_ledger.register Sc_ledger.empty cfg ~created_at:5) in
  let ft amount_ =
    Forward_transfer.make ~ledger_id:cfg.ledger_id ~receiver_metadata:""
      ~amount:amount_
  in
  (* before activation *)
  checkb "inactive" true
    (Result.is_error (Sc_ledger.credit_ft l (ft (amount 5)) ~height:999));
  let l = ok (Sc_ledger.credit_ft l (ft (amount 5)) ~height:1000) in
  checki "balance" 5
    (Amount.to_int (Option.get (Sc_ledger.balance l cfg.ledger_id)));
  (* unknown sidechain *)
  let stranger =
    Forward_transfer.make ~ledger_id:(Hash.of_string "nope")
      ~receiver_metadata:"" ~amount:(amount 5)
  in
  checkb "unknown sc" true
    (Result.is_error (Sc_ledger.credit_ft l stranger ~height:1000));
  (* ceased: no cert by end of epoch 0's window (heights 1010..1012) *)
  checkb "ceased rejects ft" true
    (Result.is_error (Sc_ledger.credit_ft l (ft (amount 5)) ~height:1013))

let test_ceasing_detection () =
  let cfg = dummy_config () in
  let l = ok (Sc_ledger.register Sc_ledger.empty cfg ~created_at:5) in
  checkb "alive during epoch 0" false
    (Sc_ledger.is_ceased l cfg.ledger_id ~height:1009);
  checkb "alive in window" false
    (Sc_ledger.is_ceased l cfg.ledger_id ~height:1012);
  checkb "ceased after window" true
    (Sc_ledger.is_ceased l cfg.ledger_id ~height:1013);
  checkb "unknown sc not ceased" false
    (Sc_ledger.is_ceased l (Hash.of_string "ghost") ~height:9999)

(* ---- mempool ---- *)

let test_mempool () =
  let cfg = dummy_config () in
  let tx = Tx.Sc_create cfg in
  let m = Mempool.add Mempool.empty tx in
  let m = Mempool.add m tx in
  checki "dedup" 1 (Mempool.size m);
  checkb "mem" true (Mempool.mem m (Tx.txid tx));
  let block =
    ok
      (Block.assemble ~prev:Hash.zero ~height:1 ~time:1 ~txs:[ tx ]
         ~pow:Pow.trivial ())
  in
  let m = Mempool.remove_included m block in
  checki "removed" 0 (Mempool.size m)

let test_miner_skips_invalid () =
  let chain, wallet, addr = fresh_world "skip" in
  mine_n chain ~addr 5;
  let st = Chain.tip_state !chain in
  let bob_addr = Wallet.fresh_address (Wallet.create ~seed:"skip-bob") in
  let tx =
    ok
      (Wallet.build_transfer wallet st
         ~outputs:[ Tx.Coin { Tx.addr = bob_addr; amount = amount 10 } ]
         ~fee:Amount.zero)
  in
  (* Submitting the same tx twice: second conflicts with first. *)
  let b, skipped =
    ok
      (Miner.build_block !chain ~time:50 ~miner_addr:addr
         ~candidates:[ tx; tx ])
  in
  checki "one included" 2 (List.length b.txs);
  checki "one skipped" 1 (List.length skipped)

let test_supply_audit () =
  let chain, _, addr = fresh_world "supply" in
  mine_n chain ~addr 10;
  let st = Chain.tip_state !chain in
  checki "supply = 10 subsidies" (10 * 5_000_000_000)
    (Amount.to_int (Chain_state.circulating st))

let suite =
  ( "mainchain",
    [
      Alcotest.test_case "pow target" `Quick test_pow_target;
      Alcotest.test_case "pow mine" `Quick test_pow_mine_finds;
      Alcotest.test_case "coinbase maturity" `Quick test_coinbase_maturity;
      Alcotest.test_case "transfer and fees" `Quick test_transfer_and_fees;
      Alcotest.test_case "double spend" `Quick test_double_spend_rejected;
      Alcotest.test_case "signature required" `Quick test_signature_required;
      Alcotest.test_case "inflation rejected" `Quick test_inflation_rejected;
      Alcotest.test_case "fork choice and reorg" `Quick test_fork_choice_and_reorg;
      Alcotest.test_case "duplicate/orphan blocks" `Quick
        test_duplicate_and_orphan_blocks;
      Alcotest.test_case "block structure" `Quick test_block_structure_checks;
      Alcotest.test_case "sc registration" `Quick test_sc_registration_rules;
      Alcotest.test_case "ft rules" `Quick test_ft_rules;
      Alcotest.test_case "ceasing detection" `Quick test_ceasing_detection;
      Alcotest.test_case "mempool" `Quick test_mempool;
      Alcotest.test_case "miner skips invalid" `Quick test_miner_skips_invalid;
      Alcotest.test_case "supply audit" `Quick test_supply_audit;
    ] )
