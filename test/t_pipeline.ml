(* Pipelined epoch proving: the Recursive.Incremental online fold must
   be byte-identical to fold_balanced for every prefix length and every
   domain count (including error selection), Prover_pool.prove_and_merge
   must reproduce prove_epoch + merge_all exactly, and a harness run is
   a pure function of its seed whether the pipeline is on or off. *)

open Zen_crypto
open Zen_snark
open Zen_latus
open Zendoo
open Zen_sim

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let ok = function Ok v -> v | Error e -> Alcotest.fail e
let amount n = Amount.of_int_exn n

let params = Params.default
let family = Circuits.make params

let ceil_log2 n =
  let rec go acc p = if p >= n then acc else go (acc + 1) (p * 2) in
  if n <= 1 then 0 else go 0 1

let popcount n =
  let rec go acc n = if n = 0 then acc else go (acc + (n land 1)) (n lsr 1) in
  go 0 n

(* ---- Incremental = fold_balanced, on a cheap synthetic chain ---- *)

(* The t_snark step circuit: s_to = Poseidon(s_from, x). Cheap enough
   to build a 17-link chain once and reuse across all the prefix
   tests. *)
let synth_step s x =
  let ctx = Gadget.create () in
  let w_from = Gadget.input ctx s in
  let s_to = Poseidon.hash2 s x in
  let w_to = Gadget.input ctx s_to in
  let wx = Gadget.witness ctx x in
  Gadget.assert_eq ~label:"step" ctx (Gadget.poseidon2 ctx w_from wx) w_to;
  (Gadget.finalize ~name:"pipe.step" ctx, s_to)

let make_chain sys pk vk s0 n =
  let rec go s i acc =
    if i = n then List.rev acc
    else begin
      let (_, public, witness), s_to = synth_step s (Fp.of_int (2000 + i)) in
      let proof = ok (Backend.prove pk ~public ~witness) in
      let tp =
        ok (Recursive.of_base sys ~vk ~s_from:s ~s_to ~extra:[||] proof)
      in
      go s_to (i + 1) (tp :: acc)
    end
  in
  go s0 0 []

let chain17 =
  lazy
    (let (c, _, _), _ = synth_step Fp.zero Fp.zero in
     let pk, vk = Backend.setup c in
     let sys = Recursive.create ~name:"t-pipe" ~base_vks:[ vk ] in
     (sys, make_chain sys pk vk (Fp.of_int 1) 17))

let take n l = List.filteri (fun i _ -> i < n) l
let drop_nth n l = List.filteri (fun i _ -> i <> n) l

let bytes_of tp = Backend.proof_encode (Recursive.final_proof tp)

let incremental_of sys ts =
  let acc = Recursive.Incremental.create sys in
  List.iter (Recursive.Incremental.push acc) ts;
  (acc, Recursive.Incremental.finish acc)

(* Every prefix length 1..17 (all binary-counter shapes), every pool
   arity, one growing accumulator: each [finish] must match the batch
   fold of the same prefix, proving [finish] is non-destructive — the
   lost-certificate rebuild path. *)
let test_incremental_all_prefixes () =
  let sys, chain = Lazy.force chain17 in
  let acc = Recursive.Incremental.create sys in
  checkb "empty finish is the fold_balanced error" true
    (Recursive.Incremental.finish acc
    = Error "fold_balanced: empty transition list");
  List.iteri
    (fun i tp ->
      let len = i + 1 in
      Recursive.Incremental.push acc tp;
      checki (Printf.sprintf "len %d count" len) len
        (Recursive.Incremental.count acc);
      checkb
        (Printf.sprintf "len %d pending <= ceil(log2 %d)" len len)
        true
        (Recursive.Incremental.pending_merges acc <= ceil_log2 len);
      checki
        (Printf.sprintf "len %d pending = popcount - 1" len)
        (popcount len - 1)
        (Recursive.Incremental.pending_merges acc);
      let inc = ok (Recursive.Incremental.finish acc) in
      List.iter
        (fun domains ->
          let pool = Pool.get ~domains in
          let bal = ok (Recursive.fold_balanced ~pool sys (take len chain)) in
          checks
            (Printf.sprintf "len %d domains %d bytes" len domains)
            (bytes_of bal) (bytes_of inc))
        [ 1; 2; 4 ];
      checkb
        (Printf.sprintf "len %d endpoints" len)
        true
        (Fp.equal (Recursive.s_from inc) (Fp.of_int 1)
        && Fp.equal (Recursive.s_to inc)
             (Recursive.s_to (List.nth chain (len - 1)))))
    chain

(* qcheck: random prefix x pool arity x optional adjacency break. On
   success the bytes must match; on failure the error strings must —
   the incremental fold reports the same (level, pair)-first failure
   fold_balanced does, even with several broken pairs. *)
let equivalence_prop (len, domains, gap) =
  let sys, chain = Lazy.force chain17 in
  let ts = take len chain in
  let ts, broken =
    match gap with
    | Some k when len >= 3 -> (drop_nth (1 + (k mod (len - 2))) ts, true)
    | _ -> (ts, false)
  in
  let pool = Pool.get ~domains in
  let bal = Recursive.fold_balanced ~pool sys ts in
  let _, inc = incremental_of sys ts in
  match (bal, inc) with
  | Ok b, Ok i -> (not broken) && String.equal (bytes_of b) (bytes_of i)
  | Error eb, Error ei -> broken && String.equal eb ei
  | Ok _, Error _ | Error _, Ok _ -> false

let test_incremental_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"Incremental = fold_balanced" ~count:60
       ~print:(fun (len, domains, gap) ->
         Printf.sprintf "len=%d domains=%d gap=%s" len domains
           (match gap with None -> "-" | Some k -> string_of_int k))
       QCheck2.Gen.(
         triple (int_range 1 17) (oneofl [ 1; 2; 4 ])
           (option (int_range 0 14)))
       equivalence_prop)

let test_incremental_double_break () =
  (* Two broken pairs: the reported failure must still be the first in
     fold_balanced's (level, pair) execution order. *)
  let sys, chain = Lazy.force chain17 in
  let ts = take 11 chain |> drop_nth 8 |> drop_nth 3 in
  let bal = Recursive.fold_balanced sys ts in
  let _, inc = incremental_of sys ts in
  match (bal, inc) with
  | Error eb, Error ei -> checks "same first error" eb ei
  | _ -> Alcotest.fail "both folds should fail on a doubly-broken chain"

(* ---- prove_and_merge = prove_epoch + merge_all ---- *)

let pipe_steps n tag =
  List.init n (fun i ->
      Sc_tx.Insert
        (Utxo.make
           ~addr:(Hash.of_string ("t-pipe." ^ tag))
           ~amount:(amount (i + 1))
           ~nonce:(Hash.of_string (Printf.sprintf "tp-%s-%d" tag i))))

let test_prove_and_merge_identical () =
  let rsys =
    Recursive.create ~name:"t-pipe-pp" ~base_vks:(Circuits.base_vks family)
  in
  let st = Sc_state.create params in
  let steps = pipe_steps 11 "pp" in
  let faults = [ (2, Prover_pool.Crash); (0, Prover_pool.Slow 5) ] in
  List.iter
    (fun domains ->
      let pool = Pool.get ~domains in
      let proofs, stats =
        ok
          (Prover_pool.prove_epoch ~pool ~faults family ~initial:st ~steps
             ~workers:4 ~seed:9)
      in
      let top = ok (Prover_pool.merge_all ~pool family rsys proofs) in
      let proofs', stats', top' =
        ok
          (Prover_pool.prove_and_merge ~pool ~faults family rsys ~initial:st
             ~steps ~workers:4 ~seed:9)
      in
      let label s = Printf.sprintf "domains %d: %s" domains s in
      checks (label "epoch proof bytes") (bytes_of top) (bytes_of top');
      checki (label "retries") stats.Prover_pool.retries
        stats'.Prover_pool.retries;
      checkb (label "rewards") true
        (stats.Prover_pool.rewards = stats'.Prover_pool.rewards);
      checkb (label "task proofs") true
        (List.for_all2
           (fun a b ->
             a.Prover_pool.worker = b.Prover_pool.worker
             && a.Prover_pool.attempts = b.Prover_pool.attempts
             && String.equal
                  (Backend.proof_encode a.Prover_pool.proof)
                  (Backend.proof_encode b.Prover_pool.proof))
           proofs proofs'))
    [ 1; 2 ];
  (* error selection: all workers crashed fails identically *)
  let all_crashed = [ (0, Prover_pool.Crash); (1, Prover_pool.Crash) ] in
  checkb "error paths agree" true
    (Prover_pool.prove_and_merge ~faults:all_crashed family rsys ~initial:st
       ~steps ~workers:2 ~seed:9
     |> Result.is_error)

(* ---- harness determinism: pipeline on/off, fault storm ---- *)

let storm_run ~pipeline ~domains =
  let plan =
    Faults.storm ~seed:11 ~first_tick:8 ~ticks:12 ~epochs:4 ~workers:4
      ~intensity:40 ()
  in
  let faults = Faults.create ~seed:11 plan in
  let pool = Pool.get ~domains in
  let h = Harness.create ~pool ~pipeline ~faults ~seed:"pipe.storm" () in
  Harness.fund h ~blocks:5;
  let sc =
    ok
      (Harness.add_latus h ~name:"sc" ~family ~epoch_len:2 ~submit_len:5
         ~activation_delay:1 ())
  in
  (* real traffic, so epoch proofs have leaves to pipeline *)
  let receiver = Hash.of_string "pipe-user" in
  for i = 1 to 4 do
    ok
      (Harness.forward_transfer h sc ~receiver ~payback:receiver
         ~amount:(amount (100 * i)));
    Harness.tick_n h 3
  done;
  let certified =
    match
      Zen_mainchain.Sc_ledger.find
        (Zen_mainchain.Chain.tip_state h.chain).scs sc.ledger_id
    with
    | None -> 0
    | Some s -> List.length s.certs
  in
  Zen_obs.Clock.reset ();
  ( Harness.dump_log h,
    certified,
    Zen_mainchain.Chain.height h.chain,
    Node.certificate_stats sc.node )

let test_storm_pipeline_invariant () =
  let log_on, cert_on, height_on, stats_on = storm_run ~pipeline:true ~domains:1 in
  let log_off, cert_off, height_off, stats_off =
    storm_run ~pipeline:false ~domains:1
  in
  let log_on2, cert_on2, height_on2, _ = storm_run ~pipeline:true ~domains:2 in
  checkb "liveness under faults" true (cert_on > 0);
  checki "same certified (on/off)" cert_on cert_off;
  checki "same height (on/off)" height_on height_off;
  checki "same log length (on/off)" (List.length log_on) (List.length log_off);
  List.iter2 (fun a b -> checks "log line (on/off)" a b) log_on log_off;
  checki "same certified (1/2 domains)" cert_on cert_on2;
  checki "same height (1/2 domains)" height_on height_on2;
  List.iter2 (fun a b -> checks "log line (1/2 domains)" a b) log_on log_on2;
  (* the unpipelined node keeps no pipeline accounting *)
  checki "no stats without pipeline" 0 (List.length stats_off);
  checkb "stats with pipeline" true (List.length stats_on > 0);
  (* the certify path really is logarithmic: carry merges are the
     binary-counter tail, never the (leaves - 1) burst fold *)
  List.iter
    (fun (cs : Proof_pipeline.certificate_stats) ->
      checkb
        (Printf.sprintf "epoch %d carries %d <= ceil(log2 %d) + 1"
           cs.cert_epoch cs.cert_carry_merges cs.cert_leaves)
        true
        (cs.cert_carry_merges <= ceil_log2 (max 1 cs.cert_leaves) + 1);
      if cs.cert_leaves > 0 then
        checki
          (Printf.sprintf "epoch %d carries = popcount - 1" cs.cert_epoch)
          (popcount cs.cert_leaves - 1)
          cs.cert_carry_merges)
    stats_on

(* ---- record retention ---- *)

let test_record_pruning () =
  let h = Harness.create ~seed:"pipe.prune" () in
  Harness.fund h ~blocks:5;
  let sc =
    ok
      (Harness.add_latus h ~name:"sc" ~family ~epoch_len:2 ~submit_len:5
         ~activation_delay:1 ())
  in
  let receiver = Hash.of_string "prune-user" in
  ok
    (Harness.forward_transfer h sc ~receiver ~payback:receiver
       ~amount:(amount 500));
  Harness.tick_n h 40;
  let certified =
    match
      Zen_mainchain.Sc_ledger.find
        (Zen_mainchain.Chain.tip_state h.chain).scs sc.ledger_id
    with
    | None -> 0
    | Some s -> List.length s.certs
  in
  checkb "many epochs certified" true (certified >= 10);
  (* 40 ticks at epoch_len 2 forge ~20 epochs of records; retention
     keeps the window anchored at the certified horizon instead *)
  checkb "records pruned to the retention window" true
    (Node.retained_records sc.node <= 2 * 10);
  checkb "pipeline stayed on" true (Node.pipeline_enabled sc.node);
  checki "pipeline drained" 0 (Node.pipeline_depth sc.node)

let suite =
  ( "pipeline",
    [
      Alcotest.test_case "incremental fold, all prefixes" `Quick
        test_incremental_all_prefixes;
      test_incremental_equivalence;
      Alcotest.test_case "incremental fold, double break" `Quick
        test_incremental_double_break;
      Alcotest.test_case "prove_and_merge = prove_epoch + merge_all" `Quick
        test_prove_and_merge_identical;
      Alcotest.test_case "storm: pipeline on/off byte-identical" `Quick
        test_storm_pipeline_invariant;
      Alcotest.test_case "records pruned to certified horizon" `Quick
        test_record_pruning;
    ] )
