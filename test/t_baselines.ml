(* Baseline protocols: certifier committees and direct validation. *)

open Zen_crypto
open Zen_baselines
open Zendoo

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let amount n = Amount.of_int_exn n

let bts n =
  List.init n (fun i ->
      Backward_transfer.make
        ~receiver_addr:(Hash.of_string (string_of_int i))
        ~amount:(amount (i + 1)))

let test_committee_threshold () =
  let c = Certifiers.committee_of_seed ~seed:"com" ~size:10 in
  let id = Hash.of_string "sc" in
  let cert =
    Certifiers.make_certificate c ~signers:[ 0; 1; 2; 3; 4; 5; 6 ] ~ledger_id:id
      ~epoch_id:3 ~bt_list:(bts 2)
  in
  checkb "meets 7" true (Result.is_ok (Certifiers.verify c ~threshold:7 cert));
  checkb "below 8" true (Result.is_error (Certifiers.verify c ~threshold:8 cert))

let test_committee_duplicates_and_strangers () =
  let c = Certifiers.committee_of_seed ~seed:"com2" ~size:5 in
  let id = Hash.of_string "sc" in
  let dup =
    Certifiers.make_certificate c ~signers:[ 0; 0; 1 ] ~ledger_id:id ~epoch_id:0
      ~bt_list:[]
  in
  checkb "duplicate" true (Result.is_error (Certifiers.verify c ~threshold:2 dup));
  (* signatures from one committee do not validate under another *)
  let other = Certifiers.committee_of_seed ~seed:"elsewhere" ~size:5 in
  let cert =
    Certifiers.make_certificate c ~signers:[ 0; 1; 2 ] ~ledger_id:id ~epoch_id:0
      ~bt_list:[]
  in
  checkb "foreign committee" true
    (Result.is_error (Certifiers.verify other ~threshold:3 cert))

let test_committee_binds_bt_list () =
  let c = Certifiers.committee_of_seed ~seed:"bind" ~size:4 in
  let id = Hash.of_string "sc" in
  let cert =
    Certifiers.make_certificate c ~signers:[ 0; 1; 2 ] ~ledger_id:id ~epoch_id:0
      ~bt_list:(bts 2)
  in
  (* Swap the BT list after signing. *)
  let forged = { cert with Certifiers.bt_list = bts 3 } in
  checkb "forged bt list" true
    (Result.is_error (Certifiers.verify c ~threshold:3 forged))

let test_direct_validation_replays () =
  let params = Zen_latus.Params.default in
  let w = Zen_latus.Sc_wallet.create ~seed:"dv" in
  let addr = Zen_latus.Sc_wallet.fresh_address w in
  let coin =
    Zen_latus.Utxo.make ~addr ~amount:(amount 50) ~nonce:(Hash.of_string "n")
  in
  let st0 = Zen_latus.Sc_state.create params in
  let mst, _ =
    Result.get_ok (Zen_latus.Mst.insert st0.Zen_latus.Sc_state.mst coin)
  in
  let st0 = Zen_latus.Sc_state.with_mst st0 mst in
  let tx =
    Result.get_ok
      (Zen_latus.Sc_wallet.build_backward_transfer w st0 ~utxo:coin
         ~mc_receiver:(Hash.of_string "mc"))
  in
  match Direct_validation.replay_epoch ~params ~initial:st0 ~txs:[ tx ] with
  | Error e -> Alcotest.fail e
  | Ok final ->
    checki "one bt" 1 (List.length (Zen_latus.Sc_state.backward_transfers final));
    checkb "claims check" true
      (Result.is_ok
         (Direct_validation.check_withdrawals ~final
            ~claimed:(Zen_latus.Sc_state.backward_transfers final)));
    checkb "wrong claims rejected" true
      (Result.is_error (Direct_validation.check_withdrawals ~final ~claimed:[]));
    checkb "bytes positive" true (Direct_validation.epoch_data_bytes ~txs:[ tx ] > 0)

let suite =
  ( "baselines",
    [
      Alcotest.test_case "committee threshold" `Quick test_committee_threshold;
      Alcotest.test_case "committee dup/stranger" `Quick
        test_committee_duplicates_and_strangers;
      Alcotest.test_case "committee binds bts" `Quick test_committee_binds_bt_list;
      Alcotest.test_case "direct validation" `Quick test_direct_validation_replays;
    ] )
