(* Zen_obs.Report: span-forest reconstruction round-trips randomly
   generated span trees (emitted exactly as Trace records them —
   children before parents, per-domain seq order), self time sums back
   to the root's wall-clock, the histogram quantile estimate always
   lands in the same bucket as an exact sorted-list oracle (and q = 1
   is exactly the max), dropped parents flatten instead of losing
   descendants, and report generation is byte-identical across reruns
   under a deterministic clock. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let with_fresh_obs f =
  Zen_obs.Registry.reset ();
  Fun.protect
    ~finally:(fun () ->
      Zen_obs.Registry.disable ();
      Zen_obs.Registry.reset ())
    (fun () -> Zen_obs.Registry.with_enabled f)

(* ---- synthetic span forests ----

   A forest shape is turned into the exact event list Trace would
   record for it: one Complete event per span, pushed at span end
   (children before the parent), seq in recording order, ts/dur from a
   counter clock that advances one unit at every span entry and exit. *)

type stree = Node of stree list

let gen_forest =
  QCheck2.Gen.(
    let tree =
      sized_size (int_range 0 20)
      @@ fix (fun self n ->
             if n <= 0 then return (Node [])
             else
               let* kids = list_size (int_range 0 3) (self (n / 4)) in
               return (Node kids))
    in
    list_size (int_range 1 4) tree)

let events_of_forest ?(tid = 0) ?(t0 = 0.) forest =
  let time = ref t0 and seq = ref 0 and counter = ref 0 in
  let out = ref [] (* recording order, newest first *) in
  let expected_children : (string, string list) Hashtbl.t =
    Hashtbl.create 16
  in
  let rec walk depth (Node kids) =
    incr counter;
    let name = Printf.sprintf "s%d.%d" tid !counter in
    let start = !time in
    time := !time +. 1.;
    let child_names = List.map (walk (depth + 1)) kids in
    let stop = !time in
    time := !time +. 1.;
    Hashtbl.add expected_children name child_names;
    out :=
      {
        Zen_obs.Trace.name;
        cat = "t";
        tid;
        ts = start;
        dur = stop -. start;
        depth;
        phase = Zen_obs.Trace.Complete;
        args = [];
        seq =
          (let s = !seq in
           incr seq;
           s);
      }
      :: !out;
    name
  in
  let roots = List.map (walk 0) forest in
  (List.rev !out, roots, expected_children)

let rec node_matches expected (node : Zen_obs.Report.node) name =
  String.equal node.event.Zen_obs.Trace.name name
  &&
  let kids = Hashtbl.find expected name in
  List.length node.children = List.length kids
  && List.for_all2 (node_matches expected) node.children kids

let prop_forest_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"span_forest round-trips synthetic recording-order events"
       ~count:200 gen_forest
       (fun shape ->
         let events, roots, expected = events_of_forest shape in
         let forest = Zen_obs.Report.span_forest events in
         List.length forest = List.length roots
         && List.for_all2 (node_matches expected) forest roots))

let prop_self_time_sums_to_wall =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"self times over a tree sum to the root's duration" ~count:200
       gen_forest
       (fun shape ->
         let events, _, _ = events_of_forest shape in
         let forest = Zen_obs.Report.span_forest events in
         List.for_all
           (fun root ->
             let rec sum n =
               Zen_obs.Report.self_s n
               +. List.fold_left (fun acc c -> acc +. sum c) 0. n.Zen_obs.Report.children
             in
             (* counter clock: all values are small integers, sums are
                exact *)
             sum root = Zen_obs.Report.dur root)
           forest))

let test_two_tid_forests_merge () =
  let ev1, roots1, exp1 = events_of_forest ~tid:1 [ Node [ Node [] ] ] in
  let ev2, roots2, exp2 =
    events_of_forest ~tid:2 ~t0:1000. [ Node []; Node [] ]
  in
  let forest = Zen_obs.Report.span_forest (ev1 @ ev2) in
  checki "three roots" 3 (List.length forest);
  (* tid 1 starts at t=0, tid 2 at t=1000: roots sort by start time *)
  checkb "roots ordered and shaped" true
    (List.for_all2
       (fun n (expected, name) -> node_matches expected n name)
       forest
       ([ (exp1, List.hd roots1) ]
       @ List.map (fun r -> (exp2, r)) roots2))

let test_dropped_parent_flattens () =
  let events, _, _ = events_of_forest [ Node [ Node [ Node [] ] ] ] in
  (* drop the depth-1 middle span, as a full buffer would *)
  let truncated =
    List.filter (fun e -> e.Zen_obs.Trace.depth <> 1) events
  in
  let forest = Zen_obs.Report.span_forest truncated in
  checki "one root survives" 1 (List.length forest);
  let root = List.hd forest in
  checki "root is the depth-0 span" 0 root.event.Zen_obs.Trace.depth;
  checki "orphaned depth-2 span flattened under it" 1
    (List.length root.children);
  checki "no further nesting" 0
    (List.length (List.hd root.children).Zen_obs.Report.children)

(* ---- critical path ---- *)

let test_critical_path_follows_longest_child () =
  with_fresh_obs @@ fun () ->
  Zen_obs.Clock.set (Zen_obs.Clock.deterministic ~step:0.001 ());
  Fun.protect ~finally:Zen_obs.Clock.reset @@ fun () ->
  Zen_obs.Trace.with_span "root" (fun () ->
      Zen_obs.Trace.with_span "short" (fun () -> ());
      Zen_obs.Trace.with_span "long" (fun () ->
          Zen_obs.Trace.with_span "leaf" (fun () -> ());
          (* pad so "long" clearly dominates "short" *)
          Zen_obs.Trace.with_span "leaf2" (fun () -> ())));
  let path = Zen_obs.Report.critical_path () in
  let names = List.map (fun s -> s.Zen_obs.Report.step_name) path in
  checkb "path = root -> long -> leaf(2)" true
    (match names with
    | [ "root"; "long"; l ] -> l = "leaf" || l = "leaf2"
    | _ -> false);
  let root = List.hd path in
  checkb "root share is 1" true (root.Zen_obs.Report.share = 1.);
  checkb "shares within [0,1] and descending-ish" true
    (List.for_all
       (fun s -> s.Zen_obs.Report.share >= 0. && s.Zen_obs.Report.share <= 1.)
       path)

(* ---- quantiles vs an exact oracle ---- *)

let bounds = Zen_obs.Histogram.exponential_bounds ~lo:0.001 ~factor:2. ~n:10

let bucket_index v =
  let rec go i = function
    | [] -> i
    | b :: rest -> if v <= b then i else go (i + 1) rest
  in
  go 0 bounds

let prop_quantile_same_bucket_as_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"quantile lands in the exact order statistic's bucket; q=1 is max"
       ~count:100
       QCheck2.Gen.(list_size (int_range 1 200) (float_range 1e-5 3.0))
       (fun samples ->
         with_fresh_obs @@ fun () ->
         let h = Zen_obs.Histogram.make ~bounds "t_report.quantile" in
         List.iter (Zen_obs.Histogram.observe h) samples;
         let s = Zen_obs.Histogram.snapshot h in
         let sorted = List.sort Float.compare samples in
         let n = List.length sorted in
         let exact q =
           let rank =
             max 1 (int_of_float (Float.ceil (q *. float_of_int n)))
           in
           List.nth sorted (rank - 1)
         in
         let same_bucket q =
           bucket_index (Zen_obs.Histogram.quantile s q)
           = bucket_index (exact q)
         in
         List.for_all same_bucket [ 0.01; 0.25; 0.5; 0.9; 0.99 ]
         && Zen_obs.Histogram.quantile s 1.0 = List.nth sorted (n - 1)
         && s.Zen_obs.Histogram.max = List.nth sorted (n - 1)))

let test_quantile_empty_and_single () =
  with_fresh_obs @@ fun () ->
  let h = Zen_obs.Histogram.make ~bounds "t_report.single" in
  let s0 = Zen_obs.Histogram.snapshot h in
  checkb "empty quantile is 0" true (Zen_obs.Histogram.quantile s0 0.5 = 0.);
  Zen_obs.Histogram.observe h 0.042;
  let s1 = Zen_obs.Histogram.snapshot h in
  checkb "single observation: every quantile is in its bucket" true
    (List.for_all
       (fun q -> bucket_index (Zen_obs.Histogram.quantile s1 q) = bucket_index 0.042)
       [ 0.; 0.5; 0.99 ]);
  checkb "single observation: q=1 is the value" true
    (Zen_obs.Histogram.quantile s1 1.0 = 0.042)

(* ---- deterministic report generation ---- *)

let deterministic_workload () =
  Zen_obs.Trace.with_span ~cat:"a" "w.root" (fun () ->
      Zen_obs.Trace.with_span ~cat:"b" "w.mid" (fun () ->
          Zen_obs.Trace.instant "w.point";
          Zen_obs.Trace.with_span ~cat:"b" "w.leaf" (fun () -> ()));
      Zen_obs.Trace.with_span ~cat:"c" "w.tail" (fun () -> ()));
  let h = Zen_obs.Histogram.make ~bounds "t_report.det" in
  List.iter (Zen_obs.Histogram.observe h) [ 0.002; 0.01; 0.04; 0.04; 0.3 ]

let render_once () =
  with_fresh_obs @@ fun () ->
  Zen_obs.Clock.set (Zen_obs.Clock.deterministic ~start:100. ~step:0.001 ());
  Fun.protect ~finally:Zen_obs.Clock.reset @@ fun () ->
  deterministic_workload ();
  ( Zen_obs.Report.to_json_string
      ~extras:[ ("tag", Zen_obs.Json.Str "rerun") ]
      (),
    Zen_obs.Report.human () )

let test_report_byte_identical_across_reruns () =
  let j1, h1 = render_once () in
  let j2, h2 = render_once () in
  checks "zen-report/1 JSON byte-identical" j1 j2;
  checks "human report byte-identical" h1 h2;
  (* and the document is valid JSON with the expected schema *)
  match Zen_obs.Json.of_string j1 with
  | Error e -> Alcotest.fail ("report is not valid JSON: " ^ e)
  | Ok doc ->
    checkb "schema tag" true
      (Zen_obs.Json.member "schema" doc
      = Some (Zen_obs.Json.Str "zen-report/1"));
    checkb "extras appended" true
      (Zen_obs.Json.member "tag" doc = Some (Zen_obs.Json.Str "rerun"))

let test_report_empty_is_graceful () =
  with_fresh_obs @@ fun () ->
  match Zen_obs.Json.of_string (Zen_obs.Report.to_json_string ()) with
  | Error e -> Alcotest.fail ("empty report is not valid JSON: " ^ e)
  | Ok doc ->
    checkb "critical path null when nothing recorded" true
      (Zen_obs.Json.member "critical_path" doc = Some Zen_obs.Json.Null);
    checkb "human rendering mentions the absence" true
      (let s = Zen_obs.Report.human () in
       String.length s > 0)

let suite =
  ( "report",
    [
      prop_forest_roundtrip;
      prop_self_time_sums_to_wall;
      Alcotest.test_case "two-tid forests merge by start time" `Quick
        test_two_tid_forests_merge;
      Alcotest.test_case "dropped parent flattens, loses nothing" `Quick
        test_dropped_parent_flattens;
      Alcotest.test_case "critical path follows the longest child" `Quick
        test_critical_path_follows_longest_child;
      prop_quantile_same_bucket_as_oracle;
      Alcotest.test_case "quantile on empty and single snapshots" `Quick
        test_quantile_empty_and_single;
      Alcotest.test_case "report byte-identical across reruns" `Quick
        test_report_byte_identical_across_reruns;
      Alcotest.test_case "report on an empty registry is graceful" `Quick
        test_report_empty_is_graceful;
    ] )
