(* Wire-format roundtrips and malformed-input rejection for every
   codec: CCTP objects, mainchain transactions/blocks, Latus
   transactions/references/blocks. *)

open Zen_crypto
open Zendoo

let checkb = Alcotest.(check bool)
let ok = function Ok v -> v | Error e -> Alcotest.fail e
let amount n = Amount.of_int_exn n

(* ---- primitives ---- *)

let test_wire_primitives () =
  let w = Wire.writer () in
  Wire.u8 w 200;
  Wire.u32 w 123456;
  Wire.u63 w max_int;
  Wire.bool w true;
  Wire.varbytes w "hello";
  Wire.list w (Wire.u8 w) [ 1; 2; 3 ];
  Wire.option w (Wire.u32 w) None;
  Wire.option w (Wire.u32 w) (Some 9);
  let r = Wire.reader (Wire.contents w) in
  let ( let* ) = Wire.( let* ) in
  let result =
    let* a = Wire.read_u8 r in
    let* b = Wire.read_u32 r in
    let* c = Wire.read_u63 r in
    let* d = Wire.read_bool r in
    let* e = Wire.read_varbytes r in
    let* f = Wire.read_list r Wire.read_u8 in
    let* g = Wire.read_option r Wire.read_u32 in
    let* h = Wire.read_option r Wire.read_u32 in
    let* () = Wire.expect_end r in
    Ok (a, b, c, d, e, f, g, h)
  in
  match result with
  | Error e -> Alcotest.fail e
  | Ok (a, b, c, d, e, f, g, h) ->
    checkb "all fields" true
      (a = 200 && b = 123456 && c = max_int && d && e = "hello"
     && f = [ 1; 2; 3 ] && g = None && h = Some 9)

let test_wire_truncation () =
  let w = Wire.writer () in
  Wire.u32 w 7;
  let full = Wire.contents w in
  let truncated = String.sub full 0 2 in
  checkb "truncated rejected" true
    (Result.is_error (Wire.read_u32 (Wire.reader truncated)));
  (* oversize list count *)
  let w = Wire.writer () in
  Wire.u32 w 99999999;
  checkb "huge list rejected" true
    (Result.is_error
       (Wire.read_list ~max:10 (Wire.reader (Wire.contents w)) Wire.read_u8))

(* A count field under the structural [max] but impossible to satisfy
   with the remaining bytes must be rejected up front — no allocation
   or iteration on the attacker's say-so. *)
let test_wire_count_dos () =
  let checks = Alcotest.(check string) in
  (* hollow list: 1_000_000 (< default max 2^20) elements claimed,
     zero bytes follow the count *)
  let w = Wire.writer () in
  Wire.u32 w 1_000_000;
  (match Wire.read_list (Wire.reader (Wire.contents w)) Wire.read_u8 with
  | Ok _ -> Alcotest.fail "hollow list accepted"
  | Error e ->
    checks "list error" "wire: list count exceeds remaining input" e);
  (* declared element floor: 10 hash-sized elements cannot fit in 20
     bytes even though the count alone looks harmless *)
  let w = Wire.writer () in
  Wire.u32 w 10;
  Wire.fixed w (String.make 20 'x');
  checkb "min_elem_size rejects" true
    (Result.is_error
       (Wire.read_list ~min_elem_size:Hash.size
          (Wire.reader (Wire.contents w))
          Wire.read_hash));
  (* hollow varbytes: claimed length far beyond the buffer *)
  let w = Wire.writer () in
  Wire.u32 w 500_000;
  Wire.fixed w "abc";
  (match Wire.read_varbytes (Wire.reader (Wire.contents w)) with
  | Ok _ -> Alcotest.fail "hollow varbytes accepted"
  | Error e ->
    checks "varbytes error" "wire: varbytes length exceeds remaining input" e);
  (* the guard must not break well-formed input *)
  let w = Wire.writer () in
  Wire.list w (Wire.u8 w) [ 7; 8 ];
  checkb "legit list ok" true
    (Wire.read_list (Wire.reader (Wire.contents w)) Wire.read_u8 = Ok [ 7; 8 ]);
  let w = Wire.writer () in
  Wire.varbytes w "payload";
  checkb "legit varbytes ok" true
    (Wire.read_varbytes (Wire.reader (Wire.contents w)) = Ok "payload")

(* ---- CCTP objects ---- *)

let sample_proofdata =
  Proofdata.
    [
      Field (Fp.of_int 42);
      Digest (Hash.of_string "pd");
      Uint 123456;
      Blob (String.make 100 'b');
    ]

let sample_cert =
  Withdrawal_certificate.make ~ledger_id:(Hash.of_string "sc") ~epoch_id:3
    ~quality:17
    ~bt_list:
      [
        Backward_transfer.make ~receiver_addr:(Hash.of_string "r1")
          ~amount:(amount 5);
        Backward_transfer.make ~receiver_addr:(Hash.of_string "r2")
          ~amount:(amount 7);
      ]
    ~proofdata:sample_proofdata ~proof:Zen_snark.Backend.dummy_proof

let test_wcert_roundtrip () =
  let decoded = ok (Codec.decode_wcert (Codec.encode_wcert sample_cert)) in
  checkb "same hash" true
    (Hash.equal
       (Withdrawal_certificate.hash sample_cert)
       (Withdrawal_certificate.hash decoded));
  checkb "same proof" true
    (Zen_snark.Backend.proof_equal sample_cert.proof decoded.proof)

let test_withdrawal_roundtrip () =
  List.iter
    (fun kind ->
      let m =
        Mainchain_withdrawal.make ~kind ~ledger_id:(Hash.of_string "sc")
          ~receiver:(Hash.of_string "recv") ~amount:(amount 999)
          ~nullifier:(Hash.of_string "nf") ~proofdata:sample_proofdata
          ~proof:Zen_snark.Backend.dummy_proof
      in
      let decoded = ok (Codec.decode_withdrawal (Codec.encode_withdrawal m)) in
      checkb "same hash" true
        (Hash.equal (Mainchain_withdrawal.hash m) (Mainchain_withdrawal.hash decoded)))
    [ Mainchain_withdrawal.Btr; Mainchain_withdrawal.Csw ]

let latus_family = Zen_latus.Circuits.make Zen_latus.Params.default

let sample_config =
  ok
    (Zen_latus.Node.config_for ~ledger_id:(Hash.of_string "cfg-sc")
       ~start_block:50 ~epoch_len:10 ~submit_len:3 latus_family)

let test_config_roundtrip () =
  let decoded = ok (Codec.decode_config (Codec.encode_config sample_config)) in
  checkb "same hash" true
    (Hash.equal (Sidechain_config.hash sample_config) (Sidechain_config.hash decoded));
  (* the decoded vk still verifies what the original verified *)
  checkb "vk digest" true
    (Hash.equal
       (Zen_snark.Backend.vk_digest sample_config.wcert_vk)
       (Zen_snark.Backend.vk_digest decoded.wcert_vk))

let test_config_decode_validates () =
  (* Corrupting epoch_len below the minimum must fail decoding: the
     decoder re-runs registration validation. *)
  let raw = Bytes.of_string (Codec.encode_config sample_config) in
  (* epoch_len is the u63 after ledger_id (32) + start_block (8). *)
  Bytes.set raw 40 '\001';
  for i = 41 to 47 do
    Bytes.set raw i '\000'
  done;
  checkb "invalid config rejected" true
    (Result.is_error (Codec.decode_config (Bytes.to_string raw)))

let test_trailing_bytes_rejected () =
  let enc = Codec.encode_wcert sample_cert ^ "junk" in
  checkb "trailing junk" true (Result.is_error (Codec.decode_wcert enc))

let test_wcert_hollow_bt_count_rejected () =
  (* Inflate the bt_list count of a valid encoding to 60000 (within the
     codec's structural max of 65536) without supplying the elements:
     the decoder must refuse before allocating or looping. The count is
     the u32 after ledger_id (32) + epoch_id (8) + quality (8). *)
  let raw = Bytes.of_string (Codec.encode_wcert sample_cert) in
  Bytes.set raw 48 '\x60';
  Bytes.set raw 49 '\xea';
  Bytes.set raw 50 '\x00';
  Bytes.set raw 51 '\x00';
  match Codec.decode_wcert (Bytes.to_string raw) with
  | Ok _ -> Alcotest.fail "hollow bt_list accepted"
  | Error e ->
    checkb "rejected by the count guard" true
      (e = "wire: list count exceeds remaining input")

(* ---- mainchain txs and blocks ---- *)

let test_mc_tx_roundtrips () =
  let open Zen_mainchain in
  let params = { Chain_state.default_params with pow = Pow.trivial } in
  let chain = ref (Chain.create ~params ~time:0 ()) in
  let w = Wallet.create ~seed:"wire" in
  let addr = Wallet.fresh_address w in
  for t = 1 to 4 do
    let b = ok (Miner.mine_empty !chain ~time:t ~miner_addr:addr) in
    chain := fst (ok (Chain.add_block !chain b))
  done;
  let st = Chain.tip_state !chain in
  let transfer =
    ok
      (Wallet.build_transfer w st
         ~outputs:
           [
             Tx.Coin { Tx.addr; amount = amount 123 };
             Tx.Ft
               (Forward_transfer.make ~ledger_id:(Hash.of_string "sc")
                  ~receiver_metadata:(String.make 64 'm')
                  ~amount:(amount 456));
           ]
         ~fee:(amount 10))
  in
  let samples =
    [
      Tx.Coinbase { height = 9; reward = { Tx.addr; amount = amount 50 } };
      transfer;
      Tx.Sc_create sample_config;
      Tx.Certificate sample_cert;
      Tx.Withdrawal_request
        (Mainchain_withdrawal.make ~kind:Mainchain_withdrawal.Csw
           ~ledger_id:(Hash.of_string "sc") ~receiver:addr ~amount:(amount 5)
           ~nullifier:(Hash.of_string "n") ~proofdata:[]
           ~proof:Zen_snark.Backend.dummy_proof);
    ]
  in
  List.iter
    (fun tx ->
      let decoded = ok (Mc_wire.decode_tx (Mc_wire.encode_tx tx)) in
      checkb "txid stable" true (Hash.equal (Tx.txid tx) (Tx.txid decoded)))
    samples;
  (* a whole block, signatures included *)
  let block, _ =
    ok (Miner.build_block !chain ~time:9 ~miner_addr:addr ~candidates:[ transfer ])
  in
  let decoded = ok (Mc_wire.decode_block (Mc_wire.encode_block block)) in
  checkb "block hash stable" true
    (Hash.equal (Block.hash block) (Block.hash decoded));
  (* the decoded block still passes full validation on a fork of the
     same parent state *)
  checkb "decoded block applies" true
    (Result.is_ok (Chain_state.apply_block (Chain.tip_state !chain) decoded))

(* ---- latus objects ---- *)

let test_sc_tx_roundtrips () =
  let open Zen_latus in
  let w = Sc_wallet.create ~seed:"scwire" in
  let addr = Sc_wallet.fresh_address w in
  let st = Sc_state.create Params.default in
  let coin = Utxo.make ~addr ~amount:(amount 500) ~nonce:(Hash.of_string "c") in
  let mst, _ = Result.get_ok (Mst.insert st.Sc_state.mst coin) in
  let st = Sc_state.with_mst st mst in
  let pay = ok (Sc_wallet.build_payment w st ~to_:addr ~amount:(amount 100)) in
  let bt = ok (Sc_wallet.build_backward_transfer w st ~utxo:coin ~mc_receiver:addr) in
  let fttx =
    Sc_tx.Forward_transfers_tx
      {
        mcid = Hash.of_string "mc";
        fts =
          [
            Forward_transfer.make ~ledger_id:Hash.zero
              ~receiver_metadata:(Sc_tx.ft_metadata ~receiver:addr ~payback:addr)
              ~amount:(amount 7);
          ];
      }
  in
  List.iter
    (fun tx ->
      let decoded = ok (Sc_wire.decode_tx (Sc_wire.encode_tx tx)) in
      checkb "sc txid stable" true
        (Hash.equal (Sc_tx.txid tx) (Sc_tx.txid decoded)))
    [ pay; bt; fttx ];
  (* decoded payment still validates (signatures survive the trip) *)
  let decoded_pay = ok (Sc_wire.decode_tx (Sc_wire.encode_tx pay)) in
  checkb "decoded payment validates" true
    (Result.is_ok (Sc_tx.validate st decoded_pay))

let test_sc_block_roundtrip () =
  let open Zen_latus in
  let open Zen_mainchain in
  (* A real forged block with a real MC reference. *)
  let params = { Chain_state.default_params with pow = Pow.trivial } in
  let chain = ref (Chain.create ~params ~time:0 ()) in
  let mw = Wallet.create ~seed:"scbwire" in
  let addr = Wallet.fresh_address mw in
  for t = 1 to 3 do
    let b = ok (Miner.mine_empty !chain ~time:t ~miner_addr:addr) in
    chain := fst (ok (Chain.add_block !chain b))
  done;
  let mc_block = Chain.tip_block !chain in
  let mref = ok (Mc_ref.build ~ledger_id:(Hash.of_string "sc") mc_block) in
  let fw = Sc_wallet.create ~seed:"scbwire.forger" in
  let faddr = Sc_wallet.fresh_address fw in
  let sk = Option.get (Sc_wallet.secret_for fw faddr) in
  let block =
    Sc_block.forge ~parent:Sc_block.genesis_parent ~height:0 ~slot:4 ~sk
      ~mc_refs:[ mref ] ~txs:[] ~state_hash:(Fp.of_int 77)
  in
  let decoded = ok (Sc_wire.decode_block (Sc_wire.encode_block block)) in
  checkb "sc block hash stable" true
    (Hash.equal (Sc_block.hash block) (Sc_block.hash decoded));
  checkb "signature survives" true (Sc_block.verify_signature decoded);
  (* the reference inside still verifies against the MC commitment *)
  (match decoded.Sc_block.mc_refs with
  | [ r ] ->
    checkb "decoded ref verifies" true
      (Result.is_ok (Mc_ref.verify ~ledger_id:(Hash.of_string "sc") r))
  | _ -> Alcotest.fail "lost the reference");
  checkb "measurable size" true (Sc_wire.block_size_bytes block > 100)

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:100 gen f)

let props =
  [
    prop "ft roundtrip"
      QCheck2.Gen.(pair (string_size (int_bound 100)) (int_bound 1_000_000))
      (fun (meta, amt) ->
        let ft =
          Forward_transfer.make ~ledger_id:(Hash.of_string meta)
            ~receiver_metadata:meta ~amount:(amount amt)
        in
        let w = Wire.writer () in
        Codec.write_ft w ft;
        match Codec.read_ft (Wire.reader (Wire.contents w)) with
        | Ok ft' -> Forward_transfer.equal ft ft'
        | Error _ -> false);
    prop "random bytes never crash the block decoder"
      QCheck2.Gen.(string_size (int_bound 400))
      (fun junk ->
        match Zen_mainchain.Mc_wire.decode_block junk with
        | Ok _ | Error _ -> true);
    prop "random bytes never crash the wcert decoder"
      QCheck2.Gen.(string_size (int_bound 400))
      (fun junk -> match Codec.decode_wcert junk with Ok _ | Error _ -> true);
  ]

let suite =
  ( "wire",
    [
      Alcotest.test_case "primitives" `Quick test_wire_primitives;
      Alcotest.test_case "truncation" `Quick test_wire_truncation;
      Alcotest.test_case "count DoS guards" `Quick test_wire_count_dos;
      Alcotest.test_case "hollow bt count" `Quick
        test_wcert_hollow_bt_count_rejected;
      Alcotest.test_case "wcert roundtrip" `Quick test_wcert_roundtrip;
      Alcotest.test_case "withdrawal roundtrip" `Quick test_withdrawal_roundtrip;
      Alcotest.test_case "config roundtrip" `Quick test_config_roundtrip;
      Alcotest.test_case "config decode validates" `Quick test_config_decode_validates;
      Alcotest.test_case "trailing bytes" `Quick test_trailing_bytes_rejected;
      Alcotest.test_case "mc tx/block roundtrips" `Quick test_mc_tx_roundtrips;
      Alcotest.test_case "sc tx roundtrips" `Quick test_sc_tx_roundtrips;
      Alcotest.test_case "sc block roundtrip" `Quick test_sc_block_roundtrip;
    ]
    @ props )
