(* Mutation fuzzing for the CCTP object codecs: single-byte flips and
   truncations of valid encodings must come back as [Error _] — never
   an exception — and anything the decoder does accept must re-encode
   to exactly the bytes it was given (the encoding is canonical, so a
   mutant that decodes is a different value, not a second spelling of
   the same one). *)

open Zen_crypto
open Zendoo

let checkb = Alcotest.(check bool)
let ok = function Ok v -> v | Error e -> Alcotest.fail e
let amount n = Amount.of_int_exn n

let family = Zen_latus.Circuits.make Zen_latus.Params.default

let sample_proofdata =
  Proofdata.
    [
      Field (Fp.of_int 7);
      Digest (Hash.of_string "fuzz-pd");
      Uint 99;
      Blob "opaque";
    ]

let sample_cert =
  Withdrawal_certificate.make ~ledger_id:(Hash.of_string "fuzz-sc")
    ~epoch_id:4 ~quality:9
    ~bt_list:
      [
        Backward_transfer.make ~receiver_addr:(Hash.of_string "fuzz-r")
          ~amount:(amount 11);
      ]
    ~proofdata:sample_proofdata ~proof:Zen_snark.Backend.dummy_proof

let sample_withdrawal =
  Mainchain_withdrawal.make ~kind:Mainchain_withdrawal.Csw
    ~ledger_id:(Hash.of_string "fuzz-sc") ~receiver:(Hash.of_string "fuzz-w")
    ~amount:(amount 21) ~nullifier:(Hash.of_string "fuzz-nf")
    ~proofdata:sample_proofdata ~proof:Zen_snark.Backend.dummy_proof

let sample_config =
  ok
    (Zen_latus.Node.config_for ~ledger_id:(Hash.of_string "fuzz-cfg")
       ~start_block:40 ~epoch_len:8 ~submit_len:3 family)

(* Each codec under test: (name, valid encoding, decode-then-re-encode).
   The closure hides the value type so one generic property covers all
   three. *)
let codecs =
  [
    ( "wcert",
      Codec.encode_wcert sample_cert,
      fun s -> Result.map Codec.encode_wcert (Codec.decode_wcert s) );
    ( "withdrawal",
      Codec.encode_withdrawal sample_withdrawal,
      fun s -> Result.map Codec.encode_withdrawal (Codec.decode_withdrawal s)
    );
    ( "config",
      Codec.encode_config sample_config,
      fun s -> Result.map Codec.encode_config (Codec.decode_config s) );
  ]

let flip s ~pos ~delta =
  let b = Bytes.of_string s in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor delta));
  Bytes.to_string b

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:500 gen f)

let mutation_props =
  List.concat_map
    (fun (name, valid, redecode) ->
      let len = String.length valid in
      [
        prop
          (Printf.sprintf "%s: flips never raise, Ok is canonical" name)
          QCheck2.Gen.(pair (int_bound (len - 1)) (int_range 1 255))
          (fun (pos, delta) ->
            let mutant = flip valid ~pos ~delta in
            match redecode mutant with
            | Error _ -> true
            | Ok reencoded -> String.equal reencoded mutant);
        prop
          (Printf.sprintf "%s: truncations are rejected" name)
          QCheck2.Gen.(int_bound (len - 1))
          (fun keep ->
            match redecode (String.sub valid 0 keep) with
            | Error _ -> true
            | Ok _ -> false);
        prop
          (Printf.sprintf "%s: random bytes never raise" name)
          QCheck2.Gen.(string_size (int_bound (len * 2)))
          (fun junk ->
            match redecode junk with Ok _ | Error _ -> true);
      ])
    codecs

(* Round-trips are the identity on valid encodings — structurally and
   byte-for-byte. *)
let test_roundtrip_identity () =
  let cert' = ok (Codec.decode_wcert (Codec.encode_wcert sample_cert)) in
  checkb "wcert hash" true
    (Hash.equal
       (Withdrawal_certificate.hash sample_cert)
       (Withdrawal_certificate.hash cert'));
  checkb "wcert bytes" true
    (String.equal (Codec.encode_wcert sample_cert) (Codec.encode_wcert cert'));
  let w' =
    ok (Codec.decode_withdrawal (Codec.encode_withdrawal sample_withdrawal))
  in
  checkb "withdrawal hash" true
    (Hash.equal
       (Mainchain_withdrawal.hash sample_withdrawal)
       (Mainchain_withdrawal.hash w'));
  checkb "withdrawal bytes" true
    (String.equal
       (Codec.encode_withdrawal sample_withdrawal)
       (Codec.encode_withdrawal w'));
  let c' = ok (Codec.decode_config (Codec.encode_config sample_config)) in
  checkb "config hash" true
    (Hash.equal (Sidechain_config.hash sample_config) (Sidechain_config.hash c'));
  checkb "config bytes" true
    (String.equal (Codec.encode_config sample_config) (Codec.encode_config c'))

(* The vk arity field is strict lowercase hex: re-spelling it with an
   uppercase digit must be refused, not silently normalised. *)
let test_vk_encoding_not_malleable () =
  let vk = sample_config.Sidechain_config.wcert_vk in
  let enc = Zen_snark.Backend.vk_encode vk in
  checkb "vk roundtrips" true
    (match Zen_snark.Backend.vk_decode enc with
    | Some vk' ->
      Hash.equal
        (Zen_snark.Backend.vk_digest vk)
        (Zen_snark.Backend.vk_digest vk')
    | None -> false);
  (* force a hex digit uppercase; if none is a letter, make one 'A'
     from '0' instead (still a case change in the strict alphabet) *)
  let b = Bytes.of_string enc in
  let changed = ref false in
  for i = 32 to 39 do
    let c = Bytes.get b i in
    if (not !changed) && c >= 'a' && c <= 'f' then begin
      Bytes.set b i (Char.uppercase_ascii c);
      changed := true
    end
  done;
  if not !changed then Bytes.set b 32 'A';
  checkb "uppercase spelling refused" true
    (Zen_snark.Backend.vk_decode (Bytes.to_string b) = None)

let suite =
  ( "codec-fuzz",
    [
      Alcotest.test_case "roundtrip identity" `Quick test_roundtrip_identity;
      Alcotest.test_case "vk not malleable" `Quick test_vk_encoding_not_malleable;
    ]
    @ mutation_props )
