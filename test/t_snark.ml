(* R1CS, gadgets, the simulated backend and recursive composition. *)

open Zen_crypto
open Zen_snark

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let ok = function Ok v -> v | Error e -> Alcotest.fail e

(* A tiny multiplication circuit: public (x, y), witness z with x*z = y. *)
let synth_divides x y =
  let ctx = Gadget.create () in
  let wx = Gadget.input ctx x in
  let wy = Gadget.input ctx y in
  let z_val = if Fp.is_zero x then Fp.zero else Fp.div y x in
  let wz = Gadget.witness ctx z_val in
  let prod = Gadget.mul ctx wx wz in
  Gadget.assert_eq ~label:"xz=y" ctx prod wy;
  Gadget.finalize ~name:"divides" ctx

let test_r1cs_satisfied () =
  let c, public, witness = synth_divides (Fp.of_int 6) (Fp.of_int 42) in
  checkb "satisfied" true (Result.is_ok (R1cs.satisfied c ~public ~witness));
  checki "public arity" 2 (R1cs.num_public c)

let test_r1cs_unsatisfied () =
  let c, public, _ = synth_divides (Fp.of_int 6) (Fp.of_int 42) in
  let bad = [| Fp.of_int 5; Fp.of_int 30 |] in
  (match R1cs.satisfied c ~public ~witness:bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad witness accepted");
  (* wrong arity *)
  match R1cs.satisfied c ~public ~witness:[||] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty witness accepted"

let test_r1cs_digest_stability () =
  let c1, _, _ = synth_divides (Fp.of_int 6) (Fp.of_int 42) in
  let c2, _, _ = synth_divides (Fp.of_int 7) (Fp.of_int 7) in
  checkb "value-independent digest" true
    (Hash.equal (R1cs.digest c1) (R1cs.digest c2))

let test_gadget_bits () =
  let ctx = Gadget.create () in
  let w = Gadget.input ctx (Fp.of_int 1234) in
  let bits = Gadget.to_bits ctx w 11 in
  checki "11 bits" 11 (List.length bits);
  let c, public, witness = Gadget.finalize ~name:"bits" ctx in
  checkb "satisfied" true (Result.is_ok (R1cs.satisfied c ~public ~witness));
  (* value too large for the width *)
  let ctx2 = Gadget.create () in
  let w2 = Gadget.input ctx2 (Fp.of_int 5000) in
  Alcotest.check_raises "overflow"
    (Invalid_argument "Gadget.to_bits: value does not fit") (fun () ->
      ignore (Gadget.to_bits ctx2 w2 11))

let test_gadget_is_zero_select () =
  let run v sel_a =
    let ctx = Gadget.create () in
    let w = Gadget.input ctx (Fp.of_int v) in
    let z = Gadget.is_zero ctx w in
    let s =
      Gadget.select ctx ~cond:z (Gadget.const_int 100) (Gadget.const_int 200)
    in
    let c, public, witness = Gadget.finalize ~name:"sel" ctx in
    checkb "sat" true (Result.is_ok (R1cs.satisfied c ~public ~witness));
    checki "select" sel_a (Fp.to_int (Gadget.value s))
  in
  run 0 100;
  run 7 200

let test_gadget_poseidon_matches_native () =
  let a = Fp.of_int 111 and b = Fp.of_int 222 in
  let ctx = Gadget.create () in
  let wa = Gadget.input ctx a and wb = Gadget.input ctx b in
  let h = Gadget.poseidon2 ctx wa wb in
  checkb "in-circuit = native" true
    (Fp.equal (Gadget.value h) (Poseidon.hash2 a b));
  let hl = Gadget.poseidon_hash ctx [ wa; wb; h ] in
  checkb "sponge matches" true
    (Fp.equal (Gadget.value hl)
       (Poseidon.hash_list [ a; b; Poseidon.hash2 a b ]));
  let c, public, witness = Gadget.finalize ~name:"poseidon" ctx in
  checkb "sat" true (Result.is_ok (R1cs.satisfied c ~public ~witness))

let test_gadget_merkle_matches_smt () =
  let t =
    List.fold_left
      (fun t (p, v) -> Smt.set t p (Fp.of_int v))
      (Smt.create ~depth:6)
      [ (0, 5); (9, 9); (33, 1); (63, 7) ]
  in
  let pos = 9 in
  let proof = Smt.prove t pos in
  let ctx = Gadget.create () in
  let leaf = Gadget.const (Smt.leaf_hash (Some (Fp.of_int 9))) in
  let path_bits =
    List.init 6 (fun i -> Gadget.const_int ((pos lsr i) land 1))
  in
  let siblings = List.map Gadget.const (Smt.proof_siblings proof) in
  let root = Gadget.merkle_root ctx ~leaf ~path_bits ~siblings in
  checkb "in-circuit root = smt root" true
    (Fp.equal (Gadget.value root) (Smt.root t))

let test_backend_roundtrip () =
  let c, public, witness = synth_divides (Fp.of_int 3) (Fp.of_int 21) in
  let pk, vk = Backend.setup c in
  let proof = ok (Backend.prove pk ~public ~witness) in
  checkb "verifies" true (Backend.verify vk ~public proof);
  checkb "wrong public" false
    (Backend.verify vk ~public:[| Fp.of_int 3; Fp.of_int 22 |] proof);
  checkb "dummy proof" false (Backend.verify vk ~public Backend.dummy_proof);
  checki "proof size" Backend.proof_size_bytes
    (String.length (Backend.proof_encode proof))

let test_backend_refuses_bad_witness () =
  let c, public, _ = synth_divides (Fp.of_int 3) (Fp.of_int 21) in
  let pk, _ = Backend.setup c in
  match Backend.prove pk ~public ~witness:[| Fp.of_int 9 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unsatisfying witness produced a proof"

let test_backend_vk_encoding () =
  let c, _, _ = synth_divides Fp.one Fp.one in
  let _, vk = Backend.setup c in
  match Backend.vk_decode (Backend.vk_encode vk) with
  | None -> Alcotest.fail "vk decode"
  | Some vk' ->
    checkb "digest stable" true
      (Hash.equal (Backend.vk_digest vk) (Backend.vk_digest vk'))

let test_backend_deterministic_setup () =
  let c1, _, _ = synth_divides Fp.one Fp.one in
  let c2, _, _ = synth_divides (Fp.of_int 9) (Fp.of_int 9) in
  let _, vk1 = Backend.setup c1 and _, vk2 = Backend.setup c2 in
  checkb "same circuit, same vk" true
    (Hash.equal (Backend.vk_digest vk1) (Backend.vk_digest vk2))

(* ---- recursion ---- *)

let synth_step s x =
  let ctx = Gadget.create () in
  let w_from = Gadget.input ctx s in
  let s_to = Poseidon.hash2 s x in
  let w_to = Gadget.input ctx s_to in
  let wx = Gadget.witness ctx x in
  Gadget.assert_eq ~label:"step" ctx (Gadget.poseidon2 ctx w_from wx) w_to;
  (Gadget.finalize ~name:"rec.step" ctx, s_to)

let make_chain sys pk vk s0 n =
  let rec go s i acc =
    if i = n then List.rev acc
    else begin
      let (c, public, witness), s_to = synth_step s (Fp.of_int (1000 + i)) in
      ignore c;
      let proof = ok (Backend.prove pk ~public ~witness) in
      let tp =
        ok (Recursive.of_base sys ~vk ~s_from:s ~s_to ~extra:[||] proof)
      in
      go s_to (i + 1) (tp :: acc)
    end
  in
  go s0 0 []

let setup_rec () =
  let (c, _, _), _ = synth_step Fp.zero Fp.zero in
  let pk, vk = Backend.setup c in
  let sys = Recursive.create ~name:"t" ~base_vks:[ vk ] in
  (sys, pk, vk)

let test_recursion_balanced () =
  let sys, pk, vk = setup_rec () in
  let ts = make_chain sys pk vk (Fp.of_int 1) 9 in
  let top = ok (Recursive.fold_balanced sys ts) in
  checkb "verifies" true (Recursive.verify sys top);
  checki "covers 9" 9 (Recursive.base_count top);
  checki "depth ceil(log2 9)" 4 (Recursive.depth top);
  checkb "endpoints" true
    (Fp.equal (Recursive.s_from top) (Fp.of_int 1)
    && Fp.equal (Recursive.s_to top) (Recursive.s_to (List.nth ts 8)))

let test_recursion_sequential_shape () =
  let sys, pk, vk = setup_rec () in
  let ts = make_chain sys pk vk (Fp.of_int 1) 5 in
  let top = ok (Recursive.fold_sequential sys ts) in
  checki "degenerate depth" 4 (Recursive.depth top);
  checkb "verifies" true (Recursive.verify sys top)

let test_recursion_rejects_gap () =
  let sys, pk, vk = setup_rec () in
  let ts = make_chain sys pk vk (Fp.of_int 1) 3 in
  match ts with
  | [ t1; _; t3 ] -> (
    match Recursive.merge sys t1 t3 with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "non-adjacent merge accepted")
  | _ -> Alcotest.fail "expected 3"

let test_recursion_rejects_unregistered_vk () =
  let sys, pk, vk = setup_rec () in
  ignore vk;
  (* Another circuit not registered in sys. *)
  let c2, public, witness = synth_divides (Fp.of_int 2) (Fp.of_int 4) in
  ignore c2;
  let pk2, vk2 = Backend.setup c2 in
  ignore pk;
  let proof = ok (Backend.prove pk2 ~public ~witness) in
  match
    Recursive.of_base sys ~vk:vk2 ~s_from:(Fp.of_int 2) ~s_to:(Fp.of_int 4)
      ~extra:[||] proof
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unregistered base vk accepted"

let test_recursion_empty_fold () =
  let sys, _, _ = setup_rec () in
  match Recursive.fold_balanced sys [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty fold accepted"

(* ---- fold equivalence (property) ----

   [fold_balanced] (any domain count) and [fold_sequential] must accept
   exactly the same inputs: every adjacency-ordered prefix of a chain is
   accepted by both with the same endpoints and base count, and a chain
   broken by dropping an interior element (the odd-carry hazard: the
   gap can land anywhere in the tree) is rejected by both. One 17-link
   chain is built once and sliced, so the property costs 17 base proofs
   total, not 17 per case. *)

let chain17 =
  lazy
    (let sys, pk, vk = setup_rec () in
     (sys, make_chain sys pk vk (Fp.of_int 1) 17))

let take n l = List.filteri (fun i _ -> i < n) l

let drop_nth n l = List.filteri (fun i _ -> i <> n) l

let fold_equivalence_prop (len, domains, gap) =
  let sys, chain = Lazy.force chain17 in
  let ts = take len chain in
  (* [gap]: drop an interior link so the endpoints stay but adjacency
     breaks; only meaningful when at least 3 links remain. *)
  let ts, broken =
    match gap with
    | Some k when len >= 3 -> (drop_nth (1 + (k mod (len - 2))) ts, true)
    | _ -> (ts, false)
  in
  let pool = Pool.get ~domains in
  let bal = Recursive.fold_balanced ~pool sys ts in
  let seq = Recursive.fold_sequential sys ts in
  match (bal, seq) with
  | Ok b, Ok s ->
    (not broken)
    && Recursive.verify sys b && Recursive.verify sys s
    && Fp.equal (Recursive.s_from b) (Recursive.s_from s)
    && Fp.equal (Recursive.s_to b) (Recursive.s_to s)
    && Recursive.base_count b = Recursive.base_count s
    && Recursive.base_count b = List.length ts
  | Error _, Error _ -> broken
  | Ok _, Error _ | Error _, Ok _ -> false

let test_fold_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"fold_balanced = fold_sequential" ~count:60
       ~print:(fun (len, domains, gap) ->
         Printf.sprintf "len=%d domains=%d gap=%s" len domains
           (match gap with None -> "-" | Some k -> string_of_int k))
       QCheck2.Gen.(
         triple (int_range 1 17) (oneofl [ 1; 2; 4 ])
           (option (int_range 0 14)))
       fold_equivalence_prop)

let test_fold_equivalence_exhaustive_lengths () =
  (* The qcheck generator samples; the acceptance criterion names every
     length 1..17 (odd-carry shapes) — check them all with each pool. *)
  let sys, chain = Lazy.force chain17 in
  List.iter
    (fun domains ->
      let pool = Pool.get ~domains in
      for len = 1 to 17 do
        let ts = take len chain in
        let b = ok (Recursive.fold_balanced ~pool sys ts) in
        let s = ok (Recursive.fold_sequential sys ts) in
        checkb
          (Printf.sprintf "len %d domains %d verifies" len domains)
          true
          (Recursive.verify sys b && Recursive.verify sys s);
        checki
          (Printf.sprintf "len %d domains %d count" len domains)
          len (Recursive.base_count b);
        checkb
          (Printf.sprintf "len %d domains %d endpoints agree" len domains)
          true
          (Fp.equal (Recursive.s_to b) (Recursive.s_to s))
      done)
    [ 1; 2; 4 ]

let suite =
  ( "snark",
    [
      Alcotest.test_case "r1cs satisfied" `Quick test_r1cs_satisfied;
      Alcotest.test_case "r1cs unsatisfied" `Quick test_r1cs_unsatisfied;
      Alcotest.test_case "r1cs digest stable" `Quick test_r1cs_digest_stability;
      Alcotest.test_case "gadget bits" `Quick test_gadget_bits;
      Alcotest.test_case "gadget is_zero/select" `Quick test_gadget_is_zero_select;
      Alcotest.test_case "gadget poseidon" `Quick test_gadget_poseidon_matches_native;
      Alcotest.test_case "gadget merkle" `Quick test_gadget_merkle_matches_smt;
      Alcotest.test_case "backend roundtrip" `Quick test_backend_roundtrip;
      Alcotest.test_case "backend soundness" `Quick test_backend_refuses_bad_witness;
      Alcotest.test_case "backend vk encoding" `Quick test_backend_vk_encoding;
      Alcotest.test_case "backend deterministic" `Quick test_backend_deterministic_setup;
      Alcotest.test_case "recursion balanced" `Quick test_recursion_balanced;
      Alcotest.test_case "recursion sequential" `Quick test_recursion_sequential_shape;
      Alcotest.test_case "recursion gap" `Quick test_recursion_rejects_gap;
      Alcotest.test_case "recursion vk registry" `Quick
        test_recursion_rejects_unregistered_vk;
      Alcotest.test_case "recursion empty" `Quick test_recursion_empty_fold;
      test_fold_equivalence;
      Alcotest.test_case "fold equivalence exhaustive" `Quick
        test_fold_equivalence_exhaustive_lengths;
    ] )
