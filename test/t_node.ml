(* End-to-end integration of the Latus node against the mainchain:
   full withdrawal-epoch cycles (Figs. 13–14), heartbeat certificates,
   the quality rule, ceasing and ceased-sidechain withdrawals, BTR
   round-trips, and MC-fork-driven sidechain rollback. *)

open Zen_crypto
open Zen_mainchain
open Zen_latus
open Zendoo

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let ok = function Ok v -> v | Error e -> Alcotest.fail e
let amount n = Amount.of_int_exn n

let params = Params.default
let family = Circuits.make params

(* One world per test: mainchain + one Latus sidechain. *)
type world = {
  mutable chain : Chain.t;
  mutable mempool : Mempool.t;
  mc_wallet : Wallet.t;
  miner : Hash.t;
  node : Node.t;
  ledger_id : Hash.t;
  config : Sidechain_config.t;
  mutable time : int;
}

let mine w =
  w.time <- w.time + 1;
  let b, _ =
    ok
      (Miner.build_block w.chain ~time:w.time ~miner_addr:w.miner
         ~candidates:(Mempool.txs w.mempool))
  in
  let c, _ = ok (Chain.add_block w.chain b) in
  w.chain <- c;
  w.mempool <- Mempool.remove_included w.mempool b

let mine_n w n =
  for _ = 1 to n do
    mine w
  done

let submit w tx = w.mempool <- Mempool.add w.mempool tx

(* Standard world: fund 5 blocks, create SC with epoch_len 4 and
   submit_len 2, activation right after creation. *)
let make_world seed =
  let mc_params = { Chain_state.default_params with pow = Pow.trivial } in
  let chain = Chain.create ~params:mc_params ~time:0 () in
  let mc_wallet = Wallet.create ~seed in
  let miner = Wallet.fresh_address mc_wallet in
  let ledger_id =
    Sidechain_config.derive_ledger_id ~creator:miner ~nonce:7
  in
  let w =
    {
      chain;
      mempool = Mempool.empty;
      mc_wallet;
      miner;
      node = Obj.magic 0;
      ledger_id;
      config = Obj.magic 0;
      time = 0;
    }
  in
  mine_n w 5;
  (* heights 1..5 *)
  let config =
    ok
      (Node.config_for ~ledger_id ~start_block:7 ~epoch_len:4 ~submit_len:2
         family)
  in
  submit w (Tx.Sc_create config);
  mine w;
  (* height 6; sc active from 7; epoch 0 = 7..10 *)
  let forger = Sc_wallet.create ~seed:(seed ^ ".forger") in
  let (_ : Hash.t) = Sc_wallet.fresh_address forger in
  let node = ok (Node.create ~config ~params ~family ~forger ()) in
  { w with node; config }

let do_ft w ~receiver ~payback ~amt =
  let tx =
    ok
      (Wallet.build_forward_transfer w.mc_wallet (Chain.tip_state w.chain)
         ~ledger_id:w.ledger_id
         ~receiver_metadata:(Sc_tx.ft_metadata ~receiver ~payback)
         ~amount:amt ~fee:Amount.zero)
  in
  submit w tx

let forge w = ok (Node.forge w.node ~mc:w.chain ~slot:w.time ())

let build_and_submit_cert w =
  match ok (Node.build_certificate w.node ~mc:w.chain) with
  | None -> Alcotest.fail "expected a certificate"
  | Some tx ->
    submit w tx;
    tx

let sc_state_on_mc w =
  Option.get (Sc_ledger.find (Chain.tip_state w.chain).scs w.ledger_id)

(* ---- tests ---- *)

let test_full_epoch_cycle () =
  let w = make_world "cycle" in
  let user = Sc_wallet.create ~seed:"cycle.user" in
  let user_addr = Sc_wallet.fresh_address user in
  let payback = Wallet.fresh_address w.mc_wallet in
  mine w;
  (* height 7: epoch 0 underway *)
  do_ft w ~receiver:user_addr ~payback ~amt:(amount 500_000);
  mine_n w 4;
  (* past height 10: epoch 0 complete on MC *)
  let b = forge w in
  checkb "block forged" true (b <> None);
  checki "user funded on SC" 500_000
    (Amount.to_int (Sc_wallet.balance user (Node.tip_state w.node)));
  (* BT back to MC in epoch 1 *)
  let mc_recv = Wallet.fresh_address w.mc_wallet in
  let u = List.hd (Sc_wallet.utxos user (Node.next_block_state w.node)) in
  let bt =
    ok
      (Sc_wallet.build_backward_transfer user (Node.next_block_state w.node)
         ~utxo:u ~mc_receiver:mc_recv)
  in
  ok (Node.submit_tx w.node bt);
  let _ = forge w in
  (* certificate for epoch 0 (empty BT list) accepted *)
  let (_ : Tx.t) = build_and_submit_cert w in
  mine w;
  checki "epoch 0 certified" 1 (List.length (sc_state_on_mc w).certs);
  (* run epoch 1 to completion (MC heights 11..14); keep the tip at 15
     so the epoch-1 certificate lands inside its window (15..16) *)
  mine_n w 3;
  let _ = forge w in
  let (_ : Tx.t) = build_and_submit_cert w in
  mine w;
  let sc = sc_state_on_mc w in
  checki "epoch 1 certified" 2 (List.length sc.certs);
  checki "safeguard balance decreased" 0 (Amount.to_int sc.balance);
  (* BT payout exists (immature until window end) *)
  let payout_exists =
    Utxo_set.fold (Chain.tip_state w.chain).utxos ~init:false
      ~f:(fun acc _ c -> acc || Hash.equal c.Utxo_set.addr mc_recv)
  in
  checkb "payout utxo created" true payout_exists

let test_heartbeat_empty_epoch () =
  let w = make_world "heartbeat" in
  (* No FTs at all; epoch 0 passes; the certificate must still work. *)
  mine_n w 5;
  let b = forge w in
  checkb "refs-only block" true (b <> None);
  let (_ : Tx.t) = build_and_submit_cert w in
  mine w;
  let sc = sc_state_on_mc w in
  checki "heartbeat cert accepted" 1 (List.length sc.certs);
  checki "no backward transfers" 0
    (List.length (List.hd sc.certs).cert.bt_list)

let test_cert_outside_window_rejected () =
  let w = make_world "window" in
  mine_n w 5;
  let _ = forge w in
  (* Build the cert but delay submission past the window
     (window for epoch 0 = heights 11..12). *)
  let cert_tx =
    match ok (Node.build_certificate w.node ~mc:w.chain) with
    | Some tx -> tx
    | None -> Alcotest.fail "no cert"
  in
  mine_n w 3;
  (* now at height 14: too late, and the SC has ceased *)
  let st = Chain.tip_state w.chain in
  (match
     Chain_state.apply_tx st ~height:(st.height + 1) ~block_hash:Hash.zero
       cert_tx
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "late certificate accepted");
  checkb "ceased" true
    (Sc_ledger.is_ceased st.scs w.ledger_id ~height:st.height)

let test_quality_rule () =
  let w = make_world "quality" in
  mine_n w 5;
  let _ = forge w in
  let cert_tx = build_and_submit_cert w in
  mine w;
  checki "accepted" 1 (List.length (sc_state_on_mc w).certs);
  (* Re-submitting the same certificate (equal quality) must fail. *)
  let st = Chain.tip_state w.chain in
  match
    Chain_state.apply_tx st ~height:(st.height + 1) ~block_hash:Hash.zero
      cert_tx
  with
  | Error e ->
    checkb "quality error" true
      (String.length e > 0
      && (String.sub e 0 4 = "cert" || String.length e > 4))
  | Ok _ -> Alcotest.fail "equal-quality certificate accepted"

let test_withheld_cert_ceases_then_csw () =
  let w = make_world "cease" in
  let user = Sc_wallet.create ~seed:"cease.user" in
  let user_addr = Sc_wallet.fresh_address user in
  let payback = Wallet.fresh_address w.mc_wallet in
  mine w;
  do_ft w ~receiver:user_addr ~payback ~amt:(amount 900_000);
  mine_n w 4;
  let _ = forge w in
  let (_ : Tx.t) = build_and_submit_cert w in
  mine w;
  (* Withhold the epoch-1 certificate; mine past its window
     (epoch 1 = 11..14, window 15..16). *)
  mine_n w 7;
  checkb "ceased" true
    (Sc_ledger.is_ceased (Chain.tip_state w.chain).scs w.ledger_id
       ~height:(Chain.tip_state w.chain).height);
  (* CSW for the user's coin against the epoch-0 committed state. *)
  let committed = Option.get (Node.state_at_epoch_end w.node ~epoch:0) in
  let u = List.hd (Sc_wallet.utxos user committed) in
  let mc_recv = Wallet.fresh_address w.mc_wallet in
  let sc = sc_state_on_mc w in
  let csw =
    ok
      (Node.create_withdrawal_request w.node ~kind:Mainchain_withdrawal.Csw
         ~utxo:u ~receiver:mc_recv
         ~reference_block:(Sc_ledger.reference_block_for sc)
         ())
  in
  submit w (Tx.Withdrawal_request csw);
  mine w;
  let sc = sc_state_on_mc w in
  checki "balance drained" 0 (Amount.to_int sc.balance);
  let coins = Utxo_set.coins_of_addr (Chain.tip_state w.chain).utxos mc_recv in
  checki "payout" 1 (List.length coins);
  (* Replay must be blocked by the nullifier. *)
  let st = Chain.tip_state w.chain in
  match
    Sc_ledger.check_withdrawal st.scs ~request:csw ~height:(st.height + 1)
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "nullifier replay accepted"

let test_csw_rejected_while_active () =
  let w = make_world "active-csw" in
  let user = Sc_wallet.create ~seed:"acsw.user" in
  let user_addr = Sc_wallet.fresh_address user in
  let payback = Wallet.fresh_address w.mc_wallet in
  mine w;
  do_ft w ~receiver:user_addr ~payback ~amt:(amount 100_000);
  mine_n w 4;
  let _ = forge w in
  let (_ : Tx.t) = build_and_submit_cert w in
  mine w;
  let committed = Option.get (Node.state_at_epoch_end w.node ~epoch:0) in
  let u = List.hd (Sc_wallet.utxos user committed) in
  let sc = sc_state_on_mc w in
  let csw =
    ok
      (Node.create_withdrawal_request w.node ~kind:Mainchain_withdrawal.Csw
         ~utxo:u ~receiver:(Wallet.fresh_address w.mc_wallet)
         ~reference_block:(Sc_ledger.reference_block_for sc)
         ())
  in
  let st = Chain.tip_state w.chain in
  match
    Sc_ledger.check_withdrawal st.scs ~request:csw ~height:(st.height + 1)
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "CSW accepted on an active sidechain"

let test_btr_full_flow () =
  let w = make_world "btr" in
  let user = Sc_wallet.create ~seed:"btr.user" in
  let user_addr = Sc_wallet.fresh_address user in
  let payback = Wallet.fresh_address w.mc_wallet in
  mine w;
  do_ft w ~receiver:user_addr ~payback ~amt:(amount 300_000);
  mine_n w 4;
  let _ = forge w in
  let (_ : Tx.t) = build_and_submit_cert w in
  mine w;
  (* The user requests withdrawal via the MAINCHAIN (BTR). *)
  let committed = Option.get (Node.state_at_epoch_end w.node ~epoch:0) in
  let u = List.hd (Sc_wallet.utxos user committed) in
  let mc_recv = Wallet.fresh_address w.mc_wallet in
  let sc = sc_state_on_mc w in
  let btr =
    ok
      (Node.create_withdrawal_request w.node ~kind:Mainchain_withdrawal.Btr
         ~utxo:u ~receiver:mc_recv
         ~reference_block:(Sc_ledger.reference_block_for sc)
         ())
  in
  submit w (Tx.Withdrawal_request btr);
  mine w;
  (* BTR does not move funds on the MC. *)
  checki "balance unchanged" 300_000 (Amount.to_int (sc_state_on_mc w).balance);
  (* Sync epoch 1 into the sidechain: the BTR becomes a BT. *)
  mine_n w 2;
  (* completes epoch 1 (heights 11..14) *)
  let _ = forge w in
  let st = Node.tip_state w.node in
  checki "btr became bt" 1 (List.length (Sc_state.backward_transfers st));
  let (_ : Tx.t) = build_and_submit_cert w in
  mine w;
  let sc = sc_state_on_mc w in
  checki "funds withdrawn via cert" 0 (Amount.to_int sc.balance)

let test_mc_reorg_rolls_back_sidechain () =
  let w = make_world "reorg" in
  mine_n w 2;
  (* heights 7..8 *)
  let fork_base = w.chain in
  mine w;
  (* height 9 on branch A *)
  let _ = forge w in
  checki "synced to 9" 9 (Node.mc_synced_height w.node);
  let sc_height_before = Node.sc_height w.node in
  (* Build branch B: two blocks on top of height 8. *)
  let alt = ref fork_base in
  let alt_miner = Wallet.fresh_address (Wallet.create ~seed:"reorg-alt") in
  let b1, _ = ok (Miner.build_block !alt ~time:500 ~miner_addr:alt_miner ~candidates:[]) in
  let c1, _ = ok (Chain.add_block !alt b1) in
  alt := c1;
  let b2, _ = ok (Miner.build_block !alt ~time:501 ~miner_addr:alt_miner ~candidates:[]) in
  let c, _ = ok (Chain.add_block w.chain b1) in
  w.chain <- c;
  let c, outcome = ok (Chain.add_block w.chain b2) in
  w.chain <- c;
  (match outcome with
  | Chain.Reorg _ -> ()
  | _ -> Alcotest.fail "expected a reorg");
  (* Next forge must roll back the SC block referencing the orphaned
     MC block and re-reference the new branch. *)
  let b = forge w in
  checkb "reforged" true (b <> None);
  checki "re-synced to new tip" 10 (Node.mc_synced_height w.node);
  checkb "sc chain rolled back and rebuilt" true
    (Node.sc_height w.node <= sc_height_before + 1);
  (* All current refs are on the best chain. *)
  let all_on_best =
    List.for_all
      (fun (blk : Sc_block.t) ->
        List.for_all
          (fun r -> Chain.on_best_chain w.chain (Mc_ref.block_hash r))
          blk.mc_refs)
      (Node.blocks w.node)
  in
  checkb "refs consistent" true all_on_best

let test_mc_ref_verification () =
  let w = make_world "mcref" in
  let user = Sc_wallet.create ~seed:"mcref.user" in
  let user_addr = Sc_wallet.fresh_address user in
  let payback = Wallet.fresh_address w.mc_wallet in
  mine w;
  do_ft w ~receiver:user_addr ~payback ~amt:(amount 1_000);
  mine w;
  (* The block that carried the FT: *)
  let mc_block = Chain.tip_block w.chain in
  let r = ok (Mc_ref.build ~ledger_id:w.ledger_id mc_block) in
  checkb "has data" true (Mc_ref.has_data r);
  checkb "verifies" true (Result.is_ok (Mc_ref.verify ~ledger_id:w.ledger_id r));
  (* Dropping the FT from the ref must break verification. *)
  let forged = { r with Mc_ref.fts = [] } in
  checkb "forged slice rejected" true
    (Result.is_error (Mc_ref.verify ~ledger_id:w.ledger_id forged));
  (* A sidechain with no data in this block gets an absence proof. *)
  let other = Sidechain_config.derive_ledger_id ~creator:payback ~nonce:9 in
  let r2 = ok (Mc_ref.build ~ledger_id:other mc_block) in
  checkb "absence" false (Mc_ref.has_data r2);
  checkb "absence verifies" true
    (Result.is_ok (Mc_ref.verify ~ledger_id:other r2))

let test_delta_guard_blocks_stale_withdrawal () =
  let w = make_world "delta" in
  let user = Sc_wallet.create ~seed:"delta.user" in
  let user_addr = Sc_wallet.fresh_address user in
  let payback = Wallet.fresh_address w.mc_wallet in
  mine w;
  do_ft w ~receiver:user_addr ~payback ~amt:(amount 200_000);
  mine_n w 4;
  let _ = forge w in
  let (_ : Tx.t) = build_and_submit_cert w in
  mine w;
  (* The user SPENDS the coin in epoch 1. *)
  let committed0 = Option.get (Node.state_at_epoch_end w.node ~epoch:0) in
  let u = List.hd (Sc_wallet.utxos user committed0) in
  let other = Sc_wallet.create ~seed:"delta.other" in
  let other_addr = Sc_wallet.fresh_address other in
  let pay =
    ok
      (Sc_wallet.build_payment user (Node.next_block_state w.node)
         ~to_:other_addr ~amount:(amount 200_000))
  in
  ok (Node.submit_tx w.node pay);
  mine_n w 3;
  let _ = forge w in
  let (_ : Tx.t) = build_and_submit_cert w in
  mine w;
  checki "two epochs certified" 2 (List.length (sc_state_on_mc w).certs);
  (* A withdrawal against the OLD epoch-0 state must be refused by the
     Appendix-A delta chain: the slot was touched in epoch 1. *)
  let sc = sc_state_on_mc w in
  match
    Node.create_withdrawal_request w.node ~kind:Mainchain_withdrawal.Btr
      ~utxo:u ~receiver:payback
      ~reference_block:(Sc_ledger.reference_block_for sc)
      ~as_of_epoch:0 ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stale withdrawal passed the delta guard"

(* A follower (non-forging node) must accept exactly the blocks the
   forger produced — and reject every tampering. *)
let test_follower_validation () =
  let w = make_world "follow" in
  let user = Sc_wallet.create ~seed:"follow.user" in
  let user_addr = Sc_wallet.fresh_address user in
  let payback = Wallet.fresh_address w.mc_wallet in
  mine w;
  do_ft w ~receiver:user_addr ~payback ~amt:(amount 250_000);
  mine_n w 3;
  let genesis_state = Node.next_block_state w.node in
  let block =
    match forge w with Some b -> b | None -> Alcotest.fail "no block"
  in
  let ctx =
    {
      Sc_validate.config = w.config;
      params;
      prev_state = genesis_state;
      prev_hash = Sc_block.genesis_parent;
      prev_height = -1;
      mc_synced = w.config.start_block - 1;
      expected_leader = None;
    }
  in
  (* the genuine block validates and reproduces the state *)
  let state = ok (Sc_validate.validate ctx ~mc:w.chain block) in
  checkb "state hash matches" true
    (Fp.equal (Sc_state.hash state) block.state_hash);
  checkb "matches forger state" true
    (Fp.equal (Sc_state.hash state) (Sc_state.hash (Node.tip_state w.node)));
  (* tampered variants are rejected *)
  let rejects what b =
    match Sc_validate.validate ctx ~mc:w.chain b with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (what ^ " accepted")
  in
  rejects "wrong state hash" { block with Sc_block.state_hash = Fp.one };
  rejects "wrong height" { block with Sc_block.height = 7 };
  rejects "wrong parent"
    { block with Sc_block.parent = Hash.of_string "imposter" };
  (* dropping a reference breaks contiguity *)
  (match block.mc_refs with
  | _ :: rest -> rejects "gap in references" { block with Sc_block.mc_refs = rest }
  | [] -> Alcotest.fail "expected references");
  (* stripping an FT from a reference breaks its commitment proof *)
  let strip (r : Mc_ref.t) = { r with Mc_ref.fts = [] } in
  let tampered_refs =
    List.map (fun r -> if Mc_ref.has_data r then strip r else r) block.mc_refs
  in
  rejects "stripped reference" { block with Sc_block.mc_refs = tampered_refs };
  (* the signature covers the tx list *)
  rejects "appended tx invalidates signature"
    {
      block with
      Sc_block.txs =
        block.txs
        @ [ Sc_tx.Forward_transfers_tx { mcid = Hash.zero; fts = [] } ];
    }

(* A follower replays the forger's whole chain across an epoch
   boundary, applying the same reset rule, and lands on the same
   state. *)
let test_follower_syncs_whole_chain () =
  let w = make_world "fsync" in
  let user = Sc_wallet.create ~seed:"fsync.user" in
  let user_addr = Sc_wallet.fresh_address user in
  let payback = Wallet.fresh_address w.mc_wallet in
  mine w;
  do_ft w ~receiver:user_addr ~payback ~amt:(amount 400_000);
  mine_n w 4;
  let _ = forge w in
  (* payment in epoch 1 *)
  let user2_addr = Sc_wallet.fresh_address (Sc_wallet.create ~seed:"fsync.u2") in
  let pay =
    ok
      (Sc_wallet.build_payment user (Node.next_block_state w.node)
         ~to_:user2_addr ~amount:(amount 150_000))
  in
  ok (Node.submit_tx w.node pay);
  mine_n w 3;
  let _ = forge w in
  let blocks = Node.blocks w.node in
  checki "two blocks forged" 2 (List.length blocks);
  (* follower replay *)
  let schedule = Epoch.of_config w.config in
  let final_state =
    List.fold_left
      (fun (state, prev_hash, prev_height, mc_synced) (b : Sc_block.t) ->
        let ctx =
          {
            Sc_validate.config = w.config;
            params;
            prev_state = state;
            prev_hash;
            prev_height;
            mc_synced;
            expected_leader = None;
          }
        in
        let state' = ok (Sc_validate.validate ctx ~mc:w.chain b) in
        let mc_synced' =
          match List.rev b.mc_refs with
          | last :: _ -> Mc_ref.height last
          | [] -> mc_synced
        in
        (* apply the epoch-boundary reset exactly like the forger *)
        let next_state =
          if
            mc_synced' >= Epoch.last_height schedule ~epoch:0
            && mc_synced < Epoch.last_height schedule ~epoch:0
          then Sc_state.reset_epoch state'
          else state'
        in
        (next_state, Sc_block.hash b, b.height, mc_synced'))
      (Sc_state.create params, Sc_block.genesis_parent, -1,
       w.config.start_block - 1)
      blocks
    |> fun (s, _, _, _) -> s
  in
  checkb "follower state = forger state" true
    (Fp.equal
       (Sc_state.hash final_state)
       (Sc_state.hash (Node.next_block_state w.node)))

let test_leader_enforcement () =
  let w = make_world "leader" in
  (* Give the FORGER's address stake so leadership is decidable. *)
  let forger_stake_wallet = Sc_wallet.create ~seed:"leader.staker" in
  let staker_addr = Sc_wallet.fresh_address forger_stake_wallet in
  let payback = Wallet.fresh_address w.mc_wallet in
  mine w;
  do_ft w ~receiver:staker_addr ~payback ~amt:(amount 1_000_000);
  mine_n w 4;
  (* Bootstrap: empty stake distribution, enforce_leader still forges. *)
  let b = ok (Node.forge w.node ~mc:w.chain ~slot:0 ~enforce_leader:true ()) in
  checkb "bootstrap forging allowed" true (b <> None);
  (* Now the MST holds stake owned by [staker_addr], which is NOT a
     forger key of this node: the node must skip slots it does not
     lead (all of them). *)
  let leader = Node.leader_for_slot w.node ~slot:5 in
  checkb "a leader exists" true (leader = Some staker_addr);
  (* force a tx so there would be something to forge *)
  let pay =
    Sc_wallet.build_payment forger_stake_wallet (Node.next_block_state w.node)
      ~to_:staker_addr ~amount:(amount 1)
  in
  (match pay with Ok tx -> ok (Node.submit_tx w.node tx) | Error e -> Alcotest.fail e);
  (match ok (Node.forge w.node ~mc:w.chain ~slot:5 ~enforce_leader:true ()) with
  | None -> ()
  | Some _ -> Alcotest.fail "forged without leadership");
  (* Without enforcement the same forge succeeds. *)
  let b = ok (Node.forge w.node ~mc:w.chain ~slot:5 ()) in
  checkb "permissive forging works" true (b <> None)

let test_refs_clipped_at_epoch_boundary () =
  let w = make_world "clip" in
  (* Mine deep into epoch 1 before the sidechain ever forges: epoch 0
     is 7..10, epoch 1 is 11..14. *)
  mine_n w 7;
  (* MC height 13 *)
  checki "mc deep in epoch 1" 13 (Chain.height w.chain);
  (* First block must reference only epoch 0 (7..10) and complete it. *)
  let b = match ok (Node.forge w.node ~mc:w.chain ~slot:1 ()) with
    | Some b -> b
    | None -> Alcotest.fail "no block"
  in
  checki "refs clipped to epoch 0" 4 (List.length b.mc_refs);
  checki "synced exactly to the boundary" 10 (Node.mc_synced_height w.node);
  (* The next block picks up epoch 1's available blocks (11..13). *)
  let b2 = match ok (Node.forge w.node ~mc:w.chain ~slot:2 ()) with
    | Some b -> b
    | None -> Alcotest.fail "no second block"
  in
  checki "next block refs epoch 1" 3 (List.length b2.mc_refs);
  checki "synced to mc tip" 13 (Node.mc_synced_height w.node)

let suite =
  ( "node-e2e",
    [
      Alcotest.test_case "full epoch cycle" `Quick test_full_epoch_cycle;
      Alcotest.test_case "heartbeat empty epoch" `Quick test_heartbeat_empty_epoch;
      Alcotest.test_case "cert window" `Quick test_cert_outside_window_rejected;
      Alcotest.test_case "quality rule" `Quick test_quality_rule;
      Alcotest.test_case "cease then csw" `Quick test_withheld_cert_ceases_then_csw;
      Alcotest.test_case "csw while active" `Quick test_csw_rejected_while_active;
      Alcotest.test_case "btr full flow" `Quick test_btr_full_flow;
      Alcotest.test_case "mc reorg rollback" `Quick test_mc_reorg_rolls_back_sidechain;
      Alcotest.test_case "mc ref verification" `Quick test_mc_ref_verification;
      Alcotest.test_case "delta guard" `Quick test_delta_guard_blocks_stale_withdrawal;
      Alcotest.test_case "follower validation" `Quick test_follower_validation;
      Alcotest.test_case "follower chain sync" `Quick test_follower_syncs_whole_chain;
      Alcotest.test_case "leader enforcement" `Quick test_leader_enforcement;
      Alcotest.test_case "epoch boundary clipping" `Quick
        test_refs_clipped_at_epoch_boundary;
    ] )
