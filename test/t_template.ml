(* Compile-once circuit templates (PR 5): for any witness, proving
   through a compiled template must produce byte-identical proofs to
   fresh circuit re-synthesis — for all five circuit families and both
   SMT path directions — while keeping R1cs.finalize (synthesis +
   constraint digesting) off the per-prove hot path. *)

open Zen_crypto
open Zen_latus
open Zendoo

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let params = { Params.default with mst_depth = 8 }
let family = lazy (Circuits.make params)

let with_templates b f =
  let prev = Circuits.use_templates () in
  Circuits.set_use_templates b;
  Fun.protect ~finally:(fun () -> Circuits.set_use_templates prev) f

(* Prove the same step through both pipelines and insist on identical
   bytes. A successful re-synthesis prove also re-derives the circuit
   digest and compares it against the template-compiled proving key
   (Circuits.prove_with), so digest equality is checked en passant. *)
let prove_both_ways state step =
  let f = Lazy.force family in
  let p_tpl, _, from_t, to_t =
    with_templates true (fun () -> ok (Circuits.prove_step f state step))
  in
  let p_syn, _, from_s, to_s =
    with_templates false (fun () -> ok (Circuits.prove_step f state step))
  in
  checkb "proof bytes identical" true
    (Zen_snark.Backend.proof_equal p_tpl p_syn);
  checkb "endpoints identical" true
    (Fp.equal from_t from_s && Fp.equal to_t to_s);
  p_tpl

let utxo i =
  Utxo.make
    ~addr:(Hash.of_string (Printf.sprintf "tpl-addr-%d" (i mod 3)))
    ~amount:(Amount.of_int_exn ((i * 7919) + 1))
    ~nonce:(Hash.of_string (Printf.sprintf "tpl-nonce-%d" i))

(* A nonce whose MST slot has the requested low path bit: the first
   Merkle level's left/right direction, so both template-compiled SMT
   path shapes are exercised deterministically. *)
let utxo_with_parity parity =
  let rec search i =
    let u = utxo i in
    if Utxo.position ~mst_depth:params.Params.mst_depth u land 1 = parity
    then u
    else search (i + 1)
  in
  search 0

let state_with utxos =
  List.fold_left
    (fun st u -> ok (Sc_tx.apply_step st (Sc_tx.Insert u)))
    (Sc_state.create params) utxos

let test_slot_write_both_directions () =
  let left = utxo_with_parity 0 and right = utxo_with_parity 1 in
  let st = state_with [ left; right ] in
  (* Remove: occupied -> empty, at a left child and at a right child. *)
  ignore (prove_both_ways st (Sc_tx.Remove left));
  ignore (prove_both_ways st (Sc_tx.Remove right));
  (* Insert: empty -> occupied, both directions again. *)
  let st0 = Sc_state.create params in
  ignore (prove_both_ways st0 (Sc_tx.Insert left));
  ignore (prove_both_ways st0 (Sc_tx.Insert right))

let test_qcheck_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random witnesses: template = re-synthesis"
       ~count:12
       QCheck2.Gen.(
         triple (int_range 0 40) (int_range 1 12) (int_range 1 1_000_000))
       (fun (salt, n_utxos, bt_amount) ->
         let utxos = List.init n_utxos (fun i -> utxo (salt + (i * 13))) in
         (* Slots are nonce-derived, so random salts can collide; keep
            the insertable prefix. *)
         let st, inserted =
           List.fold_left
             (fun (st, kept) u ->
               match Sc_tx.apply_step st (Sc_tx.Insert u) with
               | Ok st' -> (st', u :: kept)
               | Error _ -> (st, kept))
             (Sc_state.create params, [])
             utxos
         in
         let bt =
           Backward_transfer.make
             ~receiver_addr:(Hash.of_string (Printf.sprintf "bt-%d" salt))
             ~amount:(Amount.of_int_exn bt_amount)
         in
         (* Families 1-3: remove, insert (fresh slot), append_bt. *)
         (match inserted with
         | victim :: _ -> ignore (prove_both_ways st (Sc_tx.Remove victim))
         | [] -> ());
         let rec fresh i =
           let u = utxo (salt + 1000 + i) in
           match Sc_tx.apply_step st (Sc_tx.Insert u) with
           | Ok _ -> u
           | Error _ -> fresh (i + 1)
         in
         ignore (prove_both_ways st (Sc_tx.Insert (fresh 0)));
         ignore (prove_both_ways st (Sc_tx.Append_bt bt));
         (* Family 4: wcert binding. *)
         let f = Lazy.force family in
         let proofdata =
           Proofdata.[ Digest (Hash.of_string "tpl-block"); Field (Fp.of_int salt) ]
         in
         let wcert_args g =
           g f ~quality:(salt + 1)
             ~bt_root:(Backward_transfer.list_root [ bt ])
             ~end_prev_epoch:(Hash.of_string "prev")
             ~end_epoch:(Hash.of_string "end")
             ~proofdata ~s_prev:(Fp.of_int (salt + 2))
             ~s_last:(Fp.of_int (salt + 3))
         in
         let w_tpl =
           with_templates true (fun () ->
               ok (wcert_args Circuits.prove_wcert_binding))
         in
         let w_syn =
           with_templates false (fun () ->
               ok (wcert_args Circuits.prove_wcert_binding))
         in
         (* Family 5: ownership over the committed MST. *)
         let own u =
           Circuits.prove_ownership f ~mst:st.Sc_state.mst ~utxo:u
             ~reference_block:(Hash.of_string "ref")
             ~receiver:(Hash.of_string "recv") ~proofdata
         in
         let owned =
           match inserted with
           | u :: _ ->
             let o_tpl = with_templates true (fun () -> ok (own u)) in
             let o_syn = with_templates false (fun () -> ok (own u)) in
             Zen_snark.Backend.proof_equal o_tpl o_syn
           | [] -> true
         in
         Zen_snark.Backend.proof_equal w_tpl w_syn && owned))

(* The acceptance criterion made observable: with templates on, proving
   increments snark.prove but never R1cs.finalize; with templates off,
   every prove re-synthesizes. *)
let test_finalize_off_hot_path () =
  Zen_obs.Registry.with_enabled @@ fun () ->
  let finalizes = Zen_obs.Counter.make "snark.r1cs.finalize" in
  let proves = Zen_obs.Counter.make "snark.prove" in
  let hits = Zen_obs.Counter.make "latus.template.hits" in
  let misses = Zen_obs.Counter.make "latus.template.misses" in
  let f = Lazy.force family in
  let st = Sc_state.create params in
  let step i = Sc_tx.Insert (utxo i) in
  let snap () =
    ( Zen_obs.Counter.value finalizes,
      Zen_obs.Counter.value proves,
      Zen_obs.Counter.value hits,
      Zen_obs.Counter.value misses )
  in
  let fin0, prv0, hit0, mis0 = snap () in
  with_templates true (fun () ->
      for i = 0 to 4 do
        ignore (ok (Circuits.prove_step f st (step i)))
      done);
  let fin1, prv1, hit1, mis1 = snap () in
  checki "no finalize on the template hot path" 0 (fin1 - fin0);
  checki "five proves" 5 (prv1 - prv0);
  checki "five template hits" 5 (hit1 - hit0);
  checki "no misses" 0 (mis1 - mis0);
  with_templates false (fun () -> ignore (ok (Circuits.prove_step f st (step 0))));
  let fin2, _, hit2, mis2 = snap () in
  checkb "re-synthesis finalizes" true (fin2 > fin1);
  checki "no hit" 0 (hit2 - hit1);
  checki "one miss" 1 (mis2 - mis1)

(* Gadget-level: an evaluation-mode run fills exactly the assignment
   synthesis would have produced, including materialization decisions
   inside the Poseidon rounds. *)
let test_eval_assignment_matches_synthesis () =
  let body ctx (a, b) =
    let wa = Zen_snark.Gadget.input ctx a in
    let wb = Zen_snark.Gadget.witness ctx b in
    let h = Zen_snark.Gadget.poseidon2 ctx wa wb in
    let bits = Zen_snark.Gadget.to_bits ctx wb 20 in
    let sum = Zen_snark.Gadget.sum (h :: bits) in
    Zen_snark.Gadget.assert_eq ctx sum
      (Zen_snark.Gadget.witness ctx (Zen_snark.Gadget.value sum))
  in
  let v = (Fp.of_int 123456, Fp.of_int 987654) in
  let shape = Zen_snark.Gadget.create () in
  body shape v;
  let circuit, pub_s, wit_s = Zen_snark.Gadget.finalize ~name:"eval-eq" shape in
  let eval = Zen_snark.Gadget.create_eval () in
  body eval v;
  let pub_e, wit_e = Zen_snark.Gadget.assignment eval in
  checkb "public identical" true (pub_s = pub_e);
  checkb "witness identical" true (wit_s = wit_e);
  checkb "assignment satisfies the template" true
    (Result.is_ok (Zen_snark.R1cs.satisfied circuit ~public:pub_e ~witness:wit_e))

let suite =
  ( "template",
    [
      Alcotest.test_case "slot write, both SMT directions" `Quick
        test_slot_write_both_directions;
      test_qcheck_equivalence;
      Alcotest.test_case "finalize off the hot path" `Quick
        test_finalize_off_hot_path;
      Alcotest.test_case "eval assignment = synthesis" `Quick
        test_eval_assignment_matches_synthesis;
    ] )
