let () =
  Alcotest.run "zendoo"
    [
      T_bignum.suite;
      T_crypto.suite;
      T_merkle.suite;
      T_pool.suite;
      T_obs.suite;
      T_report.suite;
      T_ec_schnorr.suite;
      T_snark.suite;
      T_template.suite;
      T_cctp.suite;
      T_mainchain.suite;
      T_latus.suite;
      T_node.suite;
      T_baselines.suite;
      T_sim.suite;
      T_adversarial.suite;
      T_faults.suite;
      T_props.suite;
      T_verifier_extra.suite;
      T_wire.suite;
      T_scale.suite;
      T_aggregate.suite;
      T_codec_fuzz.suite;
      T_workload.suite;
    ]
