(* Mainchain verification at scale: the verification cache (mechanics,
   negative caching, batch/sequential equivalence on Domain pools), the
   many-sidechain harness registration path, and the two hot-path
   regressions — reorg replay must not re-verify first-sight-verified
   certificate proofs, and duplicate submissions must be answered from
   the cache. *)

open Zen_crypto
open Zen_mainchain
open Zen_sim
open Zendoo

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let ok = function Ok v -> v | Error e -> Alcotest.fail e

let params = Zen_latus.Params.default
let family = Zen_latus.Circuits.make params
let wcert_vk = (Zen_latus.Circuits.wcert_keys family).Zen_latus.Circuits.vk

(* The cache is process-global; every test starts from a clean slate
   and restores the defaults so suite order never matters. *)
let with_clean_cache f =
  Verifier.Cache.clear ();
  Verifier.Cache.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Verifier.Cache.set_enabled true;
      Verifier.Cache.set_capacity 4096;
      Verifier.Cache.clear ())
    f

let prev = Hash.of_string "scale-prev"
let cur = Hash.of_string "scale-cur"
let proofdata = Proofdata.[ Digest Hash.zero; Field Fp.one; Blob "" ]

let valid_proof =
  lazy
    (ok
       (Zen_latus.Circuits.prove_wcert_binding family ~quality:1
          ~bt_root:(Backward_transfer.list_root []) ~end_prev_epoch:prev
          ~end_epoch:cur ~proofdata ~s_prev:Fp.zero ~s_last:Fp.zero))

(* [quality = 1] verifies against [Lazy.force valid_proof]; any other
   quality contradicts the proof's statement and must verify false. *)
let cert ~epoch ~quality =
  Withdrawal_certificate.make ~ledger_id:(Hash.of_string "scale-sc")
    ~epoch_id:epoch ~quality ~bt_list:[] ~proofdata
    ~proof:(Lazy.force valid_proof)

let job ~epoch ~quality =
  Verifier.wcert_job ~vk:wcert_vk ~cert:(cert ~epoch ~quality)
    ~end_prev_epoch:prev ~end_epoch:cur

(* ---- cache mechanics ---- *)

let test_cache_hit_miss_stats () =
  with_clean_cache (fun () ->
      let j = job ~epoch:0 ~quality:1 in
      checkb "first sight verifies" true (Verifier.run_job j);
      checkb "second sight verifies" true (Verifier.run_job j);
      let s = Verifier.Cache.stats () in
      checki "one miss" 1 s.Verifier.Cache.misses;
      checki "one hit" 1 s.Verifier.Cache.hits;
      checki "one insertion" 1 s.Verifier.Cache.insertions;
      checki "no evictions" 0 s.Verifier.Cache.evictions;
      checki "one entry" 1 (Verifier.Cache.size ());
      (* a different certificate is a different key *)
      checkb "other epoch verifies" true (Verifier.run_job (job ~epoch:1 ~quality:1));
      checki "two entries" 2 (Verifier.Cache.size ());
      Verifier.Cache.clear ();
      checki "cleared" 0 (Verifier.Cache.size ());
      checki "stats cleared" 0 (Verifier.Cache.stats ()).Verifier.Cache.hits)

let test_cache_negative_caching () =
  with_clean_cache (fun () ->
      let bad = job ~epoch:0 ~quality:2 in
      checkb "invalid proof rejected" false (Verifier.run_job bad);
      checkb "still rejected from cache" false (Verifier.run_job bad);
      let s = Verifier.Cache.stats () in
      checki "rejection cached" 1 s.Verifier.Cache.hits;
      (* the cached rejection never flips the accept decision *)
      checkb "valid sibling unaffected" true
        (Verifier.run_job (job ~epoch:0 ~quality:1)))

let test_cache_disabled () =
  with_clean_cache (fun () ->
      Verifier.Cache.set_enabled false;
      let j = job ~epoch:7 ~quality:1 in
      checkb "verifies without cache" true (Verifier.run_job j);
      checkb "verifies again" true (Verifier.run_job j);
      let s = Verifier.Cache.stats () in
      checki "no hits when disabled" 0 s.Verifier.Cache.hits;
      checki "no misses when disabled" 0 s.Verifier.Cache.misses;
      checki "nothing stored" 0 (Verifier.Cache.size ()))

let test_cache_eviction () =
  with_clean_cache (fun () ->
      Verifier.Cache.set_capacity 4;
      for e = 0 to 5 do
        ignore (Verifier.run_job (job ~epoch:e ~quality:1) : bool)
      done;
      checki "bounded at capacity" 4 (Verifier.Cache.size ());
      checki "two evicted" 2 (Verifier.Cache.stats ()).Verifier.Cache.evictions;
      (* FIFO: the oldest entries are gone, the newest survive *)
      let hits0 = (Verifier.Cache.stats ()).Verifier.Cache.hits in
      ignore (Verifier.run_job (job ~epoch:5 ~quality:1) : bool);
      checki "newest still cached" (hits0 + 1)
        (Verifier.Cache.stats ()).Verifier.Cache.hits;
      let misses0 = (Verifier.Cache.stats ()).Verifier.Cache.misses in
      ignore (Verifier.run_job (job ~epoch:0 ~quality:1) : bool);
      checki "oldest was evicted" (misses0 + 1)
        (Verifier.Cache.stats ()).Verifier.Cache.misses;
      (* shrinking evicts down to the new bound *)
      Verifier.Cache.set_capacity 2;
      checki "shrunk" 2 (Verifier.Cache.size ());
      checkb "capacity floor" true
        (try
           Verifier.Cache.set_capacity 0;
           false
         with Invalid_argument _ -> true))

(* ---- batch verification: bit-identical to sequential ---- *)

let test_batch_matches_sequential () =
  (* Alternating valid/invalid jobs: the expected decisions are known
     by construction. *)
  let jobs = List.init 12 (fun i -> job ~epoch:i ~quality:(1 + (i mod 2))) in
  let expected = List.init 12 (fun i -> i mod 2 = 0) in
  List.iter
    (fun cache_on ->
      List.iter
        (fun domains ->
          with_clean_cache (fun () ->
              Verifier.Cache.set_enabled cache_on;
              let run () =
                if domains = 1 then Verifier.verify_batch jobs
                else
                  Pool.with_pool ~domains (fun pool ->
                      Verifier.verify_batch ~pool jobs)
              in
              let first = run () in
              checkb
                (Printf.sprintf "cache %b domains %d first pass" cache_on domains)
                true (first = expected);
              (* the second pass is served from the cache when enabled;
                 decisions must not change either way *)
              let hits0 = (Verifier.Cache.stats ()).Verifier.Cache.hits in
              let second = run () in
              checkb
                (Printf.sprintf "cache %b domains %d second pass" cache_on
                   domains)
                true (second = expected);
              if cache_on then
                checki "second pass fully cached" (hits0 + 12)
                  (Verifier.Cache.stats ()).Verifier.Cache.hits))
        [ 1; 2; 4 ])
    [ true; false ]

(* ---- many-sidechain registration (the O(n^2) append / nonce bug) ---- *)

let test_many_sidechain_registration () =
  with_clean_cache (fun () ->
      let h = Harness.create ~seed:"scale-reg" () in
      Harness.fund h ~blocks:3;
      let scs =
        List.init 64 (fun i ->
            ok
              (Harness.add_latus h
                 ~name:(Printf.sprintf "sc%d" i)
                 ~family ~epoch_len:40 ~submit_len:5 ~activation_delay:30 ()))
      in
      checki "all registered" 64 (List.length (Harness.sidechains h));
      (* registration order is preserved (the tick drive order) *)
      List.iteri
        (fun i (sc : Harness.sidechain) ->
          checkb
            (Printf.sprintf "order %d" i)
            true
            (String.equal sc.name (Printf.sprintf "sc%d" i)))
        (Harness.sidechains h);
      (* every ledger id is distinct (the old [List.length + 1] nonce
         could collide after removals; the monotonic counter cannot) *)
      let ids = List.map (fun (sc : Harness.sidechain) -> sc.ledger_id) scs in
      let distinct =
        List.length (List.sort_uniq Hash.compare ids) = List.length ids
      in
      checkb "ledger ids distinct" true distinct;
      (* and the mainchain ledger agrees *)
      let st = Chain.tip_state h.chain in
      List.iter
        (fun id -> checkb "on MC" true (Option.is_some (Sc_ledger.find st.scs id)))
        ids)

(* ---- reorg replay must not re-verify accepted proofs ---- *)

let certified_epochs h (sc : Harness.sidechain) =
  let st = Chain.tip_state h.Harness.chain in
  match Sc_ledger.find st.scs sc.ledger_id with
  | None -> []
  | Some s ->
    List.map
      (fun (c : Sc_ledger.cert_record) ->
        c.Sc_ledger.cert.Withdrawal_certificate.epoch_id)
      s.Sc_ledger.certs

let test_reorg_replay_uses_cache () =
  with_clean_cache (fun () ->
      let h = Harness.create ~seed:"scale-reorg" () in
      Harness.fund h ~blocks:3;
      let sc =
        ok
          (Harness.add_latus h ~name:"sc" ~family ~epoch_len:3 ~submit_len:3
             ~activation_delay:1 ())
      in
      (* tick until the first certificate lands on the mainchain *)
      let rec advance n =
        if n = 0 then Alcotest.fail "no certificate within budget"
        else if certified_epochs h sc = [] then begin
          Harness.tick h;
          advance (n - 1)
        end
      in
      advance 20;
      checkb "epoch 0 certified" true (certified_epochs h sc = [ 0 ]);
      (* orphan the certificate block; the harness reinjects the
         disconnected certificate into the mempool *)
      let s0 = Verifier.Cache.stats () in
      Harness.force_reorg h ~depth:1;
      Harness.mine h;
      let s1 = Verifier.Cache.stats () in
      checkb "cert re-accepted after reorg" true (certified_epochs h sc = [ 0 ]);
      checki "replay never re-verified" 0
        (s1.Verifier.Cache.misses - s0.Verifier.Cache.misses);
      checkb "replay served from cache" true
        (s1.Verifier.Cache.hits - s0.Verifier.Cache.hits >= 1))

(* ---- duplicate submissions are answered from the cache, and the
        acceptance decisions match a cache-disabled world ---- *)

let run_world ~cache ~plan seed =
  Verifier.Cache.clear ();
  Verifier.Cache.set_enabled cache;
  let faults =
    match plan with
    | [] -> None
    | p -> Some (Faults.create ~seed:9 p)
  in
  let h = Harness.create ?faults ~seed () in
  Harness.fund h ~blocks:3;
  let sc =
    ok
      (Harness.add_latus h ~name:"sc" ~family ~epoch_len:3 ~submit_len:3
         ~activation_delay:1 ())
  in
  Harness.tick_n h 14;
  (h, sc)

let test_duplicate_submissions_hit_cache () =
  with_clean_cache (fun () ->
      let plan =
        [
          Faults.Cert_fault { epoch = 0; fault = Faults.Duplicate 2 };
          Faults.Cert_fault { epoch = 1; fault = Faults.Duplicate 2 };
        ]
      in
      let h, sc = run_world ~cache:true ~plan "scale-dup" in
      let with_cache = certified_epochs h sc in
      checkb "epochs certified under duplication" true
        (List.mem 0 with_cache && List.mem 1 with_cache);
      let s = Verifier.Cache.stats () in
      checkb "duplicates answered from cache" true (s.Verifier.Cache.hits > 0);
      checkb "each proof verified once" true
        (s.Verifier.Cache.misses < s.Verifier.Cache.hits + s.Verifier.Cache.misses);
      (* the same world with the cache disabled reaches the same
         acceptance decisions *)
      let h', sc' = run_world ~cache:false ~plan "scale-dup" in
      checkb "decisions identical without cache" true
        (certified_epochs h' sc' = with_cache);
      checki "cache stayed cold" 0 (Verifier.Cache.stats ()).Verifier.Cache.hits)

(* ---- hot-path regressions ---- *)

(* The enabled flag and capacity are plain [Atomic.t]s read on every
   [run_job]; toggling them from one domain while others verify must
   never corrupt a verdict (the seed read the flag unsynchronised,
   which is UB under the OCaml memory model). Verdicts depend only on
   the proof, never on cache state, so workers can assert exact
   outcomes while the toggler spins. *)
let test_concurrent_toggle_keeps_verdicts () =
  with_clean_cache (fun () ->
      let stop = Atomic.make false in
      let toggler =
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              Verifier.Cache.set_enabled false;
              Verifier.Cache.set_capacity 4;
              Verifier.Cache.set_enabled true;
              Verifier.Cache.set_capacity 4096
            done)
      in
      let worker good =
        Domain.spawn (fun () ->
            let sound = ref true in
            for e = 0 to 299 do
              let quality = if good then 1 else 2 in
              let verdict =
                Verifier.run_job (job ~epoch:(e mod 8) ~quality)
              in
              if verdict <> good then sound := false
            done;
            !sound)
      in
      let workers = [ worker true; worker false; worker true; worker false ] in
      let verdicts_sound = List.map Domain.join workers in
      Atomic.set stop true;
      Domain.join toggler;
      checkb "verdicts correct under concurrent toggling" true
        (List.for_all Fun.id verdicts_sound))

(* [Chain_state.block_hash_at] was [List.nth_opt] — O(height) per
   certificate verification, O(height²) to validate a deep chain. The
   persistent index must answer deep lookups fast and share structure
   across branches. *)
let test_height_index_deep_chain () =
  let h i = Hash.of_string (Printf.sprintf "hi-%d" i) in
  let n = 200_000 in
  let idx = ref Height_index.empty in
  for i = 0 to n - 1 do
    idx := Height_index.append !idx (h i)
  done;
  checki "length" n (Height_index.length !idx);
  (* branch point: two forks extending the same snapshot stay distinct *)
  let fork_a = Height_index.append !idx (h 1_000_001)
  and fork_b = Height_index.append !idx (h 2_000_002) in
  checkb "forks diverge at the new height" true
    (Height_index.get fork_a n <> Height_index.get fork_b n);
  checkb "forks share the prefix" true
    (Height_index.get fork_a 12345 = Height_index.get fork_b 12345);
  (* deep random access: ~1e9 list-cell visits under the seed's
     List.nth_opt, milliseconds here — the generous bound only trips on
     an accidental return to linear lookup *)
  let t0 = Unix.gettimeofday () in
  let seed = ref 123456789 in
  for _ = 1 to 10_000 do
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    let i = !seed mod n in
    match Height_index.get !idx i with
    | Some x when Hash.equal x (h i) -> ()
    | _ -> Alcotest.fail (Printf.sprintf "wrong hash at height %d" i)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  checkb
    (Printf.sprintf "10k deep lookups stay sublinear (%.3fs)" dt)
    true (dt < 2.0);
  checkb "out of range" true (Height_index.get !idx n = None);
  checkb "negative" true (Height_index.get !idx (-1) = None)

(* [Chain_state.distinct_outpoints] was O(n²) ([List.mem] per element);
   the Hashtbl pass must decide exactly the same predicate. *)
let test_distinct_outpoints_equiv =
  let naive l =
    let rec go = function
      | [] -> true
      | (o : Tx.outpoint) :: rest ->
        (not (List.exists (Tx.outpoint_equal o) rest)) && go rest
    in
    go l
  in
  let gen_outpoint =
    QCheck2.Gen.(
      (* a tiny txid/vout space, so duplicates are the common case *)
      map2
        (fun t v -> { Tx.txid = Hash.of_string (Printf.sprintf "op-%d" t); vout = v })
        (int_range 0 7) (int_range 0 2))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"distinct_outpoints = naive" ~count:500
       QCheck2.Gen.(list_size (int_range 0 24) gen_outpoint)
       (fun l -> Chain_state.distinct_outpoints l = naive l))

let suite =
  ( "scale",
    [
      Alcotest.test_case "cache hit/miss/stats" `Quick test_cache_hit_miss_stats;
      Alcotest.test_case "negative caching" `Quick test_cache_negative_caching;
      Alcotest.test_case "cache disabled" `Quick test_cache_disabled;
      Alcotest.test_case "fifo eviction" `Quick test_cache_eviction;
      Alcotest.test_case "batch = sequential" `Quick test_batch_matches_sequential;
      Alcotest.test_case "64 sidechains" `Quick test_many_sidechain_registration;
      Alcotest.test_case "reorg replay cached" `Quick test_reorg_replay_uses_cache;
      Alcotest.test_case "duplicate submissions" `Quick
        test_duplicate_submissions_hit_cache;
      Alcotest.test_case "concurrent cache toggle" `Quick
        test_concurrent_toggle_keeps_verdicts;
      Alcotest.test_case "height index deep chain" `Quick
        test_height_index_deep_chain;
      test_distinct_outpoints_equiv;
    ] )
