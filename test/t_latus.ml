(* Latus components: UTXOs, the MST and its delta (Appendix A), state
   transitions for all four transaction types, leader election, MC
   references, blocks and the Latus circuits. *)

open Zen_crypto
open Zen_latus
open Zendoo

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let ok = function Ok v -> v | Error e -> Alcotest.fail e
let amount n = Amount.of_int_exn n

let params = Params.default

let utxo ?(addr = "addr") ?(amt = 100) nonce_seed =
  Utxo.make ~addr:(Hash.of_string addr) ~amount:(amount amt)
    ~nonce:(Hash.of_string nonce_seed)

(* ---- utxo ---- *)

let test_utxo_identity () =
  let u = utxo "n1" in
  checkb "stable position" true
    (Utxo.position ~mst_depth:12 u = Utxo.position ~mst_depth:12 u);
  checkb "nullifier distinct per utxo" false
    (Hash.equal (Utxo.nullifier u) (Utxo.nullifier (utxo "n2")));
  match Utxo.decode (Utxo.encode u) with
  | Some u' -> checkb "encode roundtrip" true (Utxo.equal u u')
  | None -> Alcotest.fail "decode failed"

let test_utxo_commitment_binds_fields () =
  let u = utxo ~amt:100 "n1" in
  let u2 = utxo ~amt:101 "n1" in
  checkb "amount changes commitment" false
    (Fp.equal (Utxo.commitment u) (Utxo.commitment u2))

(* ---- mst + delta ---- *)

let test_mst_insert_remove () =
  let m = Mst.create params in
  let u = utxo "a" in
  let m1, pos = ok (Mst.insert m u) in
  checkb "present" true (Mst.find_utxo m1 u = Some pos);
  checkb "collision rejected" true (Result.is_error (Mst.insert m1 u));
  let m2, _ = ok (Mst.remove m1 u) in
  checkb "gone" true (Mst.find_utxo m2 u = None);
  checkb "root restored" true (Fp.equal (Mst.root m) (Mst.root m2));
  checkb "remove absent fails" true (Result.is_error (Mst.remove m2 u))

let test_mst_balance () =
  let m = Mst.create params in
  let m, _ = ok (Mst.insert m (utxo ~addr:"alice" ~amt:5 "x")) in
  let m, _ = ok (Mst.insert m (utxo ~addr:"alice" ~amt:7 "y")) in
  let m, _ = ok (Mst.insert m (utxo ~addr:"bob" ~amt:11 "z")) in
  checki "alice" 12 (Amount.to_int (Mst.balance_of m (Hash.of_string "alice")));
  checki "bob" 11 (Amount.to_int (Mst.balance_of m (Hash.of_string "bob")));
  checki "total" 23 (Amount.to_int (Mst.total_value m))

let test_mst_delta () =
  let m = Mst.create params in
  let u1 = utxo "d1" and u2 = utxo "d2" in
  let m, p1 = ok (Mst.insert m u1) in
  let m, p2 = ok (Mst.insert m u2) in
  let delta = Mst.delta_bits m in
  checkb "bit p1" true (Mst.delta_bit delta p1);
  checkb "bit p2" true (Mst.delta_bit delta p2);
  checki "exactly two" 2 (List.length (Mst.modified_since_snapshot m));
  (* snapshot clears; removal after snapshot re-marks *)
  let m = Mst.snapshot m in
  checki "cleared" 0 (List.length (Mst.modified_since_snapshot m));
  let m, _ = ok (Mst.remove m u1) in
  let delta2 = Mst.delta_bits m in
  checkb "re-marked" true (Mst.delta_bit delta2 p1);
  checkb "untouched not marked" false (Mst.delta_bit delta2 p2)

let test_mst_delta_appendix_a_scenario () =
  (* Appendix A: prove a utxo survived epochs by unset delta bits. *)
  let m = Mst.create params in
  let survivor = utxo "appendix-survivor" in
  let m, pos = ok (Mst.insert m survivor) in
  let m = Mst.snapshot m in
  (* epoch 2: unrelated activity *)
  let m, _ = ok (Mst.insert m (utxo "other1")) in
  let delta_e2 = Mst.delta_bits m in
  checkb "survivor untouched in e2" false (Mst.delta_bit delta_e2 pos);
  let m = Mst.snapshot m in
  (* epoch 3: survivor is spent *)
  let m, _ = ok (Mst.remove m survivor) in
  let delta_e3 = Mst.delta_bits m in
  checkb "survivor touched in e3" true (Mst.delta_bit delta_e3 pos)

(* ---- proofs over mst slots ---- *)

let test_mst_slot_proofs () =
  let m = Mst.create params in
  let u = utxo "slot" in
  let m, pos = ok (Mst.insert m u) in
  let p = Mst.prove_slot m pos in
  checkb "member" true
    (Mst.verify_slot ~root:(Mst.root m) ~pos ~utxo:(Some u)
       ~depth:params.mst_depth p);
  checkb "wrong utxo" false
    (Mst.verify_slot ~root:(Mst.root m) ~pos ~utxo:(Some (utxo "imposter"))
       ~depth:params.mst_depth p)

(* ---- state / transactions ---- *)

let wallet seed =
  let w = Sc_wallet.create ~seed in
  let addr = Sc_wallet.fresh_address w in
  (w, addr)

let state_with utxos =
  let st = Sc_state.create params in
  let mst =
    List.fold_left (fun m u -> fst (ok (Mst.insert m u))) st.Sc_state.mst utxos
  in
  Sc_state.with_mst st mst

let test_payment_roundtrip () =
  let w1, a1 = wallet "pay1" in
  let _w2, a2 = wallet "pay2" in
  let coin = Utxo.make ~addr:a1 ~amount:(amount 100) ~nonce:(Hash.of_string "c") in
  let st = state_with [ coin ] in
  let tx = ok (Sc_wallet.build_payment w1 st ~to_:a2 ~amount:(amount 30)) in
  let st' = ok (Sc_tx.apply st tx) in
  checki "receiver" 30 (Amount.to_int (Mst.balance_of st'.Sc_state.mst a2));
  checki "change" 70 (Amount.to_int (Mst.balance_of st'.Sc_state.mst a1));
  checki "value conserved" 100 (Amount.to_int (Mst.total_value st'.Sc_state.mst))

let test_payment_rejects_bad_sig () =
  let w1, a1 = wallet "sig1" in
  let _w2, a2 = wallet "sig2" in
  let coin = Utxo.make ~addr:a1 ~amount:(amount 100) ~nonce:(Hash.of_string "c") in
  let st = state_with [ coin ] in
  let tx = ok (Sc_wallet.build_payment w1 st ~to_:a2 ~amount:(amount 30)) in
  match tx with
  | Sc_tx.Payment p ->
    (* Swap outputs after signing: signature must fail. *)
    let tampered = Sc_tx.Payment { p with outputs = List.rev p.outputs } in
    checkb "tamper rejected" true (Result.is_error (Sc_tx.validate st tampered))
  | _ -> Alcotest.fail "expected payment"

let test_payment_rejects_overdraw_and_foreign_nonce () =
  let w1, a1 = wallet "over1" in
  let _w2, a2 = wallet "over2" in
  let coin = Utxo.make ~addr:a1 ~amount:(amount 10) ~nonce:(Hash.of_string "c") in
  let st = state_with [ coin ] in
  checkb "overdraw" true
    (Result.is_error (Sc_wallet.build_payment w1 st ~to_:a2 ~amount:(amount 30)));
  (* Forged output nonce breaks the nonce discipline. *)
  let inputs = [ coin ] in
  let outputs =
    [ Utxo.make ~addr:a2 ~amount:(amount 10) ~nonce:(Hash.of_string "forged") ]
  in
  let sighash = Sc_tx.payment_sighash ~inputs ~outputs in
  let witnesses =
    [ Option.get (Sc_wallet.sign_request w1 ~addr:a1 ~msg:(Hash.to_raw sighash)) ]
  in
  checkb "foreign nonce rejected" true
    (Result.is_error
       (Sc_tx.validate st (Sc_tx.Payment { inputs; witnesses; outputs })))

let test_ft_accept_and_reject () =
  let _w, recv = wallet "ftr" in
  let payback = Hash.of_string "payback-addr" in
  let st = Sc_state.create params in
  let ft =
    Forward_transfer.make ~ledger_id:Hash.zero
      ~receiver_metadata:(Sc_tx.ft_metadata ~receiver:recv ~payback)
      ~amount:(amount 55)
  in
  (match Sc_tx.ft_outcome st ft with
  | Sc_tx.Ft_accepted u ->
    checkb "addressed to receiver" true (Hash.equal u.Utxo.addr recv)
  | Sc_tx.Ft_rejected _ -> Alcotest.fail "valid ft rejected");
  (* malformed metadata -> rejected with a BT *)
  let bad =
    Forward_transfer.make ~ledger_id:Hash.zero ~receiver_metadata:"short"
      ~amount:(amount 5)
  in
  (match Sc_tx.ft_outcome st bad with
  | Sc_tx.Ft_rejected bt ->
    checki "amount preserved" 5 (Amount.to_int bt.Backward_transfer.amount)
  | Sc_tx.Ft_accepted _ -> Alcotest.fail "malformed ft accepted");
  (* applying the FTTx mints coins *)
  let st' =
    ok
      (Sc_tx.apply st
         (Sc_tx.Forward_transfers_tx { mcid = Hash.zero; fts = [ ft; bad ] }))
  in
  checki "minted" 55 (Amount.to_int (Mst.balance_of st'.Sc_state.mst recv));
  checki "rejected became bt" 1
    (List.length (Sc_state.backward_transfers st'))

let test_ft_slot_collision () =
  let _w, recv = wallet "coll" in
  let payback = Hash.of_string "pb" in
  let ft =
    Forward_transfer.make ~ledger_id:Hash.zero
      ~receiver_metadata:(Sc_tx.ft_metadata ~receiver:recv ~payback)
      ~amount:(amount 5)
  in
  (* Pre-occupy the exact slot this FT's utxo maps to. *)
  let nonce = Utxo.derive_nonce ~source:(Forward_transfer.hash ft) ~index:0 in
  let squatter = Utxo.make ~addr:recv ~amount:(amount 1) ~nonce in
  let st = state_with [ squatter ] in
  match Sc_tx.ft_outcome st ft with
  | Sc_tx.Ft_rejected bt ->
    checkb "payback address" true
      (Hash.equal bt.Backward_transfer.receiver_addr payback)
  | Sc_tx.Ft_accepted _ -> Alcotest.fail "collision not detected"

let test_bt_tx () =
  let w1, a1 = wallet "bt1" in
  let coin = Utxo.make ~addr:a1 ~amount:(amount 40) ~nonce:(Hash.of_string "c") in
  let st = state_with [ coin ] in
  let mc_recv = Hash.of_string "mc-addr" in
  let tx = ok (Sc_wallet.build_backward_transfer w1 st ~utxo:coin ~mc_receiver:mc_recv) in
  let st' = ok (Sc_tx.apply st tx) in
  checki "coin burnt" 0 (Amount.to_int (Mst.balance_of st'.Sc_state.mst a1));
  checki "bt recorded" 1 (List.length (Sc_state.backward_transfers st'));
  checkb "bt acc moved" false (Fp.equal st'.Sc_state.bt_acc Fp.zero)

let test_btr_tx () =
  let _w1, a1 = wallet "btr1" in
  let coin = Utxo.make ~addr:a1 ~amount:(amount 25) ~nonce:(Hash.of_string "c") in
  let st = state_with [ coin ] in
  let btr =
    Mainchain_withdrawal.make ~kind:Mainchain_withdrawal.Btr
      ~ledger_id:Hash.zero ~receiver:(Hash.of_string "mc")
      ~amount:(amount 25) ~nullifier:(Utxo.nullifier coin)
      ~proofdata:[ Proofdata.Blob (Utxo.encode coin) ]
      ~proof:Zen_snark.Backend.dummy_proof
  in
  (match Sc_tx.btr_outcome st btr with
  | Sc_tx.Btr_accepted _ -> ()
  | Sc_tx.Btr_skipped e -> Alcotest.fail e);
  let st' =
    ok
      (Sc_tx.apply st
         (Sc_tx.Backward_transfer_requests_tx { mcid = Hash.zero; btrs = [ btr ] }))
  in
  checki "bt recorded" 1 (List.length (Sc_state.backward_transfers st'));
  (* double-sync: utxo gone, BTR skipped without failing the tx *)
  let st'' =
    ok
      (Sc_tx.apply st'
         (Sc_tx.Backward_transfer_requests_tx { mcid = Hash.zero; btrs = [ btr ] }))
  in
  checki "skip keeps bts" 1 (List.length (Sc_state.backward_transfers st''))

(* Regression (PR 5): append_bt used to rebuild the whole list per
   append ([t.backward_transfers @ [bt]], quadratic). A 50k-BT epoch
   would take tens of seconds on that path; the O(1) prepend finishes
   in well under the generous bound below, with the accumulator fold
   order — and hence the certificate's bt_list/bt_root — unchanged. *)
let test_bt_append_linear () =
  let n = 50_000 in
  let bts =
    List.init n (fun i ->
        Backward_transfer.make
          ~receiver_addr:(Hash.of_string (Printf.sprintf "bt-lin-%d" (i mod 7)))
          ~amount:(amount (i + 1)))
  in
  let t0 = Unix.gettimeofday () in
  let final = List.fold_left Sc_state.append_bt (Sc_state.create params) bts in
  let elapsed = Unix.gettimeofday () -. t0 in
  checkb
    (Printf.sprintf "50k appends stay linear (%.2fs)" elapsed)
    true (elapsed < 5.0);
  checki "count carried" n (Sc_state.bt_count final);
  checkb "read-back order is append order" true
    (List.for_all2 Backward_transfer.equal bts
       (Sc_state.backward_transfers final));
  (* The accumulator folds oldest-first exactly as before. *)
  let expected_acc = List.fold_left Sc_state.bt_acc_step Fp.zero bts in
  checkb "bt_acc unchanged" true (Fp.equal final.Sc_state.bt_acc expected_acc);
  checkb "certificate bt_root unchanged" true
    (Hash.equal
       (Backward_transfer.list_root (Sc_state.backward_transfers final))
       (Backward_transfer.list_root bts))

let test_state_hash_tracks_components () =
  let st = Sc_state.create params in
  let st_bt =
    Sc_state.append_bt st
      (Backward_transfer.make ~receiver_addr:Hash.zero ~amount:(amount 1))
  in
  checkb "bt changes hash" false
    (Fp.equal (Sc_state.hash st) (Sc_state.hash st_bt));
  let reset = Sc_state.reset_epoch st_bt in
  checkb "reset restores hash" true
    (Fp.equal (Sc_state.hash st) (Sc_state.hash reset))

(* ---- leader election ---- *)

let test_leader_deterministic_and_proportional () =
  let a = Hash.of_string "staker-a" and b = Hash.of_string "staker-b" in
  let d = Leader.of_list [ (a, amount 900); (b, amount 100) ] in
  let rand = Hash.of_string "epoch-rand" in
  let l1 = Leader.select d ~rand ~slot:5 in
  checkb "deterministic" true (l1 = Leader.select d ~rand ~slot:5);
  let wins_a = ref 0 in
  for slot = 0 to 999 do
    match Leader.select d ~rand ~slot with
    | Some l when Hash.equal l a -> incr wins_a
    | _ -> ()
  done;
  (* 90% stake: expect roughly 900 slots, allow generous tolerance. *)
  checkb
    (Printf.sprintf "proportional (a won %d)" !wins_a)
    true
    (!wins_a > 850 && !wins_a < 950)

let test_leader_empty () =
  checkb "empty yields none" true
    (Leader.select (Leader.of_list []) ~rand:Hash.zero ~slot:0 = None)

let test_leader_of_mst () =
  let m = Mst.create params in
  let m, _ = ok (Mst.insert m (utxo ~addr:"s1" ~amt:10 "l1")) in
  let m, _ = ok (Mst.insert m (utxo ~addr:"s1" ~amt:10 "l2")) in
  let d = Leader.of_mst m in
  checki "total stake" 20 (Amount.to_int (Leader.total_stake d))

(* ---- circuits ---- *)

let family = Circuits.make params

let test_step_proofs_all_kinds () =
  let st = Sc_state.create params in
  let u = utxo "step-u" in
  (* insert *)
  let proof, vk, s_from, s_to = ok (Circuits.prove_step family st (Sc_tx.Insert u)) in
  let public = Zen_snark.Recursive.base_public ~s_from ~s_to ~extra:[||] in
  checkb "insert verifies" true (Zen_snark.Backend.verify vk ~public proof);
  checkb "s_from = state" true (Fp.equal s_from (Sc_state.hash st));
  let st1 = ok (Sc_tx.apply_step st (Sc_tx.Insert u)) in
  checkb "s_to matches" true (Fp.equal s_to (Sc_state.hash st1));
  (* remove *)
  let proof, vk, s_from, s_to = ok (Circuits.prove_step family st1 (Sc_tx.Remove u)) in
  let public = Zen_snark.Recursive.base_public ~s_from ~s_to ~extra:[||] in
  checkb "remove verifies" true (Zen_snark.Backend.verify vk ~public proof);
  ignore s_from;
  (* append_bt *)
  let bt = Backward_transfer.make ~receiver_addr:Hash.zero ~amount:(amount 3) in
  let proof, vk, s_from2, s_to2 =
    ok (Circuits.prove_step family st1 (Sc_tx.Append_bt bt))
  in
  let public = Zen_snark.Recursive.base_public ~s_from:s_from2 ~s_to:s_to2 ~extra:[||] in
  checkb "append verifies" true (Zen_snark.Backend.verify vk ~public proof);
  ignore s_to

let test_step_proof_requires_valid_step () =
  let st = Sc_state.create params in
  let u = utxo "ghost" in
  checkb "remove absent fails" true
    (Result.is_error (Circuits.prove_step family st (Sc_tx.Remove u)))

let test_ownership_proof () =
  let u = utxo "own" in
  let m, _ = ok (Mst.insert (Mst.create params) u) in
  let receiver = Hash.of_string "mc-recv" in
  let reference_block = Hash.of_string "refblock" in
  let proofdata = [ Proofdata.Blob (Utxo.encode u) ] in
  let proof =
    ok (Circuits.prove_ownership family ~mst:m ~utxo:u ~reference_block ~receiver ~proofdata)
  in
  let public =
    Array.append
      (Mainchain_withdrawal.sysdata ~reference_block
         ~nullifier:(Utxo.nullifier u) ~receiver ~amount:u.Utxo.amount)
      [| Proofdata.root_fp proofdata |]
  in
  checkb "verifies" true
    (Zen_snark.Backend.verify (Circuits.ownership_keys family).vk ~public proof);
  (* claiming a different amount must fail verification *)
  let forged =
    Array.append
      (Mainchain_withdrawal.sysdata ~reference_block
         ~nullifier:(Utxo.nullifier u) ~receiver ~amount:(amount 999999))
      [| Proofdata.root_fp proofdata |]
  in
  checkb "forged amount rejected" false
    (Zen_snark.Backend.verify (Circuits.ownership_keys family).vk ~public:forged proof);
  (* a utxo not in the tree cannot be proven *)
  checkb "absent utxo" true
    (Result.is_error
       (Circuits.prove_ownership family ~mst:m ~utxo:(utxo "absent")
          ~reference_block ~receiver ~proofdata))

(* ---- prover pool (§5.4.1) ---- *)

let test_prover_pool_dispatch_uniform () =
  let rng = Rng.create 5 in
  let a = Prover_pool.dispatch ~rng ~workers:4 ~tasks:4000 in
  let counts = Array.make 4 0 in
  Array.iter (fun w -> counts.(w) <- counts.(w) + 1) a;
  Array.iter
    (fun c ->
      checkb (Printf.sprintf "roughly uniform (%d)" c) true
        (c > 800 && c < 1200))
    counts

let test_prover_pool_epoch () =
  let st = Sc_state.create params in
  let steps =
    List.init 6 (fun i ->
        Sc_tx.Insert
          (Utxo.make ~addr:(Hash.of_string "pool") ~amount:(amount (i + 1))
             ~nonce:(Hash.of_string (Printf.sprintf "pp-%d" i))))
  in
  let proofs, stats =
    ok (Prover_pool.prove_epoch family ~initial:st ~steps ~workers:3 ~seed:11)
  in
  checki "all tasks proven" 6 stats.Prover_pool.tasks;
  checki "all rewarded" 6
    (List.fold_left (fun a (_, r) -> a + r) 0 stats.Prover_pool.rewards);
  (* proofs chain across the whole epoch *)
  let rsys =
    Zen_snark.Recursive.create ~name:"pool-test" ~base_vks:(Circuits.base_vks family)
  in
  let top = ok (Prover_pool.merge_all family rsys proofs) in
  checkb "merged proof verifies" true (Zen_snark.Recursive.verify rsys top);
  checkb "spans the epoch" true
    (Fp.equal (Zen_snark.Recursive.s_from top) (Sc_state.hash st));
  checki "covers all steps" 6 (Zen_snark.Recursive.base_count top)

(* ---- sc blocks ---- *)

let test_sc_block_signature () =
  let w = Sc_wallet.create ~seed:"forger-sig" in
  let addr = Sc_wallet.fresh_address w in
  let sk = Option.get (Sc_wallet.secret_for w addr) in
  let b =
    Sc_block.forge ~parent:Sc_block.genesis_parent ~height:0 ~slot:3 ~sk
      ~mc_refs:[] ~txs:[] ~state_hash:Fp.zero
  in
  checkb "signature valid" true (Sc_block.verify_signature b);
  checkb "forger addr" true (Hash.equal (Sc_block.forger_addr b) addr);
  let tampered = { b with Sc_block.height = 1 } in
  checkb "tamper detected" false (Sc_block.verify_signature tampered)

let suite =
  ( "latus",
    [
      Alcotest.test_case "utxo identity" `Quick test_utxo_identity;
      Alcotest.test_case "utxo commitment" `Quick test_utxo_commitment_binds_fields;
      Alcotest.test_case "mst insert/remove" `Quick test_mst_insert_remove;
      Alcotest.test_case "mst balance" `Quick test_mst_balance;
      Alcotest.test_case "mst delta" `Quick test_mst_delta;
      Alcotest.test_case "mst delta appendix A" `Quick
        test_mst_delta_appendix_a_scenario;
      Alcotest.test_case "mst slot proofs" `Quick test_mst_slot_proofs;
      Alcotest.test_case "payment roundtrip" `Quick test_payment_roundtrip;
      Alcotest.test_case "payment bad sig" `Quick test_payment_rejects_bad_sig;
      Alcotest.test_case "payment overdraw/nonce" `Quick
        test_payment_rejects_overdraw_and_foreign_nonce;
      Alcotest.test_case "ft accept/reject" `Quick test_ft_accept_and_reject;
      Alcotest.test_case "ft slot collision" `Quick test_ft_slot_collision;
      Alcotest.test_case "bt tx" `Quick test_bt_tx;
      Alcotest.test_case "btr tx" `Quick test_btr_tx;
      Alcotest.test_case "bt append linear" `Quick test_bt_append_linear;
      Alcotest.test_case "state hash" `Quick test_state_hash_tracks_components;
      Alcotest.test_case "leader proportional" `Quick
        test_leader_deterministic_and_proportional;
      Alcotest.test_case "leader empty" `Quick test_leader_empty;
      Alcotest.test_case "leader of mst" `Quick test_leader_of_mst;
      Alcotest.test_case "step proofs" `Quick test_step_proofs_all_kinds;
      Alcotest.test_case "step proof validity" `Quick
        test_step_proof_requires_valid_step;
      Alcotest.test_case "ownership proof" `Quick test_ownership_proof;
      Alcotest.test_case "prover pool dispatch" `Quick
        test_prover_pool_dispatch_uniform;
      Alcotest.test_case "prover pool epoch" `Quick test_prover_pool_epoch;
      Alcotest.test_case "sc block signature" `Quick test_sc_block_signature;
    ] )
