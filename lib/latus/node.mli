(** A Latus sidechain node (paper §5): follows the mainchain, forges
    sidechain blocks with MC block references, maintains the MST state,
    produces per-step transition proofs and recursively composes them,
    and emits withdrawal certificates at epoch boundaries.

    The node observes the mainchain directly (the parent-child model of
    §3): it reads a {!Zen_mainchain.Chain.t} and reacts to its best
    chain, including rollback of sidechain blocks whose MC references
    were reorged away (§5.1 property 2). *)

open Zen_crypto
open Zen_mainchain
open Zendoo

type t

val wcert_schema : Proofdata.schema
(** Latus WCert proofdata: [H(SB_last); MST root; mst_delta]
    (§5.5.3.1). *)

val withdrawal_schema : Proofdata.schema
(** Latus BTR/CSW proofdata: the claimed UTXO (§5.5.3.2). *)

val config_for :
  ledger_id:Hash.t ->
  start_block:int ->
  epoch_len:int ->
  submit_len:int ->
  Circuits.family ->
  (Sidechain_config.t, string) result
(** The mainchain registration record for a Latus sidechain using this
    circuit family. *)

val create :
  config:Sidechain_config.t ->
  params:Params.t ->
  family:Circuits.family ->
  forger:Sc_wallet.t ->
  ?prove:bool ->
  ?pool:Pool.t ->
  ?pipeline:bool ->
  ?retain_epochs:int ->
  unit ->
  (t, string) result
(** [prove:false] skips SNARK generation (consensus-only experiments);
    such a node cannot emit certificates. The forger wallet must hold
    at least one key. [pool] (default {!Pool.sequential}) supplies the
    domains used for proving and for folding the epoch's transition
    proofs; proofs and certificates are bit-identical for every domain
    count. The node does not own the pool — the caller shuts it down.

    [pipeline] (default [true], ignored with [prove:false]) routes
    per-step proving through {!Proof_pipeline}: {!forge} applies steps
    natively and enqueues proving tasks that complete in the background
    between ticks (call {!pump} to drain), leaving the certify path only
    the ≤ ⌈log₂ n⌉ carry merges. Certificates, decisions and errors are
    byte-identical pipeline on or off. [pipeline:false] restores
    synchronous forge-path proving and the burst fold at certify time.

    [retain_epochs] (default 8, minimum 2) bounds the block-record
    window: records of epochs more than that many behind the
    mainchain's last accepted certificate are pruned (certificate
    rebuilds after shallow reorgs stay inside the margin; withdrawals
    replay from the kept per-epoch archives). *)

val params : t -> Params.t
val family : t -> Circuits.family
val ledger_id : t -> Hash.t

val tip_state : t -> Sc_state.t
(** State after the last forged block (before any epoch reset). *)

val next_block_state : t -> Sc_state.t
(** State the next block will build on (epoch reset applied). *)

val sc_height : t -> int
val mc_synced_height : t -> int
val blocks : t -> Sc_block.t list
(** Oldest first. *)

val submit_tx : t -> Sc_tx.t -> (unit, string) result
(** Validates against the current state and queues the transaction —
    O(1) admission into an id-indexed FIFO ({!Sc_mempool});
    resubmitting a pooled txid is an accepted no-op. *)

val mempool_size : t -> int
(** O(1). *)

val forge :
  t ->
  mc:Chain.t ->
  slot:int ->
  ?enforce_leader:bool ->
  unit ->
  (Sc_block.t option, string) result
(** One forging round: first reconciles with the MC best chain
    (rolling back sidechain blocks whose references were reorged
    away), then forges a block carrying any new MC references (clipped
    at the withdrawal-epoch boundary) and pending transactions.
    Returns [None] when there is nothing to include or, with
    [enforce_leader], when the forger does not lead this slot. *)

val build_certificate : t -> mc:Chain.t -> (Tx.t option, string) result
(** Builds the withdrawal certificate for the earliest completed,
    not-yet-certified epoch: recursively composes the epoch's
    transition proofs, checks the §5.5.3.1 statement natively, and
    wraps it for mainchain submission. [None] when no epoch is ready. *)

val certified_epochs : t -> int list

val next_uncertified_epoch : t -> int
(** The node's own view: one past the newest epoch it has archived (0
    before any certificate). *)

val certificate_target : t -> mc:Chain.t -> int
(** The epoch {!build_certificate} will actually target: the
    mainchain's earliest uncertified epoch when that lags the node's
    archive (a built certificate was lost to a reorg or never landed —
    the node rebuilds and resubmits it), the node's own
    {!next_uncertified_epoch} otherwise. *)

val state_at_epoch_end : t -> epoch:int -> Sc_state.t option
val delta_for_epoch : t -> epoch:int -> Bytes.t option
(** The mst_delta committed by this epoch's certificate. *)

val create_withdrawal_request :
  t ->
  kind:Mainchain_withdrawal.kind ->
  utxo:Utxo.t ->
  receiver:Hash.t ->
  reference_block:Hash.t ->
  ?as_of_epoch:int ->
  unit ->
  (Mainchain_withdrawal.t, string) result
(** Builds a BTR or CSW for [utxo] against the committed state of
    [as_of_epoch] (default: the latest certified epoch). When an older
    epoch is used, the node first replays the mst_delta chain
    (Appendix A) to confirm the slot was never touched since. *)

val stake_distribution : t -> Leader.distribution
val leader_for_slot : t -> slot:int -> Hash.t option

(** {2 Proving pipeline} *)

val pump : t -> unit
(** Drain point between ticks: folds every background proof that has
    completed into its epoch's incremental merge tree (no-op without a
    pipeline). With a sequential pool this is where the deferred proofs
    actually run, spreading the work across ticks instead of bursting at
    the epoch boundary. The harness calls this once per sidechain per
    tick, after forging. *)

val pipeline_enabled : t -> bool

val pipeline_depth : t -> int
(** Proving tasks enqueued but not yet folded (0 without a pipeline). *)

val certificate_stats : t -> Proof_pipeline.certificate_stats list
(** Per-certificate certify-path accounting, oldest first (empty
    without a pipeline): how many base transitions each epoch proof
    covers and how many merges actually ran at certify time. Both
    fields are deterministic in the seed. *)

val retained_records : t -> int
(** Block records currently held (after certified-horizon pruning) —
    observability for the bounded-memory guarantee. *)
