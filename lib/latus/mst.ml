open Zen_crypto
open Zendoo

module Int_map = Map.Make (Int)
module Int_set = Set.Make (Int)

type t = {
  params : Params.t;
  tree : Smt.t;
  utxos : Utxo.t Int_map.t; (* openings of occupied slots *)
  modified : Int_set.t; (* slots written since the last snapshot *)
}

let create params =
  {
    params;
    tree = Smt.create ~depth:params.mst_depth;
    utxos = Int_map.empty;
    modified = Int_set.empty;
  }

let of_utxos ?pool params utxos =
  Zen_obs.Trace.with_span ~cat:"latus"
    ~args:[ ("utxos", string_of_int (List.length utxos)) ]
    "latus.mst.of_utxos"
  @@ fun () ->
  let bindings =
    List.map
      (fun u -> (Utxo.position ~mst_depth:params.Params.mst_depth u, u))
      utxos
  in
  let positions = List.map fst bindings in
  if
    Int_set.cardinal (Int_set.of_list positions) <> List.length positions
  then Error "mst: slot collision"
  else begin
    match
      Smt.of_bindings ?pool ~depth:params.Params.mst_depth
        (List.map (fun (p, u) -> (p, Utxo.commitment u)) bindings)
    with
    | Error e -> Error ("mst: " ^ e)
    | Ok tree ->
      Ok
        {
          params;
          tree;
          utxos =
            List.fold_left
              (fun m (p, u) -> Int_map.add p u m)
              Int_map.empty bindings;
          modified = Int_set.of_list positions;
        }
  end

let depth t = t.params.mst_depth
let root t = Smt.root t.tree
let occupied t = Smt.occupied t.tree
let get t pos = Int_map.find_opt pos t.utxos

let find_utxo t utxo =
  let pos = Utxo.position ~mst_depth:t.params.mst_depth utxo in
  match get t pos with
  | Some u when Utxo.equal u utxo -> Some pos
  | Some _ | None -> None

let insert t utxo =
  let pos = Utxo.position ~mst_depth:t.params.mst_depth utxo in
  match get t pos with
  | Some _ -> Error "mst: slot collision"
  | None ->
    Ok
      ( {
          t with
          tree = Smt.set t.tree pos (Utxo.commitment utxo);
          utxos = Int_map.add pos utxo t.utxos;
          modified = Int_set.add pos t.modified;
        },
        pos )

let remove t utxo =
  match find_utxo t utxo with
  | None -> Error "mst: utxo not present"
  | Some pos ->
    Ok
      ( {
          t with
          tree = Smt.remove t.tree pos;
          utxos = Int_map.remove pos t.utxos;
          modified = Int_set.add pos t.modified;
        },
        pos )

type op = Op_insert of Utxo.t | Op_remove of Utxo.t

(* Batched application: the opening map and modification set evolve
   op by op (so ordering semantics — including a remove freeing a slot
   for a later insert — match a sequential fold of insert/remove
   exactly), but the tree itself is committed in one merged
   [Smt.update_batch] traversal at the end. *)
let apply_ops t ops =
  let staged =
    List.fold_left
      (fun acc op ->
        match acc with
        | Error _ -> acc
        | Ok (utxos, modified, writes) -> (
          match op with
          | Op_insert u ->
            let pos = Utxo.position ~mst_depth:t.params.mst_depth u in
            if Int_map.mem pos utxos then Error "mst: slot collision"
            else
              Ok
                ( Int_map.add pos u utxos,
                  Int_set.add pos modified,
                  (pos, Some (Utxo.commitment u)) :: writes )
          | Op_remove u -> (
            let pos = Utxo.position ~mst_depth:t.params.mst_depth u in
            match Int_map.find_opt pos utxos with
            | Some u' when Utxo.equal u' u ->
              Ok
                ( Int_map.remove pos utxos,
                  Int_set.add pos modified,
                  (pos, None) :: writes )
            | Some _ | None -> Error "mst: utxo not present")))
      (Ok (t.utxos, t.modified, []))
      ops
  in
  match staged with
  | Error e -> Error e
  | Ok (utxos, modified, writes_rev) -> (
    match Smt.update_batch t.tree (List.rev writes_rev) with
    | Error e -> Error ("mst: " ^ e)
    | Ok tree -> Ok { t with tree; utxos; modified })

let balance_of t addr =
  Int_map.fold
    (fun _ (u : Utxo.t) acc ->
      if Hash.equal u.addr addr then
        match Amount.add acc u.amount with Ok v -> v | Error _ -> acc
      else acc)
    t.utxos Amount.zero

let utxos_of t addr =
  Int_map.fold
    (fun pos (u : Utxo.t) acc ->
      if Hash.equal u.addr addr then (pos, u) :: acc else acc)
    t.utxos []

let all_utxos t = Int_map.bindings t.utxos

let total_value t =
  Int_map.fold
    (fun _ (u : Utxo.t) acc ->
      match Amount.add acc u.amount with Ok v -> v | Error _ -> acc)
    t.utxos Amount.zero

let prove_slot t pos = Smt.prove t.tree pos

let verify_slot ~root ~pos ~utxo ~depth proof =
  Smt.verify ~root ~pos ~leaf:(Option.map Utxo.commitment utxo) ~depth proof

let modified_since_snapshot t = Int_set.elements t.modified

let delta_bits t =
  let nbytes = max 1 ((1 lsl t.params.mst_depth) / 8) in
  let b = Bytes.make nbytes '\000' in
  Int_set.iter
    (fun pos ->
      let byte = pos / 8 and bit = pos mod 8 in
      Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lor (1 lsl bit))))
    t.modified;
  b

let snapshot t = { t with modified = Int_set.empty }

let delta_bit bits pos =
  let byte = pos / 8 and bit = pos mod 8 in
  byte < Bytes.length bits
  && Char.code (Bytes.get bits byte) land (1 lsl bit) <> 0

let delta_hash bits = Hash.tagged "latus.mst_delta" [ Bytes.to_string bits ]
