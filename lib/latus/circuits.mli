(** The Latus SNARK circuits (paper §5.4, §5.5.3).

    Base transition circuits operate at the granularity of primitive
    state transitions ({!Sc_tx.step}): one MST slot write or one
    backward-transfer accumulation per proof, each a fixed-shape R1CS
    whose size depends only on the MST depth. They are the leaves of
    the recursive composition (Figs. 10–11).

    Two more circuits face the mainchain through the unified 5-input
    verifier interface: the withdrawal-certificate circuit and the
    BTR/CSW "ownership" circuit (§5.5.3.2: the proof shows a UTXO
    belongs to a historically committed MST and opens its amount).

    Division of labour in the simulated backend (DESIGN.md §3): Merkle
    paths, state-hash openings, accumulator steps and amount equalities
    are genuinely in-circuit; SHA-based commitments (MH(BTList),
    MC block hashes), signature checks and child-proof verification are
    enforced natively by the prover before synthesis. *)

open Zen_crypto
open Zen_snark
open Zendoo

type keys = {
  pk : Backend.proving_key;
  vk : Backend.verification_key;
  constraints : int;
}

type family

val make : Params.t -> family
(** Compiles and sets up every circuit for the given MST depth.
    Deterministic: two nodes with equal params derive equal keys.

    Each circuit is compiled once into a template: the R1CS shape is
    synthesized and digested here, and every later prove only fills the
    witness assignment (evaluation-mode gadget run, no constraint
    emission, no re-digesting). Proof bytes are bit-identical to the
    re-synthesis path. *)

val set_use_templates : bool -> unit
(** Selects the proving pipeline: [true] (the default) proves through
    the compiled templates; [false] re-synthesizes the circuit on every
    call — the legacy path, kept for equivalence tests and benchmarks.
    Flip it only while no prover pool is running; the flag is read per
    prove. Observable via the [latus.template.hits]/[.misses]
    counters. *)

val use_templates : unit -> bool

val base_vks : family -> Backend.verification_key list
(** The leaf verification keys for {!Zen_snark.Recursive.create}. *)

val wcert_keys : family -> keys
val ownership_keys : family -> keys
val step_keys : family -> Sc_tx.step -> keys

val prove_step :
  family ->
  Sc_state.t ->
  Sc_tx.step ->
  (Backend.proof * Backend.verification_key * Fp.t * Fp.t, string) result
(** Proves one primitive transition from the given state; returns
    (proof, vk, s_from, s_to). The caller applies the step natively to
    continue. *)

val prove_wcert_binding :
  family ->
  quality:int ->
  bt_root:Hash.t ->
  end_prev_epoch:Hash.t ->
  end_epoch:Hash.t ->
  proofdata:Proofdata.t ->
  s_prev:Fp.t ->
  s_last:Fp.t ->
  (Backend.proof, string) result
(** The certificate-facing proof. The semantic statement (§5.5.3.1's
    bullet list) must be established by the caller ({!Prover}) before
    this binding is produced. *)

val prove_ownership :
  family ->
  mst:Mst.t ->
  utxo:Utxo.t ->
  reference_block:Hash.t ->
  receiver:Hash.t ->
  proofdata:Proofdata.t ->
  (Backend.proof, string) result
(** BTR/CSW proof: in-circuit membership of [utxo] in [mst] (the
    historically committed state) and amount opening; the public input
    carries the §4.1.2.1 [btr_sysdata]. *)
