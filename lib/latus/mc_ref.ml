open Zen_crypto
open Zen_mainchain
open Zendoo

type t = {
  header : Block.header;
  mproof : Sc_commitment.membership option;
  proof_of_no_data : Sc_commitment.absence option;
  fts : Forward_transfer.t list;
  btrs : Mainchain_withdrawal.t list;
  wcert : Withdrawal_certificate.t option;
}

let entry_of ledger_id (r : t) : Sc_commitment.entry =
  {
    Sc_commitment.ledger_id;
    fts = r.fts;
    btrs = r.btrs;
    wcert = r.wcert;
  }

let build ~ledger_id (block : Block.t) =
  match Block.sc_commitment_of_txs block.txs with
  | Error e -> Error e
  | Ok commitment -> (
    let fts =
      List.concat_map Tx.forward_transfers block.txs
      |> List.filter (fun (ft : Forward_transfer.t) ->
             Hash.equal ft.ledger_id ledger_id)
    in
    let btrs =
      List.filter_map
        (function
          | Tx.Withdrawal_request w
            when w.Mainchain_withdrawal.kind = Mainchain_withdrawal.Btr
                 && Hash.equal w.Mainchain_withdrawal.ledger_id ledger_id ->
            Some w
          | _ -> None)
        block.txs
    in
    let wcert =
      List.find_map
        (function
          | Tx.Certificate c
            when Hash.equal c.Withdrawal_certificate.ledger_id ledger_id ->
            Some c
          | _ -> None)
        block.txs
    in
    let base =
      {
        header = block.header;
        mproof = None;
        proof_of_no_data = None;
        fts;
        btrs;
        wcert;
      }
    in
    match Sc_commitment.prove_membership commitment ledger_id with
    | Some m -> Ok { base with mproof = Some m }
    | None -> (
      match Sc_commitment.prove_absence commitment ledger_id with
      | Some a -> Ok { base with proof_of_no_data = Some a }
      | None -> Error "mc_ref: cannot prove membership nor absence"))

let has_data t = t.fts <> [] || t.btrs <> [] || t.wcert <> None

let verify ~ledger_id t =
  let root = t.header.sc_txs_commitment in
  match (t.mproof, t.proof_of_no_data) with
  | Some m, None ->
    let entry_hash = Sc_commitment.entry_hash (entry_of ledger_id t) in
    if Sc_commitment.verify_membership ~root ~ledger_id ~entry_hash m then
      Ok ()
    else Error "mc_ref: membership proof rejected"
  | None, Some a ->
    if has_data t then Error "mc_ref: carries data but claims absence"
    else if Sc_commitment.verify_absence ~root ~ledger_id a then Ok ()
    else Error "mc_ref: absence proof rejected"
  | Some _, Some _ -> Error "mc_ref: both proofs present"
  | None, None -> Error "mc_ref: no commitment proof"

let block_hash t = Block.header_hash t.header
let height t = t.header.height

let size_bytes t =
  let header_size = 4 + 4 + 4 + (4 * Hash.size) in
  header_size
  + (match t.mproof with
    | Some m -> Sc_commitment.membership_size_bytes m
    | None -> 0)
  + (match t.proof_of_no_data with
    | Some a -> Sc_commitment.absence_size_bytes a
    | None -> 0)
  + List.fold_left
      (fun acc (ft : Forward_transfer.t) ->
        acc + Hash.size + String.length ft.receiver_metadata + 8)
      0 t.fts
  + (List.length t.btrs * (Hash.size * 4))
  + match t.wcert with
    | None -> 0
    | Some c ->
      Hash.size + 16
      + (List.length c.bt_list * (Hash.size + 8))
      + Zen_snark.Backend.proof_size_bytes
