(** Pipelined epoch proving: overlap base-proof generation and merging
    with block production.

    The paper's §5.4.1 provers (and the Latus incentive-scheme paper,
    arXiv:2103.13754) generate base proofs and merge proofs
    {e continuously across the epoch}, not in a burst at the boundary.
    This module is the node-side realization: {!Node.forge} applies
    steps natively, snapshots the pre-step state, and {!enqueue}s one
    proving task per step as a {!Pool.future}; the tasks complete on the
    shared Domain pool in the background while the node forges the next
    block. As sibling proofs land, {!pump} folds them through
    {!Recursive.Incremental} — the online [fold_balanced] — so by
    certify time the epoch's merge tree is already built except for the
    ≤ ⌈log₂ n⌉ binary-counter carry merges, which {!await_epoch} runs
    together with any straggler base proofs.

    {2 Determinism}

    Scheduling moves, bytes don't. Leaves are harvested strictly in
    application order regardless of completion order, the incremental
    fold reproduces [fold_balanced]'s exact tree, and a task's thunk is
    pure — so certificates (and on failure, the reported error) are
    byte-identical to the synchronous path for every domain count,
    pipeline on or off. With a sequential pool nothing runs in the
    background; {!pump} and {!await_epoch} are simply where the deferred
    work executes, which spreads it across ticks instead of bursting.

    {2 Observability}

    [latus.pipeline.depth] (gauge: tasks in flight),
    [latus.pipeline.queue_wait.seconds] / [.prove.seconds] (histograms),
    and [latus.pipeline.enqueued] / [.merges.eager] / [.merges.carry] /
    [.truncations] (counters). The certify-path shrink shows up as the
    [latus.fold] span collapsing in [Zen_obs.Report]. *)

open Zen_snark

type t

type certificate_stats = {
  cert_epoch : int;
  cert_leaves : int;  (** base transitions folded into the epoch proof *)
  cert_carry_merges : int;
      (** merges that actually ran on the certify path —
          ≤ ⌈log₂ [cert_leaves]⌉, vs. [cert_leaves] − 1 for the
          unpipelined burst fold *)
}

val create : pool:Zen_crypto.Pool.t -> family:Circuits.family -> rsys:Recursive.system -> t
(** The pipeline borrows [pool] (it does not own or shut it down) and
    proves under [family]'s circuits, wrapping into [rsys]. *)

val enqueue : t -> epoch:int -> state:Sc_state.t -> step:Sc_tx.step -> unit
(** Submits the proof of [step] applied at [state] for background
    execution, appended to [epoch]'s stream in application order. Call
    only with snapshots of steps that are definitely part of a forged
    block, in block order. *)

val pump : t -> unit
(** Non-blocking drain point, called between ticks: folds every already
    completed proof into its epoch's incremental merge tree. On a
    sequential pool this is where deferred proofs run (inline, all of
    them) — the drain point that keeps single-domain runs byte-identical
    while still moving work off the certify burst. *)

val await_epoch : t -> epoch:int -> (Recursive.transition_proof, string) result
(** Completes [epoch]'s fold: awaits straggler base proofs (running
    unclaimed ones inline), then performs the remaining carry merges.
    Errors are deterministic and identical to the synchronous
    prove-then-[fold_balanced] path: the first failing base proof in
    application order, else the first failing merge in [fold_balanced]'s
    (level, pair) order. Appends to {!certificate_log}. *)

val leaves : t -> epoch:int -> int
(** Tasks enqueued for [epoch] so far (0 for an unknown epoch). *)

val outstanding : t -> int
(** Tasks enqueued but not yet folded, across all epochs — the value of
    the [latus.pipeline.depth] gauge. *)

val truncate : t -> epoch:int -> keep:int -> unit
(** MC-reorg rollback: keep only the first [keep] leaves of [epoch]'s
    stream and rebuild its fold from the already-proven kept prefix (no
    base proof is re-run; only merges replay). Dropped in-flight tasks
    finish harmlessly and are never read. *)

val drop_below : t -> epoch:int -> unit
(** Forgets every stream strictly below [epoch] — called when the node
    prunes records below the mainchain's certified horizon. *)

val certificate_log : t -> certificate_stats list
(** One entry per {!await_epoch} call, newest first — the per-epoch
    certify-path accounting surfaced in the CLI report
    ([pipeline.certs]) and asserted by CI's pipeline-smoke job. *)
