(** The Latus system state (paper §5.2.1):
    [state = (MST, backward_transfers)].

    [backward_transfers] is the transient list accumulated over the
    current withdrawal epoch, mirrored by a Poseidon accumulator so the
    state hash — the public input of every transition proof — is a
    single field element: [H(mst_root, bt_acc)]. *)

open Zen_crypto
open Zendoo

type t = private {
  mst : Mst.t;
  bts_rev : Backward_transfer.t list;
      (** newest first, so {!append_bt} is O(1); read the epoch's list
          in order through {!backward_transfers} *)
  bt_count : int;
  bt_acc : Fp.t;  (** Poseidon accumulator over the epoch's BTs *)
}

val create : Params.t -> t

val hash : t -> Fp.t
(** [s_i] of §5.4: what base and merge proofs bind. *)

val append_bt : t -> Backward_transfer.t -> t
(** O(1): prepends internally and steps the accumulator; the
    accumulator order (oldest first) is unchanged. *)

val backward_transfers : t -> Backward_transfer.t list
(** The epoch's backward transfers, oldest first — the order the
    accumulator folded them in and the order certificates carry. *)

val bt_count : t -> int

val bt_acc_step : Fp.t -> Backward_transfer.t -> Fp.t
(** One accumulator step — replayed in-circuit by the BT gadgets. *)

val reset_epoch : t -> t
(** New withdrawal epoch: clears the BT list and accumulator and takes
    an MST delta snapshot (Appendix A). *)

val with_mst : t -> Mst.t -> t

(** {2 Copy-on-write snapshots}

    The state is fully persistent, so snapshotting for reorg rollback
    needs no copying: a checkpoint pins a version, restoring it is
    O(1), and memory for the pinned version is shared structurally
    with every later one. This is what lets the workload engine (and
    any reorg handler) roll an epoch back without replaying blocks. *)

type checkpoint

val checkpoint : t -> checkpoint
(** Pin the current version. O(1). *)

val restore : checkpoint -> t
(** The pinned version, exactly as it was. O(1). *)

val pp : Format.formatter -> t -> unit
