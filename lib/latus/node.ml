open Zen_crypto
open Zen_snark
open Zen_mainchain
open Zendoo

module Int_map = Map.Make (Int)

let wcert_schema = Proofdata.[ Tdigest; Tfield; Tblob ]
let withdrawal_schema = Proofdata.[ Tblob ]

let config_for ~ledger_id ~start_block ~epoch_len ~submit_len family =
  Sidechain_config.make ~ledger_id ~start_block ~epoch_len ~submit_len
    ~wcert_vk:(Circuits.wcert_keys family).vk
    ~btr_vk:(Circuits.ownership_keys family).vk
    ~csw_vk:(Circuits.ownership_keys family).vk
    ~wcert_proofdata:wcert_schema ~btr_proofdata:withdrawal_schema
    ~csw_proofdata:withdrawal_schema ()

type record = {
  block : Sc_block.t;
  state_after : Sc_state.t;
  proofs : Recursive.transition_proof list; (* application order *)
  wepoch : int;
  completes_epoch : int option;
}

type epoch_archive = {
  end_state : Sc_state.t;
  delta : Bytes.t;
  end_block_hash : Hash.t;
}

type t = {
  config : Sidechain_config.t;
  params : Params.t;
  fam : Circuits.family;
  rsys : Recursive.system;
  forger : Sc_wallet.t;
  prove : bool;
  pool : Pool.t; (* domains for epoch-proof folding (certificates) *)
  genesis_state : Sc_state.t;
  schedule : Epoch.schedule;
  mutable records : record list; (* newest first *)
  mutable mempool : Sc_mempool.t;
  mutable archives : epoch_archive Int_map.t; (* by certified epoch *)
}

let create ~config ~params ~family ~forger ?(prove = true)
    ?(pool = Pool.sequential) () =
  match Params.validate params with
  | Error e -> Error e
  | Ok () ->
    if Sc_wallet.addresses forger = [] then
      Error "latus node: forger wallet has no keys"
    else
      Ok
        {
          config;
          params;
          fam = family;
          rsys =
            Recursive.create ~name:"latus" ~base_vks:(Circuits.base_vks family);
          forger;
          prove;
          pool;
          genesis_state = Sc_state.create params;
          schedule = Epoch.of_config config;
          records = [];
          mempool = Sc_mempool.empty;
          archives = Int_map.empty;
        }

let params t = t.params
let family t = t.fam
let ledger_id t = t.config.ledger_id

let tip_record t = match t.records with [] -> None | r :: _ -> Some r

let tip_state t =
  match tip_record t with None -> t.genesis_state | Some r -> r.state_after

(* The state the next block builds on: an epoch boundary resets the
   transient BT list and snapshots the MST delta (§5.2.1, App. A). *)
let next_block_state t =
  match tip_record t with
  | None -> t.genesis_state
  | Some r -> (
    match r.completes_epoch with
    | Some _ -> Sc_state.reset_epoch r.state_after
    | None -> r.state_after)

let next_block_wepoch t =
  match tip_record t with
  | None -> 0
  | Some r -> (
    match r.completes_epoch with
    | Some e -> e + 1
    | None -> r.wepoch)

let sc_height t =
  match tip_record t with None -> -1 | Some r -> r.block.height

let mc_synced_height t =
  let rec go = function
    | [] -> t.config.start_block - 1
    | r :: rest -> (
      match List.rev r.block.mc_refs with
      | last :: _ -> Mc_ref.height last
      | [] -> go rest)
  in
  go t.records

let blocks t = List.rev_map (fun r -> r.block) t.records

let submit_tx t tx =
  match Sc_tx.validate (next_block_state t) tx with
  | Error e -> Error e
  | Ok () ->
    (* O(1) admission, deduplicated by txid (a resubmission is a
       no-op, not a second queue entry). *)
    t.mempool <- Sc_mempool.add t.mempool tx;
    Ok ()

let mempool_size t = Sc_mempool.size t.mempool

let stake_distribution t = Leader.of_mst (tip_state t).mst

let epoch_randomness t =
  match tip_record t with
  | None -> Hash.tagged "latus.rand.genesis" [ Hash.to_raw t.config.ledger_id ]
  | Some r -> Sc_block.hash r.block

let leader_for_slot t ~slot =
  Leader.select (stake_distribution t) ~rand:(epoch_randomness t) ~slot

let ( let* ) = Result.bind

(* ---- MC reorg reconciliation ---- *)

(* Drop sidechain blocks whose MC references are no longer on the MC
   best chain; their payments return to the mempool (FTTx/BTRTx are
   rebuilt from the new MC blocks when re-referenced). *)
let reconcile t ~mc =
  let ref_valid r = Chain.on_best_chain mc (Mc_ref.block_hash r) in
  let rec split_valid kept = function
    (* records oldest-first here *)
    | [] -> (List.rev kept, [])
    | r :: rest ->
      if List.for_all ref_valid r.block.mc_refs then
        split_valid (r :: kept) rest
      else (List.rev kept, r :: rest)
  in
  let oldest_first = List.rev t.records in
  let kept, dropped = split_valid [] oldest_first in
  if dropped <> [] then begin
    let recovered =
      List.concat_map
        (fun r ->
          List.filter
            (function
              | Sc_tx.Payment _ | Sc_tx.Backward_transfer_tx _ -> true
              | Sc_tx.Forward_transfers_tx _
              | Sc_tx.Backward_transfer_requests_tx _ -> false)
            r.block.txs)
        dropped
    in
    t.records <- List.rev kept;
    (* Front of the FIFO, deduplicated by txid: a payment that is both
       in a dropped block and still pooled (or dropped twice across
       branches) must not be double-queued. *)
    t.mempool <- Sc_mempool.reinject_front t.mempool recovered
  end;
  List.length dropped

(* ---- Forging ---- *)

let build_refs t ~mc =
  let synced = mc_synced_height t in
  let wepoch = next_block_wepoch t in
  let epoch_end = Epoch.last_height t.schedule ~epoch:wepoch in
  let mc_state = Chain.tip_state mc in
  let hi = min mc_state.height epoch_end in
  let rec go h acc =
    if h > hi then Ok (List.rev acc)
    else begin
      match Chain_state.block_hash_at mc_state h with
      | None -> Error "forge: missing mainchain block"
      | Some bh -> (
        match Chain.block mc bh with
        | None -> Error "forge: mainchain block body unavailable"
        | Some b ->
          let* r = Mc_ref.build ~ledger_id:t.config.ledger_id b in
          go (h + 1) (r :: acc))
    end
  in
  go (max (synced + 1) t.config.start_block) []

let txs_of_refs refs =
  List.concat_map
    (fun (r : Mc_ref.t) ->
      let mcid = Mc_ref.block_hash r in
      (if r.fts <> [] then
         [ Sc_tx.Forward_transfers_tx { mcid; fts = r.fts } ]
       else [])
      @
      if r.btrs <> [] then
        [ Sc_tx.Backward_transfer_requests_tx { mcid; btrs = r.btrs } ]
      else [])
    refs

let prove_and_apply t state tx =
  let* steps = Sc_tx.steps state tx in
  List.fold_left
    (fun acc step ->
      let* state, proofs = acc in
      let* proofs =
        if not t.prove then Ok proofs
        else begin
          let* proof, vk, s_from, s_to = Circuits.prove_step t.fam state step in
          let* tp =
            Recursive.of_base t.rsys ~vk ~s_from ~s_to ~extra:[||] proof
          in
          Ok (proofs @ [ tp ])
        end
      in
      let* state = Sc_tx.apply_step state step in
      Ok (state, proofs))
    (Ok (state, []))
    steps

let blocks_forged =
  Zen_obs.Counter.make ~help:"Sidechain blocks forged" "latus.blocks_forged"

let certificates =
  Zen_obs.Counter.make ~help:"Withdrawal certificates built"
    "latus.certificates"

let forge t ~mc ~slot ?(enforce_leader = false) () =
  Zen_obs.Trace.with_span ~cat:"latus"
    ~args:[ ("slot", string_of_int slot) ]
    "latus.forge"
  @@ fun () ->
  let (_ : int) = reconcile t ~mc in
  let* refs = build_refs t ~mc in
  let forger_addrs = Sc_wallet.addresses t.forger in
  let leader_ok, forger_addr =
    if not enforce_leader then (true, List.hd forger_addrs)
    else begin
      match leader_for_slot t ~slot with
      | None ->
        (* Empty stake distribution: bootstrap — the forger wallet's
           first key may produce blocks until stake exists. *)
        (true, List.hd forger_addrs)
      | Some leader ->
        if List.exists (Hash.equal leader) forger_addrs then (true, leader)
        else (false, List.hd forger_addrs)
    end
  in
  if not leader_ok then Ok None
  else begin
    let mempool_txs = Sc_mempool.txs t.mempool in
    if refs = [] && mempool_txs = [] then Ok None
    else begin
      let state0 = next_block_state t in
      let wepoch = next_block_wepoch t in
      let sync_txs = txs_of_refs refs in
      (* Mempool transactions that became invalid (double spends after
         a reorg, stale inputs) are dropped, not fatal. *)
      let* state2, proofs2, included =
        Zen_obs.Trace.with_span ~cat:"latus"
          ~args:
            [
              ("sync_txs", string_of_int (List.length sync_txs));
              ("mempool_txs", string_of_int (List.length mempool_txs));
            ]
          "latus.validate"
        @@ fun () ->
        let* state1, proofs1 =
          List.fold_left
            (fun acc tx ->
              let* st, ps = acc in
              let* st, ps' = prove_and_apply t st tx in
              Ok (st, ps @ ps'))
            (Ok (state0, []))
            sync_txs
        in
        let state2, proofs2, included =
          List.fold_left
            (fun (st, ps, inc) tx ->
              match prove_and_apply t st tx with
              | Ok (st', ps') -> (st', ps @ ps', inc @ [ tx ])
              | Error _ -> (st, ps, inc))
            (state1, proofs1, [])
            mempool_txs
        in
        Ok (state2, proofs2, included)
      in
      let parent =
        match tip_record t with
        | None -> Sc_block.genesis_parent
        | Some r -> Sc_block.hash r.block
      in
      let* sk =
        match Sc_wallet.secret_for t.forger forger_addr with
        | Some sk -> Ok sk
        | None -> Error "forge: missing forger key"
      in
      let block =
        Sc_block.forge ~parent ~height:(sc_height t + 1) ~slot ~sk ~mc_refs:refs
          ~txs:included ~state_hash:(Sc_state.hash state2)
      in
      let completes_epoch =
        match List.rev refs with
        | [] -> None
        | last :: _ ->
          if Mc_ref.height last = Epoch.last_height t.schedule ~epoch:wepoch
          then Some wepoch
          else None
      in
      t.records <-
        { block; state_after = state2; proofs = proofs2; wepoch; completes_epoch }
        :: t.records;
      t.mempool <- Sc_mempool.remove_included t.mempool included;
      Zen_obs.Counter.incr blocks_forged;
      Ok (Some block)
    end
  end

(* ---- Certificates ---- *)

let certified_epochs t = List.map fst (Int_map.bindings t.archives)

let next_uncertified_epoch t =
  match Int_map.max_binding_opt t.archives with
  | None -> 0
  | Some (e, _) -> e + 1

(* The epoch to certify next is decided by the mainchain, not by the
   node's archive: a certificate the node built can be lost before
   acceptance (reorg, dropped submission), and with the ledger's
   sequential-certification rule every later epoch would then be
   rejected as out of order. Targeting the MC's earliest uncertified
   epoch lets the node rebuild and resubmit a lost certificate from its
   retained records instead of stranding the sidechain. *)
let certificate_target t ~mc =
  let node_next = next_uncertified_epoch t in
  let mc_state = Chain.tip_state mc in
  match Sc_ledger.find mc_state.scs t.config.ledger_id with
  | None -> node_next
  | Some s ->
    let mc_next =
      match Sc_ledger.last_cert s with
      | None -> 0
      | Some r -> r.cert.epoch_id + 1
    in
    min node_next mc_next

let epoch_records t ~epoch =
  List.rev (List.filter (fun r -> r.wepoch = epoch) t.records)

let completing_record t ~epoch =
  List.find_opt (fun r -> r.completes_epoch = Some epoch) t.records

let epoch_start_hash t ~epoch =
  if epoch = 0 then Sc_state.hash t.genesis_state
  else
    match completing_record t ~epoch:(epoch - 1) with
    | None -> Sc_state.hash t.genesis_state
    | Some r -> Sc_state.hash (Sc_state.reset_epoch r.state_after)

let build_certificate t ~mc =
  if not t.prove then Error "certificate: node runs with proving disabled"
  else begin
    let mc_now = Chain.tip_state mc in
    if Sc_ledger.is_ceased mc_now.scs t.config.ledger_id ~height:mc_now.height
    then Ok None (* a ceased sidechain can never certify again (Def. 4.2) *)
    else
    let epoch = certificate_target t ~mc in
    match completing_record t ~epoch with
    | None -> Ok None (* epoch not yet complete *)
    | Some last_record ->
      Zen_obs.Trace.with_span ~cat:"latus"
        ~args:[ ("epoch", string_of_int epoch) ]
        "latus.certify"
      @@ fun () ->
      let end_state = last_record.state_after in
      let s_prev = epoch_start_hash t ~epoch in
      let s_last = Sc_state.hash end_state in
      let proofs = List.concat_map (fun r -> r.proofs) (epoch_records t ~epoch) in
      (* The §5.5.3.1 statement, checked natively before the binding
         proof is produced (simulation oracle, DESIGN.md §3): the
         epoch's recursive transition proof must verify and span
         exactly (s_prev → s_last). An epoch without transitions is
         the heartbeat case: the state must not have moved. *)
      let* () =
        match proofs with
        | [] ->
          if Fp.equal s_prev s_last then Ok ()
          else Error "certificate: state moved without transition proofs"
        | _ -> (
          let* top =
            Zen_obs.Trace.with_span ~cat:"latus"
              ~args:[ ("proofs", string_of_int (List.length proofs)) ]
              "latus.fold"
            @@ fun () -> Recursive.fold_balanced ~pool:t.pool t.rsys proofs
          in
          if not (Recursive.verify t.rsys top) then
            Error "certificate: epoch transition proof rejected"
          else if
            not
              (Fp.equal (Recursive.s_from top) s_prev
              && Fp.equal (Recursive.s_to top) s_last)
          then Error "certificate: epoch proof endpoints mismatch"
          else Ok ())
      in
      let bt_list = Sc_state.backward_transfers end_state in
      let quality = last_record.block.height in
      let delta = Mst.delta_bits end_state.mst in
      let proofdata =
        Proofdata.
          [
            Digest (Sc_block.hash last_record.block);
            Field (Mst.root end_state.mst);
            Blob (Bytes.to_string delta);
          ]
      in
      let mc_state = Chain.tip_state mc in
      let resolve h =
        if h < 0 then Some Hash.zero else Chain_state.block_hash_at mc_state h
      in
      let* end_prev_epoch, end_epoch =
        match
          ( resolve (Epoch.last_height t.schedule ~epoch:(epoch - 1)),
            resolve (Epoch.last_height t.schedule ~epoch) )
        with
        | Some a, Some b -> Ok (a, b)
        | _ -> Error "certificate: epoch boundary blocks not on MC best chain"
      in
      let bt_root = Backward_transfer.list_root bt_list in
      let* proof =
        Circuits.prove_wcert_binding t.fam ~quality ~bt_root ~end_prev_epoch
          ~end_epoch ~proofdata ~s_prev ~s_last
      in
      let cert =
        Withdrawal_certificate.make ~ledger_id:t.config.ledger_id
          ~epoch_id:epoch ~quality ~bt_list ~proofdata ~proof
      in
      (* A rebuild of an already-archived epoch (lost certificate)
         must not duplicate the archive entry. *)
      if not (Int_map.mem epoch t.archives) then
        t.archives <-
          Int_map.add epoch
            {
              end_state;
              delta;
              end_block_hash = Sc_block.hash last_record.block;
            }
            t.archives;
      Zen_obs.Counter.incr certificates;
      Ok (Some (Tx.Certificate cert))
  end

let state_at_epoch_end t ~epoch =
  Option.map (fun a -> a.end_state) (Int_map.find_opt epoch t.archives)

let delta_for_epoch t ~epoch =
  Option.map (fun a -> a.delta) (Int_map.find_opt epoch t.archives)

(* ---- Mainchain-managed withdrawals (§5.5.3.2, §5.5.3.3) ---- *)

let create_withdrawal_request t ~kind ~utxo ~receiver ~reference_block
    ?as_of_epoch () =
  let* latest =
    match Int_map.max_binding_opt t.archives with
    | None -> Error "withdrawal: no certified epoch yet"
    | Some (e, _) -> Ok e
  in
  let epoch = Option.value as_of_epoch ~default:latest in
  let* archive =
    match Int_map.find_opt epoch t.archives with
    | Some a -> Ok a
    | None -> Error "withdrawal: epoch not certified"
  in
  (* Appendix A: when proving against an older committed state, the
     slot must be untouched in every later epoch's mst_delta. *)
  let pos = Utxo.position ~mst_depth:t.params.mst_depth utxo in
  let* () =
    let rec check e =
      if e > latest then Ok ()
      else begin
        match Int_map.find_opt e t.archives with
        | None -> Error "withdrawal: missing delta for intermediate epoch"
        | Some a ->
          if Mst.delta_bit a.delta pos then
            Error "withdrawal: utxo slot was modified after the chosen epoch"
          else check (e + 1)
      end
    in
    check (epoch + 1)
  in
  let proofdata = [ Proofdata.Blob (Utxo.encode utxo) ] in
  let* proof =
    Circuits.prove_ownership t.fam ~mst:archive.end_state.mst ~utxo
      ~reference_block ~receiver ~proofdata
  in
  Ok
    (Mainchain_withdrawal.make ~kind ~ledger_id:t.config.ledger_id ~receiver
       ~amount:utxo.amount ~nullifier:(Utxo.nullifier utxo) ~proofdata ~proof)
