open Zen_crypto
open Zen_snark
open Zen_mainchain
open Zendoo

module Int_map = Map.Make (Int)

let wcert_schema = Proofdata.[ Tdigest; Tfield; Tblob ]
let withdrawal_schema = Proofdata.[ Tblob ]

let config_for ~ledger_id ~start_block ~epoch_len ~submit_len family =
  Sidechain_config.make ~ledger_id ~start_block ~epoch_len ~submit_len
    ~wcert_vk:(Circuits.wcert_keys family).vk
    ~btr_vk:(Circuits.ownership_keys family).vk
    ~csw_vk:(Circuits.ownership_keys family).vk
    ~wcert_proofdata:wcert_schema ~btr_proofdata:withdrawal_schema
    ~csw_proofdata:withdrawal_schema ()

type record = {
  block : Sc_block.t;
  state_after : Sc_state.t;
  proofs : Recursive.transition_proof list;
      (* application order; empty when the pipeline carries the proofs *)
  leaf_base : int; (* first pipeline leaf index of this block's epoch stream *)
  leaf_count : int; (* pipeline leaves this block contributed *)
  wepoch : int;
  completes_epoch : int option;
}

type epoch_archive = {
  end_state : Sc_state.t;
  delta : Bytes.t;
  end_block_hash : Hash.t;
}

type t = {
  config : Sidechain_config.t;
  params : Params.t;
  fam : Circuits.family;
  rsys : Recursive.system;
  forger : Sc_wallet.t;
  prove : bool;
  pool : Pool.t; (* domains for proving and epoch-proof folding *)
  pipeline : Proof_pipeline.t option; (* None: synchronous forge-path proving *)
  retain_epochs : int;
  genesis_state : Sc_state.t;
  schedule : Epoch.schedule;
  mutable records : record list; (* newest first *)
  mutable by_epoch : record list Int_map.t; (* newest first, per wepoch *)
  mutable mempool : Sc_mempool.t;
  mutable archives : epoch_archive Int_map.t; (* by certified epoch *)
}

let create ~config ~params ~family ~forger ?(prove = true)
    ?(pool = Pool.sequential) ?(pipeline = true) ?(retain_epochs = 8) () =
  match Params.validate params with
  | Error e -> Error e
  | Ok () ->
    if Sc_wallet.addresses forger = [] then
      Error "latus node: forger wallet has no keys"
    else if retain_epochs < 2 then
      Error "latus node: retain_epochs must be at least 2"
    else begin
      let rsys =
        Recursive.create ~name:"latus" ~base_vks:(Circuits.base_vks family)
      in
      Ok
        {
          config;
          params;
          fam = family;
          rsys;
          forger;
          prove;
          pool;
          pipeline =
            (if prove && pipeline then
               Some (Proof_pipeline.create ~pool ~family ~rsys)
             else None);
          retain_epochs;
          genesis_state = Sc_state.create params;
          schedule = Epoch.of_config config;
          records = [];
          by_epoch = Int_map.empty;
          mempool = Sc_mempool.empty;
          archives = Int_map.empty;
        }
    end

let params t = t.params
let family t = t.fam
let ledger_id t = t.config.ledger_id

let tip_record t = match t.records with [] -> None | r :: _ -> Some r

let tip_state t =
  match tip_record t with None -> t.genesis_state | Some r -> r.state_after

(* The state the next block builds on: an epoch boundary resets the
   transient BT list and snapshots the MST delta (§5.2.1, App. A). *)
let next_block_state t =
  match tip_record t with
  | None -> t.genesis_state
  | Some r -> (
    match r.completes_epoch with
    | Some _ -> Sc_state.reset_epoch r.state_after
    | None -> r.state_after)

let next_block_wepoch t =
  match tip_record t with
  | None -> 0
  | Some r -> (
    match r.completes_epoch with
    | Some e -> e + 1
    | None -> r.wepoch)

let sc_height t =
  match tip_record t with None -> -1 | Some r -> r.block.height

let mc_synced_height t =
  let rec go = function
    | [] -> t.config.start_block - 1
    | r :: rest -> (
      match List.rev r.block.mc_refs with
      | last :: _ -> Mc_ref.height last
      | [] -> go rest)
  in
  go t.records

let blocks t = List.rev_map (fun r -> r.block) t.records

let submit_tx t tx =
  match Sc_tx.validate (next_block_state t) tx with
  | Error e -> Error e
  | Ok () ->
    (* O(1) admission, deduplicated by txid (a resubmission is a
       no-op, not a second queue entry). *)
    t.mempool <- Sc_mempool.add t.mempool tx;
    Ok ()

let mempool_size t = Sc_mempool.size t.mempool

let stake_distribution t = Leader.of_mst (tip_state t).mst

let epoch_randomness t =
  match tip_record t with
  | None -> Hash.tagged "latus.rand.genesis" [ Hash.to_raw t.config.ledger_id ]
  | Some r -> Sc_block.hash r.block

let leader_for_slot t ~slot =
  Leader.select (stake_distribution t) ~rand:(epoch_randomness t) ~slot

let ( let* ) = Result.bind

let index_records records =
  List.fold_left
    (fun m r ->
      Int_map.update r.wepoch
        (function None -> Some [ r ] | Some rs -> Some (r :: rs))
        m)
    Int_map.empty (List.rev records)

(* ---- MC reorg reconciliation ---- *)

(* Drop sidechain blocks whose MC references are no longer on the MC
   best chain; their payments return to the mempool (FTTx/BTRTx are
   rebuilt from the new MC blocks when re-referenced). *)
let reconcile t ~mc =
  let ref_valid r = Chain.on_best_chain mc (Mc_ref.block_hash r) in
  let rec split_valid kept = function
    (* records oldest-first here *)
    | [] -> (List.rev kept, [])
    | r :: rest ->
      if List.for_all ref_valid r.block.mc_refs then
        split_valid (r :: kept) rest
      else (List.rev kept, r :: rest)
  in
  let oldest_first = List.rev t.records in
  let kept, dropped = split_valid [] oldest_first in
  if dropped <> [] then begin
    let recovered =
      List.concat_map
        (fun r ->
          List.filter
            (function
              | Sc_tx.Payment _ | Sc_tx.Backward_transfer_tx _ -> true
              | Sc_tx.Forward_transfers_tx _
              | Sc_tx.Backward_transfer_requests_tx _ -> false)
            r.block.txs)
        dropped
    in
    t.records <- List.rev kept;
    t.by_epoch <- index_records t.records;
    (* Roll the proving pipeline back with the records: keep only the
       leaves of blocks that survived. The first dropped record of each
       epoch (oldest first in [dropped]) marks the cut. *)
    (match t.pipeline with
    | None -> ()
    | Some p ->
      let cuts =
        List.fold_left
          (fun m r ->
            Int_map.update r.wepoch
              (function None -> Some r.leaf_base | keep -> keep)
              m)
          Int_map.empty dropped
      in
      Int_map.iter (fun epoch keep -> Proof_pipeline.truncate p ~epoch ~keep) cuts);
    (* Front of the FIFO, deduplicated by txid: a payment that is both
       in a dropped block and still pooled (or dropped twice across
       branches) must not be double-queued. *)
    t.mempool <- Sc_mempool.reinject_front t.mempool recovered
  end;
  List.length dropped

(* ---- Forging ---- *)

let build_refs t ~mc =
  let synced = mc_synced_height t in
  let wepoch = next_block_wepoch t in
  let epoch_end = Epoch.last_height t.schedule ~epoch:wepoch in
  let mc_state = Chain.tip_state mc in
  let hi = min mc_state.height epoch_end in
  let rec go h acc =
    if h > hi then Ok (List.rev acc)
    else begin
      match Chain_state.block_hash_at mc_state h with
      | None -> Error "forge: missing mainchain block"
      | Some bh -> (
        match Chain.block mc bh with
        | None -> Error "forge: mainchain block body unavailable"
        | Some b ->
          let* r = Mc_ref.build ~ledger_id:t.config.ledger_id b in
          go (h + 1) (r :: acc))
    end
  in
  go (max (synced + 1) t.config.start_block) []

let txs_of_refs refs =
  List.concat_map
    (fun (r : Mc_ref.t) ->
      let mcid = Mc_ref.block_hash r in
      (if r.fts <> [] then
         [ Sc_tx.Forward_transfers_tx { mcid; fts = r.fts } ]
       else [])
      @
      if r.btrs <> [] then
        [ Sc_tx.Backward_transfer_requests_tx { mcid; btrs = r.btrs } ]
      else [])
    refs

(* Applies a transaction's steps to [state]. Proofs are either produced
   here, synchronously ([proofs_rev]), or deferred: with a pipeline the
   pre-step snapshots are collected ([snaps_rev]) and enqueued by the
   caller once the block is definitely being committed, so an abandoned
   block never pollutes the epoch's proof stream. Both accumulators are
   built reversed and reversed once by the caller (the old
   [proofs @ [tp]] append made validation quadratic in block size). *)
let prove_and_apply t state tx =
  let* steps = Sc_tx.steps state tx in
  let deferred = t.pipeline <> None in
  List.fold_left
    (fun acc step ->
      let* state, proofs_rev, snaps_rev = acc in
      let* proofs_rev =
        if (not t.prove) || deferred then Ok proofs_rev
        else begin
          let* proof, vk, s_from, s_to = Circuits.prove_step t.fam state step in
          let* tp =
            Recursive.of_base t.rsys ~vk ~s_from ~s_to ~extra:[||] proof
          in
          Ok (tp :: proofs_rev)
        end
      in
      let snaps_rev =
        if deferred then (state, step) :: snaps_rev else snaps_rev
      in
      let* state = Sc_tx.apply_step state step in
      Ok (state, proofs_rev, snaps_rev))
    (Ok (state, [], []))
    steps

let blocks_forged =
  Zen_obs.Counter.make ~help:"Sidechain blocks forged" "latus.blocks_forged"

let certificates =
  Zen_obs.Counter.make ~help:"Withdrawal certificates built"
    "latus.certificates"

let forge t ~mc ~slot ?(enforce_leader = false) () =
  Zen_obs.Trace.with_span ~cat:"latus"
    ~args:[ ("slot", string_of_int slot) ]
    "latus.forge"
  @@ fun () ->
  let (_ : int) = reconcile t ~mc in
  let* refs = build_refs t ~mc in
  let forger_addrs = Sc_wallet.addresses t.forger in
  let leader_ok, forger_addr =
    if not enforce_leader then (true, List.hd forger_addrs)
    else begin
      match leader_for_slot t ~slot with
      | None ->
        (* Empty stake distribution: bootstrap — the forger wallet's
           first key may produce blocks until stake exists. *)
        (true, List.hd forger_addrs)
      | Some leader ->
        if List.exists (Hash.equal leader) forger_addrs then (true, leader)
        else (false, List.hd forger_addrs)
    end
  in
  if not leader_ok then Ok None
  else begin
    let mempool_txs = Sc_mempool.txs t.mempool in
    if refs = [] && mempool_txs = [] then Ok None
    else begin
      let state0 = next_block_state t in
      let wepoch = next_block_wepoch t in
      let sync_txs = txs_of_refs refs in
      (* Mempool transactions that became invalid (double spends after
         a reorg, stale inputs) are dropped, not fatal. All accumulators
         are reversed lists (linear in block size, not quadratic). *)
      let* state2, proofs2, snaps2, included =
        Zen_obs.Trace.with_span ~cat:"latus"
          ~args:
            [
              ("sync_txs", string_of_int (List.length sync_txs));
              ("mempool_txs", string_of_int (List.length mempool_txs));
            ]
          "latus.validate"
        @@ fun () ->
        let* state1, proofs1_rev, snaps1_rev =
          List.fold_left
            (fun acc tx ->
              let* st, ps, sn = acc in
              let* st, ps', sn' = prove_and_apply t st tx in
              (* [ps'] is this tx's proofs reversed; prepending keeps the
                 whole accumulator reversed at linear cost. *)
              Ok (st, ps' @ ps, sn' @ sn))
            (Ok (state0, [], []))
            sync_txs
        in
        let state2, proofs_rev, snaps_rev, included_rev =
          List.fold_left
            (fun (st, ps, sn, inc) tx ->
              match prove_and_apply t st tx with
              | Ok (st', ps', sn') -> (st', ps' @ ps, sn' @ sn, tx :: inc)
              | Error _ -> (st, ps, sn, inc))
            (state1, proofs1_rev, snaps1_rev, [])
            mempool_txs
        in
        Ok (state2, List.rev proofs_rev, List.rev snaps_rev, List.rev included_rev)
      in
      let parent =
        match tip_record t with
        | None -> Sc_block.genesis_parent
        | Some r -> Sc_block.hash r.block
      in
      let* sk =
        match Sc_wallet.secret_for t.forger forger_addr with
        | Some sk -> Ok sk
        | None -> Error "forge: missing forger key"
      in
      let block =
        Sc_block.forge ~parent ~height:(sc_height t + 1) ~slot ~sk ~mc_refs:refs
          ~txs:included ~state_hash:(Sc_state.hash state2)
      in
      let completes_epoch =
        match List.rev refs with
        | [] -> None
        | last :: _ ->
          if Mc_ref.height last = Epoch.last_height t.schedule ~epoch:wepoch
          then Some wepoch
          else None
      in
      (* Commit point: the block definitely enters the chain, so its
         proving tasks may now enter the epoch stream (enqueueing any
         earlier would let an aborted forge pollute the certificate). *)
      let leaf_base, leaf_count =
        match t.pipeline with
        | None -> (0, 0)
        | Some p ->
          let base = Proof_pipeline.leaves p ~epoch:wepoch in
          List.iter
            (fun (st, step) ->
              Proof_pipeline.enqueue p ~epoch:wepoch ~state:st ~step)
            snaps2;
          (base, List.length snaps2)
      in
      let record =
        {
          block;
          state_after = state2;
          proofs = proofs2;
          leaf_base;
          leaf_count;
          wepoch;
          completes_epoch;
        }
      in
      t.records <- record :: t.records;
      t.by_epoch <-
        Int_map.update wepoch
          (function None -> Some [ record ] | Some rs -> Some (record :: rs))
          t.by_epoch;
      t.mempool <- Sc_mempool.remove_included t.mempool included;
      Zen_obs.Counter.incr blocks_forged;
      Ok (Some block)
    end
  end

(* ---- Certificates ---- *)

let certified_epochs t = List.map fst (Int_map.bindings t.archives)

let next_uncertified_epoch t =
  match Int_map.max_binding_opt t.archives with
  | None -> 0
  | Some (e, _) -> e + 1

(* The epoch to certify next is decided by the mainchain, not by the
   node's archive: a certificate the node built can be lost before
   acceptance (reorg, dropped submission), and with the ledger's
   sequential-certification rule every later epoch would then be
   rejected as out of order. Targeting the MC's earliest uncertified
   epoch lets the node rebuild and resubmit a lost certificate from its
   retained records instead of stranding the sidechain. *)
let certificate_target t ~mc =
  let node_next = next_uncertified_epoch t in
  let mc_state = Chain.tip_state mc in
  match Sc_ledger.find mc_state.scs t.config.ledger_id with
  | None -> node_next
  | Some s ->
    let mc_next =
      match Sc_ledger.last_cert s with
      | None -> 0
      | Some r -> r.cert.epoch_id + 1
    in
    min node_next mc_next

(* Records of one withdrawal epoch, oldest first — O(log e + k) via the
   epoch index instead of re-filtering the whole record list. *)
let epoch_records t ~epoch =
  match Int_map.find_opt epoch t.by_epoch with
  | None -> []
  | Some rs -> List.rev rs

(* The block completing [epoch] carries that epoch's last MC reference,
   so it lives in [epoch]'s own bucket. *)
let completing_record t ~epoch =
  match Int_map.find_opt epoch t.by_epoch with
  | None -> None
  | Some rs -> List.find_opt (fun r -> r.completes_epoch = Some epoch) rs

let epoch_start_hash t ~epoch =
  if epoch = 0 then Sc_state.hash t.genesis_state
  else
    match completing_record t ~epoch:(epoch - 1) with
    | Some r -> Sc_state.hash (Sc_state.reset_epoch r.state_after)
    | None -> (
      (* The previous epoch's records may have been pruned below the
         certified horizon; its archived end state commits to the same
         hash the completing record would. *)
      match Int_map.find_opt (epoch - 1) t.archives with
      | Some a -> Sc_state.hash (Sc_state.reset_epoch a.end_state)
      | None -> Sc_state.hash t.genesis_state)

let records_pruned =
  Zen_obs.Counter.make
    ~help:"Sidechain block records pruned below the certified horizon"
    "latus.records.pruned"

(* Forget records of epochs long since certified by the mainchain. The
   retention margin covers certificate rebuilds after a reorg reverts
   recent certificates (storm reorgs are ≤ 3 MC blocks deep, well inside
   the margin); withdrawals replay from [archives], which are kept. *)
let prune_certified t ~mc =
  let mc_state = Chain.tip_state mc in
  match Sc_ledger.find mc_state.scs t.config.ledger_id with
  | None -> ()
  | Some s ->
    let mc_next =
      match Sc_ledger.last_cert s with
      | None -> 0
      | Some r -> r.cert.epoch_id + 1
    in
    let keep_from = mc_next - t.retain_epochs in
    let stale =
      match Int_map.min_binding_opt t.by_epoch with
      | Some (e, _) -> e < keep_from
      | None -> false
    in
    if stale then begin
      let before = List.length t.records in
      t.records <- List.filter (fun r -> r.wepoch >= keep_from) t.records;
      t.by_epoch <- Int_map.filter (fun e _ -> e >= keep_from) t.by_epoch;
      (match t.pipeline with
      | Some p -> Proof_pipeline.drop_below p ~epoch:keep_from
      | None -> ());
      Zen_obs.Counter.add records_pruned (before - List.length t.records)
    end

let certify_s =
  Zen_obs.Histogram.make ~help:"certificate build wall-clock (certify path)"
    ~bounds:(Zen_obs.Histogram.exponential_bounds ~lo:1e-4 ~factor:4. ~n:10)
    "latus.certify.seconds"

(* The epoch's recursive transition proof: either fold the synchronously
   produced proofs in one burst (no pipeline — O(n) merges here, on the
   certify path), or complete the pipeline's incremental fold (≤ ⌈log₂ n⌉
   carry merges plus any straggler base proofs). Both produce the same
   proof bytes and the same errors. *)
let epoch_top_proof t ~epoch =
  match t.pipeline with
  | None -> (
    let proofs = List.concat_map (fun r -> r.proofs) (epoch_records t ~epoch) in
    match proofs with
    | [] -> Ok None
    | _ ->
      let* top =
        Zen_obs.Trace.with_span ~cat:"latus"
          ~args:[ ("proofs", string_of_int (List.length proofs)) ]
          "latus.fold"
        @@ fun () -> Recursive.fold_balanced ~pool:t.pool t.rsys proofs
      in
      Ok (Some top))
  | Some p -> (
    match Proof_pipeline.leaves p ~epoch with
    | 0 -> Ok None
    | n ->
      let* top =
        Zen_obs.Trace.with_span ~cat:"latus"
          ~args:[ ("proofs", string_of_int n) ]
          "latus.fold"
        @@ fun () -> Proof_pipeline.await_epoch p ~epoch
      in
      Ok (Some top))

let build_certificate t ~mc =
  if not t.prove then Error "certificate: node runs with proving disabled"
  else begin
    prune_certified t ~mc;
    let mc_now = Chain.tip_state mc in
    if Sc_ledger.is_ceased mc_now.scs t.config.ledger_id ~height:mc_now.height
    then Ok None (* a ceased sidechain can never certify again (Def. 4.2) *)
    else
    let epoch = certificate_target t ~mc in
    match completing_record t ~epoch with
    | None -> Ok None (* epoch not yet complete *)
    | Some last_record ->
      Zen_obs.Trace.with_span ~cat:"latus"
        ~args:[ ("epoch", string_of_int epoch) ]
        "latus.certify"
      @@ fun () ->
      Zen_obs.Histogram.time certify_s
      @@ fun () ->
      let end_state = last_record.state_after in
      let s_prev = epoch_start_hash t ~epoch in
      let s_last = Sc_state.hash end_state in
      (* The §5.5.3.1 statement, checked natively before the binding
         proof is produced (simulation oracle, DESIGN.md §3): the
         epoch's recursive transition proof must verify and span
         exactly (s_prev → s_last). An epoch without transitions is
         the heartbeat case: the state must not have moved. *)
      let* () =
        let* top = epoch_top_proof t ~epoch in
        match top with
        | None ->
          if Fp.equal s_prev s_last then Ok ()
          else Error "certificate: state moved without transition proofs"
        | Some top ->
          if not (Recursive.verify t.rsys top) then
            Error "certificate: epoch transition proof rejected"
          else if
            not
              (Fp.equal (Recursive.s_from top) s_prev
              && Fp.equal (Recursive.s_to top) s_last)
          then Error "certificate: epoch proof endpoints mismatch"
          else Ok ()
      in
      let bt_list = Sc_state.backward_transfers end_state in
      let quality = last_record.block.height in
      let delta = Mst.delta_bits end_state.mst in
      let proofdata =
        Proofdata.
          [
            Digest (Sc_block.hash last_record.block);
            Field (Mst.root end_state.mst);
            Blob (Bytes.to_string delta);
          ]
      in
      let mc_state = Chain.tip_state mc in
      let resolve h =
        if h < 0 then Some Hash.zero else Chain_state.block_hash_at mc_state h
      in
      let* end_prev_epoch, end_epoch =
        match
          ( resolve (Epoch.last_height t.schedule ~epoch:(epoch - 1)),
            resolve (Epoch.last_height t.schedule ~epoch) )
        with
        | Some a, Some b -> Ok (a, b)
        | _ -> Error "certificate: epoch boundary blocks not on MC best chain"
      in
      let bt_root = Backward_transfer.list_root bt_list in
      let* proof =
        Circuits.prove_wcert_binding t.fam ~quality ~bt_root ~end_prev_epoch
          ~end_epoch ~proofdata ~s_prev ~s_last
      in
      let cert =
        Withdrawal_certificate.make ~ledger_id:t.config.ledger_id
          ~epoch_id:epoch ~quality ~bt_list ~proofdata ~proof
      in
      (* A rebuild of an already-archived epoch (lost certificate)
         must not duplicate the archive entry. *)
      if not (Int_map.mem epoch t.archives) then
        t.archives <-
          Int_map.add epoch
            {
              end_state;
              delta;
              end_block_hash = Sc_block.hash last_record.block;
            }
            t.archives;
      Zen_obs.Counter.incr certificates;
      Ok (Some (Tx.Certificate cert))
  end

(* ---- Pipeline surface ---- *)

let pump t =
  match t.pipeline with Some p -> Proof_pipeline.pump p | None -> ()

let pipeline_enabled t = t.pipeline <> None

let pipeline_depth t =
  match t.pipeline with Some p -> Proof_pipeline.outstanding p | None -> 0

let certificate_stats t =
  match t.pipeline with
  | Some p -> List.rev (Proof_pipeline.certificate_log p)
  | None -> []

let retained_records t = List.length t.records

let state_at_epoch_end t ~epoch =
  Option.map (fun a -> a.end_state) (Int_map.find_opt epoch t.archives)

let delta_for_epoch t ~epoch =
  Option.map (fun a -> a.delta) (Int_map.find_opt epoch t.archives)

(* ---- Mainchain-managed withdrawals (§5.5.3.2, §5.5.3.3) ---- *)

let create_withdrawal_request t ~kind ~utxo ~receiver ~reference_block
    ?as_of_epoch () =
  let* latest =
    match Int_map.max_binding_opt t.archives with
    | None -> Error "withdrawal: no certified epoch yet"
    | Some (e, _) -> Ok e
  in
  let epoch = Option.value as_of_epoch ~default:latest in
  let* archive =
    match Int_map.find_opt epoch t.archives with
    | Some a -> Ok a
    | None -> Error "withdrawal: epoch not certified"
  in
  (* Appendix A: when proving against an older committed state, the
     slot must be untouched in every later epoch's mst_delta. *)
  let pos = Utxo.position ~mst_depth:t.params.mst_depth utxo in
  let* () =
    let rec check e =
      if e > latest then Ok ()
      else begin
        match Int_map.find_opt e t.archives with
        | None -> Error "withdrawal: missing delta for intermediate epoch"
        | Some a ->
          if Mst.delta_bit a.delta pos then
            Error "withdrawal: utxo slot was modified after the chosen epoch"
          else check (e + 1)
      end
    in
    check (epoch + 1)
  in
  let proofdata = [ Proofdata.Blob (Utxo.encode utxo) ] in
  let* proof =
    Circuits.prove_ownership t.fam ~mst:archive.end_state.mst ~utxo
      ~reference_block ~receiver ~proofdata
  in
  Ok
    (Mainchain_withdrawal.make ~kind ~ledger_id:t.config.ledger_id ~receiver
       ~amount:utxo.amount ~nullifier:(Utxo.nullifier utxo) ~proofdata ~proof)
