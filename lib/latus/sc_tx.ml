open Zen_crypto
open Zendoo

type payment = {
  inputs : Utxo.t list;
  witnesses : (Schnorr.public_key * Schnorr.signature) list;
  outputs : Utxo.t list;
}

type backward = {
  bt_input : Utxo.t;
  bt_witness : Schnorr.public_key * Schnorr.signature;
  bt : Backward_transfer.t;
}

type t =
  | Payment of payment
  | Forward_transfers_tx of { mcid : Hash.t; fts : Forward_transfer.t list }
  | Backward_transfer_tx of backward
  | Backward_transfer_requests_tx of {
      mcid : Hash.t;
      btrs : Mainchain_withdrawal.t list;
    }

let txid = function
  | Payment { inputs; outputs; _ } ->
    Hash.tagged "latus.tx.pay"
      (List.map Utxo.encode inputs @ List.map Utxo.encode outputs)
  | Forward_transfers_tx { mcid; fts } ->
    Hash.tagged "latus.tx.ft"
      (Hash.to_raw mcid :: List.map Forward_transfer.encode fts)
  | Backward_transfer_tx { bt_input; bt; _ } ->
    Hash.tagged "latus.tx.bt"
      [ Utxo.encode bt_input; Backward_transfer.encode bt ]
  | Backward_transfer_requests_tx { mcid; btrs } ->
    Hash.tagged "latus.tx.btr"
      (Hash.to_raw mcid
      :: List.map (fun b -> Hash.to_raw (Mainchain_withdrawal.hash b)) btrs)

let payment_seed inputs =
  Hash.tagged "latus.pay.seed" (List.map Utxo.encode inputs)

let output_nonce ~seed ~index = Utxo.derive_nonce ~source:seed ~index

let payment_sighash ~inputs ~outputs =
  Hash.tagged "latus.pay.sighash"
    (List.map Utxo.encode inputs @ List.map Utxo.encode outputs)

let bt_sighash ~input ~bt =
  Hash.tagged "latus.bt.sighash"
    [ Utxo.encode input; Backward_transfer.encode bt ]

let ft_metadata ~receiver ~payback = Hash.to_raw receiver ^ Hash.to_raw payback

let parse_ft_metadata s =
  if String.length s <> 64 then None
  else
    Some (Hash.of_raw (String.sub s 0 32), Hash.of_raw (String.sub s 32 32))

type ft_outcome =
  | Ft_accepted of Utxo.t
  | Ft_rejected of Backward_transfer.t

(* A rejected FT with unparseable metadata still needs a payback
   target; the zero address burns the coins on the mainchain side,
   which is the strictest safe interpretation. *)
let ft_outcome (state : Sc_state.t) (ft : Forward_transfer.t) =
  match parse_ft_metadata ft.receiver_metadata with
  | None ->
    Ft_rejected
      (Backward_transfer.make ~receiver_addr:Hash.zero ~amount:ft.amount)
  | Some (receiver, payback) ->
    let nonce =
      Utxo.derive_nonce ~source:(Forward_transfer.hash ft) ~index:0
    in
    let utxo = Utxo.make ~addr:receiver ~amount:ft.amount ~nonce in
    let pos = Utxo.position ~mst_depth:(Mst.depth state.mst) utxo in
    (match Mst.get state.mst pos with
    | Some _ ->
      Ft_rejected (Backward_transfer.make ~receiver_addr:payback ~amount:ft.amount)
    | None -> Ft_accepted utxo)

type btr_outcome =
  | Btr_accepted of Utxo.t * Backward_transfer.t
  | Btr_skipped of string

let btr_outcome (state : Sc_state.t) (btr : Mainchain_withdrawal.t) =
  match btr.proofdata with
  | [ Proofdata.Blob blob ] -> (
    match Utxo.decode blob with
    | None -> Btr_skipped "btr: undecodable utxo"
    | Some utxo ->
      if not (Amount.equal utxo.amount btr.amount) then
        Btr_skipped "btr: amount mismatch"
      else if Mst.find_utxo state.mst utxo = None then
        Btr_skipped "btr: utxo not in current state"
      else
        Btr_accepted
          ( utxo,
            Backward_transfer.make ~receiver_addr:btr.receiver
              ~amount:btr.amount ))
  | _ -> Btr_skipped "btr: unexpected proofdata shape"

let ( let* ) = Result.bind

let check_witness ~sighash (utxo : Utxo.t) (pk, signature) =
  if not (Hash.equal (Schnorr.pk_hash pk) utxo.addr) then
    Error "sc tx: key does not own the input"
  else if not (Schnorr.verify pk (Hash.to_raw sighash) signature) then
    Error "sc tx: invalid signature"
  else Ok ()

let validate_payment (state : Sc_state.t) (p : payment) =
  let n_in = List.length p.inputs and n_out = List.length p.outputs in
  let* () =
    if n_in >= 1 && n_in <= 2 && n_out >= 1 && n_out <= 2 then Ok ()
    else Error "payment: arity must be 1-2 inputs and 1-2 outputs"
  in
  let* () =
    if List.length p.witnesses = n_in then Ok ()
    else Error "payment: one witness per input required"
  in
  (* Distinct inputs, all present in the MST. *)
  let* () =
    match p.inputs with
    | [ a; b ] when Utxo.equal a b -> Error "payment: duplicate input"
    | _ -> Ok ()
  in
  let* () =
    List.fold_left
      (fun acc u ->
        let* () = acc in
        if Mst.find_utxo state.mst u = None then
          Error "payment: input not in state"
        else Ok ())
      (Ok ()) p.inputs
  in
  let sighash = payment_sighash ~inputs:p.inputs ~outputs:p.outputs in
  let* () =
    List.fold_left2
      (fun acc u w ->
        let* () = acc in
        check_witness ~sighash u w)
      (Ok ()) p.inputs p.witnesses
  in
  (* Nonce discipline binds fresh outputs to the spent inputs. *)
  let seed = payment_seed p.inputs in
  let* () =
    List.fold_left
      (fun (acc, i) (u : Utxo.t) ->
        ( (let* () = acc in
           if Hash.equal u.nonce (output_nonce ~seed ~index:i) then Ok ()
           else Error "payment: output nonce not derived from inputs"),
          i + 1 ))
      (Ok (), 0) p.outputs
    |> fst
  in
  let* value_in =
    Amount.sum (List.map (fun (u : Utxo.t) -> u.amount) p.inputs)
  in
  let* value_out =
    Amount.sum (List.map (fun (u : Utxo.t) -> u.amount) p.outputs)
  in
  let* () =
    if Amount.( <= ) value_out value_in then Ok ()
    else Error "payment: outputs exceed inputs"
  in
  (* Outputs must land in free, pairwise-distinct slots once inputs
     are removed; checked by trial application in [steps]. *)
  Ok ()

let validate_bt (state : Sc_state.t) (b : backward) =
  let* () =
    if Mst.find_utxo state.mst b.bt_input = None then
      Error "bt: input not in state"
    else Ok ()
  in
  let* () =
    if Amount.equal b.bt.amount b.bt_input.amount then Ok ()
    else Error "bt: amount must equal the spent utxo"
  in
  check_witness
    ~sighash:(bt_sighash ~input:b.bt_input ~bt:b.bt)
    b.bt_input b.bt_witness

type step =
  | Remove of Utxo.t
  | Insert of Utxo.t
  | Append_bt of Backward_transfer.t

let apply_step (state : Sc_state.t) = function
  | Remove u ->
    let* mst, _ = Mst.remove state.mst u in
    Ok (Sc_state.with_mst state mst)
  | Insert u ->
    let* mst, _ = Mst.insert state.mst u in
    Ok (Sc_state.with_mst state mst)
  | Append_bt bt -> Ok (Sc_state.append_bt state bt)

(* Batched step application: MST inserts/removes are committed through
   one [Mst.apply_ops] traversal, BT appends fold separately (they
   touch the accumulator, not the tree, so the two commute). Ordering
   within each component is preserved, which keeps the result — and
   the first error — identical to the sequential fold of
   [apply_step]. *)
let apply_steps ?(batched = false) (state : Sc_state.t) steps =
  if not batched then
    List.fold_left
      (fun acc step ->
        let* st = acc in
        apply_step st step)
      (Ok state) steps
  else begin
    let mst_ops =
      List.filter_map
        (function
          | Remove u -> Some (Mst.Op_remove u)
          | Insert u -> Some (Mst.Op_insert u)
          | Append_bt _ -> None)
        steps
    in
    let* mst = Mst.apply_ops state.mst mst_ops in
    let state =
      List.fold_left
        (fun st step ->
          match step with
          | Append_bt bt -> Sc_state.append_bt st bt
          | Remove _ | Insert _ -> st)
        state steps
    in
    Ok (Sc_state.with_mst state mst)
  end

let steps_of_valid (state : Sc_state.t) tx =
  match tx with
  | Payment p ->
    List.map (fun u -> Remove u) p.inputs
    @ List.map (fun u -> Insert u) p.outputs
  | Backward_transfer_tx b -> [ Remove b.bt_input; Append_bt b.bt ]
  | Forward_transfers_tx { fts; _ } ->
    (* Outcomes depend on the evolving state (slot collisions between
       FTs of the same transaction), so fold with trial application. *)
    List.rev
      (fst
         (List.fold_left
            (fun (acc, st) ft ->
              match ft_outcome st ft with
              | Ft_accepted u -> (
                match apply_step st (Insert u) with
                | Ok st' -> (Insert u :: acc, st')
                | Error _ ->
                  (* unreachable: outcome said the slot is free *)
                  (acc, st))
              | Ft_rejected bt -> (
                match apply_step st (Append_bt bt) with
                | Ok st' -> (Append_bt bt :: acc, st')
                | Error _ -> (acc, st)))
            ([], state) fts))
  | Backward_transfer_requests_tx { btrs; _ } ->
    List.rev
      (fst
         (List.fold_left
            (fun (acc, st) btr ->
              match btr_outcome st btr with
              | Btr_skipped _ -> (acc, st)
              | Btr_accepted (u, bt) -> (
                match apply_step st (Remove u) with
                | Ok st1 -> (
                  match apply_step st1 (Append_bt bt) with
                  | Ok st2 -> (Append_bt bt :: Remove u :: acc, st2)
                  | Error _ -> (acc, st))
                | Error _ -> (acc, st)))
            ([], state) btrs))

let validate state tx =
  match tx with
  | Payment p ->
    let* () = validate_payment state p in
    (* Trial-apply to catch slot collisions among outputs. *)
    List.fold_left
      (fun acc step ->
        let* st = acc in
        apply_step st step)
      (Ok state) (steps_of_valid state tx)
    |> Result.map (fun (_ : Sc_state.t) -> ())
  | Backward_transfer_tx b -> validate_bt state b
  | Forward_transfers_tx _ | Backward_transfer_requests_tx _ ->
    (* MC-defined transactions: outcomes are computed, not validated;
       consistency with the MC block is checked by Mc_ref. *)
    Ok ()

let steps state tx =
  let* () = validate state tx in
  Ok (steps_of_valid state tx)

let apply state tx =
  let* sts = steps state tx in
  List.fold_left
    (fun acc step ->
      let* st = acc in
      apply_step st step)
    (Ok state) sts

let pp fmt = function
  | Payment p ->
    Format.fprintf fmt "PTx(%d in, %d out)" (List.length p.inputs)
      (List.length p.outputs)
  | Forward_transfers_tx { fts; _ } ->
    Format.fprintf fmt "FTTx(%d fts)" (List.length fts)
  | Backward_transfer_tx b ->
    Format.fprintf fmt "BTTx(%a)" Backward_transfer.pp b.bt
  | Backward_transfer_requests_tx { btrs; _ } ->
    Format.fprintf fmt "BTRTx(%d btrs)" (List.length btrs)
