open Zen_crypto
open Zen_mainchain
open Zendoo

let ( let* ) = Wire.( let* )

let write_utxo w (u : Utxo.t) = Wire.fixed w (Utxo.encode u)

let read_utxo r =
  let* raw = Wire.read_fixed r 72 in
  match Utxo.decode raw with
  | Some u -> Ok u
  | None -> Error "sc wire: malformed utxo"

let write_witness w (pk, signature) =
  Wire.varbytes w (Schnorr.pk_encode pk);
  Wire.varbytes w (Schnorr.sig_encode signature)

let read_witness r =
  let* pk_raw = Wire.read_varbytes ~max:128 r in
  let* pk =
    match Schnorr.pk_decode pk_raw with
    | Some pk -> Ok pk
    | None -> Error "sc wire: malformed public key"
  in
  let* sig_raw = Wire.read_varbytes ~max:128 r in
  match Schnorr.sig_decode sig_raw with
  | Some s -> Ok (pk, s)
  | None -> Error "sc wire: malformed signature"

let write_tx w = function
  | Sc_tx.Payment { inputs; witnesses; outputs } ->
    Wire.u8 w 0;
    Wire.list w (write_utxo w) inputs;
    Wire.list w (write_witness w) witnesses;
    Wire.list w (write_utxo w) outputs
  | Sc_tx.Forward_transfers_tx { mcid; fts } ->
    Wire.u8 w 1;
    Wire.hash w mcid;
    Wire.list w (Codec.write_ft w) fts
  | Sc_tx.Backward_transfer_tx { bt_input; bt_witness; bt } ->
    Wire.u8 w 2;
    write_utxo w bt_input;
    write_witness w bt_witness;
    Codec.write_bt w bt
  | Sc_tx.Backward_transfer_requests_tx { mcid; btrs } ->
    Wire.u8 w 3;
    Wire.hash w mcid;
    Wire.list w (Codec.write_withdrawal w) btrs

let read_tx r =
  let* tag = Wire.read_u8 r in
  match tag with
  | 0 ->
    let* inputs = Wire.read_list ~max:4 r read_utxo in
    let* witnesses = Wire.read_list ~max:4 r read_witness in
    let* outputs = Wire.read_list ~max:4 r read_utxo in
    Ok (Sc_tx.Payment { inputs; witnesses; outputs })
  | 1 ->
    let* mcid = Wire.read_hash r in
    let* fts = Wire.read_list ~max:65536 r Codec.read_ft in
    Ok (Sc_tx.Forward_transfers_tx { mcid; fts })
  | 2 ->
    let* bt_input = read_utxo r in
    let* bt_witness = read_witness r in
    let* bt = Codec.read_bt r in
    Ok (Sc_tx.Backward_transfer_tx { bt_input; bt_witness; bt })
  | 3 ->
    let* mcid = Wire.read_hash r in
    let* btrs = Wire.read_list ~max:65536 r Codec.read_withdrawal in
    Ok (Sc_tx.Backward_transfer_requests_tx { mcid; btrs })
  | n -> Error (Printf.sprintf "sc wire: unknown tx tag %d" n)

let write_mc_ref w (m : Mc_ref.t) =
  Wire.fixed w (Mc_wire.encode_header m.header);
  Wire.option w (Sc_commitment.write_membership w) m.mproof;
  Wire.option w (Sc_commitment.write_absence w) m.proof_of_no_data;
  Wire.list w (Codec.write_ft w) m.fts;
  Wire.list w (Codec.write_withdrawal w) m.btrs;
  Wire.option w (Codec.write_wcert w) m.wcert

let header_wire_size = (4 * Hash.size) + (3 * 8)

let read_mc_ref r =
  let* header_raw = Wire.read_fixed r header_wire_size in
  let* header = Mc_wire.decode_header header_raw in
  let* mproof = Wire.read_option r Sc_commitment.read_membership in
  let* proof_of_no_data = Wire.read_option r Sc_commitment.read_absence in
  let* fts = Wire.read_list ~max:65536 r Codec.read_ft in
  let* btrs = Wire.read_list ~max:65536 r Codec.read_withdrawal in
  let* wcert = Wire.read_option r Codec.read_wcert in
  Ok { Mc_ref.header; mproof; proof_of_no_data; fts; btrs; wcert }

let write_block w (b : Sc_block.t) =
  Wire.hash w b.parent;
  Wire.u63 w b.height;
  Wire.u63 w b.slot;
  Wire.varbytes w (Schnorr.pk_encode b.forger_pk);
  Wire.varbytes w (Schnorr.sig_encode b.signature);
  Wire.list w (write_mc_ref w) b.mc_refs;
  Wire.list w (write_tx w) b.txs;
  Wire.fp w b.state_hash

let read_block r =
  let* parent = Wire.read_hash r in
  let* height = Wire.read_u63 r in
  let* slot = Wire.read_u63 r in
  let* pk_raw = Wire.read_varbytes ~max:128 r in
  let* forger_pk =
    match Schnorr.pk_decode pk_raw with
    | Some pk -> Ok pk
    | None -> Error "sc wire: malformed forger key"
  in
  let* sig_raw = Wire.read_varbytes ~max:128 r in
  let* signature =
    match Schnorr.sig_decode sig_raw with
    | Some s -> Ok s
    | None -> Error "sc wire: malformed block signature"
  in
  let* mc_refs = Wire.read_list ~max:4096 r read_mc_ref in
  let* txs = Wire.read_list ~max:65536 r read_tx in
  let* state_hash = Wire.read_fp r in
  Ok
    {
      Sc_block.parent;
      height;
      slot;
      forger_pk;
      signature;
      mc_refs;
      txs;
      state_hash;
    }

let with_writer f =
  let w = Wire.writer () in
  f w;
  Wire.contents w

let framed read s =
  let r = Wire.reader s in
  let* v = read r in
  let* () = Wire.expect_end r in
  Ok v

let encode_tx tx = with_writer (fun w -> write_tx w tx)
let decode_tx s = framed read_tx s
let encode_block b = with_writer (fun w -> write_block w b)
let decode_block s = framed read_block s
let block_size_bytes b = String.length (encode_block b)
let encode_mc_ref m = with_writer (fun w -> write_mc_ref w m)
let mc_ref_size_bytes m = String.length (encode_mc_ref m)
