open Zen_crypto
open Zen_snark

type worker_fault = Crash | Slow of int

type task_proof = {
  index : int;
  worker : int;
  attempts : int;
  proof : Backend.proof;
  vk : Backend.verification_key;
  s_from : Fp.t;
  s_to : Fp.t;
  seconds : float;
}

type worker_cost = {
  wc_worker : int;
  busy_s : float;
  wc_proofs : int;
  wc_retries : int;
}

type stats = {
  tasks : int;
  workers : int;
  domains : int;
  total_work : float;
  wall : float;
  concurrency : float;
  retries : int;
  rewards : (int * int) list;
  worker_costs : worker_cost list;
}

let reassignments =
  Zen_obs.Counter.make
    ~help:"Prover tasks re-dispatched away from a crashed worker"
    "latus.prover.reassignments"

let prove_step_s =
  Zen_obs.Histogram.make
    ~help:"per-base-proof proving latency (after any Slow-fault inflation)"
    ~bounds:(Zen_obs.Histogram.exponential_bounds ~lo:1e-4 ~factor:4. ~n:8)
    "latus.prove_step.seconds"

(* Swappable clock: tests install [Zen_obs.Clock.deterministic] to make
   the per-task [seconds] and [wall] fields reproducible. *)
let now () = Zen_obs.Clock.now ()

let dispatch ~rng ~workers ~tasks =
  if workers <= 0 then invalid_arg "Prover_pool.dispatch: no workers";
  Array.init tasks (fun _ -> Rng.int rng workers)

let ( let* ) = Result.bind

(* Capture the state snapshot before each step: after this, every
   proving task is independent of the others. *)
let snapshots initial steps =
  List.fold_left
    (fun acc step ->
      let* state, out = acc in
      let* state' = Sc_tx.apply_step state step in
      Ok (state', (state, step) :: out))
    (Ok (initial, []))
    steps
  |> Result.map (fun (_, out) -> List.rev out)

(* Shared body of one §5.4.1 proving task: honour the seeded dispatch
   (re-dispatching away from crashed workers via the task's derived
   rng), prove, spot-verify, account. Identical whether it runs inside
   a chunked parallel map ([prove_epoch]) or as a future
   ([prove_and_merge]) — which is what keeps the two paths
   byte-identical. *)
let run_task ~family ~fault_of ~crashed ~survivors ~attempt_budget ~rng
    ~assignment ~snaps index =
  let state, step = snaps.(index) in
  let task_rng = Rng.derive rng index in
  let rec attempt k w =
    if crashed w then begin
      Zen_obs.Counter.incr reassignments;
      Zen_obs.Trace.instant ~cat:"fault"
        ~args:
          [
            ("step", string_of_int index);
            ("worker", string_of_int w);
            ("attempt", string_of_int k);
          ]
        "latus.prover.crash";
      if k >= attempt_budget then
        Error
          (Printf.sprintf "prover pool: task %d exceeded its attempt budget (%d)"
             index attempt_budget)
      else attempt (k + 1) survivors.(Rng.int task_rng (Array.length survivors))
    end
    else begin
      let t = now () in
      Zen_obs.Trace.with_span ~cat:"latus"
        ~args:
          [
            ("step", string_of_int index);
            ("worker", string_of_int w);
            ("attempt", string_of_int k);
          ]
        "latus.prove_step"
      @@ fun () ->
      match Circuits.prove_step family state step with
      | Error e -> Error e
      | Ok (proof, vk, s_from, s_to) ->
        let public = Recursive.base_public ~s_from ~s_to ~extra:[||] in
        if not (Backend.verify vk ~public proof) then
          Error "prover pool: worker submitted an invalid proof"
        else
          let seconds = now () -. t in
          let seconds =
            match fault_of w with
            | Some (Slow f) when f > 1 -> seconds *. float_of_int f
            | _ -> seconds
          in
          Zen_obs.Histogram.observe prove_step_s seconds;
          Ok { index; worker = w; attempts = k; proof; vk; s_from; s_to; seconds }
    end
  in
  attempt 1 assignment.(index)

let stats_of ~workers ~domains ~wall proofs =
  let rewards = Array.make workers 0 in
  let busy = Array.make workers 0.0 in
  let worker_retries = Array.make workers 0 in
  let retries, total_work =
    List.fold_left
      (fun (retries, acc) tp ->
        rewards.(tp.worker) <- rewards.(tp.worker) + 1;
        busy.(tp.worker) <- busy.(tp.worker) +. tp.seconds;
        worker_retries.(tp.worker) <- worker_retries.(tp.worker) + tp.attempts - 1;
        (retries + tp.attempts - 1, acc +. tp.seconds))
      (0, 0.0) proofs
  in
  {
    tasks = List.length proofs;
    workers;
    domains;
    total_work;
    wall;
    concurrency = (if wall > 0.0 then total_work /. wall else 1.0);
    retries;
    rewards = Array.to_list rewards |> List.mapi (fun i r -> (i, r));
    worker_costs =
      List.init workers (fun w ->
          {
            wc_worker = w;
            busy_s = busy.(w);
            wc_proofs = rewards.(w);
            wc_retries = worker_retries.(w);
          });
  }

let prove_epoch ?(pool = Pool.sequential) ?(faults = []) ?(attempt_budget = 3)
    family ~initial ~steps ~workers ~seed =
  Zen_obs.Trace.with_span ~cat:"latus"
    ~args:
      [
        ("steps", string_of_int (List.length steps));
        ("domains", string_of_int (Pool.domains pool));
        ("faults", string_of_int (List.length faults));
      ]
    "latus.prove_epoch"
  @@ fun () ->
  if attempt_budget < 1 then invalid_arg "Prover_pool.prove_epoch: attempt_budget";
  let fault_of w = List.assoc_opt w faults in
  let crashed w = fault_of w = Some Crash in
  let survivors =
    Array.init workers Fun.id |> Array.to_list
    |> List.filter (fun w -> not (crashed w))
    |> Array.of_list
  in
  let* () =
    if workers > 0 && Array.length survivors = 0 then
      Error "prover pool: no surviving workers (all crashed)"
    else Ok ()
  in
  let rng = Rng.create seed in
  let assignment = dispatch ~rng ~workers ~tasks:(List.length steps) in
  let* snaps = snapshots initial steps in
  let snaps = Array.of_list snaps in
  let t0 = now () in
  (* The parallel section: one heavyweight proving task per step, all
     inputs captured above, nothing shared but immutable keys.
     Randomness for re-dispatch after a crash comes from [Rng.derive]
     per task index, so retries are reproducible and domain-safe
     (§5.4.1's "the task would be re-dispatched" made concrete; a
     dishonest worker's submission fails spot-verification and earns
     nothing). *)
  let results =
    (* A template-cached base prove is ~2.5 ms: the cost hint keeps a
       few chunks per domain for crash-retry skew while batching the
       epoch enough that chunk sync stays amortized. *)
    Pool.init_array pool ~cost:2.5 (Array.length snaps)
      (run_task ~family ~fault_of ~crashed ~survivors ~attempt_budget ~rng
         ~assignment ~snaps)
  in
  let wall = now () -. t0 in
  (* Deterministic error selection: first failing step in epoch order. *)
  let* proofs =
    Array.fold_right
      (fun r acc ->
        let* out = acc in
        let* tp = r in
        Ok (tp :: out))
      results (Ok [])
  in
  Ok (proofs, stats_of ~workers ~domains:(Pool.domains pool) ~wall proofs)

let worker_costs_json stats =
  Zen_obs.Json.Arr
    (List.map
       (fun wc ->
         Zen_obs.Json.Obj
           [
             ("worker", Zen_obs.Json.Int wc.wc_worker);
             ("busy_s", Zen_obs.Json.Float wc.busy_s);
             ("proofs", Zen_obs.Json.Int wc.wc_proofs);
             ("retries", Zen_obs.Json.Int wc.wc_retries);
           ])
       stats.worker_costs)

let prove_and_merge ?(pool = Pool.sequential) ?(faults = [])
    ?(attempt_budget = 3) family rsys ~initial ~steps ~workers ~seed =
  Zen_obs.Trace.with_span ~cat:"latus"
    ~args:
      [
        ("steps", string_of_int (List.length steps));
        ("domains", string_of_int (Pool.domains pool));
        ("faults", string_of_int (List.length faults));
      ]
    "latus.prove_and_merge"
  @@ fun () ->
  if attempt_budget < 1 then
    invalid_arg "Prover_pool.prove_and_merge: attempt_budget";
  let fault_of w = List.assoc_opt w faults in
  let crashed w = fault_of w = Some Crash in
  let survivors =
    Array.init workers Fun.id |> Array.to_list
    |> List.filter (fun w -> not (crashed w))
    |> Array.of_list
  in
  let* () =
    if workers > 0 && Array.length survivors = 0 then
      Error "prover pool: no surviving workers (all crashed)"
    else Ok ()
  in
  (* The incentive layer is untouched: the dispatch is drawn from the
     seeded rng before anything executes, exactly as in [prove_epoch],
     so worker assignment, rewards and retries are byte-identical. *)
  let rng = Rng.create seed in
  let assignment = dispatch ~rng ~workers ~tasks:(List.length steps) in
  let* snaps = snapshots initial steps in
  let snaps = Array.of_list snaps in
  let t0 = now () in
  (* Pipelined execution: every task is a future, so base proofs run
     concurrently while this domain folds finished ones — in index
     order — through the incremental merge tree. The tree shape (hence
     the proof bytes) and the error selection (first failing index)
     match [prove_epoch] + [merge_all] exactly; only scheduling and the
     timing fields differ. *)
  let futures =
    Array.init (Array.length snaps) (fun index ->
        Pool.async pool (fun () ->
            run_task ~family ~fault_of ~crashed ~survivors ~attempt_budget ~rng
              ~assignment ~snaps index))
  in
  let inc = Recursive.Incremental.create rsys in
  let* proofs_rev =
    Array.fold_left
      (fun acc fut ->
        let* out = acc in
        let* tp = Pool.await fut in
        let* transition =
          Recursive.of_base rsys ~vk:tp.vk ~s_from:tp.s_from ~s_to:tp.s_to
            ~extra:[||] tp.proof
        in
        Recursive.Incremental.push inc transition;
        Ok (tp :: out))
      (Ok []) futures
  in
  let proofs = List.rev proofs_rev in
  let* top = Recursive.Incremental.finish inc in
  let wall = now () -. t0 in
  Ok (proofs, stats_of ~workers ~domains:(Pool.domains pool) ~wall proofs, top)

let merge_all ?(pool = Pool.sequential) _family rsys proofs =
  Zen_obs.Trace.with_span ~cat:"latus"
    ~args:[ ("proofs", string_of_int (List.length proofs)) ]
    "latus.merge_all"
  @@ fun () ->
  (* Wrapping each base proof re-verifies it — constant-cost tasks,
     mapped in parallel — then the log-depth merge tree parallelizes
     per level inside [fold_balanced]. *)
  let wrapped =
    (* Wrapping re-verifies one base proof (~10 µs): batch coarsely. *)
    Pool.map_array pool ~cost:0.01
      (fun tp ->
        Recursive.of_base rsys ~vk:tp.vk ~s_from:tp.s_from ~s_to:tp.s_to
          ~extra:[||] tp.proof)
      (Array.of_list proofs)
  in
  let* transitions =
    Array.fold_right
      (fun r acc ->
        let* out = acc in
        let* t = r in
        Ok (t :: out))
      wrapped (Ok [])
  in
  Recursive.fold_balanced ~pool rsys transitions
