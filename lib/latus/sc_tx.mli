(** Latus transactions (paper §5.3) and their state-transition
    semantics.

    Payment and BackwardTransfer transactions originate in the
    sidechain; ForwardTransfers and BackwardTransferRequests
    transactions synchronize MC-submitted actions into the sidechain
    when the containing MC block is referenced (§5.3.2, §5.3.4).

    Arity limits keep transactions compatible with the fixed-shape
    base circuits: payments carry at most two inputs and two outputs;
    a backward-transfer transaction spends exactly one UTXO into
    exactly one BT. Larger logical transfers chain several
    transactions. *)

open Zen_crypto
open Zendoo

type payment = {
  inputs : Utxo.t list;  (** 1 or 2 *)
  witnesses : (Schnorr.public_key * Schnorr.signature) list;
      (** one per input, same order *)
  outputs : Utxo.t list;  (** 1 or 2; nonces must follow {!output_nonce} *)
}

type backward = {
  bt_input : Utxo.t;
  bt_witness : Schnorr.public_key * Schnorr.signature;
  bt : Backward_transfer.t;
}

type t =
  | Payment of payment
  | Forward_transfers_tx of { mcid : Hash.t; fts : Forward_transfer.t list }
  | Backward_transfer_tx of backward
  | Backward_transfer_requests_tx of {
      mcid : Hash.t;
      btrs : Mainchain_withdrawal.t list;
    }

val txid : t -> Hash.t

val payment_seed : Utxo.t list -> Hash.t
(** Seed binding a payment's fresh nonces to its inputs. *)

val output_nonce : seed:Hash.t -> index:int -> Hash.t

val payment_sighash : inputs:Utxo.t list -> outputs:Utxo.t list -> Hash.t
val bt_sighash : input:Utxo.t -> bt:Backward_transfer.t -> Hash.t

(** {2 Forward-transfer metadata (Latus encoding, §5.3.2)} *)

val ft_metadata : receiver:Hash.t -> payback:Hash.t -> string
val parse_ft_metadata : string -> (Hash.t * Hash.t) option

type ft_outcome =
  | Ft_accepted of Utxo.t
  | Ft_rejected of Backward_transfer.t
      (** coins bounce back to the payback address via the standard BT
          mechanism (§5.3.2) *)

val ft_outcome : Sc_state.t -> Forward_transfer.t -> ft_outcome
(** Deterministic: malformed metadata or an MST slot collision rejects
    the transfer. *)

type btr_outcome =
  | Btr_accepted of Utxo.t * Backward_transfer.t
  | Btr_skipped of string

val btr_outcome : Sc_state.t -> Mainchain_withdrawal.t -> btr_outcome

(** {2 Validation and application} *)

val validate : Sc_state.t -> t -> (unit, string) result
(** Full structural and semantic validation against a state: presence
    of inputs, signatures, nonce discipline, conservation, arity. *)

val apply : Sc_state.t -> t -> (Sc_state.t, string) result
(** [validate] then the [update] function of §5.3. *)

(** {2 Primitive transitions}

    Every transaction decomposes into a sequence of primitive state
    transitions — the granularity at which base SNARK proofs are
    produced (§5.4, Fig. 10). *)

type step =
  | Remove of Utxo.t
  | Insert of Utxo.t
  | Append_bt of Backward_transfer.t

val steps : Sc_state.t -> t -> (step list, string) result
(** The primitive decomposition of a valid transaction in application
    order. *)

val apply_step : Sc_state.t -> step -> (Sc_state.t, string) result

val apply_steps :
  ?batched:bool -> Sc_state.t -> step list -> (Sc_state.t, string) result
(** Applies a step sequence. With [~batched:true] the MST
    inserts/removes commit through one merged {!Mst.apply_ops}
    traversal (one root-path rehash per distinct touched slot) while
    BT appends fold in order; result and first error are identical to
    the default sequential fold of {!apply_step}. *)

val pp : Format.formatter -> t -> unit
