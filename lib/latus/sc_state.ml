open Zen_crypto
open Zendoo

type t = {
  mst : Mst.t;
  bts_rev : Backward_transfer.t list; (* newest first: O(1) append *)
  bt_count : int;
  bt_acc : Fp.t;
}

let create params =
  { mst = Mst.create params; bts_rev = []; bt_count = 0; bt_acc = Fp.zero }

let hash t = Poseidon.hash2 (Mst.root t.mst) t.bt_acc

let bt_acc_step acc (bt : Backward_transfer.t) =
  let recv, amt = Backward_transfer.to_fp_pair bt in
  Poseidon.hash2 acc (Poseidon.hash2 recv amt)

let append_bt t bt =
  {
    t with
    bts_rev = bt :: t.bts_rev;
    bt_count = t.bt_count + 1;
    bt_acc = bt_acc_step t.bt_acc bt;
  }

let backward_transfers t = List.rev t.bts_rev
let bt_count t = t.bt_count

let reset_epoch t =
  { mst = Mst.snapshot t.mst; bts_rev = []; bt_count = 0; bt_acc = Fp.zero }

let with_mst t mst = { t with mst }

(* Copy-on-write snapshots: the whole state is persistent (the MST
   shares unmodified branches across versions), so a checkpoint is the
   value itself and restore is a pointer swap. Retaining a checkpoint
   costs O(1); memory is bounded by the structural deltas applied since
   it was taken. *)
type checkpoint = t

let checkpoint t = t
let restore c = c

let pp fmt t =
  Format.fprintf fmt "state(mst=%a, %d utxos, %d bts)" Fp.pp (Mst.root t.mst)
    (Mst.occupied t.mst) t.bt_count
