open Zen_crypto
open Zen_snark

module Int_map = Map.Make (Int)

let ( let* ) = Result.bind

(* ---- metrics ---- *)

let depth_gauge =
  Zen_obs.Gauge.make
    ~help:"Proving tasks enqueued but not yet folded (all epochs)"
    "latus.pipeline.depth"

let enqueued_c =
  Zen_obs.Counter.make ~help:"Proving tasks enqueued by the pipeline"
    "latus.pipeline.enqueued"

let eager_merges_c =
  Zen_obs.Counter.make
    ~help:"Recursive merges performed off the certify path (during pumping)"
    "latus.pipeline.merges.eager"

let carry_merges_c =
  Zen_obs.Counter.make
    ~help:"Recursive carry merges performed on the certify path"
    "latus.pipeline.merges.carry"

let truncations_c =
  Zen_obs.Counter.make
    ~help:"Pipeline stream truncations caused by MC reorg rollbacks"
    "latus.pipeline.truncations"

let queue_wait_s =
  Zen_obs.Histogram.make
    ~help:"enqueue-to-execution wait of pipelined proving tasks"
    ~bounds:(Zen_obs.Histogram.exponential_bounds ~lo:1e-4 ~factor:4. ~n:10)
    "latus.pipeline.queue_wait.seconds"

let prove_s =
  Zen_obs.Histogram.make
    ~help:"pipelined base-proof latency (prove_step + recursive wrap)"
    ~bounds:(Zen_obs.Histogram.exponential_bounds ~lo:1e-4 ~factor:4. ~n:8)
    "latus.pipeline.prove.seconds"

(* ---- streams ---- *)

type leaf = {
  fut : (Recursive.transition_proof, string) result Pool.future;
  mutable cached : (Recursive.transition_proof, string) result option;
      (* set once at harvest so reorg truncation can replay the kept
         prefix without re-proving *)
}

type stream = {
  mutable leaves : leaf option array; (* growable; slots [0, n) filled *)
  mutable n : int;
  mutable harvested : int; (* leaves already folded into [inc] *)
  mutable inc : Recursive.Incremental.acc;
  mutable base_error : string option; (* first failing leaf, in order *)
}

type certificate_stats = {
  cert_epoch : int;
  cert_leaves : int;
  cert_carry_merges : int;
}

type t = {
  pool : Pool.t;
  fam : Circuits.family;
  rsys : Recursive.system;
  mutable epochs : stream Int_map.t;
  mutable outstanding : int; (* enqueued - harvested, across epochs *)
  mutable certificate_log : certificate_stats list; (* newest first *)
}

let create ~pool ~family ~rsys =
  {
    pool;
    fam = family;
    rsys;
    epochs = Int_map.empty;
    outstanding = 0;
    certificate_log = [];
  }

let fresh_stream sys =
  {
    leaves = Array.make 16 None;
    n = 0;
    harvested = 0;
    inc = Recursive.Incremental.create sys;
    base_error = None;
  }

let stream_for t ~epoch =
  match Int_map.find_opt epoch t.epochs with
  | Some s -> s
  | None ->
    let s = fresh_stream t.rsys in
    t.epochs <- Int_map.add epoch s t.epochs;
    s

let set_depth t = Zen_obs.Gauge.set_int depth_gauge t.outstanding

let leaves t ~epoch =
  match Int_map.find_opt epoch t.epochs with None -> 0 | Some s -> s.n

let outstanding t = t.outstanding
let certificate_log t = t.certificate_log

let enqueue t ~epoch ~state ~step =
  let s = stream_for t ~epoch in
  if s.n >= Array.length s.leaves then begin
    let bigger = Array.make (2 * Array.length s.leaves) None in
    Array.blit s.leaves 0 bigger 0 s.n;
    s.leaves <- bigger
  end;
  let observing = Zen_obs.Registry.enabled () in
  let t_submit = if observing then Zen_obs.Clock.now () else 0. in
  let fam = t.fam and rsys = t.rsys in
  (* The thunk is pure in the pool's sense: the snapshot state, the step
     and the keys are all captured here; it may run on any worker domain
     or inline at harvest. It must never raise — failures travel as
     [Error] so the worker-side exception accounting stays quiet. *)
  let fut =
    Pool.async t.pool (fun () ->
        if observing then
          Zen_obs.Histogram.observe queue_wait_s
            (Zen_obs.Clock.now () -. t_submit);
        Zen_obs.Histogram.time prove_s @@ fun () ->
        let* proof, vk, s_from, s_to = Circuits.prove_step fam state step in
        Recursive.of_base rsys ~vk ~s_from ~s_to ~extra:[||] proof)
  in
  s.leaves.(s.n) <- Some { fut; cached = None };
  s.n <- s.n + 1;
  t.outstanding <- t.outstanding + 1;
  Zen_obs.Counter.incr enqueued_c;
  set_depth t

(* Folds leaf [i]'s result into the stream's incremental accumulator.
   Eager merges run here — off the certify path unless certify itself
   is forcing stragglers. *)
let absorb t s result =
  (match result with
  | Ok tp ->
    let before = Recursive.Incremental.eager_merges s.inc in
    Recursive.Incremental.push s.inc tp;
    Zen_obs.Counter.add eager_merges_c
      (Recursive.Incremental.eager_merges s.inc - before)
  | Error e -> if s.base_error = None then s.base_error <- Some e);
  s.harvested <- s.harvested + 1;
  t.outstanding <- t.outstanding - 1;
  set_depth t

(* Advances a stream's fold over every leaf whose proof is available.
   [force] awaits instead of skipping (running the thunk inline when no
   worker claimed it); harvesting stays in leaf order so the fold — and
   with it the certificate bytes — never depends on completion order. *)
let harvest t ?(force = false) s =
  let continue = ref true in
  while !continue && s.harvested < s.n do
    match s.leaves.(s.harvested) with
    | None -> assert false
    | Some leaf -> (
      match leaf.cached with
      | Some r -> absorb t s r
      | None ->
        if force || Pool.poll leaf.fut then begin
          let r = Pool.await leaf.fut in
          leaf.cached <- Some r;
          absorb t s r
        end
        else continue := false)
  done

let pump t =
  if Pool.domains t.pool = 1 then
    (* No background workers: the pump point is where deferred proofs
       actually run, spreading them across ticks instead of bursting at
       the epoch boundary. *)
    Int_map.iter (fun _ s -> harvest t ~force:true s) t.epochs
  else Int_map.iter (fun _ s -> harvest t s) t.epochs

let await_epoch t ~epoch =
  match Int_map.find_opt epoch t.epochs with
  | None -> Error "pipeline: no proving stream for epoch"
  | Some s -> (
    harvest t ~force:true s;
    match s.base_error with
    | Some e -> Error e
    | None ->
      let carries = Recursive.Incremental.pending_merges s.inc in
      Zen_obs.Counter.add carry_merges_c carries;
      t.certificate_log <-
        { cert_epoch = epoch; cert_leaves = s.n; cert_carry_merges = carries }
        :: t.certificate_log;
      Recursive.Incremental.finish s.inc)

(* Unharvested leaves dropped by a truncation may still be running on a
   worker; they finish harmlessly and are never read. *)
let forget_tail t s ~keep =
  for i = keep to s.n - 1 do
    match s.leaves.(i) with
    | Some leaf when leaf.cached = None -> t.outstanding <- t.outstanding - 1
    | _ -> ()
  done

let truncate t ~epoch ~keep =
  match Int_map.find_opt epoch t.epochs with
  | None -> ()
  | Some s ->
    if keep >= s.n then ()
    else begin
      Zen_obs.Counter.incr truncations_c;
      forget_tail t s ~keep;
      if keep = 0 then t.epochs <- Int_map.remove epoch t.epochs
      else begin
        (* Rebuild the fold over the kept prefix. Kept leaves that were
           already harvested replay from [cached] (no re-prove; the
           merges re-run — a reorg is rare and shallow, so this is still
           far below a full certify-time fold); unharvested kept leaves
           keep their futures. *)
        s.n <- keep;
        s.harvested <- 0;
        s.base_error <- None;
        s.inc <- Recursive.Incremental.create t.rsys;
        (* Replayed leaves were already counted out of [outstanding] at
           first harvest; count them back in before re-harvesting. *)
        for i = 0 to keep - 1 do
          match s.leaves.(i) with
          | Some leaf when leaf.cached <> None ->
            t.outstanding <- t.outstanding + 1
          | _ -> ()
        done;
        harvest t s
      end;
      set_depth t
    end

let drop_below t ~epoch =
  let dropped, kept = Int_map.partition (fun e _ -> e < epoch) t.epochs in
  Int_map.iter (fun _ s -> forget_tail t s ~keep:0) dropped;
  t.epochs <- kept;
  set_depth t
