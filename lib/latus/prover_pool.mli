(** Distributed proof generation (paper §5.4.1 "Performance and
    Incentives").

    Generating a base SNARK per transition and merging them is too
    heavy for a single forger, so the paper sketches a dispatching
    scheme: proving tasks are assigned randomly to interested parties
    who work in parallel and are rewarded per valid submission.

    This module realizes the scheme on real hardware. It has two
    layers, deliberately kept separate:

    - the {e incentive} layer — {!dispatch} assigns every task to one
      of [workers] parties uniformly at random from a seeded generator,
      and each valid submission earns that party a reward. This
      assignment is deterministic in the seed and independent of how
      the work is actually scheduled;
    - the {e hardware} layer — a {!Pool.t} of OCaml domains executes
      the tasks concurrently. The epoch's steps are first applied
      natively to capture each task's state snapshot — which is what
      makes the tasks independent — then proven in parallel, each proof
      spot-verified as it would be on submission.

    Every output (proof bytes, task order, rewards, error selection) is
    bit-identical for every domain count; only the wall-clock numbers in
    {!stats} change. Experiment E13 measures exactly that. *)

open Zen_crypto
open Zen_snark

type worker_fault =
  | Crash  (** the worker never returns its tasks *)
  | Slow of int  (** the worker's proving time is inflated by a factor *)

type task_proof = {
  index : int;  (** position of the step within the epoch *)
  worker : int;  (** the §5.4.1 party whose submission was credited *)
  attempts : int;  (** dispatch attempts consumed (1 = no retry) *)
  proof : Backend.proof;
  vk : Backend.verification_key;
  s_from : Fp.t;
  s_to : Fp.t;
  seconds : float;  (** wall-clock spent proving this task *)
}

type worker_cost = {
  wc_worker : int;  (** §5.4.1 party id *)
  busy_s : float;
      (** summed proving wall-clock of the tasks credited to this
          worker (after any [Slow] inflation) *)
  wc_proofs : int;  (** valid submissions, same as the reward count *)
  wc_retries : int;
      (** dispatch attempts burnt before the tasks this worker finally
          proved landed on it (crashes elsewhere in the chain) *)
}

type stats = {
  tasks : int;
  workers : int;  (** incentive-layer parties tasks were dispatched to *)
  domains : int;  (** hardware parallelism actually used *)
  total_work : float;  (** sum of per-task proving wall-clock *)
  wall : float;  (** elapsed wall-clock of the parallel proving phase *)
  concurrency : float;
      (** [total_work /. wall] — average number of tasks in flight.
          Not a speedup: on an oversubscribed machine per-task times
          inflate with contention, so compare [wall] against a
          1-domain run to measure real gain (experiment E13 does). *)
  retries : int;
      (** dispatch attempts beyond the first, summed over all tasks —
          0 when no worker faults were injected *)
  rewards : (int * int) list;
      (** worker id → valid submissions; only the worker whose proof
          actually verified is credited, so a crashed worker earns 0 *)
  worker_costs : worker_cost list;
      (** per-worker cost accounting, one entry per worker id in order —
          busy time, credited proofs and retry attribution; the
          [busy_s] values sum to [total_work] *)
}

val dispatch : rng:Rng.t -> workers:int -> tasks:int -> int array
(** [dispatch.(i)] is the worker assigned to task [i]; uniform random
    assignment as §5.4.1 suggests. Drawn sequentially from [rng]
    {e before} any parallel execution (see the {!Rng} seeding
    discipline). *)

val prove_epoch :
  ?pool:Pool.t ->
  ?faults:(int * worker_fault) list ->
  ?attempt_budget:int ->
  Circuits.family ->
  initial:Sc_state.t ->
  steps:Sc_tx.step list ->
  workers:int ->
  seed:int ->
  (task_proof list * stats, string) result
(** Proves every step of the epoch under a random dispatch, running the
    proving tasks on [pool] (default {!Pool.sequential}, i.e. the plain
    sequential path). The returned proofs are in step order and each
    has been verified. On failure the reported error is the first
    failing step in epoch order, independent of scheduling.

    [faults] (worker id → fault, default none) injects §5.4.1 worker
    misbehaviour deterministically: a [Crash]ed worker never returns
    its tasks, so each is re-dispatched to a surviving worker — drawn
    from [Rng.derive] of the task index, hence reproducible for every
    domain count — burning one of [attempt_budget] attempts (default 3)
    per try; [Slow] inflates the reported proving time without
    affecting the result. Proof bytes, task order and error selection
    are identical to the fault-free run — only [worker], [attempts],
    [retries] and the timing fields change — so a certificate built
    from a faulted epoch is byte-identical to the clean one. All
    workers crashed, or a task exhausting its budget, is an [Error]. *)

val worker_costs_json : stats -> Zen_obs.Json.t
(** The {!stats.worker_costs} table as a JSON array
    ([{worker, busy_s, proofs, retries}] per worker) — the shape the
    CLI embeds under ["workers"] in a ["zen-report/1"] document. *)

val merge_all :
  ?pool:Pool.t ->
  Circuits.family ->
  Recursive.system ->
  task_proof list ->
  (Recursive.transition_proof, string) result
(** Folds the dispatched proofs into the single epoch proof (Fig. 11):
    base-proof wrapping is a parallel map, and each level of the merge
    tree parallelizes via {!Recursive.fold_balanced}. *)

val prove_and_merge :
  ?pool:Pool.t ->
  ?faults:(int * worker_fault) list ->
  ?attempt_budget:int ->
  Circuits.family ->
  Recursive.system ->
  initial:Sc_state.t ->
  steps:Sc_tx.step list ->
  workers:int ->
  seed:int ->
  (task_proof list * stats * Recursive.transition_proof, string) result
(** Pipelined {!prove_epoch} + {!merge_all}: every proving task becomes
    a {!Pool.future}, and completed base proofs are folded — in step
    order — through {!Recursive.Incremental} while later tasks are
    still proving, so merging overlaps proving instead of waiting for
    the last base proof. The incentive layer is untouched (the §5.4.1
    dispatch is drawn from the seeded rng before execution): proofs,
    rewards, retries, the final epoch proof's bytes and the error
    selection are all byte-identical to the two-phase path for every
    domain count; only [stats.wall] (which now covers the overlapped
    prove+merge) and per-task timings differ. *)
