(** The sidechain node's transaction pool: FIFO of candidate Latus
    transactions, indexed by txid.

    Same design as the mainchain [Mempool]: a newest-first order list
    makes admission O(1) (the historical list-append pool was O(n) per
    submission, O(n²) over an epoch of traffic), a txid set dedups
    submissions and reorg reinjections, and the size is carried rather
    than recounted. Validation stays where it always was — at
    submission and at forge selection. *)

open Zen_crypto

type t

val empty : t

val add : t -> Sc_tx.t -> t
(** O(1) admission; duplicates (by txid) are ignored. *)

val remove_included : t -> Sc_tx.t list -> t
(** Drops the given transactions (typically a forged block's) by txid. *)

val reinject_front : t -> Sc_tx.t list -> t
(** Reorg recovery: [recovered] (oldest first, as read off the dropped
    blocks) returns to the {e front} of the FIFO so recovered traffic
    re-forges before anything newer — minus any tx already pooled or
    repeated, so a reorg can never double-queue a payment. *)

val txs : t -> Sc_tx.t list
(** FIFO order (oldest first) — the order the forger applies them. *)

val mem : t -> Hash.t -> bool
val size : t -> int
(** O(1). *)
