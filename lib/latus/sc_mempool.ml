open Zen_crypto

(* The mainchain Mempool design ported to sidechain transactions:
   newest-first order list (O(1) admission), a txid set for O(1)
   membership/dedup, and a carried count so size never walks the
   list. The historical node mempool was a plain oldest-first list —
   O(n) append per submission (O(n²) across an epoch), O(n) size, and
   no dedup on reorg reinjection. *)

type t = {
  order : Sc_tx.t list; (* newest first *)
  ids : Hash.Set.t;
  count : int; (* |order|, carried so [size] is O(1) *)
}

let empty = { order = []; ids = Hash.Set.empty; count = 0 }

let add t tx =
  let id = Sc_tx.txid tx in
  if Hash.Set.mem id t.ids then t
  else
    {
      order = tx :: t.order;
      ids = Hash.Set.add id t.ids;
      count = t.count + 1;
    }

let remove_included t txs =
  match txs with
  | [] -> t
  | _ ->
    let included = Hash.Set.of_list (List.map Sc_tx.txid txs) in
    let kept = ref 0 in
    let order =
      List.filter
        (fun tx ->
          let keep = not (Hash.Set.mem (Sc_tx.txid tx) included) in
          if keep then incr kept;
          keep)
        t.order
    in
    { order; ids = Hash.Set.diff t.ids included; count = !kept }

(* Reorg recovery: transactions of dropped sidechain blocks go back to
   the FRONT of the pool (they are older than anything waiting), each
   at most once — a tx already in the pool, or appearing twice across
   the dropped blocks, is not double-queued. *)
let reinject_front t recovered =
  let fresh, _ =
    List.fold_left
      (fun (acc, seen) tx ->
        let id = Sc_tx.txid tx in
        if Hash.Set.mem id seen then (acc, seen)
        else (tx :: acc, Hash.Set.add id seen))
      ([], t.ids) recovered
  in
  (* [fresh] is newest-first among the recovered; the recovered txs are
     older than the current pool, so they append at the newest-first
     list's tail. *)
  {
    order = t.order @ fresh;
    ids =
      List.fold_left (fun s tx -> Hash.Set.add (Sc_tx.txid tx) s) t.ids fresh;
    count = t.count + List.length fresh;
  }

let txs t = List.rev t.order
let mem t id = Hash.Set.mem id t.ids
let size t = t.count
