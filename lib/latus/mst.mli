(** The Merkle State Tree (paper §5.2, Fig. 9) plus the [mst_delta]
    machinery of Appendix A.

    Wraps the sparse Merkle tree with UTXO semantics: slots hold UTXO
    commitments, positions come from [MST_Position], and the tree
    remembers which slots changed since the last withdrawal-certificate
    snapshot so the delta bit vector can be emitted. The full UTXOs are
    kept alongside (the tree stores only commitments) so wallets and
    provers can open leaves. *)

open Zen_crypto
open Zendoo

type t

val create : Params.t -> t

val of_utxos : ?pool:Pool.t -> Params.t -> Utxo.t list -> (t, string) result
(** Batch constructor: equivalent to folding {!insert} over the list
    into {!create}, but built bottom-up via {!Smt.of_bindings} — with a
    [pool], the tree is hashed across domains (bit-identical result for
    every domain count). All positions count as modified, exactly as
    after individual inserts. Fails on an [MST_Position] collision. *)

val depth : t -> int
val root : t -> Fp.t
val occupied : t -> int

val get : t -> int -> Utxo.t option
val find_utxo : t -> Utxo.t -> int option
(** The slot of this exact UTXO if it is currently in the tree. *)

val insert : t -> Utxo.t -> (t * int, string) result
(** Fails when [MST_Position] maps to an occupied slot — the collision
    failure mode of §5.3.2. Returns the slot used. *)

val remove : t -> Utxo.t -> (t * int, string) result
(** Fails unless this exact UTXO occupies its slot. *)

type op = Op_insert of Utxo.t | Op_remove of Utxo.t

val apply_ops : t -> op list -> (t, string) result
(** Batched mutation: semantically identical to folding {!insert} /
    {!remove} over the ops left to right (same result, same first
    error — ordering matters, e.g. a remove frees its slot for a later
    insert), but the tree is rehashed in one merged
    {!Smt.update_batch} traversal, costing one root-path rehash per
    {e distinct} touched slot instead of one per op. Either the whole
    batch applies or the state is unchanged. *)

val balance_of : t -> Hash.t -> Amount.t
(** Total value held by an address — the stake function for leader
    election. *)

val utxos_of : t -> Hash.t -> (int * Utxo.t) list

val all_utxos : t -> (int * Utxo.t) list
(** Every occupied slot, in position order. *)

val total_value : t -> Amount.t

val prove_slot : t -> int -> Smt.proof
val verify_slot :
  root:Fp.t -> pos:int -> utxo:Utxo.t option -> depth:int -> Smt.proof -> bool

(** {2 Delta tracking (Appendix A)} *)

val modified_since_snapshot : t -> int list
(** Positions written (in either direction) since the last snapshot. *)

val delta_bits : t -> Bytes.t
(** The [mst_delta] bit vector: bit [p] set iff slot [p] was modified
    since the snapshot. Length [2^depth / 8]. *)

val snapshot : t -> t
(** Clears the modification set — called when a withdrawal certificate
    commits the current state. *)

val delta_bit : Bytes.t -> int -> bool
(** Reads one position out of an [mst_delta] vector. *)

val delta_hash : Bytes.t -> Hash.t
