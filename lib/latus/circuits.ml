open Zen_crypto
open Zen_snark
open Zendoo

type keys = {
  pk : Backend.proving_key;
  vk : Backend.verification_key;
  constraints : int;
}

(* A compile-once circuit template: the R1CS shape (synthesized and
   digested exactly once, at family creation) plus a witness generator
   that re-runs the same gadget code in evaluation mode to fill the
   assignment for concrete values. [prove_step] and friends go through
   the template on every call, so the per-proof cost is field
   arithmetic only — no constraint lists, no SHA-256 re-digesting. *)
type 'v template = {
  circuit : R1cs.circuit;
  assign : 'v -> Fp.t array * Fp.t array;
}

(* The re-synthesis path is kept selectable so equivalence tests and
   benchmarks can compare both pipelines byte for byte. Set it before
   proving starts: the flag is read-only while a Domain pool is
   running. *)
let templates_enabled = ref true
let set_use_templates b = templates_enabled := b
let use_templates () = !templates_enabled

let template_hits =
  Zen_obs.Counter.make
    ~help:"Proves served by a compiled circuit template (no re-synthesis)"
    "latus.template.hits"

let template_misses =
  Zen_obs.Counter.make
    ~help:"Proves that re-synthesized their circuit (template path disabled)"
    "latus.template.misses"

let bits_of_pos pos d = List.init d (fun i -> Fp.of_int ((pos lsr i) land 1))

(* ---- Slot-write circuit (Remove and Insert directions) ---- *)

type slot_values = {
  acc : Fp.t;
  addr : Fp.t;
  amt : Fp.t;
  nonce : Fp.t;
  pos : int;
  siblings : Fp.t list;
  s_from_v : Fp.t;
  s_to_v : Fp.t;
}

let slot_write_body ~depth ~remove ctx v =
  let s_from = Gadget.input ctx v.s_from_v in
  let s_to = Gadget.input ctx v.s_to_v in
  let acc = Gadget.witness ctx v.acc in
  let addr = Gadget.witness ctx v.addr in
  let amt = Gadget.witness ctx v.amt in
  let nonce = Gadget.witness ctx v.nonce in
  let path_bits =
    List.map
      (fun b ->
        let w = Gadget.witness ctx b in
        Gadget.assert_bool ~label:"slot.posbit" ctx w;
        w)
      (bits_of_pos v.pos depth)
  in
  let siblings = List.map (Gadget.witness ctx) v.siblings in
  Gadget.assert_le_bits ctx amt Amount.amount_bits;
  let leaf_commit = Gadget.poseidon_hash ctx [ addr; amt; nonce ] in
  let occupied = Gadget.poseidon2 ctx leaf_commit (Gadget.const Fp.one) in
  let empty = Gadget.const Smt.empty_leaf_hash in
  let root_occupied =
    Gadget.merkle_root ctx ~leaf:occupied ~path_bits ~siblings
  in
  let root_empty = Gadget.merkle_root ctx ~leaf:empty ~path_bits ~siblings in
  let root_before, root_after =
    if remove then (root_occupied, root_empty)
    else (root_empty, root_occupied)
  in
  Gadget.assert_eq ~label:"slot.s_from" ctx
    (Gadget.poseidon2 ctx root_before acc)
    s_from;
  Gadget.assert_eq ~label:"slot.s_to" ctx
    (Gadget.poseidon2 ctx root_after acc)
    s_to

let synth_slot_write ~name ~depth ~remove v =
  let ctx = Gadget.create () in
  slot_write_body ~depth ~remove ctx v;
  Gadget.finalize ~name ctx

(* ---- Backward-transfer accumulation circuit ---- *)

type append_values = {
  a_root : Fp.t;
  a_acc0 : Fp.t;
  a_recv : Fp.t;
  a_amt : Fp.t;
  a_s_from : Fp.t;
  a_s_to : Fp.t;
}

let append_body ctx v =
  let s_from = Gadget.input ctx v.a_s_from in
  let s_to = Gadget.input ctx v.a_s_to in
  let root = Gadget.witness ctx v.a_root in
  let acc0 = Gadget.witness ctx v.a_acc0 in
  let recv = Gadget.witness ctx v.a_recv in
  let amt = Gadget.witness ctx v.a_amt in
  Gadget.assert_le_bits ctx amt Amount.amount_bits;
  let bt_commit = Gadget.poseidon2 ctx recv amt in
  let acc1 = Gadget.poseidon2 ctx acc0 bt_commit in
  Gadget.assert_eq ~label:"append.s_from" ctx
    (Gadget.poseidon2 ctx root acc0)
    s_from;
  Gadget.assert_eq ~label:"append.s_to" ctx
    (Gadget.poseidon2 ctx root acc1)
    s_to

let synth_append ~name v =
  let ctx = Gadget.create () in
  append_body ctx v;
  Gadget.finalize ~name ctx

(* ---- Withdrawal-certificate binding circuit ---- *)

type wcert_values = {
  w_public : Fp.t array; (* quality, bt_root, end_prev, end_epoch, pd_root *)
  w_s_prev : Fp.t;
  w_s_last : Fp.t;
}

let wcert_body ctx v =
  let public = Array.to_list (Array.map (Gadget.input ctx) v.w_public) in
  let s_prev = Gadget.witness ctx v.w_s_prev in
  let s_last = Gadget.witness ctx v.w_s_last in
  let binding = Gadget.poseidon_hash ctx (public @ [ s_prev; s_last ]) in
  let binding_copy = Gadget.witness ctx (Gadget.value binding) in
  Gadget.assert_eq ~label:"wcert.binding" ctx binding binding_copy

let synth_wcert ~name v =
  let ctx = Gadget.create () in
  wcert_body ctx v;
  Gadget.finalize ~name ctx

(* ---- BTR/CSW ownership circuit (§5.5.3.2) ---- *)

type ownership_values = {
  o_public : Fp.t array; (* ref_block, nullifier, receiver, amount, pd_root *)
  o_addr : Fp.t;
  o_amt : Fp.t;
  o_nonce : Fp.t;
  o_pos : int;
  o_siblings : Fp.t list;
  o_root : Fp.t;
}

let ownership_body ~depth ctx v =
  let public = Array.map (Gadget.input ctx) v.o_public in
  let amount_pub = public.(3) in
  let addr = Gadget.witness ctx v.o_addr in
  let amt = Gadget.witness ctx v.o_amt in
  let nonce = Gadget.witness ctx v.o_nonce in
  let path_bits =
    List.map
      (fun b ->
        let w = Gadget.witness ctx b in
        Gadget.assert_bool ~label:"own.posbit" ctx w;
        w)
      (bits_of_pos v.o_pos depth)
  in
  let siblings = List.map (Gadget.witness ctx) v.o_siblings in
  let hist_root = Gadget.witness ctx v.o_root in
  Gadget.assert_le_bits ctx amt Amount.amount_bits;
  let leaf_commit = Gadget.poseidon_hash ctx [ addr; amt; nonce ] in
  let occupied = Gadget.poseidon2 ctx leaf_commit (Gadget.const Fp.one) in
  let root = Gadget.merkle_root ctx ~leaf:occupied ~path_bits ~siblings in
  Gadget.assert_eq ~label:"own.root" ctx root hist_root;
  Gadget.assert_eq ~label:"own.amount" ctx amt amount_pub

let synth_ownership ~name ~depth v =
  let ctx = Gadget.create () in
  ownership_body ~depth ctx v;
  Gadget.finalize ~name ctx

(* ---- Template compilation (once per family) ---- *)

let template_of ~name body dummy =
  let ctx = Gadget.create () in
  body ctx dummy;
  let circuit, _, _ = Gadget.finalize ~name ctx in
  let assign v =
    let ctx = Gadget.create_eval () in
    body ctx v;
    Gadget.assignment ctx
  in
  { circuit; assign }

type family = {
  params : Params.t;
  remove_keys : keys;
  insert_keys : keys;
  append_keys : keys;
  wcert : keys;
  ownership : keys;
  remove_tpl : slot_values template;
  insert_tpl : slot_values template;
  append_tpl : append_values template;
  wcert_tpl : wcert_values template;
  ownership_tpl : ownership_values template;
}

let keys_of circuit =
  let pk, vk = Backend.setup circuit in
  { pk; vk; constraints = R1cs.num_constraints circuit }

let dummy_slot depth =
  {
    acc = Fp.zero;
    addr = Fp.zero;
    amt = Fp.zero;
    nonce = Fp.zero;
    pos = 0;
    siblings = List.init depth (fun _ -> Fp.zero);
    s_from_v = Fp.zero;
    s_to_v = Fp.zero;
  }

let make params =
  let depth = params.Params.mst_depth in
  let remove_tpl =
    template_of ~name:"latus.remove"
      (slot_write_body ~depth ~remove:true)
      (dummy_slot depth)
  in
  let insert_tpl =
    template_of ~name:"latus.insert"
      (slot_write_body ~depth ~remove:false)
      (dummy_slot depth)
  in
  let append_tpl =
    template_of ~name:"latus.append_bt" append_body
      {
        a_root = Fp.zero;
        a_acc0 = Fp.zero;
        a_recv = Fp.zero;
        a_amt = Fp.zero;
        a_s_from = Fp.zero;
        a_s_to = Fp.zero;
      }
  in
  let wcert_tpl =
    template_of ~name:"latus.wcert" wcert_body
      {
        w_public = Array.make 5 Fp.zero;
        w_s_prev = Fp.zero;
        w_s_last = Fp.zero;
      }
  in
  let ownership_tpl =
    template_of ~name:"latus.ownership" (ownership_body ~depth)
      {
        o_public = Array.make 5 Fp.zero;
        o_addr = Fp.zero;
        o_amt = Fp.zero;
        o_nonce = Fp.zero;
        o_pos = 0;
        o_siblings = List.init depth (fun _ -> Fp.zero);
        o_root = Fp.zero;
      }
  in
  {
    params;
    remove_keys = keys_of remove_tpl.circuit;
    insert_keys = keys_of insert_tpl.circuit;
    append_keys = keys_of append_tpl.circuit;
    wcert = keys_of wcert_tpl.circuit;
    ownership = keys_of ownership_tpl.circuit;
    remove_tpl;
    insert_tpl;
    append_tpl;
    wcert_tpl;
    ownership_tpl;
  }

let base_vks f = [ f.remove_keys.vk; f.insert_keys.vk; f.append_keys.vk ]
let wcert_keys f = f.wcert
let ownership_keys f = f.ownership

let step_keys f = function
  | Sc_tx.Remove _ -> f.remove_keys
  | Sc_tx.Insert _ -> f.insert_keys
  | Sc_tx.Append_bt _ -> f.append_keys

let ( let* ) = Result.bind

let prove_with keys (circuit, public, witness) =
  let expected = R1cs.digest (Backend.pk_circuit keys.pk) in
  if not (Hash.equal (R1cs.digest circuit) expected) then
    Error "circuit shape diverged from setup"
  else
    let* proof = Backend.prove keys.pk ~public ~witness in
    Ok proof

(* The hot-path dispatcher: templates fill the assignment without
   synthesis; the legacy branch re-synthesizes (and re-digests) for the
   equivalence tests and benchmarks. [R1cs.same] compares digests
   computed at compile time — the per-prove SHA-256 of the constraint
   stream is gone. *)
let prove_via keys tpl resynth v =
  if !templates_enabled then begin
    Zen_obs.Counter.incr template_hits;
    if not (R1cs.same tpl.circuit (Backend.pk_circuit keys.pk)) then
      Error "circuit template diverged from setup"
    else begin
      let public, witness = tpl.assign v in
      Backend.prove keys.pk ~public ~witness
    end
  end
  else begin
    Zen_obs.Counter.incr template_misses;
    prove_with keys (resynth v)
  end

let prove_step f (state : Sc_state.t) step =
  let depth = f.params.Params.mst_depth in
  let s_from_v = Sc_state.hash state in
  match step with
  | Sc_tx.Remove utxo -> (
    match Mst.find_utxo state.mst utxo with
    | None -> Error "prove: utxo not in state"
    | Some pos ->
      let siblings = Smt.proof_siblings (Mst.prove_slot state.mst pos) in
      let* mst_after, _ = Mst.remove state.mst utxo in
      let s_to_v = Poseidon.hash2 (Mst.root mst_after) state.bt_acc in
      let v =
        {
          acc = state.bt_acc;
          addr = Hash.to_fp utxo.addr;
          amt = Amount.to_fp utxo.amount;
          nonce = Hash.to_fp utxo.nonce;
          pos;
          siblings;
          s_from_v;
          s_to_v;
        }
      in
      let* proof =
        prove_via f.remove_keys f.remove_tpl
          (synth_slot_write ~name:"latus.remove" ~depth ~remove:true)
          v
      in
      Ok (proof, f.remove_keys.vk, s_from_v, s_to_v))
  | Sc_tx.Insert utxo -> (
    let pos = Utxo.position ~mst_depth:depth utxo in
    match Mst.get state.mst pos with
    | Some _ -> Error "prove: slot occupied"
    | None ->
      let siblings = Smt.proof_siblings (Mst.prove_slot state.mst pos) in
      let* mst_after, _ = Mst.insert state.mst utxo in
      let s_to_v = Poseidon.hash2 (Mst.root mst_after) state.bt_acc in
      let v =
        {
          acc = state.bt_acc;
          addr = Hash.to_fp utxo.addr;
          amt = Amount.to_fp utxo.amount;
          nonce = Hash.to_fp utxo.nonce;
          pos;
          siblings;
          s_from_v;
          s_to_v;
        }
      in
      let* proof =
        prove_via f.insert_keys f.insert_tpl
          (synth_slot_write ~name:"latus.insert" ~depth ~remove:false)
          v
      in
      Ok (proof, f.insert_keys.vk, s_from_v, s_to_v))
  | Sc_tx.Append_bt bt ->
    let recv, amt = Backward_transfer.to_fp_pair bt in
    let acc1 = Sc_state.bt_acc_step state.bt_acc bt in
    let root = Mst.root state.mst in
    let s_to_v = Poseidon.hash2 root acc1 in
    let v =
      {
        a_root = root;
        a_acc0 = state.bt_acc;
        a_recv = recv;
        a_amt = amt;
        a_s_from = s_from_v;
        a_s_to = s_to_v;
      }
    in
    let* proof =
      prove_via f.append_keys f.append_tpl
        (synth_append ~name:"latus.append_bt")
        v
    in
    Ok (proof, f.append_keys.vk, s_from_v, s_to_v)

let prove_wcert_binding f ~quality ~bt_root ~end_prev_epoch ~end_epoch
    ~proofdata ~s_prev ~s_last =
  let w_public =
    Array.append
      (Withdrawal_certificate.sysdata ~quality ~bt_root
         ~end_prev_epoch ~end_epoch)
      [| Proofdata.root_fp proofdata |]
  in
  prove_via f.wcert f.wcert_tpl
    (synth_wcert ~name:"latus.wcert")
    { w_public; w_s_prev = s_prev; w_s_last = s_last }

let prove_ownership f ~mst ~utxo ~reference_block ~receiver ~proofdata =
  match Mst.find_utxo mst utxo with
  | None -> Error "ownership: utxo not in the committed state"
  | Some pos ->
    let siblings = Smt.proof_siblings (Mst.prove_slot mst pos) in
    let o_public =
      Array.append
        (Mainchain_withdrawal.sysdata ~reference_block
           ~nullifier:(Utxo.nullifier utxo) ~receiver ~amount:utxo.amount)
        [| Proofdata.root_fp proofdata |]
    in
    prove_via f.ownership f.ownership_tpl
      (synth_ownership ~name:"latus.ownership" ~depth:f.params.Params.mst_depth)
      {
        o_public;
        o_addr = Hash.to_fp utxo.addr;
        o_amt = Amount.to_fp utxo.amount;
        o_nonce = Hash.to_fp utxo.nonce;
        o_pos = pos;
        o_siblings = siblings;
        o_root = Mst.root mst;
      }
