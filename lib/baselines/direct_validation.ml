open Zendoo
open Zen_latus

let replay_epoch ~params:_ ~initial ~txs =
  List.fold_left
    (fun acc tx -> Result.bind acc (fun st -> Sc_tx.apply st tx))
    (Ok initial) txs

(* Exact wire sizes: what the MC would actually have to download. *)
let epoch_data_bytes ~txs =
  List.fold_left
    (fun a tx -> a + String.length (Sc_wire.encode_tx tx))
    0 txs

let check_withdrawals ~final ~claimed =
  let produced = Sc_state.backward_transfers final in
  if List.length produced <> List.length claimed then
    Error "direct validation: withdrawal count mismatch"
  else if
    List.for_all2 Backward_transfer.equal produced claimed
  then Ok ()
  else Error "direct validation: withdrawal mismatch"
