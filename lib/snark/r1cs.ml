open Zen_crypto

type var = int

type lc = (Fp.t * var) list

type constr = { a : lc; b : lc; c : lc; label : string option }

type builder = {
  mutable next_var : int;
  mutable num_public : int;
  mutable witness_started : bool;
  mutable constraints : constr list; (* reversed *)
  mutable num_constraints : int;
}

(* A finalized constraint system stores each matrix (A, B, C) in CSR
   form: the terms of constraint [i] live at [row.(i) .. row.(i+1)-1]
   in the parallel [idx]/[coef] arrays. [Fp.t] is an immediate int, so
   all three arrays are flat unboxed memory and evaluating a row is a
   tight loop with zero allocation — this is what makes compile-once
   circuit templates pay off on the per-prove hot path. *)
type csr = { row : int array; idx : int array; coef : Fp.t array }

type circuit = {
  name : string;
  n_public : int;
  n_vars : int;
  n_constraints : int;
  ma : csr;
  mb : csr;
  mc : csr;
  labels : string option array;
  digest : Hash.t;
}

let finalizes =
  Zen_obs.Counter.make
    ~help:"R1CS circuits finalized (synthesis + constraint digesting)"
    "snark.r1cs.finalize"

let constraint_evals =
  Zen_obs.Counter.make
    ~help:"R1CS constraints evaluated by satisfiability checks"
    "snark.r1cs.constraint_evals"

let one_var = 0

let create () =
  {
    next_var = 1;
    num_public = 0;
    witness_started = false;
    constraints = [];
    num_constraints = 0;
  }

let alloc_input b =
  if b.witness_started then
    invalid_arg "R1cs.alloc_input: witness allocation already started";
  let v = b.next_var in
  b.next_var <- v + 1;
  b.num_public <- b.num_public + 1;
  v

let alloc_witness b =
  b.witness_started <- true;
  let v = b.next_var in
  b.next_var <- v + 1;
  v

let constrain ?label b a bb c =
  b.constraints <- { a; b = bb; c; label } :: b.constraints;
  b.num_constraints <- b.num_constraints + 1

let lc_bytes lc =
  let buf = Buffer.create 64 in
  List.iter
    (fun (coeff, v) ->
      Buffer.add_string buf (string_of_int (Fp.to_int coeff));
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int v);
      Buffer.add_char buf ';')
    lc;
  Buffer.contents buf

let csr_of_rows select cs =
  let n = Array.length cs in
  let row = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row.(i + 1) <- row.(i) + List.length (select cs.(i))
  done;
  let terms = row.(n) in
  let idx = Array.make terms 0 in
  let coef = Array.make terms Fp.zero in
  Array.iteri
    (fun i c ->
      let j = ref row.(i) in
      List.iter
        (fun (k, v) ->
          coef.(!j) <- k;
          idx.(!j) <- v;
          incr j)
        (select c))
    cs;
  { row; idx; coef }

let finalize ~name b =
  Zen_obs.Counter.incr finalizes;
  let cs = Array.of_list (List.rev b.constraints) in
  let ctx = Sha256.init () in
  Sha256.feed ctx "zendoo.r1cs.v1";
  Sha256.feed ctx name;
  Sha256.feed ctx (string_of_int b.num_public);
  Sha256.feed ctx (string_of_int b.next_var);
  Array.iter
    (fun { a; b = bb; c; _ } ->
      Sha256.feed ctx (lc_bytes a);
      Sha256.feed ctx "*";
      Sha256.feed ctx (lc_bytes bb);
      Sha256.feed ctx "=";
      Sha256.feed ctx (lc_bytes c);
      Sha256.feed ctx "|")
    cs;
  {
    name;
    n_public = b.num_public;
    n_vars = b.next_var;
    n_constraints = Array.length cs;
    ma = csr_of_rows (fun c -> c.a) cs;
    mb = csr_of_rows (fun c -> c.b) cs;
    mc = csr_of_rows (fun c -> c.c) cs;
    labels = Array.map (fun c -> c.label) cs;
    digest = Hash.of_raw (Sha256.finalize ctx);
  }

let name c = c.name
let num_constraints c = c.n_constraints
let num_public c = c.n_public
let num_vars c = c.n_vars
let num_witness c = c.n_vars - 1 - c.n_public
let digest c = c.digest

(* Identity of finalized circuits: digests are computed once at
   [finalize], so this never re-hashes anything. *)
let same c1 c2 = c1 == c2 || Hash.equal c1.digest c2.digest

let eval_lc z lc =
  List.fold_left (fun acc (coeff, v) -> Fp.add acc (Fp.mul coeff z.(v))) Fp.zero lc

let eval_row m z i =
  let stop = m.row.(i + 1) in
  let rec go j acc =
    if j = stop then acc
    else go (j + 1) (Fp.add acc (Fp.mul m.coef.(j) z.(m.idx.(j))))
  in
  go m.row.(i) Fp.zero

let check circuit z =
  if Array.length z <> circuit.n_vars then Error "assignment length mismatch"
  else if not (Fp.equal z.(0) Fp.one) then Error "z.(0) must be 1"
  else begin
    let n = circuit.n_constraints in
    let rec loop i =
      if i = n then begin
        Zen_obs.Counter.add constraint_evals n;
        Ok ()
      end
      else
        let va = eval_row circuit.ma z i
        and vb = eval_row circuit.mb z i
        and vc = eval_row circuit.mc z i in
        if Fp.equal (Fp.mul va vb) vc then loop (i + 1)
        else begin
          Zen_obs.Counter.add constraint_evals (i + 1);
          match circuit.labels.(i) with
          | Some l ->
            Error (Printf.sprintf "unsatisfied constraint %d (%s)" i l)
          | None -> Error (Printf.sprintf "unsatisfied constraint %d" i)
        end
    in
    loop 0
  end

let satisfied circuit ~public ~witness =
  if Array.length public <> circuit.n_public then
    Error
      (Printf.sprintf "public input length %d, expected %d"
         (Array.length public) circuit.n_public)
  else if Array.length witness <> num_witness circuit then
    Error
      (Printf.sprintf "witness length %d, expected %d" (Array.length witness)
         (num_witness circuit))
  else begin
    let z = Array.make circuit.n_vars Fp.one in
    Array.blit public 0 z 1 (Array.length public);
    Array.blit witness 0 z (1 + circuit.n_public) (Array.length witness);
    check circuit z
  end
