open Zen_crypto

type verification_key = {
  circuit_digest : Hash.t;
  n_public : int;
  (* The simulation's stand-in for the verifier's pairing check: a MAC
     key derived from the circuit. Within the system, proofs are only
     ever produced via [prove]; see DESIGN.md §3. *)
  tag_key : string;
}

type proving_key = { circuit : R1cs.circuit; vk : verification_key }

type proof = string (* exactly proof_size_bytes bytes *)

let proof_size_bytes = 96

let setups =
  Zen_obs.Counter.make ~help:"SNARK circuit setups performed" "snark.setup"

let proves =
  Zen_obs.Counter.make ~help:"SNARK proofs produced (includes failed attempts)"
    "snark.prove"

let verifies =
  Zen_obs.Counter.make ~help:"SNARK proof verifications" "snark.verify"

let constraints_proved =
  Zen_obs.Counter.make
    ~help:"R1CS constraints covered by prove calls (sum over circuits)"
    "snark.constraints_proved"

let setup circuit =
  Zen_obs.Counter.incr setups;
  Zen_obs.Trace.with_span ~cat:"snark"
    ~args:[ ("constraints", string_of_int (R1cs.num_constraints circuit)) ]
    "snark.setup"
  @@ fun () ->
  let circuit_digest = R1cs.digest circuit in
  let tag_key =
    Sha256.digest ("zendoo.snark.tag" ^ Hash.to_raw circuit_digest)
  in
  let vk = { circuit_digest; n_public = R1cs.num_public circuit; tag_key } in
  ({ circuit; vk }, vk)

let public_bytes public =
  let buf = Buffer.create (16 * Array.length public) in
  Array.iter
    (fun x ->
      Buffer.add_string buf (string_of_int (Fp.to_int x));
      Buffer.add_char buf '|')
    public;
  Buffer.contents buf

let tag vk public =
  let mac =
    Sha256.hmac ~key:vk.tag_key
      (Hash.to_raw vk.circuit_digest ^ public_bytes public)
  in
  (* Expand to the fixed proof size: three 32-byte "group elements". *)
  mac
  ^ Sha256.digest ("zendoo.snark.g2" ^ mac)
  ^ Sha256.digest ("zendoo.snark.g1b" ^ mac)

let prove pk ~public ~witness =
  Zen_obs.Counter.incr proves;
  Zen_obs.Counter.add constraints_proved (R1cs.num_constraints pk.circuit);
  Zen_obs.Trace.with_span ~cat:"snark"
    ~args:
      [ ("constraints", string_of_int (R1cs.num_constraints pk.circuit)) ]
    "snark.prove"
  @@ fun () ->
  match R1cs.satisfied pk.circuit ~public ~witness with
  | Error e -> Error e
  | Ok () -> Ok (tag pk.vk public)

(* Counter only, no span: verification is the hottest backend entry
   point (every merge verifies both children) and a span per call would
   dominate the trace buffer. *)
let verify vk ~public proof =
  Zen_obs.Counter.incr verifies;
  Array.length public = vk.n_public && String.equal proof (tag vk public)

let pk_circuit pk = pk.circuit

let vk_digest vk =
  Hash.tagged "snark.vk"
    [ Hash.to_raw vk.circuit_digest; string_of_int vk.n_public ]

let vk_num_public vk = vk.n_public

let vk_encode vk =
  Hash.to_raw vk.circuit_digest ^ Printf.sprintf "%08x" vk.n_public ^ vk.tag_key

let vk_decode s =
  if String.length s <> 32 + 8 + 32 then None
  else
    (* Strict lowercase hex only: [int_of_string] would also accept
       uppercase digits and underscores, making the encoding malleable
       (two byte strings decoding to the same key). *)
    let hex = String.sub s 32 8 in
    let strict =
      String.for_all
        (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
        hex
    in
    if not strict then None
    else
      match int_of_string_opt ("0x" ^ hex) with
      | None -> None
      | Some n_public ->
      Some
        {
          circuit_digest = Hash.of_raw (String.sub s 0 32);
          n_public;
          tag_key = String.sub s 40 32;
        }

let proof_encode p = p
let proof_decode s = if String.length s = proof_size_bytes then Some s else None
let proof_equal = String.equal
let dummy_proof = String.make proof_size_bytes '\000'
