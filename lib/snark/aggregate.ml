open Zen_crypto

type leaf = {
  sc_id : Hash.t;
  epoch : int;
  cert_hash : Hash.t;
  vk_digest : Hash.t;
  proof_bytes : string;
  end_prev_epoch : Hash.t;
  end_epoch : Hash.t;
}

let leaf_digest l =
  Hash.tagged "zendoo.aggregate.leaf"
    [
      Hash.to_raw l.sc_id;
      string_of_int l.epoch;
      Hash.to_raw l.cert_hash;
      Hash.to_raw l.vk_digest;
      l.proof_bytes;
      Hash.to_raw l.end_prev_epoch;
      Hash.to_raw l.end_epoch;
    ]

let node_hash l r =
  Hash.tagged "zendoo.aggregate.node" [ Hash.to_raw l; Hash.to_raw r ]

(* Must mirror the level structure of [build] below (and of
   [Recursive.fold_balanced]): pair positionally, carry an odd trailing
   element up unchanged. *)
let root_of_digests = function
  | [] -> None
  | ds ->
    let rec level arr =
      let n = Array.length arr in
      if n = 1 then arr.(0)
      else begin
        let pairs = n / 2 in
        level
          (Array.init
             ((n + 1) / 2)
             (fun i ->
               if i < pairs then node_hash arr.(2 * i) arr.((2 * i) + 1)
               else arr.(n - 1)))
      end
    in
    Some (level (Array.of_list ds))

type system = {
  pk : Backend.proving_key;
  vk : Backend.verification_key;
  vk_digest : Hash.t;
}

(* The aggregation statement circuit: public (root, count) plus a
   Poseidon binding — constant size, the simulated stand-in for
   "verify the children in-circuit" (children are verified natively by
   the prover, as in [Recursive.merge]). The structure is
   value-independent, so one setup serves leaf wraps and merges. *)
let synth ~name root_fp count_fp =
  let ctx = Gadget.create () in
  let w_root = Gadget.input ctx root_fp in
  let w_count = Gadget.input ctx count_fp in
  let h = Gadget.poseidon2 ctx w_root w_count in
  let binding = Gadget.witness ctx (Gadget.value h) in
  Gadget.assert_eq ~label:"aggregate.binding" ctx h binding;
  Gadget.finalize ~name ctx

let create () =
  let circuit, _, _ = synth ~name:"zendoo.aggregate" Fp.zero Fp.zero in
  let pk, vk = Backend.setup circuit in
  { pk; vk; vk_digest = Backend.vk_digest vk }

(* First use wins; guarded because pool workers may race here. *)
let shared_mu = Mutex.create ()
let shared_ref = ref None

let shared () =
  Mutex.lock shared_mu;
  let sys =
    match !shared_ref with
    | Some s -> s
    | None ->
      let s = create () in
      shared_ref := Some s;
      s
  in
  Mutex.unlock shared_mu;
  sys

let vk sys = sys.vk
let vk_digest sys = sys.vk_digest

type t = { root : Hash.t; count : int; proof : Backend.proof }

let root t = t.root
let count t = t.count
let proof t = t.proof
let of_parts ~root ~count ~proof = { root; count; proof }

let digest t =
  Hash.tagged "zendoo.aggregate"
    [
      Hash.to_raw t.root;
      string_of_int t.count;
      Backend.proof_encode t.proof;
    ]

let public_of ~root ~count = [| Hash.to_fp root; Fp.of_int count |]

let verify sys t =
  Backend.verify sys.vk ~public:(public_of ~root:t.root ~count:t.count) t.proof

let prove_node sys ~root ~count =
  let circuit, public, witness =
    synth
      ~name:(R1cs.name (Backend.pk_circuit sys.pk))
      (Hash.to_fp root) (Fp.of_int count)
  in
  (* Structure is value-independent: same circuit as at setup. *)
  assert (
    Hash.equal (R1cs.digest circuit) (R1cs.digest (Backend.pk_circuit sys.pk)));
  match Backend.prove sys.pk ~public ~witness with
  | Error e -> Error ("aggregate: " ^ e)
  | Ok proof -> Ok { root; count; proof }

let wraps =
  Zen_obs.Counter.make ~help:"Certificate-aggregation leaf wraps"
    "snark.aggregate.wraps"

let merges =
  Zen_obs.Counter.make
    ~help:"Certificate-aggregation merges (includes failed attempts)"
    "snark.aggregate.merges"

let build_s =
  Zen_obs.Histogram.make
    ~help:"certificate-aggregate build latency (wraps + merge tree)"
    ~bounds:(Zen_obs.Histogram.exponential_bounds ~lo:1e-4 ~factor:4. ~n:8)
    "snark.aggregate.build.seconds"

let of_leaf sys leaf ~check =
  Zen_obs.Counter.incr wraps;
  (* Native verification of the covered certificate proof — the
     simulation of verifying it in-circuit. Refusing here is what makes
     "aggregate verifies" equivalent to "every leaf verifies". *)
  if not (check ()) then
    Error "aggregate: covered certificate proof rejected"
  else prove_node sys ~root:(leaf_digest leaf) ~count:1

let merge sys a b =
  Zen_obs.Counter.incr merges;
  if not (verify sys a) then Error "aggregate: left child does not verify"
  else if not (verify sys b) then
    Error "aggregate: right child does not verify"
  else
    prove_node sys ~root:(node_hash a.root b.root) ~count:(a.count + b.count)

let build ?(pool = Pool.sequential) sys = function
  | [] -> Error "aggregate: no certificates to aggregate"
  | leaves ->
    Zen_obs.Histogram.time build_s @@ fun () ->
    Zen_obs.Trace.with_span ~cat:"snark"
      ~args:[ ("leaves", string_of_int (List.length leaves)) ]
      "aggregate.build"
    @@ fun () ->
    let leaf_arr = Array.of_list leaves in
    (* Leaf wraps are independent (one native cert verification + one
       constant-size prove each, same ~ms granularity as a merge). *)
    let wrapped =
      Pool.init_array pool ~cost:2.5 (Array.length leaf_arr) (fun i ->
          let leaf, check = leaf_arr.(i) in
          of_leaf sys leaf ~check)
    in
    let first_error arr n =
      let rec go i =
        if i >= n then None
        else match arr.(i) with Error e -> Some e | Ok _ -> go (i + 1)
      in
      go 0
    in
    (match first_error wrapped (Array.length wrapped) with
    | Some e -> Error e
    | None ->
      let rec level ~lvl arr =
        let n = Array.length arr in
        if n = 1 then Ok arr.(0)
        else begin
          let pairs = n / 2 in
          let merged =
            Zen_obs.Trace.with_span ~cat:"snark"
              ~args:
                [
                  ("level", string_of_int lvl); ("pairs", string_of_int pairs);
                ]
              "aggregate.merge_level"
            @@ fun () ->
            Pool.init_array pool ~cost:2.5 pairs (fun i ->
                merge sys arr.(2 * i) arr.((2 * i) + 1))
          in
          match first_error merged pairs with
          | Some e -> Error e
          | None ->
            level ~lvl:(lvl + 1)
              (Array.init
                 ((n + 1) / 2)
                 (fun i ->
                   if i < pairs then
                     match merged.(i) with Ok m -> m | Error _ -> assert false
                   else arr.(n - 1)))
        end
      in
      level ~lvl:0 (Array.map (function Ok t -> t | Error _ -> assert false) wrapped))
