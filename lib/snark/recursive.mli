(** Recursive SNARK composition for state-transition systems
    (paper Def. 2.5, Figs. 10–11).

    A {!transition_proof} attests "state [s_from] evolves to [s_to]".
    Base proofs come from application circuits whose first two public
    inputs are [(s_from, s_to)]; the {!merge} operation combines two
    adjacent proofs into one of the same shape. In the simulation the
    merge prover verifies both children natively — constant cost per
    child, exactly the cost profile real recursion buys — and then
    proves a constant-size merge circuit binding the endpoint states
    (DESIGN.md §3, substitution 2).

    [fold_balanced] builds the Fig. 10/11 merge tree: total work linear
    in the number of base transitions, tree depth logarithmic, final
    proof constant-size. *)

open Zen_crypto

type system
(** A recursion context: the merge keys plus the set of base
    verification keys it accepts as leaves. *)

type transition_proof

val create : name:string -> base_vks:Backend.verification_key list -> system
(** Sets up the merge circuit for a family of base circuits; only
    proofs under one of [base_vks] are accepted as leaves. *)

val merge_vk : system -> Backend.verification_key
(** The verification key of the merge circuit — what a verifier of the
    final folded proof needs (together with the endpoint states). *)

val base_public : s_from:Fp.t -> s_to:Fp.t -> extra:Fp.t array -> Fp.t array
(** Assembles the public-input vector convention for base circuits:
    [(s_from, s_to, extra…)]. *)

val of_base :
  system ->
  vk:Backend.verification_key ->
  s_from:Fp.t ->
  s_to:Fp.t ->
  extra:Fp.t array ->
  Backend.proof ->
  (transition_proof, string) result
(** Wraps and verifies a base proof produced by an application circuit.
    [extra] is the tail of that circuit's public input. *)

val merge :
  system -> transition_proof -> transition_proof -> (transition_proof, string) result
(** Fails when the proofs are not adjacent ([s_to] of the first differs
    from [s_from] of the second) or either child fails verification. *)

val fold_balanced :
  ?pool:Pool.t ->
  system ->
  transition_proof list ->
  (transition_proof, string) result
(** Balanced binary merge of a non-empty adjacency-ordered list.

    With a [pool], every level of the Fig. 10 merge tree is a parallel
    map over its adjacent pairs (the pairs of one level are
    independent; levels are barriers). The resulting proof — and on
    failure, the reported error — is bit-identical to the sequential
    pass for every domain count, because the pairing is positional and
    {!merge} is deterministic. Default: {!Pool.sequential}. *)

val fold_sequential :
  system -> transition_proof list -> (transition_proof, string) result
(** Left fold (degenerate tree) — the ablation comparison shape. *)

(** Online {!fold_balanced}: feed transitions one at a time, in
    adjacency order, as their base proofs complete; most merges happen
    {e during} feeding ({!Incremental.push} merges equal-sized aligned
    subtrees eagerly, a binary-counter carry structure), leaving
    {!Incremental.finish} at most ⌈log₂ n⌉ carry merges. The finished
    proof — and, on failure, the reported error — is {b byte-identical}
    to [fold_balanced] over the same list: the counter builds exactly
    the aligned subtrees of the Fig. 10 tree, in a different order.
    This is what keeps the certify path of a pipelined node logarithmic
    ([Zen_latus.Proof_pipeline]). *)
module Incremental : sig
  type acc
  (** Mutable fold state. Not thread-safe: push from one domain. *)

  val create : system -> acc

  val push : acc -> transition_proof -> unit
  (** Appends the next transition, running any eager merges it enables
      (amortized O(1) merges per push, worst case one carry chain). A
      failed merge is recorded and poisons the affected subtree;
      {!finish} reports the same error [fold_balanced] would. *)

  val count : acc -> int
  (** Transitions pushed so far. *)

  val eager_merges : acc -> int
  (** Merges already performed by {!push} — off the certify path. *)

  val pending_merges : acc -> int
  (** Carry merges {!finish} would run now: the stack height minus one,
      ≤ ⌈log₂ {!count}⌉. *)

  val finish : acc -> (transition_proof, string) result
  (** Folds the outstanding subtrees into the final proof (the carried
      trailing-element chain of [fold_balanced]). Non-destructive: the
      acc may be extended with further {!push}es and finished again —
      how a lost certificate is rebuilt without re-proving. Errors:
      ["fold_balanced: empty transition list"] when nothing was pushed,
      otherwise the first failing merge in [fold_balanced]'s
      (level, pair) execution order. *)
end

val s_from : transition_proof -> Fp.t
(** The state the covered transition chain starts from. *)

val s_to : transition_proof -> Fp.t
(** The state the covered transition chain ends at. *)

val depth : transition_proof -> int
(** Merge-tree height above base leaves (0 for a base proof). *)

val base_count : transition_proof -> int
(** Number of base transitions covered. *)

val verify : system -> transition_proof -> bool
(** Re-verifies the top proof object (constant time). *)

val final_proof : transition_proof -> Backend.proof
(** The underlying constant-size proof — what gets embedded in a
    withdrawal certificate's witness. *)

val proof_size_bytes : transition_proof -> int
(** Wire size of {!final_proof} — constant regardless of {!base_count}
    (the paper's headline property). *)
