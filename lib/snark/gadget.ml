open Zen_crypto

(* A wire's [terms] is the length of its linear combination. It is
   maintained incrementally in both modes so that witness-only
   evaluation reproduces every structural decision of synthesis (see
   [materialize]) without touching the lists themselves. *)
type wire = { lc : R1cs.lc; terms : int; value : Fp.t }

(* [Shape] emits constraints into an R1CS builder while computing
   values — the original synthesis mode. [Eval] runs the same gadget
   code but only records the public/witness value sequences: linear
   combinations stay empty and [emit] is a no-op, so filling the
   assignment for a compile-once template costs the field arithmetic
   and nothing else. *)
type mode = Shape of R1cs.builder | Eval

type ctx = {
  mode : mode;
  mutable public_rev : Fp.t list;
  mutable witness_rev : Fp.t list;
  mutable eval_witness_started : bool;
}

let create () =
  {
    mode = Shape (R1cs.create ());
    public_rev = [];
    witness_rev = [];
    eval_witness_started = false;
  }

let create_eval () =
  { mode = Eval; public_rev = []; witness_rev = []; eval_witness_started = false }

let emit ?label ctx a bb c =
  match ctx.mode with
  | Shape builder -> R1cs.constrain ?label builder a bb c
  | Eval -> ()

let input ctx v =
  match ctx.mode with
  | Shape builder ->
    let var = R1cs.alloc_input builder in
    ctx.public_rev <- v :: ctx.public_rev;
    { lc = [ (Fp.one, var) ]; terms = 1; value = v }
  | Eval ->
    if ctx.eval_witness_started then
      invalid_arg "Gadget.input: witness allocation already started";
    ctx.public_rev <- v :: ctx.public_rev;
    { lc = []; terms = 1; value = v }

let witness ctx v =
  match ctx.mode with
  | Shape builder ->
    let var = R1cs.alloc_witness builder in
    ctx.witness_rev <- v :: ctx.witness_rev;
    { lc = [ (Fp.one, var) ]; terms = 1; value = v }
  | Eval ->
    ctx.eval_witness_started <- true;
    ctx.witness_rev <- v :: ctx.witness_rev;
    { lc = []; terms = 1; value = v }

let const v = { lc = [ (v, R1cs.one_var) ]; terms = 1; value = v }
let const_int n = const (Fp.of_int n)
let value w = w.value

(* Linear operations merge coefficient lists; no constraints emitted.
   In eval mode both lists are empty and only [terms]/[value] move. *)
let add a b =
  { lc = a.lc @ b.lc; terms = a.terms + b.terms; value = Fp.add a.value b.value }

let scale k a =
  {
    lc = List.map (fun (c, v) -> (Fp.mul k c, v)) a.lc;
    terms = a.terms;
    value = Fp.mul k a.value;
  }

let sub a b = add a (scale (Fp.neg Fp.one) b)
let sum ws = List.fold_left add (const Fp.zero) ws

let mul ctx a b =
  let out = witness ctx (Fp.mul a.value b.value) in
  emit ctx a.lc b.lc out.lc;
  out

let square ctx a = mul ctx a a

let one_lc = [ (Fp.one, R1cs.one_var) ]

let assert_eq ?label ctx a b =
  emit ?label ctx (sub a b).lc one_lc [ (Fp.zero, R1cs.one_var) ]

let assert_zero ?label ctx a = assert_eq ?label ctx a (const Fp.zero)

let assert_bool ?label ctx a =
  emit ?label ctx a.lc (sub a (const Fp.one)).lc [ (Fp.zero, R1cs.one_var) ]

let assert_nonzero ?label ctx a =
  let inv = witness ctx (Fp.inv a.value) in
  emit ?label ctx a.lc inv.lc one_lc

let is_zero ctx v =
  (* y = 1 iff v = 0: constraints v·y = 0 and v·m = 1 − y, with m the
     inverse-or-zero hint. *)
  let m = witness ctx (if Fp.is_zero v.value then Fp.zero else Fp.inv v.value) in
  let y = witness ctx (if Fp.is_zero v.value then Fp.one else Fp.zero) in
  emit ~label:"is_zero.vy" ctx v.lc y.lc [ (Fp.zero, R1cs.one_var) ];
  emit ~label:"is_zero.vm" ctx v.lc m.lc (sub (const Fp.one) y).lc;
  y

let select ctx ~cond a b =
  (* b + cond·(a − b): one multiplication. *)
  add b (mul ctx cond (sub a b))

let to_bits ctx w n =
  let v = Fp.to_int w.value in
  if n < 61 && v lsr n <> 0 then
    invalid_arg "Gadget.to_bits: value does not fit";
  let bits =
    List.init n (fun i -> witness ctx (Fp.of_int ((v lsr i) land 1)))
  in
  List.iter (fun b -> assert_bool ~label:"to_bits.bool" ctx b) bits;
  let recomposed =
    List.mapi (fun i b -> scale (Fp.pow Fp.two i) b) bits |> sum
  in
  assert_eq ~label:"to_bits.sum" ctx recomposed w;
  bits

let assert_le_bits ctx w n = ignore (to_bits ctx w n)

(* In-circuit Poseidon: mirrors Zen_crypto.Poseidon.permute exactly so
   the wire values equal the native hash. The S-box x^17 costs five
   multiplications; ARC and MDS are linear and free. *)
let sbox ctx x =
  let x2 = square ctx x in
  let x4 = square ctx x2 in
  let x8 = square ctx x4 in
  let x16 = square ctx x8 in
  mul ctx x16 x

(* Rebind a wire to a fresh single-variable wire when its linear
   combination has grown long; without this, the non-S-boxed lanes of
   partial rounds triple in term count per round (3^22 terms). One
   constraint buys back a constant-size lc. The [terms] threshold makes
   the decision identical in eval mode, where the lists are empty. *)
let materialize ctx w =
  if w.terms <= 12 then w
  else begin
    let fresh = witness ctx w.value in
    emit ~label:"materialize" ctx w.lc one_lc fresh.lc;
    fresh
  end

let apply_mds ctx state =
  Array.init Poseidon.width (fun i ->
      materialize ctx
        (sum
           (List.init Poseidon.width (fun j ->
                scale Poseidon.mds.(i).(j) state.(j)))))

let permute ctx state0 =
  let state = ref (Array.copy state0) in
  let rounds_total = Poseidon.rounds_full + Poseidon.rounds_partial in
  let half_full = Poseidon.rounds_full / 2 in
  let round r full =
    let s =
      Array.mapi
        (fun i w ->
          add w (const Poseidon.round_constants.((r * Poseidon.width) + i)))
        !state
    in
    let s =
      if full then Array.map (sbox ctx) s
      else Array.mapi (fun i w -> if i = 0 then sbox ctx w else w) s
    in
    state := apply_mds ctx s
  in
  for r = 0 to half_full - 1 do
    round r true
  done;
  for r = half_full to half_full + Poseidon.rounds_partial - 1 do
    round r false
  done;
  for r = half_full + Poseidon.rounds_partial to rounds_total - 1 do
    round r true
  done;
  !state

let poseidon2 ctx a b =
  let out = permute ctx [| a; b; const (Fp.of_int 2) |] in
  out.(0)

let poseidon_hash ctx wires =
  (* Mirrors Poseidon.hash_fields: rate-2 absorption with the message
     length in the capacity lane. *)
  let n = List.length wires in
  let arr = Array.of_list wires in
  let state = ref [| const Fp.zero; const Fp.zero; const (Fp.of_int (n + 3)) |] in
  let i = ref 0 in
  while !i < n do
    let s = Array.copy !state in
    s.(0) <- add s.(0) arr.(!i);
    if !i + 1 < n then s.(1) <- add s.(1) arr.(!i + 1);
    state := permute ctx s;
    i := !i + 2
  done;
  if n = 0 then (permute ctx !state).(0) else !state.(0)

let merkle_root ctx ~leaf ~path_bits ~siblings =
  if List.length path_bits <> List.length siblings then
    invalid_arg "Gadget.merkle_root: arity mismatch";
  List.fold_left2
    (fun cur bit sib ->
      (* bit = 1 means the current node is the right child. *)
      let left = select ctx ~cond:bit sib cur in
      let right = select ctx ~cond:bit cur sib in
      poseidon2 ctx left right)
    leaf path_bits siblings

let assignment ctx =
  ( Array.of_list (List.rev ctx.public_rev),
    Array.of_list (List.rev ctx.witness_rev) )

let finalize ~name ctx =
  match ctx.mode with
  | Eval -> invalid_arg "Gadget.finalize: evaluation-only context"
  | Shape builder ->
    let circuit = R1cs.finalize ~name builder in
    let public, witness = assignment ctx in
    (circuit, public, witness)
