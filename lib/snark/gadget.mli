(** Circuit gadgets: synthesis-time helpers that emit constraints and
    compute the witness simultaneously.

    A {!wire} pairs a linear combination with its concrete value, so
    additions and scalings are free (no constraint, no new variable)
    while multiplications allocate one witness variable and one
    constraint — the R1CS cost model. The in-circuit Poseidon
    permutation built here is what gives the Latus state-transition
    circuits their realistic size (≈230 constraints per hash). *)

open Zen_crypto

type ctx
type wire

val create : unit -> ctx
(** Synthesis (shape) context: gadget calls emit constraints into an
    R1CS builder while computing wire values. *)

val create_eval : unit -> ctx
(** Witness-only evaluation context for compile-once templates: the
    same gadget code runs, but no constraints are emitted and no linear
    combinations are built — only the public/witness value sequences
    are recorded (read them back with {!assignment}). Because a wire's
    term count is tracked in both modes, every structural decision
    (e.g. lc materialization) replays identically, so the assignment is
    bit-identical to what synthesis would have produced. *)

val input : ctx -> Fp.t -> wire
(** Allocates a public-input wire carrying the given value. Must be
    called before any witness allocation. *)

val witness : ctx -> Fp.t -> wire
val const : Fp.t -> wire
val const_int : int -> wire

val value : wire -> Fp.t

val add : wire -> wire -> wire
val sub : wire -> wire -> wire
val scale : Fp.t -> wire -> wire
val sum : wire list -> wire

val mul : ctx -> wire -> wire -> wire
val square : ctx -> wire -> wire

val assert_eq : ?label:string -> ctx -> wire -> wire -> unit
val assert_zero : ?label:string -> ctx -> wire -> unit
val assert_bool : ?label:string -> ctx -> wire -> unit
(** Constrains [w·(w−1) = 0]. *)

val assert_nonzero : ?label:string -> ctx -> wire -> unit
(** Allocates the inverse as witness and constrains [w·w⁻¹ = 1].
    Raises [Division_by_zero] at synthesis when the value is zero. *)

val is_zero : ctx -> wire -> wire
(** Boolean wire: 1 iff the input is zero (standard inv-or-zero trick). *)

val select : ctx -> cond:wire -> wire -> wire -> wire
(** [select ~cond a b] is [a] when the boolean [cond] is 1, else [b]. *)

val to_bits : ctx -> wire -> int -> wire list
(** Little-endian bit decomposition into [n] boolean wires, with the
    recomposition constraint. Raises at synthesis if the value does not
    fit. Acts as a range check. *)

val assert_le_bits : ctx -> wire -> int -> unit
(** Range check: value fits in [n] bits. *)

val poseidon2 : ctx -> wire -> wire -> wire
(** In-circuit two-to-one Poseidon; matches {!Zen_crypto.Poseidon.hash2}. *)

val poseidon_hash : ctx -> wire list -> wire
(** In-circuit sponge over a fixed-length message; matches
    {!Zen_crypto.Poseidon.hash_list}. *)

val merkle_root : ctx -> leaf:wire -> path_bits:wire list -> siblings:wire list -> wire
(** Recomputes a sparse-Merkle-tree root from a leaf hash wire, the
    position bits (leaf-to-root, booleans) and sibling hash wires;
    matches {!Zen_crypto.Smt.verify}. *)

val assignment : ctx -> Fp.t array * Fp.t array
(** The [(public, witness)] value segments accumulated so far. Works in
    both modes; this is how an evaluation context's result is read. *)

val finalize : name:string -> ctx -> R1cs.circuit * Fp.t array * Fp.t array
(** Freezes the circuit and returns [(circuit, public, witness)] — the
    assignment segments accumulated during synthesis. Raises
    [Invalid_argument] on an evaluation-only context. *)
