open Zen_crypto

type transition_proof = {
  s_from : Fp.t;
  s_to : Fp.t;
  extra : Fp.t array; (* tail of the public input; empty for merges *)
  proof : Backend.proof;
  vk_digest : Hash.t;
  depth : int;
  base_count : int;
}

type system = {
  merge_pk : Backend.proving_key;
  merge_vk : Backend.verification_key;
  merge_vk_digest : Hash.t;
  base_vk_by_digest : Backend.verification_key Hash.Map.t;
}

(* The merge statement circuit: public (s_from, s_to), witness s_mid,
   plus a Poseidon chain binding all three. Constant size — the
   simulation stand-in for "verify two child proofs in-circuit". *)
let synth_merge ~name s_from s_mid s_to =
  let ctx = Gadget.create () in
  let w_from = Gadget.input ctx s_from in
  let w_to = Gadget.input ctx s_to in
  let w_mid = Gadget.witness ctx s_mid in
  let h1 = Gadget.poseidon2 ctx w_from w_mid in
  let h2 = Gadget.poseidon2 ctx h1 w_to in
  let binding = Gadget.witness ctx (Gadget.value h2) in
  Gadget.assert_eq ~label:"merge.binding" ctx h2 binding;
  Gadget.finalize ~name ctx

let create ~name ~base_vks =
  let circuit, _, _ =
    synth_merge ~name:(name ^ ".merge") Fp.zero Fp.zero Fp.zero
  in
  let merge_pk, merge_vk = Backend.setup circuit in
  let base_vk_by_digest =
    List.fold_left
      (fun acc vk -> Hash.Map.add (Backend.vk_digest vk) vk acc)
      Hash.Map.empty base_vks
  in
  {
    merge_pk;
    merge_vk;
    merge_vk_digest = Backend.vk_digest merge_vk;
    base_vk_by_digest;
  }

let merge_vk sys = sys.merge_vk

let base_public ~s_from ~s_to ~extra =
  Array.append [| s_from; s_to |] extra

let public_of t = base_public ~s_from:t.s_from ~s_to:t.s_to ~extra:t.extra

let verify sys t =
  let vk =
    if Hash.equal t.vk_digest sys.merge_vk_digest then Some sys.merge_vk
    else Hash.Map.find_opt t.vk_digest sys.base_vk_by_digest
  in
  match vk with
  | None -> false
  | Some vk -> Backend.verify vk ~public:(public_of t) t.proof

let of_base sys ~vk ~s_from ~s_to ~extra proof =
  let vk_digest = Backend.vk_digest vk in
  if not (Hash.Map.mem vk_digest sys.base_vk_by_digest) then
    Error "of_base: unregistered base verification key"
  else begin
    let t =
      { s_from; s_to; extra; proof; vk_digest; depth = 0; base_count = 1 }
    in
    if verify sys t then Ok t else Error "of_base: base proof does not verify"
  end

let merges =
  Zen_obs.Counter.make ~help:"Recursive proof merges (includes failed attempts)"
    "snark.merges"

let merge_s =
  Zen_obs.Histogram.make ~help:"single recursive-merge latency (verify children + prove)"
    ~bounds:(Zen_obs.Histogram.exponential_bounds ~lo:1e-4 ~factor:4. ~n:8)
    "snark.merge.seconds"

let merge sys t1 t2 =
  Zen_obs.Histogram.time merge_s @@ fun () ->
  Zen_obs.Counter.incr merges;
  if not (Fp.equal t1.s_to t2.s_from) then
    Error "merge: transitions are not adjacent"
  else if not (verify sys t1) then Error "merge: left child does not verify"
  else if not (verify sys t2) then Error "merge: right child does not verify"
  else begin
    let circuit, public, witness =
      synth_merge
        ~name:(R1cs.name (Backend.pk_circuit sys.merge_pk))
        t1.s_from t1.s_to t2.s_to
    in
    (* Structure is value-independent: same circuit as at setup. *)
    assert (Hash.equal (R1cs.digest circuit) (R1cs.digest (Backend.pk_circuit sys.merge_pk)));
    match Backend.prove sys.merge_pk ~public ~witness with
    | Error e -> Error ("merge: " ^ e)
    | Ok proof ->
      Ok
        {
          s_from = t1.s_from;
          s_to = t2.s_to;
          extra = [||];
          proof;
          vk_digest = sys.merge_vk_digest;
          depth = 1 + max t1.depth t2.depth;
          base_count = t1.base_count + t2.base_count;
        }
  end

let fold_balanced ?(pool = Pool.sequential) sys = function
  | [] -> Error "fold_balanced: empty transition list"
  | ts ->
    Zen_obs.Trace.with_span ~cat:"snark"
      ~args:[ ("transitions", string_of_int (List.length ts)) ]
      "recursive.fold_balanced"
    @@ fun () ->
    (* Merge adjacent pairs, halving the list each pass (Fig. 10). The
       pairs of one level share no state, so each level is a parallel
       map; an odd trailing element is carried up unchanged. Results are
       identical to the sequential left-to-right pass: the pairing is
       positional and [merge] is deterministic. *)
    let rec level ~lvl arr =
      let n = Array.length arr in
      if n = 1 then Ok arr.(0)
      else begin
        let pairs = n / 2 in
        let merged =
          (* A merge proves the small fixed merge circuit (~2.5 ms):
             heavy enough that near-singleton chunks with stealing are
             the right granularity, which the cost hint encodes. *)
          Zen_obs.Trace.with_span ~cat:"snark"
            ~args:
              [ ("level", string_of_int lvl); ("pairs", string_of_int pairs) ]
            "recursive.merge_level"
          @@ fun () ->
          Pool.init_array pool ~cost:2.5 pairs (fun i ->
              merge sys arr.(2 * i) arr.((2 * i) + 1))
        in
        (* Report the first error in pair order, as the sequential pass
           would. *)
        let rec first_error i =
          if i >= pairs then None
          else
            match merged.(i) with
            | Error e -> Some e
            | Ok _ -> first_error (i + 1)
        in
        match first_error 0 with
        | Some e -> Error e
        | None ->
          level ~lvl:(lvl + 1)
            (Array.init
               ((n + 1) / 2)
               (fun i ->
                 if i < pairs then
                   match merged.(i) with Ok m -> m | Error _ -> assert false
                 else arr.(n - 1)))
      end
    in
    level ~lvl:0 (Array.of_list ts)

module Incremental = struct
  (* Online [fold_balanced]: a binary counter of perfectly-aligned merge
     subtrees. The stack holds complete subtrees of strictly increasing
     size (head = smallest); pushing a leaf merges equal-sized neighbors
     eagerly, exactly like adding 1 to a binary counter. Every subtree
     covers leaves [start, start + size) with [size] a power of two and
     [start] a multiple of [size] — i.e. it is precisely the node
     [fold_balanced] builds over that leaf range, so eager merges and
     the final carry merges reproduce its tree shape (and therefore its
     proof bytes) node for node: a [fold_balanced] level-[k] pass pairs
     aligned size-2^k blocks, which is the same set of merges the
     counter performs when the second block of a pair completes; the
     odd trailing block a level carries up unchanged is the same block
     the counter leaves on its stack for [finish] to fold in. [finish]
     right-associates the leftover stack smallest-first — merging a
     larger left block onto the accumulated tail is exactly the
     carried-element chain of the trailing odd nodes. *)

  type node = {
    res : (transition_proof, string) result;
    size : int; (* leaves covered; a power of two except inside finish *)
    start : int; (* index of the first covered leaf *)
  }

  type acc = {
    sys : system;
    mutable stack : node list; (* newest/smallest first *)
    mutable count : int;
    mutable eager_merges : int;
    (* Failed merges, keyed by the (level, pair) position the same merge
       occupies in [fold_balanced]'s level-order execution. *)
    mutable failures : ((int * int) * string) list;
  }

  let create sys = { sys; stack = []; count = 0; eager_merges = 0; failures = [] }
  let count a = a.count
  let eager_merges a = a.eager_merges
  let pending_merges a = max 0 (List.length a.stack - 1)

  let rec log2 s = if s <= 1 then 0 else 1 + log2 (s / 2)

  (* The left child of any merge we perform covers [start, start+size)
     with size a power of two and start size-aligned, which in
     [fold_balanced] is pair [start / (2*size)] of level [log2 size].
     Failures are reported by minimum (level, pair): the merges the
     counter runs that [fold_balanced] would have skipped (levels above
     its first failure) all have strictly larger keys, so the minimum is
     the error [fold_balanced] reports. *)
  let do_merge a left right =
    let size = left.size + right.size and start = left.start in
    match (left.res, right.res) with
    | Ok l, Ok r -> (
      match merge a.sys l r with
      | Ok m -> { res = Ok m; size; start }
      | Error e ->
        let key = (log2 left.size, left.start / (2 * left.size)) in
        a.failures <- (key, e) :: a.failures;
        { res = Error e; size; start })
    | (Error _ as e), _ | _, (Error _ as e) ->
      (* Propagate without merging; the originating failure is already
         recorded under its own key. *)
      { res = e; size; start }

  let push a tp =
    let leaf = { res = Ok tp; size = 1; start = a.count } in
    a.count <- a.count + 1;
    let rec settle node = function
      | top :: rest when top.size = node.size ->
        a.eager_merges <- a.eager_merges + 1;
        settle (do_merge a top node) rest
      | stack -> node :: stack
    in
    a.stack <- settle leaf a.stack

  let first_failure a =
    List.fold_left
      (fun best (k, e) ->
        match best with
        | Some (bk, _) when bk <= k -> best
        | _ -> Some (k, e))
      None a.failures

  let finish a =
    match a.stack with
    | [] -> Error "fold_balanced: empty transition list"
    | smallest :: rest -> (
      (* Carry chain: fold the remaining blocks smallest-first, each
         larger block becoming the left child — the trailing-odd-element
         chain of [fold_balanced], at most ⌈log₂ count⌉ merges. Does not
         consume the stack, so an acc can be finished, extended and
         finished again (certificate rebuild after a lost cert). *)
      let top = List.fold_left (fun acc b -> do_merge a b acc) smallest rest in
      match top.res with
      | Ok t -> Ok t
      | Error _ -> (
        match first_failure a with
        | Some (_, e) -> Error e
        | None -> assert false))
end

let fold_sequential sys = function
  | [] -> Error "fold_sequential: empty transition list"
  | t :: rest ->
    List.fold_left
      (fun acc t2 ->
        match acc with Error _ as e -> e | Ok t1 -> merge sys t1 t2)
      (Ok t) rest

let s_from t = t.s_from
let s_to t = t.s_to
let depth t = t.depth
let base_count t = t.base_count
let final_proof t = t.proof
let proof_size_bytes t = String.length (Backend.proof_encode t.proof)
