(** Rank-1 constraint systems over {!Zen_crypto.Fp} (paper Def. 2.3).

    A constraint system is a set of constraints [⟨A,z⟩·⟨B,z⟩ = ⟨C,z⟩]
    over the assignment vector [z = (1, a₁…a_r, w₁…w_s)] where [a] is
    the public input and [w] the witness. Circuits are built through a
    mutable {!builder} and then frozen into an immutable {!circuit}
    whose digest identifies the SNARK instance. *)

open Zen_crypto

type var = private int
(** Assignment-vector index. Index 0 is the constant 1. *)

type lc = (Fp.t * var) list
(** A linear combination [Σ cᵢ·varᵢ]. *)

type builder
type circuit

val one_var : var
(** The constant-one variable. *)

val create : unit -> builder

val alloc_input : builder -> var
(** Allocates the next public-input variable. All public inputs must be
    allocated before any witness variable; violating this raises
    [Invalid_argument]. *)

val alloc_witness : builder -> var

val constrain : ?label:string -> builder -> lc -> lc -> lc -> unit
(** [constrain b a bb c] adds the constraint [⟨a,z⟩·⟨bb,z⟩ = ⟨c,z⟩]. *)

val finalize : name:string -> builder -> circuit
(** Freezes the builder: digests every constraint (SHA-256, once) and
    compiles the three matrices into flat CSR arrays so satisfiability
    checks run allocation-free. Expensive — meant to run once per
    circuit family, not per proof. *)

val name : circuit -> string
val num_constraints : circuit -> int
val num_public : circuit -> int
val num_witness : circuit -> int
val num_vars : circuit -> int
(** Total assignment length including the constant. *)

val digest : circuit -> Hash.t
(** Collision-resistant identifier of the full constraint system. *)

val same : circuit -> circuit -> bool
(** Identity of finalized circuits: physical equality, falling back to
    comparing the digests computed at {!finalize}. Never re-hashes the
    constraints — this is the cheap check compile-once templates use in
    place of re-synthesis on the prove hot path. *)

val eval_lc : Fp.t array -> lc -> Fp.t

val check : circuit -> Fp.t array -> (unit, string) result
(** [check c z] verifies every constraint against a full assignment
    [z] (including the leading 1); on failure reports the label or
    index of the first violated constraint. *)

val satisfied : circuit -> public:Fp.t array -> witness:Fp.t array -> (unit, string) result
(** Assembles [z = 1 ‖ public ‖ witness] and checks; also validates the
    segment lengths. *)
