(** Block-level certificate aggregation: fold every withdrawal-
    certificate proof of a candidate mainchain block — across
    sidechains — into one constant-size recursive proof.

    {!Recursive} folds adjacent state transitions of a single sidechain
    ([s_to] of one proof is [s_from] of the next). Certificates of one
    block share no such adjacency: each is verified under its own
    sidechain's vk against its own epoch boundaries. The heterogeneous
    merge statement here therefore binds a {e set}, not a chain: each
    {!leaf} digests the full verification instance of one certificate —
    (sidechain id, epoch, certificate hash, vk digest, proof bytes,
    epoch-boundary block hashes) — and merge nodes hash pairwise up to
    a single root. The aggregate's public input is (root, count); its
    proof attests that every covered instance verifies.

    Simulation discipline (DESIGN.md §3, as in {!Recursive}): the
    wrap/merge prover verifies its children natively — each leaf's
    certificate proof through the exact verification the per-certificate
    path would run — and then proves a constant-size binding circuit.
    An aggregate is only producible through {!build}, which refuses any
    leaf whose certificate verification fails, so "aggregate verifies"
    is equivalent to "every covered certificate verifies". The pairing
    is positional with the odd trailing element carried up, identical
    to [Recursive.fold_balanced], so {!root_of_digests} lets a verifier
    recompute the expected root from the block's certificates without
    touching proofs. *)

open Zen_crypto

type leaf = {
  sc_id : Hash.t;  (** sidechain ledger id *)
  epoch : int;
  cert_hash : Hash.t;  (** {!Zendoo.Withdrawal_certificate.hash} *)
  vk_digest : Hash.t;  (** the registered wcert vk this cert verifies under *)
  proof_bytes : string;  (** the certificate's SNARK proof, encoded *)
  end_prev_epoch : Hash.t;  (** wcert_sysdata boundary block hashes *)
  end_epoch : Hash.t;
}
(** One certificate-verification instance. Binding the proof bytes and
    boundary hashes (not just the cert hash) makes the leaf digest
    coincide with the inputs of {!Zendoo.Verifier.wcert_job}'s cache
    key: an aggregate accepts exactly when each covered certificate's
    own verification would. *)

val leaf_digest : leaf -> Hash.t
val node_hash : Hash.t -> Hash.t -> Hash.t

val root_of_digests : Hash.t list -> Hash.t option
(** The merge-tree root over leaf digests in block order — the same
    positional pairwise reduction {!build} performs (odd trailing
    element carried up unchanged). [None] on the empty list. *)

type system
(** Setup of the constant-size aggregation circuit (one circuit serves
    leaf wraps and merges — the statement shape is identical). *)

val shared : unit -> system
(** The process-wide system, created on first use. Setup is
    deterministic, so every process agrees on {!vk_digest} — miners and
    validators need no key exchange. *)

val vk : system -> Backend.verification_key
val vk_digest : system -> Hash.t

type t
(** A sealed aggregate: merge-tree root, covered-certificate count, and
    the constant-size proof. *)

val root : t -> Hash.t
val count : t -> int
val proof : t -> Backend.proof

val digest : t -> Hash.t
(** Commitment to the whole object (root, count, proof bytes) — what a
    block header binds so the aggregate is covered by proof of work. *)

val build :
  ?pool:Pool.t ->
  system ->
  (leaf * (unit -> bool)) list ->
  (t, string) result
(** Folds the given certificate instances (block order) into one
    aggregate. Each leaf's [check] thunk must run that certificate's
    native SNARK verification — the simulation stand-in for in-circuit
    verification; a leaf whose check fails aborts the build. Leaf wraps
    and each merge level fan out on [pool] (default
    {!Pool.sequential}); result and error are bit-identical for every
    domain count. Fails on the empty list. *)

val verify : system -> t -> bool
(** One constant-time proof verification against the public input
    (root, count) — block validation's entire SNARK cost. *)

val of_parts : root:Hash.t -> count:int -> proof:Backend.proof -> t
(** Reassembles a wire-decoded aggregate. Unchecked: callers must
    {!verify} (and recompute the root) before trusting it. *)
