(** Deterministic workload engine: seeded synthetic traffic for soak
    runs against the Latus state layer.

    A run is a pure function of [(seed, profile)]: accounts are drawn
    from a zipfian rank distribution, per-phase transaction counts
    follow a diurnal (triangle-wave) shape, and the FT / BT / payment /
    BTR mix is configurable per profile. Each phase commits as one
    {!Zen_latus.Sc_tx.apply_steps} batch; a deterministic reorg
    schedule periodically rolls phases back and re-mines them, either
    by restoring an O(1) copy-on-write checkpoint ([snapshots:true])
    or by replaying the epoch from its start ([snapshots:false]).
    Both modes — and batched vs per-key commits — produce byte-identical
    logs and the same {!field-digest}. *)

open Zen_crypto

type mix = { payment : int; ft : int; bt : int; btr : int }
(** Percentages; must sum to 100. *)

type profile = {
  name : string;
  users : int;  (** account population *)
  zipf : int;  (** zipf exponent × 100 (0 = uniform) *)
  txs_per_epoch : int;
  epochs : int;
  phases : int;  (** diurnal phases per epoch *)
  burst : int;  (** peak-phase amplitude, percent around the mean *)
  mix : mix;
  mst_depth : int;
  seed_coins : int;  (** initial UTXO population *)
  reorg_every : int;  (** reorg every n-th phase boundary; 0 = never *)
}

val smoke : profile
(** Seconds-scale: 5k users, 2k txs/epoch — CI and tests. *)

val steady : profile
(** 100k users, 20k txs/epoch, no bursts, no reorgs. *)

val soak : profile
(** The E17 profile: 1M users, 110k txs/epoch over 16 phases, 40%
    bursts, reorg every 7th phase. *)

val builtins : profile list

val validate : profile -> (profile, string) result

val to_string : profile -> string
(** The builtin's name when structurally equal to one, else the custom
    [u..:z..:t..:e..:p..:b..:m..-..-..-..:d..:s..:r..] syntax. Round-trips
    through {!of_string}. *)

val of_string : string -> (profile, string) result
(** A builtin name ([smoke], [steady], [soak]) or the custom syntax
    produced by {!to_string}. *)

val phase_wave : phases:int -> burst:int -> int -> int
(** The diurnal shape: relative weight of phase [p] (mean 200 across an
    epoch, range [200 ± burst]) — also used by the harness driver to
    gate per-tick injection. *)

type stats = {
  profile : profile;
  applied : int;  (** transactions that produced state steps *)
  skipped : int;  (** generated but unplaceable (slot retries exhausted) *)
  payments : int;
  fts : int;
  bts : int;
  btrs : int;
  rollbacks : int;
  rolled_back_txs : int;
  replayed_phases : int;  (** mode-dependent: re-mined + replayed phases *)
  epoch_roots : Fp.t list;  (** end-of-epoch state roots, oldest first *)
  digest : Hash.t;
      (** over (profile, seed, applied, skipped, epoch roots) — equal
          across batched/per-key and snapshots/replay runs *)
  wall_s : float;  (** wall clock; not deterministic, never logged *)
  peak_words : int;  (** Gc top_heap_words; not deterministic either *)
}

val run :
  ?batched:bool ->
  ?snapshots:bool ->
  ?log:(string -> unit) ->
  seed:int ->
  profile ->
  (stats, string) result
(** Runs the workload. [batched] (default [true]) commits each phase
    via the merged-traversal batch path rather than per-key updates;
    [snapshots] (default [true]) restores reorg targets from O(1)
    persistent checkpoints rather than replaying the epoch. Neither
    switch changes any log line or the digest. [log] receives the
    deterministic progress lines. *)
