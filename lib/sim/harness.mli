(** A one-process world: mainchain + miners + Latus sidechains.

    Drives the round structure the examples and scenario tests share:
    each {!tick} mines one MC block from the shared mempool, lets every
    sidechain node forge against the new tip, and auto-submits any
    certificate that becomes ready. Adversarial knobs (certificate
    withholding, fork injection) exercise the ceasing and reorg paths
    of the protocol. *)

open Zen_crypto
open Zen_mainchain
open Zen_latus
open Zendoo

type sidechain = {
  name : string;
  ledger_id : Hash.t;
  config : Sidechain_config.t;
  node : Node.t;
  mutable withhold_certs : bool;
      (** adversarial: stop submitting certificates (drives ceasing) *)
}

type score = {
  mutable submitted : int;
  mutable dropped : int;
  mutable delayed : int;
  mutable duplicated : int;
  mutable withheld : int;
  mutable cert_errors : int;
}
(** Flight-recorder row: certificate outcomes for one
    (sidechain, epoch) pair. A [Delay]ed certificate counts once under
    [delayed] when postponed (its eventual delivery is not re-counted);
    [duplicated] counts the extra copies a [Duplicate] fault queued. *)

type t = {
  mutable chain : Chain.t;
  mutable mempool : Mempool.t;
  mc_wallet : Wallet.t;
  miner_addr : Hash.t;
  pool : Pool.t;
      (** worker pool handed to mining/validation (batch certificate
          verification, commitment builds) and, by default, to every
          sidechain node *)
  aggregate : bool;
      (** when true, every mined block folds its certificate proofs
          into one {!Zen_snark.Aggregate} (validation verifies one
          proof per block); decisions and logs are byte-identical
          either way *)
  pipeline : bool;
      (** when true (the default), sidechain nodes prove through
          {!Zen_latus.Proof_pipeline} — base proofs run between ticks
          and merge incrementally, leaving certify time only the carry
          merges; certificates, decisions and logs are byte-identical
          either way *)
  mutable time : int;
  mutable sidechains_rev : sidechain list;
      (** newest first (constant-time registration); read registration
          order through {!sidechains} *)
  mutable next_sc_nonce : int;
      (** monotonic creation-tx nonce — never reused, so derived ledger
          ids stay collision-free even if sidechains are ever removed *)
  log : Zen_obs.Events.t;
      (** human-readable event log, also mirrored into the trace as
          instant events; read it through {!dump_log} (oldest first) *)
  faults : Faults.t option;  (** the fault plan in execution, if any *)
  mutable pending_certs : (int * Tx.t) list;
      (** certificate submissions a Delay/Duplicate fault postponed:
          [(deliver_at_tick, tx)] *)
  mutable managed_certs : Hash.t list;
      (** certificate txids under fault management (reinjected by a
          reorg or duplicated by a fault); when the miner skips one as
          invalid it is purged from the mempool instead of lingering *)
  scores : (string * int, score) Hashtbl.t;
      (** the flight recorder, keyed by (sidechain name, epoch) —
          filled lazily as certificate events happen *)
  mutable reorgs : (int * int) list;
      (** every reorg the harness processed, as [(tick, depth)], newest
          first *)
  mutable workload : workload_driver option;
      (** live-traffic driver, attached by {!set_workload} *)
}

and workload_driver

val create :
  ?pow:Pow.params ->
  ?pool:Pool.t ->
  ?aggregate:bool ->
  ?pipeline:bool ->
  ?faults:Faults.t ->
  seed:string ->
  unit ->
  t
(** A fresh world at height 0 with an empty mempool; [pow] defaults to
    {!Pow.trivial} so tests spend no time mining, [pool] to
    {!Pool.sequential}. Everything downstream is deterministic in
    [seed] (and, with [faults], in the fault plan: the same
    [(seed, plan)] pair replays to a byte-identical event log — for
    every domain count of [pool]). *)

val sidechains : t -> sidechain list
(** Registered sidechains in registration order (the order {!tick}
    drives them in). *)

val mine : t -> unit
(** One MC block from the current mempool. On a reorg outcome the
    mempool is rebuilt from {!Chain.reorg_diff} via
    {!Mempool.reinject_disconnected}, so abandoned transactions are
    re-mined instead of silently lost. *)

val force_reorg : t -> depth:int -> unit
(** Adversarial fork injection: mines [depth + 1] coinbase-only blocks
    on a side branch forking [depth] blocks below the tip, so the
    branch overtakes and the harness processes a reorg of that depth
    (clamped to the chain height). Also available in fault plans as
    [reorg@tick:dN]. *)

val mine_n : t -> int -> unit
(** [mine] [n] times. *)

val submit : t -> Tx.t -> unit
(** Adds a transaction to the mempool (included by the next {!mine}). *)

val fund : t -> blocks:int -> unit
(** Mines empty blocks so the harness wallet has mature coins. *)

val add_latus :
  t ->
  name:string ->
  ?params:Params.t ->
  ?family:Circuits.family ->
  ?pool:Pool.t ->
  epoch_len:int ->
  submit_len:int ->
  activation_delay:int ->
  unit ->
  (sidechain, string) result
(** Registers a new Latus sidechain (creation tx mined immediately);
    activation at [tip + activation_delay]. [family] lets several
    sidechains share one compiled circuit family (compilation is the
    expensive part); [pool] hands the node a multicore worker pool for
    epoch-proof folding (default: the harness pool). *)

val set_workload :
  t -> profile:Workload.profile -> seed:int -> (unit, string) result
(** Attaches a live-traffic driver: each subsequent {!tick} draws one
    transaction kind per sidechain from the profile's mix (BTR folded
    into BT at this layer) behind a diurnal gate shaped by the
    profile's phases/burst, and submits a real signed transaction to
    that node — payments and BTs from a per-sidechain workload wallet,
    FTs (also the funding fallback) from the harness wallet. Injection
    and its log lines are a pure function of [(seed, profile)]; with no
    workload attached, ticks behave exactly as before. *)

val workload_injected : t -> int
(** Transactions the workload driver has submitted so far. *)

val forward_transfer :
  t -> sidechain -> receiver:Hash.t -> payback:Hash.t -> amount:Amount.t ->
  (unit, string) result
(** Builds, submits and mines an FT from the harness wallet. *)

val tick : t -> unit
(** Mine one MC block, forge each sidechain once (slot = time), pump
    each node's proving pipeline (folding background proofs completed
    since the last tick), and submit any certificate that is ready
    (unless withheld). With a fault plan installed, the tick first
    injects whatever the plan pins to this round — clock skew,
    adversarial reorg, postponed certificate deliveries — and
    certificate submission honours any Drop/Delay/Duplicate/Withhold
    fault for the epoch being certified. *)

val tick_n : t -> int -> unit
(** [tick] [n] times. *)

val sc_balance_on_mc : t -> sidechain -> Amount.t
(** The sidechain's balance as the mainchain ledger sees it (what the
    §4.1.2.2 safeguard protects). *)

val is_ceased : t -> sidechain -> bool
(** Whether the MC considers the sidechain ceased at the current tip
    (no certificate inside a submission window, Fig. 3). *)

val find_sidechain : t -> string -> sidechain option
(** Looks a sidechain up by the [name] given to {!add_latus}. *)

val scoreboard_json : t -> Zen_obs.Json.t
(** The flight recorder as JSON — per-(sidechain, epoch) certificate
    outcomes (submitted/dropped/delayed/duplicated/withheld/errors),
    every reorg with its depth, prover retry count, the MC
    verification-cache hit rate, the certificate-aggregation
    counters ({!Zen_mainchain.Chain_state.Aggregate_stats}) and the
    proving pipeline's per-certificate certify-path accounting
    ([pipeline.certs]: leaves folded and carry merges run at certify
    time — both deterministic in the seed). The shape the CLI embeds
    under ["scoreboard"] in a ["zen-report/1"] document. Rows are
    sorted by (sidechain, epoch), so the output is deterministic. *)

val logf : t -> ('a, unit, string, unit) format4 -> 'a
(** printf into the world's event log. *)

val dump_log : t -> string list
(** Oldest first. *)
