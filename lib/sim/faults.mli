(** Deterministic fault injection for the epoch pipeline.

    A fault {e plan} is plain data: a list of faults, each pinned to a
    tick or an epoch. The harness consults the plan at fixed points of
    its round structure and the prover pool re-dispatches around
    crashed workers, so a run is a pure function of [(seed, plan)] —
    replaying the same pair yields a byte-identical event log and
    byte-identical certificates. There is no probabilistic firing at
    injection time: all randomness is spent up front, in {!storm},
    which expands a seed into a concrete plan.

    Faults covered (the ones the Zendoo epoch pipeline must survive):
    prover-worker crashes and slowdowns ({!Zen_latus.Prover_pool}),
    dropped / delayed / duplicated certificate submissions, per-epoch
    certificate withholding (drives ceasing, Def. 4.2), adversarial
    side-branch mining that forces reorgs of configurable depth
    (§5.1 "Mainchain forks resolution"), and clock skew through
    {!Zen_obs.Clock}. *)

open Zen_latus

type cert_fault =
  | Drop  (** the built certificate never reaches the mempool *)
  | Delay of int  (** submission postponed by that many ticks *)
  | Duplicate of int  (** resubmitted that many extra times, one per tick *)
  | Withhold  (** the node never builds the certificate (ceasing path) *)

type fault =
  | Crash_worker of { epoch : int; worker : int }
  | Slow_worker of { epoch : int; worker : int; factor : int }
  | Cert_fault of { epoch : int; fault : cert_fault }
  | Reorg of { tick : int; depth : int }
      (** at [tick], an adversary mines a side branch that abandons the
          top [depth] blocks of the best chain *)
  | Clock_skew of { tick : int; millis : int }
      (** at [tick], {!Zen_obs.Clock.skew} jumps the clock forward *)

type plan = fault list

val fault_to_string : fault -> string
val fault_of_string : string -> (fault, string) result

val plan_to_string : plan -> string
(** Compact, comma-separated codec — ["none"] for the empty plan, e.g.
    ["crash@2:w1,delay@3:+2,reorg@17:d2,skew@5:+120ms"]. Round-trips
    through {!plan_of_string}; this is the CLI/CI exchange format. *)

val plan_of_string : string -> (plan, string) result

val storm :
  seed:int ->
  ?first_tick:int ->
  ?ticks:int ->
  ?epochs:int ->
  ?workers:int ->
  ?intensity:int ->
  unit ->
  plan
(** Expands a seed into a concrete storm plan: per epoch a certificate
    fault and/or worker fault with probability [intensity]% (default
    25), and for each of the [ticks] rounds starting at [first_tick]
    (default 1 — set it past any setup rounds the harness consumes) a
    reorg or clock skew with a fraction of that. The same arguments
    always produce the same plan — print it with {!plan_to_string} to
    rerun or shrink by hand. [intensity 0] is the empty plan. *)

(** {2 Runtime} *)

type t
(** A plan in execution: remembers which one-shot faults have fired and
    counts injections. Mutable, but deterministically driven — the
    harness is single-threaded. *)

val create : seed:int -> plan -> t
val seed : t -> int
val plan : t -> plan

val injected : t -> int
(** Faults that actually fired so far. *)

val fire : t -> string -> bool
(** [fire t key] is [true] the first time only (and counts an
    injection) — idempotence guard for hooks that are consulted every
    tick. *)

val cert_fault : t -> epoch:int -> cert_fault option
(** The planned certificate fault for that epoch, if any. *)

val reorg_at : t -> tick:int -> int option
(** Planned reorg depth at that tick. *)

val skew_at : t -> tick:int -> int option
(** Planned clock-skew millis at that tick. *)

val prover_faults : t -> epoch:int -> (int * Prover_pool.worker_fault) list
(** Worker faults for that epoch, in the shape
    {!Prover_pool.prove_epoch} takes as [?faults]. *)
