open Zen_crypto
open Zen_latus
open Zendoo
module Int_map = Map.Make (Int)

let ( let* ) = Result.bind

(* ---- Profiles ---- *)

type mix = { payment : int; ft : int; bt : int; btr : int }

type profile = {
  name : string;
  users : int;
  zipf : int;
  txs_per_epoch : int;
  epochs : int;
  phases : int;
  burst : int;
  mix : mix;
  mst_depth : int;
  seed_coins : int;
  reorg_every : int;
}

let smoke =
  {
    name = "smoke";
    users = 5_000;
    zipf = 100;
    txs_per_epoch = 2_000;
    epochs = 2;
    phases = 8;
    burst = 50;
    mix = { payment = 50; ft = 20; bt = 15; btr = 15 };
    mst_depth = 12;
    seed_coins = 400;
    reorg_every = 3;
  }

let steady =
  {
    name = "steady";
    users = 100_000;
    zipf = 80;
    txs_per_epoch = 20_000;
    epochs = 2;
    phases = 8;
    burst = 0;
    mix = { payment = 60; ft = 15; bt = 15; btr = 10 };
    mst_depth = 15;
    seed_coins = 2_000;
    reorg_every = 0;
  }

let soak =
  {
    name = "soak";
    users = 1_000_000;
    zipf = 100;
    txs_per_epoch = 110_000;
    epochs = 2;
    phases = 16;
    burst = 40;
    mix = { payment = 50; ft = 15; bt = 20; btr = 15 };
    mst_depth = 18;
    seed_coins = 8_000;
    reorg_every = 7;
  }

let builtins = [ smoke; steady; soak ]

let validate p =
  let err fmt = Printf.ksprintf (fun s -> Error ("workload: " ^ s)) fmt in
  if p.users < 1 then err "users must be >= 1"
  else if p.zipf < 0 || p.zipf > 400 then err "zipf must be in [0, 400]"
  else if p.txs_per_epoch < 1 then err "txs-per-epoch must be >= 1"
  else if p.epochs < 1 then err "epochs must be >= 1"
  else if p.phases < 1 || p.phases > 1024 then err "phases must be in [1, 1024]"
  else if p.burst < 0 || p.burst > 100 then err "burst must be in [0, 100]"
  else if
    p.mix.payment < 0 || p.mix.ft < 0 || p.mix.bt < 0 || p.mix.btr < 0
    || p.mix.payment + p.mix.ft + p.mix.bt + p.mix.btr <> 100
  then err "mix must be non-negative and sum to 100"
  else if p.mst_depth < 4 || p.mst_depth > 28 then
    err "mst-depth must be in [4, 28]"
  else if p.seed_coins < 0 || p.seed_coins > 1 lsl (p.mst_depth - 2) then
    err "seed-coins must fit in a quarter of the MST"
  else if p.reorg_every < 0 then err "reorg-every must be >= 0"
  else Ok p

(* Compact plan syntax, [Faults]-style: a profile round-trips through
   its string form, so a run is replayable from (seed, profile string)
   alone. *)
let to_custom_string p =
  Printf.sprintf "u%d:z%d:t%d:e%d:p%d:b%d:m%d-%d-%d-%d:d%d:s%d:r%d" p.users
    p.zipf p.txs_per_epoch p.epochs p.phases p.burst p.mix.payment p.mix.ft
    p.mix.bt p.mix.btr p.mst_depth p.seed_coins p.reorg_every

let to_string p =
  match
    List.find_opt (fun b -> to_custom_string b = to_custom_string p) builtins
  with
  | Some b -> b.name
  | None -> to_custom_string p

let of_string s =
  let s = String.trim s in
  match List.find_opt (fun b -> b.name = s) builtins with
  | Some b -> Ok b
  | None -> (
    let attempt =
      try
        Scanf.sscanf s "u%d:z%d:t%d:e%d:p%d:b%d:m%d-%d-%d-%d:d%d:s%d:r%d%!"
          (fun users zipf txs_per_epoch epochs phases burst payment ft bt btr
               mst_depth seed_coins reorg_every ->
            Some
              {
                name = "custom";
                users;
                zipf;
                txs_per_epoch;
                epochs;
                phases;
                burst;
                mix = { payment; ft; bt; btr };
                mst_depth;
                seed_coins;
                reorg_every;
              })
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
    in
    match attempt with
    | Some p -> validate p
    | None -> Error (Printf.sprintf "workload: cannot parse profile %S" s))

(* ---- Zipfian account sampling ----

   Accounts are ranked; account i is drawn with probability
   proportional to 1/(i+1)^s. The CDF is precomputed once per run and
   sampled by binary search, so a draw is O(log users). *)

let zipf_cdf ~users ~zipf =
  let s = float_of_int zipf /. 100. in
  let a = Array.make users 0. in
  let acc = ref 0. in
  for i = 0 to users - 1 do
    acc := !acc +. exp (-.s *. log (float_of_int (i + 1)));
    a.(i) <- !acc
  done;
  a

let zipf_draw cdf rng =
  let total = cdf.(Array.length cdf - 1) in
  let u =
    float_of_int (Rng.int rng 1_073_741_823) /. 1_073_741_823. *. total
  in
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

(* ---- Diurnal phase shaping ----

   Per-phase tx counts follow a triangle wave peaking mid-epoch with
   amplitude [burst] percent around the mean; largest-remainder
   rounding makes the counts sum to exactly [txs_per_epoch]. *)

let phase_wave ~phases ~burst p =
  let tri =
    if phases = 1 then 50
    else begin
      let pos = 200 * p / (phases - 1) in
      if pos <= 100 then pos else 200 - pos
    end
  in
  200 - burst + (2 * burst * tri / 100)

let phase_counts p =
  let w = Array.init p.phases (phase_wave ~phases:p.phases ~burst:p.burst) in
  let total = Array.fold_left ( + ) 0 w in
  let counts = Array.map (fun wp -> p.txs_per_epoch * wp / total) w in
  let short = p.txs_per_epoch - Array.fold_left ( + ) 0 counts in
  for i = 0 to short - 1 do
    counts.(i mod p.phases) <- counts.(i mod p.phases) + 1
  done;
  counts

(* ---- The engine ---- *)

type tally = {
  t_payment : int;
  t_ft : int;
  t_bt : int;
  t_btr : int;
  t_skipped : int;
  t_applied : int;
}

let tally0 =
  { t_payment = 0; t_ft = 0; t_bt = 0; t_btr = 0; t_skipped = 0; t_applied = 0 }

(* The engine's whole state is this persistent record, so a phase
   checkpoint is the record itself — O(1) to retain, O(1) to restore —
   and rollback needs no replay bookkeeping. The tally lives here too:
   restoring a checkpoint rewinds the counters along with the state,
   which is what keeps runs byte-identical with snapshots on or off.

   - [sc]    the committed sidechain state (updated once per phase);
   - [occ]   staged slot occupancy, mirroring what the MST will hold
             once the phase commits (generation pre-validates against
             it, so committed batches never fail);
   - [coins] account -> live coins, newest first;
   - [mint]  monotone counter salting freshly minted FT nonces. *)
type world = {
  sc : Sc_state.t;
  occ : Utxo.t Int_map.t;
  coins : Utxo.t list Int_map.t;
  mint : int;
  tally : tally;
}

type stats = {
  profile : profile;
  applied : int;
  skipped : int;
  payments : int;
  fts : int;
  bts : int;
  btrs : int;
  rollbacks : int;
  rolled_back_txs : int;
  replayed_phases : int;
  epoch_roots : Fp.t list; (* oldest first *)
  digest : Hash.t;
  wall_s : float; (* wall clock: NOT deterministic, keep out of logs *)
  peak_words : int; (* Gc top_heap_words: NOT deterministic either *)
}

let account_addr p a = Hash.tagged "workload.addr" [ p.name; string_of_int a ]
let mc_receiver a = Hash.tagged "workload.mc" [ string_of_int a ]
let pos_of p u = Utxo.position ~mst_depth:p.mst_depth u

let push_coin coins a u =
  Int_map.update a
    (function None -> Some [ u ] | Some l -> Some (u :: l))
    coins

let pop_coin coins a =
  match Int_map.find_opt a coins with
  | None | Some [] -> None
  | Some [ u ] -> Some (u, Int_map.remove a coins)
  | Some (u :: rest) -> Some (u, Int_map.add a rest coins)

(* Find a free slot for a fresh UTXO by retrying the nonce derivation:
   positions hash the nonce, so salting the index re-rolls the slot.
   Returns None after [attempts] misses (the caller skips the tx —
   rare below ~50% occupancy). Salt ranges of distinct callers must
   not overlap, or two live UTXOs could share a nonce. *)
let place p occ ~taken ~source ~salt ~addr ~amount ~attempts =
  let rec go k =
    if k >= attempts then None
    else begin
      let nonce = Utxo.derive_nonce ~source ~index:(salt + k) in
      let u = Utxo.make ~addr ~amount ~nonce in
      let pos = pos_of p u in
      if Int_map.mem pos occ || List.mem pos taken then go (k + 1)
      else Some (u, pos)
    end
  in
  go 0

let mint_seed p seed = Hash.tagged "workload.mint" [ p.name; string_of_int seed ]

(* ---- run ---- *)

let run ?(batched = true) ?(snapshots = true) ?log ~seed profile =
  let* p = validate profile in
  let log s = match log with None -> () | Some f -> f s in
  let logf fmt = Printf.ksprintf log fmt in
  let t0 = Unix.gettimeofday () in
  let params = { Params.default with mst_depth = p.mst_depth } in
  let* () =
    Result.map_error (fun e -> "workload: " ^ e) (Params.validate params)
  in
  let cdf = zipf_cdf ~users:p.users ~zipf:p.zipf in
  let root_rng = Rng.create seed in
  let counts = phase_counts p in
  let rollbacks = ref 0 in
  let rolled_back_txs = ref 0 in
  let replayed_phases = ref 0 in
  let mseed = mint_seed p seed in
  (* Initial population, minted to the zipf-hottest accounts so drawn
     senders start funded. *)
  let seed_world () =
    let rec go i w =
      if i >= p.seed_coins then Ok w
      else begin
        let a = i mod p.users in
        let amount = Amount.of_int_exn (10_000 + (i mod 7 * 1_000)) in
        match
          place p w.occ ~taken:[] ~source:mseed ~salt:(w.mint * 8)
            ~addr:(account_addr p a) ~amount ~attempts:8
        with
        | None -> go (i + 1) { w with mint = w.mint + 1 }
        | Some (u, pos) ->
          go (i + 1)
            {
              w with
              occ = Int_map.add pos u w.occ;
              coins = push_coin w.coins a u;
              mint = w.mint + 1;
            }
      end
    in
    let* w0 =
      go 0
        {
          sc = Sc_state.create params;
          occ = Int_map.empty;
          coins = Int_map.empty;
          mint = 0;
          tally = tally0;
        }
    in
    let seeded =
      List.rev (Int_map.fold (fun _ u acc -> Sc_tx.Insert u :: acc) w0.occ [])
    in
    let* sc = Sc_tx.apply_steps ~batched w0.sc seeded in
    Ok { w0 with sc }
  in
  (* One generated transaction: new world plus the steps to append.
     Decisions read only [occ]/[coins]/[mint] — never the committed
     [sc] — so generation is identical whether commits batch or not. *)
  let gen rng w =
    let attempts = 4 in
    let kind = Rng.int rng 100 in
    let payment_k = p.mix.payment
    and ft_k = p.mix.payment + p.mix.ft
    and bt_k = p.mix.payment + p.mix.ft + p.mix.bt in
    let a = zipf_draw cdf rng in
    let tl = w.tally in
    let skip w = ({ w with tally = { tl with t_skipped = tl.t_skipped + 1 } }, [])
    in
    let mint_ft w a =
      (* An FT from the mainchain mints a fresh coin for [a]; also the
         fallback when a drawn sender holds no coin. *)
      let amount = Amount.of_int_exn (1_000 + Rng.int rng 9_000) in
      match
        place p w.occ ~taken:[] ~source:mseed ~salt:(w.mint * 8)
          ~addr:(account_addr p a) ~amount ~attempts
      with
      | None -> skip { w with mint = w.mint + 1 }
      | Some (u, pos) ->
        ( {
            w with
            occ = Int_map.add pos u w.occ;
            coins = push_coin w.coins a u;
            mint = w.mint + 1;
            tally =
              { tl with t_ft = tl.t_ft + 1; t_applied = tl.t_applied + 1 };
          },
          [ Sc_tx.Insert u ] )
    in
    if kind < payment_k then begin
      match pop_coin w.coins a with
      | None -> mint_ft w a
      | Some (coin, coins) -> (
        let b = zipf_draw cdf rng in
        let occ1 = Int_map.remove (pos_of p coin) w.occ in
        let total = Amount.to_int coin.Utxo.amount in
        let full = total < 2 || Rng.int rng 100 < 30 in
        let amt = if full then total else max 1 (total / 2) in
        match
          place p occ1 ~taken:[] ~source:coin.Utxo.nonce ~salt:0
            ~addr:(account_addr p b) ~amount:(Amount.of_int_exn amt) ~attempts
        with
        | None -> skip w
        | Some (out, opos) ->
          if full then
            ( {
                w with
                occ = Int_map.add opos out occ1;
                coins = push_coin coins b out;
                tally =
                  {
                    tl with
                    t_payment = tl.t_payment + 1;
                    t_applied = tl.t_applied + 1;
                  };
              },
              [ Sc_tx.Remove coin; Sc_tx.Insert out ] )
          else begin
            match
              place p occ1 ~taken:[ opos ] ~source:coin.Utxo.nonce ~salt:16
                ~addr:(account_addr p a)
                ~amount:(Amount.of_int_exn (total - amt))
                ~attempts
            with
            | None -> skip w
            | Some (chg, cpos) ->
              ( {
                  w with
                  occ = Int_map.add cpos chg (Int_map.add opos out occ1);
                  coins = push_coin (push_coin coins b out) a chg;
                  tally =
                    {
                      tl with
                      t_payment = tl.t_payment + 1;
                      t_applied = tl.t_applied + 1;
                    };
                },
                [ Sc_tx.Remove coin; Sc_tx.Insert out; Sc_tx.Insert chg ] )
          end)
    end
    else if kind < ft_k then mint_ft w a
    else begin
      (* BT and BTR both withdraw one coin to the mainchain; a BTR is
         MC-initiated but identical at the state layer. *)
      match pop_coin w.coins a with
      | None -> mint_ft w a
      | Some (coin, coins) ->
        let bt =
          Backward_transfer.make ~receiver_addr:(mc_receiver a)
            ~amount:coin.Utxo.amount
        in
        let tally =
          if kind < bt_k then
            { tl with t_bt = tl.t_bt + 1; t_applied = tl.t_applied + 1 }
          else { tl with t_btr = tl.t_btr + 1; t_applied = tl.t_applied + 1 }
        in
        ( { w with occ = Int_map.remove (pos_of p coin) w.occ; coins; tally },
          [ Sc_tx.Remove coin; Sc_tx.Append_bt bt ] )
    end
  in
  (* One phase: generate its txs with the phase's own derived stream
     (replayable in isolation — a rollback re-mines the identical
     steps), then commit them as one batch. *)
  let run_phase ~epoch ~phase w =
    let n = counts.(phase) in
    let rng = Rng.derive root_rng ((epoch * 8192) + phase) in
    let rec go i w steps_rev =
      if i >= n then (w, List.rev steps_rev)
      else begin
        let w, steps = gen rng w in
        go (i + 1) w (List.rev_append steps steps_rev)
      end
    in
    let w1, steps = go 0 w [] in
    let* sc = Sc_tx.apply_steps ~batched w.sc steps in
    if Mst.occupied sc.Sc_state.mst <> Int_map.cardinal w1.occ then
      Error "workload: staged occupancy diverged from the MST"
    else Ok { w1 with sc }
  in
  let* w0 = seed_world () in
  let epoch_roots = ref [] in
  let rec epochs_loop epoch w =
    if epoch >= p.epochs then Ok w
    else begin
      (* cps.(q) = world at the start of phase q of this epoch. *)
      let cps = Array.make (p.phases + 1) w in
      let rec phases_loop phase w =
        if phase >= p.phases then Ok w
        else begin
          cps.(phase) <- w;
          let* w' = run_phase ~epoch ~phase w in
          logf "workload epoch %d phase %d: %d/%d txs applied" epoch phase
            (w'.tally.t_applied - w.tally.t_applied)
            counts.(phase);
          (* Deterministic reorg schedule: every [reorg_every]-th phase
             boundary rolls back [depth] phases and re-mines them. *)
          let g = (epoch * p.phases) + phase in
          if not (p.reorg_every > 0 && g > 0 && g mod p.reorg_every = 0) then
            phases_loop (phase + 1) w'
          else begin
            let rrng = Rng.derive root_rng (1_000_000 + g) in
            let depth = 1 + Rng.int rrng (min 3 (phase + 1)) in
            let q = phase + 1 - depth in
            let undone = ref 0 in
            for i = q to phase do
              undone := !undone + counts.(i)
            done;
            incr rollbacks;
            rolled_back_txs := !rolled_back_txs + !undone;
            (* Roll back to the start of phase [q]. With snapshots the
               checkpoint is a pinned persistent version — O(1).
               Without, model the historical replay-based rollback:
               re-derive the target by replaying every phase since the
               epoch started. *)
            let* at_q =
              if snapshots then Ok cps.(q)
              else begin
                let rec replay i w =
                  if i >= q then Ok w
                  else begin
                    incr replayed_phases;
                    let* w = run_phase ~epoch ~phase:i w in
                    replay (i + 1) w
                  end
                in
                replay 0 cps.(0)
              end
            in
            (* Re-mine the rolled-back phases: same per-phase streams,
               same pre-states, hence the same transactions. *)
            let rec remine i w =
              if i > phase then Ok w
              else begin
                incr replayed_phases;
                let* w = run_phase ~epoch ~phase:i w in
                remine (i + 1) w
              end
            in
            let* w'' = remine q at_q in
            let restored =
              Fp.equal (Sc_state.hash w''.sc) (Sc_state.hash w'.sc)
            in
            logf
              "workload epoch %d phase %d: reorg depth %d rolled back %d \
               txs, re-mined, root restored %b"
              epoch phase depth !undone restored;
            if not restored then Error "workload: re-mined state diverged"
            else phases_loop (phase + 1) w''
          end
        end
      in
      let* w = phases_loop 0 w in
      let root = Sc_state.hash w.sc in
      epoch_roots := root :: !epoch_roots;
      logf "workload epoch %d done: %d coins live, %d bts, root %s" epoch
        (Mst.occupied w.sc.Sc_state.mst)
        (Sc_state.bt_count w.sc) (Fp.to_string root);
      (* Withdrawal-epoch boundary: the BT list resets and the MST
         delta snapshots — the engine's account coins carry over. *)
      epochs_loop (epoch + 1) { w with sc = Sc_state.reset_epoch w.sc }
    end
  in
  let* w = epochs_loop 0 w0 in
  let roots = List.rev !epoch_roots in
  let tl = w.tally in
  let digest =
    Hash.tagged "zen.workload"
      (to_custom_string p :: string_of_int seed :: string_of_int tl.t_applied
      :: string_of_int tl.t_skipped
      :: List.map Fp.to_string roots)
  in
  logf
    "workload %s: %d applied (%d pay, %d ft, %d bt, %d btr), %d skipped, %d \
     rollbacks (%d txs rolled back), digest %s"
    p.name tl.t_applied tl.t_payment tl.t_ft tl.t_bt tl.t_btr tl.t_skipped
    !rollbacks !rolled_back_txs (Hash.to_hex digest);
  Ok
    {
      profile = p;
      applied = tl.t_applied;
      skipped = tl.t_skipped;
      payments = tl.t_payment;
      fts = tl.t_ft;
      bts = tl.t_bt;
      btrs = tl.t_btr;
      rollbacks = !rollbacks;
      rolled_back_txs = !rolled_back_txs;
      replayed_phases = !replayed_phases;
      epoch_roots = roots;
      digest;
      wall_s = Unix.gettimeofday () -. t0;
      peak_words = (Gc.quick_stat ()).Gc.top_heap_words;
    }
