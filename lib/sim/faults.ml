open Zen_crypto
open Zen_latus

type cert_fault = Drop | Delay of int | Duplicate of int | Withhold

type fault =
  | Crash_worker of { epoch : int; worker : int }
  | Slow_worker of { epoch : int; worker : int; factor : int }
  | Cert_fault of { epoch : int; fault : cert_fault }
  | Reorg of { tick : int; depth : int }
  | Clock_skew of { tick : int; millis : int }

type plan = fault list

let fault_to_string = function
  | Crash_worker { epoch; worker } -> Printf.sprintf "crash@%d:w%d" epoch worker
  | Slow_worker { epoch; worker; factor } ->
    Printf.sprintf "slow@%d:w%d:x%d" epoch worker factor
  | Cert_fault { epoch; fault = Drop } -> Printf.sprintf "drop@%d" epoch
  | Cert_fault { epoch; fault = Delay t } -> Printf.sprintf "delay@%d:+%d" epoch t
  | Cert_fault { epoch; fault = Duplicate n } ->
    Printf.sprintf "dup@%d:x%d" epoch n
  | Cert_fault { epoch; fault = Withhold } -> Printf.sprintf "withhold@%d" epoch
  | Reorg { tick; depth } -> Printf.sprintf "reorg@%d:d%d" tick depth
  | Clock_skew { tick; millis } -> Printf.sprintf "skew@%d:+%dms" tick millis

let fault_of_string s =
  let attempt fmt k =
    try Some (Scanf.sscanf s fmt k)
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
  in
  let candidates =
    [
      (fun () ->
        attempt "crash@%d:w%d%!" (fun epoch worker ->
            Crash_worker { epoch; worker }));
      (fun () ->
        attempt "slow@%d:w%d:x%d%!" (fun epoch worker factor ->
            Slow_worker { epoch; worker; factor }));
      (fun () ->
        attempt "drop@%d%!" (fun epoch -> Cert_fault { epoch; fault = Drop }));
      (fun () ->
        attempt "delay@%d:+%d%!" (fun epoch t ->
            Cert_fault { epoch; fault = Delay t }));
      (fun () ->
        attempt "dup@%d:x%d%!" (fun epoch n ->
            Cert_fault { epoch; fault = Duplicate n }));
      (fun () ->
        attempt "withhold@%d%!" (fun epoch ->
            Cert_fault { epoch; fault = Withhold }));
      (fun () -> attempt "reorg@%d:d%d%!" (fun tick depth -> Reorg { tick; depth }));
      (fun () ->
        attempt "skew@%d:+%dms%!" (fun tick millis -> Clock_skew { tick; millis }));
    ]
  in
  let valid = function
    | Crash_worker { epoch; worker } -> epoch >= 0 && worker >= 0
    | Slow_worker { epoch; worker; factor } ->
      epoch >= 0 && worker >= 0 && factor >= 1
    | Cert_fault { epoch; fault } -> (
      epoch >= 0
      && match fault with Delay t -> t >= 1 | Duplicate n -> n >= 1 | _ -> true)
    | Reorg { tick; depth } -> tick >= 1 && depth >= 1
    | Clock_skew { tick; millis } -> tick >= 1 && millis >= 1
  in
  match List.find_map (fun f -> f ()) candidates with
  | Some f when valid f -> Ok f
  | Some _ -> Error (Printf.sprintf "fault plan: out-of-range value in %S" s)
  | None -> Error (Printf.sprintf "fault plan: cannot parse %S" s)

let plan_to_string = function
  | [] -> "none"
  | plan -> String.concat "," (List.map fault_to_string plan)

let ( let* ) = Result.bind

let plan_of_string s =
  let s = String.trim s in
  if s = "none" || s = "" then Ok []
  else
    List.fold_left
      (fun acc part ->
        let* plan = acc in
        let* f = fault_of_string (String.trim part) in
        Ok (f :: plan))
      (Ok [])
      (String.split_on_char ',' s)
    |> Result.map List.rev

(* All randomness is spent here, turning a seed into concrete data; the
   runtime below never rolls dice, which is what makes (seed, plan)
   replay exact. *)
let storm ~seed ?(first_tick = 1) ?(ticks = 32) ?(epochs = 8) ?(workers = 4)
    ?(intensity = 25) () =
  let rng = Rng.create seed in
  let roll p = p > 0 && Rng.int rng 100 < p in
  let out = ref [] in
  let push f = out := f :: !out in
  for epoch = 0 to epochs - 1 do
    if roll intensity then begin
      (* Delays and duplicates dominate: they perturb without killing
         liveness, so a default storm still certifies epochs. *)
      let k = Rng.int rng 10 in
      let fault =
        if k < 4 then Delay (1 + Rng.int rng 3)
        else if k < 8 then Duplicate (1 + Rng.int rng 2)
        else if k < 9 then Drop
        else Withhold
      in
      push (Cert_fault { epoch; fault })
    end;
    if roll intensity && workers > 1 then begin
      let worker = Rng.int rng workers in
      if Rng.bool rng then push (Crash_worker { epoch; worker })
      else push (Slow_worker { epoch; worker; factor = 2 + Rng.int rng 6 })
    end
  done;
  for tick = first_tick to first_tick + ticks - 1 do
    if roll (intensity / 4) then push (Reorg { tick; depth = 1 + Rng.int rng 3 });
    if roll (intensity / 2) then
      push (Clock_skew { tick; millis = 1 + Rng.int rng 250 })
  done;
  List.rev !out

type t = {
  seed : int;
  plan : plan;
  mutable injected : int;
  fired : (string, unit) Hashtbl.t;
}

let create ~seed plan = { seed; plan; injected = 0; fired = Hashtbl.create 16 }
let seed t = t.seed
let plan t = t.plan
let injected t = t.injected

let fire t key =
  if Hashtbl.mem t.fired key then false
  else begin
    Hashtbl.add t.fired key ();
    t.injected <- t.injected + 1;
    true
  end

let cert_fault t ~epoch =
  List.find_map
    (function
      | Cert_fault { epoch = e; fault } when e = epoch -> Some fault
      | _ -> None)
    t.plan

let reorg_at t ~tick =
  List.find_map
    (function Reorg { tick = k; depth } when k = tick -> Some depth | _ -> None)
    t.plan

let skew_at t ~tick =
  List.find_map
    (function
      | Clock_skew { tick = k; millis } when k = tick -> Some millis | _ -> None)
    t.plan

let prover_faults t ~epoch =
  List.filter_map
    (function
      | Crash_worker { epoch = e; worker } when e = epoch ->
        Some (worker, Prover_pool.Crash)
      | Slow_worker { epoch = e; worker; factor } when e = epoch ->
        Some (worker, Prover_pool.Slow factor)
      | _ -> None)
    t.plan
