open Zen_crypto
open Zen_mainchain
open Zen_latus
open Zendoo

type sidechain = {
  name : string;
  ledger_id : Hash.t;
  config : Sidechain_config.t;
  node : Node.t;
  mutable withhold_certs : bool;
}

type t = {
  mutable chain : Chain.t;
  mutable mempool : Mempool.t;
  mc_wallet : Wallet.t;
  miner_addr : Hash.t;
  mutable time : int;
  mutable sidechains : sidechain list;
  log : Zen_obs.Events.t;
}

let logf t fmt = Printf.ksprintf (Zen_obs.Events.add t.log) fmt
let dump_log t = Zen_obs.Events.items t.log

let create ?(pow = Pow.trivial) ~seed () =
  let params = { Chain_state.default_params with pow } in
  let mc_wallet = Wallet.create ~seed in
  let miner_addr = Wallet.fresh_address mc_wallet in
  {
    chain = Chain.create ~params ~time:0 ();
    mempool = Mempool.empty;
    mc_wallet;
    miner_addr;
    time = 0;
    sidechains = [];
    log = Zen_obs.Events.create ();
  }

let mine t =
  t.time <- t.time + 1;
  match
    Miner.build_block t.chain ~time:t.time ~miner_addr:t.miner_addr
      ~candidates:(Mempool.txs t.mempool)
  with
  | Error e -> logf t "mine failed: %s" e
  | Ok (block, skipped) ->
    if skipped <> [] then
      logf t "miner skipped %d invalid txs" (List.length skipped);
    (match Chain.add_block t.chain block with
    | Error e -> logf t "block rejected: %s" e
    | Ok (chain, _) ->
      t.chain <- chain;
      t.mempool <- Mempool.remove_included t.mempool block)

let mine_n t n =
  for _ = 1 to n do
    mine t
  done

let submit t tx = t.mempool <- Mempool.add t.mempool tx
let fund t ~blocks = mine_n t blocks

let add_latus t ~name ?(params = Params.default) ?family ?pool ~epoch_len
    ~submit_len ~activation_delay () =
  let family = match family with Some f -> f | None -> Circuits.make params in
  let ledger_id =
    Sidechain_config.derive_ledger_id ~creator:t.miner_addr
      ~nonce:(List.length t.sidechains + 1)
  in
  (* The creation transaction lands in the next block; activation must
     be strictly after it. *)
  let start_block = Chain.height t.chain + 1 + activation_delay in
  match
    Node.config_for ~ledger_id ~start_block ~epoch_len ~submit_len family
  with
  | Error e -> Error e
  | Ok config -> (
    let forger = Sc_wallet.create ~seed:("forger." ^ name) in
    let (_ : Hash.t) = Sc_wallet.fresh_address forger in
    match Node.create ~config ~params ~family ~forger ?pool () with
    | Error e -> Error e
    | Ok node ->
      submit t (Tx.Sc_create config);
      mine t;
      let sc = { name; ledger_id; config; node; withhold_certs = false } in
      t.sidechains <- t.sidechains @ [ sc ];
      logf t "sidechain %s registered (activates at MC height %d)" name
        start_block;
      Ok sc)

let forward_transfer t sc ~receiver ~payback ~amount =
  let state = Chain.tip_state t.chain in
  match
    Wallet.build_forward_transfer t.mc_wallet state ~ledger_id:sc.ledger_id
      ~receiver_metadata:(Sc_tx.ft_metadata ~receiver ~payback)
      ~amount ~fee:(Amount.of_int_exn 1000)
  with
  | Error e -> Error e
  | Ok tx ->
    submit t tx;
    mine t;
    logf t "FT of %s to %s" (Amount.to_string amount) sc.name;
    Ok ()

let ticks = Zen_obs.Counter.make ~help:"Harness rounds executed" "sim.ticks"

let mempool_depth =
  Zen_obs.Gauge.make ~help:"Mainchain mempool depth after the last tick"
    "sim.mempool.depth"

let tick t =
  Zen_obs.Counter.incr ticks;
  Zen_obs.Trace.with_span ~cat:"sim"
    ~args:[ ("time", string_of_int (t.time + 1)) ]
    "sim.tick"
  @@ fun () ->
  mine t;
  List.iter
    (fun sc ->
      (match Node.forge sc.node ~mc:t.chain ~slot:t.time () with
      | Error e -> logf t "%s forge error: %s" sc.name e
      | Ok None -> ()
      | Ok (Some b) ->
        logf t "%s forged block %d (%d refs, %d txs)" sc.name b.height
          (List.length b.mc_refs) (List.length b.txs));
      if not sc.withhold_certs then begin
        match Node.build_certificate sc.node ~mc:t.chain with
        | Error e -> logf t "%s certificate error: %s" sc.name e
        | Ok None -> ()
        | Ok (Some cert_tx) ->
          submit t cert_tx;
          logf t "%s submitted certificate" sc.name
      end)
    t.sidechains;
  Zen_obs.Gauge.set_int mempool_depth (List.length (Mempool.txs t.mempool))

let tick_n t n =
  for _ = 1 to n do
    tick t
  done

let sc_balance_on_mc t sc =
  Option.value
    (Chain_state.sc_balance (Chain.tip_state t.chain) sc.ledger_id)
    ~default:Amount.zero

let is_ceased t sc =
  let st = Chain.tip_state t.chain in
  Sc_ledger.is_ceased st.scs sc.ledger_id ~height:st.height

let find_sidechain t name =
  List.find_opt (fun sc -> String.equal sc.name name) t.sidechains
