open Zen_crypto
open Zen_mainchain
open Zen_latus
open Zendoo

type sidechain = {
  name : string;
  ledger_id : Hash.t;
  config : Sidechain_config.t;
  node : Node.t;
  mutable withhold_certs : bool;
}

(* Flight recorder: per-(sidechain, epoch) certificate outcomes, kept
   as plain mutable counters so recording costs nothing on the tick
   path and the scoreboard survives a disabled obs registry. *)
type score = {
  mutable submitted : int;
  mutable dropped : int;
  mutable delayed : int;
  mutable duplicated : int;
  mutable withheld : int;
  mutable cert_errors : int;
}

(* Live-traffic driver (attached by [set_workload]): each tick draws
   one transaction kind per sidechain from the profile's mix and
   submits a real signed transaction to that node, so simulate/chaos
   runs exercise the mempool/forge path under sustained load. The
   soak-scale batching itself lives in [Workload.run]; here the profile
   only shapes rate (diurnal gate) and mix. *)
type workload_driver = {
  wl_profile : Workload.profile;
  wl_seed : int;
  mutable wl_wallets : (string * Sc_wallet.t) list;
  mutable wl_injected : int;
}

type t = {
  mutable chain : Chain.t;
  mutable mempool : Mempool.t;
  mc_wallet : Wallet.t;
  miner_addr : Hash.t;
  pool : Pool.t;
  aggregate : bool;
  pipeline : bool;
  mutable time : int;
  mutable sidechains_rev : sidechain list;
  mutable next_sc_nonce : int;
  log : Zen_obs.Events.t;
  faults : Faults.t option;
  mutable pending_certs : (int * Tx.t) list;
  mutable managed_certs : Hash.t list;
  scores : (string * int, score) Hashtbl.t;
  mutable reorgs : (int * int) list; (* (tick, depth), newest first *)
  mutable workload : workload_driver option;
}

let sidechains t = List.rev t.sidechains_rev
let logf t fmt = Printf.ksprintf (Zen_obs.Events.add t.log) fmt
let dump_log t = Zen_obs.Events.items t.log

let create ?(pow = Pow.trivial) ?(pool = Pool.sequential) ?(aggregate = false)
    ?(pipeline = true) ?faults ~seed () =
  let params = { Chain_state.default_params with pow } in
  let mc_wallet = Wallet.create ~seed in
  let miner_addr = Wallet.fresh_address mc_wallet in
  {
    chain = Chain.create ~params ~time:0 ();
    mempool = Mempool.empty;
    mc_wallet;
    miner_addr;
    pool;
    aggregate;
    pipeline;
    time = 0;
    sidechains_rev = [];
    next_sc_nonce = 1;
    log = Zen_obs.Events.create ();
    faults;
    pending_certs = [];
    managed_certs = [];
    scores = Hashtbl.create 16;
    reorgs = [];
    workload = None;
  }

let set_workload t ~profile ~seed =
  match Workload.validate profile with
  | Error e -> Error e
  | Ok p ->
    t.workload <-
      Some { wl_profile = p; wl_seed = seed; wl_wallets = []; wl_injected = 0 };
    logf t "workload %s attached (seed %d)" (Workload.to_string p) seed;
    Ok ()

let score_of t sc ~epoch =
  let key = (sc.name, epoch) in
  match Hashtbl.find_opt t.scores key with
  | Some s -> s
  | None ->
    let s =
      {
        submitted = 0;
        dropped = 0;
        delayed = 0;
        duplicated = 0;
        withheld = 0;
        cert_errors = 0;
      }
    in
    Hashtbl.add t.scores key s;
    s

(* The reorg path the seed ignored: when a side branch overtakes the
   tip, the abandoned branch's transactions must return to the mempool
   or they are silently lost (certificates especially — losing one can
   cease a healthy sidechain). *)
let handle_outcome t = function
  | Chain.Extended_tip | Chain.Side_branch -> ()
  | Chain.Reorg { old_tip; depth } ->
    let disconnected, connected = Chain.reorg_diff t.chain ~old_tip in
    let before = Mempool.size t.mempool in
    t.mempool <-
      Mempool.reinject_disconnected t.mempool ~disconnected ~connected;
    (* Reinjected certificates may be stale (their node already
       archived the epoch); track them so copies the miner later skips
       get purged instead of polluting the pool forever. *)
    List.iter
      (fun (b : Block.t) ->
        List.iter
          (fun tx ->
            match tx with
            | Tx.Certificate _ ->
              let id = Tx.txid tx in
              if
                Mempool.mem t.mempool id
                && not (List.exists (Hash.equal id) t.managed_certs)
              then t.managed_certs <- id :: t.managed_certs
            | _ -> ())
          b.txs)
      disconnected;
    let reinjected = Mempool.size t.mempool - before in
    t.reorgs <- (t.time, depth) :: t.reorgs;
    Zen_obs.Trace.instant ~cat:"sim"
      ~args:
        [
          ("depth", string_of_int depth);
          ("reinjected", string_of_int reinjected);
        ]
      "sim.reorg";
    logf t "reorg depth %d: %d blocks disconnected, %d txs reinjected" depth
      (List.length disconnected) reinjected

let mine t =
  t.time <- t.time + 1;
  match
    Miner.build_block ~pool:t.pool ~aggregate:t.aggregate t.chain
      ~time:t.time ~miner_addr:t.miner_addr
      ~candidates:(Mempool.txs t.mempool)
  with
  | Error e -> logf t "mine failed: %s" e
  | Ok (block, skipped) ->
    if skipped <> [] then
      logf t "miner skipped %d invalid txs" (List.length skipped);
    (match Chain.add_block ~pool:t.pool t.chain block with
    | Error e -> logf t "block rejected: %s" e
    | Ok (chain, outcome) ->
      t.chain <- chain;
      t.mempool <- Mempool.remove_included t.mempool block;
      handle_outcome t outcome;
      (* Fault-managed certificates the miner skipped are stale
         (reinjected across an epoch boundary, or duplicate
         resubmissions): drop them from the pool. *)
      List.iter
        (fun tx ->
          match tx with
          | Tx.Certificate _ ->
            let id = Tx.txid tx in
            if List.exists (Hash.equal id) t.managed_certs then begin
              t.mempool <- Mempool.remove t.mempool id;
              t.managed_certs <-
                List.filter (fun h -> not (Hash.equal h id)) t.managed_certs;
              logf t "purged stale certificate from mempool"
            end
          | _ -> ())
        skipped)

let mine_n t n =
  for _ = 1 to n do
    mine t
  done

let submit t tx = t.mempool <- Mempool.add t.mempool tx
let fund t ~blocks = mine_n t blocks

let add_latus t ~name ?(params = Params.default) ?family ?pool ~epoch_len
    ~submit_len ~activation_delay () =
  let family = match family with Some f -> f | None -> Circuits.make params in
  (* A monotonic counter, never the list length: removal or ceasing of
     a sidechain must not make a future registration reuse a nonce
     (and thereby collide on the derived ledger id). *)
  let nonce = t.next_sc_nonce in
  t.next_sc_nonce <- t.next_sc_nonce + 1;
  let ledger_id =
    Sidechain_config.derive_ledger_id ~creator:t.miner_addr ~nonce
  in
  (* The creation transaction lands in the next block; activation must
     be strictly after it. *)
  let start_block = Chain.height t.chain + 1 + activation_delay in
  match
    Node.config_for ~ledger_id ~start_block ~epoch_len ~submit_len family
  with
  | Error e -> Error e
  | Ok config -> (
    let forger = Sc_wallet.create ~seed:("forger." ^ name) in
    let (_ : Hash.t) = Sc_wallet.fresh_address forger in
    let node_pool = match pool with Some p -> p | None -> t.pool in
    match
      Node.create ~config ~params ~family ~forger ~pool:node_pool
        ~pipeline:t.pipeline ()
    with
    | Error e -> Error e
    | Ok node ->
      submit t (Tx.Sc_create config);
      mine t;
      let sc = { name; ledger_id; config; node; withhold_certs = false } in
      (* Constant-time prepend; iteration order (registration order) is
         restored by the [sidechains] accessor. *)
      t.sidechains_rev <- sc :: t.sidechains_rev;
      logf t "sidechain %s registered (activates at MC height %d)" name
        start_block;
      Ok sc)

let forward_transfer t sc ~receiver ~payback ~amount =
  let state = Chain.tip_state t.chain in
  match
    Wallet.build_forward_transfer t.mc_wallet state ~ledger_id:sc.ledger_id
      ~receiver_metadata:(Sc_tx.ft_metadata ~receiver ~payback)
      ~amount ~fee:(Amount.of_int_exn 1000)
  with
  | Error e -> Error e
  | Ok tx ->
    submit t tx;
    mine t;
    logf t "FT of %s to %s" (Amount.to_string amount) sc.name;
    Ok ()

(* One workload transaction for [sc] this tick, if the diurnal gate is
   open. Everything drawn comes from a stream derived from
   (seed, tick, sidechain index), so injection — and every log line it
   produces — is a pure function of (seed, profile). One transaction
   per sidechain per tick: it forges in the same round, so submissions
   never contend for the same inputs and the pool drains every tick. *)
let inject_workload_for t d ~tick_no ~idx sc =
  let p = d.wl_profile in
  let rng = Rng.derive (Rng.create d.wl_seed) ((tick_no * 8191) + idx) in
  let wave =
    Workload.phase_wave ~phases:p.phases ~burst:p.burst (tick_no mod p.phases)
  in
  (* wave averages 200 over an epoch; gating on 400 injects on about
     half the ticks, concentrated in the burst phases. *)
  if Rng.int rng 400 < wave then begin
    let wallet =
      match List.assoc_opt sc.name d.wl_wallets with
      | Some w -> w
      | None ->
        let w =
          Sc_wallet.create
            ~seed:(Printf.sprintf "workload.%d.%s" d.wl_seed sc.name)
        in
        for _ = 1 to 4 do
          ignore (Sc_wallet.fresh_address w)
        done;
        d.wl_wallets <- (sc.name, w) :: d.wl_wallets;
        w
    in
    let st = Node.next_block_state sc.node in
    let addrs = Array.of_list (Sc_wallet.addresses wallet) in
    (* Funding fallback: an FT from the harness wallet, mined next tick
       and credited when the node forges past that MC reference. *)
    let fund () =
      let addr = Rng.pick rng addrs in
      let amount = Amount.of_int_exn (100_000 + Rng.int rng 900_000) in
      match
        Wallet.build_forward_transfer t.mc_wallet (Chain.tip_state t.chain)
          ~ledger_id:sc.ledger_id
          ~receiver_metadata:(Sc_tx.ft_metadata ~receiver:addr ~payback:addr)
          ~amount ~fee:(Amount.of_int_exn 1000)
      with
      | Error e -> logf t "workload: %s ft failed: %s" sc.name e
      | Ok tx ->
        submit t tx;
        d.wl_injected <- d.wl_injected + 1;
        logf t "workload: %s funded with FT of %s" sc.name
          (Amount.to_string amount)
    in
    let submit_sc what tx =
      match Node.submit_tx sc.node tx with
      | Error e -> logf t "workload: %s %s rejected: %s" sc.name what e
      | Ok () ->
        d.wl_injected <- d.wl_injected + 1;
        logf t "workload: %s %s submitted" sc.name what
    in
    let kind = Rng.int rng 100 in
    (* The BTR share folds into BT here: at the state layer they are
       the same withdrawal; MC-initiated BTRs are exercised separately
       by the scenario tests. *)
    if kind < p.mix.payment then begin
      let bal = Amount.to_int (Sc_wallet.balance wallet st) in
      if bal < 2 then fund ()
      else begin
        let amount = 1 + Rng.int rng (min 50_000 (bal / 2)) in
        match
          Sc_wallet.build_payment wallet st ~to_:(Rng.pick rng addrs)
            ~amount:(Amount.of_int_exn amount)
        with
        | Error _ -> fund ()
        | Ok tx -> submit_sc "payment" tx
      end
    end
    else if kind < p.mix.payment + p.mix.ft then fund ()
    else begin
      match List.rev (Sc_wallet.utxos wallet st) with
      | smallest :: _ -> (
        match
          Sc_wallet.build_backward_transfer wallet st ~utxo:smallest
            ~mc_receiver:
              (Hash.tagged "workload.mc" [ string_of_int (Rng.int rng 1000) ])
        with
        | Error _ -> fund ()
        | Ok tx -> submit_sc "bt" tx)
      | [] -> fund ()
    end
  end

let inject_workload t ~tick_no =
  match t.workload with
  | None -> ()
  | Some d ->
    List.iteri
      (fun idx sc -> inject_workload_for t d ~tick_no ~idx sc)
      (sidechains t)

let workload_injected t =
  match t.workload with None -> 0 | Some d -> d.wl_injected

let ticks = Zen_obs.Counter.make ~help:"Harness rounds executed" "sim.ticks"

let tick_s =
  Zen_obs.Histogram.make ~help:"harness tick latency (mine + forge + submit)"
    ~bounds:(Zen_obs.Histogram.exponential_bounds ~lo:1e-4 ~factor:4. ~n:8)
    "sim.tick.seconds"

let mempool_depth =
  Zen_obs.Gauge.make ~help:"Mainchain mempool depth after the last tick"
    "sim.mempool.depth"

let fault_injections =
  Zen_obs.Counter.make ~help:"Faults injected by the harness"
    "sim.faults.injected"

let adversary_addr = Hash.of_string "sim.fault.adversary"

let force_reorg t ~depth =
  let h = Chain.height t.chain in
  let d = min depth h in
  if d < 1 then logf t "reorg skipped (chain too short)"
  else begin
    let fork_height = h - d in
    match Chain_state.block_hash_at (Chain.tip_state t.chain) fork_height with
    | None -> logf t "reorg skipped (no fork point)"
    | Some fork_hash ->
      let params = Chain.params t.chain in
      (* d + 1 adversarial blocks above the fork point: one more than
         the honest branch, so cumulative work strictly overtakes and
         the last add_block returns Reorg. *)
      let rec build prev height i =
        if i > d + 1 then Ok ()
        else begin
          let txs =
            [
              Tx.Coinbase
                {
                  height;
                  reward =
                    { Tx.addr = adversary_addr; amount = params.subsidy };
                };
            ]
          in
          match
            Block.assemble ~pool:t.pool ~prev ~height
              ~time:((1000 * t.time) + i)
              ~txs ~pow:params.pow ()
          with
          | Error e -> Error e
          | Ok b -> (
            match Chain.add_block ~pool:t.pool t.chain b with
            | Error e -> Error e
            | Ok (chain, outcome) ->
              t.chain <- chain;
              handle_outcome t outcome;
              build (Block.hash b) (height + 1) (i + 1))
        end
      in
      (match build fork_hash (fork_height + 1) 1 with
      | Ok () -> logf t "adversarial branch overtook the tip (depth %d)" d
      | Error e -> logf t "reorg injection failed: %s" e)
  end

(* What the fault plan injects at the top of a tick: clock skew, then
   an adversarial reorg, then delivery of certificate submissions a
   Delay/Duplicate fault postponed to this tick. *)
let inject_tick_faults t ~tick_no =
  (match t.faults with
  | None -> ()
  | Some f ->
    (match Faults.skew_at f ~tick:tick_no with
    | Some ms when Faults.fire f (Printf.sprintf "skew@%d" tick_no) ->
      Zen_obs.Counter.incr fault_injections;
      Zen_obs.Clock.skew (float_of_int ms /. 1000.);
      logf t "fault: clock skewed +%dms" ms
    | _ -> ());
    match Faults.reorg_at f ~tick:tick_no with
    | Some depth when Faults.fire f (Printf.sprintf "reorg@%d" tick_no) ->
      Zen_obs.Counter.incr fault_injections;
      logf t "fault: adversarial reorg depth %d" depth;
      force_reorg t ~depth
    | _ -> ());
  let due, later =
    List.partition (fun (at, _) -> at <= tick_no) t.pending_certs
  in
  t.pending_certs <- later;
  List.iter
    (fun (_, tx) ->
      submit t tx;
      logf t "fault: postponed certificate submitted")
    due

let submit_certificate t sc =
  (* A certificate fault targets the epoch the node would certify
     next; [build_certificate] archives the epoch as a side effect, so
     Withhold must short-circuit before the build. *)
  let epoch = Node.certificate_target sc.node ~mc:t.chain in
  let cert_fault =
    match t.faults with
    | None -> None
    | Some f ->
      Option.map (fun cf -> (f, epoch, cf)) (Faults.cert_fault f ~epoch)
  in
  let score () = score_of t sc ~epoch in
  match cert_fault with
  | Some (f, epoch, Faults.Withhold) ->
    if Faults.fire f (Printf.sprintf "withhold@%d:%s" epoch sc.name) then begin
      Zen_obs.Counter.incr fault_injections;
      (score ()).withheld <- (score ()).withheld + 1;
      logf t "fault: %s withholds certificate for epoch %d" sc.name epoch
    end
  | _ -> (
    match Node.build_certificate sc.node ~mc:t.chain with
    | Error e ->
      (score ()).cert_errors <- (score ()).cert_errors + 1;
      logf t "%s certificate error: %s" sc.name e
    | Ok None -> ()
    | Ok (Some cert_tx) -> (
      (* Every harness-submitted certificate is managed: if the miner
         ever skips it as invalid (window closed, quality not beaten,
         already accepted on another branch) it is purged — the node
         rebuilds and resubmits while the epoch is still certifiable,
         so nothing lingers in the mempool. *)
      let manage () =
        let id = Tx.txid cert_tx in
        if not (List.exists (Hash.equal id) t.managed_certs) then
          t.managed_certs <- id :: t.managed_certs
      in
      manage ();
      match cert_fault with
      | Some (f, epoch, Faults.Drop) ->
        if Faults.fire f (Printf.sprintf "drop@%d:%s" epoch sc.name) then
          Zen_obs.Counter.incr fault_injections;
        (score ()).dropped <- (score ()).dropped + 1;
        logf t "fault: %s certificate for epoch %d dropped" sc.name epoch
      | Some (f, epoch, Faults.Delay k) ->
        if Faults.fire f (Printf.sprintf "delay@%d:%s" epoch sc.name) then
          Zen_obs.Counter.incr fault_injections;
        manage ();
        (score ()).delayed <- (score ()).delayed + 1;
        t.pending_certs <- t.pending_certs @ [ (t.time + k, cert_tx) ];
        logf t "fault: %s certificate for epoch %d delayed %d ticks" sc.name
          epoch k
      | Some (f, epoch, Faults.Duplicate n) ->
        if Faults.fire f (Printf.sprintf "dup@%d:%s" epoch sc.name) then
          Zen_obs.Counter.incr fault_injections;
        submit t cert_tx;
        logf t "%s submitted certificate" sc.name;
        manage ();
        let s = score () in
        s.submitted <- s.submitted + 1;
        s.duplicated <- s.duplicated + n;
        for j = 1 to n do
          t.pending_certs <- t.pending_certs @ [ (t.time + j, cert_tx) ]
        done;
        logf t "fault: %s certificate for epoch %d duplicated x%d" sc.name
          epoch n
      | Some (_, _, Faults.Withhold) | None ->
        submit t cert_tx;
        (score ()).submitted <- (score ()).submitted + 1;
        logf t "%s submitted certificate" sc.name))

let tick t =
  Zen_obs.Counter.incr ticks;
  let tick_no = t.time + 1 in
  Zen_obs.Histogram.time tick_s @@ fun () ->
  Zen_obs.Trace.with_span ~cat:"sim"
    ~args:[ ("time", string_of_int tick_no) ]
    "sim.tick"
  @@ fun () ->
  inject_tick_faults t ~tick_no;
  mine t;
  inject_workload t ~tick_no;
  List.iter
    (fun sc ->
      (match Node.forge sc.node ~mc:t.chain ~slot:t.time () with
      | Error e -> logf t "%s forge error: %s" sc.name e
      | Ok None -> ()
      | Ok (Some b) ->
        logf t "%s forged block %d (%d refs, %d txs)" sc.name b.height
          (List.length b.mc_refs) (List.length b.txs));
      (* Drain point of the proving pipeline: fold whatever the workers
         finished since the last tick (with a sequential pool, run the
         deferred proofs here) so certify time only sees carry merges
         and genuine stragglers. Scheduling only — the log never
         records pipeline progress, keeping runs byte-identical
         pipeline on or off. *)
      Node.pump sc.node;
      if not sc.withhold_certs then submit_certificate t sc)
    (sidechains t);
  Zen_obs.Gauge.set_int mempool_depth (List.length (Mempool.txs t.mempool))

let tick_n t n =
  for _ = 1 to n do
    tick t
  done

let sc_balance_on_mc t sc =
  Option.value
    (Chain_state.sc_balance (Chain.tip_state t.chain) sc.ledger_id)
    ~default:Amount.zero

let is_ceased t sc =
  let st = Chain.tip_state t.chain in
  Sc_ledger.is_ceased st.scs sc.ledger_id ~height:st.height

let find_sidechain t name =
  List.find_opt (fun sc -> String.equal sc.name name) t.sidechains_rev

let scoreboard_json t =
  let open Zen_obs.Json in
  let rows =
    Hashtbl.fold (fun key s acc -> (key, s) :: acc) t.scores []
    |> List.sort (fun ((n1, e1), _) ((n2, e2), _) ->
           match String.compare n1 n2 with
           | 0 -> Int.compare e1 e2
           | c -> c)
    |> List.map (fun ((name, epoch), s) ->
           Obj
             [
               ("sidechain", Str name);
               ("epoch", Int epoch);
               ("submitted", Int s.submitted);
               ("dropped", Int s.dropped);
               ("delayed", Int s.delayed);
               ("duplicated", Int s.duplicated);
               ("withheld", Int s.withheld);
               ("errors", Int s.cert_errors);
             ])
  in
  let reorgs = List.rev t.reorgs in
  let cache = Verifier.Cache.stats () in
  let lookups = cache.hits + cache.misses in
  let retries =
    Zen_obs.Counter.value
      (Zen_obs.Counter.make "latus.prover.reassignments")
  in
  Obj
    [
      ("ticks", Int t.time);
      ( "reorgs",
        Arr
          (List.map
             (fun (tick, depth) ->
               Obj [ ("tick", Int tick); ("depth", Int depth) ])
             reorgs) );
      ( "max_reorg_depth",
        Int (List.fold_left (fun m (_, d) -> max m d) 0 reorgs) );
      ("proof_retries", Int retries);
      ( "aggregate",
        (let a = Chain_state.Aggregate_stats.snapshot () in
         Obj
           [
             ("enabled", Bool t.aggregate);
             ("blocks", Int a.Chain_state.Aggregate_stats.blocks);
             ("certs_settled", Int a.Chain_state.Aggregate_stats.certs_settled);
             ("proof_checks", Int a.Chain_state.Aggregate_stats.proof_checks);
             ("rejected", Int a.Chain_state.Aggregate_stats.rejected);
           ]) );
      ( "verify_cache",
        Obj
          [
            ("hits", Int cache.hits);
            ("misses", Int cache.misses);
            ( "hit_rate",
              Float
                (if lookups = 0 then 0.
                 else float_of_int cache.hits /. float_of_int lookups) );
          ] );
      ( "pipeline",
        (* Certify-path accounting per certificate: [leaves] base
           transitions folded, of which only [carry_merges] merges ran
           at certify time (the rest were eager, between ticks). Both
           are deterministic in the seed — CI asserts
           carry_merges ≤ ⌈log₂ leaves⌉ + 1. *)
        Obj
          [
            ("enabled", Bool t.pipeline);
            ( "certs",
              Arr
                (List.concat_map
                   (fun sc ->
                     List.map
                       (fun (cs : Proof_pipeline.certificate_stats) ->
                         Obj
                           [
                             ("sidechain", Str sc.name);
                             ("epoch", Int cs.cert_epoch);
                             ("leaves", Int cs.cert_leaves);
                             ("carry_merges", Int cs.cert_carry_merges);
                           ])
                       (Node.certificate_stats sc.node))
                   (sidechains t)) );
          ] );
      ("certificates", Arr rows);
    ]
