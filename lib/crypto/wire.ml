type writer = Buffer.t

let writer () = Buffer.create 256
let contents = Buffer.contents

let u8 w n =
  if n < 0 || n > 0xff then invalid_arg "Wire.u8: out of range";
  Buffer.add_char w (Char.chr n)

let u32 w n =
  if n < 0 || n > 0xffffffff then invalid_arg "Wire.u32: out of range";
  for i = 0 to 3 do
    Buffer.add_char w (Char.chr ((n lsr (8 * i)) land 0xff))
  done

let u63 w n =
  if n < 0 then invalid_arg "Wire.u63: negative";
  for i = 0 to 7 do
    Buffer.add_char w (Char.chr ((n lsr (8 * i)) land 0xff))
  done

let bool w b = u8 w (if b then 1 else 0)
let fixed w s = Buffer.add_string w s

let varbytes w s =
  u32 w (String.length s);
  Buffer.add_string w s

let hash w h = fixed w (Hash.to_raw h)
let fp w x = u63 w (Fp.to_int x)

let list w f xs =
  u32 w (List.length xs);
  List.iter f xs

let option w f = function
  | None -> bool w false
  | Some x ->
    bool w true;
    f x

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }
let remaining r = String.length r.data - r.pos

let ( let* ) = Result.bind

let take r n =
  if n < 0 then Error "wire: negative length"
  else if remaining r < n then Error "wire: unexpected end of input"
  else begin
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    Ok s
  end

let read_u8 r =
  let* s = take r 1 in
  Ok (Char.code s.[0])

let read_le r n =
  let* s = take r n in
  let v = ref 0 in
  for i = n - 1 downto 0 do
    v := (!v lsl 8) lor Char.code s.[i]
  done;
  Ok !v

let read_u32 r = read_le r 4

let read_u63 r =
  let* s = take r 8 in
  (* An OCaml int holds 63 bits including the sign, so the writer never
     emits a top byte above 0x3f. The shift-accumulate below would
     silently drop bit 63 (0x80 lsl 56 wraps to zero), letting two
     different byte strings decode to the same value — reject the whole
     out-of-range top-byte band up front instead. *)
  if Char.code s.[7] > 0x3f then Error "wire: u63 overflow"
  else begin
    let v = ref 0 in
    for i = 7 downto 0 do
      v := (!v lsl 8) lor Char.code s.[i]
    done;
    Ok !v
  end

let read_bool r =
  let* b = read_u8 r in
  match b with
  | 0 -> Ok false
  | 1 -> Ok true
  | _ -> Error "wire: invalid boolean"

let read_fixed r n = take r n

let read_varbytes ?(max = 1 lsl 24) r =
  let* n = read_u32 r in
  if n > max then Error "wire: varbytes too long"
  else if n > remaining r then
    Error "wire: varbytes length exceeds remaining input"
  else take r n

let read_hash r =
  let* s = take r Hash.size in
  Ok (Hash.of_raw s)

let read_fp r =
  let* v = read_u63 r in
  if v >= Fp.p then Error "wire: field element out of range"
  else Ok (Fp.of_int v)

let read_list ?(max = 1 lsl 20) ?(min_elem_size = 1) r f =
  let* n = read_u32 r in
  if n > max then Error "wire: list too long"
    (* A count whose minimum encoding cannot fit in the remaining bytes
       is rejected before the loop: a 5-byte message claiming 2^20
       elements must not allocate or iterate on the attacker's say-so. *)
  else if min_elem_size > 0 && n > remaining r / min_elem_size then
    Error "wire: list count exceeds remaining input"
  else begin
    let rec go i acc =
      if i = n then Ok (List.rev acc)
      else
        let* x = f r in
        go (i + 1) (x :: acc)
    in
    go 0 []
  end

let read_option r f =
  let* present = read_bool r in
  if present then
    let* x = f r in
    Ok (Some x)
  else Ok None

let expect_end r =
  if remaining r = 0 then Ok ()
  else Error (Printf.sprintf "wire: %d trailing bytes" (remaining r))
