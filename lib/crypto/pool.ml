(* A bounded Domain-based worker pool with a chunked, work-stealing
   task queue. Plain stdlib only: Domain + Mutex + Condition + Atomic.

   Shape: [create ~domains:d] spawns [d - 1] persistent worker domains
   that block on a condition variable; the caller of a parallel
   operation is always the d-th worker, so a pool with [domains = 1]
   spawns nothing and runs everything in the caller — the sequential
   fallback path, bit-identical by construction.

   A parallel operation turns its index space [0, n) into fixed-size
   chunks and publishes one "help" closure per spare domain; every
   participant (helpers and caller alike) then races on a shared atomic
   chunk counter — dynamic load balancing without per-task locking.
   Because a participant that finds the counter exhausted simply leaves,
   the caller alone can finish the whole operation; helpers that never
   get scheduled (a busy or already shut-down pool) cost nothing and
   cannot deadlock, including when operations nest. *)

type task = unit -> unit

type t = {
  domains : int;
  mutex : Mutex.t;
  work : Condition.t; (* signalled when the queue grows or the pool closes *)
  queue : task Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let make_handle domains =
  {
    domains;
    mutex = Mutex.create ();
    work = Condition.create ();
    queue = Queue.create ();
    closed = false;
    workers = [];
  }

let sequential = make_handle 1

let recommended_domains () = Domain.recommended_domain_count ()

let domains t = t.domains

(* A worker wrapper that raises is a bug (the closures built below
   catch their own exceptions), but swallowing everything with
   [try ... with _ -> ()] hides real trouble: it would eat
   [Stack_overflow] and [Out_of_memory] too, leaving a half-dead pool
   with no trace. Asynchronous runtime exceptions are re-raised — the
   domain dies and [Domain.join] in {!shutdown} rethrows them in the
   caller — and anything else is counted so it can never vanish
   silently. *)
let swallowed =
  Zen_obs.Counter.make
    ~help:"Exceptions swallowed by pool worker wrappers (should stay 0)"
    "pool.worker.swallowed"

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.work t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* closed and drained *)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    (try task () with
    | (Stack_overflow | Out_of_memory) as e -> raise e
    | _ -> Zen_obs.Counter.incr swallowed);
    worker_loop t
  end

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  let t = make_handle domains in
  if domains > 1 then
    t.workers <-
      List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  if not t.closed then begin
    t.closed <- true;
    Condition.broadcast t.work
  end;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?domains f =
  let domains =
    match domains with Some d -> d | None -> recommended_domains ()
  in
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* One span per executed chunk, recorded by the executing domain —
   this is what renders the per-domain task timeline in the Chrome
   trace export (the tid lane is the domain id). Observation only:
   behind a disabled registry the wrapper is a single branch. *)
let chunk_span ~lo ~hi body =
  Zen_obs.Trace.with_span ~cat:"pool"
    ~args:[ ("lo", string_of_int lo); ("hi", string_of_int hi) ]
    "pool.chunk"
    (fun () ->
      for i = lo to hi do
        body i
      done)

let parallel_for t ?chunk ~n body =
  if n > 0 then begin
    if t.domains = 1 || n = 1 then chunk_span ~lo:0 ~hi:(n - 1) body
    else begin
      let chunk =
        match chunk with
        | Some c -> max 1 c
        | None -> max 1 (n / (t.domains * 8))
      in
      let nchunks = (n + chunk - 1) / chunk in
      let next = Atomic.make 0 in
      let remaining = Atomic.make nchunks in
      let failed : exn option Atomic.t = Atomic.make None in
      let done_mutex = Mutex.create () in
      let done_cond = Condition.create () in
      let work () =
        let rec grab () =
          let c = Atomic.fetch_and_add next 1 in
          if c < nchunks then begin
            (* After a failure the rest of the index space is skipped
               (but still accounted) so the caller can re-raise fast. *)
            (if Atomic.get failed = None then
               try
                 let lo = c * chunk in
                 let hi = min n (lo + chunk) - 1 in
                 chunk_span ~lo ~hi body
               with e -> ignore (Atomic.compare_and_set failed None (Some e)));
            if Atomic.fetch_and_add remaining (-1) = 1 then begin
              Mutex.lock done_mutex;
              Condition.broadcast done_cond;
              Mutex.unlock done_mutex
            end;
            grab ()
          end
        in
        grab ()
      in
      Mutex.lock t.mutex;
      for _ = 2 to t.domains do
        Queue.push work t.queue
      done;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      work ();
      (* The caller ran out of chunks; helpers may still be inside the
         last ones. The completion broadcast is taken under done_mutex,
         so the check-then-wait below cannot miss it. *)
      Mutex.lock done_mutex;
      while Atomic.get remaining > 0 do
        Condition.wait done_cond done_mutex
      done;
      Mutex.unlock done_mutex;
      match Atomic.get failed with Some e -> raise e | None -> ()
    end
  end

let init_array t ?chunk n f =
  if n < 0 then invalid_arg "Pool.init_array: negative length";
  if n = 0 then [||]
  else if t.domains = 1 || n = 1 then Array.init n f
  else begin
    let out = Array.make n None in
    parallel_for t ?chunk ~n (fun i -> out.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_array t ?chunk f arr =
  if t.domains = 1 then Array.map f arr
  else init_array t ?chunk (Array.length arr) (fun i -> f arr.(i))

let map_list t ?chunk f l =
  if t.domains = 1 then List.map f l
  else Array.to_list (map_array t ?chunk f (Array.of_list l))
