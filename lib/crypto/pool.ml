(* A bounded Domain-based worker pool with a chunked, work-stealing
   task queue. Plain stdlib only: Domain + Mutex + Condition + Atomic.

   Shape: [create ~domains:d] spawns [d - 1] persistent worker domains
   that block on a condition variable; the caller of a parallel
   operation is always the d-th worker, so a pool with [domains = 1]
   spawns nothing and runs everything in the caller — the sequential
   fallback path, bit-identical by construction.

   Lifecycle: pools are expensive to spawn (a Domain each) and cheap to
   keep, so the normal way to obtain one is the process-wide registry
   ([get] / [shared]): one persistent pool per domain count, spawned on
   first use, reused by every workload and shut down once at process
   exit. [create]/[shutdown] remain for transient pools (tests, code
   that must bound worker lifetime itself).

   A parallel operation turns its index space [0, n) into chunks —
   sized adaptively from a per-item cost hint so that per-chunk sync
   overhead amortizes — and publishes one "help" closure per spare
   domain; every participant (helpers and caller alike) then races on a
   shared atomic chunk counter — dynamic load balancing without
   per-task locking. Because a participant that finds the counter
   exhausted simply leaves, the caller alone can finish the whole
   operation; helpers that never get scheduled (a busy or already
   shut-down pool) cost nothing and cannot deadlock, including when
   operations nest. An operation whose whole index space fits one chunk
   never touches the queue at all. *)

type task = unit -> unit

type t = {
  domains : int;
  mutex : Mutex.t;
  work : Condition.t; (* signalled when the queue grows or the pool closes *)
  queue : task Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let make_handle domains =
  {
    domains;
    mutex = Mutex.create ();
    work = Condition.create ();
    queue = Queue.create ();
    closed = false;
    workers = [];
  }

let sequential = make_handle 1

let recommended_domains () = Domain.recommended_domain_count ()

let domains t = t.domains

let is_closed t =
  Mutex.lock t.mutex;
  let c = t.closed in
  Mutex.unlock t.mutex;
  c

(* ---- observability ----

   Chunk counters render the granularity the adaptive sizing actually
   chose; steal counts say how much of the work the helpers (as opposed
   to the issuing caller) picked up; busy/idle totals say what the
   spawned workers did with their lifetime. All of it is observation
   only and gated on the registry switch. *)

let chunks_run =
  Zen_obs.Counter.make ~help:"Chunks executed by pool operations"
    "pool.chunks"

let chunk_items =
  Zen_obs.Histogram.make
    ~help:"Indices per executed chunk (adaptive granularity)"
    ~bounds:(Zen_obs.Histogram.exponential_bounds ~lo:1. ~factor:4. ~n:8)
    "pool.chunk.items"

let steals =
  Zen_obs.Counter.make
    ~help:"Chunks executed by helper domains (not the issuing caller)"
    "pool.steals"

let ops_inline =
  Zen_obs.Counter.make
    ~help:"Parallel operations that ran as a single inline chunk"
    "pool.ops.inline"

let ops_fanned =
  Zen_obs.Counter.make
    ~help:"Parallel operations that published help closures to the queue"
    "pool.ops.fanned"

let worker_busy_us =
  Zen_obs.Counter.make
    ~help:"Microseconds pool workers spent executing tasks"
    "pool.worker.busy_us"

let worker_idle_us =
  Zen_obs.Counter.make
    ~help:"Microseconds pool workers spent blocked waiting for work"
    "pool.worker.idle_us"

(* A worker wrapper that raises is a bug (the closures built below
   catch their own exceptions), but swallowing everything with
   [try ... with _ -> ()] hides real trouble: it would eat
   [Stack_overflow] and [Out_of_memory] too, leaving a half-dead pool
   with no trace. Asynchronous runtime exceptions are re-raised — the
   domain dies and [Domain.join] in {!shutdown} rethrows them in the
   caller — and anything else is counted so it can never vanish
   silently. *)
let swallowed =
  Zen_obs.Counter.make
    ~help:"Exceptions swallowed by pool worker wrappers (should stay 0)"
    "pool.worker.swallowed"

(* Per-worker GC tuning, applied once per spawned domain. Template-
   cached proving allocates short-lived structures at a high rate from
   every domain at once; with the stock 256k-word minor heap each
   worker promotes early and the domains contend in the shared major
   heap. A larger minor heap (8 MiB per worker on 64-bit) keeps those
   allocations domain-local, which is most of the "GC contention" cost
   the persistent pool is meant to eliminate. Only spawned workers are
   tuned — the caller's domain keeps whatever the host process set. *)
let worker_minor_heap_words = 1 lsl 20

let tune_worker_gc () =
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = worker_minor_heap_words }

let rec worker_loop t =
  Mutex.lock t.mutex;
  let observing = Zen_obs.Registry.enabled () in
  let t_wait = if observing then Zen_obs.Clock.now () else 0. in
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.work t.mutex
  done;
  if observing then
    Zen_obs.Counter.add worker_idle_us
      (int_of_float ((Zen_obs.Clock.now () -. t_wait) *. 1e6));
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* closed and drained *)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    let t_run = if observing then Zen_obs.Clock.now () else 0. in
    (try task () with
    | (Stack_overflow | Out_of_memory) as e -> raise e
    | _ -> Zen_obs.Counter.incr swallowed);
    if observing then
      Zen_obs.Counter.add worker_busy_us
        (int_of_float ((Zen_obs.Clock.now () -. t_run) *. 1e6));
    worker_loop t
  end

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  let t = make_handle domains in
  if domains > 1 then
    t.workers <-
      List.init (domains - 1) (fun _ ->
          Domain.spawn (fun () ->
              tune_worker_gc ();
              worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  if not t.closed then begin
    t.closed <- true;
    Condition.broadcast t.work
  end;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

(* ---- the process-wide shared registry ----

   One persistent pool per requested domain count, spawned on first
   use and kept for the process lifetime; an [at_exit] hook joins every
   worker so the process never leaks blocked domains. A registry pool
   that was shut down by hand (tests do this to exercise degradation)
   is replaced on the next [get] — the registry never hands out a
   closed pool. *)

let registry_mutex = Mutex.create ()
let registry : (int, t) Hashtbl.t = Hashtbl.create 8
let exit_hook_installed = ref false

let shutdown_shared () =
  Mutex.lock registry_mutex;
  let pools = Hashtbl.fold (fun _ p acc -> p :: acc) registry [] in
  Hashtbl.reset registry;
  Mutex.unlock registry_mutex;
  List.iter shutdown pools

let get ~domains =
  if domains < 1 then invalid_arg "Pool.get: domains < 1";
  if domains = 1 then sequential
  else begin
    Mutex.lock registry_mutex;
    let t =
      match Hashtbl.find_opt registry domains with
      | Some t when not (is_closed t) -> t
      | _ ->
        let t = create ~domains in
        Hashtbl.replace registry domains t;
        if not !exit_hook_installed then begin
          exit_hook_installed := true;
          at_exit shutdown_shared
        end;
        t
    in
    Mutex.unlock registry_mutex;
    t
  end

let shared () = get ~domains:(recommended_domains ())

let with_pool ?domains f =
  let domains =
    match domains with Some d -> d | None -> recommended_domains ()
  in
  f (get ~domains)

(* ---- adaptive chunk granularity ----

   [cost] is the caller's estimate of one index's work in milliseconds.
   Two pressures shape the chunk size: each chunk must carry at least
   [target_chunk_ms] of estimated work so the per-chunk sync (an atomic
   fetch-and-add, plus the operation's one-time queue broadcast)
   amortizes to noise, and the index space should split into about
   [steal_slices] chunks per domain so dynamic stealing can rebalance a
   skewed workload. When the two conflict — many tiny items on many
   domains — amortization wins: better a few well-fed chunks (or one
   inline run) than a thousand synchronized crumbs, which is exactly
   the regime that made template-cached proving slower at 4 domains
   than at 1. Without a cost hint the legacy shape (8 chunks per
   domain) is kept. *)

let target_chunk_ms = 0.5
let steal_slices = 4

let chunk_size ~domains ~n ~chunk ~cost =
  match chunk with
  | Some c -> max 1 c
  | None -> (
    match cost with
    | None -> max 1 (n / (domains * 8))
    | Some cost ->
      let amortize =
        if cost <= 0. then n
        else
          let c = ceil (target_chunk_ms /. cost) in
          if c >= float_of_int n then n else int_of_float c
      in
      let slices = domains * steal_slices in
      let balance = (n + slices - 1) / slices in
      min n (max 1 (max amortize balance)))

(* One span per executed chunk, recorded by the executing domain —
   this is what renders the per-domain task timeline in the Chrome
   trace export (the tid lane is the domain id). Observation only:
   behind a disabled registry the wrapper is a single branch. *)
let chunk_span ~lo ~hi body =
  Zen_obs.Counter.incr chunks_run;
  Zen_obs.Histogram.observe chunk_items (float_of_int (hi - lo + 1));
  Zen_obs.Trace.with_span ~cat:"pool"
    ~args:[ ("lo", string_of_int lo); ("hi", string_of_int hi) ]
    "pool.chunk"
    (fun () ->
      for i = lo to hi do
        body i
      done)

let parallel_for t ?chunk ?cost ~n body =
  if n > 0 then begin
    let chunk = chunk_size ~domains:t.domains ~n ~chunk ~cost in
    let nchunks = (n + chunk - 1) / chunk in
    if t.domains = 1 || nchunks = 1 then begin
      Zen_obs.Counter.incr ops_inline;
      chunk_span ~lo:0 ~hi:(n - 1) body
    end
    else begin
      Zen_obs.Counter.incr ops_fanned;
      let next = Atomic.make 0 in
      let remaining = Atomic.make nchunks in
      let failed : exn option Atomic.t = Atomic.make None in
      let done_mutex = Mutex.create () in
      let done_cond = Condition.create () in
      let work ~stolen () =
        let rec grab () =
          let c = Atomic.fetch_and_add next 1 in
          if c < nchunks then begin
            (* After a failure the rest of the index space is skipped
               (but still accounted) so the caller can re-raise fast. *)
            (if Atomic.get failed = None then
               try
                 let lo = c * chunk in
                 let hi = min n (lo + chunk) - 1 in
                 if stolen then Zen_obs.Counter.incr steals;
                 chunk_span ~lo ~hi body
               with e -> ignore (Atomic.compare_and_set failed None (Some e)));
            if Atomic.fetch_and_add remaining (-1) = 1 then begin
              Mutex.lock done_mutex;
              Condition.broadcast done_cond;
              Mutex.unlock done_mutex
            end;
            grab ()
          end
        in
        grab ()
      in
      (* Publish at most one helper per spare chunk: waking more workers
         than there are chunks to steal is pure overhead. *)
      let helpers = min (t.domains - 1) (nchunks - 1) in
      Mutex.lock t.mutex;
      for _ = 1 to helpers do
        Queue.push (work ~stolen:true) t.queue
      done;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      work ~stolen:false ();
      (* The caller ran out of chunks; helpers may still be inside the
         last ones. The completion broadcast is taken under done_mutex,
         so the check-then-wait below cannot miss it. *)
      Mutex.lock done_mutex;
      while Atomic.get remaining > 0 do
        Condition.wait done_cond done_mutex
      done;
      Mutex.unlock done_mutex;
      match Atomic.get failed with Some e -> raise e | None -> ()
    end
  end

let init_array t ?chunk ?cost n f =
  if n < 0 then invalid_arg "Pool.init_array: negative length";
  if n = 0 then [||]
  else if t.domains = 1 || n = 1 then Array.init n f
  else begin
    let out = Array.make n None in
    parallel_for t ?chunk ?cost ~n (fun i -> out.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_array t ?chunk ?cost f arr =
  if t.domains = 1 then Array.map f arr
  else init_array t ?chunk ?cost (Array.length arr) (fun i -> f arr.(i))

let map_list t ?chunk ?cost f l =
  if t.domains = 1 then List.map f l
  else Array.to_list (map_array t ?chunk ?cost f (Array.of_list l))

(* ---- single-task futures ----

   A future is a one-shot task whose execution site is decided late:
   a spawned worker may pick it off the queue, or whoever awaits it
   runs it inline if no worker got there first (the same
   caller-participates rule as the chunked operations, so a sequential
   or shut-down pool degrades to deterministic inline execution instead
   of deadlocking). The claim transition Pending -> Running happens
   under the future's own mutex, so exactly one party runs the thunk;
   everyone else blocks on the condition until Done. *)

type 'a fstate =
  | FPending of (unit -> 'a)
  | FRunning
  | FDone of ('a, exn) result

type 'a future = {
  fmutex : Mutex.t;
  fcond : Condition.t;
  mutable fstate : 'a fstate;
}

let async_submitted =
  Zen_obs.Counter.make ~help:"Futures submitted to pool queues"
    "pool.async.submitted"

(* Runs the thunk if (and only if) this caller wins the claim. *)
let run_future fut =
  Mutex.lock fut.fmutex;
  match fut.fstate with
  | FRunning | FDone _ -> Mutex.unlock fut.fmutex
  | FPending th ->
    fut.fstate <- FRunning;
    Mutex.unlock fut.fmutex;
    let r = try Ok (th ()) with e -> Error e in
    Mutex.lock fut.fmutex;
    fut.fstate <- FDone r;
    Condition.broadcast fut.fcond;
    Mutex.unlock fut.fmutex

let async t th =
  let fut =
    { fmutex = Mutex.create (); fcond = Condition.create (); fstate = FPending th }
  in
  if t.domains > 1 then begin
    Mutex.lock t.mutex;
    if not t.closed then begin
      Zen_obs.Counter.incr async_submitted;
      Queue.push (fun () -> run_future fut) t.queue;
      Condition.signal t.work
    end;
    Mutex.unlock t.mutex
  end;
  fut

let poll fut =
  Mutex.lock fut.fmutex;
  let r = match fut.fstate with FDone _ -> true | _ -> false in
  Mutex.unlock fut.fmutex;
  r

let await fut =
  run_future fut;
  (* Either we just ran it, or a worker holds it: wait for Done. *)
  Mutex.lock fut.fmutex;
  let rec settle () =
    match fut.fstate with
    | FDone r ->
      Mutex.unlock fut.fmutex;
      (match r with Ok v -> v | Error e -> raise e)
    | FPending _ | FRunning ->
      Condition.wait fut.fcond fut.fmutex;
      settle ()
  in
  settle ()
