(** Bounded multicore worker pool (OCaml 5 [Domain]s, stdlib only).

    This is the hardware layer of the paper's §5.4.1 distributed-proving
    story: proving tasks whose inputs were snapshotted up front are
    independent, so they can be executed by real domains instead of the
    accounted simulation the repository used to ship. The same pool
    drives batch Merkle/SMT tree builds ({!Merkle.of_leaves},
    {!Smt.of_bindings}), the per-level merges of the recursive proof
    tree ([Zen_snark.Recursive.fold_balanced]) and mainchain batch
    verification ([Zendoo.Verifier.verify_batch]).

    {2 Lifecycle: one shared pool per process}

    Spawning a domain costs milliseconds and a per-domain runtime; a
    {e parallel operation} on an already-running pool costs
    microseconds. The API is shaped around that asymmetry:

    - {!get} / {!shared} return {b process-wide persistent pools} — one
      per domain count, spawned on first use, reused by every workload,
      joined once at process exit (an [at_exit] hook calls
      {!shutdown_shared}). This is what the CLI, the harness, the
      benches and the tests use.
    - {!create} / {!shutdown} manage a {b transient} pool whose worker
      lifetime the caller bounds explicitly. Use them only when the
      shared registry is wrong (a test exercising shutdown semantics, a
      host that must reclaim the domains early).

    Per-workload pool churn — the old [with_pool]-around-every-operation
    pattern — is exactly what made multi-domain runs {e slower} than
    sequential once per-prove work dropped to milliseconds; don't bring
    it back. Spawned workers get a larger minor heap ([Gc.set] at
    startup) so allocation-heavy proving stays domain-local instead of
    contending in the shared major heap.

    {2 Granularity: cost-hinted adaptive chunking}

    Every parallel operation splits its index space into chunks and
    lets every participant — the spawned helpers {e and the calling
    domain} — claim chunks from a shared atomic counter (dynamic work
    stealing). Pass [?cost], the estimated milliseconds one index
    costs, and the chunk size is chosen so each chunk carries enough
    work (~0.5 ms) to amortize synchronization while still leaving a
    few chunks per domain for stealing; operations too small to be
    worth fanning out run inline in the caller, untouched by the
    queue. [?chunk] overrides the computed size exactly; with neither,
    the index space splits into 8 chunks per domain. Granularity
    decisions are observable: [pool.chunks], [pool.chunk.items],
    [pool.steals], [pool.ops.inline]/[.fanned] and
    [pool.worker.busy_us]/[.idle_us] in the [Zen_obs] registry.

    The caller always participates, so:

    - [domains = 1] spawns no domains and runs the exact sequential
      code path;
    - a busy or already {!shutdown} pool degrades to sequential
      execution instead of deadlocking, and nested parallel operations
      are safe for the same reason.

    {2 Determinism discipline}

    Chunking, stealing and the shared registry affect {e scheduling
    only}. A parallel operation computes the same function at the same
    indices as its sequential counterpart and writes each result to a
    fixed slot, so for {b pure} per-index functions the output is
    bit-identical for every domain count, every chunk size and every
    cost hint. Callers must not close over shared mutable state; in
    particular each task must draw randomness from its own pre-seeded
    generator (see {!Rng.derive} for the discipline). *)

type t
(** A pool handle. Values of type [t] are safe to share across domains;
    parallel operations may themselves be issued from different domains
    (each operation tracks its own completion). *)

val sequential : t
(** A pool with [domains = 1] and no spawned workers: every operation
    runs in the caller, on the plain sequential code path. This is the
    default everywhere a [?pool] argument is offered. *)

val get : domains:int -> t
(** [get ~domains] returns the process-wide persistent pool with that
    total parallelism, spawning it on first use and reusing it on every
    later call ([get ~domains:1] is {!sequential}). Registry pools live
    until process exit ({!shutdown_shared} runs from [at_exit]); a
    registry pool that was shut down by hand is replaced by a fresh one
    on the next [get]. Raises [Invalid_argument] if [domains < 1]. *)

val shared : unit -> t
(** [shared ()] is [get ~domains:(recommended_domains ())] — the pool
    sized to the hardware, shared by the whole process. *)

val shutdown_shared : unit -> unit
(** Shuts down and joins every registry pool. Runs automatically at
    process exit; call it earlier only to reclaim the worker domains.
    Subsequent {!get}/{!shared} calls spawn fresh pools. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with the {e shared} registry pool for
    [domains] (default {!recommended_domains}[ ()]) — it borrows
    {!get}'s pool rather than spawning one, and does {b not} shut it
    down afterwards. Kept as the convenient scoped spelling; semantics
    changed when the registry was introduced (it used to create and
    destroy a pool per call, which is the churn the registry exists to
    eliminate). *)

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] fresh worker domains (so
    [domains] is the total parallelism including the caller) {e outside}
    the shared registry. A spawn costs milliseconds — this is {b not}
    cheap and must not sit on a per-operation or per-workload path;
    prefer {!get}. The caller owns the result and must release it with
    {!shutdown}. Raises [Invalid_argument] if [domains < 1]. *)

val shutdown : t -> unit
(** Signals the workers to exit once the queue drains and joins them.
    Idempotent. Operations issued after shutdown still complete,
    executed entirely by the caller (sequential degradation, not an
    error). *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism
    budget the benchmarks report against. *)

val domains : t -> int
(** Total parallelism of the pool, including the calling domain. *)

val parallel_for : t -> ?chunk:int -> ?cost:float -> n:int -> (int -> unit) -> unit
(** [parallel_for t ~n body] runs [body i] for every [i] in [[0, n)],
    partitioned into chunks claimed dynamically by the participants.
    [cost] is the estimated milliseconds one call of [body] takes and
    drives the adaptive chunk size (see the module preamble); [chunk]
    overrides it with an exact size; with neither, chunks default to
    [max 1 (n / (domains * 8))]. [body] must be safe to run
    concurrently at distinct indices. If any [body i] raises, one such
    exception is re-raised in the caller after the index space is
    drained; with [domains = 1] the exception propagates directly from
    the failing index. *)

val init_array : t -> ?chunk:int -> ?cost:float -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]. For pure [f] the result is bit-identical to
    [Array.init] for every domain count, chunk size and cost hint. *)

val map_array : t -> ?chunk:int -> ?cost:float -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] (same contract as {!init_array}). *)

val map_list : t -> ?chunk:int -> ?cost:float -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] (same contract as {!init_array}). *)

(** {2 Single-task futures}

    The building block of pipelined proving ([Zen_latus.Proof_pipeline]):
    a one-shot task submitted now and forced later, so independent work
    (a base proof) can overlap with whatever the submitting domain does
    next (forging the following block). The execution site is decided
    late — a pool worker may pick the task up in the background, or the
    caller runs it inline at {!await} if no worker got there first. The
    same caller-participates rule as the chunked operations applies, so
    with {!sequential} (or a shut-down pool) a future is simply deferred
    sequential execution: submission queues nothing and {!await} runs
    the thunk in the caller. Either way the thunk runs {b exactly once},
    and for pure thunks the value is independent of where it ran. *)

type 'a future
(** A one-shot task; safe to share across domains. *)

val async : t -> (unit -> 'a) -> 'a future
(** [async t f] submits [f] for background execution on [t]'s workers
    (a no-op queue-wise when [t] has no workers). [f] must be pure in
    the same sense as the chunked operations: no closing over shared
    mutable state, randomness only from a pre-seeded generator. *)

val poll : 'a future -> bool
(** [poll fut] is [true] once the task has finished (with a value or an
    exception). Never blocks and never runs the thunk. *)

val await : 'a future -> 'a
(** [await fut] returns the task's value, running the thunk inline if
    no worker has claimed it yet, or blocking until the worker finishes
    if one has. Re-raises the thunk's exception if it raised. Idempotent:
    later awaits return the same result without re-running the thunk. *)
