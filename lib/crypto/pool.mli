(** Bounded multicore worker pool (OCaml 5 [Domain]s, stdlib only).

    This is the hardware layer of the paper's §5.4.1 distributed-proving
    story: proving tasks whose inputs were snapshotted up front are
    independent, so they can be executed by real domains instead of the
    accounted simulation the repository used to ship. The same pool
    drives batch Merkle/SMT tree builds ({!Merkle.of_leaves},
    {!Smt.of_bindings}) and the per-level merges of the recursive proof
    tree ([Zen_snark.Recursive.fold_balanced]).

    {2 Execution model}

    [create ~domains:d] spawns [d - 1] persistent worker domains that
    sleep on a [Mutex]/[Condition]-protected task queue. Each parallel
    operation splits its index space into chunks and lets every
    participant — the spawned helpers {e and the calling domain} — claim
    chunks from a shared atomic counter (dynamic work stealing). The
    caller always participates, so:

    - [domains = 1] spawns no domains and runs the exact sequential
      code path;
    - a busy or already {!shutdown} pool degrades to sequential
      execution instead of deadlocking, and nested parallel operations
      are safe for the same reason.

    {2 Determinism discipline}

    A parallel operation computes the same function at the same indices
    as its sequential counterpart and writes each result to a fixed
    slot, so for {b pure} per-index functions the output is bit-identical
    for every domain count. Callers must not close over shared mutable
    state; in particular each task must draw randomness from its own
    pre-seeded generator (see {!Rng.derive} for the discipline). *)

type t
(** A pool handle. Values of type [t] are safe to share across domains;
    parallel operations may themselves be issued from different domains
    (each operation tracks its own completion). *)

val sequential : t
(** A pool with [domains = 1] and no spawned workers: every operation
    runs in the caller, on the plain sequential code path. This is the
    default everywhere a [?pool] argument is offered. *)

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] worker domains (so [domains]
    is the total parallelism including the caller). Raises
    [Invalid_argument] if [domains < 1]. Pools are cheap but not free
    (~a domain spawn each): create one per workload, not per call, and
    release it with {!shutdown}. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it down.
    [domains] defaults to {!recommended_domains}[ ()]. *)

val shutdown : t -> unit
(** Signals the workers to exit once the queue drains and joins them.
    Idempotent. Operations issued after shutdown still complete,
    executed entirely by the caller. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism
    budget the benchmarks report against. *)

val domains : t -> int
(** Total parallelism of the pool, including the calling domain. *)

val parallel_for : t -> ?chunk:int -> n:int -> (int -> unit) -> unit
(** [parallel_for t ~n body] runs [body i] for every [i] in [[0, n)],
    partitioned into chunks of [chunk] indices (default
    [max 1 (n / (domains * 8))]) claimed dynamically by the
    participants. [body] must be safe to run concurrently at distinct
    indices. If any [body i] raises, one such exception is re-raised in
    the caller after the index space is drained; with [domains = 1] the
    exception propagates directly from the failing index. *)

val init_array : t -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]. For pure [f] the result is bit-identical to
    [Array.init] for every domain count. *)

val map_array : t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] (same contract as {!init_array}). *)

val map_list : t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] (same contract as {!init_array}). *)
