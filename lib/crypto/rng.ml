(* splitmix64: tiny, fast, and statistically fine for simulation use.
   Not a cryptographic RNG — key material in tests is derived through
   SHA-256 of its output, which is all the determinism we need. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let of_hash h =
  let raw = Hash.to_raw h in
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code raw.[i]))
  done;
  { state = !acc }

let next64 t =
  t.state <- Int64.add t.state 0x9e3779b97f4a7c15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = next64 t in
  { state = Int64.logxor s 0x5851f42d4c957f2dL }

(* Pure per-task derivation: the parent is NOT advanced, so any number
   of domains can derive their streams from a shared parent value
   without synchronization. Mixing (state + (i+1)·golden) through the
   splitmix64 finalizer decorrelates sibling streams. *)
let derive t i =
  let finalize z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
    Int64.logxor z (Int64.shift_right_logical z 31)
  in
  {
    state =
      finalize
        (Int64.add t.state
           (Int64.mul (Int64.of_int (i + 1)) 0x9e3779b97f4a7c15L));
  }

let int64_nonneg t = Int64.logand (next64 t) Int64.max_int

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  Int64.to_int (Int64.rem (int64_nonneg t) (Int64.of_int bound))

let bool t = Int64.logand (next64 t) 1L = 1L

let bytes t n =
  String.init n (fun _ -> Char.chr (Int64.to_int (Int64.logand (next64 t) 0xffL)))

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
