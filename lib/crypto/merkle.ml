type t = {
  levels : Hash.t array array;
      (* levels.(0) = padded leaf hashes, last level = [| root |] *)
  leaf_count : int;
}

type proof = { index : int; siblings : Hash.t list }

let leaf_hash h = Hash.tagged "mht.leaf" [ Hash.to_raw h ]
let node_hash l r = Hash.tagged "mht.node" [ Hash.to_raw l; Hash.to_raw r ]
let empty_root = Hash.tagged "mht.empty" []

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let of_leaves ?(pool = Pool.sequential) leaves =
  let leaf_count = List.length leaves in
  Zen_obs.Trace.with_span ~cat:"crypto"
    ~args:[ ("leaves", string_of_int leaf_count) ]
    "merkle.of_leaves"
  @@ fun () ->
  if leaf_count = 0 then { levels = [| [| empty_root |] |]; leaf_count = 0 }
  else begin
    let width = next_pow2 leaf_count in
    let padding = leaf_hash Hash.zero in
    let raw = Array.of_list leaves in
    (* Every level is a parallel map over independent slots: hashing is
       pure, so the tree is bit-identical for any domain count. *)
    (* ~2 µs per tagged SHA-256 node: the cost hint batches whole
       levels of a small tree into one inline chunk and only fans out
       levels wide enough to pay for their synchronization. *)
    let hash_cost_ms = 0.002 in
    let level0 =
      Pool.init_array pool ~cost:hash_cost_ms width (fun i ->
          if i < leaf_count then leaf_hash raw.(i) else padding)
    in
    let rec build acc level =
      if Array.length level = 1 then List.rev (level :: acc)
      else begin
        let parent =
          Pool.init_array pool ~cost:hash_cost_ms
            (Array.length level / 2)
            (fun i -> node_hash level.(2 * i) level.((2 * i) + 1))
        in
        build (level :: acc) parent
      end
    in
    { levels = Array.of_list (build [] level0); leaf_count }
  end

let of_data ?pool blocks = of_leaves ?pool (List.map Hash.of_string blocks)

let root t =
  let top = t.levels.(Array.length t.levels - 1) in
  top.(0)

let leaf_count t = t.leaf_count
let depth t = Array.length t.levels - 1

let prove t i =
  if i < 0 || i >= max t.leaf_count 1 then invalid_arg "Merkle.prove: index";
  if t.leaf_count = 0 then invalid_arg "Merkle.prove: empty tree";
  let rec go level pos acc =
    if level >= Array.length t.levels - 1 then List.rev acc
    else begin
      let sib_pos = if pos land 1 = 0 then pos + 1 else pos - 1 in
      let sib = t.levels.(level).(sib_pos) in
      go (level + 1) (pos / 2) (sib :: acc)
    end
  in
  { index = i; siblings = go 0 i [] }

let verify ~root ~leaf proof =
  let rec go pos h = function
    | [] -> Hash.equal h root
    | sib :: rest ->
      let h' = if pos land 1 = 0 then node_hash h sib else node_hash sib h in
      go (pos / 2) h' rest
  in
  go proof.index (leaf_hash leaf) proof.siblings

let proof_index p = p.index
let proof_length p = List.length p.siblings
let proof_size_bytes p = 8 + (Hash.size * List.length p.siblings)
let proof_to_siblings p = p.siblings
let proof_of_siblings ~index siblings = { index; siblings }
