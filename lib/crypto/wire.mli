(** Binary wire-format primitives.

    A small, explicit serialization kit used by every codec in the
    repository: length-prefixed byte strings, little-endian fixed
    integers, lists and options with count prefixes. Readers consume a
    cursor and fail with a descriptive error instead of raising, so a
    malformed network message can never crash a node. *)

(** {2 Writing} *)

type writer

val writer : unit -> writer
val contents : writer -> string

val u8 : writer -> int -> unit
(** Raises [Invalid_argument] outside [0, 255]. *)

val u32 : writer -> int -> unit
(** Little-endian, 4 bytes; raises outside [0, 2^32). *)

val u63 : writer -> int -> unit
(** Little-endian, 8 bytes, non-negative OCaml int. *)

val bool : writer -> bool -> unit
val fixed : writer -> string -> unit
(** Raw bytes, no length prefix (caller knows the size). *)

val varbytes : writer -> string -> unit
(** u32 length prefix + bytes. *)

val hash : writer -> Hash.t -> unit
val fp : writer -> Fp.t -> unit

val list : writer -> ('a -> unit) -> 'a list -> unit
(** u32 count prefix, then each element through the callback. *)

val option : writer -> ('a -> unit) -> 'a option -> unit

(** {2 Reading} *)

type reader

val reader : string -> reader
val remaining : reader -> int

val read_u8 : reader -> (int, string) result
val read_u32 : reader -> (int, string) result
val read_u63 : reader -> (int, string) result
val read_bool : reader -> (bool, string) result
val read_fixed : reader -> int -> (string, string) result
val read_varbytes : ?max:int -> reader -> (string, string) result
(** Rejects a claimed length above [max] (default 2^24) or above the
    bytes actually remaining — before allocating anything. *)

val read_hash : reader -> (Hash.t, string) result
val read_fp : reader -> (Fp.t, string) result

val read_list :
  ?max:int ->
  ?min_elem_size:int ->
  reader ->
  (reader -> ('a, string) result) ->
  ('a list, string) result
(** Rejects a claimed count above [max] (default 2^20), or one whose
    minimum encoded size — [count * min_elem_size] bytes (default 1
    byte per element) — exceeds the remaining input, so a tiny crafted
    message cannot drive the element loop on a huge count. Pass a
    larger [min_elem_size] when every element has a known fixed floor;
    [0] disables the bound (only for elements that can be empty). *)

val read_option :
  reader -> (reader -> ('a, string) result) -> ('a option, string) result

val expect_end : reader -> (unit, string) result
(** Fails when trailing bytes remain — every top-level decoder should
    finish with this. *)

val ( let* ) : ('a, string) result -> ('a -> ('b, string) result) -> ('b, string) result
