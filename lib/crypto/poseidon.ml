let width = 3
let rounds_full = 8
let rounds_partial = 22
let rounds_total = rounds_full + rounds_partial

(* Round constants and MDS entries are drawn from a SHA-256 counter
   stream under distinct domain tags (a "nothing-up-my-sleeve"
   derivation; see DESIGN.md §3 on parameter provenance). *)
let field_stream tag count =
  Array.init count (fun i ->
      Fp.of_bytes_le (Sha256.digest (Printf.sprintf "zendoo.poseidon.%s.%d" tag i)))

let round_constants = field_stream "arc" (rounds_total * width)

let mds =
  (* A Cauchy matrix 1/(x_i + y_j) over distinct x, y is invertible and
     MDS; build one from small fixed coordinates. *)
  let x = [| Fp.of_int 1; Fp.of_int 2; Fp.of_int 3 |] in
  let y = [| Fp.of_int 4; Fp.of_int 5; Fp.of_int 6 |] in
  Array.init width (fun i ->
      Array.init width (fun j -> Fp.inv (Fp.add x.(i) y.(j))))

(* x^17 via 4 squarings and one multiply. *)
let sbox x =
  let x2 = Fp.sq x in
  let x4 = Fp.sq x2 in
  let x8 = Fp.sq x4 in
  let x16 = Fp.sq x8 in
  Fp.mul x16 x

let apply_mds state scratch =
  for i = 0 to width - 1 do
    let acc = ref Fp.zero in
    for j = 0 to width - 1 do
      acc := Fp.add !acc (Fp.mul mds.(i).(j) state.(j))
    done;
    scratch.(i) <- !acc
  done;
  Array.blit scratch 0 state 0 width

let permutations =
  Zen_obs.Counter.make ~help:"Poseidon permutations executed"
    "crypto.poseidon.permutations"

let permute input =
  if Array.length input <> width then invalid_arg "Poseidon.permute: width 3";
  Zen_obs.Counter.incr permutations;
  let state = Array.copy input in
  let scratch = Array.make width Fp.zero in
  let half_full = rounds_full / 2 in
  let round r full =
    for i = 0 to width - 1 do
      state.(i) <- Fp.add state.(i) round_constants.((r * width) + i)
    done;
    if full then
      for i = 0 to width - 1 do
        state.(i) <- sbox state.(i)
      done
    else state.(0) <- sbox state.(0);
    apply_mds state scratch
  in
  for r = 0 to half_full - 1 do
    round r true
  done;
  for r = half_full to half_full + rounds_partial - 1 do
    round r false
  done;
  for r = half_full + rounds_partial to rounds_total - 1 do
    round r true
  done;
  state

let hash2 a b =
  let out = permute [| a; b; Fp.of_int 2 (* domain: 2-to-1 *) |] in
  out.(0)

let hash_fields fields =
  (* Sponge with rate 2: absorb two elements per permutation; the
     capacity lane is initialized with the message length for
     domain separation between lengths. *)
  let n = Array.length fields in
  let state = [| Fp.zero; Fp.zero; Fp.of_int (n + 3) |] in
  let state = ref state in
  let i = ref 0 in
  while !i < n do
    let s = Array.copy !state in
    s.(0) <- Fp.add s.(0) fields.(!i);
    if !i + 1 < n then s.(1) <- Fp.add s.(1) fields.(!i + 1);
    state := permute s;
    i := !i + 2
  done;
  if n = 0 then (permute !state).(0) else !state.(0)

let hash_list fields = hash_fields (Array.of_list fields)
