(** Fixed-depth sparse Merkle tree over {!Fp} with Poseidon nodes.

    The backing structure of the Latus Merkle State Tree (paper Fig. 9,
    §5.2): a complete binary tree of depth [D] whose 2^D leaf slots are
    either a field element or the distinguished Null value. Empty
    subtrees are shared and their hashes precomputed per level, so a
    tree over 2^32 slots with k occupied leaves takes O(k·D) memory.

    The structure is persistent: [set] returns a new tree sharing all
    unmodified branches with the old one, which is what makes sidechain
    state snapshots per block essentially free. *)

type t

val create : depth:int -> t
(** The all-empty tree. [depth] must be in [[1, 60]]. *)

val depth : t -> int
val capacity : t -> int
(** [2^depth]. *)

val root : t -> Fp.t
val occupied : t -> int
(** Number of non-empty leaves. *)

val get : t -> int -> Fp.t option
(** [get t pos] is the leaf at [pos], or [None] when the slot is empty.
    Raises [Invalid_argument] when out of range. *)

val set : t -> int -> Fp.t -> t
(** Occupies a slot (replacing any previous value). *)

val of_bindings :
  ?pool:Pool.t -> depth:int -> (int * Fp.t) list -> (t, string) result
(** [of_bindings ~depth [(pos, v); …]] is the batch constructor:
    equivalent to folding {!set} over the bindings from {!create}, but
    built bottom-up in one pass, with the top levels split into
    independent subtrees hashed in parallel when [pool] has more than
    one domain. The result is bit-identical for every domain count
    (tree structure is a function of the occupied-position set alone).
    Errors on an out-of-range [depth] or position, or on duplicate
    positions. *)

val remove : t -> int -> t
(** Empties a slot (no-op if already empty). *)

val update_batch : t -> (int * Fp.t option) list -> (t, string) result
(** [update_batch t [(pos, v); …]] applies k slot writes ([Some v]
    occupies, [None] empties) in one merged traversal: every node on
    the union of the k root paths is rehashed exactly once, instead of
    once per write as with a fold of {!set}/{!remove}. The result is
    identical to that fold — duplicated positions resolve last-write-
    wins, untouched subtrees are shared with [t]. For a batch of k
    writes over a depth-D tree this costs O(k·(D − log₂ k)) hashes
    rather than O(k·D). Errors on an out-of-range position. *)

val empty_leaf_hash : Fp.t
(** The hash placed in empty slots, H(Null) in the paper's Fig. 9. *)

type proof
(** Path of sibling hashes for one slot; proves membership of the
    current leaf value (or emptiness of the slot). *)

val prove : t -> int -> proof
val proof_position : proof -> int
val proof_siblings : proof -> Fp.t list

val verify : root:Fp.t -> pos:int -> leaf:Fp.t option -> depth:int -> proof -> bool
(** [verify ~root ~pos ~leaf ~depth proof] checks that slot [pos]
    contains [leaf] (with [None] meaning "empty") under [root]. *)

val leaf_hash : Fp.t option -> Fp.t

val fold : t -> init:'a -> f:('a -> int -> Fp.t -> 'a) -> 'a
(** Folds over occupied slots in increasing position order. *)
