(** Deterministic, seedable PRNG (splitmix64).

    Every randomized component of the reproduction — slot-leader
    election, workload generators, key generation in tests — draws from
    this generator so that experiments are bit-reproducible from a seed.

    {2 Seeding discipline under domains}

    A generator is a single mutable cell and is {b not} safe to share
    across domains: concurrent [next64] calls race on [state] and, worse,
    make every drawn value depend on scheduling, destroying
    reproducibility. The discipline for parallel code (see {!Pool}):

    - never capture an [Rng.t] inside a task that a pool may run on
      another domain;
    - instead, derive one generator {e per task, before dispatch} —
      either sequentially with {!split}, or in any order (even from
      inside the tasks) with {!derive}, which is a pure function of the
      parent's current state and the task index;
    - anything drawn before the parallel section (e.g. the
      worker-dispatch assignment of §5.4.1) can keep using the parent
      sequentially.

    Followed, this makes parallel results bit-identical to the
    sequential ones for every domain count, which is what the
    determinism tests in [test/t_pool.ml] enforce. *)

type t

val create : int -> t
(** Seed from an integer. *)

val of_hash : Hash.t -> t
(** Seed from a digest (e.g. epoch randomness). *)

val split : t -> t
(** Derives an independent stream; the parent advances. *)

val derive : t -> int -> t
(** [derive t i] is an independent stream for task [i], a {e pure}
    function of [t]'s current state and [i]: the parent does not
    advance, and [derive t i] may be called concurrently from several
    domains. Distinct [i] give decorrelated streams (splitmix64
    finalizer over the offset state). This is the per-task seeding
    primitive for {!Pool}-parallel code. *)

val next64 : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val int64_nonneg : t -> int64
val bool : t -> bool
val bytes : t -> int -> string
val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
