let max_depth = 60

type node =
  | Empty (* a fully-empty subtree; hash comes from the per-level table *)
  | Leaf of Fp.t
  | Node of { h : Fp.t; l : node; r : node }

type t = { depth : int; tree : node; occupied : int }

let leaf_hash = function
  | None -> Poseidon.hash2 Fp.zero Fp.zero
  | Some v -> Poseidon.hash2 v Fp.one

let empty_leaf_hash = leaf_hash None

(* empties.(h) = hash of a fully-empty subtree of height h. *)
let empties =
  let a = Array.make (max_depth + 1) empty_leaf_hash in
  for h = 1 to max_depth do
    a.(h) <- Poseidon.hash2 a.(h - 1) a.(h - 1)
  done;
  a

let node_hash_at height = function
  | Empty -> empties.(height)
  | Leaf v -> leaf_hash (Some v)
  | Node { h; _ } -> h

let create ~depth =
  if depth < 1 || depth > max_depth then invalid_arg "Smt.create: depth";
  { depth; tree = Empty; occupied = 0 }

let depth t = t.depth
let capacity t = 1 lsl t.depth
let root t = node_hash_at t.depth t.tree
let occupied t = t.occupied

let check_pos t pos =
  if pos < 0 || pos >= capacity t then invalid_arg "Smt: position out of range"

let get t pos =
  check_pos t pos;
  let rec go node h =
    match node with
    | Empty -> None
    | Leaf v -> Some v
    | Node { l; r; _ } ->
      if (pos lsr (h - 1)) land 1 = 0 then go l (h - 1) else go r (h - 1)
  in
  go t.tree t.depth

let update t pos value =
  check_pos t pos;
  let rec go node h =
    if h = 0 then
      match value with Some v -> Leaf v | None -> Empty
    else begin
      let l, r =
        match node with
        | Empty -> (Empty, Empty)
        | Node { l; r; _ } -> (l, r)
        | Leaf _ -> assert false (* leaves only live at height 0 *)
      in
      let l, r =
        if (pos lsr (h - 1)) land 1 = 0 then (go l (h - 1), r)
        else (l, go r (h - 1))
      in
      match (l, r) with
      | Empty, Empty -> Empty
      | _ ->
        let hl = node_hash_at (h - 1) l and hr = node_hash_at (h - 1) r in
        Node { h = Poseidon.hash2 hl hr; l; r }
    end
  in
  let was = get t pos <> None in
  let is = value <> None in
  let occupied = t.occupied + (if is then 1 else 0) - if was then 1 else 0 in
  { t with tree = go t.tree t.depth; occupied }

let set t pos v = update t pos (Some v)
let remove t pos = update t pos None

(* ---- Batch construction ---- *)

(* Builds the subtree of height [h] whose leftmost leaf is [base] from
   bindings sorted by position. Structure (and hence every hash) is a
   function of the occupied-position set alone, so this agrees exactly
   with a fold of [set] over the same bindings. *)
let rec build_sub h base = function
  | [] -> Empty
  | bs -> (
    if h = 0 then
      match bs with
      | [ (_, v) ] -> Leaf v
      | _ -> assert false (* duplicates are rejected up front *)
    else begin
      let mid = base + (1 lsl (h - 1)) in
      let l_bs, r_bs = List.partition (fun (p, _) -> p < mid) bs in
      let l = build_sub (h - 1) base l_bs in
      let r = build_sub (h - 1) mid r_bs in
      match (l, r) with
      | Empty, Empty -> Empty
      | _ ->
        let hl = node_hash_at (h - 1) l and hr = node_hash_at (h - 1) r in
        Node { h = Poseidon.hash2 hl hr; l; r }
    end)

let of_bindings ?(pool = Pool.sequential) ~depth bindings =
  Zen_obs.Trace.with_span ~cat:"crypto"
    ~args:[ ("bindings", string_of_int (List.length bindings)) ]
    "smt.of_bindings"
  @@ fun () ->
  if depth < 1 || depth > max_depth then Error "smt: depth out of range"
  else begin
    let cap = 1 lsl depth in
    if List.exists (fun (p, _) -> p < 0 || p >= cap) bindings then
      Error "smt: position out of range"
    else begin
      let sorted =
        List.sort (fun (a, _) (b, _) -> Int.compare a b) bindings
      in
      let rec has_dup = function
        | (a, _) :: ((b, _) :: _ as rest) -> a = b || has_dup rest
        | _ -> false
      in
      if has_dup sorted then Error "smt: duplicate position"
      else begin
        (* Split the top [k] levels into 2^k independent subtrees built
           in parallel, then hash the top levels sequentially (2^k is
           tiny). k = 0 — i.e. the plain recursive build — when the
           pool is sequential. *)
        let k = if Pool.domains pool = 1 then 0 else min depth 6 in
        let sub_h = depth - k in
        let tree =
          if k = 0 then build_sub depth 0 sorted
          else begin
            let groups = Array.make (1 lsl k) [] in
            (* reverse iteration keeps each group sorted ascending *)
            List.iter
              (fun (p, v) ->
                let g = p lsr sub_h in
                groups.(g) <- (p, v) :: groups.(g))
              (List.rev sorted);
            let subs =
              (* Estimated Poseidon work per subtree (bindings spread
                 over 2^k groups, ~9 µs per hash, sub_h levels each):
                 dense builds keep one chunk per subtree for stealing,
                 sparse ones batch several near-empty subtrees. *)
              let per_group_ms =
                float_of_int (List.length sorted * max 1 sub_h)
                *. 0.009
                /. float_of_int (1 lsl k)
              in
              Pool.init_array pool ~cost:per_group_ms (1 lsl k) (fun g ->
                  build_sub sub_h (g lsl sub_h) groups.(g))
            in
            let rec combine h level =
              if Array.length level = 1 then level.(0)
              else
                combine (h + 1)
                  (Array.init
                     (Array.length level / 2)
                     (fun i ->
                       match (level.(2 * i), level.((2 * i) + 1)) with
                       | Empty, Empty -> Empty
                       | l, r ->
                         Node
                           {
                             h =
                               Poseidon.hash2 (node_hash_at h l)
                                 (node_hash_at h r);
                             l;
                             r;
                           }))
            in
            combine sub_h subs
          end
        in
        Ok { depth; tree; occupied = List.length sorted }
      end
    end
  end

module Im = Map.Make (Int)

(* ---- Batched incremental update ----

   One merged traversal for k updates: the batch is grouped by subtree
   at every level, so a node on the path to several updated slots is
   rehashed once instead of once per slot. Untouched subtrees are
   shared with the input tree, which is what distinguishes this from
   [of_bindings] (a from-scratch build). *)

let update_batch t updates =
  match updates with
  | [] -> Ok t
  | _ ->
    let cap = capacity t in
    if List.exists (fun (p, _) -> p < 0 || p >= cap) updates then
      Error "smt: position out of range"
    else begin
      Zen_obs.Trace.with_span ~cat:"crypto"
        ~args:[ ("updates", string_of_int (List.length updates)) ]
        "smt.update_batch"
      @@ fun () ->
      (* Last write wins per position — the semantics of folding
         [update] left to right over the same list. *)
      let final =
        List.fold_left (fun m (p, v) -> Im.add p v m) Im.empty updates
      in
      let sorted = Im.bindings final in
      (* [go node h base ups] rebuilds the height-[h] subtree rooted at
         leaf range [base, base + 2^h) under the updates [ups] (sorted,
         all within range), returning the new subtree and the change in
         occupied-leaf count. *)
      let rec go node h base ups =
        match ups with
        | [] -> (node, 0)
        | _ ->
          if h = 0 then begin
            let was = match node with Leaf _ -> 1 | _ -> 0 in
            match ups with
            | [ (_, Some v) ] -> (Leaf v, 1 - was)
            | [ (_, None) ] -> (Empty, -was)
            | _ -> assert false (* positions are deduplicated above *)
          end
          else begin
            let l, r =
              match node with
              | Empty -> (Empty, Empty)
              | Node { l; r; _ } -> (l, r)
              | Leaf _ -> assert false (* leaves only live at height 0 *)
            in
            let mid = base + (1 lsl (h - 1)) in
            let l_ups, r_ups = List.partition (fun (p, _) -> p < mid) ups in
            let l, dl = go l (h - 1) base l_ups in
            let r, dr = go r (h - 1) mid r_ups in
            let node =
              match (l, r) with
              | Empty, Empty -> Empty
              | _ ->
                let hl = node_hash_at (h - 1) l
                and hr = node_hash_at (h - 1) r in
                Node { h = Poseidon.hash2 hl hr; l; r }
            in
            (node, dl + dr)
          end
      in
      let tree, d = go t.tree t.depth 0 sorted in
      Ok { t with tree; occupied = t.occupied + d }
    end

type proof = { position : int; siblings : Fp.t list (* leaf-to-root order *) }

let prove t pos =
  check_pos t pos;
  let rec go node h acc =
    if h = 0 then acc
    else begin
      let l, r =
        match node with
        | Empty -> (Empty, Empty)
        | Node { l; r; _ } -> (l, r)
        | Leaf _ -> assert false
      in
      if (pos lsr (h - 1)) land 1 = 0 then
        go l (h - 1) (node_hash_at (h - 1) r :: acc)
      else go r (h - 1) (node_hash_at (h - 1) l :: acc)
    end
  in
  { position = pos; siblings = go t.tree t.depth [] }

let proof_position p = p.position
let proof_siblings p = p.siblings

let verify ~root ~pos ~leaf ~depth proof =
  proof.position = pos
  && List.length proof.siblings = depth
  &&
  let rec go h acc = function
    | [] -> Fp.equal acc root
    | sib :: rest ->
      let acc =
        if (pos lsr h) land 1 = 0 then Poseidon.hash2 acc sib
        else Poseidon.hash2 sib acc
      in
      go (h + 1) acc rest
  in
  go 0 (leaf_hash leaf) proof.siblings

let fold t ~init ~f =
  let rec go node h base acc =
    match node with
    | Empty -> acc
    | Leaf v -> f acc base v
    | Node { l; r; _ } ->
      let acc = go l (h - 1) base acc in
      go r (h - 1) (base + (1 lsl (h - 1))) acc
  in
  go t.tree t.depth 0 init
