(** Merkle hash trees with membership proofs (paper Fig. 2, Def. 2.2).

    Built over {!Hash.t} leaves; the leaf layer is padded with
    {!Hash.zero} to the next power of two. Interior nodes are
    [Hash.tagged "mht.node" [left; right]], leaves are hashed with a
    distinct tag so a leaf can never be confused with an interior node
    (second-preimage hardening). *)

type t

type proof
(** A membership ("Merkle") proof: the sibling path from a leaf to the
    root. Size and verification time are O(log n) in the leaf count —
    experiment E1 measures exactly this. *)

val of_leaves : ?pool:Pool.t -> Hash.t list -> t
(** Builds a tree over data-block hashes. The empty list yields a
    well-defined sentinel tree whose root commits to emptiness.
    [pool] parallelizes each level of the build across domains
    (default {!Pool.sequential}); the resulting tree is bit-identical
    for every domain count. *)

val of_data : ?pool:Pool.t -> string list -> t
(** Convenience: hashes each data block first. *)

val root : t -> Hash.t
val leaf_count : t -> int
val depth : t -> int

val prove : t -> int -> proof
(** [prove t i] is the membership proof for the [i]-th leaf.
    Raises [Invalid_argument] when out of range. *)

val verify : root:Hash.t -> leaf:Hash.t -> proof -> bool
(** Recomputes the root from the leaf and the sibling path. *)

val proof_index : proof -> int
val proof_length : proof -> int
val proof_size_bytes : proof -> int

val proof_to_siblings : proof -> Hash.t list
val proof_of_siblings : index:int -> Hash.t list -> proof

val leaf_hash : Hash.t -> Hash.t
(** The tagged hash applied to each leaf before tree construction. *)
