(** Persistent height → block-hash index.

    Chain states are persistent values sharing structure across
    branches, so the index must support O(log n) functional append and
    lookup — an array would cost O(n) copy per block, and the list the
    seed used made every lookup O(height) (paid once per certificate
    verification). *)

open Zen_crypto

type t

val empty : t
val length : t -> int

val append : t -> Hash.t -> t
(** Records the hash of the block at height [length t]. *)

val get : t -> int -> Hash.t option
(** The hash recorded for the given height; [None] out of range. *)
