open Zen_crypto
open Zendoo

type cert_record = {
  cert : Withdrawal_certificate.t;
  included_in : Hash.t;
  at_height : int;
}

type sc_state = {
  config : Sidechain_config.t;
  balance : Amount.t;
  certs : cert_record list; (* invariant: strictly decreasing epoch ids *)
  nullifiers : Hash.Set.t;
}

type t = { sidechains : sc_state Hash.Map.t }

let empty = { sidechains = Hash.Map.empty }

let reserved id =
  Hash.equal id (Hash.of_raw (String.make Hash.size '\000'))
  || Hash.equal id (Hash.of_raw (String.make Hash.size '\255'))

let register t (config : Sidechain_config.t) ~created_at =
  if Hash.Map.mem config.ledger_id t.sidechains then
    Error "sc register: ledger id already exists"
  else if reserved config.ledger_id then Error "sc register: reserved id"
  else if config.start_block <= created_at then
    Error "sc register: start_block must be in the future"
  else
    Ok
      {
        sidechains =
          Hash.Map.add config.ledger_id
            {
              config;
              balance = Amount.zero;
              certs = [];
              nullifiers = Hash.Set.empty;
            }
            t.sidechains;
      }

let find t id = Hash.Map.find_opt id t.sidechains
let sidechain_ids t = List.map fst (Hash.Map.bindings t.sidechains)
let balance t id = Option.map (fun s -> s.balance) (find t id)

let last_cert sc = match sc.certs with [] -> None | c :: _ -> Some c

let cert_for_epoch sc ~epoch =
  List.find_opt (fun c -> c.cert.Withdrawal_certificate.epoch_id = epoch) sc.certs

let last_certified_epoch sc =
  Option.map (fun c -> c.cert.Withdrawal_certificate.epoch_id) (last_cert sc)

let is_ceased_sc sc ~height =
  Epoch.ceased_at
    (Epoch.of_config sc.config)
    ~last_certified_epoch:(last_certified_epoch sc) ~height

let is_ceased t id ~height =
  match find t id with None -> false | Some sc -> is_ceased_sc sc ~height

let update t id sc = { sidechains = Hash.Map.add id sc t.sidechains }

let credit_ft t (ft : Forward_transfer.t) ~height =
  match find t ft.ledger_id with
  | None -> Error "ft: unknown sidechain"
  | Some sc ->
    if not (Epoch.is_active_at (Epoch.of_config sc.config) ~height) then
      Error "ft: sidechain not yet active"
    else if is_ceased_sc sc ~height then Error "ft: sidechain has ceased"
    else begin
      match Amount.add sc.balance ft.amount with
      | Error e -> Error ("ft: " ^ e)
      | Ok balance -> Ok (update t ft.ledger_id { sc with balance })
    end

let reference_block_for sc =
  match last_cert sc with None -> Hash.zero | Some c -> c.included_in

(* wcert_sysdata epoch-boundary block hashes, resolved on the chain the
   caller queries through [block_hash_at]. Shared by acceptance and by
   the prediction jobs below so both build identical cache keys. *)
let epoch_boundaries sc ~(cert : Withdrawal_certificate.t) ~block_hash_at =
  let schedule = Epoch.of_config sc.config in
  let prev_h = Epoch.last_height schedule ~epoch:(cert.epoch_id - 1) in
  let cur_h = Epoch.last_height schedule ~epoch:cert.epoch_id in
  let resolve h =
    if h < 0 then Some Hash.zero (* before epoch 0: genesis sentinel *)
    else block_hash_at h
  in
  match (resolve prev_h, resolve cur_h) with
  | Some a, Some b -> Some (a, b)
  | _ -> None

let wcert_verify_job t ~(cert : Withdrawal_certificate.t) ~block_hash_at =
  match find t cert.ledger_id with
  | None -> None
  | Some sc ->
    Option.map
      (fun (end_prev_epoch, end_epoch) ->
        Verifier.wcert_job ~vk:sc.config.wcert_vk ~cert ~end_prev_epoch
          ~end_epoch)
      (epoch_boundaries sc ~cert ~block_hash_at)

(* The aggregation leaf for one certificate, paired with the exact
   per-certificate job the leaf stands in for. Built from the same
   boundary resolution as [wcert_verify_job], so the leaf digest and
   the job's cache key bind the same verification instance — the
   aggregated and per-certificate paths decide identically by
   construction. *)
let wcert_leaf t ~(cert : Withdrawal_certificate.t) ~block_hash_at =
  match find t cert.ledger_id with
  | None -> None
  | Some sc ->
    Option.map
      (fun (end_prev_epoch, end_epoch) ->
        let vk = sc.config.wcert_vk in
        let leaf =
          {
            Zen_snark.Aggregate.sc_id = cert.ledger_id;
            epoch = cert.epoch_id;
            cert_hash = Withdrawal_certificate.hash cert;
            vk_digest = Zen_snark.Backend.vk_digest vk;
            proof_bytes = Zen_snark.Backend.proof_encode cert.proof;
            end_prev_epoch;
            end_epoch;
          }
        in
        (leaf, Verifier.wcert_job ~vk ~cert ~end_prev_epoch ~end_epoch))
      (epoch_boundaries sc ~cert ~block_hash_at)

let withdrawal_verify_job t ~(request : Mainchain_withdrawal.t) =
  match find t request.ledger_id with
  | None -> None
  | Some sc ->
    let vk =
      match request.kind with
      | Mainchain_withdrawal.Btr -> sc.config.btr_vk
      | Mainchain_withdrawal.Csw -> sc.config.csw_vk
    in
    Option.map
      (fun vk ->
        Verifier.withdrawal_job ~vk ~request
          ~reference_block:(reference_block_for sc))
      vk

let accept_cert ?(settled = Hash.Set.empty) t
    ~(cert : Withdrawal_certificate.t) ~block_hash ~height ~block_hash_at =
  let ( let* ) = Result.bind in
  let* sc =
    match find t cert.ledger_id with
    | None -> Error "cert: unknown sidechain"
    | Some sc -> Ok sc
  in
  let* () = Verifier.check_wcert_statics ~config:sc.config ~cert in
  let* () =
    if is_ceased_sc sc ~height then Error "cert: sidechain has ceased"
    else Ok ()
  in
  let schedule = Epoch.of_config sc.config in
  let* () =
    if Epoch.in_submission_window schedule ~epoch:cert.epoch_id ~height then
      Ok ()
    else Error "cert: outside the submission window"
  in
  (* Quality rule: a certificate for an epoch that already has one must
     strictly improve on it (§4.1.2 "Withdrawal certificate quality"). *)
  let replaced = cert_for_epoch sc ~epoch:cert.epoch_id in
  let* () =
    match replaced with
    | Some prev when cert.quality <= prev.cert.quality ->
      Error "cert: quality not higher than the accepted certificate"
    | _ -> Ok ()
  in
  (* Sequential certification: a fresh certificate must be for the
     earliest uncertified epoch. When submit_len > epoch_len the
     submission windows overlap, and without this rule epoch e+1 could
     be certified while epoch e is not — permanently stranding e:
     [Epoch.ceased_at] keeps tracking last_certified + 1, whose own
     window has already closed, so the chain neither ceases nor can
     ever certify the gap. Replacements (same epoch, higher quality)
     are exempt — they don't change which epochs are certified. *)
  let* () =
    let next_due =
      match last_certified_epoch sc with None -> 0 | Some e -> e + 1
    in
    match replaced with
    | Some _ -> Ok ()
    | None ->
      if cert.epoch_id = next_due then Ok ()
      else
        Error
          (Printf.sprintf
             "cert: epoch %d out of order (next uncertified epoch is %d)"
             cert.epoch_id next_due)
  in
  (* wcert_sysdata: epoch boundary block hashes from this chain. *)
  let* end_prev_epoch, end_epoch =
    match epoch_boundaries sc ~cert ~block_hash_at with
    | Some pair -> Ok pair
    | None -> Error "cert: epoch boundary block not on this chain"
  in
  let* () =
    let job =
      Verifier.wcert_job ~vk:sc.config.wcert_vk ~cert ~end_prev_epoch
        ~end_epoch
    in
    (* A key in [settled] was covered by this block's already-verified
       aggregate: the aggregate's leaves bind exactly the inputs of this
       job's key, so membership implies this verification would return
       true — skip it (that skip is the whole point of aggregation). *)
    if Hash.Set.mem (Verifier.job_key job) settled || Verifier.run_job job
    then Ok ()
    else Error "cert: SNARK proof rejected"
  in
  (* Safeguard: restore the replaced certificate's amount first, then
     debit this one; total withdrawals can never exceed the balance. *)
  let* withdrawn = Withdrawal_certificate.total_withdrawn cert in
  let* intermediate =
    match replaced with
    | None -> Ok sc.balance
    | Some prev -> (
      match Withdrawal_certificate.total_withdrawn prev.cert with
      | Error e -> Error e
      | Ok prev_amt -> (
        match Amount.add sc.balance prev_amt with
        | Error e -> Error e
        | Ok v -> Ok v))
  in
  let* balance =
    match Amount.sub intermediate withdrawn with
    | Error _ -> Error "cert: withdrawal exceeds sidechain balance (safeguard)"
    | Ok b -> Ok b
  in
  let record = { cert; included_in = block_hash; at_height = height } in
  let certs =
    record
    :: List.filter
         (fun c -> c.cert.Withdrawal_certificate.epoch_id <> cert.epoch_id)
         sc.certs
  in
  Ok (update t cert.ledger_id { sc with balance; certs }, replaced)

let check_withdrawal t ~(request : Mainchain_withdrawal.t) ~height =
  let ( let* ) = Result.bind in
  let* sc =
    match find t request.ledger_id with
    | None -> Error "withdrawal: unknown sidechain"
    | Some sc -> Ok sc
  in
  let* () = Verifier.check_withdrawal_statics ~config:sc.config ~request in
  let* () =
    if Hash.Set.mem request.nullifier sc.nullifiers then
      Error "withdrawal: nullifier already used"
    else Ok ()
  in
  let ceased = is_ceased_sc sc ~height in
  let* vk =
    match request.kind with
    | Mainchain_withdrawal.Btr ->
      if ceased then Error "btr: sidechain has ceased"
      else begin
        match sc.config.btr_vk with
        | None -> Error "btr: disabled for this sidechain"
        | Some vk -> Ok vk
      end
    | Mainchain_withdrawal.Csw ->
      if not ceased then Error "csw: sidechain is still active"
      else begin
        match sc.config.csw_vk with
        | None -> Error "csw: disabled for this sidechain"
        | Some vk -> Ok vk
      end
  in
  let* () =
    match request.kind with
    | Mainchain_withdrawal.Csw ->
      if Amount.( <= ) request.amount sc.balance then Ok ()
      else Error "csw: amount exceeds sidechain balance (safeguard)"
    | Mainchain_withdrawal.Btr -> Ok ()
  in
  let reference_block = reference_block_for sc in
  if Verifier.verify_withdrawal ~vk ~request ~reference_block then Ok ()
  else Error "withdrawal: SNARK proof rejected"

let apply_withdrawal t ~(request : Mainchain_withdrawal.t) ~height =
  match check_withdrawal t ~request ~height with
  | Error e -> Error e
  | Ok () ->
    let sc = Option.get (find t request.ledger_id) in
    let nullifiers =
      Hash.Set.add request.nullifier sc.nullifiers
    in
    let balance_result =
      match request.kind with
      | Mainchain_withdrawal.Csw -> Amount.sub sc.balance request.amount
      | Mainchain_withdrawal.Btr -> Ok sc.balance
    in
    (match balance_result with
    | Error e -> Error ("withdrawal: " ^ e)
    | Ok balance ->
      Ok (update t request.ledger_id { sc with nullifiers; balance }))
