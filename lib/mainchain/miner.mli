(** Block-template construction and mining.

    Selects mempool transactions greedily against a trial state (so a
    template never contains an invalid or conflicting transaction),
    pays subsidy + fees to the miner address, and seals the block with
    proof of work. *)

open Zen_crypto
open Zendoo

val build_block :
  ?pool:Pool.t ->
  ?aggregate:bool ->
  Chain.t ->
  time:int ->
  miner_addr:Hash.t ->
  candidates:Tx.t list ->
  (Block.t * Tx.t list, string) result
(** Returns the sealed block and the candidate transactions that were
    skipped (each invalid against the evolving trial state). [pool]
    batch-verifies the candidates' proofs up front
    ({!Chain_state.prewarm_verifier}) and parallelises the commitment
    build; selection is identical for every domain count.

    With [aggregate] (default false), the selected certificates' proofs
    are folded into one {!Zen_snark.Aggregate} carried in the block, so
    validators verify a single proof regardless of sidechain count.
    The prover-side cost (one constant-size wrap per certificate plus
    the merge tree, fanned out on [pool]) is paid here; transaction
    selection is unchanged. If the block has no certificates or any
    leaf cannot be formed, the block ships without an aggregate —
    absence is the valid per-certificate fallback. *)

val mine_empty :
  Chain.t -> time:int -> miner_addr:Hash.t -> (Block.t, string) result

val coinbase_for :
  Chain.t -> height:int -> miner_addr:Hash.t -> fees:Amount.t -> Tx.t
