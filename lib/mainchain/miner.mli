(** Block-template construction and mining.

    Selects mempool transactions greedily against a trial state (so a
    template never contains an invalid or conflicting transaction),
    pays subsidy + fees to the miner address, and seals the block with
    proof of work. *)

open Zen_crypto
open Zendoo

val build_block :
  ?pool:Pool.t ->
  Chain.t ->
  time:int ->
  miner_addr:Hash.t ->
  candidates:Tx.t list ->
  (Block.t * Tx.t list, string) result
(** Returns the sealed block and the candidate transactions that were
    skipped (each invalid against the evolving trial state). [pool]
    batch-verifies the candidates' proofs up front
    ({!Chain_state.prewarm_verifier}) and parallelises the commitment
    build; selection is identical for every domain count. *)

val mine_empty :
  Chain.t -> time:int -> miner_addr:Hash.t -> (Block.t, string) result

val coinbase_for :
  Chain.t -> height:int -> miner_addr:Hash.t -> fees:Amount.t -> Tx.t
