(** Mainchain-side sidechain ledger: the registry of sidechains and the
    per-sidechain state the mainchain maintains — balance (withdrawal
    safeguard, §4.1.2.2), accepted certificates per epoch with the
    quality rule (§4.1.2), used nullifiers, and cease status (Def. 4.2).

    This module holds the rules that don't need the UTXO set; coin
    movement for certificate payouts and CSWs is carried out by
    {!Chain_state}, which consumes the decisions made here. *)

open Zen_crypto
open Zendoo

type cert_record = {
  cert : Withdrawal_certificate.t;
  included_in : Hash.t;  (** MC block hash carrying the certificate *)
  at_height : int;
}

type sc_state = {
  config : Sidechain_config.t;
  balance : Amount.t;  (** safeguard balance *)
  certs : cert_record list;  (** best certificate per epoch, newest first *)
  nullifiers : Hash.Set.t;
}

type t

val empty : t

val register : t -> Sidechain_config.t -> created_at:int -> (t, string) result
(** Fails on duplicate or reserved ledger id, or when [start_block] is
    not strictly in the future. *)

val find : t -> Hash.t -> sc_state option
val sidechain_ids : t -> Hash.t list

val is_ceased : t -> Hash.t -> height:int -> bool
(** Def. 4.2, evaluated at a chain tip of the given height. Unknown
    sidechains are not "ceased" — they never existed. *)

val last_cert : sc_state -> cert_record option
val cert_for_epoch : sc_state -> epoch:int -> cert_record option

val credit_ft : t -> Forward_transfer.t -> height:int -> (t, string) result
(** Applies a forward transfer: destination exists, is active and not
    ceased; the balance grows. *)

val accept_cert :
  ?settled:Hash.Set.t ->
  t ->
  cert:Withdrawal_certificate.t ->
  block_hash:Hash.t ->
  height:int ->
  block_hash_at:(int -> Hash.t option) ->
  (t * cert_record option, string) result
(** Full certificate acceptance: statics, epoch window, quality rule,
    sequential certification (a fresh certificate must be for the
    earliest uncertified epoch — overlapping submission windows from
    [submit_len > epoch_len] must never strand an epoch), SNARK
    verification against the epoch-boundary block hashes (resolved
    through [block_hash_at]), safeguard. On success returns the state
    and the certificate record this one *replaces* (same epoch, lower
    quality), whose payouts the chain must claw back.

    [settled] carries the {!Verifier.job_key}s of certificate
    verifications already discharged by the enclosing block's verified
    aggregate; a key found there skips the individual SNARK
    verification (the decision is provably the same — the aggregate's
    leaves bind the same inputs as the job key). *)

val check_withdrawal :
  t ->
  request:Mainchain_withdrawal.t ->
  height:int ->
  (unit, string) result
(** Shared BTR/CSW admission: registration, schema, nullifier
    freshness, SNARK proof, and kind-specific status (BTR requires an
    active sidechain, CSW a ceased one) plus safeguard for CSW. *)

val apply_withdrawal :
  t -> request:Mainchain_withdrawal.t -> height:int -> (t, string) result
(** [check_withdrawal] then record the nullifier; for CSW also debit
    the balance. *)

val reference_block_for : sc_state -> Hash.t
(** [H(B_w)] of §4.1.2.1: the block that carried the latest accepted
    certificate, or {!Hash.zero} when none exists yet. *)

val wcert_verify_job :
  t ->
  cert:Withdrawal_certificate.t ->
  block_hash_at:(int -> Hash.t option) ->
  Verifier.job option
(** The exact SNARK verification {!accept_cert} will run for this
    certificate against the current state — used to prewarm the
    {!Verifier.Cache} in a batch before transactions are applied one by
    one. [None] when the sidechain is unknown or an epoch boundary is
    unresolvable (acceptance would fail before verifying anyway). *)

val wcert_leaf :
  t ->
  cert:Withdrawal_certificate.t ->
  block_hash_at:(int -> Hash.t option) ->
  (Zen_snark.Aggregate.leaf * Verifier.job) option
(** The certificate's aggregation leaf, paired with the per-certificate
    verification job it stands in for. Leaf digest and job key bind the
    same instance (vk digest, certificate hash, proof bytes, epoch
    boundaries), which is what makes aggregated and per-certificate
    validation decide identically. Same [None] conditions as
    {!wcert_verify_job}. *)

val withdrawal_verify_job :
  t -> request:Mainchain_withdrawal.t -> Verifier.job option
(** Same prediction for {!check_withdrawal}'s BTR/CSW proof. The
    reference block is read from the current state; if an earlier
    transaction of the same block changes it, the prediction is merely
    a wasted cache entry — acceptance recomputes its own key. *)

val balance : t -> Hash.t -> Amount.t option
