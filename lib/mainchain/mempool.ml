open Zen_crypto

type t = { order : Tx.t list (* newest first *); ids : Hash.Set.t }

let empty = { order = []; ids = Hash.Set.empty }

let add t tx =
  let id = Tx.txid tx in
  if Hash.Set.mem id t.ids then t
  else { order = tx :: t.order; ids = Hash.Set.add id t.ids }

let add_list t txs = List.fold_left add t txs

let remove_included t (b : Block.t) =
  let included = Hash.Set.of_list (List.map Tx.txid b.txs) in
  {
    order =
      List.filter (fun tx -> not (Hash.Set.mem (Tx.txid tx) included)) t.order;
    ids = Hash.Set.diff t.ids included;
  }

let remove t id =
  if not (Hash.Set.mem id t.ids) then t
  else
    {
      order = List.filter (fun tx -> not (Hash.equal (Tx.txid tx) id)) t.order;
      ids = Hash.Set.remove id t.ids;
    }

(* Mempool recovery after a reorg: transactions of the abandoned branch
   return to the pool unless the new branch already carries them.
   Coinbases stay with their dead blocks. *)
let reinject_disconnected t ~disconnected ~connected =
  let included =
    List.fold_left
      (fun s (b : Block.t) ->
        List.fold_left (fun s tx -> Hash.Set.add (Tx.txid tx) s) s b.txs)
      Hash.Set.empty connected
  in
  List.fold_left
    (fun m (b : Block.t) ->
      List.fold_left
        (fun m tx ->
          match tx with
          | Tx.Coinbase _ -> m
          | _ -> if Hash.Set.mem (Tx.txid tx) included then m else add m tx)
        m b.txs)
    t disconnected

let txs t = List.rev t.order
let mem t id = Hash.Set.mem id t.ids
let size t = List.length t.order
