open Zen_crypto

type t = {
  order : Tx.t list; (* newest first *)
  ids : Hash.Set.t;
  count : int; (* |order|, carried so [size] is O(1) *)
}

let empty = { order = []; ids = Hash.Set.empty; count = 0 }

let op_bounds = Zen_obs.Histogram.exponential_bounds ~lo:1e-7 ~factor:4. ~n:8

let add_s =
  Zen_obs.Histogram.make ~help:"mempool add-batch latency" ~bounds:op_bounds
    "mempool.add.seconds"

let remove_included_s =
  Zen_obs.Histogram.make ~help:"mempool block-connect purge latency"
    ~bounds:op_bounds "mempool.remove_included.seconds"

let reinject_s =
  Zen_obs.Histogram.make ~help:"mempool reorg-reinjection latency"
    ~bounds:op_bounds "mempool.reinject.seconds"

let add t tx =
  let id = Tx.txid tx in
  if Hash.Set.mem id t.ids then t
  else
    {
      order = tx :: t.order;
      ids = Hash.Set.add id t.ids;
      count = t.count + 1;
    }

let add_list t txs =
  Zen_obs.Histogram.time add_s @@ fun () -> List.fold_left add t txs

let remove_included t (b : Block.t) =
  Zen_obs.Histogram.time remove_included_s @@ fun () ->
  let included = Hash.Set.of_list (List.map Tx.txid b.txs) in
  let kept = ref 0 in
  let order =
    List.filter
      (fun tx ->
        let keep = not (Hash.Set.mem (Tx.txid tx) included) in
        if keep then incr kept;
        keep)
      t.order
  in
  { order; ids = Hash.Set.diff t.ids included; count = !kept }

(* Ids are unique in the pool, so removal can stop at the first hit and
   share the untouched tail instead of refiltering the whole list. *)
let rec drop_first id acc = function
  | [] -> List.rev acc
  | tx :: rest ->
    if Hash.equal (Tx.txid tx) id then List.rev_append acc rest
    else drop_first id (tx :: acc) rest

let remove t id =
  if not (Hash.Set.mem id t.ids) then t
  else
    {
      order = drop_first id [] t.order;
      ids = Hash.Set.remove id t.ids;
      count = t.count - 1;
    }

(* Mempool recovery after a reorg: transactions of the abandoned branch
   return to the pool unless the new branch already carries them.
   Coinbases stay with their dead blocks. *)
let reinject_disconnected t ~disconnected ~connected =
  Zen_obs.Histogram.time reinject_s @@ fun () ->
  let included =
    List.fold_left
      (fun s (b : Block.t) ->
        List.fold_left (fun s tx -> Hash.Set.add (Tx.txid tx) s) s b.txs)
      Hash.Set.empty connected
  in
  List.fold_left
    (fun m (b : Block.t) ->
      List.fold_left
        (fun m tx ->
          match tx with
          | Tx.Coinbase _ -> m
          | _ -> if Hash.Set.mem (Tx.txid tx) included then m else add m tx)
        m b.txs)
    t disconnected

let txs t = List.rev t.order
let mem t id = Hash.Set.mem id t.ids
let size t = t.count
