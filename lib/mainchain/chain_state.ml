open Zen_crypto
open Zendoo

type params = {
  pow : Pow.params;
  subsidy : Amount.t;
  coinbase_maturity : int;
}

let default_params =
  {
    pow = Pow.default;
    subsidy = Amount.of_int_exn 5_000_000_000;
    coinbase_maturity = 2;
  }

type t = {
  params : params;
  height : int;
  tip_hash : Hash.t;
  time : int;
  utxos : Utxo_set.t;
  scs : Sc_ledger.t;
  hash_by_height : Hash.t list;
}

let of_genesis params (g : Block.t) =
  {
    params;
    height = 0;
    tip_hash = Block.hash g;
    time = g.header.time;
    utxos = Utxo_set.empty;
    scs = Sc_ledger.empty;
    hash_by_height = [ Block.hash g ];
  }

let block_hash_at t h =
  if h < 0 || h > t.height then None
  else List.nth_opt t.hash_by_height (t.height - h)

let spendable t outpoint ~at_height =
  match Utxo_set.find t.utxos outpoint with
  | Some coin when at_height > coin.spendable_after -> Some coin
  | Some _ | None -> None

let sc_balance t id = Sc_ledger.balance t.scs id
let circulating t = Utxo_set.total_value t.utxos

let ( let* ) = Result.bind

let check_input t ~height ~sighash (input : Tx.input) =
  let* coin =
    match spendable t input.outpoint ~at_height:height with
    | Some c -> Ok c
    | None -> Error "tx: input missing, spent, or immature"
  in
  let* () =
    if Hash.equal (Schnorr.pk_hash input.pk) coin.addr then Ok ()
    else Error "tx: key does not own the spent output"
  in
  if Schnorr.verify input.pk (Hash.to_raw sighash) input.signature then Ok coin
  else Error "tx: invalid signature"

let distinct_outpoints inputs =
  let rec go seen = function
    | [] -> true
    | (i : Tx.input) :: rest ->
      let k = Tx.outpoint_encode i.outpoint in
      if List.mem k seen then false else go (k :: seen) rest
  in
  go [] inputs

let add_outputs utxos ~txid ~spendable_after outputs =
  List.fold_left
    (fun (utxos, vout) output ->
      match output with
      | Tx.Ft _ -> (utxos, vout + 1) (* unspendable: coins are destroyed *)
      | Tx.Coin { addr; amount } ->
        ( Utxo_set.add utxos { Tx.txid; vout }
            { Utxo_set.addr; amount; spendable_after },
          vout + 1 ))
    (utxos, 0) outputs
  |> fst

(* Outpoints of the coin payouts a certificate created, for claw-back
   when a higher-quality certificate replaces it within the window. *)
let cert_payout_outpoints (record : Sc_ledger.cert_record) =
  let txid = Tx.txid (Tx.Certificate record.cert) in
  List.mapi (fun i (_ : Backward_transfer.t) -> { Tx.txid; vout = i })
    record.cert.bt_list

let apply_tx t ~height ~block_hash tx =
  match tx with
  | Tx.Coinbase _ -> Error "tx: coinbase outside block context"
  | Tx.Transfer { inputs; outputs } ->
    let* () =
      if inputs = [] then Error "tx: transfer without inputs" else Ok ()
    in
    let* () =
      if distinct_outpoints inputs then Ok ()
      else Error "tx: duplicate input"
    in
    let sighash =
      Tx.sighash ~inputs:(List.map (fun (i : Tx.input) -> i.outpoint) inputs) ~outputs
    in
    let* coins =
      List.fold_left
        (fun acc input ->
          let* cs = acc in
          let* c = check_input t ~height ~sighash input in
          Ok (c :: cs))
        (Ok []) inputs
    in
    let* value_in = Amount.sum (List.map (fun (c : Utxo_set.coin) -> c.amount) coins) in
    let* value_out = Tx.transfer_value_out outputs in
    let* fee =
      match Amount.sub value_in value_out with
      | Ok f -> Ok f
      | Error _ -> Error "tx: outputs exceed inputs"
    in
    (* Forward transfers touch the sidechain ledger (§4.1.1). *)
    let* scs =
      List.fold_left
        (fun acc ft ->
          let* scs = acc in
          Sc_ledger.credit_ft scs ft ~height)
        (Ok t.scs) (Tx.forward_transfers tx)
    in
    let utxos =
      List.fold_left
        (fun u (i : Tx.input) -> Utxo_set.remove u i.outpoint)
        t.utxos inputs
    in
    let utxos =
      add_outputs utxos ~txid:(Tx.txid tx) ~spendable_after:height outputs
    in
    Ok ({ t with utxos; scs }, fee)
  | Tx.Sc_create config ->
    let* scs = Sc_ledger.register t.scs config ~created_at:height in
    Ok ({ t with scs }, Amount.zero)
  | Tx.Certificate cert ->
    let* scs, replaced =
      Sc_ledger.accept_cert t.scs ~cert ~block_hash ~height
        ~block_hash_at:(block_hash_at t)
    in
    (* Claw back the payouts of a replaced lower-quality certificate;
       their maturity guarantees they are still unspent. *)
    let utxos =
      match replaced with
      | None -> t.utxos
      | Some record ->
        List.fold_left Utxo_set.remove t.utxos (cert_payout_outpoints record)
    in
    (* Payouts mature only after the submission window closes, so a
       better certificate can still displace them. *)
    let sc = Option.get (Sc_ledger.find scs cert.ledger_id) in
    let _, window_end =
      Epoch.submission_window
        (Epoch.of_config sc.config)
        ~epoch:cert.epoch_id
    in
    let txid = Tx.txid tx in
    let utxos =
      List.fold_left
        (fun (u, vout) (bt : Backward_transfer.t) ->
          ( Utxo_set.add u { Tx.txid; vout }
              {
                Utxo_set.addr = bt.receiver_addr;
                amount = bt.amount;
                spendable_after = window_end;
              },
            vout + 1 ))
        (utxos, 0) cert.bt_list
      |> fst
    in
    Ok ({ t with utxos; scs }, Amount.zero)
  | Tx.Withdrawal_request w -> (
    let* scs = Sc_ledger.apply_withdrawal t.scs ~request:w ~height in
    match w.kind with
    | Mainchain_withdrawal.Btr -> Ok ({ t with scs }, Amount.zero)
    | Mainchain_withdrawal.Csw ->
      (* A valid CSW pays the receiver directly (§4.1.2.1). *)
      let utxos =
        Utxo_set.add t.utxos
          { Tx.txid = Tx.txid tx; vout = 0 }
          {
            Utxo_set.addr = w.receiver;
            amount = w.amount;
            spendable_after = height;
          }
      in
      Ok ({ t with utxos; scs }, Amount.zero))

(* Every SNARK verification this state would run if the given
   transactions were applied now, as cacheable jobs. Predictions use
   the pre-application state; a transaction that changes an input of a
   later one's verification (e.g. a certificate moving the reference
   block of a CSW in the same block) merely turns that prediction into
   an unused cache entry — the apply path computes its own key. *)
let proof_jobs t txs =
  List.filter_map
    (fun tx ->
      match tx with
      | Tx.Certificate cert ->
        Sc_ledger.wcert_verify_job t.scs ~cert
          ~block_hash_at:(block_hash_at t)
      | Tx.Withdrawal_request w ->
        Sc_ledger.withdrawal_verify_job t.scs ~request:w
      | Tx.Coinbase _ | Tx.Transfer _ | Tx.Sc_create _ -> None)
    txs

let prewarm_verifier ?pool t txs =
  if Verifier.Cache.enabled () then begin
    match proof_jobs t txs with
    | [] -> ()
    | jobs -> ignore (Verifier.verify_batch ?pool jobs : bool list)
  end

let apply_block ?pool t (b : Block.t) =
  let* () = Block.validate_structure ?pool ~pow:t.params.pow b in
  let* () =
    if Hash.equal b.header.prev t.tip_hash then Ok ()
    else Error "block: parent is not the current tip"
  in
  let* () =
    if b.header.height = t.height + 1 then Ok ()
    else Error "block: height discontinuity"
  in
  let height = b.header.height in
  let block_hash = Block.hash b in
  let* coinbase, rest =
    match b.txs with
    | Tx.Coinbase { height = cb_height; reward } :: rest ->
      Ok (Some (cb_height, reward), rest)
    | [] -> Error "block: empty (coinbase required)"
    | _ -> Error "block: first transaction must be the coinbase"
  in
  (* Batch-verify the block's proofs up front (fanned out on [pool]);
     the sequential application below then decides through the cache. *)
  prewarm_verifier ?pool t rest;
  let* state, fees =
    List.fold_left
      (fun acc tx ->
        let* s, fees = acc in
        let* s, fee = apply_tx s ~height ~block_hash tx in
        match Amount.add fees fee with
        | Ok fees -> Ok (s, fees)
        | Error e -> Error e)
      (Ok (t, Amount.zero))
      rest
  in
  let* utxos =
    match coinbase with
    | None -> Ok state.utxos
    | Some (_, reward) ->
      let* allowed =
        match Amount.add t.params.subsidy fees with
        | Ok a -> Ok a
        | Error e -> Error e
      in
      let* () =
        if Amount.( <= ) reward.amount allowed then Ok ()
        else Error "block: coinbase exceeds subsidy plus fees"
      in
      let cb_tx = Tx.Coinbase { height; reward } in
      Ok
        (Utxo_set.add state.utxos
           { Tx.txid = Tx.txid cb_tx; vout = 0 }
           {
             Utxo_set.addr = reward.addr;
             amount = reward.amount;
             spendable_after = height + t.params.coinbase_maturity;
           })
  in
  Ok
    {
      state with
      utxos;
      height;
      tip_hash = block_hash;
      time = b.header.time;
      hash_by_height = block_hash :: t.hash_by_height;
    }
