open Zen_crypto
open Zendoo

type params = {
  pow : Pow.params;
  subsidy : Amount.t;
  coinbase_maturity : int;
}

let default_params =
  {
    pow = Pow.default;
    subsidy = Amount.of_int_exn 5_000_000_000;
    coinbase_maturity = 2;
  }

type t = {
  params : params;
  height : int;
  tip_hash : Hash.t;
  time : int;
  utxos : Utxo_set.t;
  scs : Sc_ledger.t;
  hash_by_height : Height_index.t;
}

let of_genesis params (g : Block.t) =
  {
    params;
    height = 0;
    tip_hash = Block.hash g;
    time = g.header.time;
    utxos = Utxo_set.empty;
    scs = Sc_ledger.empty;
    hash_by_height = Height_index.append Height_index.empty (Block.hash g);
  }

let block_hash_at t h = Height_index.get t.hash_by_height h

let spendable t outpoint ~at_height =
  match Utxo_set.find t.utxos outpoint with
  | Some coin when at_height > coin.spendable_after -> Some coin
  | Some _ | None -> None

let sc_balance t id = Sc_ledger.balance t.scs id
let circulating t = Utxo_set.total_value t.utxos

let ( let* ) = Result.bind

let check_input t ~height ~sighash (input : Tx.input) =
  let* coin =
    match spendable t input.outpoint ~at_height:height with
    | Some c -> Ok c
    | None -> Error "tx: input missing, spent, or immature"
  in
  let* () =
    if Hash.equal (Schnorr.pk_hash input.pk) coin.addr then Ok ()
    else Error "tx: key does not own the spent output"
  in
  if Schnorr.verify input.pk (Hash.to_raw sighash) input.signature then Ok coin
  else Error "tx: invalid signature"

(* Single hashed-membership pass — [List.mem] over the encoded strings
   was O(n²) per transaction. *)
let distinct_outpoints outpoints =
  let seen = Hashtbl.create 16 in
  let rec go = function
    | [] -> true
    | o :: rest ->
      let k = Tx.outpoint_encode o in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        go rest
      end
  in
  go outpoints

let output_changes ~txid ~spendable_after outputs =
  List.fold_left
    (fun (acc, vout) output ->
      match output with
      | Tx.Ft _ -> (acc, vout + 1) (* unspendable: coins are destroyed *)
      | Tx.Coin { addr; amount } ->
        ( ({ Tx.txid; vout }, Some { Utxo_set.addr; amount; spendable_after })
          :: acc,
          vout + 1 ))
    ([], 0) outputs
  |> fst |> List.rev

(* Outpoints of the coin payouts a certificate created, for claw-back
   when a higher-quality certificate replaces it within the window. *)
let cert_payout_outpoints (record : Sc_ledger.cert_record) =
  let txid = Tx.txid (Tx.Certificate record.cert) in
  List.mapi (fun i (_ : Backward_transfer.t) -> { Tx.txid; vout = i })
    record.cert.bt_list

let apply_tx ?(settled = Hash.Set.empty) t ~height ~block_hash tx =
  match tx with
  | Tx.Coinbase _ -> Error "tx: coinbase outside block context"
  | Tx.Transfer { inputs; outputs } ->
    let* () =
      if inputs = [] then Error "tx: transfer without inputs" else Ok ()
    in
    let* () =
      if
        distinct_outpoints
          (List.map (fun (i : Tx.input) -> i.outpoint) inputs)
      then Ok ()
      else Error "tx: duplicate input"
    in
    let sighash =
      Tx.sighash ~inputs:(List.map (fun (i : Tx.input) -> i.outpoint) inputs) ~outputs
    in
    let* coins =
      List.fold_left
        (fun acc input ->
          let* cs = acc in
          let* c = check_input t ~height ~sighash input in
          Ok (c :: cs))
        (Ok []) inputs
    in
    let* value_in = Amount.sum (List.map (fun (c : Utxo_set.coin) -> c.amount) coins) in
    let* value_out = Tx.transfer_value_out outputs in
    let* fee =
      match Amount.sub value_in value_out with
      | Ok f -> Ok f
      | Error _ -> Error "tx: outputs exceed inputs"
    in
    (* Forward transfers touch the sidechain ledger (§4.1.1). *)
    let* scs =
      List.fold_left
        (fun acc ft ->
          let* scs = acc in
          Sc_ledger.credit_ft scs ft ~height)
        (Ok t.scs) (Tx.forward_transfers tx)
    in
    (* One batched coin-flip pass: spent inputs out, fresh outputs in. *)
    let utxos =
      Utxo_set.apply_batch t.utxos
        (List.map (fun (i : Tx.input) -> (i.outpoint, None)) inputs
        @ output_changes ~txid:(Tx.txid tx) ~spendable_after:height outputs)
    in
    Ok ({ t with utxos; scs }, fee)
  | Tx.Sc_create config ->
    let* scs = Sc_ledger.register t.scs config ~created_at:height in
    Ok ({ t with scs }, Amount.zero)
  | Tx.Certificate cert ->
    let* scs, replaced =
      Sc_ledger.accept_cert ~settled t.scs ~cert ~block_hash ~height
        ~block_hash_at:(block_hash_at t)
    in
    (* Claw back the payouts of a replaced lower-quality certificate;
       their maturity guarantees they are still unspent. *)
    let utxos =
      match replaced with
      | None -> t.utxos
      | Some record ->
        Utxo_set.apply_batch t.utxos
          (List.map (fun o -> (o, None)) (cert_payout_outpoints record))
    in
    (* Payouts mature only after the submission window closes, so a
       better certificate can still displace them. *)
    let sc = Option.get (Sc_ledger.find scs cert.ledger_id) in
    let _, window_end =
      Epoch.submission_window
        (Epoch.of_config sc.config)
        ~epoch:cert.epoch_id
    in
    let txid = Tx.txid tx in
    let utxos =
      List.fold_left
        (fun (u, vout) (bt : Backward_transfer.t) ->
          ( Utxo_set.add u { Tx.txid; vout }
              {
                Utxo_set.addr = bt.receiver_addr;
                amount = bt.amount;
                spendable_after = window_end;
              },
            vout + 1 ))
        (utxos, 0) cert.bt_list
      |> fst
    in
    Ok ({ t with utxos; scs }, Amount.zero)
  | Tx.Withdrawal_request w -> (
    let* scs = Sc_ledger.apply_withdrawal t.scs ~request:w ~height in
    match w.kind with
    | Mainchain_withdrawal.Btr -> Ok ({ t with scs }, Amount.zero)
    | Mainchain_withdrawal.Csw ->
      (* A valid CSW pays the receiver directly (§4.1.2.1). *)
      let utxos =
        Utxo_set.add t.utxos
          { Tx.txid = Tx.txid tx; vout = 0 }
          {
            Utxo_set.addr = w.receiver;
            amount = w.amount;
            spendable_after = height;
          }
      in
      Ok ({ t with utxos; scs }, Amount.zero))

(* Every SNARK verification this state would run if the given
   transactions were applied now, as cacheable jobs. Predictions use
   the pre-application state; a transaction that changes an input of a
   later one's verification (e.g. a certificate moving the reference
   block of a CSW in the same block) merely turns that prediction into
   an unused cache entry — the apply path computes its own key. *)
let proof_jobs t txs =
  List.filter_map
    (fun tx ->
      match tx with
      | Tx.Certificate cert ->
        Sc_ledger.wcert_verify_job t.scs ~cert
          ~block_hash_at:(block_hash_at t)
      | Tx.Withdrawal_request w ->
        Sc_ledger.withdrawal_verify_job t.scs ~request:w
      | Tx.Coinbase _ | Tx.Transfer _ | Tx.Sc_create _ -> None)
    txs

let prewarm_verifier ?pool t txs =
  if Verifier.Cache.enabled () then begin
    match proof_jobs t txs with
    | [] -> ()
    | jobs -> ignore (Verifier.verify_batch ?pool jobs : bool list)
  end

(* Process-wide diagnostics of the aggregation path (mirrors the
   Verifier.Cache stats discipline): how many blocks validated through
   an aggregate, how many certificate verifications that settled, and
   how many aggregates were rejected. *)
module Aggregate_stats = struct
  type t = {
    blocks : int;
    certs_settled : int;
    proof_checks : int;
    rejected : int;
  }

  let blocks_c = Atomic.make 0
  let certs_c = Atomic.make 0
  let checks_c = Atomic.make 0
  let rejected_c = Atomic.make 0

  let snapshot () =
    {
      blocks = Atomic.get blocks_c;
      certs_settled = Atomic.get certs_c;
      proof_checks = Atomic.get checks_c;
      rejected = Atomic.get rejected_c;
    }

  let reset () =
    Atomic.set blocks_c 0;
    Atomic.set certs_c 0;
    Atomic.set checks_c 0;
    Atomic.set rejected_c 0
end

(* Validate a block-level certificate aggregate against this (pre-block)
   state: recompute the expected leaves for the block's certificates in
   order, require exact coverage (count and merge root), then run the
   single proof verification. Returns the job keys the aggregate
   settles. Any failure REJECTS the block — an aggregated block never
   silently degrades to per-certificate verification, because a miner
   could otherwise strip or corrupt aggregates to re-inflate validation
   cost (and an honest miner never produces an invalid one). *)
let settle_aggregate t txs agg =
  let sys = Zen_snark.Aggregate.shared () in
  let* pairs_rev =
    List.fold_left
      (fun acc tx ->
        match tx with
        | Tx.Certificate cert -> (
          let* acc = acc in
          match
            Sc_ledger.wcert_leaf t.scs ~cert ~block_hash_at:(block_hash_at t)
          with
          | Some pair -> Ok (pair :: acc)
          | None ->
            (* Unknown sidechain or unresolvable boundary: the
               per-certificate path would reject this block too. *)
            Error "block: aggregate covers an unverifiable certificate")
        | _ -> acc)
      (Ok []) txs
  in
  let pairs = List.rev pairs_rev in
  let* () =
    if pairs = [] then Error "block: aggregate over a block with no certificates"
    else Ok ()
  in
  let* () =
    if Zen_snark.Aggregate.count agg = List.length pairs then Ok ()
    else Error "block: aggregate certificate count mismatch"
  in
  let* () =
    let expected =
      Zen_snark.Aggregate.root_of_digests
        (List.map
           (fun (l, _) -> Zen_snark.Aggregate.leaf_digest l)
           pairs)
    in
    match expected with
    | Some r when Hash.equal r (Zen_snark.Aggregate.root agg) -> Ok ()
    | _ -> Error "block: aggregate does not cover this block's certificates"
  in
  ignore (Atomic.fetch_and_add Aggregate_stats.checks_c 1 : int);
  if Verifier.run_job (Verifier.aggregate_job sys agg) then begin
    ignore (Atomic.fetch_and_add Aggregate_stats.blocks_c 1 : int);
    ignore
      (Atomic.fetch_and_add Aggregate_stats.certs_c (List.length pairs) : int);
    Ok
      (List.fold_left
         (fun s (_, j) -> Hash.Set.add (Verifier.job_key j) s)
         Hash.Set.empty pairs)
  end
  else Error "block: aggregate proof rejected"

let apply_block ?pool t (b : Block.t) =
  let* () = Block.validate_structure ?pool ~pow:t.params.pow b in
  let* () =
    if Hash.equal b.header.prev t.tip_hash then Ok ()
    else Error "block: parent is not the current tip"
  in
  let* () =
    if b.header.height = t.height + 1 then Ok ()
    else Error "block: height discontinuity"
  in
  let height = b.header.height in
  let block_hash = Block.hash b in
  let* coinbase, rest =
    match b.txs with
    | Tx.Coinbase { height = cb_height; reward } :: rest ->
      Ok (Some (cb_height, reward), rest)
    | [] -> Error "block: empty (coinbase required)"
    | _ -> Error "block: first transaction must be the coinbase"
  in
  let* settled =
    match b.aggregate with
    | None ->
      (* Per-certificate path: batch-verify the block's proofs up front
         (fanned out on [pool]); the sequential application below then
         decides through the cache. *)
      prewarm_verifier ?pool t rest;
      Ok Hash.Set.empty
    | Some agg -> (
      (* Aggregated path: certificate proofs are discharged by the one
         aggregate verification; only withdrawal (BTR/CSW) proofs remain
         individual, so prewarm just those. *)
      (if Verifier.Cache.enabled () then
         match
           List.filter_map
             (fun tx ->
               match tx with
               | Tx.Withdrawal_request w ->
                 Sc_ledger.withdrawal_verify_job t.scs ~request:w
               | _ -> None)
             rest
         with
        | [] -> ()
        | jobs -> ignore (Verifier.verify_batch ?pool jobs : bool list));
      match settle_aggregate t rest agg with
      | Ok s -> Ok s
      | Error e ->
        ignore (Atomic.fetch_and_add Aggregate_stats.rejected_c 1 : int);
        Error e)
  in
  let* state, fees =
    List.fold_left
      (fun acc tx ->
        let* s, fees = acc in
        let* s, fee = apply_tx ~settled s ~height ~block_hash tx in
        match Amount.add fees fee with
        | Ok fees -> Ok (s, fees)
        | Error e -> Error e)
      (Ok (t, Amount.zero))
      rest
  in
  let* utxos =
    match coinbase with
    | None -> Ok state.utxos
    | Some (_, reward) ->
      let* allowed =
        match Amount.add t.params.subsidy fees with
        | Ok a -> Ok a
        | Error e -> Error e
      in
      let* () =
        if Amount.( <= ) reward.amount allowed then Ok ()
        else Error "block: coinbase exceeds subsidy plus fees"
      in
      let cb_tx = Tx.Coinbase { height; reward } in
      Ok
        (Utxo_set.add state.utxos
           { Tx.txid = Tx.txid cb_tx; vout = 0 }
           {
             Utxo_set.addr = reward.addr;
             amount = reward.amount;
             spendable_after = height + t.params.coinbase_maturity;
           })
  in
  Ok
    {
      state with
      utxos;
      height;
      tip_hash = block_hash;
      time = b.header.time;
      hash_by_height = Height_index.append t.hash_by_height block_hash;
    }
