open Zen_crypto
module Imap = Map.Make (Int)

type t = { len : int; entries : Hash.t Imap.t }

let empty = { len = 0; entries = Imap.empty }
let length t = t.len
let append t h = { len = t.len + 1; entries = Imap.add t.len h t.entries }

let get t i =
  if i < 0 || i >= t.len then None else Imap.find_opt i t.entries
