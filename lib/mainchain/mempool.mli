(** A minimal mainchain mempool: FIFO of candidate transactions.

    Admission is cheap (structural); full validation happens when the
    miner builds a template and when blocks are applied, so invalid or
    conflicting transactions are dropped at selection time. *)

open Zen_crypto

type t

val empty : t
val add : t -> Tx.t -> t
(** Duplicates (by txid) are ignored. *)

val add_list : t -> Tx.t list -> t
val remove_included : t -> Block.t -> t
(** Drops everything the block included. *)

val remove : t -> Hash.t -> t
(** Drops one transaction by txid (no-op when absent). *)

val reinject_disconnected :
  t -> disconnected:Block.t list -> connected:Block.t list -> t
(** Rebuilds the pool after a reorg ({!Chain.reorg_diff} supplies both
    lists): every non-coinbase transaction of the [disconnected] branch
    that the [connected] branch did not re-include returns to the pool,
    oldest block first, so nothing a reorg abandoned is silently lost.
    Validity is re-checked at the usual places (miner selection, block
    application) — a recovered transaction that became invalid on the
    new branch is simply never selected. *)

val txs : t -> Tx.t list
(** FIFO order. *)

val mem : t -> Hash.t -> bool
val size : t -> int
