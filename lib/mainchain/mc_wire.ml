open Zen_crypto
open Zendoo

let ( let* ) = Wire.( let* )

let write_outpoint w (o : Tx.outpoint) =
  Wire.hash w o.txid;
  Wire.u32 w o.vout

let read_outpoint r =
  let* txid = Wire.read_hash r in
  let* vout = Wire.read_u32 r in
  Ok { Tx.txid; vout }

let write_coin_output w (c : Tx.coin_output) =
  Wire.hash w c.addr;
  Codec.write_amount w c.amount

let read_coin_output r =
  let* addr = Wire.read_hash r in
  let* amount = Codec.read_amount r in
  Ok { Tx.addr; amount }

let write_output w = function
  | Tx.Coin c ->
    Wire.u8 w 0;
    write_coin_output w c
  | Tx.Ft ft ->
    Wire.u8 w 1;
    Codec.write_ft w ft

let read_output r =
  let* tag = Wire.read_u8 r in
  match tag with
  | 0 ->
    let* c = read_coin_output r in
    Ok (Tx.Coin c)
  | 1 ->
    let* ft = Codec.read_ft r in
    Ok (Tx.Ft ft)
  | n -> Error (Printf.sprintf "mc wire: unknown output tag %d" n)

let write_input w (i : Tx.input) =
  write_outpoint w i.outpoint;
  Wire.varbytes w (Schnorr.pk_encode i.pk);
  Wire.varbytes w (Schnorr.sig_encode i.signature)

let read_input r =
  let* outpoint = read_outpoint r in
  let* pk_raw = Wire.read_varbytes ~max:128 r in
  let* pk =
    match Schnorr.pk_decode pk_raw with
    | Some pk -> Ok pk
    | None -> Error "mc wire: malformed public key"
  in
  let* sig_raw = Wire.read_varbytes ~max:128 r in
  let* signature =
    match Schnorr.sig_decode sig_raw with
    | Some s -> Ok s
    | None -> Error "mc wire: malformed signature"
  in
  Ok { Tx.outpoint; pk; signature }

let write_tx w = function
  | Tx.Coinbase { height; reward } ->
    Wire.u8 w 0;
    Wire.u63 w height;
    write_coin_output w reward
  | Tx.Transfer { inputs; outputs } ->
    Wire.u8 w 1;
    Wire.list w (write_input w) inputs;
    Wire.list w (write_output w) outputs
  | Tx.Sc_create config ->
    Wire.u8 w 2;
    Codec.write_config w config
  | Tx.Certificate cert ->
    Wire.u8 w 3;
    Codec.write_wcert w cert
  | Tx.Withdrawal_request m ->
    Wire.u8 w 4;
    Codec.write_withdrawal w m

let read_tx r =
  let* tag = Wire.read_u8 r in
  match tag with
  | 0 ->
    let* height = Wire.read_u63 r in
    let* reward = read_coin_output r in
    Ok (Tx.Coinbase { height; reward })
  | 1 ->
    let* inputs = Wire.read_list ~max:1024 r read_input in
    let* outputs = Wire.read_list ~max:1024 r read_output in
    Ok (Tx.Transfer { inputs; outputs })
  | 2 ->
    let* config = Codec.read_config r in
    Ok (Tx.Sc_create config)
  | 3 ->
    let* cert = Codec.read_wcert r in
    Ok (Tx.Certificate cert)
  | 4 ->
    let* m = Codec.read_withdrawal r in
    Ok (Tx.Withdrawal_request m)
  | n -> Error (Printf.sprintf "mc wire: unknown tx tag %d" n)

let write_header w (h : Block.header) =
  Wire.hash w h.prev;
  Wire.u63 w h.height;
  Wire.u63 w h.time;
  Wire.u63 w h.nonce;
  Wire.hash w h.tx_root;
  Wire.hash w h.sc_txs_commitment;
  Wire.hash w h.cert_aggregate

let read_header r =
  let* prev = Wire.read_hash r in
  let* height = Wire.read_u63 r in
  let* time = Wire.read_u63 r in
  let* nonce = Wire.read_u63 r in
  let* tx_root = Wire.read_hash r in
  let* sc_txs_commitment = Wire.read_hash r in
  let* cert_aggregate = Wire.read_hash r in
  Ok
    { Block.prev; height; time; nonce; tx_root; sc_txs_commitment;
      cert_aggregate }

let write_aggregate w a =
  Wire.hash w (Zen_snark.Aggregate.root a);
  Wire.u32 w (Zen_snark.Aggregate.count a);
  Wire.fixed w (Zen_snark.Backend.proof_encode (Zen_snark.Aggregate.proof a))

let read_aggregate r =
  let* root = Wire.read_hash r in
  let* count = Wire.read_u32 r in
  let* () =
    if count >= 1 then Ok ()
    else Error "mc wire: aggregate covers no certificates"
  in
  let* raw = Wire.read_fixed r Zen_snark.Backend.proof_size_bytes in
  let* proof =
    match Zen_snark.Backend.proof_decode raw with
    | Some p -> Ok p
    | None -> Error "mc wire: malformed aggregate proof"
  in
  Ok (Zen_snark.Aggregate.of_parts ~root ~count ~proof)

let write_block w (b : Block.t) =
  write_header w b.header;
  Wire.list w (write_tx w) b.txs;
  Wire.option w (write_aggregate w) b.aggregate

let read_block r =
  let* header = read_header r in
  let* txs = Wire.read_list ~max:65536 r read_tx in
  let* aggregate = Wire.read_option r read_aggregate in
  Ok { Block.header; txs; aggregate }

let with_writer f =
  let w = Wire.writer () in
  f w;
  Wire.contents w

let framed read s =
  let r = Wire.reader s in
  let* v = read r in
  let* () = Wire.expect_end r in
  Ok v

let encode_tx tx = with_writer (fun w -> write_tx w tx)
let decode_tx s = framed read_tx s
let encode_block b = with_writer (fun w -> write_block w b)
let decode_block s = framed read_block s
let encode_header h = with_writer (fun w -> write_header w h)
let decode_header s = framed read_header s

let tx_size_bytes tx = String.length (encode_tx tx)
let block_size_bytes b = String.length (encode_block b)
