open Zen_crypto
open Zendoo

let coinbase_for chain ~height ~miner_addr ~fees =
  let subsidy = (Chain.params chain).subsidy in
  let reward =
    match Amount.add subsidy fees with Ok a -> a | Error _ -> subsidy
  in
  Tx.Coinbase { height; reward = { Tx.addr = miner_addr; amount = reward } }

let build_block ?pool ?(aggregate = false) chain ~time ~miner_addr ~candidates
    =
  let state = Chain.tip_state chain in
  let height = state.height + 1 in
  (* Batch-verify the candidates' proofs before trial application, so
     re-offered mempool certificates cost a cache hit per mine instead
     of a SNARK verification. *)
  Chain_state.prewarm_verifier ?pool state candidates;
  (* Trial-apply against a placeholder block hash; certificate records
     carry the real hash once the sealed block is applied for real. *)
  let placeholder = Hash.of_string "miner.trial" in
  let _, selected_rev, skipped_rev, fees =
    List.fold_left
      (fun (st, sel, skip, fees) tx ->
        match Chain_state.apply_tx st ~height ~block_hash:placeholder tx with
        | Ok (st', fee) ->
          let fees = match Amount.add fees fee with Ok f -> f | Error _ -> fees in
          (st', tx :: sel, skip, fees)
        | Error _ -> (st, sel, tx :: skip, fees))
      (state, [], [], Amount.zero)
      candidates
  in
  let selected = List.rev selected_rev in
  (* Fold the selected certificates' proofs into one aggregate. Leaves
     come from the parent state — the same boundaries validation will
     resolve — and each check is the per-certificate job (a cache hit:
     trial application just verified it). If any leaf is unformable or
     the build fails, ship without an aggregate; absence is the valid
     fallback, a malformed aggregate would reject the whole block. *)
  let agg =
    if not aggregate then None
    else begin
      let pairs =
        List.fold_left
          (fun acc tx ->
            match (acc, tx) with
            | None, _ -> None
            | Some acc, Tx.Certificate cert -> (
              match
                Sc_ledger.wcert_leaf state.scs ~cert
                  ~block_hash_at:(Chain_state.block_hash_at state)
              with
              | Some (leaf, job) ->
                Some ((leaf, fun () -> Verifier.run_job job) :: acc)
              | None -> None)
            | Some _, _ -> acc)
          (Some []) selected
      in
      match pairs with
      | None | Some [] -> None
      | Some pairs_rev -> (
        match
          Zen_snark.Aggregate.build ?pool
            (Zen_snark.Aggregate.shared ())
            (List.rev pairs_rev)
        with
        | Ok a -> Some a
        | Error _ -> None)
    end
  in
  let txs = coinbase_for chain ~height ~miner_addr ~fees :: selected in
  match
    Block.assemble ?pool ?aggregate:agg ~prev:(Chain.tip_hash chain) ~height
      ~time ~txs ~pow:(Chain.params chain).pow ()
  with
  | Error e -> Error e
  | Ok block -> Ok (block, List.rev skipped_rev)

let mine_empty chain ~time ~miner_addr =
  match build_block chain ~time ~miner_addr ~candidates:[] with
  | Ok (b, _) -> Ok b
  | Error e -> Error e
