open Zen_crypto
open Zendoo

let coinbase_for chain ~height ~miner_addr ~fees =
  let subsidy = (Chain.params chain).subsidy in
  let reward =
    match Amount.add subsidy fees with Ok a -> a | Error _ -> subsidy
  in
  Tx.Coinbase { height; reward = { Tx.addr = miner_addr; amount = reward } }

let build_block ?pool chain ~time ~miner_addr ~candidates =
  let state = Chain.tip_state chain in
  let height = state.height + 1 in
  (* Batch-verify the candidates' proofs before trial application, so
     re-offered mempool certificates cost a cache hit per mine instead
     of a SNARK verification. *)
  Chain_state.prewarm_verifier ?pool state candidates;
  (* Trial-apply against a placeholder block hash; certificate records
     carry the real hash once the sealed block is applied for real. *)
  let placeholder = Hash.of_string "miner.trial" in
  let _, selected_rev, skipped_rev, fees =
    List.fold_left
      (fun (st, sel, skip, fees) tx ->
        match Chain_state.apply_tx st ~height ~block_hash:placeholder tx with
        | Ok (st', fee) ->
          let fees = match Amount.add fees fee with Ok f -> f | Error _ -> fees in
          (st', tx :: sel, skip, fees)
        | Error _ -> (st, sel, tx :: skip, fees))
      (state, [], [], Amount.zero)
      candidates
  in
  let txs =
    coinbase_for chain ~height ~miner_addr ~fees :: List.rev selected_rev
  in
  match
    Block.assemble ?pool ~prev:(Chain.tip_hash chain) ~height ~time ~txs
      ~pow:(Chain.params chain).pow ()
  with
  | Error e -> Error e
  | Ok block -> Ok (block, List.rev skipped_rev)

let mine_empty chain ~time ~miner_addr =
  match build_block chain ~time ~miner_addr ~candidates:[] with
  | Ok (b, _) -> Ok b
  | Error e -> Error e
