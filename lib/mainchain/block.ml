open Zen_crypto
open Zendoo

type header = {
  prev : Hash.t;
  height : int;
  time : int;
  nonce : int;
  tx_root : Hash.t;
  sc_txs_commitment : Hash.t;
  cert_aggregate : Hash.t;
}

type t = {
  header : header;
  txs : Tx.t list;
  aggregate : Zen_snark.Aggregate.t option;
}

let header_hash h =
  Hash.tagged "mc.header"
    [
      Hash.to_raw h.prev;
      string_of_int h.height;
      string_of_int h.time;
      string_of_int h.nonce;
      Hash.to_raw h.tx_root;
      Hash.to_raw h.sc_txs_commitment;
      Hash.to_raw h.cert_aggregate;
    ]

let hash b = header_hash b.header

let tx_root ?pool txs = Merkle.root (Merkle.of_leaves ?pool (List.map Tx.txid txs))

(* Group all sidechain actions in the block by ledger id. *)
let sc_commitment_of_txs ?pool txs =
  let module M = Hash.Map in
  let empty_entry ledger_id =
    Sc_commitment.{ ledger_id; fts = []; btrs = []; wcert = None }
  in
  let upd m id f =
    let e = Option.value (M.find_opt id m) ~default:(empty_entry id) in
    M.add id (f e) m
  in
  let result =
    List.fold_left
      (fun acc tx ->
        match acc with
        | Error _ -> acc
        | Ok m -> (
          match tx with
          | Tx.Coinbase _ | Tx.Sc_create _ -> Ok m
          | Tx.Transfer _ ->
            Ok
              (List.fold_left
                 (fun m (ft : Forward_transfer.t) ->
                   upd m ft.ledger_id (fun e ->
                       { e with Sc_commitment.fts = e.Sc_commitment.fts @ [ ft ] }))
                 m (Tx.forward_transfers tx))
          | Tx.Certificate cert ->
            let id = cert.Withdrawal_certificate.ledger_id in
            (match M.find_opt id m with
            | Some { Sc_commitment.wcert = Some _; _ } ->
              Error "block: two certificates for one sidechain"
            | _ ->
              Ok (upd m id (fun e -> { e with Sc_commitment.wcert = Some cert })))
          | Tx.Withdrawal_request w -> (
            match w.Mainchain_withdrawal.kind with
            | Mainchain_withdrawal.Csw -> Ok m (* CSWs are not committed (§4.1.3) *)
            | Mainchain_withdrawal.Btr ->
              Ok
                (upd m w.Mainchain_withdrawal.ledger_id (fun e ->
                     { e with Sc_commitment.btrs = e.Sc_commitment.btrs @ [ w ] }))
          )))
      (Ok M.empty) txs
  in
  match result with
  | Error e -> Error e
  | Ok m -> Sc_commitment.build ?pool (List.map snd (M.bindings m))

let assemble ?pool ?aggregate ~prev ~height ~time ~txs ~pow () =
  match sc_commitment_of_txs ?pool txs with
  | Error e -> Error e
  | Ok commitment ->
    let tx_root = tx_root ?pool txs in
    let sc_txs_commitment = Sc_commitment.root commitment in
    (* The aggregate commitment lives in the header so proof of work
       covers it and header-only consumers (sidechain MC references)
       keep agreeing on block hashes; [Hash.zero] means "absent". *)
    let cert_aggregate =
      match aggregate with
      | None -> Hash.zero
      | Some a -> Zen_snark.Aggregate.digest a
    in
    let hash_of_nonce ~nonce =
      header_hash
        { prev; height; time; nonce; tx_root; sc_txs_commitment;
          cert_aggregate }
    in
    let nonce = Pow.mine pow hash_of_nonce in
    Ok
      {
        header =
          { prev; height; time; nonce; tx_root; sc_txs_commitment;
            cert_aggregate };
        txs;
        aggregate;
      }

let genesis ~time =
  let txs = [] in
  let commitment =
    match sc_commitment_of_txs txs with Ok c -> c | Error _ -> assert false
  in
  {
    header =
      {
        prev = Hash.zero;
        height = 0;
        time;
        nonce = 0;
        tx_root = tx_root txs;
        sc_txs_commitment = Sc_commitment.root commitment;
        cert_aggregate = Hash.zero;
      };
    txs;
    aggregate = None;
  }

let validate_structure ?pool ~pow b =
  let ( let* ) = Result.bind in
  let* () =
    if b.header.height = 0 || Pow.meets_target pow (hash b) then Ok ()
    else Error "block: proof of work does not meet target"
  in
  let* () =
    if Hash.equal b.header.tx_root (tx_root ?pool b.txs) then Ok ()
    else Error "block: transaction root mismatch"
  in
  let* commitment = sc_commitment_of_txs ?pool b.txs in
  let* () =
    if Hash.equal b.header.sc_txs_commitment (Sc_commitment.root commitment)
    then Ok ()
    else Error "block: sidechain commitment mismatch"
  in
  (* Context-free aggregate checks: the header must commit to exactly
     the carried aggregate (absent iff the commitment is zero), and the
     covered count must equal the block's certificate count. Whether the
     root covers *these* certificates needs chain context and is checked
     in [Chain_state.apply_block]. *)
  let* () =
    match b.aggregate with
    | None ->
      if Hash.equal b.header.cert_aggregate Hash.zero then Ok ()
      else Error "block: header commits to a missing aggregate"
    | Some a ->
      if
        not (Hash.equal b.header.cert_aggregate (Zen_snark.Aggregate.digest a))
      then Error "block: aggregate commitment mismatch"
      else begin
        let certs =
          List.length
            (List.filter
               (function Tx.Certificate _ -> true | _ -> false)
               b.txs)
        in
        if certs = 0 then Error "block: aggregate over a block with no certificates"
        else if Zen_snark.Aggregate.count a <> certs then
          Error "block: aggregate certificate count mismatch"
        else Ok ()
      end
  in
  let* () =
    match b.txs with
    | [] when b.header.height = 0 -> Ok ()
    | Tx.Coinbase { height; _ } :: rest ->
      if height <> b.header.height then Error "block: coinbase height mismatch"
      else if
        List.exists (function Tx.Coinbase _ -> true | _ -> false) rest
      then Error "block: multiple coinbases"
      else Ok ()
    | _ -> Error "block: first transaction must be the coinbase"
  in
  Ok ()

let pp fmt b =
  Format.fprintf fmt "Block(h=%d, %a, %d txs)" b.header.height Hash.pp (hash b)
    (List.length b.txs)
