(** The mainchain block tree with Nakamoto fork choice.

    Every validated block keeps its post-state; the tip is the block
    with the most cumulative work (first-seen wins ties), so a fork
    overtaking the current tip triggers a reorg simply by re-pointing
    — the semantics sidechain binding relies on (paper §5.1 "Mainchain
    forks resolution"). *)

open Zen_crypto

type t

type outcome =
  | Extended_tip
  | Side_branch  (** valid, stored, but not the best chain *)
  | Reorg of { old_tip : Hash.t; depth : int }
      (** the new block's branch overtook; [depth] is the number of
          blocks abandoned from the old best chain *)

val create : ?params:Chain_state.params -> time:int -> unit -> t
val params : t -> Chain_state.params

val genesis_hash : t -> Hash.t
val tip_hash : t -> Hash.t
val tip_state : t -> Chain_state.t
val tip_block : t -> Block.t
val height : t -> int

val block : t -> Hash.t -> Block.t option
val state_of : t -> Hash.t -> Chain_state.t option

val add_block : ?pool:Pool.t -> t -> Block.t -> (t * outcome, string) result
(** Validates against the parent's state and inserts. Duplicate blocks
    are rejected; unknown parents are an error (no orphan pool — the
    simulation delivers blocks in order per peer). [pool] is handed to
    {!Chain_state.apply_block} for batch proof verification and the
    commitment rebuild; outcomes are identical for every domain
    count. *)

val best_chain : t -> Block.t list
(** Genesis → tip. *)

val contains : t -> Hash.t -> bool

val on_best_chain : t -> Hash.t -> bool
(** Whether a block hash lies on the current best chain. *)

val reorg_diff : t -> old_tip:Hash.t -> Block.t list * Block.t list
(** [(disconnected, connected)] relative to the current tip, both
    oldest first: the blocks of the abandoned branch from [old_tip]
    down to (excluding) the common ancestor, and the best-chain blocks
    that replaced them. Call it right after an {!add_block} that
    returned {!Reorg} — the transactions of [disconnected] minus those
    re-included by [connected] are what a mempool must recover. *)
