(** The mainchain state machine: full validation and application of
    transactions and blocks.

    States are persistent values — applying a block returns a new state
    sharing structure with the old one, so every block in the tree
    keeps its post-state and reorgs are pointer switches (handled by
    {!Chain}). *)

open Zen_crypto
open Zendoo

type params = {
  pow : Pow.params;
  subsidy : Amount.t;  (** block reward *)
  coinbase_maturity : int;
}

val default_params : params

type t = {
  params : params;
  height : int;
  tip_hash : Hash.t;
  time : int;
  utxos : Utxo_set.t;
  scs : Sc_ledger.t;
  hash_by_height : Hash.t list;  (** newest first; index 0 is the tip *)
}

val of_genesis : params -> Block.t -> t

val block_hash_at : t -> int -> Hash.t option
(** Hash of this chain's block at the given height. *)

val apply_tx :
  t -> height:int -> block_hash:Hash.t -> Tx.t -> (t * Amount.t, string) result
(** Validates and applies one non-coinbase transaction; returns the new
    state and the transaction fee. Used by block validation and by the
    miner's template construction. *)

val apply_block : ?pool:Pool.t -> t -> Block.t -> (t, string) result
(** Full block validation: structure, linkage, every transaction, and
    the coinbase reward bound (subsidy + fees). [pool] parallelises the
    commitment rebuild and the up-front batch verification of the
    block's certificate/withdrawal proofs ({!prewarm_verifier});
    per-transaction decisions are unchanged for every domain count. *)

val proof_jobs : t -> Tx.t list -> Verifier.job list
(** The SNARK verifications applying [txs] to this state would run,
    predicted from the current state (order preserved; transactions
    with nothing to verify, or whose sidechain/boundary cannot be
    resolved, contribute nothing). *)

val prewarm_verifier : ?pool:Pool.t -> t -> Tx.t list -> unit
(** [Verifier.verify_batch] over {!proof_jobs}, populating the
    verification cache so a subsequent sequential application never
    re-verifies. A no-op when the cache is disabled (results would be
    thrown away). *)

val spendable : t -> Tx.outpoint -> at_height:int -> Utxo_set.coin option
(** The coin if it exists and has matured for inclusion at
    [at_height]. *)

val sc_balance : t -> Hash.t -> Amount.t option
val circulating : t -> Amount.t
(** Total value in the UTXO set (supply audit helper). *)
