(** The mainchain state machine: full validation and application of
    transactions and blocks.

    States are persistent values — applying a block returns a new state
    sharing structure with the old one, so every block in the tree
    keeps its post-state and reorgs are pointer switches (handled by
    {!Chain}). *)

open Zen_crypto
open Zendoo

type params = {
  pow : Pow.params;
  subsidy : Amount.t;  (** block reward *)
  coinbase_maturity : int;
}

val default_params : params

type t = {
  params : params;
  height : int;
  tip_hash : Hash.t;
  time : int;
  utxos : Utxo_set.t;
  scs : Sc_ledger.t;
  hash_by_height : Height_index.t;
      (** persistent height → block-hash index (O(log n) lookup; the
          structure is shared across branch states) *)
}

val of_genesis : params -> Block.t -> t

val block_hash_at : t -> int -> Hash.t option
(** Hash of this chain's block at the given height — O(log height),
    called once per certificate verification. *)

val distinct_outpoints : Tx.outpoint list -> bool
(** No outpoint appears twice (hashed single pass). Exposed for
    property tests against the naive quadratic reference. *)

val apply_tx :
  ?settled:Hash.Set.t ->
  t ->
  height:int ->
  block_hash:Hash.t ->
  Tx.t ->
  (t * Amount.t, string) result
(** Validates and applies one non-coinbase transaction; returns the new
    state and the transaction fee. Used by block validation and by the
    miner's template construction. [settled] (default empty) carries
    the {!Verifier.job_key}s already discharged by an enclosing block's
    verified certificate aggregate — see {!Sc_ledger.accept_cert}. *)

val apply_block : ?pool:Pool.t -> t -> Block.t -> (t, string) result
(** Full block validation: structure, linkage, every transaction, and
    the coinbase reward bound (subsidy + fees). [pool] parallelises the
    commitment rebuild and the up-front batch verification of the
    block's certificate/withdrawal proofs ({!prewarm_verifier});
    per-transaction decisions are unchanged for every domain count.

    When the block carries a certificate aggregate, validation runs
    exactly {e one} SNARK verification for all its certificates: the
    expected leaves are recomputed from this state, coverage (count and
    merge root) is checked, and the aggregate proof is verified through
    the cache; the per-certificate verifications are then skipped as
    settled. Any aggregate defect — wrong coverage, unverifiable leaf,
    rejected proof — rejects the block (never a silent fallback).
    Accept/reject decisions are identical to the per-certificate path
    by construction. Blocks without an aggregate validate exactly as
    before. *)

module Aggregate_stats : sig
  type t = {
    blocks : int;  (** blocks validated through an aggregate *)
    certs_settled : int;  (** certificate verifications discharged *)
    proof_checks : int;  (** aggregate proof decisions (cached or not) *)
    rejected : int;  (** blocks rejected for a bad aggregate *)
  }

  val snapshot : unit -> t
  val reset : unit -> unit
end
(** Process-wide aggregation-path counters (diagnostics; the CI smoke
    job asserts [proof_checks = blocks], i.e. one proof per block). *)

val proof_jobs : t -> Tx.t list -> Verifier.job list
(** The SNARK verifications applying [txs] to this state would run,
    predicted from the current state (order preserved; transactions
    with nothing to verify, or whose sidechain/boundary cannot be
    resolved, contribute nothing). *)

val prewarm_verifier : ?pool:Pool.t -> t -> Tx.t list -> unit
(** [Verifier.verify_batch] over {!proof_jobs}, populating the
    verification cache so a subsequent sequential application never
    re-verifies. A no-op when the cache is disabled (results would be
    thrown away). *)

val spendable : t -> Tx.outpoint -> at_height:int -> Utxo_set.coin option
(** The coin if it exists and has matured for inclusion at
    [at_height]. *)

val sc_balance : t -> Hash.t -> Amount.t option
val circulating : t -> Amount.t
(** Total value in the UTXO set (supply audit helper). *)
