open Zen_crypto

type node = { block : Block.t; state : Chain_state.t; work : int }

type t = {
  params : Chain_state.params;
  nodes : node Hash.Map.t;
  tip : Hash.t;
  genesis : Hash.t;
}

type outcome =
  | Extended_tip
  | Side_branch
  | Reorg of { old_tip : Hash.t; depth : int }

let create ?(params = Chain_state.default_params) ~time () =
  let g = Block.genesis ~time in
  let gh = Block.hash g in
  let node = { block = g; state = Chain_state.of_genesis params g; work = 0 } in
  { params; nodes = Hash.Map.add gh node Hash.Map.empty; tip = gh; genesis = gh }

let params t = t.params
let genesis_hash t = t.genesis
let tip_hash t = t.tip

let node_exn t h = Hash.Map.find h t.nodes
let tip_state t = (node_exn t t.tip).state
let tip_block t = (node_exn t t.tip).block
let height t = (tip_state t).height

let block t h = Option.map (fun n -> n.block) (Hash.Map.find_opt h t.nodes)
let state_of t h = Option.map (fun n -> n.state) (Hash.Map.find_opt h t.nodes)
let contains t h = Hash.Map.mem h t.nodes

(* Depth of the reorg: how many blocks of the old best chain are not
   ancestors of the new tip. *)
let reorg_depth t ~old_tip ~new_tip =
  let rec ancestors h acc =
    match Hash.Map.find_opt h t.nodes with
    | None -> acc
    | Some n ->
      if n.block.header.height = 0 then Hash.Set.add h acc
      else ancestors n.block.header.prev (Hash.Set.add h acc)
  in
  let new_anc = ancestors new_tip Hash.Set.empty in
  let rec count h n =
    if Hash.Set.mem h new_anc then n
    else
      match Hash.Map.find_opt h t.nodes with
      | None -> n
      | Some node -> count node.block.header.prev (n + 1)
  in
  count old_tip 0

let add_block ?pool t (b : Block.t) =
  let h = Block.hash b in
  if Hash.Map.mem h t.nodes then Error "chain: duplicate block"
  else begin
    match Hash.Map.find_opt b.header.prev t.nodes with
    | None -> Error "chain: unknown parent"
    | Some parent -> (
      match Chain_state.apply_block ?pool parent.state b with
      | Error e -> Error e
      | Ok state ->
        let work = parent.work + Pow.work_of t.params.pow in
        let nodes = Hash.Map.add h { block = b; state; work } t.nodes in
        let t' = { t with nodes } in
        let tip_work = (node_exn t t.tip).work in
        if work > tip_work then begin
          let outcome =
            if Hash.equal b.header.prev t.tip then Extended_tip
            else
              Reorg
                { old_tip = t.tip; depth = reorg_depth t' ~old_tip:t.tip ~new_tip:h }
          in
          Ok ({ t' with tip = h }, outcome)
        end
        else Ok (t', Side_branch))
  end

let best_chain t =
  let rec go h acc =
    let n = node_exn t h in
    if n.block.header.height = 0 then n.block :: acc
    else go n.block.header.prev (n.block :: acc)
  in
  go t.tip []

(* What a reorg disconnected and connected, both oldest first. Walking
   from [old_tip] until a block on the (new) best chain gives the
   abandoned suffix; the replacing blocks are the best-chain suffix
   above the common ancestor. Used by the harness to rebuild the
   mempool (Mempool.reinject_disconnected). *)
let reorg_diff t ~old_tip =
  let on_best h =
    match Hash.Map.find_opt h t.nodes with
    | None -> false
    | Some n -> (
      match Chain_state.block_hash_at (tip_state t) n.block.header.height with
      | Some bh -> Hash.equal bh h
      | None -> false)
  in
  let rec abandoned h acc =
    match Hash.Map.find_opt h t.nodes with
    | None -> acc
    | Some n ->
      if on_best h then acc
      else abandoned n.block.header.prev (n.block :: acc)
  in
  let disconnected = abandoned old_tip [] in
  let fork_height =
    match disconnected with
    | [] -> (tip_state t).height
    | b :: _ -> b.header.height - 1
  in
  let rec connected h acc =
    match Hash.Map.find_opt h t.nodes with
    | None -> acc
    | Some n ->
      if n.block.header.height <= fork_height then acc
      else connected n.block.header.prev (n.block :: acc)
  in
  (disconnected, connected t.tip [])

let on_best_chain t h =
  match Hash.Map.find_opt h t.nodes with
  | None -> false
  | Some n -> (
    match Chain_state.block_hash_at (tip_state t) n.block.header.height with
    | Some bh -> Hash.equal bh h
    | None -> false)
