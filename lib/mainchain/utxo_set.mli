(** The mainchain UTXO set: a persistent map from outpoint to coin.

    Persistence (structural sharing) is what makes fork handling cheap:
    every block's post-state is retained and a reorg is just a pointer
    switch to another block's state. *)

open Zen_crypto
open Zendoo

type coin = {
  addr : Hash.t;
  amount : Amount.t;
  spendable_after : int;
      (** maturity height: coinbase and certificate payouts cannot be
          spent until the height is strictly greater *)
}

type t

val empty : t
val find : t -> Tx.outpoint -> coin option
val mem : t -> Tx.outpoint -> bool
val add : t -> Tx.outpoint -> coin -> t
val remove : t -> Tx.outpoint -> t
val cardinal : t -> int
val total_value : t -> Amount.t
val fold : t -> init:'a -> f:('a -> Tx.outpoint -> coin -> 'a) -> 'a

val apply_batch : t -> (Tx.outpoint * coin option) list -> t
(** Applies a change list in order ([Some coin] adds/overwrites,
    [None] removes) — equivalent to the corresponding fold of {!add} /
    {!remove}, provided as the single entry point block application
    batches its coin flips through. *)

val coins_of_addr : t -> Hash.t -> (Tx.outpoint * coin) list
(** All coins held by one address, served from a per-address secondary
    index maintained by {!add}/{!remove}: O(log n + k) for k coins
    rather than a scan of the full set. Result identical (same coins,
    same order) to the naive filter-fold over the whole set. *)
