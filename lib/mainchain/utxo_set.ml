open Zen_crypto
open Zendoo

type coin = { addr : Hash.t; amount : Amount.t; spendable_after : int }

module M = Map.Make (String)

(* Outpoints are keyed by their canonical encoding; decoding is never
   needed because folds carry the original outpoint alongside. *)
type entry = { outpoint : Tx.outpoint; coin : coin }

type t = {
  coins : entry M.t;
  by_addr : entry M.t M.t;
      (* secondary index: raw address -> (outpoint key -> entry).
         Maintained by add/remove so wallet queries for one address
         never scan the full set. Always consistent with [coins]. *)
}

let empty = { coins = M.empty; by_addr = M.empty }
let key = Tx.outpoint_encode
let akey (c : coin) = Hash.to_raw c.addr

let find t o =
  Option.map (fun e -> e.coin) (M.find_opt (key o) t.coins)

let mem t o = M.mem (key o) t.coins

let index_remove by_addr addr k =
  match M.find_opt addr by_addr with
  | None -> by_addr
  | Some bucket ->
    let bucket = M.remove k bucket in
    if M.is_empty bucket then M.remove addr by_addr
    else M.add addr bucket by_addr

let add t o coin =
  let k = key o in
  let e = { outpoint = o; coin } in
  let by_addr =
    (* Overwriting an outpoint may move the coin between addresses; the
       stale index entry must go first. *)
    match M.find_opt k t.coins with
    | Some old when not (Hash.equal old.coin.addr coin.addr) ->
      index_remove t.by_addr (akey old.coin) k
    | Some _ | None -> t.by_addr
  in
  let bucket =
    Option.value (M.find_opt (akey coin) by_addr) ~default:M.empty
  in
  {
    coins = M.add k e t.coins;
    by_addr = M.add (akey coin) (M.add k e bucket) by_addr;
  }

let remove t o =
  let k = key o in
  match M.find_opt k t.coins with
  | None -> t
  | Some e ->
    {
      coins = M.remove k t.coins;
      by_addr = index_remove t.by_addr (akey e.coin) k;
    }

let apply_batch t changes =
  List.fold_left
    (fun t (o, c) ->
      match c with Some coin -> add t o coin | None -> remove t o)
    t changes

let cardinal t = M.cardinal t.coins

let fold t ~init ~f =
  M.fold (fun _ e acc -> f acc e.outpoint e.coin) t.coins init

let total_value t =
  fold t ~init:Amount.zero ~f:(fun acc _ c ->
      match Amount.add acc c.amount with
      | Ok v -> v
      | Error _ -> acc (* unreachable: supply is capped *))

(* Same list the historical full scan produced (descending outpoint
   key): both fold ascending and prepend, and the bucket holds exactly
   the address's entries. *)
let coins_of_addr t addr =
  match M.find_opt (Hash.to_raw addr) t.by_addr with
  | None -> []
  | Some bucket -> M.fold (fun _ e acc -> (e.outpoint, e.coin) :: acc) bucket []
