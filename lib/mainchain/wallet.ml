open Zen_crypto
open Zendoo

type key = { sk : Schnorr.secret_key; pk : Schnorr.public_key; addr : Hash.t }

type t = {
  seed : string;
  mutable keys : key list; (* newest first *)
  mutable next : int;
}

let create ~seed = { seed; keys = []; next = 0 }

let fresh_address t =
  let sk, pk = Schnorr.of_seed (Printf.sprintf "%s.%d" t.seed t.next) in
  let key = { sk; pk; addr = Schnorr.pk_hash pk } in
  t.keys <- key :: t.keys;
  t.next <- t.next + 1;
  key.addr

let addresses t = List.rev_map (fun k -> k.addr) t.keys
let key_for t addr = List.find_opt (fun k -> Hash.equal k.addr addr) t.keys
let owns t addr = key_for t addr <> None

(* Per-address index queries instead of a full-set scan; the final sort
   (outpoint keys are unique) restores the exact order the historical
   whole-set fold produced, so coin selection downstream is unchanged. *)
let spendable_coins t (state : Chain_state.t) =
  List.concat_map
    (fun addr ->
      List.filter
        (fun (_, (c : Utxo_set.coin)) -> state.height + 1 > c.spendable_after)
        (Utxo_set.coins_of_addr state.utxos addr))
    (addresses t)
  |> List.sort (fun (a, _) (b, _) ->
         String.compare (Tx.outpoint_encode b) (Tx.outpoint_encode a))

let balance t state =
  List.fold_left
    (fun acc (_, (c : Utxo_set.coin)) ->
      match Amount.add acc c.amount with Ok v -> v | Error _ -> acc)
    Amount.zero (spendable_coins t state)

let sign_for t ~addr ~msg =
  Option.map
    (fun k -> (k.pk, Schnorr.sign k.sk msg))
    (key_for t addr)

let build_transfer t state ~outputs ~fee =
  let ( let* ) = Result.bind in
  let* target = Tx.transfer_value_out outputs in
  let* need =
    match Amount.add target fee with Ok a -> Ok a | Error e -> Error e
  in
  (* Greedy largest-first selection. *)
  let coins =
    List.sort
      (fun (_, (a : Utxo_set.coin)) (_, (b : Utxo_set.coin)) ->
        Amount.compare b.amount a.amount)
      (spendable_coins t state)
  in
  let rec pick acc total = function
    | _ when Amount.( <= ) need total -> Ok (acc, total)
    | [] -> Error "wallet: insufficient funds"
    | (o, (c : Utxo_set.coin)) :: rest -> (
      match Amount.add total c.amount with
      | Ok total -> pick ((o, c) :: acc) total rest
      | Error e -> Error e)
  in
  let* picked, total = pick [] Amount.zero coins in
  let* change =
    match Amount.sub total need with Ok c -> Ok c | Error e -> Error e
  in
  let outputs =
    if Amount.is_zero change then outputs
    else begin
      let change_addr =
        (* Reuse the newest key for change to keep the wallet small. *)
        match t.keys with
        | k :: _ -> k.addr
        | [] -> assert false (* picked is non-empty, so a key exists *)
      in
      outputs @ [ Tx.Coin { Tx.addr = change_addr; amount = change } ]
    end
  in
  let outpoints = List.map fst picked in
  let sighash = Tx.sighash ~inputs:outpoints ~outputs in
  let* inputs =
    List.fold_left
      (fun acc (outpoint, (coin : Utxo_set.coin)) ->
        let* inputs = acc in
        match sign_for t ~addr:coin.addr ~msg:(Hash.to_raw sighash) with
        | None -> Error "wallet: missing key for selected coin"
        | Some (pk, signature) ->
          Ok ({ Tx.outpoint; pk; signature } :: inputs))
      (Ok []) picked
  in
  Ok (Tx.Transfer { inputs = List.rev inputs; outputs })

let build_forward_transfer t state ~ledger_id ~receiver_metadata ~amount ~fee =
  build_transfer t state
    ~outputs:
      [ Tx.Ft (Forward_transfer.make ~ledger_id ~receiver_metadata ~amount) ]
    ~fee
