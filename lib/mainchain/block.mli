(** Mainchain blocks: header with transaction root and the
    SCTxsCommitment (paper §4.1.3), plus the transaction body. *)

open Zen_crypto
open Zendoo

type header = {
  prev : Hash.t;
  height : int;
  time : int;
  nonce : int;
  tx_root : Hash.t;
  sc_txs_commitment : Hash.t;
  cert_aggregate : Hash.t;
      (** {!Zen_snark.Aggregate.digest} of the block's certificate
          aggregate, or {!Hash.zero} when the block carries none — in
          the header so PoW covers it and header-only consumers agree
          on block hashes *)
}

type t = {
  header : header;
  txs : Tx.t list;
  aggregate : Zen_snark.Aggregate.t option;
      (** one recursive proof folding every certificate proof in [txs];
          when present, block validation verifies it instead of the
          per-certificate proofs *)
}

val header_hash : header -> Hash.t
val hash : t -> Hash.t

val tx_root : ?pool:Pool.t -> Tx.t list -> Hash.t

val sc_commitment_of_txs :
  ?pool:Pool.t -> Tx.t list -> (Sc_commitment.t, string) result
(** Groups the block's sidechain actions (FT outputs, BTRs, at most one
    certificate per sidechain; CSWs excluded per §4.1.3) into the
    commitment structure. [pool] parallelises the entry hashes and the
    commitment tree build (bit-identical for every domain count). *)

val assemble :
  ?pool:Pool.t ->
  ?aggregate:Zen_snark.Aggregate.t ->
  prev:Hash.t ->
  height:int ->
  time:int ->
  txs:Tx.t list ->
  pow:Pow.params ->
  unit ->
  (t, string) result
(** Computes roots (including the aggregate commitment when one is
    given), mines the nonce, returns the sealed block. *)

val genesis : time:int -> t
(** The fixed genesis block (empty, zero parent). *)

val validate_structure :
  ?pool:Pool.t -> pow:Pow.params -> t -> (unit, string) result
(** Context-free checks: PoW, tx root, commitment root, header/body
    aggregate-commitment consistency (count must match the block's
    certificates), exactly one leading coinbase, at most one
    certificate per sidechain. *)

val pp : Format.formatter -> t -> unit
