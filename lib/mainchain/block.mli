(** Mainchain blocks: header with transaction root and the
    SCTxsCommitment (paper §4.1.3), plus the transaction body. *)

open Zen_crypto
open Zendoo

type header = {
  prev : Hash.t;
  height : int;
  time : int;
  nonce : int;
  tx_root : Hash.t;
  sc_txs_commitment : Hash.t;
}

type t = { header : header; txs : Tx.t list }

val header_hash : header -> Hash.t
val hash : t -> Hash.t

val tx_root : ?pool:Pool.t -> Tx.t list -> Hash.t

val sc_commitment_of_txs :
  ?pool:Pool.t -> Tx.t list -> (Sc_commitment.t, string) result
(** Groups the block's sidechain actions (FT outputs, BTRs, at most one
    certificate per sidechain; CSWs excluded per §4.1.3) into the
    commitment structure. [pool] parallelises the entry hashes and the
    commitment tree build (bit-identical for every domain count). *)

val assemble :
  ?pool:Pool.t ->
  prev:Hash.t ->
  height:int ->
  time:int ->
  txs:Tx.t list ->
  pow:Pow.params ->
  unit ->
  (t, string) result
(** Computes roots, mines the nonce, returns the sealed block. *)

val genesis : time:int -> t
(** The fixed genesis block (empty, zero parent). *)

val validate_structure :
  ?pool:Pool.t -> pow:Pow.params -> t -> (unit, string) result
(** Context-free checks: PoW, tx root, commitment root, exactly one
    leading coinbase, at most one certificate per sidechain. *)

val pp : Format.formatter -> t -> unit
