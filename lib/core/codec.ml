open Zen_crypto
open Zen_snark

let ( let* ) = Wire.( let* )

let write_amount w a = Wire.u63 w (Amount.to_int a)

let read_amount r =
  let* v = Wire.read_u63 r in
  Amount.of_int v

let write_ft w (ft : Forward_transfer.t) =
  Wire.hash w ft.ledger_id;
  Wire.varbytes w ft.receiver_metadata;
  write_amount w ft.amount

let read_ft r =
  let* ledger_id = Wire.read_hash r in
  let* receiver_metadata = Wire.read_varbytes ~max:4096 r in
  let* amount = read_amount r in
  Ok (Forward_transfer.make ~ledger_id ~receiver_metadata ~amount)

let write_bt w (bt : Backward_transfer.t) =
  Wire.hash w bt.receiver_addr;
  write_amount w bt.amount

let read_bt r =
  let* receiver_addr = Wire.read_hash r in
  let* amount = read_amount r in
  Ok (Backward_transfer.make ~receiver_addr ~amount)

let write_proofdata_elem w = function
  | Proofdata.Field f ->
    Wire.u8 w 0;
    Wire.fp w f
  | Proofdata.Digest d ->
    Wire.u8 w 1;
    Wire.hash w d
  | Proofdata.Uint n ->
    Wire.u8 w 2;
    Wire.u63 w n
  | Proofdata.Blob b ->
    Wire.u8 w 3;
    Wire.varbytes w b

let read_proofdata_elem r =
  let* tag = Wire.read_u8 r in
  match tag with
  | 0 ->
    let* f = Wire.read_fp r in
    Ok (Proofdata.Field f)
  | 1 ->
    let* d = Wire.read_hash r in
    Ok (Proofdata.Digest d)
  | 2 ->
    let* n = Wire.read_u63 r in
    Ok (Proofdata.Uint n)
  | 3 ->
    let* b = Wire.read_varbytes r in
    Ok (Proofdata.Blob b)
  | n -> Error (Printf.sprintf "codec: unknown proofdata tag %d" n)

let write_proofdata w pd = Wire.list w (write_proofdata_elem w) pd

let read_proofdata r =
  (* Smallest element: a Blob with tag byte + empty varbytes = 5. *)
  Wire.read_list ~max:256 ~min_elem_size:5 r read_proofdata_elem

let write_proof w proof = Wire.varbytes w (Backend.proof_encode proof)

let read_proof r =
  let* raw = Wire.read_varbytes ~max:1024 r in
  match Backend.proof_decode raw with
  | Some p -> Ok p
  | None -> Error "codec: malformed SNARK proof"

let write_vk w vk = Wire.varbytes w (Backend.vk_encode vk)

let read_vk r =
  let* raw = Wire.read_varbytes ~max:1024 r in
  match Backend.vk_decode raw with
  | Some vk -> Ok vk
  | None -> Error "codec: malformed verification key"

let write_wcert w (c : Withdrawal_certificate.t) =
  Wire.hash w c.ledger_id;
  Wire.u63 w c.epoch_id;
  Wire.u63 w c.quality;
  Wire.list w (write_bt w) c.bt_list;
  write_proofdata w c.proofdata;
  write_proof w c.proof

let read_wcert r =
  let* ledger_id = Wire.read_hash r in
  let* epoch_id = Wire.read_u63 r in
  let* quality = Wire.read_u63 r in
  (* A backward transfer is at least 40 bytes (hash + amount); reject
     counts that cannot fit before looping. *)
  let* bt_list =
    Wire.read_list ~max:65536 ~min_elem_size:(Hash.size + 8) r read_bt
  in
  let* proofdata = read_proofdata r in
  let* proof = read_proof r in
  Ok
    (Withdrawal_certificate.make ~ledger_id ~epoch_id ~quality ~bt_list
       ~proofdata ~proof)

let write_withdrawal w (m : Mainchain_withdrawal.t) =
  Wire.u8 w (match m.kind with Mainchain_withdrawal.Btr -> 0 | Mainchain_withdrawal.Csw -> 1);
  Wire.hash w m.ledger_id;
  Wire.hash w m.receiver;
  write_amount w m.amount;
  Wire.hash w m.nullifier;
  write_proofdata w m.proofdata;
  write_proof w m.proof

let read_withdrawal r =
  let* tag = Wire.read_u8 r in
  let* kind =
    match tag with
    | 0 -> Ok Mainchain_withdrawal.Btr
    | 1 -> Ok Mainchain_withdrawal.Csw
    | n -> Error (Printf.sprintf "codec: unknown withdrawal kind %d" n)
  in
  let* ledger_id = Wire.read_hash r in
  let* receiver = Wire.read_hash r in
  let* amount = read_amount r in
  let* nullifier = Wire.read_hash r in
  let* proofdata = read_proofdata r in
  let* proof = read_proof r in
  Ok
    (Mainchain_withdrawal.make ~kind ~ledger_id ~receiver ~amount ~nullifier
       ~proofdata ~proof)

let write_schema_elem w (e : Proofdata.elem_type) =
  Wire.u8 w
    (match e with
    | Proofdata.Tfield -> 0
    | Proofdata.Tdigest -> 1
    | Proofdata.Tuint -> 2
    | Proofdata.Tblob -> 3)

let read_schema_elem r =
  let* tag = Wire.read_u8 r in
  match tag with
  | 0 -> Ok Proofdata.Tfield
  | 1 -> Ok Proofdata.Tdigest
  | 2 -> Ok Proofdata.Tuint
  | 3 -> Ok Proofdata.Tblob
  | n -> Error (Printf.sprintf "codec: unknown schema tag %d" n)

let write_config w (c : Sidechain_config.t) =
  Wire.hash w c.ledger_id;
  Wire.u63 w c.start_block;
  Wire.u63 w c.epoch_len;
  Wire.u63 w c.submit_len;
  write_vk w c.wcert_vk;
  Wire.option w (write_vk w) c.btr_vk;
  Wire.option w (write_vk w) c.csw_vk;
  Wire.list w (write_schema_elem w) c.wcert_proofdata;
  Wire.list w (write_schema_elem w) c.btr_proofdata;
  Wire.list w (write_schema_elem w) c.csw_proofdata

let read_config r =
  let* ledger_id = Wire.read_hash r in
  let* start_block = Wire.read_u63 r in
  let* epoch_len = Wire.read_u63 r in
  let* submit_len = Wire.read_u63 r in
  let* wcert_vk = read_vk r in
  let* btr_vk = Wire.read_option r read_vk in
  let* csw_vk = Wire.read_option r read_vk in
  let* wcert_proofdata = Wire.read_list ~max:256 r read_schema_elem in
  let* btr_proofdata = Wire.read_list ~max:256 r read_schema_elem in
  let* csw_proofdata = Wire.read_list ~max:256 r read_schema_elem in
  (* Re-run registration validation: decoding must never produce a
     config that could not have been created. *)
  Sidechain_config.make ~ledger_id ~start_block ~epoch_len ~submit_len
    ~wcert_vk ?btr_vk ?csw_vk ~wcert_proofdata ~btr_proofdata ~csw_proofdata
    ()

let with_writer f =
  let w = Wire.writer () in
  f w;
  Wire.contents w

let framed read s =
  let r = Wire.reader s in
  let* v = read r in
  let* () = Wire.expect_end r in
  Ok v

let encode_wcert c = with_writer (fun w -> write_wcert w c)
let decode_wcert s = framed read_wcert s
let encode_withdrawal m = with_writer (fun w -> write_withdrawal w m)
let decode_withdrawal s = framed read_withdrawal s
let encode_config c = with_writer (fun w -> write_config w c)
let decode_config s = framed read_config s
