open Zen_crypto
open Zen_snark

type t = {
  ledger_id : Hash.t;
  start_block : int;
  epoch_len : int;
  submit_len : int;
  wcert_vk : Backend.verification_key;
  btr_vk : Backend.verification_key option;
  csw_vk : Backend.verification_key option;
  wcert_proofdata : Proofdata.schema;
  btr_proofdata : Proofdata.schema;
  csw_proofdata : Proofdata.schema;
}

(* The unified verifier interface fixes the public-input arity for
   every sidechain SNARK (see Verifier). *)
let expected_public = 5

let check_vk what vk =
  if Backend.vk_num_public vk <> expected_public then
    Error
      (Printf.sprintf "%s verification key expects %d public inputs, not %d"
         what (Backend.vk_num_public vk) expected_public)
  else Ok ()

let make ~ledger_id ~start_block ~epoch_len ~submit_len ~wcert_vk ?btr_vk
    ?csw_vk ?(wcert_proofdata = []) ?(btr_proofdata = [])
    ?(csw_proofdata = []) () =
  let ( let* ) = Result.bind in
  let* () =
    if epoch_len < 2 then Error "sidechain config: epoch_len must be >= 2"
    else Ok ()
  in
  (* [submit_len] may exceed [epoch_len]: a grace window longer than
     an epoch makes consecutive submission windows overlap, which is a
     legitimate configuration (slow certifiers get more time). The
     ledger enforces sequential certification so overlap can never
     strand an uncertified epoch (see Sc_ledger.accept_cert). *)
  let* () =
    if submit_len < 1 then Error "sidechain config: submit_len must be >= 1"
    else Ok ()
  in
  let* () =
    if start_block < 0 then Error "sidechain config: negative start_block"
    else Ok ()
  in
  let* () = check_vk "wcert" wcert_vk in
  let* () =
    match btr_vk with None -> Ok () | Some vk -> check_vk "btr" vk
  in
  let* () =
    match csw_vk with None -> Ok () | Some vk -> check_vk "csw" vk
  in
  Ok
    {
      ledger_id;
      start_block;
      epoch_len;
      submit_len;
      wcert_vk;
      btr_vk;
      csw_vk;
      wcert_proofdata;
      btr_proofdata;
      csw_proofdata;
    }

let hash t =
  Hash.tagged "cctp.sc_config"
    [
      Hash.to_raw t.ledger_id;
      string_of_int t.start_block;
      string_of_int t.epoch_len;
      string_of_int t.submit_len;
      Hash.to_raw (Backend.vk_digest t.wcert_vk);
      (match t.btr_vk with
      | None -> "none"
      | Some vk -> Hash.to_raw (Backend.vk_digest vk));
      (match t.csw_vk with
      | None -> "none"
      | Some vk -> Hash.to_raw (Backend.vk_digest vk));
    ]

let derive_ledger_id ~creator ~nonce =
  Hash.tagged "cctp.ledger_id" [ Hash.to_raw creator; string_of_int nonce ]
