open Zen_crypto

type entry = {
  ledger_id : Hash.t;
  fts : Forward_transfer.t list;
  btrs : Mainchain_withdrawal.t list;
  wcert : Withdrawal_certificate.t option;
}

(* Sentinel ids bracketing every real ledger id in the sorted leaf
   order, so that absence of any id is witnessed by two adjacent
   leaves straddling it. *)
let min_sentinel = Hash.of_raw (String.make Hash.size '\000')
let max_sentinel = Hash.of_raw (String.make Hash.size '\255')

type leaf = { id : Hash.t; data : Hash.t (* entry hash; zero for sentinels *) }

type t = {
  leaves : leaf array; (* sorted by id, sentinels included *)
  tree : Merkle.t;
  by_id : int Hash.Map.t; (* ledger id -> leaf index, real entries only *)
}

let ft_subtree_root fts =
  Merkle.root (Merkle.of_leaves (List.map Forward_transfer.hash fts))

let btr_subtree_root btrs =
  Merkle.root (Merkle.of_leaves (List.map Mainchain_withdrawal.hash btrs))

let wcert_hash = function
  | None -> Hash.tagged "scc.no_wcert" []
  | Some c -> Withdrawal_certificate.hash c

(* SCXHash = H(TxsHash | WCertHash | X), with TxsHash = H(FTHash | BTRHash)
   — the shape of Fig. 4. *)
let entry_hash_of_roots ~ft_root ~btr_root e =
  let txs_hash =
    Hash.tagged "scc.txs" [ Hash.to_raw ft_root; Hash.to_raw btr_root ]
  in
  Hash.tagged "scc.sc"
    [
      Hash.to_raw txs_hash;
      Hash.to_raw (wcert_hash e.wcert);
      Hash.to_raw e.ledger_id;
    ]

let entry_hash e =
  entry_hash_of_roots ~ft_root:(ft_subtree_root e.fts)
    ~btr_root:(btr_subtree_root e.btrs) e

let leaf_hash leaf =
  Hash.tagged "scc.leaf" [ Hash.to_raw leaf.id; Hash.to_raw leaf.data ]

let build ?(pool = Pool.sequential) entries =
  Zen_obs.Trace.with_span ~cat:"core"
    ~args:[ ("entries", string_of_int (List.length entries)) ]
    "core.sc_commitment.build"
  @@ fun () ->
  let ids = List.map (fun e -> e.ledger_id) entries in
  let distinct = Hash.Set.of_list ids in
  if Hash.Set.cardinal distinct <> List.length ids then
    Error "sc commitment: duplicate ledger id"
  else if
    List.exists
      (fun e ->
        Hash.equal e.ledger_id min_sentinel
        || Hash.equal e.ledger_id max_sentinel)
      entries
  then Error "sc commitment: reserved ledger id"
  else begin
    (* Subtree roots are memoized per distinct leaf list within this
       build: with many sidechains the common case — empty FT/BTR lists,
       or identical batches — would otherwise rebuild the same Merkle
       tree once per entry. Distinct subtrees are independent work,
       mapped across the pool's domains; the per-entry SHA finishers are
       cheap and stay sequential. The memoized root is asserted
       unchanged against the direct computation by the test suite
       (entry_hash stays exported and unmemoized). *)
    let module SMap = Map.Make (String) in
    let leaf_key leaves = String.concat "" (List.map Hash.to_raw leaves) in
    let with_leaves =
      List.map
        (fun e ->
          ( e,
            List.map Forward_transfer.hash e.fts,
            List.map Mainchain_withdrawal.hash e.btrs ))
        entries
    in
    let distinct =
      List.fold_left
        (fun m (_, fl, bl) ->
          m
          |> SMap.add (leaf_key fl) fl
          |> SMap.add (leaf_key bl) bl)
        SMap.empty with_leaves
    in
    let bindings = SMap.bindings distinct in
    let roots =
      (* Most distinct subtrees are empty or a handful of leaves
         (~tens of µs each); the cost hint batches them so a block's
         worth of sidechains doesn't pay one sync per subtree. *)
      Pool.map_list pool ~cost:0.02
        (fun (key, leaves) -> (key, Merkle.root (Merkle.of_leaves leaves)))
        bindings
      |> List.fold_left (fun m (k, r) -> SMap.add k r m) SMap.empty
    in
    let real =
      List.map
        (fun (e, fl, bl) ->
          {
            id = e.ledger_id;
            data =
              entry_hash_of_roots
                ~ft_root:(SMap.find (leaf_key fl) roots)
                ~btr_root:(SMap.find (leaf_key bl) roots)
                e;
          })
        with_leaves
    in
    let all =
      { id = min_sentinel; data = Hash.zero }
      :: { id = max_sentinel; data = Hash.zero }
      :: real
    in
    let leaves =
      Array.of_list (List.sort (fun a b -> Hash.compare a.id b.id) all)
    in
    let by_id =
      Array.to_list leaves
      |> List.mapi (fun i l -> (i, l))
      |> List.filter (fun (_, l) ->
             (not (Hash.equal l.id min_sentinel))
             && not (Hash.equal l.id max_sentinel))
      |> List.fold_left
           (fun acc (i, l) -> Hash.Map.add l.id i acc)
           Hash.Map.empty
    in
    let tree =
      Merkle.of_leaves ~pool (Array.to_list (Array.map leaf_hash leaves))
    in
    Ok { leaves; tree; by_id }
  end

let root t = Merkle.root t.tree
let sidechain_count t = Hash.Map.cardinal t.by_id

type membership = Merkle.proof

let prove_membership t ledger_id =
  match Hash.Map.find_opt ledger_id t.by_id with
  | None -> None
  | Some i -> Some (Merkle.prove t.tree i)

let verify_membership ~root ~ledger_id ~entry_hash proof =
  Merkle.verify ~root ~leaf:(leaf_hash { id = ledger_id; data = entry_hash }) proof

let membership_size_bytes = Merkle.proof_size_bytes

type absence = {
  left : leaf;
  left_proof : Merkle.proof;
  right : leaf;
  right_proof : Merkle.proof;
}

let prove_absence t ledger_id =
  if Hash.Map.mem ledger_id t.by_id then None
  else begin
    (* Find the straddling pair; sentinels guarantee it exists for any
       id strictly between them. *)
    let n = Array.length t.leaves in
    let rec find i =
      if i + 1 >= n then None
      else if
        Hash.compare t.leaves.(i).id ledger_id < 0
        && Hash.compare ledger_id t.leaves.(i + 1).id < 0
      then
        Some
          {
            left = t.leaves.(i);
            left_proof = Merkle.prove t.tree i;
            right = t.leaves.(i + 1);
            right_proof = Merkle.prove t.tree (i + 1);
          }
      else find (i + 1)
    in
    find 0
  end

let verify_absence ~root ~ledger_id a =
  Merkle.proof_index a.right_proof = Merkle.proof_index a.left_proof + 1
  && Hash.compare a.left.id ledger_id < 0
  && Hash.compare ledger_id a.right.id < 0
  && Merkle.verify ~root ~leaf:(leaf_hash a.left) a.left_proof
  && Merkle.verify ~root ~leaf:(leaf_hash a.right) a.right_proof

let ( let* ) = Wire.( let* )

let write_merkle_proof w p =
  Wire.u32 w (Merkle.proof_index p);
  Wire.list w (Wire.hash w) (Merkle.proof_to_siblings p)

let read_merkle_proof r =
  let* index = Wire.read_u32 r in
  let* siblings =
    Wire.read_list ~max:64 ~min_elem_size:Hash.size r Wire.read_hash
  in
  Ok (Merkle.proof_of_siblings ~index siblings)

let write_membership = write_merkle_proof
let read_membership = read_merkle_proof

let write_leaf w l =
  Wire.hash w l.id;
  Wire.hash w l.data

let read_leaf r =
  let* id = Wire.read_hash r in
  let* data = Wire.read_hash r in
  Ok { id; data }

let write_absence w a =
  write_leaf w a.left;
  write_merkle_proof w a.left_proof;
  write_leaf w a.right;
  write_merkle_proof w a.right_proof

let read_absence r =
  let* left = read_leaf r in
  let* left_proof = read_merkle_proof r in
  let* right = read_leaf r in
  let* right_proof = read_merkle_proof r in
  Ok { left; left_proof; right; right_proof }

let absence_size_bytes a =
  (2 * (2 * Hash.size))
  + Merkle.proof_size_bytes a.left_proof
  + Merkle.proof_size_bytes a.right_proof
