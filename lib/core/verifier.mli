(** The unified SNARK verification interface the mainchain applies to
    every sidechain (paper §4.1.2), with the scale-out fast path: a
    bounded verification cache and batch verification over a worker
    pool.

    Each sidechain registers verification keys; the mainchain only ever
    calls [Verify(vk, public_input, proof)] where the public input has
    the fixed 5-element shape [(sysdata…, MH(proofdata))]. Verification
    cost is constant regardless of what happened in the sidechain —
    experiment E7 measures this against the baselines, E15 measures the
    cache and batch path at many-sidechain scale. *)

open Zen_crypto
open Zen_snark

val public_input_arity : int
(** 5: four sysdata elements plus the proofdata root. *)

(** {2 Verification cache}

    A process-wide bounded memo of verification outcomes, keyed by a
    digest binding the vk digest, the full public-input preimage (via
    the object hash plus the chain-supplied hashes) and the proof
    bytes. Duplicate submissions, the miner's trial application of
    mempool candidates, and reorg replays of already-seen certificates
    all hit the cache instead of re-running SNARK verification.

    Negative outcomes are cached too: an invalid proof stays invalid
    under the same key, so rejecting resubmissions is equally cheap.
    The cache is shared across chains/branches — safe because the key
    binds every input of the verify function, not because states
    agree. Thread-safe; enabled by default. *)
module Cache : sig
  val enabled : unit -> bool
  val set_enabled : bool -> unit
  (** Disabling also stops stat recording; cached entries are kept but
      not consulted until re-enabled. *)

  val capacity : unit -> int
  val set_capacity : int -> unit
  (** Maximum number of cached outcomes (default 4096); FIFO eviction.
      Shrinking evicts immediately. Raises [Invalid_argument] below 1. *)

  val size : unit -> int
  val clear : unit -> unit
  (** Drops all entries and resets {!stats} (used by tests/benchmarks
      to isolate measurements). *)

  type stats = { hits : int; misses : int; insertions : int; evictions : int }

  val stats : unit -> stats
  (** Always-on internal counters (since the last {!clear}); the same
      events are also recorded on the [mc.verify.cache.hit/miss/eviction]
      {!Zen_obs} counters when the registry is enabled. *)
end

(** {2 Verification jobs}

    A [job] packages one pending SNARK verification: its cache key and
    a thunk computing the verdict. Jobs let block validation collect
    every proof of a block and fan the cache misses out on a pool
    ({!verify_batch}) while the acceptance logic keeps making its
    decisions one at a time through {!run_job} — by construction both
    see the same verdicts. *)

type job

val wcert_job :
  vk:Backend.verification_key ->
  cert:Withdrawal_certificate.t ->
  end_prev_epoch:Hash.t ->
  end_epoch:Hash.t ->
  job

val withdrawal_job :
  vk:Backend.verification_key ->
  request:Mainchain_withdrawal.t ->
  reference_block:Hash.t ->
  job

val aggregate_job : Aggregate.system -> Aggregate.t -> job
(** The single block-level verification of a certificate aggregate. The
    key binds the aggregate vk digest, the merge root, the covered
    count and the proof bytes, so mempool re-checks and reorg replays
    of the same block hit the cache. *)

val job_key : job -> Hash.t
(** The cache key (exposed for tests). *)

val run_job : job -> bool
(** Cache lookup, else verify and store. *)

val verify_batch : ?pool:Pool.t -> job list -> bool list
(** Verdicts in input order. Cached outcomes are looked up first; the
    misses are verified on [pool] (default {!Pool.sequential}) and
    stored. Verification thunks are pure, so the result is bit-identical
    to the sequential path for every domain count. *)

val verify_wcert :
  vk:Backend.verification_key ->
  cert:Withdrawal_certificate.t ->
  end_prev_epoch:Hash.t ->
  end_epoch:Hash.t ->
  bool
(** Checks the certificate proof against the mainchain-enforced
    [wcert_sysdata] (quality, MH(BTList), epoch boundary block hashes).
    Equivalent to {!run_job} on {!wcert_job} — consults the cache. *)

val verify_withdrawal :
  vk:Backend.verification_key ->
  request:Mainchain_withdrawal.t ->
  reference_block:Hash.t ->
  bool
(** Shared BTR/CSW verification against [btr_sysdata] — consults the
    cache. *)

val check_wcert_statics :
  config:Sidechain_config.t -> cert:Withdrawal_certificate.t -> (unit, string) result
(** The non-SNARK rules of "WCert Verification" (§4.1.2): ledger id
    match and proofdata schema conformance. Epoch-window and quality
    ordering need chain context and live in the mainchain ledger. *)

val check_withdrawal_statics :
  config:Sidechain_config.t -> request:Mainchain_withdrawal.t -> (unit, string) result
