open Zen_crypto
open Zen_snark

let public_input_arity = 5

(* ---------------------------------------------------------------- *)
(* Verification cache                                               *)
(* ---------------------------------------------------------------- *)

let obs_hit =
  Zen_obs.Counter.make ~help:"MC verification-cache hits" "mc.verify.cache.hit"

let obs_miss =
  Zen_obs.Counter.make ~help:"MC verification-cache misses"
    "mc.verify.cache.miss"

let obs_evict =
  Zen_obs.Counter.make ~help:"MC verification-cache evictions"
    "mc.verify.cache.eviction"

let obs_verify_s =
  Zen_obs.Histogram.make ~help:"per-proof MC verification latency (cache misses)"
    ~bounds:(Zen_obs.Histogram.exponential_bounds ~lo:1e-5 ~factor:4. ~n:8)
    "mc.verify.seconds"

module Cache = struct
  type stats = { hits : int; misses : int; insertions : int; evictions : int }

  let mu = Mutex.create ()

  (* [enabled_flag] and [cap] are read on the lock-free fast path of
     [find]/[store] while [set_enabled]/[set_capacity] write them from
     other domains — Atomic, not ref-under-mutex, or the unlocked reads
     are a data race once verification fans out across domains. *)
  let enabled_flag = Atomic.make true
  let cap = Atomic.make 4096
  let table : (Hash.t, bool) Hashtbl.t = Hashtbl.create 1024
  let fifo : Hash.t Queue.t = Queue.create ()
  let hits = ref 0
  let misses = ref 0
  let insertions = ref 0
  let evictions = ref 0

  let locked f =
    Mutex.lock mu;
    match f () with
    | v ->
      Mutex.unlock mu;
      v
    | exception e ->
      Mutex.unlock mu;
      raise e

  let enabled () = Atomic.get enabled_flag
  let set_enabled b = Atomic.set enabled_flag b
  let capacity () = Atomic.get cap
  let size () = locked (fun () -> Hashtbl.length table)

  let stats () =
    locked (fun () ->
        {
          hits = !hits;
          misses = !misses;
          insertions = !insertions;
          evictions = !evictions;
        })

  let clear () =
    locked (fun () ->
        Hashtbl.reset table;
        Queue.clear fifo;
        hits := 0;
        misses := 0;
        insertions := 0;
        evictions := 0)

  (* FIFO eviction: within a block-validation burst every key is fresh,
     so recency tracking would buy nothing over insertion order. *)
  let evict_over_capacity () =
    let evicted = ref 0 in
    while Queue.length fifo > Atomic.get cap do
      let victim = Queue.pop fifo in
      Hashtbl.remove table victim;
      incr evictions;
      incr evicted
    done;
    !evicted

  let set_capacity n =
    if n < 1 then invalid_arg "Verifier.Cache.set_capacity: capacity < 1";
    Atomic.set cap n;
    let evicted = locked evict_over_capacity in
    Zen_obs.Counter.add obs_evict evicted

  let find key =
    if not (Atomic.get enabled_flag) then None
    else begin
      let r =
        locked (fun () ->
            match Hashtbl.find_opt table key with
            | Some _ as r ->
              incr hits;
              r
            | None ->
              incr misses;
              None)
      in
      (match r with
      | Some _ -> Zen_obs.Counter.incr obs_hit
      | None -> Zen_obs.Counter.incr obs_miss);
      r
    end

  let store key value =
    if Atomic.get enabled_flag then begin
      let evicted =
        locked (fun () ->
            if Hashtbl.mem table key then 0
            else begin
              Hashtbl.replace table key value;
              Queue.push key fifo;
              incr insertions;
              evict_over_capacity ()
            end)
      in
      Zen_obs.Counter.add obs_evict evicted
    end
end

(* ---------------------------------------------------------------- *)
(* Verification jobs                                                *)
(* ---------------------------------------------------------------- *)

type job = { key : Hash.t; verify : unit -> bool }

let job_key j = j.key

(* Key soundness: [Backend.verify vk ~public proof] is a pure function
   of the vk digest (which fixes the simulated verify function), the
   public-input vector, and the proof bytes. [Withdrawal_certificate.hash]
   binds every certificate field the public input is derived from
   (quality, BTList root, proofdata encoding) but not the proof, so the
   proof bytes and the chain-supplied boundary hashes enter the key
   explicitly. Deliberately cheap: the expensive part of verification
   is MH(proofdata), which the key never computes. *)
let wcert_job ~vk ~(cert : Withdrawal_certificate.t) ~end_prev_epoch ~end_epoch
    =
  {
    key =
      Hash.tagged "mc.verify.cache.wcert"
        [
          Hash.to_raw (Backend.vk_digest vk);
          Hash.to_raw (Withdrawal_certificate.hash cert);
          Backend.proof_encode cert.proof;
          Hash.to_raw end_prev_epoch;
          Hash.to_raw end_epoch;
        ];
    verify =
      (fun () ->
        let public =
          Withdrawal_certificate.public_input cert ~end_prev_epoch ~end_epoch
        in
        Backend.verify vk ~public cert.proof);
  }

let withdrawal_job ~vk ~(request : Mainchain_withdrawal.t) ~reference_block =
  {
    key =
      Hash.tagged "mc.verify.cache.withdrawal"
        [
          Hash.to_raw (Backend.vk_digest vk);
          Hash.to_raw (Mainchain_withdrawal.hash request);
          Backend.proof_encode request.proof;
          Hash.to_raw reference_block;
        ];
    verify =
      (fun () ->
        let public =
          Mainchain_withdrawal.public_input request ~reference_block
        in
        Backend.verify vk ~public request.proof);
  }

(* The aggregate's verify is one constant-time [Backend.verify]; caching
   it still pays because mempool re-checks and reorg replays revisit the
   same block. The key binds the aggregate vk, the merge root (which
   binds every covered certificate instance down to its proof bytes),
   the count and the aggregate proof itself. *)
let aggregate_job sys (agg : Aggregate.t) =
  {
    key =
      Hash.tagged "mc.verify.cache.aggregate"
        [
          Hash.to_raw (Aggregate.vk_digest sys);
          Hash.to_raw (Aggregate.root agg);
          string_of_int (Aggregate.count agg);
          Backend.proof_encode (Aggregate.proof agg);
        ];
    verify = (fun () -> Aggregate.verify sys agg);
  }

let run_job j =
  match Cache.find j.key with
  | Some v -> v
  | None ->
    let v = Zen_obs.Histogram.time obs_verify_s j.verify in
    Cache.store j.key v;
    v

let verify_batch ?(pool = Pool.sequential) jobs =
  let arr = Array.of_list jobs in
  let cached = Array.map (fun j -> Cache.find j.key) arr in
  let misses = ref [] in
  Array.iteri
    (fun i c -> if Option.is_none c then misses := i :: !misses)
    cached;
  let miss_idx = Array.of_list (List.rev !misses) in
  (* A miss runs one simulated SNARK verification plus the MH(proofdata)
     recomputation — ~0.1 ms with production-shaped proofdata. *)
  let verified =
    Pool.map_array pool ~cost:0.1
      (fun i -> Zen_obs.Histogram.time obs_verify_s arr.(i).verify)
      miss_idx
  in
  Array.iteri
    (fun k i ->
      cached.(i) <- Some verified.(k);
      Cache.store arr.(i).key verified.(k))
    miss_idx;
  Array.to_list (Array.map Option.get cached)

let verify_wcert ~vk ~(cert : Withdrawal_certificate.t) ~end_prev_epoch
    ~end_epoch =
  run_job (wcert_job ~vk ~cert ~end_prev_epoch ~end_epoch)

let verify_withdrawal ~vk ~(request : Mainchain_withdrawal.t) ~reference_block
    =
  run_job (withdrawal_job ~vk ~request ~reference_block)

let check_wcert_statics ~(config : Sidechain_config.t)
    ~(cert : Withdrawal_certificate.t) =
  if not (Hash.equal cert.ledger_id config.ledger_id) then
    Error "wcert: ledger id mismatch"
  else if not (Proofdata.matches config.wcert_proofdata cert.proofdata) then
    Error "wcert: proofdata does not match registered schema"
  else if cert.epoch_id < 0 then Error "wcert: negative epoch"
  else if cert.quality < 0 then Error "wcert: negative quality"
  else Ok ()

let check_withdrawal_statics ~(config : Sidechain_config.t)
    ~(request : Mainchain_withdrawal.t) =
  if not (Hash.equal request.ledger_id config.ledger_id) then
    Error "withdrawal: ledger id mismatch"
  else begin
    let schema =
      match request.kind with
      | Mainchain_withdrawal.Btr -> config.btr_proofdata
      | Mainchain_withdrawal.Csw -> config.csw_proofdata
    in
    if not (Proofdata.matches schema request.proofdata) then
      Error "withdrawal: proofdata does not match registered schema"
    else if Amount.is_zero request.amount then
      Error "withdrawal: zero amount"
    else Ok ()
  end
