(** Sidechain Transactions Commitment (paper §4.1.3, Figs. 4 & 12).

    Every MC block header carries [SCTxsCommitment]: the root of a
    two-level Merkle structure over all sidechain-related actions in
    the block. Per sidechain X the subtree commits FTs, BTRs and the
    (at most one) withdrawal certificate; the top tree orders the
    per-sidechain hashes by ledger id, bracketed by minimum/maximum
    sentinel leaves so that *absence* of a sidechain is provable by an
    adjacency proof ([proofOfNoData] in §5.5.1).

    This is what lets a sidechain node verify it has synchronized every
    transaction relevant to it from just the MC block header. *)

open Zen_crypto

type entry = {
  ledger_id : Hash.t;
  fts : Forward_transfer.t list;
  btrs : Mainchain_withdrawal.t list;
  wcert : Withdrawal_certificate.t option;
}

type t

val build : ?pool:Pool.t -> entry list -> (t, string) result
(** Fails on duplicate ledger ids or entries recorded under the wrong
    id. The empty list is valid (blocks with no sidechain traffic).
    [pool] parallelizes the per-sidechain entry hashes and the top-level
    tree build across domains (default {!Pool.sequential}); the root is
    bit-identical for every domain count. *)

val root : t -> Hash.t

val entry_hash : entry -> Hash.t
(** [SCXHash]: reconstructible by a sidechain node from its own view of
    the block's FTs/BTRs/certificate. *)

val ft_subtree_root : Forward_transfer.t list -> Hash.t
val btr_subtree_root : Mainchain_withdrawal.t list -> Hash.t

type membership
(** The [mproof] of §5.5.1. *)

val prove_membership : t -> Hash.t -> membership option
(** [None] when the block holds no data for that ledger id. *)

val verify_membership :
  root:Hash.t -> ledger_id:Hash.t -> entry_hash:Hash.t -> membership -> bool

val membership_size_bytes : membership -> int

type absence
(** The [proofOfNoData] of §5.5.1. *)

val prove_absence : t -> Hash.t -> absence option
(** [None] when the ledger id does have data in the block. *)

val verify_absence : root:Hash.t -> ledger_id:Hash.t -> absence -> bool

val absence_size_bytes : absence -> int

val sidechain_count : t -> int

(** {2 Wire formats} — consumed by {!Zen_latus.Mc_ref}'s codec. *)

val write_membership : Wire.writer -> membership -> unit
val read_membership : Wire.reader -> (membership, string) result
val write_absence : Wire.writer -> absence -> unit
val read_absence : Wire.reader -> (absence, string) result
