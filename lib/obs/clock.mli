(** The one time source of the repository.

    Everything that measures wall-clock time — span tracing, the prover
    pool's per-task accounting, bench timing — reads the clock through
    {!now}, so tests can substitute a deterministic source and get
    reproducible timings (and traces) without touching any call site. *)

val now : unit -> float
(** Seconds, from the current source. Defaults to [Unix.gettimeofday]. *)

val set : (unit -> float) -> unit
(** Replace the source process-wide (all domains see it). *)

val reset : unit -> unit
(** Restore [Unix.gettimeofday] and clear any accumulated {!skew}. *)

val skew : float -> unit
(** [skew d] shifts the clock forward by [d] seconds from now on, on
    top of whatever the current source returns (skews accumulate). This
    is the fault-injection hook [Zen_sim.Faults] uses to model clock
    drift: every consumer of {!now} — span tracing, the prover pool's
    per-task accounting — observes the jump, while the source itself
    (real or {!deterministic}) stays untouched. *)

val skew_total : unit -> float
(** The accumulated skew in seconds (0. after {!reset}). *)

val deterministic : ?start:float -> ?step:float -> unit -> unit -> float
(** [deterministic ()] is a fake clock: each call returns
    [start + k * step] for k = 0, 1, 2, … (atomically counted, so it is
    monotone even across domains). [start] defaults to [0.], [step] to
    [1e-3]. Install it with {!set}. *)
