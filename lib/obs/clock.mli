(** The one time source of the repository.

    Everything that measures wall-clock time — span tracing, the prover
    pool's per-task accounting, bench timing — reads the clock through
    {!now}, so tests can substitute a deterministic source and get
    reproducible timings (and traces) without touching any call site. *)

val now : unit -> float
(** Seconds, from the current source. Defaults to [Unix.gettimeofday]. *)

val set : (unit -> float) -> unit
(** Replace the source process-wide (all domains see it). *)

val reset : unit -> unit
(** Restore [Unix.gettimeofday]. *)

val deterministic : ?start:float -> ?step:float -> unit -> unit -> float
(** [deterministic ()] is a fake clock: each call returns
    [start + k * step] for k = 0, 1, 2, … (atomically counted, so it is
    monotone even across domains). [start] defaults to [0.], [step] to
    [1e-3]. Install it with {!set}. *)
