(** Monotone counters with per-domain cells.

    [incr]/[add] touch only the calling domain's cell (no cross-domain
    contention — see {!Sharded}); {!value} merges at read time. With
    the registry disabled, recording is a single branch. *)

type t

val make : ?help:string -> string -> t
(** [make name] registers a counter (idempotent: a second [make] with
    the same name returns the existing counter, keeping module-level
    instrumentation and tests from fighting over registration). *)

val incr : t -> unit
val add : t -> int -> unit

val value : t -> int
(** Sum over every domain's cell. *)

val name : t -> string
val help : t -> string

val all : unit -> t list
(** Every registered counter, sorted by name (for exporters). *)
