(** Post-hoc analysis over the raw {!Trace} buffers: span-tree
    reconstruction, self-time attribution, the critical path of the
    longest recorded span, latency quantiles — and the ["zen-report/1"]
    JSON document that packages all of it.

    {!Trace.with_span} records each span {e when it closes}, so within
    one domain children always precede their parent in [seq] order and
    the forest can be rebuilt in a single pass per domain (see
    {!span_forest}). Reconstruction is pure — given the same event list
    it yields the same forest, so reports are byte-identical under a
    deterministic {!Clock}. *)

type node = { event : Trace.event; children : node list }
(** One span (or instant) with its directly nested spans, sorted by
    start time. *)

val span_forest : Trace.event list -> node list
(** Rebuild the span forest from a flat event list (as produced by
    {!Trace.events}). Within each [tid], a closing [Complete] span at
    depth [d] adopts every not-yet-claimed node strictly deeper than
    [d]; unclaimed nodes become roots. If a parent event was dropped at
    the buffer cap its surviving descendants flatten into the nearest
    recorded ancestor rather than disappearing. Roots are sorted by
    [(ts, tid, seq)]. *)

val forest : unit -> node list
(** [span_forest (Trace.events ())]. *)

val dur : node -> float
(** The span's wall-clock duration ([0.] for instants). *)

val self_s : node -> float
(** Self time: [dur] minus the summed durations of direct children,
    clamped at [0.]. Over any tree, self times sum to the root's
    duration (up to the clamp). *)

val total_wall_s : node list -> float
(** Summed root durations — the observed wall-clock of the forest. *)

type agg = {
  key : string;  (** span name, or category *)
  agg_count : int;
  total_s : float;
  agg_self_s : float;
}

val self_time_by_name : node list -> agg list
(** Self-time attribution per span name, ranked by self time
    descending (ties broken by key, for deterministic output). *)

val self_time_by_category : node list -> agg list
(** Same, grouped by {!Trace.event.cat} (empty category reported as
    ["default"]). *)

type path_step = {
  step_name : string;
  step_cat : string;
  step_tid : int;
  step_args : (string * string) list;
  dur_s : float;
  step_self_s : float;
  share : float;  (** of the path root's duration *)
}

val critical_path_of : ?root:string -> node list -> path_step list
(** The dominant chain: starting from the longest root span (or the
    longest span named [root] anywhere in the forest), repeatedly
    descend into the longest child span. First element is the root;
    empty if the forest holds no [Complete] span. Ties resolve to the
    earliest [(ts, seq)] so the path is deterministic. *)

val critical_path : ?root:string -> unit -> path_step list
(** [critical_path_of ?root (forest ())]. *)

val human : unit -> string
(** Aligned text report: critical path, self time by category and by
    span name, latency quantiles (p50/p90/p99/max per histogram), and
    a truncation warning when {!Trace.dropped} is non-zero. *)

val to_json : ?extras:(string * Json.t) list -> unit -> Json.t
(** The ["zen-report/1"] document: critical path, self-time rankings,
    histogram quantiles and trace buffer accounting. [extras] are
    appended as additional top-level fields (e.g. the prover pool's
    per-worker costs, the harness scoreboard). *)

val to_json_string : ?extras:(string * Json.t) list -> unit -> string
