(** Per-domain cells: the contention-free substrate under counters,
    histograms and trace buffers.

    A [Sharded.t] hands each domain its own private cell (via domain-
    local storage), created lazily on the domain's first record and
    registered in a global list for export-time merging. Recording
    therefore never takes a lock and never bounces a cache line between
    domains; only cell {e creation} (once per domain per metric) and
    export-time folds synchronize. Cells of terminated domains stay
    registered so their contributions are never lost. *)

type 'a t

val create : (unit -> 'a) -> 'a t
(** [create make] builds a sharded store whose cells are produced by
    [make] on each domain's first {!get}. *)

val get : 'a t -> 'a
(** The calling domain's cell (allocated on first use). *)

val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
(** Folds over every cell ever created, current domains and dead ones
    alike. Cells are mutable and may be written concurrently; single-
    word reads never tear. *)

val iter : 'a t -> f:('a -> unit) -> unit
