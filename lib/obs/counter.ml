type t = { name : string; help : string; cells : int ref Sharded.t }

let registered : t list ref = ref []
let mu = Mutex.create ()

let make ?(help = "") name =
  Mutex.lock mu;
  match List.find_opt (fun c -> String.equal c.name name) !registered with
  | Some c ->
    Mutex.unlock mu;
    c
  | None ->
    let c = { name; help; cells = Sharded.create (fun () -> ref 0) } in
    registered := c :: !registered;
    Mutex.unlock mu;
    Registry.on_reset (fun () -> Sharded.iter c.cells ~f:(fun r -> r := 0));
    c

let add t n =
  if Registry.enabled () then begin
    let cell = Sharded.get t.cells in
    cell := !cell + n
  end

let incr t = add t 1
let value t = Sharded.fold t.cells ~init:0 ~f:(fun acc r -> acc + !r)
let name t = t.name
let help t = t.help

let all () =
  Mutex.lock mu;
  let cs = !registered in
  Mutex.unlock mu;
  List.sort (fun a b -> String.compare a.name b.name) cs
