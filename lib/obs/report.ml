(* Span-tree reconstruction and critical-path / self-time analysis on
   top of the raw Trace buffers, plus the "zen-report/1" document. *)

type node = { event : Trace.event; children : node list }

let dur n = match n.event.Trace.phase with
  | Trace.Complete -> n.event.Trace.dur
  | Trace.Instant -> 0.

let self_s n =
  Float.max 0.
    (dur n -. List.fold_left (fun acc c -> acc +. dur c) 0. n.children)

let by_start a b =
  match Float.compare a.event.Trace.ts b.event.Trace.ts with
  | 0 -> Int.compare a.event.Trace.seq b.event.Trace.seq
  | c -> c

(* Rebuild the forest from the flat event list. Within one domain
   ([tid]) events are recorded in [seq] order and spans close strictly
   after their children ([with_span] pushes at span end), so a single
   pass per domain suffices: completed-but-unclaimed nodes wait in a
   depth-indexed pending set, and a closing span at depth [d] claims
   everything pending strictly deeper than [d] as its subtree. Normally
   that is exactly the depth d+1 direct children; if an intermediate
   parent event was dropped at the buffer cap, its orphaned descendants
   flatten into the nearest surviving ancestor instead of vanishing. *)
let span_forest events =
  let by_tid : (int, Trace.event list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.event) ->
      match Hashtbl.find_opt by_tid e.tid with
      | Some l -> l := e :: !l
      | None -> Hashtbl.add by_tid e.tid (ref [ e ]))
    events;
  let tids =
    List.sort Int.compare (Hashtbl.fold (fun tid _ acc -> tid :: acc) by_tid [])
  in
  let roots_of_tid tid =
    let evs =
      List.sort
        (fun (a : Trace.event) (b : Trace.event) -> Int.compare a.seq b.seq)
        !(Hashtbl.find by_tid tid)
    in
    let pending : (int, node list ref) Hashtbl.t = Hashtbl.create 8 in
    let push d n =
      match Hashtbl.find_opt pending d with
      | Some l -> l := n :: !l
      | None -> Hashtbl.add pending d (ref [ n ])
    in
    let claim_deeper d =
      let claimed =
        Hashtbl.fold
          (fun d' l acc -> if d' > d then !l @ acc else acc)
          pending []
      in
      Hashtbl.iter (fun d' l -> if d' > d then l := []) pending;
      List.sort by_start claimed
    in
    List.iter
      (fun (e : Trace.event) ->
        match e.phase with
        | Trace.Instant -> push e.depth { event = e; children = [] }
        | Trace.Complete ->
          let children = claim_deeper e.depth in
          push e.depth { event = e; children })
      evs;
    Hashtbl.fold (fun _ l acc -> !l @ acc) pending []
  in
  List.concat_map roots_of_tid tids |> List.sort by_start

let forest () = span_forest (Trace.events ())

let rec fold_nodes f acc n = List.fold_left (fold_nodes f) (f acc n) n.children
let fold_forest f acc forest = List.fold_left (fold_nodes f) acc forest

let total_wall_s forest = List.fold_left (fun acc r -> acc +. dur r) 0. forest

(* ---- self-time attribution ---- *)

type agg = {
  key : string;
  agg_count : int;
  total_s : float;
  agg_self_s : float;
}

let ranked ~key_of forest =
  let tbl : (string, agg ref) Hashtbl.t = Hashtbl.create 32 in
  let add _ n =
    let key = key_of n.event in
    (match Hashtbl.find_opt tbl key with
    | None ->
      Hashtbl.add tbl key
        (ref { key; agg_count = 1; total_s = dur n; agg_self_s = self_s n })
    | Some a ->
      a :=
        {
          !a with
          agg_count = !a.agg_count + 1;
          total_s = !a.total_s +. dur n;
          agg_self_s = !a.agg_self_s +. self_s n;
        });
    ()
  in
  fold_forest add () forest;
  Hashtbl.fold (fun _ a acc -> !a :: acc) tbl []
  |> List.sort (fun a b ->
         match Float.compare b.agg_self_s a.agg_self_s with
         | 0 -> String.compare a.key b.key
         | c -> c)

let cat_key (e : Trace.event) = if e.cat = "" then "default" else e.cat
let self_time_by_name forest = ranked ~key_of:(fun e -> e.Trace.name) forest
let self_time_by_category forest = ranked ~key_of:cat_key forest

(* ---- critical path ---- *)

type path_step = {
  step_name : string;
  step_cat : string;
  step_tid : int;
  step_args : (string * string) list;
  dur_s : float;
  step_self_s : float;
  share : float;
}

let longest candidates =
  List.fold_left
    (fun best n ->
      match best with
      | None -> Some n
      | Some b ->
        if dur n > dur b then Some n
        else if dur n < dur b then best
        else if by_start n b < 0 then Some n
        else best)
    None candidates

let critical_path_of ?root forest =
  let start =
    match root with
    | None -> longest (List.filter (fun n -> n.event.Trace.phase = Trace.Complete) forest)
    | Some name ->
      fold_forest
        (fun best n ->
          if
            String.equal n.event.Trace.name name
            && n.event.Trace.phase = Trace.Complete
          then longest (n :: Option.to_list best)
          else best)
        None forest
  in
  match start with
  | None -> []
  | Some root_node ->
    let root_dur = dur root_node in
    let step n =
      {
        step_name = n.event.Trace.name;
        step_cat = cat_key n.event;
        step_tid = n.event.Trace.tid;
        step_args = n.event.Trace.args;
        dur_s = dur n;
        step_self_s = self_s n;
        share = (if root_dur > 0. then dur n /. root_dur else 1.);
      }
    in
    let rec descend n acc =
      let spans =
        List.filter (fun c -> c.event.Trace.phase = Trace.Complete) n.children
      in
      match longest spans with
      | None -> List.rev (step n :: acc)
      | Some next -> descend next (step n :: acc)
    in
    descend root_node []

let critical_path ?root () = critical_path_of ?root (forest ())

(* ---- rendering ---- *)

let pp_seconds s =
  if s < 1e-6 then Printf.sprintf "%.0fns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%.2fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.3fs" s

let pp_share f = Printf.sprintf "%.1f%%" (100. *. f)

let add_table buf ~columns rows =
  if rows <> [] then begin
    let widths =
      List.mapi
        (fun i c ->
          List.fold_left
            (fun w row -> max w (String.length (List.nth row i)))
            (String.length c) rows)
        columns
    in
    let line cells =
      List.iteri
        (fun i cell ->
          Buffer.add_string buf
            (Printf.sprintf "  %-*s" (List.nth widths i) cell))
        cells;
      Buffer.add_char buf '\n'
    in
    line columns;
    line (List.map (fun w -> String.make w '-') widths);
    List.iter line rows
  end

let args_string args =
  String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) args)

let nonempty_histograms () =
  List.filter_map
    (fun h ->
      let s = Histogram.snapshot h in
      if s.Histogram.count = 0 then None else Some (h, s))
    (Histogram.all ())

let human () =
  let f = forest () in
  let wall = total_wall_s f in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "\n=== zen_obs report ===\n";
  (match critical_path_of f with
  | [] -> Buffer.add_string buf "\n(no spans recorded)\n"
  | path ->
    let root = List.hd path in
    Buffer.add_string buf
      (Printf.sprintf "\ncritical path (root %s, %s; observed wall %s)\n"
         root.step_name (pp_seconds root.dur_s) (pp_seconds wall));
    add_table buf
      ~columns:[ "#"; "name"; "cat"; "dur"; "self"; "share"; "args" ]
      (List.mapi
         (fun i s ->
           [
             string_of_int i;
             s.step_name;
             s.step_cat;
             pp_seconds s.dur_s;
             pp_seconds s.step_self_s;
             pp_share s.share;
             args_string s.step_args;
           ])
         path));
  let agg_rows aggs =
    List.map
      (fun a ->
        [
          a.key;
          string_of_int a.agg_count;
          pp_seconds a.total_s;
          pp_seconds a.agg_self_s;
          (if wall > 0. then pp_share (a.agg_self_s /. wall) else "-");
        ])
      aggs
  in
  let cats = self_time_by_category f in
  if cats <> [] then begin
    Buffer.add_string buf "\nself time by category\n";
    add_table buf
      ~columns:[ "category"; "spans"; "total"; "self"; "share" ]
      (agg_rows cats)
  end;
  let names = self_time_by_name f in
  if names <> [] then begin
    let top = List.filteri (fun i _ -> i < 12) names in
    Buffer.add_string buf
      (Printf.sprintf "\nself time by span name (top %d of %d)\n"
         (List.length top) (List.length names));
    add_table buf
      ~columns:[ "name"; "count"; "total"; "self"; "share" ]
      (agg_rows top)
  end;
  (match nonempty_histograms () with
  | [] -> ()
  | hs ->
    Buffer.add_string buf "\nlatency quantiles\n";
    add_table buf
      ~columns:[ "histogram"; "count"; "p50"; "p90"; "p99"; "max" ]
      (List.map
         (fun (h, s) ->
           [
             Histogram.name h;
             string_of_int s.Histogram.count;
             pp_seconds (Histogram.quantile s 0.5);
             pp_seconds (Histogram.quantile s 0.9);
             pp_seconds (Histogram.quantile s 0.99);
             pp_seconds s.Histogram.max;
           ])
         hs));
  let dropped = Trace.dropped () in
  if dropped > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "\nWARNING: %d trace events dropped at the per-domain buffer cap \
          (%d); the tree, critical path and self times above are partial — \
          raise it with Trace.set_buffer_limit\n"
         dropped (Trace.buffer_limit ()));
  Buffer.contents buf

(* ---- zen-report/1 ---- *)

let path_step_json s =
  Json.Obj
    [
      ("name", Json.Str s.step_name);
      ("cat", Json.Str s.step_cat);
      ("tid", Json.Int s.step_tid);
      ("dur_s", Json.Float s.dur_s);
      ("self_s", Json.Float s.step_self_s);
      ("share", Json.Float s.share);
      ( "args",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.step_args) );
    ]

let to_json ?(extras = []) () =
  let f = forest () in
  let wall = total_wall_s f in
  let path = critical_path_of f in
  let agg_json aggs =
    Json.Arr
      (List.map
         (fun a ->
           Json.Obj
             [
               ("key", Json.Str a.key);
               ("count", Json.Int a.agg_count);
               ("total_s", Json.Float a.total_s);
               ("self_s", Json.Float a.agg_self_s);
               ( "share",
                 Json.Float (if wall > 0. then a.agg_self_s /. wall else 0.) );
             ])
         aggs)
  in
  let histograms =
    Json.Arr
      (List.map
         (fun (h, s) ->
           Json.Obj
             [
               ("name", Json.Str (Histogram.name h));
               ("count", Json.Int s.Histogram.count);
               ("sum", Json.Float s.Histogram.sum);
               ("p50", Json.Float (Histogram.quantile s 0.5));
               ("p90", Json.Float (Histogram.quantile s 0.9));
               ("p99", Json.Float (Histogram.quantile s 0.99));
               ("max", Json.Float s.Histogram.max);
             ])
         (nonempty_histograms ()))
  in
  Json.Obj
    ([
       ("schema", Json.Str "zen-report/1");
       ("wall_s", Json.Float wall);
       ( "critical_path",
         match path with
         | [] -> Json.Null
         | root :: _ ->
           Json.Obj
             [
               ("root", Json.Str root.step_name);
               ("root_s", Json.Float root.dur_s);
               ("steps", Json.Arr (List.map path_step_json path));
             ] );
       ( "self_time",
         Json.Obj
           [
             ("by_category", agg_json (self_time_by_category f));
             ("by_name", agg_json (self_time_by_name f));
           ] );
       ("histograms", histograms);
       ( "trace",
         Json.Obj
           [
             ("events", Json.Int (List.length (Trace.events ())));
             ("dropped", Json.Int (Trace.dropped ()));
             ("buffer_limit", Json.Int (Trace.buffer_limit ()));
           ] );
     ]
    @ extras)

let to_json_string ?extras () = Json.to_string (to_json ?extras ())
