type span_stat = {
  span_name : string;
  span_count : int;
  total_s : float;
  min_s : float;
  max_s : float;
}

let span_stats () =
  let tbl : (string, span_stat ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (e : Trace.event) ->
      match e.phase with
      | Trace.Instant -> ()
      | Trace.Complete -> (
        match Hashtbl.find_opt tbl e.name with
        | None ->
          Hashtbl.add tbl e.name
            (ref
               {
                 span_name = e.name;
                 span_count = 1;
                 total_s = e.dur;
                 min_s = e.dur;
                 max_s = e.dur;
               })
        | Some s ->
          s :=
            {
              !s with
              span_count = !s.span_count + 1;
              total_s = !s.total_s +. e.dur;
              min_s = Float.min !s.min_s e.dur;
              max_s = Float.max !s.max_s e.dur;
            }))
    (Trace.events ());
  Hashtbl.fold (fun _ s acc -> !s :: acc) tbl []
  |> List.sort (fun a b -> String.compare a.span_name b.span_name)

(* ---- human-readable summary ---- *)

let pp_seconds s =
  if s < 1e-6 then Printf.sprintf "%.0fns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%.2fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.3fs" s

let add_table buf ~columns rows =
  if rows <> [] then begin
    let widths =
      List.mapi
        (fun i c ->
          List.fold_left
            (fun w row -> max w (String.length (List.nth row i)))
            (String.length c) rows)
        columns
    in
    let line cells =
      List.iteri
        (fun i cell ->
          Buffer.add_string buf
            (Printf.sprintf "  %-*s" (List.nth widths i) cell))
        cells;
      Buffer.add_char buf '\n'
    in
    line columns;
    line (List.map (fun w -> String.make w '-') widths);
    List.iter line rows
  end

let summary () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "\n=== zen_obs metrics ===\n";
  let counters =
    List.filter (fun c -> Counter.value c <> 0) (Counter.all ())
  in
  if counters <> [] then begin
    Buffer.add_string buf "\ncounters\n";
    add_table buf ~columns:[ "name"; "value" ]
      (List.map
         (fun c -> [ Counter.name c; string_of_int (Counter.value c) ])
         counters)
  end;
  let gauges = List.filter (fun g -> Gauge.value g <> 0.) (Gauge.all ()) in
  if gauges <> [] then begin
    Buffer.add_string buf "\ngauges\n";
    add_table buf ~columns:[ "name"; "value" ]
      (List.map
         (fun g -> [ Gauge.name g; Printf.sprintf "%g" (Gauge.value g) ])
         gauges)
  end;
  let histograms =
    List.filter (fun h -> (Histogram.snapshot h).Histogram.count <> 0)
      (Histogram.all ())
  in
  if histograms <> [] then begin
    Buffer.add_string buf "\nhistograms\n";
    add_table buf
      ~columns:[ "name"; "count"; "sum"; "mean"; "p50"; "p99"; "max" ]
      (List.map
         (fun h ->
           let s = Histogram.snapshot h in
           [
             Histogram.name h;
             string_of_int s.Histogram.count;
             Printf.sprintf "%g" s.Histogram.sum;
             Printf.sprintf "%g"
               (s.Histogram.sum /. float_of_int (max 1 s.Histogram.count));
             pp_seconds (Histogram.quantile s 0.5);
             pp_seconds (Histogram.quantile s 0.99);
             pp_seconds s.Histogram.max;
           ])
         histograms)
  end;
  let spans = span_stats () in
  if spans <> [] then begin
    Buffer.add_string buf "\nspans\n";
    add_table buf ~columns:[ "name"; "count"; "total"; "mean"; "min"; "max" ]
      (List.map
         (fun s ->
           [
             s.span_name;
             string_of_int s.span_count;
             pp_seconds s.total_s;
             pp_seconds (s.total_s /. float_of_int (max 1 s.span_count));
             pp_seconds s.min_s;
             pp_seconds s.max_s;
           ])
         spans)
  end;
  if counters = [] && gauges = [] && histograms = [] && spans = [] then
    Buffer.add_string buf
      "(nothing recorded — was the registry enabled during the run?)\n";
  let dropped = Trace.dropped () in
  if dropped > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "\nWARNING: %d trace events dropped (per-domain buffer limit %d) \
          — span stats above are partial; raise the cap with \
          Trace.set_buffer_limit\n"
         dropped (Trace.buffer_limit ()));
  Buffer.contents buf

(* ---- stable JSON ---- *)

let json () =
  let counters =
    List.map
      (fun c ->
        Json.Obj
          [ ("name", Json.Str (Counter.name c));
            ("value", Json.Int (Counter.value c)) ])
      (Counter.all ())
  in
  let gauges =
    List.map
      (fun g ->
        Json.Obj
          [ ("name", Json.Str (Gauge.name g));
            ("value", Json.Float (Gauge.value g)) ])
      (Gauge.all ())
  in
  let histograms =
    List.map
      (fun h ->
        let s = Histogram.snapshot h in
        Json.Obj
          [
            ("name", Json.Str (Histogram.name h));
            ("count", Json.Int s.Histogram.count);
            ("sum", Json.Float s.Histogram.sum);
            ("max", Json.Float s.Histogram.max);
            ("p50", Json.Float (Histogram.quantile s 0.5));
            ("p90", Json.Float (Histogram.quantile s 0.9));
            ("p99", Json.Float (Histogram.quantile s 0.99));
            ( "buckets",
              Json.Arr
                (List.map
                   (fun (le, n) ->
                     Json.Obj
                       [
                         ( "le",
                           if le = infinity then Json.Str "+inf"
                           else Json.Float le );
                         ("count", Json.Int n);
                       ])
                   s.Histogram.buckets) );
          ])
      (Histogram.all ())
  in
  let spans =
    List.map
      (fun s ->
        Json.Obj
          [
            ("name", Json.Str s.span_name);
            ("count", Json.Int s.span_count);
            ("total_s", Json.Float s.total_s);
            ("min_s", Json.Float s.min_s);
            ("max_s", Json.Float s.max_s);
          ])
      (span_stats ())
  in
  Json.Obj
    [
      ("schema", Json.Str "zen-obs/1");
      ("counters", Json.Arr counters);
      ("gauges", Json.Arr gauges);
      ("histograms", Json.Arr histograms);
      ("spans", Json.Arr spans);
      ( "trace",
        Json.Obj
          [
            ("events", Json.Int (List.length (Trace.events ())));
            ("dropped", Json.Int (Trace.dropped ()));
          ] );
    ]

let json_string () = Json.to_string (json ())

(* ---- Chrome trace-event format ---- *)

let chrome_trace () =
  let events = Trace.events () in
  let t0 =
    List.fold_left
      (fun acc (e : Trace.event) -> Float.min acc e.ts)
      infinity events
  in
  let t0 = if t0 = infinity then 0. else t0 in
  let us t = (t -. t0) *. 1e6 in
  let args_json args =
    ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) args))
  in
  let tids =
    List.sort_uniq Int.compare
      (List.map (fun (e : Trace.event) -> e.tid) events)
  in
  let thread_names =
    List.map
      (fun tid ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int tid);
            args_json [ ("name", Printf.sprintf "domain %d" tid) ];
          ])
      tids
  in
  let records =
    List.map
      (fun (e : Trace.event) ->
        let common =
          [
            ("name", Json.Str e.name);
            ("cat", Json.Str (if e.cat = "" then "default" else e.cat));
            ("pid", Json.Int 1);
            ("tid", Json.Int e.tid);
            ("ts", Json.Float (us e.ts));
          ]
        in
        match e.phase with
        | Trace.Complete ->
          Json.Obj
            (common
            @ [
                ("ph", Json.Str "X");
                ("dur", Json.Float (e.dur *. 1e6));
                args_json e.args;
              ])
        | Trace.Instant ->
          Json.Obj
            (common
            @ [ ("ph", Json.Str "i"); ("s", Json.Str "t"); args_json e.args ]))
      events
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.Arr (thread_names @ records));
         ("displayTimeUnit", Json.Str "ms");
       ])
